GO ?= go

# BENCH_BASELINE names the tracked perf baseline this branch records and
# gates against. Bump it once per PR that intentionally moves perf;
# benchjson's compare mode also auto-discovers the highest-numbered
# BENCH_<n>.json when invoked without -baseline.
BENCH_BASELINE ?= BENCH_10.json

.PHONY: all build test race bench bench-kernels bench-json bench-check vet chaos resume smoke serve-smoke ingest-smoke shard-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race is the concurrency gate for the parallel execution layer
# (internal/par workers + internal/sparse/mat kernels): vet plus the full
# suite under the race detector. The kernel equivalence tests double as
# determinism checks here — any data race or nondeterministic partition
# breaks their bit-identity assertions.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# chaos is the resilience gate: the enrichment middleware and TKG
# degradation suites re-run with aggressive fault injection (50% rates in
# the chaos-gated tests, vs 20% in a plain `make test`). See DESIGN.md §3c.
chaos:
	TRAIL_CHAOS=0.5 $(GO) test -count=1 ./internal/osint/... ./internal/core/...

# resume is the crash-recovery gate: the checkpoint envelope's corruption
# matrix, the kill-at-every-epoch bit-identity harness, and the journaled
# experiment-sweep replays. See DESIGN.md §3d.
resume:
	$(GO) test -count=1 ./internal/ckpt/...
	$(GO) test -count=1 -run 'Resume|Checkpoint|Corrupt|Truncat|Journal|Skew|Divergence|Persist|Deterministic|FineTune' \
		./internal/gnn/ ./internal/hyperopt/ ./internal/eval/ ./internal/core/ ./internal/graph/

bench:
	$(GO) test -bench=. -benchmem

bench-kernels:
	$(GO) test -bench='BenchmarkMatMul|BenchmarkSpMM|BenchmarkLabelPropagationScale' -benchmem

# bench-json re-records the tracked baseline ($(BENCH_BASELINE)). Run it
# on a quiet machine after an intentional perf change and commit the
# result. -benchtime=1x keeps the sweep short; ns/op at 1x is noisy,
# which is why the gate below uses a generous 20% threshold and alloc
# discipline is enforced by AllocsPerRun unit tests rather than here.
bench-json:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem ./... | $(GO) run ./cmd/benchjson -out $(BENCH_BASELINE)

# bench-check is the CI perf gate: fresh short run diffed against the
# committed baseline, failing on any >=20% ns/op regression.
bench-check:
	$(GO) test -run '^$$' -bench . -benchtime=1x -benchmem ./... | $(GO) run ./cmd/benchjson -out bench_current.json
	$(GO) run ./cmd/benchjson -compare -baseline $(BENCH_BASELINE) -current bench_current.json -threshold 0.20

# smoke builds and runs the quickstart example end to end — the fastest
# whole-pipeline sanity check (graph build, encoders, LP, SAGE, eval).
smoke:
	$(GO) run ./examples/quickstart

# serve-smoke is the serving-layer gate: train a 1-epoch model on the
# tiny world, start `trail serve`, exercise every endpoint (attribute,
# stats, sample, reload, metrics), run a loadgen burst, and require a
# graceful SIGTERM drain. See DESIGN.md §3g.
serve-smoke:
	bash scripts/serve_smoke.sh

# ingest-smoke is the crash-safety gate for the streaming pipeline: the
# same NDJSON feed is ingested twice — once uninterrupted, once kill -9'd
# mid-stream and restarted — and the recovered run must converge to a
# bit-identical state checkpoint and identical attribution answers over
# the live serving endpoint. See DESIGN.md §3h.
ingest-smoke:
	bash scripts/ingest_smoke.sh

# shard-smoke is the crash-safety gate for the sharded batch build: the
# same `trail build -shards N` run twice — once uninterrupted, once
# kill -9'd mid-build and restarted with -resume-shards — must produce
# bit-identical merged snapshots, and two seeded -shard-chaos runs must
# agree byte-for-byte with identical poisoned-shard accounting. See
# DESIGN.md §3i.
shard-smoke:
	bash scripts/shard_smoke.sh

vet:
	$(GO) vet ./...
