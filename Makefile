GO ?= go

.PHONY: all build test race bench bench-kernels vet

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race is the concurrency gate for the parallel execution layer
# (internal/par workers + internal/sparse/mat kernels): vet plus the full
# suite under the race detector. The kernel equivalence tests double as
# determinism checks here — any data race or nondeterministic partition
# breaks their bit-identity assertions.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

bench-kernels:
	$(GO) test -bench='BenchmarkMatMul|BenchmarkSpMM|BenchmarkLabelPropagationScale' -benchmem

vet:
	$(GO) vet ./...
