GO ?= go

.PHONY: all build test race bench bench-kernels vet chaos resume

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race is the concurrency gate for the parallel execution layer
# (internal/par workers + internal/sparse/mat kernels): vet plus the full
# suite under the race detector. The kernel equivalence tests double as
# determinism checks here — any data race or nondeterministic partition
# breaks their bit-identity assertions.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# chaos is the resilience gate: the enrichment middleware and TKG
# degradation suites re-run with aggressive fault injection (50% rates in
# the chaos-gated tests, vs 20% in a plain `make test`). See DESIGN.md §3c.
chaos:
	TRAIL_CHAOS=0.5 $(GO) test -count=1 ./internal/osint/... ./internal/core/...

# resume is the crash-recovery gate: the checkpoint envelope's corruption
# matrix, the kill-at-every-epoch bit-identity harness, and the journaled
# experiment-sweep replays. See DESIGN.md §3d.
resume:
	$(GO) test -count=1 ./internal/ckpt/...
	$(GO) test -count=1 -run 'Resume|Checkpoint|Corrupt|Truncat|Journal|Skew|Divergence|Persist|Deterministic|FineTune' \
		./internal/gnn/ ./internal/hyperopt/ ./internal/eval/ ./internal/core/ ./internal/graph/

bench:
	$(GO) test -bench=. -benchmem

bench-kernels:
	$(GO) test -bench='BenchmarkMatMul|BenchmarkSpMM|BenchmarkLabelPropagationScale' -benchmem

vet:
	$(GO) vet ./...
