package trail_test

// The benchmark harness: one bench per table and figure of the paper's
// evaluation, plus the ablation benches for the design choices DESIGN.md
// calls out. Each bench regenerates the corresponding result over the
// synthetic world and reports the headline metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Heavier experiments run against a
// reduced ("fast") configuration so a full bench pass stays laptop-sized;
// `cmd/trail experiments` runs the full-fidelity versions.

import (
	"math/rand"
	"sync"
	"testing"

	"trail/internal/core"
	"trail/internal/eval"
	"trail/internal/graph"
	"trail/internal/labelprop"
	"trail/internal/mat"
	"trail/internal/osint"
	"trail/internal/sparse"
)

var (
	benchOnce sync.Once
	benchCtx  *eval.Context // default-scale world, for graph-only benches
	fastOnce  sync.Once
	fastCtx   *eval.Context // small world + fast models, for ML benches
)

func defaultCtx(b *testing.B) *eval.Context {
	b.Helper()
	benchOnce.Do(func() {
		ctx, err := eval.NewContext(eval.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		benchCtx = ctx
	})
	return benchCtx
}

func fastContext(b *testing.B) *eval.Context {
	b.Helper()
	fastOnce.Do(func() {
		ctx, err := eval.NewContext(eval.TestOptions())
		if err != nil {
			b.Fatal(err)
		}
		fastCtx = ctx
	})
	return fastCtx
}

// BenchmarkTableII_BuildTKG measures the full pipeline behind Table II:
// world generation, collection, 2-hop enrichment and graph merge.
func BenchmarkTableII_BuildTKG(b *testing.B) {
	b.ReportAllocs()
	cfg := osint.DefaultConfig()
	for i := 0; i < b.N; i++ {
		w := osint.NewWorld(cfg)
		tkg := core.NewTKG(w, w.Resolver(), core.DefaultBuildConfig())
		if _, err := tkg.Build(w.Pulses()); err != nil {
			b.Fatal(err)
		}
		rep := tkg.Stats()
		b.ReportMetric(float64(rep.Total.Nodes), "nodes")
		b.ReportMetric(float64(rep.Total.Edges)/2, "edges")
	}
}

// BenchmarkFigure4_ReuseHistogram regenerates the IOC reuse distribution.
func BenchmarkFigure4_ReuseHistogram(b *testing.B) {
	b.ReportAllocs()
	ctx := defaultCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eval.RunFigure4(ctx)
		b.ReportMetric(res.SingleUseFraction(graph.KindDomain), "single-use-frac")
	}
}

// BenchmarkGraphStats_Connectivity regenerates the §IV/§V structure
// numbers: components, diameter, event proximity.
func BenchmarkGraphStats_Connectivity(b *testing.B) {
	b.ReportAllocs()
	ctx := defaultCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eval.RunGraphStats(ctx)
		b.ReportMetric(res.Stats.EventsWithin2HopsPct, "events-2hop-pct")
		b.ReportMetric(float64(res.Stats.Diameter), "diameter")
	}
}

// BenchmarkTableIII_IOCAttribution regenerates one Table III cell per
// model on the URL feature matrix (the paper's strongest per-IOC signal).
func BenchmarkTableIII_IOCAttribution(b *testing.B) {
	b.ReportAllocs()
	ctx := fastContext(b)
	cfg := eval.DefaultTableIIIConfig()
	cfg.Kinds = []graph.NodeKind{graph.KindURL}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunTableIII(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if cell := res.Cell(eval.ModelXGB, graph.KindURL); cell != nil {
			b.ReportMetric(cell.Acc.Mean, "xgb-url-acc")
		}
	}
}

// BenchmarkTableIV_EventAttribution regenerates the Table IV roster:
// traditional ML mode voting, LP 2-4L, GNN 2-4L.
func BenchmarkTableIV_EventAttribution(b *testing.B) {
	b.ReportAllocs()
	ctx := fastContext(b)
	cfg := eval.DefaultTableIVConfig()
	cfg.Models = []eval.ModelName{eval.ModelRF}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunTableIV(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if row := res.Row("LP 4L"); row != nil {
			b.ReportMetric(row.Acc.Mean, "lp4-acc")
		}
		if row := res.Row("GNN 2L"); row != nil {
			b.ReportMetric(row.Acc.Mean, "gnn2-acc")
		}
	}
}

// BenchmarkCaseStudy_NewEvent regenerates the Figs. 5-6 case study:
// merge, enrich and attribute a post-cutoff event.
func BenchmarkCaseStudy_NewEvent(b *testing.B) {
	b.ReportAllocs()
	ctx := fastContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunCaseStudy(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GNNConfVisible, "gnn-conf-visible")
	}
}

// BenchmarkFigure7_MonthlyConfusion regenerates the unseen-month
// confusion matrix.
func BenchmarkFigure7_MonthlyConfusion(b *testing.B) {
	b.ReportAllocs()
	ctx := fastContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFigure7(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Accuracy, "acc")
	}
}

// BenchmarkFigure8_Drift regenerates the frozen-vs-retrained drift study.
func BenchmarkFigure8_Drift(b *testing.B) {
	b.ReportAllocs()
	ctx := fastContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFigure8(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanGapLastMonths(2), "retrain-gap")
	}
}

// BenchmarkFigure9_SHAP regenerates the SHAP feature ranking for the XGB
// URL classifier.
func BenchmarkFigure9_SHAP(b *testing.B) {
	b.ReportAllocs()
	ctx := fastContext(b)
	cfg := eval.DefaultFigure9Config()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFigure9(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Impacts[0].MeanAbs, "top-mean-abs-shap")
	}
}

// BenchmarkFigure10_GNNExplainer regenerates the explanation subgraph for
// one event.
func BenchmarkFigure10_GNNExplainer(b *testing.B) {
	b.ReportAllocs()
	ctx := fastContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFigure10(ctx, "", 15)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.TopNodes)), "top-nodes")
	}
}

// BenchmarkTKGScale_Build stresses the graph substrate at 4x the default
// world scale (comparable event count to the paper's 4,512), reporting
// throughput in nodes and edges.
func BenchmarkTKGScale_Build(b *testing.B) {
	b.ReportAllocs()
	cfg := osint.DefaultConfig()
	cfg.Months = 48
	cfg.EventsPerMonth = 90
	for i := 0; i < b.N; i++ {
		w := osint.NewWorld(cfg)
		tkg := core.NewTKG(w, w.Resolver(), core.DefaultBuildConfig())
		if _, err := tkg.Build(w.Pulses()); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(tkg.EventNodes())), "events")
		b.ReportMetric(float64(tkg.G.NumNodes()), "nodes")
	}
}

// BenchmarkLabelPropagationScale measures LP 4L on the large graph — the
// traversal hot path of the production attribution flow.
func BenchmarkLabelPropagationScale(b *testing.B) {
	b.ReportAllocs()
	cfg := osint.DefaultConfig()
	cfg.Months = 48
	cfg.EventsPerMonth = 90
	w := osint.NewWorld(cfg)
	tkg := core.NewTKG(w, w.Resolver(), core.DefaultBuildConfig())
	if _, err := tkg.Build(w.Pulses()); err != nil {
		b.Fatal(err)
	}
	csr := tkg.G.CSR()
	events := tkg.EventNodes()
	seeds := make(map[graph.NodeID]int, len(events))
	for _, ev := range events[:len(events)/2] {
		seeds[ev] = tkg.G.Node(ev).Label
	}
	queries := events[len(events)/2:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preds := labelprop.AttributeCSR(csr, seeds, queries, 22, 4)
		b.ReportMetric(float64(len(preds)), "attributed")
	}
}

// --- kernel microbenches (internal/sparse + internal/mat) --------------------

// BenchmarkMatMul measures the dense GEMM hot path shared by every model
// (layer forward/backward), at a shape typical of SAGE hidden layers on
// the default world.
func BenchmarkMatMul(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	a := mat.RandNormal(rng, 4096, 64, 0, 1)
	w := mat.RandNormal(rng, 64, 64, 0, 1)
	dst := mat.New(4096, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MatMulInto(dst, a, w)
	}
	b.SetBytes(int64(8 * 4096 * 64))
}

// BenchmarkSpMM measures the sparse aggregation kernel on a graph of
// roughly the default world's size and density (mean-normalised
// neighbour aggregation over 64-dim features).
func BenchmarkSpMM(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(2))
	const n, edges = 20000, 80000
	adj := make([][]graph.NodeID, n)
	for e := 0; e < edges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		adj[u] = append(adj[u], graph.NodeID(v))
		adj[v] = append(adj[v], graph.NodeID(u))
	}
	s := sparse.FromAdj(adj).MeanNormalized()
	x := mat.RandNormal(rng, n, 64, 0, 1)
	dst := mat.New(n, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SpMM(dst, x)
	}
	b.ReportMetric(float64(s.NNZ()), "nnz")
}

// --- ablation benches (DESIGN.md §5) -----------------------------------------

// BenchmarkAblation_EnrichmentDepth compares LP 3L with and without the
// secondary-IOC enrichment.
func BenchmarkAblation_EnrichmentDepth(b *testing.B) {
	b.ReportAllocs()
	ctx := fastContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := eval.RunAblationEnrichmentDepth(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.AccA-row.AccB, "enrichment-gain")
	}
}

// BenchmarkAblation_EncoderType compares trained autoencoders against
// random projections as GNN input encoders.
func BenchmarkAblation_EncoderType(b *testing.B) {
	b.ReportAllocs()
	ctx := fastContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := eval.RunAblationEncoder(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.AccA-row.AccB, "ae-gain")
	}
}

// BenchmarkAblation_L2Norm compares Eq. 4 normalisation on and off.
func BenchmarkAblation_L2Norm(b *testing.B) {
	b.ReportAllocs()
	ctx := fastContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := eval.RunAblationL2Norm(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.AccA-row.AccB, "l2-gain")
	}
}

// BenchmarkAblation_SMOTE compares Table III balanced accuracy with and
// without SMOTE oversampling.
func BenchmarkAblation_SMOTE(b *testing.B) {
	b.ReportAllocs()
	ctx := fastContext(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := eval.RunAblationSMOTE(ctx)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.AccA-row.AccB, "smote-gain")
	}
}

// BenchmarkFigure3_EgoNet regenerates the enriched ego-net census.
func BenchmarkFigure3_EgoNet(b *testing.B) {
	b.ReportAllocs()
	ctx := defaultCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eval.RunFigure3(ctx, "")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TotalIOCs), "ego-iocs")
	}
}
