// benchjson turns `go test -bench -benchmem` output into a tracked JSON
// baseline and diffs two such files with a regression threshold.
//
// Record mode (default) reads benchmark output on stdin:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson -out BENCH_5.json
//
// Compare mode diffs a fresh run against the committed baseline and exits
// non-zero if any benchmark's ns/op regressed by more than -threshold
// (a fraction; 0.20 means "20% slower fails"). With no -baseline it
// auto-discovers the highest-numbered BENCH_<n>.json in the working
// directory, so the gate follows each PR's recorded baseline without a
// flag change:
//
//	go run ./cmd/benchjson -compare -current /tmp/new.json
//
// allocs/op and B/op are recorded for every benchmark but only reported,
// not gated: ns/op on a shared CI runner is noisy enough already, and the
// allocation discipline is enforced by the AllocsPerRun unit tests instead.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line. Name has the -GOMAXPROCS suffix stripped
// so keys stay stable across machines; Pkg comes from the preceding
// "pkg:" header go test prints per package.
type Result struct {
	Pkg         string  `json:"pkg"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// File is the envelope written to BENCH_<n>.json.
type File struct {
	Note       string   `json:"note"`
	Benchmarks []Result `json:"benchmarks"`
}

func (r Result) key() string { return r.Pkg + "." + r.Name }

// benchLine matches the head of e.g.
//
//	BenchmarkMatMulInto-8   200   1027587 ns/op   0 B/op   0 allocs/op
//
// B/op and allocs/op are pulled out separately because custom
// b.ReportMetric values ("0.027 smote-gain") can sit between ns/op and
// the -benchmem fields, and both are absent entirely without -benchmem.
var (
	benchLine = regexp.MustCompile(`^(Benchmark\S*?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)
	bytesRe   = regexp.MustCompile(`\s(\d+) B/op`)
	allocsRe  = regexp.MustCompile(`\s(\d+) allocs/op`)
	pkgLine   = regexp.MustCompile(`^pkg:\s+(\S+)`)
)

func parse(lines *bufio.Scanner) ([]Result, error) {
	var out []Result
	pkg := ""
	for lines.Scan() {
		line := lines.Text()
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			pkg = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %v", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		r := Result{Pkg: pkg, Name: m[1], Iterations: iters, NsPerOp: ns}
		if bm := bytesRe.FindStringSubmatch(line); bm != nil {
			r.BytesPerOp, _ = strconv.ParseInt(bm[1], 10, 64)
		}
		if am := allocsRe.FindStringSubmatch(line); am != nil {
			r.AllocsPerOp, _ = strconv.ParseInt(am[1], 10, 64)
		}
		out = append(out, r)
	}
	if err := lines.Err(); err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out, nil
}

// baselinePattern matches tracked baseline filenames and captures the
// PR sequence number.
var baselinePattern = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// discoverBaseline returns the highest-numbered BENCH_<n>.json in dir.
func discoverBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := baselinePattern.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		if n > bestN {
			best, bestN = e.Name(), n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_<n>.json baseline found in %s", dir)
	}
	return best, nil
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &f, nil
}

// compare reports regressions of current vs baseline. It returns the
// human-readable report and whether any benchmark crossed the threshold.
func compare(baseline, current *File, threshold float64) (string, bool) {
	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, r := range baseline.Benchmarks {
		base[r.key()] = r
	}
	var b strings.Builder
	failed := false
	seen := make(map[string]bool, len(current.Benchmarks))
	for _, cur := range current.Benchmarks {
		seen[cur.key()] = true
		old, ok := base[cur.key()]
		if !ok {
			fmt.Fprintf(&b, "NEW    %-60s %12.0f ns/op %8d allocs/op\n", cur.key(), cur.NsPerOp, cur.AllocsPerOp)
			continue
		}
		ratio := 0.0
		if old.NsPerOp > 0 {
			ratio = cur.NsPerOp/old.NsPerOp - 1
		}
		status := "ok"
		if ratio > threshold {
			status = "FAIL"
			failed = true
		}
		fmt.Fprintf(&b, "%-6s %-60s %12.0f -> %12.0f ns/op (%+.1f%%)  %d -> %d allocs/op\n",
			status, cur.key(), old.NsPerOp, cur.NsPerOp, ratio*100, old.AllocsPerOp, cur.AllocsPerOp)
	}
	for key := range base {
		if !seen[key] {
			fmt.Fprintf(&b, "GONE   %s (in baseline, not in current run)\n", key)
		}
	}
	return b.String(), failed
}

func main() {
	var (
		out       = flag.String("out", "", "write parsed results as JSON to this path (record mode)")
		doCompare = flag.Bool("compare", false, "compare -current against -baseline instead of recording")
		basePath  = flag.String("baseline", "", "baseline JSON (compare mode); empty = highest-numbered BENCH_<n>.json here")
		curPath   = flag.String("current", "", "current-run JSON (compare mode)")
		threshold = flag.Float64("threshold", 0.20, "ns/op regression fraction that fails the comparison")
		note      = flag.String("note", "", "free-form note stored in the JSON envelope")
	)
	flag.Parse()

	if *doCompare {
		if *curPath == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -compare requires -current")
			os.Exit(2)
		}
		if *basePath == "" {
			found, err := discoverBaseline(".")
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(2)
			}
			fmt.Printf("benchjson: comparing against %s\n", found)
			*basePath = found
		}
		baseline, err := load(*basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		current, err := load(*curPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		report, failed := compare(baseline, current, *threshold)
		fmt.Print(report)
		if failed {
			fmt.Fprintf(os.Stderr, "benchjson: ns/op regression over %.0f%% threshold\n", *threshold*100)
			os.Exit(1)
		}
		return
	}

	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(2)
	}
	f := File{Note: *note, Benchmarks: results}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}
