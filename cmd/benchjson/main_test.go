package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: trail/internal/mat
cpu: shared runner
BenchmarkMatMulInto-8        	     200	   1027587 ns/op	       0 B/op	       0 allocs/op
BenchmarkMatMulAlloc-8       	     100	   2437467 ns/op	  131256 B/op	       4 allocs/op
ok  	trail/internal/mat	0.210s
pkg: trail/internal/sparse
BenchmarkSpMMInto-8          	      50	   3021894 ns/op	       3 B/op	       0 allocs/op
ok  	trail/internal/sparse	0.178s
pkg: trail
BenchmarkNoMemFlag-8         	      10	    500000 ns/op
BenchmarkCustomMetric-8      	       1	  90209707 ns/op	         0.02729 smote-gain	75516792 B/op	   63475 allocs/op
ok  	trail	1.0s
`

func parseSample(t *testing.T, text string) []Result {
	t.Helper()
	results, err := parse(bufio.NewScanner(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestParseBenchOutput(t *testing.T) {
	results := parseSample(t, sampleOutput)
	if len(results) != 5 {
		t.Fatalf("parsed %d results, want 5: %+v", len(results), results)
	}
	byKey := make(map[string]Result)
	for _, r := range results {
		byKey[r.key()] = r
	}
	mm := byKey["trail/internal/mat.BenchmarkMatMulInto"]
	if mm.NsPerOp != 1027587 || mm.Iterations != 200 || mm.AllocsPerOp != 0 {
		t.Fatalf("MatMulInto parsed wrong: %+v", mm)
	}
	al := byKey["trail/internal/mat.BenchmarkMatMulAlloc"]
	if al.BytesPerOp != 131256 || al.AllocsPerOp != 4 {
		t.Fatalf("MatMulAlloc parsed wrong: %+v", al)
	}
	sp := byKey["trail/internal/sparse.BenchmarkSpMMInto"]
	if sp.Pkg != "trail/internal/sparse" || sp.BytesPerOp != 3 {
		t.Fatalf("SpMMInto parsed wrong: %+v", sp)
	}
	// Lines without -benchmem fields still parse, with zero alloc stats.
	nm := byKey["trail.BenchmarkNoMemFlag"]
	if nm.NsPerOp != 500000 || nm.BytesPerOp != 0 || nm.AllocsPerOp != 0 {
		t.Fatalf("NoMemFlag parsed wrong: %+v", nm)
	}
	// Custom b.ReportMetric values between ns/op and B/op must not hide
	// the -benchmem fields.
	cm := byKey["trail.BenchmarkCustomMetric"]
	if cm.BytesPerOp != 75516792 || cm.AllocsPerOp != 63475 {
		t.Fatalf("CustomMetric parsed wrong: %+v", cm)
	}
}

func TestParseSortsByKey(t *testing.T) {
	results := parseSample(t, sampleOutput)
	for i := 1; i < len(results); i++ {
		if results[i-1].key() > results[i].key() {
			t.Fatalf("results not sorted: %q after %q", results[i].key(), results[i-1].key())
		}
	}
}

func bench(pkg, name string, ns float64, allocs int64) Result {
	return Result{Pkg: pkg, Name: name, NsPerOp: ns, AllocsPerOp: allocs, Iterations: 1}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	baseline := &File{Benchmarks: []Result{bench("p", "BenchmarkA", 1000, 0)}}
	current := &File{Benchmarks: []Result{bench("p", "BenchmarkA", 1150, 0)}}
	report, failed := compare(baseline, current, 0.20)
	if failed {
		t.Fatalf("15%% regression failed at 20%% threshold:\n%s", report)
	}
	if !strings.Contains(report, "ok") {
		t.Fatalf("report missing ok line:\n%s", report)
	}
}

func TestCompareOverThresholdFails(t *testing.T) {
	baseline := &File{Benchmarks: []Result{
		bench("p", "BenchmarkA", 1000, 0),
		bench("p", "BenchmarkB", 1000, 0),
	}}
	current := &File{Benchmarks: []Result{
		bench("p", "BenchmarkA", 1300, 0), // +30%: over
		bench("p", "BenchmarkB", 900, 0),  // faster: fine
	}}
	report, failed := compare(baseline, current, 0.20)
	if !failed {
		t.Fatalf("30%% regression passed at 20%% threshold:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") || !strings.Contains(report, "BenchmarkA") {
		t.Fatalf("report missing FAIL line for BenchmarkA:\n%s", report)
	}
}

func TestCompareNewAndGoneAreNotFailures(t *testing.T) {
	baseline := &File{Benchmarks: []Result{bench("p", "BenchmarkOld", 1000, 0)}}
	current := &File{Benchmarks: []Result{bench("p", "BenchmarkNew", 99999, 7)}}
	report, failed := compare(baseline, current, 0.20)
	if failed {
		t.Fatalf("added/removed benchmarks must not fail the gate:\n%s", report)
	}
	if !strings.Contains(report, "NEW") || !strings.Contains(report, "GONE") {
		t.Fatalf("report missing NEW/GONE lines:\n%s", report)
	}
}

func TestDiscoverBaselinePicksHighest(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2.json", "BENCH_10.json", "BENCH_9.json", "BENCH_x.json", "bench_current.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := discoverBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != "BENCH_10.json" {
		t.Fatalf("discovered %q, want BENCH_10.json", got)
	}
}

func TestDiscoverBaselineErrorsWhenAbsent(t *testing.T) {
	if _, err := discoverBaseline(t.TempDir()); err == nil {
		t.Fatal("expected an error with no baselines present")
	}
}
