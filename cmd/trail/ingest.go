package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"trail/internal/ckpt"
	"trail/internal/core"
	"trail/internal/gnn"
	"trail/internal/ingest"
	"trail/internal/metrics"
	"trail/internal/osint"
	"trail/internal/serve"
)

// cmdIngest runs the crash-safe streaming pipeline: pulses from an
// NDJSON feed (or the synthetic world) are journaled to a WAL, merged
// into the TKG incrementally, and periodically cut into an atomic
// checkpoint. With -addr the process also serves attribution over HTTP,
// publishing a fresh serving snapshot at every cut.
//
// The pipeline state directory (-dir) owns the WAL and checkpoint; a
// restart replays events past the last checkpoint's watermark and the
// feeder resumes the feed at the durable sequence number, so a kill -9
// at any point converges to the same state as an uninterrupted run.
// SIGINT/SIGTERM stop the feed, drain the queue, fsync a final
// checkpoint, and exit.
func cmdIngest(args []string) error {
	fs2 := flag.NewFlagSet("ingest", flag.ExitOnError)
	cfg := worldFlags(fs2)
	dir := fs2.String("dir", "trail-ingest", "pipeline state directory (WAL + checkpoint); one live pipeline per directory")
	base := fs2.String("base", "", "seed a fresh pipeline from this TKG checkpoint (ignored once -dir has a checkpoint)")
	feed := fs2.String("feed", "", "NDJSON pulse feed; \"-\" reads stdin (default: synthetic pulses from the world)")
	from := fs2.Int("from", 0, "first world month to feed with the synthetic source")
	rate := fs2.Float64("rate", 0, "feed rate in events/sec (0 = as fast as the pipeline accepts)")
	addr := fs2.String("addr", "", "also serve attribution over HTTP, republishing at every checkpoint cut")
	modelDir := fs2.String("model-dir", "trail-ckpt", "trained checkpoint directory (encoders + model) used with -addr")
	queue := fs2.Int("queue", 256, "admission queue depth")
	wait := fs2.Duration("wait", -1, "max Submit wait on a full queue before shedding (<0 blocks; file feeds prefer backpressure over loss)")
	syncEvery := fs2.Int("sync-every", 1, "events per WAL fsync (>1 trades a bounded power-failure loss window for throughput)")
	publishEvery := fs2.Int("publish-every", 32, "events between checkpoint cuts (<0 disables count-based cuts)")
	flush := fs2.Duration("flush", 2*time.Second, "idle checkpoint interval (<0 disables)")
	layers := fs2.Int("layers", 2, "incremental label-propagation depth (0 disables)")
	chaos := fs2.Float64("chaos", 0, "permanent enrichment-failure rate injected behind the resilience middleware")
	transient := fs2.Float64("transient", 0, "transient enrichment-failure rate (absorbed by retries)")
	repair := fs2.Duration("repair", 5*time.Second, "degraded-node repair interval (<=0 disables the catch-up loop)")
	staleAfter := fs2.Duration("stale-after", 0, "report /healthz degraded (503) when the served snapshot is older than this (0 disables)")
	csrRebuild := fs2.Bool("csr-rebuild", false, "rebuild the CSR adjacency from scratch at every cut instead of patching it incrementally (A/B lever)")
	fs2.Parse(args)

	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	w := osint.NewWorld(*cfg)
	names := w.Resolver().Names()

	// Enrichment stack: always behind the resilience middleware so
	// transient provider failures stall only the affected event; optional
	// chaos injection exercises the degradation + repair path.
	var stack osint.FallibleServices
	if *chaos > 0 || *transient > 0 {
		clock := osint.NewManualClock(time.Unix(0, 0)).AutoAdvance(time.Millisecond)
		cc := osint.ChaosConfig{
			Seed:                    cfg.Seed,
			PermanentRate:           *chaos,
			TransientRate:           *transient,
			MaxConsecutiveTransient: 3,
			Clock:                   clock,
		}
		rcfg := osint.DefaultResilienceConfig()
		rcfg.Clock = clock
		rcfg.MaxAttempts = 5
		stack = osint.NewResilientServices(osint.NewChaosServices(w, cc), rcfg)
	} else {
		stack = osint.NewResilientServices(osint.Infallible(w), osint.DefaultResilienceConfig())
	}

	// With -addr, the frozen model artefacts load once up front — only the
	// graph and features evolve during ingest, so each cut republishes a
	// snapshot over the same encoders + weights.
	reg := metrics.NewRegistry()
	var srvPtr atomic.Pointer[serve.Server]
	var makeSnap func(*core.TKG) (*serve.Snapshot, error)
	if *addr != "" {
		enc, err := gnn.LoadEncoders(filepath.Join(*modelDir, serve.EncodersFile))
		if err != nil {
			return fmt.Errorf("ingest: load encoders (run `trail train -dir %s` first): %w", *modelDir, err)
		}
		f32Path := filepath.Join(*modelDir, serve.ModelF32File)
		if _, err := ckpt.Peek(f32Path); err == nil {
			model, err := gnn.LoadModelOf[float32](f32Path)
			if err != nil {
				return fmt.Errorf("ingest: load float32 model: %w", err)
			}
			makeSnap = func(t *core.TKG) (*serve.Snapshot, error) {
				return serve.NewSnapshot(t.G, t.Features, names, enc, model)
			}
		} else if !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("ingest: inspect %s: %w", f32Path, err)
		} else {
			model, err := gnn.LoadModel(filepath.Join(*modelDir, serve.ModelFile))
			if err != nil {
				return fmt.Errorf("ingest: load model (run `trail train -dir %s` first): %w", *modelDir, err)
			}
			makeSnap = func(t *core.TKG) (*serve.Snapshot, error) {
				return serve.NewSnapshot(t.G, t.Features, names, enc, model)
			}
		}
	}

	pcfg := ingest.Config{
		Dir:            *dir,
		Resolver:       w.Resolver(),
		Services:       stack,
		Build:          core.DefaultBuildConfig(),
		BasePath:       *base,
		Layers:         *layers,
		QueueDepth:     *queue,
		EnqueueWait:    *wait,
		SyncEvery:      *syncEvery,
		PublishEvery:   *publishEvery,
		FlushInterval:  *flush,
		RepairInterval: *repair,
		CSRRebuild:     *csrRebuild,
		Metrics:        reg,
		Logf:           logf,
	}
	if *layers > 0 {
		pcfg.Classes = len(names)
	}
	if makeSnap != nil {
		pcfg.Publish = func(t *core.TKG, wm uint64) {
			s := srvPtr.Load()
			if s == nil {
				return
			}
			snap, err := makeSnap(t)
			if err != nil {
				logf("ingest: snapshot build failed at watermark %d: %v", wm, err)
				return
			}
			s.Publish(snap)
		}
	}

	p, err := ingest.New(pcfg)
	if err != nil {
		return err
	}
	if p.Replayed > 0 || p.DroppedTail {
		logf("ingest: recovered — %d WAL event(s) replayed past watermark %d (torn tail dropped: %v)",
			p.Replayed, p.Watermark(), p.DroppedTail)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srvErr := make(chan error, 1)
	if *addr != "" {
		// The loader snapshots live pipeline state, so the initial install
		// (and any POST /v1/reload) serves the current graph.
		scfg := serve.Config{Registry: reg, Logf: logf, StaleAfter: *staleAfter}
		scfg.ExtraStats = func() map[string]any {
			st := p.Stats()
			return map[string]any{
				"csr_patch_applied":  st.CSRPatchApplied,
				"csr_patch_fallback": st.CSRPatchFallback,
				"last_cut_seconds":   st.LastCutSeconds,
				"checkpoints":        st.Checkpoints,
				"watermark":          st.Watermark,
			}
		}
		srv, err := serve.New(scfg, func() (*serve.Snapshot, error) {
			clone, _, err := p.State(ctx)
			if err != nil {
				return nil, err
			}
			return makeSnap(clone)
		})
		if err != nil {
			p.Close()
			return err
		}
		srvPtr.Store(srv)
		go func() { srvErr <- srv.Run(ctx, *addr) }()
	}

	feedErr := runFeed(ctx, p, w, *feed, *from, cfg.Months, *rate, logf)
	if *addr != "" {
		if feedErr == nil && ctx.Err() == nil {
			logf("ingest: feed drained (%d events durable) — serving until SIGTERM", p.DurableSeq())
		}
		<-ctx.Done()
	}

	closeErr := p.Close() // drain the queue, fsync a final checkpoint
	st := p.Stats()
	fmt.Printf("ingest: accepted=%d shed=%d applied=%d skipped=%d duplicates=%d failed=%d replayed=%d checkpoints=%d publishes=%d watermark=%d wal=%dB\n",
		st.Accepted, st.Shed, st.Applied, st.Skipped, st.Duplicates, st.Failed,
		st.Replayed, st.Checkpoints, st.Publishes, st.Watermark, st.WALBytes)

	if *addr != "" {
		if err := <-srvErr; err != nil && feedErr == nil {
			feedErr = err
		}
	}
	if feedErr != nil && !errors.Is(feedErr, context.Canceled) {
		return feedErr
	}
	return closeErr
}

// runFeed submits pulses from the configured source, resuming after the
// pipeline's durable sequence number so a restarted process never
// re-submits events that are already in the WAL (required: duplicate
// accounting is persisted, so re-submission would fork recovered state
// from an uninterrupted run).
func runFeed(ctx context.Context, p *ingest.Pipeline, w *osint.World, feed string, from, months int, rate float64, logf func(string, ...any)) error {
	var pulses []osint.Pulse
	switch feed {
	case "":
		pulses = w.PulsesInMonths(from, months)
	case "-":
		var err error
		if pulses, err = osint.DecodePulses(os.Stdin); err != nil {
			return fmt.Errorf("ingest: decode stdin feed: %w", err)
		}
	default:
		f, err := os.Open(feed)
		if err != nil {
			return err
		}
		pulses, err = osint.DecodePulses(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("ingest: decode feed %s: %w", feed, err)
		}
	}

	skip := p.DurableSeq()
	if skip > uint64(len(pulses)) {
		return fmt.Errorf("ingest: pipeline is %d events ahead of a %d-event feed — wrong feed for this state directory?",
			skip, len(pulses))
	}
	if skip > 0 {
		logf("ingest: resuming feed at event %d/%d", skip, len(pulses))
	}
	pulses = pulses[skip:]

	var tick *time.Ticker
	if rate > 0 {
		tick = time.NewTicker(time.Duration(float64(time.Second) / rate))
		defer tick.Stop()
	}
	for i := range pulses {
		if tick != nil {
			select {
			case <-tick.C:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		err := p.Submit(ctx, pulses[i])
		switch {
		case err == nil:
		case errors.Is(err, ingest.ErrOverloaded):
			// Shed under pressure; the counter on /metrics records it.
		default:
			return err
		}
	}
	return p.Barrier(ctx)
}
