package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

// cmdLoadgen drives a running `trail serve` at fixed concurrency: it
// samples a key corpus from /v1/sample, hammers /v1/attribute from -c
// parallel clients for -duration, and reports throughput plus latency
// percentiles (and machine-readable JSON with -out).
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	base := fs.String("url", "http://127.0.0.1:8099", "base URL of a running `trail serve`")
	conc := fs.Int("c", 64, "concurrent clients")
	dur := fs.Duration("duration", 10*time.Second, "how long to generate load")
	kind := fs.String("kind", "event", "node kind to query (event|ip|url|domain|asn)")
	nkeys := fs.Int("keys", 256, "distinct keys sampled from the server")
	topk := fs.Int("topk", 3, "ranked predictions requested per query")
	out := fs.String("out", "", "also write the report as JSON to this path")
	fs.Parse(args)

	keys, err := sampleKeys(*base, *kind, *nkeys)
	if err != nil {
		return err
	}
	if len(keys) == 0 {
		return fmt.Errorf("loadgen: server has no %q keys to query", *kind)
	}

	// The default transport keeps only 2 idle conns per host; at -c 64
	// that would churn a fresh TCP connection per request.
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * *conc,
		MaxIdleConnsPerHost: 2 * *conc,
	}}
	endpoint := *base + "/v1/attribute"

	type workerStats struct {
		latencies []time.Duration
		errors    int
	}
	stats := make([]workerStats, *conc)
	deadline := time.Now().Add(*dur)
	started := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			for i := 0; time.Now().Before(deadline); i++ {
				body, _ := json.Marshal(map[string]any{
					"kind": *kind, "key": keys[(w+i)%len(keys)], "top_k": *topk,
				})
				t0 := time.Now()
				resp, err := client.Post(endpoint, "application/json", bytes.NewReader(body))
				if err != nil {
					st.errors++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					st.errors++
					continue
				}
				st.latencies = append(st.latencies, time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(started)

	var all []time.Duration
	errors := 0
	for _, st := range stats {
		all = append(all, st.latencies...)
		errors += st.errors
	}
	if len(all) == 0 {
		return fmt.Errorf("loadgen: no request succeeded (%d errors) — is `trail serve` running at %s?", errors, *base)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(q float64) time.Duration { return all[int(q*float64(len(all)-1))] }
	rps := float64(len(all)) / elapsed.Seconds()

	fmt.Printf("loadgen: %d clients for %s against %s (%d keys, kind %s)\n",
		*conc, elapsed.Round(time.Millisecond), *base, len(keys), *kind)
	fmt.Printf("  requests    %d ok, %d errors\n", len(all), errors)
	fmt.Printf("  throughput  %.1f req/s\n", rps)
	fmt.Printf("  latency     p50 %s  p90 %s  p99 %s  max %s\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), all[len(all)-1].Round(time.Microsecond))

	if *out != "" {
		report := map[string]any{
			"clients":          *conc,
			"duration_seconds": elapsed.Seconds(),
			"kind":             *kind,
			"keys":             len(keys),
			"requests":         len(all),
			"errors":           errors,
			"req_per_second":   rps,
			"p50_ms":           float64(pct(0.50)) / float64(time.Millisecond),
			"p90_ms":           float64(pct(0.90)) / float64(time.Millisecond),
			"p99_ms":           float64(pct(0.99)) / float64(time.Millisecond),
			"max_ms":           float64(all[len(all)-1]) / float64(time.Millisecond),
		}
		raw, _ := json.MarshalIndent(report, "", "  ")
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("report written to", *out)
	}
	return nil
}

func sampleKeys(base, kind string, limit int) ([]string, error) {
	u := base + "/v1/sample?kind=" + url.QueryEscape(kind) + "&limit=" + strconv.Itoa(limit)
	resp, err := http.Get(u)
	if err != nil {
		return nil, fmt.Errorf("loadgen: sample keys: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: GET /v1/sample: %d %s", resp.StatusCode, body)
	}
	var sample struct {
		Keys []string `json:"keys"`
	}
	if err := json.Unmarshal(body, &sample); err != nil {
		return nil, fmt.Errorf("loadgen: bad sample response: %w", err)
	}
	return sample.Keys, nil
}
