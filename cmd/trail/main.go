// Command trail is the command-line front end of the TRAIL reproduction:
// it generates the synthetic OSINT world, builds the TRAIL knowledge
// graph, reports dataset statistics, and runs every experiment from the
// paper's evaluation.
//
// Usage:
//
//	trail world       [-seed N] [-months N] [-events N] [-from N] [-out pulses.ndjson]
//	trail build       [-seed N] [-months N] [-events N] [-out tkg.gob] [-shards N] [-resume-shards]
//	trail stats       [-seed N] [-months N] [-events N]
//	trail train       [-seed N] [-layers N] [-epochs N] [-dir ckpt] [-resume] [-every N] [-f32]
//	trail attribute   [-seed N] [-tkg tkg.gob] [-feed pulses.ndjson]
//	trail serve       [-seed N] [-dir ckpt] [-addr HOST:PORT] [-max-batch N] [-max-wait D]
//	trail ingest      [-seed N] [-dir state] [-feed pulses.ndjson] [-addr HOST:PORT] [-model-dir ckpt]
//	trail loadgen     [-url URL] [-c N] [-duration D] [-out report.json]
//	trail casestudy   [-seed N] [-fast]
//	trail experiments [-seed N] [-fast] [-only table2,fig4,...] [-resume DIR] [-md EXPERIMENTS.md]
//	trail help [command]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"trail/internal/core"
	"trail/internal/eval"
	"trail/internal/gnn"
	"trail/internal/graph"
	"trail/internal/labelprop"
	"trail/internal/osint"
	"trail/internal/serve"
	"trail/internal/shard"
)

// command is one subcommand in the registry that drives dispatch, the
// top-level usage listing, and `trail help <command>` (which re-runs the
// command with -h so its FlagSet prints every flag with its default).
type command struct {
	name    string
	summary string
	run     func(args []string) error
}

var commands = []command{
	{"world", "generate the synthetic OSINT pulse feed (NDJSON)", cmdWorld},
	{"build", "build the TRAIL knowledge graph and save a full snapshot", cmdBuild},
	{"stats", "print the Table II dataset report and graph structure", cmdStats},
	{"train", "train the production GNN with interrupt-safe checkpoints", cmdTrain},
	{"attribute", "attribute pulses from a feed against a TKG snapshot", cmdAttribute},
	{"serve", "serve attribution over HTTP from a training checkpoint directory", cmdServe},
	{"ingest", "stream pulses through the crash-safe WAL pipeline into live snapshots", cmdIngest},
	{"loadgen", "hammer a running serve daemon and report latency percentiles", cmdLoadgen},
	{"casestudy", "attribute a never-seen event (paper §VII-C)", cmdCaseStudy},
	{"experiments", "run every table/figure of the evaluation", cmdExperiments},
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name, args := os.Args[1], os.Args[2:]
	if name == "help" || name == "-h" || name == "--help" {
		if len(args) == 0 {
			usage()
			return
		}
		if c := lookupCommand(args[0]); c != nil {
			fmt.Fprintf(os.Stderr, "trail %s — %s\n\n", c.name, c.summary)
			c.run([]string{"-h"}) // ExitOnError FlagSets print defaults and exit 0
			return
		}
		fmt.Fprintf(os.Stderr, "trail: unknown command %q\n", args[0])
		usage()
		os.Exit(2)
	}
	c := lookupCommand(name)
	if c == nil {
		fmt.Fprintf(os.Stderr, "trail: unknown command %q\n", name)
		usage()
		os.Exit(2)
	}
	if err := c.run(args); err != nil {
		fmt.Fprintln(os.Stderr, "trail:", err)
		os.Exit(1)
	}
}

func lookupCommand(name string) *command {
	for i := range commands {
		if commands[i].name == name {
			return &commands[i]
		}
	}
	return nil
}

func usage() {
	fmt.Fprint(os.Stderr, "trail — knowledge-graph APT attribution (TRAIL reproduction)\n\nusage: trail <command> [flags]\n\ncommands:\n")
	for _, c := range commands {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", c.name, c.summary)
	}
	fmt.Fprint(os.Stderr, "\nrun `trail help <command>` for that command's flags and defaults\n")
}

func worldFlags(fs *flag.FlagSet) *osint.WorldConfig {
	cfg := osint.DefaultConfig()
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "world seed")
	fs.IntVar(&cfg.Months, "months", cfg.Months, "months of simulated activity")
	fs.IntVar(&cfg.EventsPerMonth, "events", cfg.EventsPerMonth, "events per month")
	return &cfg
}

func cmdWorld(args []string) error {
	fs := flag.NewFlagSet("world", flag.ExitOnError)
	cfg := worldFlags(fs)
	from := fs.Int("from", 0, "emit only months >= this (late-month feeds for `trail ingest`)")
	out := fs.String("out", "", "output path (default stdout)")
	fs.Parse(args)

	w := osint.NewWorld(*cfg)
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	return osint.EncodePulses(dst, w.PulsesInMonths(*from, cfg.Months))
}

// chaosStack wires the fault-tolerant enrichment demo: world -> chaos
// injector -> retry/breaker middleware, on a manual clock so backoff
// costs nothing. The stack's behaviour is a pure function of seed, which
// is what lets the sharded build hand each shard its own deterministic
// copy.
func chaosStack(w *osint.World, seed int64, permanent, transient float64) osint.FallibleServices {
	clock := osint.NewManualClock(time.Unix(0, 0)).AutoAdvance(time.Millisecond)
	cc := osint.ChaosConfig{
		Seed:                    seed,
		PermanentRate:           permanent,
		TransientRate:           transient,
		MaxConsecutiveTransient: 3,
		Clock:                   clock,
	}
	rcfg := osint.DefaultResilienceConfig()
	rcfg.Clock = clock
	rcfg.MaxAttempts = 5
	return osint.NewResilientServices(osint.NewChaosServices(w, cc), rcfg)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	cfg := worldFlags(fs)
	out := fs.String("out", "tkg.gob", "TKG snapshot path (graph + features)")
	chaos := fs.Float64("chaos", 0, "permanent enrichment-failure rate injected behind the resilience middleware")
	transient := fs.Float64("transient", 0, "transient enrichment-failure rate (absorbed by retries)")
	shards := fs.Int("shards", 1, "partition the build into N supervised time-window shards (>1 enables the sharded pipeline)")
	shardWorkers := fs.Int("shard-workers", 0, "concurrent shard builders (default GOMAXPROCS)")
	shardDir := fs.String("shard-dir", "trail-shards", "per-shard checkpoint directory (shard-%04d.ck)")
	resumeShards := fs.Bool("resume-shards", false, "reuse finished shard checkpoints in -shard-dir instead of rebuilding")
	shardTimeout := fs.Duration("shard-timeout", 0, "per-attempt build budget for one shard (0 = no limit)")
	shardChaos := fs.Float64("shard-chaos", 0, "shard-level fault rate: injects attempt failures (and panics/poison at half/quarter the rate) from a seeded injector")
	shardDelay := fs.Duration("shard-delay", 0, "pause after each shard checkpoint (widens the kill window for crash tests)")
	fs.Parse(args)

	w := osint.NewWorld(*cfg)

	if *shards > 1 {
		scfg := shard.Config{
			Shards:    *shards,
			Workers:   *shardWorkers,
			Dir:       *shardDir,
			Resume:    *resumeShards,
			Build:     core.DefaultBuildConfig(),
			Timeout:   *shardTimeout,
			StepDelay: *shardDelay,
		}
		if *chaos > 0 || *transient > 0 {
			// Each shard (and each retry) gets a fresh stack seeded by its
			// index, so the enrichment faults a shard sees are independent
			// of which worker ran it or how many attempts came before.
			scfg.Services = func(i int) osint.FallibleServices {
				return chaosStack(w, cfg.Seed+int64(i+1), *chaos, *transient)
			}
		}
		if *shardChaos > 0 {
			scfg.Chaos = &shard.ChaosConfig{
				Seed:       cfg.Seed,
				FailRate:   *shardChaos,
				PanicRate:  *shardChaos / 2,
				PoisonRate: *shardChaos / 4,
			}
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		res, err := shard.Build(ctx, w, scfg)
		if err != nil {
			return err
		}
		if err := res.TKG.Save(*out); err != nil {
			return err
		}
		fmt.Printf("built TKG: %d nodes, %d edges, %d events (%d pulses skipped)\n",
			res.TKG.G.NumNodes(), res.TKG.G.NumEdges(), len(res.TKG.EventNodes()), res.TKG.SkippedPulses)
		fmt.Print(res.Report.Render())
		fmt.Println("snapshot written to", *out)
		return nil
	}

	var tkg *core.TKG
	if *chaos > 0 || *transient > 0 {
		tkg = core.NewTKGFallible(chaosStack(w, cfg.Seed, *chaos, *transient), w.Resolver(), core.DefaultBuildConfig())
	} else {
		tkg = core.NewTKG(w, w.Resolver(), core.DefaultBuildConfig())
	}
	rep, err := tkg.Build(w.Pulses())
	if err != nil {
		return err
	}
	if err := tkg.Save(*out); err != nil {
		return err
	}
	fmt.Printf("built TKG: %d nodes, %d edges, %d events (%d pulses skipped)\n",
		tkg.G.NumNodes(), tkg.G.NumEdges(), len(tkg.EventNodes()), tkg.SkippedPulses)
	fmt.Print(rep.Render())
	fmt.Println("snapshot written to", *out)
	return nil
}

// cmdAttribute loads a TKG snapshot, merges the pulses from an NDJSON
// feed, and attributes each one with label propagation. The snapshot must
// have been built from the same world seed so the enrichment services
// resolve its IOCs.
func cmdAttribute(args []string) error {
	fs := flag.NewFlagSet("attribute", flag.ExitOnError)
	cfg := worldFlags(fs)
	snap := fs.String("tkg", "tkg.gob", "TKG snapshot path")
	feed := fs.String("feed", "", "NDJSON pulse feed (default stdin)")
	layers := fs.Int("layers", 4, "label propagation depth")
	fs.Parse(args)

	w := osint.NewWorld(*cfg)
	tkg, err := core.LoadTKG(*snap, w, w.Resolver())
	if err != nil {
		return err
	}
	src := os.Stdin
	if *feed != "" {
		f, err := os.Open(*feed)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	pulses, err := osint.DecodePulses(src)
	if err != nil {
		return err
	}
	names := w.Resolver().Names()
	for _, p := range pulses {
		evID, err := tkg.AddPulse(p)
		if err == core.ErrSkipped {
			fmt.Printf("%s: skipped (no unique APT tag)\n", p.ID)
			continue
		}
		if err != nil {
			fmt.Printf("%s: %v\n", p.ID, err)
			continue
		}
		tkg.FinalizeLabels()
		seeds := make(map[graph.NodeID]int)
		for _, ev := range tkg.EventNodes() {
			if ev != evID {
				if l := tkg.G.Node(ev).Label; l >= 0 {
					seeds[ev] = l
				}
			}
		}
		pred := labelprop.AttributeCSR(tkg.G.CSR(), seeds, []graph.NodeID{evID}, len(names), *layers)[0]
		verdict := "UNATTRIBUTED"
		if pred >= 0 {
			verdict = names[pred]
		}
		fmt.Printf("%s: %s\n", p.ID, verdict)
	}
	return nil
}

// cmdTrain trains the production GNN (encoders + GraphSAGE) with
// interrupt-safe, epoch-granular checkpoints. SIGINT/SIGTERM cancel the
// context; the training loops write one final checkpoint before exiting,
// and a later run with -resume continues to bit-identical final weights.
func cmdTrain(args []string) error {
	fs2 := flag.NewFlagSet("train", flag.ExitOnError)
	cfg := worldFlags(fs2)
	layers := fs2.Int("layers", 2, "GraphSAGE message-passing depth")
	epochs := fs2.Int("epochs", 60, "training epochs")
	fast := fs2.Bool("fast", false, "small models for a quick run")
	dir := fs2.String("dir", "trail-ckpt", "checkpoint directory")
	resume := fs2.Bool("resume", false, "resume from checkpoints in -dir")
	every := fs2.Int("every", 1, "epochs between checkpoints")
	f32 := fs2.Bool("f32", false, "also write a float32 serving checkpoint (model.f32.ck, preferred by `trail serve`)")
	fs2.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	encPath := filepath.Join(*dir, serve.EncodersFile)
	trainPath := filepath.Join(*dir, "train.ck")
	modelPath := filepath.Join(*dir, serve.ModelFile)

	opts := eval.DefaultOptions()
	opts.World = *cfg
	opts.Fast = *fast
	ectx, err := eval.NewContext(opts)
	if err != nil {
		return err
	}
	// The TKG snapshot rides along in the checkpoint directory so `trail
	// serve -dir` finds graph, encoders and model in one place.
	if err := ectx.TKG.Save(filepath.Join(*dir, serve.TKGFile)); err != nil {
		return err
	}
	fmt.Printf("TKG ready: %d nodes, %d events (snapshot in %s)\n",
		ectx.TKG.G.NumNodes(), len(ectx.TKG.EventNodes()), filepath.Join(*dir, serve.TKGFile))

	// A resumed run keeps the checkpointed config's epoch budget (the flag
	// is ignored — changing it would break bit-identical resume), so the
	// progress prints track the effective total.
	totalEpochs := *epochs
	interrupted := func() error {
		fmt.Printf("\ninterrupted — checkpoints saved under %s\n", *dir)
		fmt.Printf("resume with: trail train -seed %d -layers %d -epochs %d -dir %s -resume\n",
			cfg.Seed, *layers, totalEpochs, *dir)
		return nil
	}

	// Phase 1: per-IOC-kind autoencoders, resumable at kind granularity.
	aeCfg := gnn.DefaultAEConfig()
	if *fast {
		aeCfg.Epochs = 2
		aeCfg.Hidden = 32
	}
	encOpts := gnn.EncoderTrainOpts{
		Checkpoint: func(partial *gnn.EncoderSet) error {
			return gnn.SaveEncoders(encPath, partial)
		},
	}
	if *resume {
		if prev, err := gnn.LoadEncoders(encPath); err == nil {
			encOpts.Resume = prev
			fmt.Printf("resuming encoders: %d kind(s) already trained\n", len(prev.AEs))
		} else if !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("encoder checkpoint unusable: %w", err)
		}
	}
	set, err := gnn.TrainEncodersCtx(ctx, ectx.TKG.G, ectx.TKG.Features, aeCfg, encOpts)
	if errors.Is(err, context.Canceled) {
		return interrupted()
	}
	if err != nil {
		return err
	}
	if err := gnn.SaveEncoders(encPath, set); err != nil {
		return err
	}
	fmt.Printf("encoders trained (%d kinds), checkpointed to %s\n", len(set.AEs), encPath)

	// Phase 2: the GraphSAGE classifier, resumable at epoch granularity.
	in := gnn.BuildInput(ectx.TKG.G, ectx.TKG.Features, set, ectx.Classes)
	gcfg := gnn.Config{
		Layers: *layers, Hidden: 64, Encoding: aeCfg.Encoding,
		LR: 1e-2, Epochs: *epochs, Seed: opts.Seed,
	}
	if *fast {
		gcfg.Hidden = 16
	}
	tOpts := gnn.TrainOpts{
		Ctx:             ctx,
		CheckpointEvery: *every,
		Checkpoint: func(st *gnn.TrainState) error {
			fmt.Printf("  epoch %d/%d checkpointed\n", st.Epoch, totalEpochs)
			return gnn.SaveTrainState(trainPath, st)
		},
	}
	if *resume {
		if st, err := gnn.LoadTrainState(trainPath); err == nil {
			tOpts.Resume = st
			if st.SAGE != nil {
				totalEpochs = st.SAGE.Config.Epochs
			}
			fmt.Printf("resuming GNN training from epoch %d/%d\n", st.Epoch, totalEpochs)
		} else if !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("training checkpoint unusable: %w", err)
		}
	}
	model, err := gnn.TrainCtx(in, ectx.TKG.EventNodes(), gcfg, tOpts)
	if errors.Is(err, context.Canceled) {
		return interrupted()
	}
	if err != nil {
		return err
	}
	if err := gnn.SaveModel(modelPath, model); err != nil {
		return err
	}
	os.Remove(trainPath) // the run is complete; the mid-training state is obsolete
	fmt.Println("model written to", modelPath)
	if *f32 {
		f32Path := filepath.Join(*dir, serve.ModelF32File)
		if err := gnn.SaveModel(f32Path, gnn.CastModel[float32](model)); err != nil {
			return err
		}
		fmt.Println("float32 serving model written to", f32Path)
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	cfg := worldFlags(fs)
	fs.Parse(args)

	opts := eval.DefaultOptions()
	opts.World = *cfg
	ctx, err := eval.NewContext(opts)
	if err != nil {
		return err
	}
	fmt.Println(eval.RunTableII(ctx).Render())
	fmt.Println(eval.RunFigure4(ctx).Render())
	fmt.Println(eval.RunGraphStats(ctx).Render())
	fmt.Println("Most reused first-order IOCs:")
	for _, n := range eval.MostReusedIOCs(ctx, 8) {
		fmt.Printf("  %-7s %-40s in %d events\n", n.Kind, n.Key, n.EventCount)
	}
	return nil
}

func cmdCaseStudy(args []string) error {
	fs := flag.NewFlagSet("casestudy", flag.ExitOnError)
	cfg := worldFlags(fs)
	fast := fs.Bool("fast", false, "small models for a quick run")
	fs.Parse(args)

	opts := eval.DefaultOptions()
	opts.World = *cfg
	opts.Fast = *fast
	ctx, err := eval.NewContext(opts)
	if err != nil {
		return err
	}
	res, err := eval.RunCaseStudy(ctx)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return nil
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	cfg := worldFlags(fs)
	fast := fs.Bool("fast", false, "small models for a quick run")
	only := fs.String("only", "", "comma-separated subset: table2,fig3,fig4,graph,table3,table4,case,fig7,fig8,fig9,fig10,ablations,unknown,zeroshot,tuning,robust")
	md := fs.String("md", "", "also write the paper-vs-measured record to this markdown file")
	resumeDir := fs.String("resume", "", "journal sweep results under this directory and skip completed units on rerun")
	fs.Parse(args)

	opts := eval.DefaultOptions()
	opts.World = *cfg
	opts.Fast = *fast
	if *resumeDir != "" {
		if err := os.MkdirAll(*resumeDir, 0o755); err != nil {
			return err
		}
		opts.ResumeDir = *resumeDir
	}
	ctx, err := eval.NewContext(opts)
	if err != nil {
		return err
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	run := func(key string) bool { return len(want) == 0 || want[key] }
	report := eval.NewMarkdownReport(fmt.Sprintf(
		"seed=%d months=%d events/month=%d (%d TKG events)",
		cfg.Seed, cfg.Months, cfg.EventsPerMonth, len(ctx.TKG.EventNodes())))
	emit := func(id, title, paper, measured, shape string) {
		fmt.Println(measured)
		report.Add(id, title, paper, measured, shape)
	}

	if run("table2") {
		emit("Table II", "TKG dataset report", eval.PaperTableII,
			eval.RunTableII(ctx).Render(),
			"relative structure preserved: enrichment discovers the majority of IOC nodes; reuse > 1.")
	}
	if run("fig3") {
		res, err := eval.RunFigure3(ctx, "")
		if err != nil {
			return err
		}
		emit("Figure 3", "ego-net around one event", eval.PaperFigure3, res.Render(),
			"enrichment multiplies the reported IOCs into a rich 2-hop subgraph.")
	}
	if run("fig4") {
		res := eval.RunFigure4(ctx)
		emit("Figure 4", "IOC reuse distribution", eval.PaperFigure4, res.Render(),
			fmt.Sprintf("heavy head holds: %.0f%% of domains are single-use.",
				100*res.SingleUseFraction(graph.KindDomain)))
	}
	if run("graph") {
		res := eval.RunGraphStats(ctx)
		shape := fmt.Sprintf("giant component %.1f%%, %.0f%% of events within 2 hops (paper: 99.9%%, 85%%).",
			res.Stats.LargestComponentPct, res.Stats.EventsWithin2HopsPct)
		emit("Graph stats", "connectivity (§IV-§V)", eval.PaperGraphStats, res.Render(), shape)
	}
	if run("table3") {
		res, err := eval.RunTableIII(ctx, eval.DefaultTableIIIConfig())
		if err != nil {
			return err
		}
		emit("Table III", "per-IOC attribution", eval.PaperTableIII, res.Render(),
			tableIIIShape(res))
	}
	if run("table4") {
		cfg4 := eval.DefaultTableIVConfig()
		cfg4.Models = eval.TraditionalModels()
		res, err := eval.RunTableIV(ctx, cfg4)
		if err != nil {
			return err
		}
		emit("Table IV", "event attribution", eval.PaperTableIV, res.Render(),
			tableIVShape(res))
	}
	if run("case") {
		res, err := eval.RunCaseStudy(ctx)
		if err != nil {
			return err
		}
		shape := "neighbour labels raise GNN confidence, as in the paper"
		if res.GNNConfVisible < res.GNNConfBlind {
			shape = "NOTE: neighbour labels did not raise confidence on this sample"
		}
		emit("Figs. 5-6", "case study: new event", eval.PaperCaseStudy, res.Render(), shape)
	}
	if run("fig7") {
		res, err := eval.RunFigure7(ctx)
		if err != nil {
			return err
		}
		emit("Figure 7", "unseen-month confusion matrix", eval.PaperFigure7, res.Render(),
			fmt.Sprintf("frozen-model accuracy %.2f on the first unseen month.", res.Accuracy))
	}
	if run("fig8") {
		res, err := eval.RunFigure8(ctx)
		if err != nil {
			return err
		}
		emit("Figure 8", "model drift", eval.PaperFigure8, res.Render(),
			fmt.Sprintf("mean retrained-minus-frozen gap over the final 2 months: %+.3f (positive = retraining pays).",
				res.MeanGapLastMonths(2)))
	}
	if run("fig9") {
		res, err := eval.RunFigure9(ctx, eval.DefaultFigure9Config())
		if err != nil {
			return err
		}
		emit("Figure 9", "SHAP feature signature", eval.PaperFigure9, res.Render(),
			"behavioural features (server stack, encoding, lexical style) top the ranking.")
	}
	if run("fig10") {
		res, err := eval.RunFigure10(ctx, "", 15)
		if err != nil {
			return err
		}
		emit("Figure 10", "GNNExplainer subgraph", eval.PaperFigure10, res.Render(),
			fmt.Sprintf("top nodes are dominated by IOCs; %d other events among them.",
				res.ImportantEventNeighbors))
	}
	if run("ablations") {
		res, err := eval.RunAblations(ctx)
		if err != nil {
			return err
		}
		emit("Ablations", "design choices (DESIGN.md §5)", "n/a (reproduction-specific)",
			res.Render(), "")
	}
	if run("unknown") {
		res, err := eval.RunUnknownAPTStudy(ctx, "")
		if err != nil {
			return err
		}
		emit("Unknown APT", "confidence thresholding (§IX)",
			"future work: low-confidence predictions classified as out-of-distribution",
			res.Render(), "")
	}
	if run("zeroshot") {
		res, err := eval.RunZeroShotLP(ctx, "")
		if err != nil {
			return err
		}
		emit("Zero-shot LP", "non-parametric update (§IX)",
			"LP needs no retraining when labelled data of a new APT is added to the TKG",
			res.Render(), "")
	}
	if run("robust") {
		res, err := eval.RunRobustness(ctx, eval.DefaultRobustnessConfig())
		if err != nil {
			return err
		}
		last := res.Points[len(res.Points)-1]
		emit("Robustness", "attribution vs enrichment failure rate",
			"n/a (reproduction-specific): the paper assumes fully available OSINT providers",
			res.Render(),
			fmt.Sprintf("LP drops %.3f and GNN drops %.3f from fault-free to %.0f%% permanent enrichment failures (%d degraded nodes).",
				res.AccuracyDrop("LP"), res.AccuracyDrop("GNN"), 100*last.Rate, last.Degraded))
	}
	if run("tuning") {
		for _, m := range []eval.ModelName{eval.ModelXGB, eval.ModelRF} {
			res, err := eval.RunTuning(ctx, m, graph.KindURL, 0)
			if err != nil {
				return err
			}
			emit("TPE "+string(m), "hyperparameter tuning (§VI-A)",
				"XGB and RF hyperparameters optimised with Hyperopt's TPE",
				res.Render(), "")
		}
	}
	if *md != "" {
		f, err := os.Create(*md)
		if err != nil {
			return err
		}
		if _, err := report.WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", *md)
	}
	return nil
}

// tableIIIShape verifies the paper's per-IOC ordering: URLs most
// attributable, domains least.
func tableIIIShape(res *eval.TableIIIResult) string {
	best := func(kind graph.NodeKind) float64 {
		b := 0.0
		for _, m := range eval.TraditionalModels() {
			if c := res.Cell(m, kind); c != nil && c.Acc.Mean > b {
				b = c.Acc.Mean
			}
		}
		return b
	}
	url, ip, dom := best(graph.KindURL), best(graph.KindIP), best(graph.KindDomain)
	verdict := "HOLDS"
	if !(url > ip && ip > dom) {
		verdict = "PARTIAL"
	}
	return fmt.Sprintf("URL (%.2f) > IP (%.2f) > domain (%.2f) ordering: %s.", url, ip, dom, verdict)
}

// tableIVShape verifies the paper's event-attribution ordering: LP
// improves with depth, GNN beats LP.
func tableIVShape(res *eval.TableIVResult) string {
	get := func(name string) float64 {
		if r := res.Row(name); r != nil {
			return r.Acc.Mean
		}
		return -1
	}
	lp2, lp4 := get("LP 2L"), get("LP 4L")
	bestGNN := -1.0
	for _, n := range []string{"GNN 2L", "GNN 3L", "GNN 4L"} {
		if v := get(n); v > bestGNN {
			bestGNN = v
		}
	}
	verdict := "HOLDS"
	if !(lp4 >= lp2 && bestGNN >= lp4) {
		verdict = "PARTIAL"
	}
	return fmt.Sprintf("LP deepens %.2f->%.2f; best GNN %.2f >= LP 4L: %s.", lp2, lp4, bestGNN, verdict)
}
