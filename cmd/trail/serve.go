package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"trail/internal/osint"
	"trail/internal/serve"
)

// cmdServe runs the attribution daemon over a `trail train` checkpoint
// directory. The world flags must match the training run so the
// enrichment services and APT roster reattach to the TKG snapshot.
//
// Signals: SIGHUP reloads the checkpoints into a fresh snapshot without
// dropping in-flight requests (POST /v1/reload does the same); SIGINT
// and SIGTERM drain gracefully — the listener stops accepting, admitted
// requests are answered, then the process exits.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	cfg := worldFlags(fs)
	addr := fs.String("addr", "127.0.0.1:8099", "listen address")
	dir := fs.String("dir", "trail-ckpt", "checkpoint directory written by `trail train`")
	maxBatch := fs.Int("max-batch", 32, "max requests coalesced into one forward pass")
	maxWait := fs.Duration("max-wait", 2*time.Millisecond, "max time a batch is held open after its first request")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request budget from admission to answer")
	maxBody := fs.Int64("max-body", 1<<20, "request body size limit in bytes")
	topk := fs.Int("topk", 5, "default ranked predictions per answer (requests may override with top_k)")
	staleAfter := fs.Duration("stale-after", 0, "report /healthz degraded (503) when the snapshot is older than this (0 disables)")
	fs.Parse(args)

	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	w := osint.NewWorld(*cfg)
	srv, err := serve.New(serve.Config{
		MaxBatch:   *maxBatch,
		MaxWait:    *maxWait,
		Timeout:    *timeout,
		MaxBody:    *maxBody,
		TopK:       *topk,
		StaleAfter: *staleAfter,
		Logf:       logf,
	}, serve.DirLoader(*dir, w, w.Resolver(), logf))
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			logf("serve: SIGHUP — reloading checkpoints from %s", *dir)
			if _, err := srv.Reload(); err != nil {
				logf("serve: reload failed: %v", err)
			}
		}
	}()
	return srv.Run(ctx, *addr)
}
