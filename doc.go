// Package trail is the root of the TRAIL reproduction: a knowledge-graph
// approach for attributing advanced persistent threats (King et al.,
// ICDE 2025), rebuilt as a pure-Go library.
//
// The implementation lives under internal/: see DESIGN.md for the system
// inventory, README.md for the quickstart, and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package trail
