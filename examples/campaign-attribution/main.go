// Campaign attribution: the full TRAIL pipeline on a fresh campaign.
//
// A new incident report arrives after the knowledge graph was built. We
// merge it, enrich its IOCs, and compare the three attribution methods
// the paper studies: per-IOC classification with mode voting, label
// propagation, and the GraphSAGE GNN with and without neighbour labels.
//
// Run with:
//
//	go run ./examples/campaign-attribution
package main

import (
	"fmt"
	"log"

	"trail/internal/core"
	"trail/internal/gnn"
	"trail/internal/graph"
	"trail/internal/labelprop"
	"trail/internal/mat"
	"trail/internal/ml"
	"trail/internal/osint"
	"trail/internal/tree"
)

func main() {
	cfg := osint.DefaultConfig()
	cfg.Months = 13
	cfg.EventsPerMonth = 14
	world := osint.NewWorld(cfg)
	names := world.Resolver().Names()
	classes := len(world.Roster())

	// Build the base TKG from the first 12 months; month 13 is "the
	// future".
	tkg := core.NewTKG(world, world.Resolver(), core.DefaultBuildConfig())
	if _, err := tkg.Build(world.PulsesInMonths(0, 12)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base TKG: %d nodes, %d events\n", tkg.G.NumNodes(), len(tkg.EventNodes()))

	// Train the models on the base TKG.
	rfModel, rfScaler := trainIOCForest(tkg, classes)
	set, err := gnn.TrainEncoders(tkg.G, tkg.Features, gnn.DefaultAEConfig())
	if err != nil {
		log.Fatal(err)
	}
	in := gnn.BuildInput(tkg.G, tkg.Features, set, classes)
	events := tkg.EventNodes()
	sage, err := gnn.Train(in, events, gnn.Config{
		Layers: 2, Hidden: 48, Encoding: 64, LR: 1e-2, Epochs: 40, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// A fresh campaign report arrives.
	future := world.PulsesInMonths(12, 13)
	if len(future) == 0 {
		log.Fatal("no future pulses generated")
	}
	pulse := future[0]
	evID, err := tkg.AddPulse(pulse)
	if err != nil {
		log.Fatal(err)
	}
	tkg.FinalizeLabels()
	truth := tkg.G.Node(evID).Label
	fmt.Printf("\nnew report %s: %d IOCs, ground truth %s\n",
		pulse.ID, len(pulse.Indicators), names[truth])

	// Method 1: per-IOC Random Forest votes.
	votes := iocVotes(tkg, rfModel, rfScaler, evID)
	fmt.Printf("per-IOC RF mode vote:      %s (%d IOC votes)\n", nameOf(names, ml.Mode(votes)), len(votes))

	// Method 2: label propagation (resource reuse only).
	seeds := map[graph.NodeID]int{}
	for _, ev := range events {
		seeds[ev] = tkg.G.Node(ev).Label
	}
	lp := labelprop.AttributeCSR(tkg.G.CSR(), seeds, []graph.NodeID{evID}, classes, 4)[0]
	fmt.Printf("label propagation (4L):    %s\n", nameOf(names, lp))

	// Method 3: GNN on the merged graph (encodings recomputed with the
	// frozen encoders; weights untouched).
	in2 := gnn.BuildInput(tkg.G, tkg.Features, set, classes)
	blind := sage.Predict(in2, nil, []graph.NodeID{evID})[0]
	informed := sage.Predict(in2, seeds, []graph.NodeID{evID})[0]
	confB := sage.Confidence(in2, nil, []graph.NodeID{evID})[0]
	confI := sage.Confidence(in2, seeds, []graph.NodeID{evID})[0]
	fmt.Printf("GNN, features only:        %s (confidence %.2f)\n", nameOf(names, blind), confB)
	fmt.Printf("GNN, with neighbor labels: %s (confidence %.2f)\n", nameOf(names, informed), confI)
}

// trainIOCForest fits one Random Forest on the domain IOCs (the most
// numerous kind) for the per-IOC voting baseline.
func trainIOCForest(tkg *core.TKG, classes int) (*tree.Forest, *ml.StandardScaler) {
	ids, labels := tkg.LabeledIOCs(graph.KindDomain)
	var rows [][]float64
	var y []int
	for i, id := range ids {
		if v, ok := tkg.Features[id]; ok {
			rows = append(rows, v)
			y = append(y, labels[i])
		}
	}
	X := mat.FromRows(rows)
	scaler := ml.FitScaler(X)
	rf := tree.NewForest(tree.ForestConfig{Trees: 30, MaxDepth: 12, Seed: 1, Parallel: true})
	if err := rf.Fit(scaler.Transform(X), y); err != nil {
		log.Fatal(err)
	}
	_ = classes
	return rf, scaler
}

func iocVotes(tkg *core.TKG, rf *tree.Forest, scaler *ml.StandardScaler, ev graph.NodeID) []int {
	var votes []int
	tkg.G.NeighborEdges(ev, func(to graph.NodeID, et graph.EdgeType, _ bool) bool {
		if et != graph.EdgeInReport {
			return true
		}
		if tkg.G.Node(to).Kind != graph.KindDomain {
			return true
		}
		if v, ok := tkg.Features[to]; ok {
			X := scaler.Transform(mat.FromRows([][]float64{v}))
			votes = append(votes, ml.Predict(rf, X)[0])
		}
		return true
	})
	return votes
}

func nameOf(names []string, class int) string {
	if class < 0 || class >= len(names) {
		return "UNATTRIBUTED"
	}
	return names[class]
}
