// Explainability: why did the model attribute this to that group?
//
// Two views, mirroring the paper's §VII-D:
//
//  1. SHAP values over the XGB URL classifier reveal which engineered
//     features characterise one APT's URLs (Fig. 9).
//  2. GNNExplainer finds the subgraph — the specific IOCs and their
//     relations — that drove a GNN event attribution (Fig. 10).
//
// Run with:
//
//	go run ./examples/explainability
package main

import (
	"fmt"
	"log"

	"trail/internal/eval"
	"trail/internal/osint"
)

func main() {
	opts := eval.DefaultOptions()
	opts.World = osint.DefaultConfig()
	opts.World.Months = 14
	opts.StudyMonths = 2
	opts.Fast = true // drop for full fidelity

	ctx, err := eval.NewContext(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Feature-level explanation (SHAP on the XGB URL classifier) ===")
	cfg := eval.DefaultFigure9Config()
	fig9, err := eval.RunFigure9(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig9.Render())
	fmt.Println("Analysts read this as a signature: the direction column says whether")
	fmt.Println("high values of the feature push the classifier toward the group.")

	fmt.Println("\n=== Graph-level explanation (GNNExplainer on a 3-layer GNN) ===")
	fig10, err := eval.RunFigure10(ctx, cfg.APTName, 15)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig10.Render())
	fmt.Println("Even when a prediction is wrong, these IOCs tell an analyst where")
	fmt.Println("to look next — the paper's argument for explainable attribution.")
}
