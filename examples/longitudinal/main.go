// Longitudinal study: how fast does an attribution model go stale?
//
// Reproduces the paper's Fig. 8 protocol at example scale: train a GNN on
// an initial window, then step through the following months comparing a
// frozen model against one fine-tuned on each month as it closes.
//
// Run with:
//
//	go run ./examples/longitudinal
package main

import (
	"fmt"
	"log"

	"trail/internal/eval"
	"trail/internal/osint"
)

func main() {
	// Full-fidelity models on a slightly reduced world; expect a few
	// minutes of training on one core.
	opts := eval.DefaultOptions()
	opts.World = osint.DefaultConfig()
	opts.World.Months = 16
	opts.World.EventsPerMonth = 16
	opts.StudyMonths = 4

	ctx, err := eval.NewContext(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training window: months 1-%d (%d events)\n",
		ctx.TrainMonths, len(ctx.TKG.EventNodes()))

	res, err := eval.RunFigure8(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Render())
	fmt.Printf("mean retrained-vs-frozen gap over the last 2 months: %+.3f\n",
		res.MeanGapLastMonths(2))
	fmt.Println("\nThe paper's conclusion holds when the gap grows with age:")
	fmt.Println("keep the TKG updated and fine-tune monthly (cheap: a few epochs).")
}
