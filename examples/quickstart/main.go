// Quickstart: build a small TRAIL knowledge graph from a synthetic OSINT
// feed and attribute one event with label propagation.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"trail/internal/core"
	"trail/internal/graph"
	"trail/internal/labelprop"
	"trail/internal/osint"
)

func main() {
	// 1. Generate a small synthetic threat-intel world. In a production
	// deployment this would be a real pulse feed plus real enrichment
	// services; everything downstream is identical.
	cfg := osint.DefaultConfig()
	cfg.Months = 12
	cfg.EventsPerMonth = 12
	world := osint.NewWorld(cfg)
	fmt.Printf("world: %d pulses from %d APT groups\n", len(world.Pulses()), len(world.Roster()))

	// 2. Build the TRAIL knowledge graph: parse reports, enrich IOCs two
	// hops deep, connect everything with the Table I schema.
	tkg := core.NewTKG(world, world.Resolver(), core.DefaultBuildConfig())
	if _, err := tkg.Build(world.Pulses()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TKG: %d nodes, %d edges, %d attributed events\n",
		tkg.G.NumNodes(), tkg.G.NumEdges(), len(tkg.EventNodes()))
	fmt.Println(tkg.Stats())

	// 3. Attribute recent events by resource reuse alone: mask each
	// event's label, propagate every other event's label 4 steps through
	// the graph, and read off the distribution. Some events are staged on
	// entirely fresh infrastructure and stay unreachable — the paper's
	// known limitation of label propagation (its GNN handles those).
	events := tkg.EventNodes()
	names := world.Resolver().Names()
	csr := tkg.G.CSR() // one shared snapshot for every propagation below

	shown := 0
	for i := len(events) - 1; i >= 0 && shown < 5; i-- {
		target := events[i]
		truth := tkg.G.Node(target).Label

		seeds := make(map[graph.NodeID]int)
		for _, ev := range events {
			if ev != target {
				seeds[ev] = tkg.G.Node(ev).Label
			}
		}
		scores := labelprop.PropagateCSR(csr, seeds, len(world.Roster()), 4)
		dist := labelprop.Distribution(scores.Row(int(target)))

		fmt.Printf("\nattributing event %s (ground truth %s)\n",
			tkg.G.Node(target).Key, names[truth])
		if dist == nil {
			fmt.Println("  unreachable: no shared infrastructure with any known event")
		} else {
			pred := labelprop.Predict(scores, []graph.NodeID{target})[0]
			verdict := "WRONG"
			if pred == truth {
				verdict = "correct"
			}
			fmt.Printf("  label propagation says %s (confidence %.2f) — %s\n",
				names[pred], dist[pred], verdict)
		}
		shown++
	}
}
