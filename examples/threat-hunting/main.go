// Threat hunting with guardrails: the paper's §IX future-work features.
//
//  1. Confidence thresholding: a production attribution system must not
//     force every event onto one of its trained classes. We hold one APT
//     out of training and sweep a confidence threshold, showing the
//     trade-off between coverage on known groups and rejection of the
//     unknown group's events.
//  2. Zero-shot label propagation: when intel on a brand-new group
//     arrives, LP uses it immediately — no retraining — because it is
//     non-parametric.
//
// Run with:
//
//	go run ./examples/threat-hunting
package main

import (
	"fmt"
	"log"

	"trail/internal/eval"
	"trail/internal/osint"
)

func main() {
	// Full-fidelity models on a slightly reduced world; expect a couple
	// of minutes of training on one core.
	opts := eval.DefaultOptions()
	opts.World = osint.DefaultConfig()
	opts.World.Months = 14
	opts.World.EventsPerMonth = 16
	opts.StudyMonths = 2

	ctx, err := eval.NewContext(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Detecting events from a group the model never saw ===")
	unknown, err := eval.RunUnknownAPTStudy(ctx, "APT41")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(unknown.Render())
	fmt.Println("Reading the sweep: pick the threshold where unknown-reject is high")
	fmt.Println("while known-coverage stays acceptable; below-threshold events get")
	fmt.Println("routed to a human analyst instead of a forced label.")

	fmt.Println("\n=== Folding a brand-new group's intel in without retraining ===")
	zero, err := eval.RunZeroShotLP(ctx, "GAMAREDON")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(zero.Render())
	fmt.Println("The parametric models would need a retrain to even name this group;")
	fmt.Println("label propagation exploits the new seeds the moment they land in the TKG.")
}
