module trail

go 1.22
