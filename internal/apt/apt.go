// Package apt defines the roster of advanced persistent threat (APT)
// groups the reproduction tracks, together with the per-group behavioural
// profiles that drive the synthetic OSINT world.
//
// The paper's TKG covers 22 APTs discovered by searching AlienVault OTX
// for APT names and their aliases (§IV-A). We model the same roster size
// and, where the paper names groups (APT28, APT29, APT37, APT38, APT27,
// KIMSUKY, FIN11, TA511), we use those names so the case-study
// experiments read like the paper's.
//
// A Profile is a bundle of behavioural biases: where the group registers
// domains, which hosting countries and ASNs it favours, what server
// stacks it runs, how its DGA names look, and how aggressively it reuses
// infrastructure. These are exactly the signals the paper's feature
// engineering is designed to surface, so generating data from them lets
// every downstream model exercise the same causal pathway the real system
// relies on.
package apt

import (
	"fmt"
	"strings"
)

// ID is an APT class index in [0, Count).
type ID int

// Unknown marks an unattributed or multi-attributed label slot.
const Unknown ID = -1

// Profile describes one threat group's observable behaviour. Weights are
// relative (they need not sum to 1); the osint generator normalises them.
type Profile struct {
	ID      ID
	Name    string
	Aliases []string
	// Country is the group's publicly attributed country of origin. It
	// biases, but does not determine, hosting choices.
	Country string

	// TLDWeights biases which top-level domains the group registers.
	TLDWeights map[string]float64
	// HostCountryWeights biases which countries host the group's servers.
	HostCountryWeights map[string]float64
	// ServerWeights biases the web-server software observed when probing
	// the group's URLs (nginx, Apache, IIS, ...).
	ServerWeights map[string]float64
	// OSWeights biases the server operating system.
	OSWeights map[string]float64
	// EncodingWeights biases the content encoding of hosted files.
	EncodingWeights map[string]float64
	// FileTypeWeights biases the file types hosted at the group's URLs.
	FileTypeWeights map[string]float64
	// IssuerWeights biases which IP issuers (hosting providers) the group
	// rents addresses from.
	IssuerWeights map[string]float64
	// ServiceWeights biases the additional services found on the group's
	// servers.
	ServiceWeights map[string]float64

	// DGAEntropy in [0,1] scales how random the group's generated domain
	// labels look (0 = dictionary words, 1 = uniform random).
	DGAEntropy float64
	// DGADigits in [0,1] is the probability a generated label character is
	// a digit.
	DGADigits float64
	// DomainLen is the typical second-level-domain label length.
	DomainLen int
	// URLDepth is the typical path depth of the group's URLs.
	URLDepth int

	// ReuseRate in [0,1] is the probability an event reuses an IOC from
	// the same group's earlier events (direct resource reuse — what LP 2L
	// measures).
	ReuseRate float64
	// InfraReuseRate in [0,1] is the probability a *new* IOC is hosted on
	// infrastructure (IPs, ASNs) the group used before (indirect reuse —
	// what LP 3L/4L and the GNN exploit).
	InfraReuseRate float64
	// ActivityWeight scales how many events per month the group produces.
	ActivityWeight float64
	// CampaignSize is the typical number of events sharing one campaign's
	// infrastructure pool.
	CampaignSize int
}

// Count is the number of APTs in the default roster, matching the paper's
// 22 groups.
const Count = 22

// DefaultRoster returns the 22-group roster. The returned slice is
// freshly allocated; callers may modify it.
func DefaultRoster() []Profile {
	specs := []struct {
		name    string
		aliases []string
		country string
		tlds    []string
		hosts   []string
		servers []string
		dgaE    float64
		dgaD    float64
		dlen    int
		reuse   float64
		infra   float64
		act     float64
	}{
		{"APT28", []string{"Fancy Bear", "Sofacy", "Pawn Storm"}, "RU",
			[]string{"com", "net", "org", "club"}, []string{"LV", "RO", "NL"},
			[]string{"nginx", "apache"}, 0.85, 0.35, 9, 0.30, 0.55, 1.4},
		{"APT29", []string{"Cozy Bear", "The Dukes", "NOBELIUM"}, "RU",
			[]string{"com", "org", "online"}, []string{"NL", "DE", "US"},
			[]string{"nginx", "caddy"}, 0.55, 0.15, 11, 0.22, 0.48, 1.2},
		{"TURLA", []string{"Snake", "Venomous Bear"}, "RU",
			[]string{"net", "com", "info"}, []string{"DE", "CZ", "RU"},
			[]string{"apache", "nginx"}, 0.45, 0.10, 10, 0.35, 0.50, 0.8},
		{"SANDWORM", []string{"Voodoo Bear", "IRIDIUM"}, "RU",
			[]string{"com", "su", "ru"}, []string{"RU", "BG", "FR"},
			[]string{"nginx", "lighttpd"}, 0.70, 0.25, 8, 0.28, 0.52, 0.9},
		{"GAMAREDON", []string{"Primitive Bear", "Shuckworm"}, "RU",
			[]string{"ru", "site", "xyz"}, []string{"RU", "UA"},
			[]string{"apache", "nginx"}, 0.90, 0.45, 7, 0.40, 0.60, 1.6},
		{"APT38", []string{"Lazarus", "Hidden Cobra", "ZINC"}, "KP",
			[]string{"com", "org", "biz"}, []string{"CN", "HK", "IN"},
			[]string{"apache", "iis"}, 0.60, 0.20, 9, 0.38, 0.62, 1.8},
		{"APT37", []string{"Reaper", "ScarCruft", "Group123"}, "KP",
			[]string{"com", "net", "kr"}, []string{"KR", "CN", "JP"},
			[]string{"apache", "nginx"}, 0.58, 0.22, 8, 0.30, 0.58, 1.0},
		{"KIMSUKY", []string{"Velvet Chollima", "Thallium"}, "KP",
			[]string{"com", "online", "space"}, []string{"KR", "CN", "US"},
			[]string{"apache", "litespeed"}, 0.62, 0.30, 10, 0.33, 0.57, 1.1},
		{"APT27", []string{"Emissary Panda", "LuckyMouse"}, "CN",
			[]string{"com", "net", "top"}, []string{"CN", "HK", "SG"},
			[]string{"iis", "nginx"}, 0.50, 0.18, 9, 0.26, 0.50, 0.7},
		{"APT41", []string{"Double Dragon", "Wicked Panda"}, "CN",
			[]string{"com", "net", "cc"}, []string{"CN", "HK", "US"},
			[]string{"nginx", "iis"}, 0.65, 0.28, 10, 0.30, 0.54, 1.3},
		{"APT40", []string{"Leviathan", "Kryptonite Panda"}, "CN",
			[]string{"com", "org", "asia"}, []string{"CN", "MY", "SG"},
			[]string{"iis", "apache"}, 0.52, 0.16, 9, 0.24, 0.49, 0.8},
		{"APT30", []string{"Naikon adjacent", "Override Panda"}, "CN",
			[]string{"com", "info", "net"}, []string{"CN", "TH", "VN"},
			[]string{"apache", "iis"}, 0.48, 0.14, 8, 0.27, 0.45, 0.5},
		{"APT33", []string{"Elfin", "Peach Sandstorm"}, "IR",
			[]string{"com", "net", "site"}, []string{"IR", "TR", "NL"},
			[]string{"nginx", "apache"}, 0.68, 0.26, 9, 0.29, 0.51, 0.8},
		{"APT34", []string{"OilRig", "Helix Kitten"}, "IR",
			[]string{"com", "org", "me"}, []string{"IR", "AE", "DE"},
			[]string{"apache", "nginx"}, 0.55, 0.20, 10, 0.31, 0.53, 0.9},
		{"APT35", []string{"Charming Kitten", "Phosphorus"}, "IR",
			[]string{"com", "live", "online"}, []string{"IR", "US", "DE"},
			[]string{"nginx", "litespeed"}, 0.60, 0.24, 11, 0.27, 0.50, 1.0},
		{"APT32", []string{"OceanLotus", "SeaLotus"}, "VN",
			[]string{"com", "net", "vn"}, []string{"VN", "SG", "JP"},
			[]string{"nginx", "apache"}, 0.57, 0.19, 9, 0.25, 0.47, 0.7},
		{"APT39", []string{"Chafer", "Remix Kitten"}, "IR",
			[]string{"com", "net", "org"}, []string{"IR", "TR", "GB"},
			[]string{"apache", "iis"}, 0.50, 0.15, 8, 0.28, 0.46, 0.5},
		{"FIN6", []string{"Skeleton Spider", "ITG08"}, "XX",
			[]string{"com", "shop", "net"}, []string{"US", "CA", "GB"},
			[]string{"nginx", "apache"}, 0.72, 0.32, 9, 0.26, 0.44, 0.6},
		{"FIN7", []string{"Carbanak", "Sangria Tempest"}, "XX",
			[]string{"com", "biz", "net"}, []string{"US", "DE", "FR"},
			[]string{"apache", "nginx"}, 0.66, 0.28, 10, 0.30, 0.48, 1.0},
		{"FIN8", []string{"Syssphinx"}, "XX",
			[]string{"com", "net", "info"}, []string{"US", "NL", "GB"},
			[]string{"nginx", "iis"}, 0.63, 0.25, 9, 0.27, 0.45, 0.5},
		{"FIN11", []string{"Clop adjacent", "TA505 splinter"}, "XX",
			[]string{"com", "xyz", "top"}, []string{"RU", "NL", "US"},
			[]string{"nginx", "apache"}, 0.80, 0.40, 8, 0.35, 0.55, 0.9},
		{"TA511", []string{"Hancitor operators"}, "XX",
			[]string{"com", "ru", "net"}, []string{"RU", "US", "DE"},
			[]string{"apache", "nginx"}, 0.75, 0.38, 9, 0.32, 0.52, 0.6},
	}
	if len(specs) != Count {
		panic(fmt.Sprintf("apt: roster has %d entries, want %d", len(specs), Count))
	}

	profiles := make([]Profile, len(specs))
	for i, s := range specs {
		p := Profile{
			ID:             ID(i),
			Name:           s.name,
			Aliases:        s.aliases,
			Country:        s.country,
			DGAEntropy:     s.dgaE,
			DGADigits:      s.dgaD,
			DomainLen:      s.dlen,
			URLDepth:       1 + i%3,
			ReuseRate:      s.reuse,
			InfraReuseRate: s.infra,
			ActivityWeight: s.act,
			CampaignSize:   3 + i%4,
		}
		p.TLDWeights = rankWeights(s.tlds)
		p.HostCountryWeights = rankWeights(s.hosts)
		p.ServerWeights = rankWeights(s.servers)
		p.OSWeights = rankWeights(pick2(i, []string{"linux", "ubuntu", "debian", "centos", "windows", "freebsd"}))
		p.EncodingWeights = rankWeights(pick2(i, []string{"gzip", "identity", "deflate", "br"}))
		p.FileTypeWeights = rankWeights(pick3(i, []string{"php", "html", "exe", "zip", "js", "doc", "pdf", "jsp", "asp", "rar"}))
		p.IssuerWeights = rankWeights(pick2(i, []string{"hostkey", "ovh", "digitalocean", "choopa", "leaseweb", "alibaba", "selectel", "hetzner"}))
		p.ServiceWeights = rankWeights(pick2(i, []string{"ssh", "ftp", "rdp", "smtp", "dns", "telnet"}))
		profiles[i] = p
	}
	return profiles
}

// rankWeights turns an ordered preference list into geometric weights:
// first choice weight 1, second 1/2, third 1/4, ...
func rankWeights(prefs []string) map[string]float64 {
	w := make(map[string]float64, len(prefs))
	v := 1.0
	for _, p := range prefs {
		w[p] += v
		v /= 2
	}
	return w
}

func pick2(seed int, pool []string) []string {
	a := seed % len(pool)
	b := (seed*7 + 3) % len(pool)
	if b == a {
		b = (b + 1) % len(pool)
	}
	return []string{pool[a], pool[b]}
}

func pick3(seed int, pool []string) []string {
	out := pick2(seed, pool)
	c := (seed*13 + 5) % len(pool)
	for c == (seed%len(pool)) || pool[c] == out[1] {
		c = (c + 1) % len(pool)
	}
	return append(out, pool[c])
}

// Resolver maps event tags (APT names and aliases, case-insensitive) to
// roster IDs, implementing the paper's tag-resolution rule: an event with
// tags mapping to more than one distinct APT is discarded.
type Resolver struct {
	byAlias map[string]ID
	names   []string
}

// NewResolver builds a Resolver over the given roster.
func NewResolver(roster []Profile) *Resolver {
	r := &Resolver{byAlias: make(map[string]ID), names: make([]string, len(roster))}
	for _, p := range roster {
		r.names[p.ID] = p.Name
		r.byAlias[strings.ToLower(p.Name)] = p.ID
		for _, a := range p.Aliases {
			r.byAlias[strings.ToLower(a)] = p.ID
		}
	}
	return r
}

// Resolve maps a single tag to an APT ID.
func (r *Resolver) Resolve(tag string) (ID, bool) {
	id, ok := r.byAlias[strings.ToLower(strings.TrimSpace(tag))]
	return id, ok
}

// ResolveTags applies the paper's rule to a tag list: return the unique
// APT all recognised tags map to, or ok=false if none map or two map to
// different APTs.
func (r *Resolver) ResolveTags(tags []string) (ID, bool) {
	found := Unknown
	for _, t := range tags {
		id, ok := r.Resolve(t)
		if !ok {
			continue
		}
		if found != Unknown && found != id {
			return Unknown, false
		}
		found = id
	}
	return found, found != Unknown
}

// Name returns the canonical name for id, or "UNKNOWN".
func (r *Resolver) Name(id ID) string {
	if id < 0 || int(id) >= len(r.names) {
		return "UNKNOWN"
	}
	return r.names[id]
}

// Names returns the canonical names in roster order.
func (r *Resolver) Names() []string { return append([]string(nil), r.names...) }
