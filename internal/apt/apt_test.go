package apt

import "testing"

func TestRosterSizeAndUniqueness(t *testing.T) {
	roster := DefaultRoster()
	if len(roster) != Count {
		t.Fatalf("roster has %d groups, want %d", len(roster), Count)
	}
	seen := map[string]bool{}
	for i, p := range roster {
		if p.ID != ID(i) {
			t.Fatalf("profile %d has ID %d", i, p.ID)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate group name %s", p.Name)
		}
		seen[p.Name] = true
		if len(p.TLDWeights) == 0 || len(p.HostCountryWeights) == 0 || len(p.ServerWeights) == 0 {
			t.Fatalf("%s missing behavioural weights", p.Name)
		}
		if p.DGAEntropy < 0 || p.DGAEntropy > 1 || p.DGADigits < 0 || p.DGADigits > 1 {
			t.Fatalf("%s has out-of-range DGA parameters", p.Name)
		}
		if p.ReuseRate <= 0 || p.ReuseRate >= 1 || p.InfraReuseRate <= 0 || p.InfraReuseRate >= 1 {
			t.Fatalf("%s has out-of-range reuse rates", p.Name)
		}
		if p.CampaignSize < 1 {
			t.Fatalf("%s campaign size %d", p.Name, p.CampaignSize)
		}
	}
}

func TestPaperGroupsPresent(t *testing.T) {
	// The paper's case studies name these groups explicitly.
	r := NewResolver(DefaultRoster())
	for _, name := range []string{"APT28", "APT29", "APT37", "APT38", "KIMSUKY", "APT27", "FIN11", "TA511"} {
		if _, ok := r.Resolve(name); !ok {
			t.Errorf("paper group %s missing from roster", name)
		}
	}
}

func TestResolverAliases(t *testing.T) {
	r := NewResolver(DefaultRoster())
	id38, _ := r.Resolve("APT38")
	for _, alias := range []string{"Lazarus", "lazarus", "HIDDEN COBRA", "zinc"} {
		got, ok := r.Resolve(alias)
		if !ok || got != id38 {
			t.Errorf("alias %q resolved to %v (ok=%v), want APT38", alias, got, ok)
		}
	}
	if _, ok := r.Resolve("NotAGroup"); ok {
		t.Error("unknown tag resolved")
	}
}

func TestResolveTagsRule(t *testing.T) {
	r := NewResolver(DefaultRoster())
	id28, _ := r.Resolve("APT28")

	// Single tag plus noise tags: resolves.
	if got, ok := r.ResolveTags([]string{"phishing", "APT28", "c2"}); !ok || got != id28 {
		t.Fatalf("noise tags broke resolution: %v %v", got, ok)
	}
	// Two aliases of the same group: resolves.
	if got, ok := r.ResolveTags([]string{"Fancy Bear", "Sofacy"}); !ok || got != id28 {
		t.Fatalf("same-group aliases rejected: %v %v", got, ok)
	}
	// Tags mapping to different groups: rejected (the paper's rule).
	if _, ok := r.ResolveTags([]string{"APT28", "APT29"}); ok {
		t.Fatal("conflicting tags accepted")
	}
	// No recognised tags: rejected.
	if _, ok := r.ResolveTags([]string{"malware", "botnet"}); ok {
		t.Fatal("unrecognised tags accepted")
	}
}

func TestResolverNames(t *testing.T) {
	r := NewResolver(DefaultRoster())
	names := r.Names()
	if len(names) != Count {
		t.Fatalf("%d names", len(names))
	}
	if r.Name(Unknown) != "UNKNOWN" {
		t.Fatal("Unknown should render as UNKNOWN")
	}
	if r.Name(0) != names[0] {
		t.Fatal("Name(0) mismatch")
	}
}
