// Package ckpt implements the durable checkpoint layer shared by every
// long-running artefact in the repository: trained models, optimiser
// state, TKG snapshots and experiment journals.
//
// A checkpoint is a single file holding one payload inside a small binary
// envelope:
//
//	magic   [8]byte  "TRAILCK1"          (envelope format identifier)
//	kindLen u16      little-endian
//	kind    []byte   e.g. "gnn.model", "core.tkg"
//	version u32      payload schema version, owned by the caller
//	length  u64      payload byte count
//	crc     u32      CRC-32C (Castagnoli) of the payload
//	payload []byte
//
// The envelope buys three guarantees the bare gob files it replaces did
// not have: corruption is *detected* (truncation and bit flips surface as
// typed errors, never as garbage structs), version skew is *reported*
// (old snapshots produce a VersionError instead of a decode panic), and
// writes are *atomic* (temp file in the target directory, fsync, rename),
// so a crash mid-save can never destroy the previous checkpoint.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// magic identifies the envelope format. Bump the trailing digit if the
// header layout ever changes.
var magic = [8]byte{'T', 'R', 'A', 'I', 'L', 'C', 'K', '1'}

// maxKindLen bounds the kind string so a corrupted length field cannot
// request an absurd read.
const maxKindLen = 255

// Typed failure modes. ErrTruncated wraps ErrCorrupt, so callers that
// only care about "this file is damaged" can match ErrCorrupt alone.
var (
	// ErrNotCheckpoint reports a file that does not start with the
	// envelope magic — not a checkpoint at all, or one written by a
	// pre-envelope release.
	ErrNotCheckpoint = errors.New("ckpt: not a checkpoint file")
	// ErrCorrupt reports a structurally damaged checkpoint (checksum
	// mismatch, impossible header fields).
	ErrCorrupt = errors.New("ckpt: corrupt checkpoint")
	// ErrTruncated reports a checkpoint cut short (crash mid-write to a
	// non-atomic medium, partial copy). It matches ErrCorrupt too.
	ErrTruncated = fmt.Errorf("%w: truncated", ErrCorrupt)
)

// VersionError reports a payload schema version other than the one the
// caller supports.
type VersionError struct {
	Kind      string
	Got, Want uint32
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("ckpt: %s checkpoint version %d, this build reads version %d", e.Kind, e.Got, e.Want)
}

// KindError reports an envelope holding a different artefact than the
// caller asked for (e.g. loading a TKG snapshot as a model).
type KindError struct {
	Got, Want string
}

func (e *KindError) Error() string {
	return fmt.Sprintf("ckpt: checkpoint holds %q, want %q", e.Got, e.Want)
}

// Write emits one envelope to w.
func Write(w io.Writer, kind string, version uint32, payload []byte) error {
	if len(kind) == 0 || len(kind) > maxKindLen {
		return fmt.Errorf("ckpt: invalid kind %q", kind)
	}
	var hdr bytes.Buffer
	hdr.Write(magic[:])
	binary.Write(&hdr, binary.LittleEndian, uint16(len(kind)))
	hdr.WriteString(kind)
	binary.Write(&hdr, binary.LittleEndian, version)
	binary.Write(&hdr, binary.LittleEndian, uint64(len(payload)))
	binary.Write(&hdr, binary.LittleEndian, crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return fmt.Errorf("ckpt: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("ckpt: write payload: %w", err)
	}
	return nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Read parses one envelope from r, validating magic, kind, version and
// checksum, and returns the payload. Damage is reported via the typed
// errors above; Read never returns unverified bytes.
func Read(r io.Reader, kind string, wantVersion uint32) ([]byte, error) {
	var m [8]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if m != magic {
		return nil, ErrNotCheckpoint
	}
	var kindLen uint16
	if err := binary.Read(r, binary.LittleEndian, &kindLen); err != nil {
		return nil, fmt.Errorf("%w: kind length: %v", ErrTruncated, err)
	}
	if kindLen == 0 || kindLen > maxKindLen {
		return nil, fmt.Errorf("%w: kind length %d out of range", ErrCorrupt, kindLen)
	}
	kindBuf := make([]byte, kindLen)
	if _, err := io.ReadFull(r, kindBuf); err != nil {
		return nil, fmt.Errorf("%w: kind: %v", ErrTruncated, err)
	}
	if got := string(kindBuf); got != kind {
		return nil, &KindError{Got: got, Want: kind}
	}
	var version uint32
	if err := binary.Read(r, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: version: %v", ErrTruncated, err)
	}
	if version != wantVersion {
		return nil, &VersionError{Kind: kind, Got: version, Want: wantVersion}
	}
	var length uint64
	if err := binary.Read(r, binary.LittleEndian, &length); err != nil {
		return nil, fmt.Errorf("%w: length: %v", ErrTruncated, err)
	}
	var sum uint32
	if err := binary.Read(r, binary.LittleEndian, &sum); err != nil {
		return nil, fmt.Errorf("%w: checksum: %v", ErrTruncated, err)
	}
	// Copy incrementally so a bit-flipped length field cannot demand one
	// absurd allocation; a short file surfaces as truncation either way.
	var payload bytes.Buffer
	if n, err := io.CopyN(&payload, r, int64(length)); err != nil {
		return nil, fmt.Errorf("%w: payload %d/%d bytes: %v", ErrTruncated, n, length, err)
	}
	if got := crc32.Checksum(payload.Bytes(), crcTable); got != sum {
		return nil, fmt.Errorf("%w: payload CRC %08x, header says %08x", ErrCorrupt, got, sum)
	}
	return payload.Bytes(), nil
}

// Save writes the envelope to path atomically: a temp file in the same
// directory, fsync, then rename over the target. A crash at any point
// leaves either the old checkpoint or the new one, never a mix.
func Save(path, kind string, version uint32, payload []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: save: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := Write(f, kind, version, payload); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("ckpt: save: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: save: %w", err)
	}
	// Persist the rename itself; best-effort, some filesystems refuse
	// directory fsync.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Info describes a checkpoint envelope without its payload.
type Info struct {
	// Kind is the artefact tag (e.g. "gnn.sage", "gnn.sage.f32").
	Kind string
	// Version is the payload schema version.
	Version uint32
	// PayloadLen is the payload byte count the header declares. Peek does
	// not read or verify the payload, so a truncated file can still report
	// a full PayloadLen.
	Length uint64
}

// Peek reads only the envelope header at path: the artefact kind, payload
// version and declared length. The serving layer uses it to discover
// which precision a model checkpoint holds (and to report snapshot
// inventories) without decoding megabytes of weights. The payload is not
// checksummed — use Load before trusting the contents.
func Peek(path string) (Info, error) {
	f, err := os.Open(path)
	if err != nil {
		return Info{}, fmt.Errorf("ckpt: peek: %w", err)
	}
	defer f.Close()
	var m [8]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return Info{}, fmt.Errorf("%w: header: %v", ErrTruncated, err)
	}
	if m != magic {
		return Info{}, ErrNotCheckpoint
	}
	var kindLen uint16
	if err := binary.Read(f, binary.LittleEndian, &kindLen); err != nil {
		return Info{}, fmt.Errorf("%w: kind length: %v", ErrTruncated, err)
	}
	if kindLen == 0 || kindLen > maxKindLen {
		return Info{}, fmt.Errorf("%w: kind length %d out of range", ErrCorrupt, kindLen)
	}
	kindBuf := make([]byte, kindLen)
	if _, err := io.ReadFull(f, kindBuf); err != nil {
		return Info{}, fmt.Errorf("%w: kind: %v", ErrTruncated, err)
	}
	info := Info{Kind: string(kindBuf)}
	if err := binary.Read(f, binary.LittleEndian, &info.Version); err != nil {
		return Info{}, fmt.Errorf("%w: version: %v", ErrTruncated, err)
	}
	if err := binary.Read(f, binary.LittleEndian, &info.Length); err != nil {
		return Info{}, fmt.Errorf("%w: length: %v", ErrTruncated, err)
	}
	return info, nil
}

// Load reads and verifies the envelope at path.
func Load(path, kind string, wantVersion uint32) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: load: %w", err)
	}
	defer f.Close()
	return Read(f, kind, wantVersion)
}

// SaveGob gob-encodes v and saves it under the envelope.
func SaveGob(path, kind string, version uint32, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("ckpt: encode %s: %w", kind, err)
	}
	return Save(path, kind, version, buf.Bytes())
}

// LoadGob loads the envelope at path and gob-decodes its payload into
// out. A payload that passed the checksum but still fails to decode is
// reported as corrupt (this should only happen across incompatible
// builds that forgot to bump the version).
func LoadGob(path, kind string, version uint32, out any) error {
	payload, err := Load(path, kind, version)
	if err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(out); err != nil {
		return fmt.Errorf("%w: %s payload: %v", ErrCorrupt, kind, err)
	}
	return nil
}
