package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	var buf bytes.Buffer
	if err := Write(&buf, "test.kind", 3, payload); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), "test.kind", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload changed: %q", got)
	}
}

func TestEnvelopeEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "k", 1, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()), "k", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("want empty payload, got %d bytes", len(got))
	}
}

// TestEnvelopeTruncationAtEveryOffset cuts the file at every possible
// length and demands a typed error, never success and never a panic.
func TestEnvelopeTruncationAtEveryOffset(t *testing.T) {
	payload := []byte("some checkpoint payload bytes")
	var buf bytes.Buffer
	if err := Write(&buf, "trunc", 1, payload); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		_, err := Read(bytes.NewReader(full[:n]), "trunc", 1)
		if err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(full))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: error %v does not match ErrCorrupt", n, err)
		}
	}
}

// TestEnvelopeBitFlipAtEveryByte flips one bit in every byte of the file
// and demands a typed error (corruption, kind skew or version skew —
// depending on which header field was hit), never unverified payload.
func TestEnvelopeBitFlipAtEveryByte(t *testing.T) {
	payload := []byte("bit flip fodder: 0123456789abcdef")
	var buf bytes.Buffer
	if err := Write(&buf, "flip", 7, payload); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := range full {
		dam := append([]byte(nil), full...)
		dam[i] ^= 0x40
		got, err := Read(bytes.NewReader(dam), "flip", 7)
		if err == nil {
			t.Fatalf("bit flip at byte %d went undetected (payload %q)", i, got)
		}
		var vErr *VersionError
		var kErr *KindError
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrNotCheckpoint) &&
			!errors.As(err, &vErr) && !errors.As(err, &kErr) {
			t.Fatalf("bit flip at byte %d: untyped error %v", i, err)
		}
	}
}

func TestEnvelopeKindAndVersionSkew(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, "model", 2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	_, err := Read(bytes.NewReader(buf.Bytes()), "graph", 2)
	var kErr *KindError
	if !errors.As(err, &kErr) || kErr.Got != "model" || kErr.Want != "graph" {
		t.Fatalf("kind skew: got %v", err)
	}
	_, err = Read(bytes.NewReader(buf.Bytes()), "model", 9)
	var vErr *VersionError
	if !errors.As(err, &vErr) || vErr.Got != 2 || vErr.Want != 9 {
		t.Fatalf("version skew: got %v", err)
	}
	if !strings.Contains(vErr.Error(), "version 2") {
		t.Fatalf("version error message unhelpful: %v", vErr)
	}
}

func TestEnvelopeRejectsForeignFile(t *testing.T) {
	_, err := Read(strings.NewReader("just some text file, definitely not a checkpoint"), "k", 1)
	if !errors.Is(err, ErrNotCheckpoint) {
		t.Fatalf("got %v, want ErrNotCheckpoint", err)
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	if err := Save(path, "m", 1, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Overwrite: the old checkpoint must be replaced wholesale.
	if err := Save(path, "m", 1, []byte("v2 with different length")); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, "m", 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2 with different length" {
		t.Fatalf("got %q", got)
	}
	// No temp debris.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		for _, e := range ents {
			t.Logf("left behind: %s", e.Name())
		}
		t.Fatalf("save left %d files in dir, want 1", len(ents))
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope.ckpt"), "m", 1)
	if err == nil || !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("got %v, want wrapped os.ErrNotExist", err)
	}
}

func TestSaveLoadGob(t *testing.T) {
	type rec struct {
		Name string
		Vals []float64
	}
	path := filepath.Join(t.TempDir(), "rec.ckpt")
	in := rec{Name: "alpha", Vals: []float64{1.5, -2.25, 3}}
	if err := SaveGob(path, "rec", 4, &in); err != nil {
		t.Fatal(err)
	}
	var out rec
	if err := LoadGob(path, "rec", 4, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || len(out.Vals) != 3 || out.Vals[1] != -2.25 {
		t.Fatalf("round trip lost data: %+v", out)
	}
}

func TestCorruptFileOnDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.ckpt")
	if err := Save(path, "c", 1, bytes.Repeat([]byte{0xAB}, 128)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte deep in the payload.
	raw[len(raw)-5] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, "c", 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
	// Truncate the file.
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, "c", 1); !errors.Is(err, ErrTruncated) {
		t.Fatalf("got %v, want ErrTruncated", err)
	}
}
