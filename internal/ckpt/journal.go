package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
)

// Journal is an append-only log of completed work units, used by the
// experiment runners to make long sweeps resumable: each finished unit is
// recorded under a string key, and a rerun skips every key already
// present. Records carry their own CRC, so a crash mid-append loses at
// most the half-written tail record — OpenJournal truncates the file back
// to the last intact record and the unit is simply recomputed.
//
// Record layout (little-endian):
//
//	magic   [4]byte "JRN1"
//	keyLen  u16
//	payLen  u32
//	crc     u32    CRC-32C over key bytes followed by payload bytes
//	key     []byte
//	payload []byte
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[string][]byte
	// DroppedTail reports whether OpenJournal discarded a damaged tail
	// record (evidence of a crash mid-append).
	DroppedTail bool
	// syncEvery is the batched-fsync policy (see JournalOpts); pending
	// counts records appended since the last fsync.
	syncEvery int
	pending   int
	// size mirrors the on-disk byte length of the durable prefix plus all
	// appended records (WAL growth metric).
	size int64
}

// JournalOpts tunes journal durability.
type JournalOpts struct {
	// SyncEvery batches fsyncs: the file is synced once every SyncEvery
	// Record calls instead of on every call. Values <= 1 preserve the
	// default contract (fsync before Record returns).
	//
	// Durability contract: with SyncEvery == 1 a unit acknowledged by
	// Record survives an immediate crash. With SyncEvery == N > 1, up to
	// N-1 acknowledged records may be lost to a power failure or host
	// crash (they live in the OS page cache); a plain process crash loses
	// nothing, because records are written straight to the file
	// descriptor. Torn-tail recovery still applies either way: the
	// journal reopens to the longest intact prefix.
	SyncEvery int
}

// ErrJournalLocked reports that another live process holds the journal:
// a second concurrent writer would interleave torn records, so opens
// fail fast instead. The lock is an OS advisory lock released
// automatically when the holder exits (including kill -9), so crashed
// writers never wedge recovery.
var ErrJournalLocked = fmt.Errorf("ckpt: journal locked by another process")

var journalMagic = [4]byte{'J', 'R', 'N', '1'}

// maxJournalKey bounds key length so damaged length fields fail fast.
const maxJournalKey = 4096

// OpenJournal opens (creating if absent) the journal at path, replaying
// every intact record into memory. A corrupt or truncated tail is cut
// off; corruption anywhere before the tail is a hard error, because
// records after it can no longer be trusted to be complete.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalOpts(path, JournalOpts{})
}

// OpenJournalOpts opens the journal at path with explicit durability
// options. The zero JournalOpts preserves OpenJournal's behaviour
// (fsync on every Record). The open acquires an exclusive advisory lock
// on the file; a second live writer gets ErrJournalLocked.
func OpenJournalOpts(path string, o JournalOpts) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ckpt: open journal: %w", err)
	}
	if err := lockFileExclusive(f); err != nil {
		f.Close()
		return nil, err
	}
	if o.SyncEvery < 1 {
		o.SyncEvery = 1
	}
	j := &Journal{f: f, done: make(map[string][]byte), syncEvery: o.SyncEvery}
	offset := int64(0)
	for {
		rec, key, payload, err := readRecord(f)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Damaged record: drop it and everything after it.
			j.DroppedTail = true
			if terr := f.Truncate(offset); terr != nil {
				f.Close()
				return nil, fmt.Errorf("ckpt: truncate damaged journal tail: %w", terr)
			}
			break
		}
		j.done[key] = payload
		offset += rec
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("ckpt: seek journal: %w", err)
	}
	j.size = offset
	return j, nil
}

// readRecord reads one record, returning its on-disk size, key and
// payload. io.EOF at the record boundary means a clean end; any other
// failure means a damaged tail.
func readRecord(r io.Reader) (size int64, key string, payload []byte, err error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		if err == io.EOF {
			return 0, "", nil, io.EOF
		}
		return 0, "", nil, fmt.Errorf("%w: journal record header: %v", ErrTruncated, err)
	}
	if m != journalMagic {
		return 0, "", nil, fmt.Errorf("%w: bad journal record magic", ErrCorrupt)
	}
	var keyLen uint16
	var payLen, sum uint32
	if err := binary.Read(r, binary.LittleEndian, &keyLen); err != nil {
		return 0, "", nil, fmt.Errorf("%w: journal key length: %v", ErrTruncated, err)
	}
	if err := binary.Read(r, binary.LittleEndian, &payLen); err != nil {
		return 0, "", nil, fmt.Errorf("%w: journal payload length: %v", ErrTruncated, err)
	}
	if err := binary.Read(r, binary.LittleEndian, &sum); err != nil {
		return 0, "", nil, fmt.Errorf("%w: journal checksum: %v", ErrTruncated, err)
	}
	if keyLen == 0 || keyLen > maxJournalKey {
		return 0, "", nil, fmt.Errorf("%w: journal key length %d out of range", ErrCorrupt, keyLen)
	}
	buf := make([]byte, int(keyLen)+int(payLen))
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, "", nil, fmt.Errorf("%w: journal record body: %v", ErrTruncated, err)
	}
	if got := crc32.Checksum(buf, crcTable); got != sum {
		return 0, "", nil, fmt.Errorf("%w: journal record CRC mismatch", ErrCorrupt)
	}
	return int64(4 + 2 + 4 + 4 + len(buf)), string(buf[:keyLen]), buf[keyLen:], nil
}

// Done reports whether key has a recorded result, returning its payload.
func (j *Journal) Done(key string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	p, ok := j.done[key]
	return p, ok
}

// Len returns the number of recorded units.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Record appends a completed unit. Under the default SyncEvery of 1 the
// file is fsynced before Record returns, so an acknowledged unit
// survives an immediate crash; with batched fsync (SyncEvery > 1) see
// JournalOpts for the exact durability window.
func (j *Journal) Record(key string, payload []byte) error {
	if len(key) == 0 || len(key) > maxJournalKey {
		return fmt.Errorf("ckpt: invalid journal key %q", key)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var rec bytes.Buffer
	rec.Write(journalMagic[:])
	binary.Write(&rec, binary.LittleEndian, uint16(len(key)))
	binary.Write(&rec, binary.LittleEndian, uint32(len(payload)))
	body := append([]byte(key), payload...)
	binary.Write(&rec, binary.LittleEndian, crc32.Checksum(body, crcTable))
	rec.Write(body)
	if _, err := j.f.Write(rec.Bytes()); err != nil {
		return fmt.Errorf("ckpt: append journal: %w", err)
	}
	j.size += int64(rec.Len())
	j.pending++
	if j.pending >= j.syncEvery {
		if err := j.syncLocked(); err != nil {
			return err
		}
	}
	j.done[key] = append([]byte(nil), payload...)
	return nil
}

// Sync forces any batched appends to stable storage. It is a no-op when
// nothing is pending. Callers cutting a checkpoint that references
// journal contents (e.g. a watermark) should Sync first so the journal
// is never behind the state that claims to summarise it.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.pending == 0 {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("ckpt: sync journal: %w", err)
	}
	j.pending = 0
	return nil
}

// Size returns the journal's on-disk byte length (durable prefix plus
// appends made through this handle).
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Keys returns every recorded key in lexicographic order. WAL-style
// consumers encode ordering into keys (fixed-width sequence numbers) and
// replay the sorted slice.
func (j *Journal) Keys() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]string, 0, len(j.done))
	for k := range j.done {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RecordGob gob-encodes v as the payload for key.
func (j *Journal) RecordGob(key string, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("ckpt: encode journal entry %q: %w", key, err)
	}
	return j.Record(key, buf.Bytes())
}

// DoneGob decodes the recorded payload for key into out, reporting
// whether the key was present. A present-but-undecodable payload is
// returned as an error (schema drift between runs).
func (j *Journal) DoneGob(key string, out any) (bool, error) {
	p, ok := j.Done(key)
	if !ok {
		return false, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(out); err != nil {
		return true, fmt.Errorf("%w: journal entry %q: %v", ErrCorrupt, key, err)
	}
	return true, nil
}

// Close syncs any batched appends and releases the underlying file
// (which also drops the writer lock).
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	serr := j.syncLocked()
	cerr := j.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
