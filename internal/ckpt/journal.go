package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Journal is an append-only log of completed work units, used by the
// experiment runners to make long sweeps resumable: each finished unit is
// recorded under a string key, and a rerun skips every key already
// present. Records carry their own CRC, so a crash mid-append loses at
// most the half-written tail record — OpenJournal truncates the file back
// to the last intact record and the unit is simply recomputed.
//
// Record layout (little-endian):
//
//	magic   [4]byte "JRN1"
//	keyLen  u16
//	payLen  u32
//	crc     u32    CRC-32C over key bytes followed by payload bytes
//	key     []byte
//	payload []byte
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[string][]byte
	// DroppedTail reports whether OpenJournal discarded a damaged tail
	// record (evidence of a crash mid-append).
	DroppedTail bool
}

var journalMagic = [4]byte{'J', 'R', 'N', '1'}

// maxJournalKey bounds key length so damaged length fields fail fast.
const maxJournalKey = 4096

// OpenJournal opens (creating if absent) the journal at path, replaying
// every intact record into memory. A corrupt or truncated tail is cut
// off; corruption anywhere before the tail is a hard error, because
// records after it can no longer be trusted to be complete.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ckpt: open journal: %w", err)
	}
	j := &Journal{f: f, done: make(map[string][]byte)}
	offset := int64(0)
	for {
		rec, key, payload, err := readRecord(f)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Damaged record: drop it and everything after it.
			j.DroppedTail = true
			if terr := f.Truncate(offset); terr != nil {
				f.Close()
				return nil, fmt.Errorf("ckpt: truncate damaged journal tail: %w", terr)
			}
			break
		}
		j.done[key] = payload
		offset += rec
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("ckpt: seek journal: %w", err)
	}
	return j, nil
}

// readRecord reads one record, returning its on-disk size, key and
// payload. io.EOF at the record boundary means a clean end; any other
// failure means a damaged tail.
func readRecord(r io.Reader) (size int64, key string, payload []byte, err error) {
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		if err == io.EOF {
			return 0, "", nil, io.EOF
		}
		return 0, "", nil, fmt.Errorf("%w: journal record header: %v", ErrTruncated, err)
	}
	if m != journalMagic {
		return 0, "", nil, fmt.Errorf("%w: bad journal record magic", ErrCorrupt)
	}
	var keyLen uint16
	var payLen, sum uint32
	if err := binary.Read(r, binary.LittleEndian, &keyLen); err != nil {
		return 0, "", nil, fmt.Errorf("%w: journal key length: %v", ErrTruncated, err)
	}
	if err := binary.Read(r, binary.LittleEndian, &payLen); err != nil {
		return 0, "", nil, fmt.Errorf("%w: journal payload length: %v", ErrTruncated, err)
	}
	if err := binary.Read(r, binary.LittleEndian, &sum); err != nil {
		return 0, "", nil, fmt.Errorf("%w: journal checksum: %v", ErrTruncated, err)
	}
	if keyLen == 0 || keyLen > maxJournalKey {
		return 0, "", nil, fmt.Errorf("%w: journal key length %d out of range", ErrCorrupt, keyLen)
	}
	buf := make([]byte, int(keyLen)+int(payLen))
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, "", nil, fmt.Errorf("%w: journal record body: %v", ErrTruncated, err)
	}
	if got := crc32.Checksum(buf, crcTable); got != sum {
		return 0, "", nil, fmt.Errorf("%w: journal record CRC mismatch", ErrCorrupt)
	}
	return int64(4 + 2 + 4 + 4 + len(buf)), string(buf[:keyLen]), buf[keyLen:], nil
}

// Done reports whether key has a recorded result, returning its payload.
func (j *Journal) Done(key string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	p, ok := j.done[key]
	return p, ok
}

// Len returns the number of recorded units.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Record appends a completed unit and fsyncs, so a unit acknowledged as
// journaled survives an immediate crash.
func (j *Journal) Record(key string, payload []byte) error {
	if len(key) == 0 || len(key) > maxJournalKey {
		return fmt.Errorf("ckpt: invalid journal key %q", key)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var rec bytes.Buffer
	rec.Write(journalMagic[:])
	binary.Write(&rec, binary.LittleEndian, uint16(len(key)))
	binary.Write(&rec, binary.LittleEndian, uint32(len(payload)))
	body := append([]byte(key), payload...)
	binary.Write(&rec, binary.LittleEndian, crc32.Checksum(body, crcTable))
	rec.Write(body)
	if _, err := j.f.Write(rec.Bytes()); err != nil {
		return fmt.Errorf("ckpt: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("ckpt: sync journal: %w", err)
	}
	j.done[key] = append([]byte(nil), payload...)
	return nil
}

// RecordGob gob-encodes v as the payload for key.
func (j *Journal) RecordGob(key string, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("ckpt: encode journal entry %q: %w", key, err)
	}
	return j.Record(key, buf.Bytes())
}

// DoneGob decodes the recorded payload for key into out, reporting
// whether the key was present. A present-but-undecodable payload is
// returned as an error (schema drift between runs).
func (j *Journal) DoneGob(key string, out any) (bool, error) {
	p, ok := j.Done(key)
	if !ok {
		return false, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(out); err != nil {
		return true, fmt.Errorf("%w: journal entry %q: %v", ErrCorrupt, key, err)
	}
	return true, nil
}

// Close releases the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
