package ckpt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("fresh journal has %d entries", j.Len())
	}
	if err := j.Record("unit-1", []byte("r1")); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("unit-2", []byte("r2")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 || j2.DroppedTail {
		t.Fatalf("reopen: len %d dropped %v", j2.Len(), j2.DroppedTail)
	}
	if p, ok := j2.Done("unit-1"); !ok || string(p) != "r1" {
		t.Fatalf("unit-1: %q %v", p, ok)
	}
	if _, ok := j2.Done("unit-3"); ok {
		t.Fatal("phantom unit-3")
	}
	// Appending after reopen must work.
	if err := j2.Record("unit-3", []byte("r3")); err != nil {
		t.Fatal(err)
	}
}

func TestJournalDropsTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Record("a", []byte("payload-a"))
	j.Record("b", []byte("payload-b"))
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: cut into the second record.
	if err := os.WriteFile(path, raw[:len(raw)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.DroppedTail {
		t.Fatal("damaged tail not reported")
	}
	if _, ok := j2.Done("a"); !ok {
		t.Fatal("intact record lost")
	}
	if _, ok := j2.Done("b"); ok {
		t.Fatal("damaged record replayed")
	}
	// Re-recording the lost unit lands after the truncation point.
	if err := j2.Record("b", []byte("payload-b2")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if p, ok := j3.Done("b"); !ok || string(p) != "payload-b2" {
		t.Fatalf("re-recorded unit: %q %v", p, ok)
	}
	if j3.DroppedTail {
		t.Fatal("clean journal reports a dropped tail")
	}
}

func TestJournalDropsBitFlippedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Record("a", []byte("payload-a"))
	j.Record("b", []byte("payload-b"))
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x10 // damage the final record's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.DroppedTail {
		t.Fatal("bit-flipped tail not dropped")
	}
	if _, ok := j2.Done("b"); ok {
		t.Fatal("bit-flipped record replayed")
	}
	if _, ok := j2.Done("a"); !ok {
		t.Fatal("intact record lost")
	}
}

func TestJournalGobHelpers(t *testing.T) {
	type point struct {
		Rate float64
		Acc  float64
	}
	path := filepath.Join(t.TempDir(), "g.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.RecordGob("p0", point{Rate: 0.1, Acc: 0.93}); err != nil {
		t.Fatal(err)
	}
	var out point
	ok, err := j.DoneGob("p0", &out)
	if err != nil || !ok {
		t.Fatalf("DoneGob: %v %v", ok, err)
	}
	if out.Rate != 0.1 || out.Acc != 0.93 {
		t.Fatalf("decoded %+v", out)
	}
	if ok, _ := j.DoneGob("missing", &out); ok {
		t.Fatal("phantom entry")
	}
}

// TestJournalSecondWriterLocked: a second live handle on the same
// journal must fail fast with the typed lock error instead of
// interleaving torn records. Closing the first handle releases the lock.
func TestJournalSecondWriterLocked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); !errors.Is(err, ErrJournalLocked) {
		t.Fatalf("second writer: got %v, want ErrJournalLocked", err)
	}
	if err := j.Record("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	defer j2.Close()
	if _, ok := j2.Done("a"); !ok {
		t.Fatal("record lost across lock handoff")
	}
}

// TestJournalBatchedSync: with SyncEvery=N, records written through the
// fd are still visible on reopen after a process crash (no user-space
// buffering), and Sync()/Close() flush the pending batch explicitly.
func TestJournalBatchedSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.journal")
	j, err := OpenJournalOpts(path, JournalOpts{SyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Record(fmt.Sprintf("u-%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	j.mu.Lock()
	pending := j.pending
	j.mu.Unlock()
	if pending != 5 {
		t.Fatalf("pending %d, want 5 (batched fsync fired early)", pending)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	pending = j.pending
	j.mu.Unlock()
	if pending != 0 {
		t.Fatalf("pending %d after Sync, want 0", pending)
	}
	// Three more: the 8th record triggers the policy fsync.
	for i := 5; i < 9; i++ {
		if err := j.Record(fmt.Sprintf("u-%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 9 || j2.DroppedTail {
		t.Fatalf("reopen: len %d dropped %v", j2.Len(), j2.DroppedTail)
	}
}

// TestJournalKeysAndSize: Keys come back sorted; Size tracks the on-disk
// length exactly.
func TestJournalKeysAndSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"e0003", "e0001", "e0002"} {
		if err := j.Record(k, []byte("p")); err != nil {
			t.Fatal(err)
		}
	}
	keys := j.Keys()
	want := []string{"e0001", "e0002", "e0003"}
	if len(keys) != len(want) {
		t.Fatalf("keys %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys %v, want %v", keys, want)
		}
	}
	sz := j.Size()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if sz != st.Size() {
		t.Fatalf("Size() %d, on disk %d", sz, st.Size())
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Size() != st.Size() {
		t.Fatalf("reopened Size() %d, on disk %d", j2.Size(), st.Size())
	}
}
