//go:build !unix

package ckpt

import "os"

// lockFileExclusive is a no-op where flock is unavailable; the
// single-writer contract is then the caller's responsibility.
func lockFileExclusive(*os.File) error { return nil }
