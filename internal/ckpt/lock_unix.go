//go:build unix

package ckpt

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// lockFileExclusive takes a non-blocking exclusive flock on f. flock is
// the right primitive for a crash-safe single-writer gate: the kernel
// releases it when the holding process dies (even kill -9), unlike
// O_EXCL lock files, which would go stale and block recovery.
func lockFileExclusive(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if err == nil {
		return nil
	}
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return fmt.Errorf("%w: %s", ErrJournalLocked, f.Name())
	}
	return fmt.Errorf("ckpt: lock journal: %w", err)
}
