package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestPeekReportsHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ck")
	payload := []byte("0123456789")
	if err := Save(path, "gnn.sage.f32", 3, payload); err != nil {
		t.Fatal(err)
	}
	info, err := Peek(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "gnn.sage.f32" || info.Version != 3 || info.Length != uint64(len(payload)) {
		t.Fatalf("Peek = %+v", info)
	}
}

func TestPeekMissingAndForeign(t *testing.T) {
	dir := t.TempDir()
	if _, err := Peek(filepath.Join(dir, "absent.ck")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: %v", err)
	}
	foreign := filepath.Join(dir, "foreign")
	os.WriteFile(foreign, []byte("definitely not a checkpoint"), 0o644)
	if _, err := Peek(foreign); !errors.Is(err, ErrNotCheckpoint) {
		t.Fatalf("foreign file: %v", err)
	}
	short := filepath.Join(dir, "short")
	os.WriteFile(short, []byte("TRAI"), 0o644)
	if _, err := Peek(short); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short file: %v", err)
	}
}

func TestPeekTruncatedHeader(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ck")
	if err := Save(full, "core.tkg", 1, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the header (before the length field ends): Peek must
	// report truncation, not garbage.
	cut := filepath.Join(dir, "cut.ck")
	os.WriteFile(cut, b[:8+2+len("core.tkg")+2], 0o644)
	if _, err := Peek(cut); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated header: %v", err)
	}
	// Cut inside the payload: the header is intact, so Peek succeeds —
	// it documents that it does not verify payload bytes.
	cutPayload := filepath.Join(dir, "cutp.ck")
	os.WriteFile(cutPayload, b[:len(b)-3], 0o644)
	info, err := Peek(cutPayload)
	if err != nil {
		t.Fatalf("payload-truncated peek: %v", err)
	}
	if info.Length != uint64(len("payload")) {
		t.Fatalf("Length = %d", info.Length)
	}
}
