package core

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"trail/internal/ckpt"
)

// TestTKGSnapshotDeterministic: two serialisations of the same TKG are
// byte-identical (map iteration must not leak into the snapshot).
func TestTKGSnapshotDeterministic(t *testing.T) {
	tkg, _ := buildTestTKG(t)
	var a, b bytes.Buffer
	if _, err := tkg.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := tkg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("TKG snapshot bytes are nondeterministic")
	}
}

// TestTKGVersionSkew: a snapshot written under a future envelope version
// is rejected with a typed *ckpt.VersionError, never a panic or a
// misdecode.
func TestTKGVersionSkew(t *testing.T) {
	tkg, w := buildTestTKG(t)
	var buf bytes.Buffer
	if _, err := tkg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tkg.ck")
	if err := ckpt.Save(path, TKGCheckpointKind, tkgSnapshotVersion+1, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	var verr *ckpt.VersionError
	if _, err := LoadTKG(path, w, w.Resolver()); !errors.As(err, &verr) {
		t.Fatalf("want *ckpt.VersionError, got %v", err)
	}
}

// TestTKGKindSkew: a checkpoint of a different artefact kind is rejected
// with a typed *ckpt.KindError.
func TestTKGKindSkew(t *testing.T) {
	tkg, w := buildTestTKG(t)
	path := filepath.Join(t.TempDir(), "g.ck")
	if err := tkg.G.Save(path); err != nil {
		t.Fatal(err)
	}
	var kerr *ckpt.KindError
	if _, err := LoadTKG(path, w, w.Resolver()); !errors.As(err, &kerr) {
		t.Fatalf("want *ckpt.KindError, got %v", err)
	}
}

// TestTKGFileCorruption: bit flips and truncation in a saved TKG file
// surface as the ckpt package's typed corruption errors.
func TestTKGFileCorruption(t *testing.T) {
	tkg, w := buildTestTKG(t)
	path := filepath.Join(t.TempDir(), "tkg.ck")
	if err := tkg.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)*3/4] ^= 0x10
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTKG(path, w, w.Resolver()); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Fatalf("bit flip: want ErrCorrupt, got %v", err)
	}

	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTKG(path, w, w.Resolver()); !errors.Is(err, ckpt.ErrTruncated) {
		t.Fatalf("truncation: want ErrTruncated, got %v", err)
	}
}
