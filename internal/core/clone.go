package core

import (
	"bytes"

	"trail/internal/apt"
	"trail/internal/graph"
)

// Clone returns a deep copy of the TKG sharing the same enrichment
// services and extractor. The longitudinal experiments use clones to
// merge future months into the graph without disturbing the base TKG the
// other experiments read.
func (t *TKG) Clone() (*TKG, error) {
	var buf bytes.Buffer
	if _, err := t.G.WriteTo(&buf); err != nil {
		return nil, err
	}
	g := graph.New()
	if _, err := g.ReadFrom(&buf); err != nil {
		return nil, err
	}
	features := make(map[graph.NodeID][]float64, len(t.Features))
	for id, v := range t.Features {
		features[id] = v // vectors are never mutated after extraction
	}
	eventAPTs := make(map[graph.NodeID]map[apt.ID]bool, len(t.eventAPTs))
	for id, set := range t.eventAPTs {
		cp := make(map[apt.ID]bool, len(set))
		for k, v := range set {
			cp[k] = v
		}
		eventAPTs[id] = cp
	}
	nt := NewTKGFallible(t.fsvc, t.Resolver, t.Config)
	nt.G = g
	nt.Features = features
	nt.SkippedPulses = t.SkippedPulses
	nt.eventAPTs = eventAPTs
	nt.report = t.report
	nt.report.DegradedByKind = make(map[graph.NodeKind]int, len(t.report.DegradedByKind))
	for k, v := range t.report.DegradedByKind {
		nt.report.DegradedByKind[k] = v
	}
	nt.enrichErrs.Store(t.enrichErrs.Load())
	return nt, nil
}
