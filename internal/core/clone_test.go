package core

import (
	"testing"

	"trail/internal/graph"
	"trail/internal/osint"
)

func TestCloneIsDeepForGraph(t *testing.T) {
	tkg, w := buildTestTKG(t)
	cp, err := tkg.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if cp.G.NumNodes() != tkg.G.NumNodes() || cp.G.NumEdges() != tkg.G.NumEdges() {
		t.Fatal("clone shape mismatch")
	}
	if len(cp.Features) != len(tkg.Features) {
		t.Fatal("clone features mismatch")
	}

	// Merging a future pulse into the clone must not touch the original.
	origNodes := tkg.G.NumNodes()
	var future *osint.Pulse
	for i := range w.Pulses() {
		p := w.Pulses()[i]
		if _, ok := tkg.G.Lookup(graph.KindEvent, p.ID); !ok {
			future = &p
			break
		}
	}
	if future == nil {
		// All pulses already merged: synthesise a fresh one by re-tagging.
		p := w.Pulses()[0]
		p.ID = "synthetic-new-pulse"
		future = &p
	}
	if _, err := cp.AddPulse(*future); err != nil {
		t.Fatal(err)
	}
	cp.FinalizeLabels()
	if tkg.G.NumNodes() != origNodes {
		t.Fatal("merging into the clone mutated the original graph")
	}
	if cp.G.NumNodes() <= origNodes {
		t.Fatal("clone did not grow")
	}
}

func TestCloneSharesServices(t *testing.T) {
	tkg, _ := buildTestTKG(t)
	cp, err := tkg.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// The clone shares the underlying enrichment stack but owns its
	// error tap and extractor, so enrichment failures during a merge into
	// the clone degrade the clone's report, not the original's.
	if cp.fsvc != tkg.fsvc {
		t.Fatal("clone must share the underlying enrichment services")
	}
	if cp.svc == tkg.svc || cp.Extractor == tkg.Extractor {
		t.Fatal("clone must own its error tap and extractor")
	}
	// Labels and reuse metadata must survive the round trip.
	for _, ev := range tkg.EventNodes() {
		if cp.G.Node(ev).Label != tkg.G.Node(ev).Label {
			t.Fatal("event label lost in clone")
		}
	}
}

func TestMaxHopsOneSkipsSecondaries(t *testing.T) {
	w := osint.NewWorld(osint.TestConfig())
	shallow := NewTKG(w, w.Resolver(), BuildConfig{MaxHops: 1, FeaturizeSecondaries: true})
	if _, err := shallow.Build(w.Pulses()); err != nil {
		t.Fatal(err)
	}
	deep := NewTKG(w, w.Resolver(), DefaultBuildConfig())
	if _, err := deep.Build(w.Pulses()); err != nil {
		t.Fatal(err)
	}
	if shallow.G.NumNodes() >= deep.G.NumNodes() {
		t.Fatalf("MaxHops=1 graph (%d nodes) not smaller than 2-hop graph (%d)",
			shallow.G.NumNodes(), deep.G.NumNodes())
	}
	// With MaxHops 1 every IOC node must be first-order: nothing was
	// discovered by expansion.
	shallow.G.ForEachNode(func(n graph.Node) {
		switch n.Kind {
		case graph.KindIP, graph.KindURL, graph.KindDomain:
			if !n.FirstOrder {
				t.Fatalf("secondary IOC %s present despite MaxHops=1", n.Key)
			}
		}
	})
}

func TestSkippedPulseLeavesGraphUntouched(t *testing.T) {
	w := osint.NewWorld(osint.TestConfig())
	tkg := NewTKG(w, w.Resolver(), DefaultBuildConfig())
	p := w.Pulses()[0]
	p.ID = "conflicted"
	p.Tags = []string{"APT28", "APT29"} // resolves to two groups: must skip
	if _, err := tkg.AddPulse(p); err != ErrSkipped {
		t.Fatalf("expected ErrSkipped, got %v", err)
	}
	if tkg.G.NumNodes() != 0 {
		t.Fatal("skipped pulse added nodes")
	}
	if tkg.SkippedPulses != 1 {
		t.Fatalf("SkippedPulses = %d", tkg.SkippedPulses)
	}
}

func TestEventCountMatchesInReportDegree(t *testing.T) {
	tkg, _ := buildTestTKG(t)
	tkg.G.ForEachNode(func(n graph.Node) {
		if !n.FirstOrder {
			return
		}
		count := 0
		tkg.G.NeighborEdges(n.ID, func(_ graph.NodeID, et graph.EdgeType, _ bool) bool {
			if et == graph.EdgeInReport {
				count++
			}
			return true
		})
		if n.EventCount != count {
			t.Fatalf("%s EventCount %d != InReport degree %d", n.Key, n.EventCount, count)
		}
	})
}

func TestSchemaEdgeEndpoints(t *testing.T) {
	// Every edge type must connect the node kinds Table I allows.
	tkg, _ := buildTestTKG(t)
	allowed := map[graph.EdgeType]map[[2]graph.NodeKind]bool{
		graph.EdgeInReport: {
			{graph.KindEvent, graph.KindIP}:     true,
			{graph.KindEvent, graph.KindURL}:    true,
			{graph.KindEvent, graph.KindDomain}: true,
		},
		graph.EdgeARecord:    {{graph.KindIP, graph.KindDomain}: true},
		graph.EdgeInGroup:    {{graph.KindIP, graph.KindASN}: true},
		graph.EdgeHostedOn:   {{graph.KindURL, graph.KindDomain}: true},
		graph.EdgeResolvesTo: {{graph.KindURL, graph.KindIP}: true, {graph.KindDomain, graph.KindIP}: true},
	}
	tkg.G.ForEachNode(func(n graph.Node) {
		tkg.G.NeighborEdges(n.ID, func(to graph.NodeID, et graph.EdgeType, fwd bool) bool {
			if !fwd {
				return true
			}
			pair := [2]graph.NodeKind{n.Kind, tkg.G.Node(to).Kind}
			if !allowed[et][pair] {
				t.Fatalf("edge %s connects %s -> %s, not allowed by Table I",
					et, pair[0], pair[1])
			}
			return true
		})
	})
}
