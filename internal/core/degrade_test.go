package core

import (
	"bytes"
	"context"
	"os"
	"strconv"
	"testing"
	"time"

	"trail/internal/graph"
	"trail/internal/osint"
)

// chaosRate returns the fault rate for the chaos-gated tests: 0.2 by
// default, overridden by the TRAIL_CHAOS environment variable (the
// Makefile `chaos` target sets an aggressive rate).
func chaosRate(t *testing.T) float64 {
	if s := os.Getenv("TRAIL_CHAOS"); s != "" {
		r, err := strconv.ParseFloat(s, 64)
		if err != nil || r < 0 || r > 1 {
			t.Fatalf("bad TRAIL_CHAOS=%q", s)
		}
		return r
	}
	return 0.2
}

// buildStack assembles world -> chaos -> resilience -> TKG on a manual
// clock, the canonical fault-injected build used by these tests and the
// Makefile chaos gate.
func buildStack(t *testing.T, chaosCfg osint.ChaosConfig) (*osint.World, *osint.ChaosServices, *TKG, *BuildReport) {
	t.Helper()
	w := osint.NewWorld(osint.TestConfig())
	clock := osint.NewManualClock(time.Unix(0, 0)).AutoAdvance(time.Millisecond)
	chaosCfg.Clock = clock
	chaos := osint.NewChaosServices(w, chaosCfg)
	rcfg := osint.DefaultResilienceConfig()
	rcfg.Clock = clock
	rcfg.MaxAttempts = 5
	res := osint.NewResilientServices(chaos, rcfg)
	tkg := NewTKGFallible(res, w.Resolver(), DefaultBuildConfig())
	rep, err := tkg.Build(w.Pulses())
	if err != nil {
		t.Fatalf("chaotic build failed: %v", err)
	}
	return w, chaos, tkg, rep
}

// graphBytes serialises the graph deterministically for bit-identity
// comparison.
func graphBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTransientChaosIsInvisible is the headline resilience guarantee:
// with 20% transient faults (and a consecutive-failure cap below the
// retry budget), a full TKG build completes, degrades nothing, and the
// resulting graph and features are bit-identical to a fault-free build
// over the same world.
func TestTransientChaosIsInvisible(t *testing.T) {
	rate := chaosRate(t)
	_, chaos, chaotic, rep := buildStack(t, osint.ChaosConfig{
		Seed:                    42,
		TransientRate:           rate,
		MaxConsecutiveTransient: 3,
	})
	if c := chaos.Counters(); c.Transient == 0 {
		t.Fatal("no transient faults injected; test is vacuous")
	}
	if d := rep.Degraded(); d != 0 {
		t.Fatalf("%d nodes degraded; retries should have absorbed all transient faults (report: %s)", d, rep.Render())
	}
	if rep.EnrichErrors != 0 {
		t.Fatalf("%d enrichment errors leaked past the middleware", rep.EnrichErrors)
	}
	if rep.Resilience == nil || rep.Resilience.Totals().Retries == 0 {
		t.Fatal("resilience metrics missing or show no retries")
	}

	// Fault-free reference build over an identical world.
	w2 := osint.NewWorld(osint.TestConfig())
	clean := NewTKG(w2, w2.Resolver(), DefaultBuildConfig())
	if _, err := clean.Build(w2.Pulses()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(graphBytes(t, chaotic.G), graphBytes(t, clean.G)) {
		t.Fatal("chaotic graph differs from fault-free graph")
	}
	if len(chaotic.Features) != len(clean.Features) {
		t.Fatalf("feature count differs: %d vs %d", len(chaotic.Features), len(clean.Features))
	}
	for id, v := range clean.Features {
		cv, ok := chaotic.Features[id]
		if !ok || len(cv) != len(v) {
			t.Fatalf("node %d: feature vector missing or resized", id)
		}
		for i := range v {
			if cv[i] != v[i] {
				t.Fatalf("node %d dim %d: %v vs %v", id, i, cv[i], v[i])
			}
		}
	}
}

// TestPermanentChaosDegradesGracefully: permanent provider failures must
// not abort the build; the affected IOCs stay in the graph with the
// Degraded flag and imputed features, and the report tallies them.
func TestPermanentChaosDegradesGracefully(t *testing.T) {
	rate := chaosRate(t)
	_, chaos, tkg, rep := buildStack(t, osint.ChaosConfig{
		Seed:          42,
		PermanentRate: rate,
	})
	if c := chaos.Counters(); c.Permanent == 0 {
		t.Fatal("no permanent faults injected; test is vacuous")
	}
	if rep.Degraded() == 0 {
		t.Fatalf("permanent faults injected but nothing degraded: %s", rep.Render())
	}
	if rep.EnrichErrors == 0 {
		t.Fatal("enrichment errors not tallied")
	}

	// Every degraded flag in the graph is accounted per kind, and every
	// degraded featurized node carries a usable (non-nil, right-size)
	// vector.
	perKind := map[graph.NodeKind]int{}
	degradedWithFeatures := 0
	imputedNonZero := 0
	tkg.G.ForEachNode(func(n graph.Node) {
		if !n.Degraded {
			return
		}
		perKind[n.Kind]++
		if v, ok := tkg.Features[n.ID]; ok {
			degradedWithFeatures++
			for _, x := range v {
				if x != 0 {
					imputedNonZero++
					break
				}
			}
		}
	})
	for k, want := range rep.DegradedByKind {
		if perKind[k] != want {
			t.Fatalf("kind %v: report says %d degraded, graph has %d", k, want, perKind[k])
		}
	}
	if degradedWithFeatures == 0 {
		t.Fatal("no degraded node kept a feature vector")
	}
	if imputedNonZero == 0 {
		t.Fatal("every degraded vector is all-zero: imputation never ran")
	}

	// Degraded flags survive snapshot round trips.
	var buf bytes.Buffer
	if _, err := tkg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	w2 := osint.NewWorld(osint.TestConfig())
	back, err := ReadTKG(&buf, w2, w2.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	reloaded := 0
	back.G.ForEachNode(func(n graph.Node) {
		if n.Degraded {
			reloaded++
		}
	})
	if reloaded != rep.Degraded() {
		t.Fatalf("degraded flags lost in persistence: %d vs %d", reloaded, rep.Degraded())
	}
}

// TestBuildReportBookkeeping checks the report totals on a plain,
// fault-free build.
func TestBuildReportBookkeeping(t *testing.T) {
	w := osint.NewWorld(osint.TestConfig())
	tkg := NewTKG(w, w.Resolver(), DefaultBuildConfig())
	rep, err := tkg.Build(w.Pulses())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pulses != len(w.Pulses()) {
		t.Fatalf("pulses %d, want %d", rep.Pulses, len(w.Pulses()))
	}
	if rep.Merged != len(tkg.EventNodes()) {
		t.Fatalf("merged %d, events %d", rep.Merged, len(tkg.EventNodes()))
	}
	if rep.Merged+rep.Skipped != rep.Pulses {
		t.Fatalf("merged %d + skipped %d != pulses %d", rep.Merged, rep.Skipped, rep.Pulses)
	}
	if rep.Degraded() != 0 || rep.EnrichErrors != 0 {
		t.Fatalf("fault-free build reported damage: %s", rep.Render())
	}
	// The plain World exposes no metrics source.
	if rep.Resilience != nil {
		t.Fatal("unexpected resilience metrics on an infallible stack")
	}
}

// TestBuildContextCancel: a canceled context aborts between pulses with a
// wrapped cause rather than panicking or hanging.
func TestBuildContextCancel(t *testing.T) {
	w := osint.NewWorld(osint.TestConfig())
	tkg := NewTKG(w, w.Resolver(), DefaultBuildConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tkg.BuildContext(ctx, w.Pulses()); err == nil {
		t.Fatal("canceled build returned nil error")
	}
}
