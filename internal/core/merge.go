package core

import (
	"fmt"

	"trail/internal/apt"
	"trail/internal/graph"
)

// MergeStats reports what one MergeFrom call did.
type MergeStats struct {
	// NodesAdded is the number of src nodes that were new to the
	// destination graph.
	NodesAdded int
	// Deduped is the number of src IOC/ASN nodes that already existed in
	// the destination (shared infrastructure stitching the shards).
	Deduped int
	// EdgesAdded is the number of logical edges inserted (duplicates
	// across shards collapse silently).
	EdgesAdded int
	// DegradedHealed counts destination nodes whose Degraded flag was
	// cleared because src observed the same IOC with clean enrichment.
	DegradedHealed int
}

// MergeFrom merges src into t: the shard-stitch primitive of the sharded
// build. Nodes are matched by (kind, key) through a stable remap table
// built in src node-ID order, so for a fixed sequence of MergeFrom calls
// the destination's node IDs and adjacency order — and therefore its
// serialised bytes — are fully deterministic.
//
// Reconciliation rules for an IOC observed by both graphs:
//
//   - edges are unioned (graph.AddEdge collapses duplicates);
//   - FirstOrder is OR-ed;
//   - Month keeps the earlier first-observation bucket (plain min: every
//     build path stamps creation month, and ASN nodes are always 0);
//   - Degraded heals: if the destination copy is degraded and src saw the
//     IOC with clean enrichment, src's measured features replace the
//     imputed ones and the flag clears. A clean destination copy is never
//     re-degraded by a degraded src observation;
//   - per-IOC event-membership sets are unioned; callers run
//     FinalizeLabels once after the last merge to recompute derived
//     labels and EventCounts over the stitched adjacency.
//
// Event nodes must be unique across the merged graphs: a pulse ID already
// present in t is reported as ErrDuplicate (wrapped with the key) and the
// merge aborts without touching edges. Shard plans over disjoint time
// windows cannot trip this; overlapping feeds do.
//
// Build bookkeeping (pulse/skip/enrichment-error counters) accumulates
// into t's report. The feature-mean imputer state is not merged: pulses
// added to t after a merge impute from t's own observations only.
func (t *TKG) MergeFrom(src *TKG) (MergeStats, error) {
	var stats MergeStats
	remap := make([]graph.NodeID, src.G.NumNodes())

	for i := 0; i < src.G.NumNodes(); i++ {
		n := src.G.Node(graph.NodeID(i))
		id, created := t.G.Upsert(n.Kind, n.Key)
		remap[n.ID] = id
		if created {
			stats.NodesAdded++
			t.G.UpdateNode(id, func(m *graph.Node) {
				m.Label = n.Label
				m.FirstOrder = n.FirstOrder
				m.Month = n.Month
				m.Degraded = n.Degraded
			})
			if f, ok := src.Features[n.ID]; ok {
				t.Features[id] = f
			}
			if n.Degraded {
				t.report.DegradedByKind[n.Kind]++
			}
			continue
		}
		if n.Kind == graph.KindEvent {
			return stats, fmt.Errorf("%w %q (present in both merged graphs)", ErrDuplicate, n.Key)
		}
		stats.Deduped++
		cur := t.G.Node(id)
		month := cur.Month
		if n.Month < month {
			month = n.Month
		}
		degraded := cur.Degraded
		if cur.Degraded && !n.Degraded {
			// src enriched this IOC cleanly where we could not: adopt its
			// measured features (when it has any) and clear the flag. The
			// union of edges below completes the relation expansion that
			// failed on the degraded side.
			degraded = false
			stats.DegradedHealed++
			t.report.DegradedByKind[n.Kind]--
			if f, ok := src.Features[n.ID]; ok {
				t.Features[id] = f
			}
		} else if _, has := t.Features[id]; !has {
			if f, ok := src.Features[n.ID]; ok {
				// The destination never featurized this node (ablation
				// builds skip secondaries): adopt src's vector and let the
				// flag record whether it is measured or imputed.
				t.Features[id] = f
				if n.Degraded && !degraded {
					degraded = true
					t.report.DegradedByKind[n.Kind]++
				}
			}
		}
		if cur.FirstOrder != (cur.FirstOrder || n.FirstOrder) || month != cur.Month || degraded != cur.Degraded {
			first := cur.FirstOrder || n.FirstOrder
			t.G.UpdateNode(id, func(m *graph.Node) {
				m.FirstOrder = first
				m.Month = month
				m.Degraded = degraded
			})
		}
	}

	src.G.ForEachEdge(func(u, v graph.NodeID, et graph.EdgeType) bool {
		if t.G.AddEdge(remap[u], remap[v], et) {
			stats.EdgesAdded++
		}
		return true
	})

	for id, set := range src.eventAPTs {
		dst := t.eventAPTs[remap[id]]
		if dst == nil {
			dst = make(map[apt.ID]bool, len(set))
			t.eventAPTs[remap[id]] = dst
		}
		for a := range set {
			dst[a] = true
		}
	}

	t.report.Pulses += src.report.Pulses
	t.report.Merged += src.report.Merged
	t.SkippedPulses += src.SkippedPulses
	t.enrichErrs.Add(src.enrichErrs.Load())
	return stats, nil
}
