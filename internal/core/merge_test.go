package core

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"trail/internal/graph"
	"trail/internal/osint"
)

// buildWindowTKG builds a sub-TKG over one slice of the world's pulse feed,
// the way a shard worker does.
func buildWindowTKG(t testing.TB, w *osint.World, pulses []osint.Pulse) *TKG {
	t.Helper()
	tkg := NewTKG(w, w.Resolver(), DefaultBuildConfig())
	if _, err := tkg.Build(pulses); err != nil {
		t.Fatalf("Build window: %v", err)
	}
	return tkg
}

// mergeAll stitches the shards, in the order given, into a fresh TKG and
// finalizes labels — the single-threaded core of the shard merge phase.
func mergeAll(t testing.TB, w *osint.World, shards []*TKG) *TKG {
	t.Helper()
	dst := NewTKG(w, w.Resolver(), DefaultBuildConfig())
	for i, s := range shards {
		if _, err := dst.MergeFrom(s); err != nil {
			t.Fatalf("MergeFrom shard %d: %v", i, err)
		}
	}
	dst.FinalizeLabels()
	return dst
}

// nodeKey is the identity of a node independent of its numeric ID.
func nodeKey(n graph.Node) string { return fmt.Sprintf("%v|%s", n.Kind, n.Key) }

// semanticState flattens a TKG into ID-independent maps for comparison
// between a monolithic build and a shard-merged one (node IDs differ, the
// knowledge must not).
type semanticState struct {
	nodes map[string]graph.Node // keyed by nodeKey, ID zeroed
	feats map[string][]float64
	edges map[string]bool
}

func flatten(tkg *TKG) semanticState {
	s := semanticState{
		nodes: make(map[string]graph.Node),
		feats: make(map[string][]float64),
		edges: make(map[string]bool),
	}
	tkg.G.ForEachNode(func(n graph.Node) {
		if f, ok := tkg.Features[n.ID]; ok {
			s.feats[nodeKey(n)] = f
		}
		n.ID = 0
		s.nodes[nodeKey(n)] = n
	})
	tkg.G.ForEachEdge(func(u, v graph.NodeID, et graph.EdgeType) bool {
		s.edges[fmt.Sprintf("%s>%s|%d", nodeKey(tkg.G.Node(u)), nodeKey(tkg.G.Node(v)), et)] = true
		return true
	})
	return s
}

// TestMergeShardsMatchesMonolithic is the core stitching contract: the
// knowledge that comes directly from the pulses — event nodes, first-order
// IOCs, the InReport structure, derived labels and EventCounts, and the
// (deterministic) feature vectors of every node both builds share — must
// be identical between per-window sub-TKGs stitched by MergeFrom and one
// monolithic build over the full feed.
//
// Full node/edge equality is deliberately NOT asserted: relation expansion
// only follows newly-created IOCs, so which hop-2 secondaries exist is
// path-dependent in the monolithic build itself (it depends on pulse
// grouping, not just the pulse set). The sharded build's own determinism —
// bit-identical bytes regardless of worker count, completion order, or
// crash/retry cycles — is pinned in internal/shard.
func TestMergeShardsMatchesMonolithic(t *testing.T) {
	w := osint.NewWorld(osint.TestConfig())
	mono := NewTKG(w, w.Resolver(), DefaultBuildConfig())
	if _, err := mono.Build(w.Pulses()); err != nil {
		t.Fatalf("monolithic build: %v", err)
	}

	_, parts := w.PartitionPulses(3)
	if len(parts) != 3 {
		t.Fatalf("expected 3 windows, got %d", len(parts))
	}
	shards := make([]*TKG, len(parts))
	for i, pulses := range parts {
		shards[i] = buildWindowTKG(t, w, pulses)
	}
	merged := mergeAll(t, w, shards)

	sm, sn := flatten(merged), flatten(mono)

	// Events: exactly the same set, with identical labels and months.
	monoEvents, mergedEvents := 0, 0
	for k, n := range sn.nodes {
		if n.Kind != graph.KindEvent {
			continue
		}
		monoEvents++
		m, ok := sm.nodes[k]
		if !ok {
			t.Fatalf("merged graph missing event %s", k)
		}
		if m != n {
			t.Errorf("event %s mismatch: merged %+v monolithic %+v", k, m, n)
		}
	}
	for _, n := range sm.nodes {
		if n.Kind == graph.KindEvent {
			mergedEvents++
		}
	}
	if monoEvents != mergedEvents {
		t.Fatalf("event count: merged %d != monolithic %d", mergedEvents, monoEvents)
	}

	// First-order IOCs: same set, same derived Label/EventCount/FirstOrder.
	// (Month and Degraded are creation-path bookkeeping; Month can differ
	// when a node is discovered as a secondary by only one of the builds.)
	for k, n := range sn.nodes {
		if n.Kind == graph.KindEvent || !n.FirstOrder {
			continue
		}
		m, ok := sm.nodes[k]
		if !ok {
			t.Fatalf("merged graph missing first-order IOC %s", k)
		}
		if !m.FirstOrder || m.Label != n.Label || m.EventCount != n.EventCount {
			t.Errorf("IOC %s: merged label=%d count=%d first=%v, monolithic label=%d count=%d",
				k, m.Label, m.EventCount, m.FirstOrder, n.Label, n.EventCount)
		}
	}
	for k, m := range sm.nodes {
		if m.Kind != graph.KindEvent && m.FirstOrder {
			if n, ok := sn.nodes[k]; !ok || !n.FirstOrder {
				t.Errorf("merged first-order IOC %s not first-order in monolithic build", k)
			}
		}
	}

	// InReport edges come straight from pulse indicators: identical sets.
	filterInReport := func(edges map[string]bool) map[string]bool {
		out := make(map[string]bool)
		suffix := fmt.Sprintf("|%d", graph.EdgeInReport)
		for e := range edges {
			if len(e) > len(suffix) && e[len(e)-len(suffix):] == suffix {
				out[e] = true
			}
		}
		return out
	}
	if !reflect.DeepEqual(filterInReport(sm.edges), filterInReport(sn.edges)) {
		t.Error("InReport edge sets differ between merged and monolithic builds")
	}

	// Feature extraction is deterministic per key: any node featurized by
	// both builds must carry bit-identical vectors.
	for k, want := range sn.feats {
		if got, ok := sm.feats[k]; ok && !reflect.DeepEqual(got, want) {
			t.Errorf("feature vector for %s differs between builds", k)
		}
	}

	if got, want := merged.SkippedPulses, mono.SkippedPulses; got != want {
		t.Errorf("merged SkippedPulses %d != monolithic %d", got, want)
	}
}

// TestMergeDeterministic pins the byte-level contract the shard build
// depends on: the same shard sequence merged twice yields identical bytes.
func TestMergeDeterministic(t *testing.T) {
	w := osint.NewWorld(osint.TestConfig())
	_, parts := w.PartitionPulses(4)
	shards := make([]*TKG, len(parts))
	for i, pulses := range parts {
		shards[i] = buildWindowTKG(t, w, pulses)
	}
	var a, b bytes.Buffer
	if _, err := mergeAll(t, w, shards).WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := mergeAll(t, w, shards).WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two identical merge sequences produced different bytes")
	}
}

// TestMergeSharedIOCDedups is the ErrDuplicate boundary contract: the same
// IOC observed in two shards must dedup (one node, unioned edges) — only a
// duplicate *event* is an error.
func TestMergeSharedIOCDedups(t *testing.T) {
	w := osint.NewWorld(osint.TestConfig())
	_, parts := w.PartitionPulses(2)
	if len(parts) != 2 {
		t.Fatalf("expected 2 windows, got %d", len(parts))
	}
	a := buildWindowTKG(t, w, parts[0])
	b := buildWindowTKG(t, w, parts[1])

	shared := make(map[string]bool)
	a.G.ForEachNode(func(n graph.Node) {
		if n.Kind != graph.KindEvent {
			shared[nodeKey(n)] = false
		}
	})
	overlap := 0
	b.G.ForEachNode(func(n graph.Node) {
		if _, ok := shared[nodeKey(n)]; ok {
			shared[nodeKey(n)] = true
			overlap++
		}
	})
	if overlap == 0 {
		t.Skip("no shared infrastructure between windows in this world")
	}

	dst := NewTKG(w, w.Resolver(), DefaultBuildConfig())
	if _, err := dst.MergeFrom(a); err != nil {
		t.Fatalf("merge shard A: %v", err)
	}
	stats, err := dst.MergeFrom(b)
	if err != nil {
		t.Fatalf("shared IOC across shards must dedup, got error: %v", err)
	}
	if stats.Deduped != overlap {
		t.Fatalf("Deduped = %d, want %d (the cross-window infrastructure)", stats.Deduped, overlap)
	}
	if got, want := dst.G.NumNodes(), a.G.NumNodes()+b.G.NumNodes()-overlap; got != want {
		t.Fatalf("merged nodes %d, want %d (no duplicates)", got, want)
	}
}

// TestMergeDuplicateEventErrors: the same pulse fed to two shards is a
// plan bug, and the merge must surface it as core.ErrDuplicate.
func TestMergeDuplicateEventErrors(t *testing.T) {
	w := osint.NewWorld(osint.TestConfig())
	pulses := w.Pulses()[:4]
	a := buildWindowTKG(t, w, pulses)
	b := buildWindowTKG(t, w, pulses)

	dst := NewTKG(w, w.Resolver(), DefaultBuildConfig())
	if _, err := dst.MergeFrom(a); err != nil {
		t.Fatalf("first merge: %v", err)
	}
	_, err := dst.MergeFrom(b)
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("overlapping events merged without ErrDuplicate: %v", err)
	}
}

// degradeNode manually flags one node degraded and drops its features,
// simulating a shard whose enrichment for that IOC failed.
func degradeNode(tkg *TKG, id graph.NodeID) {
	tkg.G.UpdateNode(id, func(n *graph.Node) { n.Degraded = true })
	tkg.report.DegradedByKind[tkg.G.Node(id).Kind]++
	delete(tkg.Features, id)
}

// sharedNodeIDs returns the ID, in each graph, of one non-event node
// present in both (deterministically: lowest ID in a).
func sharedNodeIDs(t *testing.T, a, b *TKG) (graph.NodeID, graph.NodeID) {
	t.Helper()
	inB := make(map[string]graph.NodeID)
	b.G.ForEachNode(func(n graph.Node) {
		if n.Kind != graph.KindEvent {
			inB[nodeKey(n)] = n.ID
		}
	})
	for i := 0; i < a.G.NumNodes(); i++ {
		n := a.G.Node(graph.NodeID(i))
		if n.Kind == graph.KindEvent {
			continue
		}
		if idB, ok := inB[nodeKey(n)]; ok {
			return n.ID, idB
		}
	}
	t.Skip("no shared infrastructure between windows in this world")
	return 0, 0
}

// TestMergeHealsDegraded: a clean observation of an IOC in a later shard
// must clear the Degraded flag set by a failed enrichment in an earlier
// one, adopting the measured features.
func TestMergeHealsDegraded(t *testing.T) {
	w := osint.NewWorld(osint.TestConfig())
	_, parts := w.PartitionPulses(2)
	a := buildWindowTKG(t, w, parts[0])
	b := buildWindowTKG(t, w, parts[1])
	idA, idB := sharedNodeIDs(t, a, b)
	degradeNode(a, idA)
	kind := a.G.Node(idA).Kind

	dst := NewTKG(w, w.Resolver(), DefaultBuildConfig())
	if _, err := dst.MergeFrom(a); err != nil {
		t.Fatal(err)
	}
	if dst.report.DegradedByKind[kind] != 1 {
		t.Fatalf("degraded accounting after first merge = %d, want 1", dst.report.DegradedByKind[kind])
	}
	stats, err := dst.MergeFrom(b)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DegradedHealed != 1 {
		t.Fatalf("DegradedHealed = %d, want 1", stats.DegradedHealed)
	}
	if dst.report.DegradedByKind[kind] != 0 {
		t.Fatalf("degraded accounting after heal = %d, want 0", dst.report.DegradedByKind[kind])
	}
	key := a.G.Node(idA).Key
	id, ok := dst.G.Lookup(kind, key)
	if !ok {
		t.Fatalf("healed node %s lost", key)
	}
	if dst.G.Node(id).Degraded {
		t.Fatal("node still degraded after clean re-observation")
	}
	if want, ok := b.Features[idB]; ok {
		if got := dst.Features[id]; !reflect.DeepEqual(got, want) {
			t.Fatal("healed node did not adopt the clean shard's features")
		}
	}
}

// TestMergeCleanNotRedegraded: the mirror case — a degraded observation in
// a later shard must not re-degrade a node the earlier shard enriched
// cleanly, nor clobber its measured features.
func TestMergeCleanNotRedegraded(t *testing.T) {
	w := osint.NewWorld(osint.TestConfig())
	_, parts := w.PartitionPulses(2)
	a := buildWindowTKG(t, w, parts[0])
	b := buildWindowTKG(t, w, parts[1])
	idA, idB := sharedNodeIDs(t, a, b)
	degradeNode(b, idB)
	kind := a.G.Node(idA).Kind
	key := a.G.Node(idA).Key
	wantFeat := a.Features[idA]

	dst := NewTKG(w, w.Resolver(), DefaultBuildConfig())
	if _, err := dst.MergeFrom(a); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	id, ok := dst.G.Lookup(kind, key)
	if !ok {
		t.Fatalf("node %s lost", key)
	}
	if dst.G.Node(id).Degraded {
		t.Fatal("clean node re-degraded by a degraded shard observation")
	}
	if dst.report.DegradedByKind[kind] != 0 {
		t.Fatalf("degraded accounting = %d, want 0", dst.report.DegradedByKind[kind])
	}
	if wantFeat != nil && !reflect.DeepEqual(dst.Features[id], wantFeat) {
		t.Fatal("degraded shard observation clobbered measured features")
	}
}
