package core

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"trail/internal/apt"
	"trail/internal/ckpt"
	"trail/internal/graph"
	"trail/internal/osint"
)

// tkgSnapshot is the gob-serialisable envelope for a complete TKG:
// the graph, the engineered feature vectors, and the build bookkeeping.
// Enrichment services and the extractor are reattached at load time.
type tkgSnapshot struct {
	Version       int
	Config        BuildConfig
	SkippedPulses int
	FeatureIDs    []graph.NodeID
	FeatureVecs   [][]float64
	EventAPTIDs   []graph.NodeID
	EventAPTSets  [][]int32
}

const tkgSnapshotVersion = 1

// WriteTo serialises the full TKG (graph, features, metadata) to w.
func (t *TKG) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n, err := t.G.WriteTo(bw)
	if err != nil {
		return n, err
	}
	snap := tkgSnapshot{
		Version:       tkgSnapshotVersion,
		Config:        t.Config,
		SkippedPulses: t.SkippedPulses,
	}
	// Maps are walked in sorted ID order so two snapshots of the same TKG
	// are byte-identical — the checksummed checkpoint layer (and any
	// content-addressed storage above it) depends on deterministic bytes.
	featIDs := make([]graph.NodeID, 0, len(t.Features))
	for id := range t.Features {
		featIDs = append(featIDs, id)
	}
	sort.Slice(featIDs, func(i, j int) bool { return featIDs[i] < featIDs[j] })
	for _, id := range featIDs {
		snap.FeatureIDs = append(snap.FeatureIDs, id)
		snap.FeatureVecs = append(snap.FeatureVecs, t.Features[id])
	}
	evIDs := make([]graph.NodeID, 0, len(t.eventAPTs))
	for id := range t.eventAPTs {
		evIDs = append(evIDs, id)
	}
	sort.Slice(evIDs, func(i, j int) bool { return evIDs[i] < evIDs[j] })
	for _, id := range evIDs {
		snap.EventAPTIDs = append(snap.EventAPTIDs, id)
		apts := make([]int32, 0, len(t.eventAPTs[id]))
		for a := range t.eventAPTs[id] {
			apts = append(apts, int32(a))
		}
		sort.Slice(apts, func(i, j int) bool { return apts[i] < apts[j] })
		snap.EventAPTSets = append(snap.EventAPTSets, apts)
	}
	if err := gob.NewEncoder(bw).Encode(&snap); err != nil {
		return n, fmt.Errorf("core: encode TKG snapshot: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("core: flush TKG snapshot: %w", err)
	}
	return n, nil
}

// ReadTKG loads a TKG written by WriteTo, reattaching the given
// enrichment services and resolver (which are not serialised).
func ReadTKG(r io.Reader, svc osint.Services, resolver *apt.Resolver) (*TKG, error) {
	return ReadTKGFallible(r, osint.Infallible(svc), resolver)
}

// ReadTKGFallible is ReadTKG reattaching an error-aware services stack,
// so a recovered TKG keeps the degradation ladder (resilience
// middleware, Degraded flags, imputation) it was built under —
// streaming ingest recovers through this path.
func ReadTKGFallible(r io.Reader, fsvc osint.FallibleServices, resolver *apt.Resolver) (*TKG, error) {
	br := bufio.NewReader(r)
	g := graph.New()
	if _, err := g.ReadFrom(br); err != nil {
		return nil, err
	}
	var snap tkgSnapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decode TKG snapshot: %w", err)
	}
	if snap.Version != tkgSnapshotVersion {
		return nil, fmt.Errorf("core: unsupported TKG snapshot version %d", snap.Version)
	}
	if len(snap.FeatureIDs) != len(snap.FeatureVecs) || len(snap.EventAPTIDs) != len(snap.EventAPTSets) {
		return nil, fmt.Errorf("core: corrupt TKG snapshot: ragged arrays")
	}
	t := NewTKGFallible(fsvc, resolver, snap.Config)
	t.G = g
	t.SkippedPulses = snap.SkippedPulses
	nodes := g.NumNodes()
	for i, id := range snap.FeatureIDs {
		if int(id) >= nodes {
			return nil, fmt.Errorf("core: corrupt TKG snapshot: feature node %d out of range", id)
		}
		t.Features[id] = snap.FeatureVecs[i]
	}
	for i, id := range snap.EventAPTIDs {
		if int(id) >= nodes {
			return nil, fmt.Errorf("core: corrupt TKG snapshot: eventAPT node %d out of range", id)
		}
		set := make(map[apt.ID]bool, len(snap.EventAPTSets[i]))
		for _, a := range snap.EventAPTSets[i] {
			set[apt.ID(a)] = true
		}
		t.eventAPTs[id] = set
	}
	return t, nil
}

// TKGCheckpointKind tags TKG snapshots inside the checkpoint envelope.
const TKGCheckpointKind = "core.tkg"

// Save writes the TKG snapshot to path atomically inside the checksummed
// checkpoint envelope: a crashed writer leaves the previous file intact,
// and a corrupted file is detected on load instead of misdecoding.
func (t *TKG) Save(path string) error {
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		return err
	}
	return ckpt.Save(path, TKGCheckpointKind, tkgSnapshotVersion, buf.Bytes())
}

// LoadTKG reads a TKG snapshot from path, verifying envelope integrity
// (kind, version, checksum) before decoding. Corruption and version skew
// surface as the ckpt package's typed errors.
func LoadTKG(path string, svc osint.Services, resolver *apt.Resolver) (*TKG, error) {
	return LoadTKGFallible(path, osint.Infallible(svc), resolver)
}

// LoadTKGFallible is LoadTKG reattaching an error-aware services stack.
func LoadTKGFallible(path string, fsvc osint.FallibleServices, resolver *apt.Resolver) (*TKG, error) {
	payload, err := ckpt.Load(path, TKGCheckpointKind, tkgSnapshotVersion)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	return ReadTKGFallible(bytes.NewReader(payload), fsvc, resolver)
}
