package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"trail/internal/apt"
	"trail/internal/graph"
	"trail/internal/osint"
)

// tkgSnapshot is the gob-serialisable envelope for a complete TKG:
// the graph, the engineered feature vectors, and the build bookkeeping.
// Enrichment services and the extractor are reattached at load time.
type tkgSnapshot struct {
	Version       int
	Config        BuildConfig
	SkippedPulses int
	FeatureIDs    []graph.NodeID
	FeatureVecs   [][]float64
	EventAPTIDs   []graph.NodeID
	EventAPTSets  [][]int32
}

const tkgSnapshotVersion = 1

// WriteTo serialises the full TKG (graph, features, metadata) to w.
func (t *TKG) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n, err := t.G.WriteTo(bw)
	if err != nil {
		return n, err
	}
	snap := tkgSnapshot{
		Version:       tkgSnapshotVersion,
		Config:        t.Config,
		SkippedPulses: t.SkippedPulses,
	}
	for id, vec := range t.Features {
		snap.FeatureIDs = append(snap.FeatureIDs, id)
		snap.FeatureVecs = append(snap.FeatureVecs, vec)
	}
	for id, set := range t.eventAPTs {
		snap.EventAPTIDs = append(snap.EventAPTIDs, id)
		var apts []int32
		for a := range set {
			apts = append(apts, int32(a))
		}
		snap.EventAPTSets = append(snap.EventAPTSets, apts)
	}
	if err := gob.NewEncoder(bw).Encode(&snap); err != nil {
		return n, fmt.Errorf("core: encode TKG snapshot: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("core: flush TKG snapshot: %w", err)
	}
	return n, nil
}

// ReadTKG loads a TKG written by WriteTo, reattaching the given
// enrichment services and resolver (which are not serialised).
func ReadTKG(r io.Reader, svc osint.Services, resolver *apt.Resolver) (*TKG, error) {
	br := bufio.NewReader(r)
	g := graph.New()
	if _, err := g.ReadFrom(br); err != nil {
		return nil, err
	}
	var snap tkgSnapshot
	if err := gob.NewDecoder(br).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decode TKG snapshot: %w", err)
	}
	if snap.Version != tkgSnapshotVersion {
		return nil, fmt.Errorf("core: unsupported TKG snapshot version %d", snap.Version)
	}
	if len(snap.FeatureIDs) != len(snap.FeatureVecs) || len(snap.EventAPTIDs) != len(snap.EventAPTSets) {
		return nil, fmt.Errorf("core: corrupt TKG snapshot: ragged arrays")
	}
	t := NewTKG(svc, resolver, snap.Config)
	t.G = g
	t.SkippedPulses = snap.SkippedPulses
	nodes := g.NumNodes()
	for i, id := range snap.FeatureIDs {
		if int(id) >= nodes {
			return nil, fmt.Errorf("core: corrupt TKG snapshot: feature node %d out of range", id)
		}
		t.Features[id] = snap.FeatureVecs[i]
	}
	for i, id := range snap.EventAPTIDs {
		if int(id) >= nodes {
			return nil, fmt.Errorf("core: corrupt TKG snapshot: eventAPT node %d out of range", id)
		}
		set := make(map[apt.ID]bool, len(snap.EventAPTSets[i]))
		for _, a := range snap.EventAPTSets[i] {
			set[apt.ID(a)] = true
		}
		t.eventAPTs[id] = set
	}
	return t, nil
}

// Save writes the TKG snapshot to path atomically.
func (t *TKG) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: save: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: save: %w", err)
	}
	return nil
}

// LoadTKG reads a TKG snapshot from path.
func LoadTKG(path string, svc osint.Services, resolver *apt.Resolver) (*TKG, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	defer f.Close()
	return ReadTKG(f, svc, resolver)
}
