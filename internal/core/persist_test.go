package core

import (
	"bytes"
	"testing"

	"trail/internal/graph"
	"trail/internal/osint"
)

func TestTKGSnapshotRoundTrip(t *testing.T) {
	tkg, w := buildTestTKG(t)
	var buf bytes.Buffer
	if _, err := tkg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTKG(&buf, w, w.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	if loaded.G.NumNodes() != tkg.G.NumNodes() || loaded.G.NumEdges() != tkg.G.NumEdges() {
		t.Fatal("graph shape lost")
	}
	if len(loaded.Features) != len(tkg.Features) {
		t.Fatalf("features lost: %d vs %d", len(loaded.Features), len(tkg.Features))
	}
	for id, vec := range tkg.Features {
		got, ok := loaded.Features[id]
		if !ok || len(got) != len(vec) {
			t.Fatalf("feature vector for node %d lost", id)
		}
	}
	if loaded.SkippedPulses != tkg.SkippedPulses {
		t.Fatal("skip counter lost")
	}
	if loaded.Config != tkg.Config {
		t.Fatal("build config lost")
	}
	// Labels derived from the eventAPTs metadata must survive a
	// re-finalisation after load.
	loaded.FinalizeLabels()
	tkg.G.ForEachNode(func(n graph.Node) {
		if n.FirstOrder && loaded.G.Node(n.ID).Label != n.Label {
			t.Fatalf("IOC label changed after reload for %s", n.Key)
		}
	})
}

func TestTKGSaveLoadFile(t *testing.T) {
	tkg, w := buildTestTKG(t)
	path := t.TempDir() + "/tkg.gob"
	if err := tkg.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTKG(path, w, w.Resolver())
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.EventNodes()) != len(tkg.EventNodes()) {
		t.Fatal("events lost")
	}
	// A loaded TKG must accept new pulses (merge path intact).
	future := osint.Pulse{
		ID:   "post-load-pulse",
		Tags: []string{"APT28"},
		Indicators: []osint.Indicator{
			{Indicator: "198.51.100.77", Type: "IPv4"},
		},
	}
	if _, err := loaded.AddPulse(future); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTKG(t.TempDir()+"/missing.gob", w, w.Resolver()); err == nil {
		t.Fatal("loading a missing snapshot should fail")
	}
}

func TestTKGSnapshotCorruptionDetected(t *testing.T) {
	tkg, w := buildTestTKG(t)
	var buf bytes.Buffer
	if _, err := tkg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Truncate the trailer: the feature envelope should fail to decode.
	if _, err := ReadTKG(bytes.NewReader(raw[:len(raw)-10]), w, w.Resolver()); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}
