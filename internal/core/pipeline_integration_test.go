package core

import (
	"context"
	"testing"

	"trail/internal/graph"
	"trail/internal/osint"
)

// TestBuildThroughCachedServices checks that the production enrichment
// stack (prefetch into a cache, then build through the cache) produces a
// TKG identical to building against the backend directly.
func TestBuildThroughCachedServices(t *testing.T) {
	w := osint.NewWorld(osint.TestConfig())

	direct := NewTKG(w, w.Resolver(), DefaultBuildConfig())
	if _, err := direct.Build(w.Pulses()); err != nil {
		t.Fatal(err)
	}

	cached := osint.NewCachedServices(w)
	pf := &osint.Prefetcher{Services: cached, Workers: 4}
	if _, err := pf.Prefetch(context.Background(), w.Pulses()); err != nil {
		t.Fatal(err)
	}
	viaCache := NewTKG(cached, w.Resolver(), DefaultBuildConfig())
	if _, err := viaCache.Build(w.Pulses()); err != nil {
		t.Fatal(err)
	}

	if viaCache.G.NumNodes() != direct.G.NumNodes() || viaCache.G.NumEdges() != direct.G.NumEdges() {
		t.Fatalf("cached build diverged: %d/%d nodes, %d/%d edges",
			viaCache.G.NumNodes(), direct.G.NumNodes(),
			viaCache.G.NumEdges(), direct.G.NumEdges())
	}
	if len(viaCache.Features) != len(direct.Features) {
		t.Fatalf("cached build feature count diverged: %d vs %d",
			len(viaCache.Features), len(direct.Features))
	}
	// Spot-check adjacency equivalence node by node.
	for id := 0; id < direct.G.NumNodes(); id++ {
		a := direct.G.SortedNeighborKeys(graph.NodeID(id))
		b := viaCache.G.SortedNeighborKeys(graph.NodeID(id))
		if len(a) != len(b) {
			t.Fatalf("node %d adjacency diverged", id)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d neighbor %d: %s vs %s", id, i, a[i], b[i])
			}
		}
	}
	hits, misses := cached.Stats()
	if hits == 0 {
		t.Error("cache never hit during the build; prefetch was useless")
	}
	_ = misses
}
