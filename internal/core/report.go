package core

import (
	"fmt"
	"sort"
	"strings"

	"trail/internal/graph"
	"trail/internal/ioc"
	"trail/internal/osint"
)

// BuildReport summarises what happened to enrichment during a TKG build:
// how many pulses were merged or skipped, how many enrichment calls
// failed after the resilience middleware gave up, and how many IOC nodes
// were degraded to imputed features as a result. When the enrichment
// stack exposes resilience metrics (osint.MetricsSource), the snapshot is
// attached so operators see attempts, retries and breaker trips alongside
// the graph-level damage.
type BuildReport struct {
	// Pulses is the number of pulses offered to the build.
	Pulses int
	// Merged is the number of pulses that became event nodes.
	Merged int
	// Skipped is the number of pulses discarded by tag resolution.
	Skipped int
	// EnrichErrors is the number of enrichment lookups that failed after
	// the middleware exhausted its options (each may degrade a node).
	EnrichErrors int
	// DegradedByKind counts IOC nodes flagged Degraded, per node kind.
	DegradedByKind map[graph.NodeKind]int
	// Resilience is the middleware counter snapshot, or nil when the
	// enrichment stack exposes none (e.g. the plain synthetic World).
	Resilience *osint.ResilienceMetrics
}

// Degraded returns the total number of degraded IOC nodes.
func (r *BuildReport) Degraded() int {
	n := 0
	for _, c := range r.DegradedByKind {
		n += c
	}
	return n
}

// Render formats the report for CLI output.
func (r *BuildReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "build report: %d pulses (%d merged, %d skipped), %d enrichment failures, %d degraded nodes\n",
		r.Pulses, r.Merged, r.Skipped, r.EnrichErrors, r.Degraded())
	if len(r.DegradedByKind) > 0 {
		kinds := make([]graph.NodeKind, 0, len(r.DegradedByKind))
		for k := range r.DegradedByKind {
			kinds = append(kinds, k)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		for _, k := range kinds {
			fmt.Fprintf(&b, "  degraded %-7s %d\n", k, r.DegradedByKind[k])
		}
	}
	if r.Resilience != nil {
		t := r.Resilience.Totals()
		fmt.Fprintf(&b, "  enrichment: %d attempts, %d retries, %d timeouts, %d breaker trips, %d rejected\n",
			t.Attempts, t.Retries, t.Timeouts, t.Trips, t.Rejected)
	}
	return b.String()
}

// imputer maintains per-IOC-type running feature means over successfully
// enriched vectors, and fills the enrichment-derived dimensions of a
// failed extraction with those means (zeros until the first success).
// Lexically derived dimensions — computable from the indicator string
// alone — are already set in the failed vector and are preserved.
type imputer struct {
	sum   map[ioc.Type][]float64
	count map[ioc.Type]int
}

func newImputer() *imputer {
	return &imputer{sum: make(map[ioc.Type][]float64), count: make(map[ioc.Type]int)}
}

// observe folds a successfully enriched vector into the running mean.
func (im *imputer) observe(t ioc.Type, v []float64) {
	s := im.sum[t]
	if s == nil {
		s = make([]float64, len(v))
		im.sum[t] = s
	}
	if len(s) != len(v) {
		return // defensive: dimensionality is fixed per type
	}
	for i, x := range v {
		s[i] += x
	}
	im.count[t]++
}

// impute fills the zero dimensions of v with the running mean for type t.
// Non-zero dimensions (lexical features the extractor computed without
// the provider) are kept as measured.
func (im *imputer) impute(t ioc.Type, v []float64) {
	s := im.sum[t]
	n := im.count[t]
	if s == nil || n == 0 || len(s) != len(v) {
		return // no observations yet: the zero vector is the fallback
	}
	inv := 1 / float64(n)
	for i := range v {
		if v[i] == 0 {
			v[i] = s[i] * inv
		}
	}
}

// observations reports how many vectors of type t have been folded in
// (exposed for tests).
func (im *imputer) observations(t ioc.Type) int { return im.count[t] }
