package core

import (
	"fmt"
	"sort"
	"strings"

	"trail/internal/graph"
)

// KindStats is one row of the Table II dataset report.
type KindStats struct {
	Kind          graph.NodeKind
	Nodes         int
	Edges         int // sum of degrees of nodes of this kind (paper's per-type edge count)
	AvgDegree     float64
	FirstOrderPct float64 // % of nodes listed directly in a report (NaN-free: 0 if n/a)
	AvgReuse      float64 // mean events per first-order IOC
}

// Report is the full dataset report of §V.
type Report struct {
	PerKind []KindStats
	Total   KindStats

	SkippedPulses int
}

// Stats computes the Table II dataset report.
func (t *TKG) Stats() Report {
	type acc struct {
		nodes, degSum, firstOrder, reuseSum, reuseN int
	}
	accs := make(map[graph.NodeKind]*acc)
	for _, k := range graph.Kinds() {
		accs[k] = &acc{}
	}
	t.G.ForEachNode(func(n graph.Node) {
		a := accs[n.Kind]
		a.nodes++
		a.degSum += t.G.Degree(n.ID)
		if n.FirstOrder {
			a.firstOrder++
			a.reuseSum += n.EventCount
			a.reuseN++
		}
	})

	var rep Report
	var tot acc
	for _, k := range graph.Kinds() {
		a := accs[k]
		ks := KindStats{Kind: k, Nodes: a.nodes, Edges: a.degSum}
		if a.nodes > 0 {
			ks.AvgDegree = float64(a.degSum) / float64(a.nodes)
		}
		if k != graph.KindEvent && k != graph.KindASN && a.nodes > 0 {
			ks.FirstOrderPct = 100 * float64(a.firstOrder) / float64(a.nodes)
		}
		if a.reuseN > 0 && k != graph.KindEvent {
			ks.AvgReuse = float64(a.reuseSum) / float64(a.reuseN)
		}
		rep.PerKind = append(rep.PerKind, ks)
		tot.nodes += a.nodes
		tot.degSum += a.degSum
		if k != graph.KindEvent && k != graph.KindASN {
			tot.firstOrder += a.firstOrder
			tot.reuseSum += a.reuseSum
			tot.reuseN += a.reuseN
		}
	}
	rep.Total = KindStats{Nodes: tot.nodes, Edges: tot.degSum}
	if tot.nodes > 0 {
		rep.Total.AvgDegree = float64(tot.degSum) / float64(tot.nodes)
	}
	iocNodes := tot.nodes - accs[graph.KindEvent].nodes - accs[graph.KindASN].nodes
	if iocNodes > 0 {
		rep.Total.FirstOrderPct = 100 * float64(tot.firstOrder) / float64(iocNodes)
	}
	if tot.reuseN > 0 {
		rep.Total.AvgReuse = float64(tot.reuseSum) / float64(tot.reuseN)
	}
	rep.SkippedPulses = t.SkippedPulses
	return rep
}

// String renders the report as a Table II-style text table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %10s %9s\n",
		"Type", "Nodes", "Edges", "AvgDeg", "1stOrder%", "AvgReuse")
	row := func(name string, s KindStats) {
		fmt.Fprintf(&b, "%-8s %10d %10d %10.3f %10.2f %9.3f\n",
			name, s.Nodes, s.Edges, s.AvgDegree, s.FirstOrderPct, s.AvgReuse)
	}
	for _, s := range r.PerKind {
		row(s.Kind.String()+"s", s)
	}
	row("Total", r.Total)
	return b.String()
}

// ReuseBucket is one point of the Fig. 4 reuse distribution: Count IOCs
// of the kind appeared in exactly Reuse events.
type ReuseBucket struct {
	Reuse int
	Count int
}

// ReuseHistogram returns, per IOC kind, the distribution of how many
// distinct events each first-order IOC appeared in (Fig. 4).
func (t *TKG) ReuseHistogram() map[graph.NodeKind][]ReuseBucket {
	hist := make(map[graph.NodeKind]map[int]int)
	t.G.ForEachNode(func(n graph.Node) {
		if !n.FirstOrder || n.EventCount == 0 {
			return
		}
		m := hist[n.Kind]
		if m == nil {
			m = make(map[int]int)
			hist[n.Kind] = m
		}
		m[n.EventCount]++
	})
	out := make(map[graph.NodeKind][]ReuseBucket, len(hist))
	for k, m := range hist {
		buckets := make([]ReuseBucket, 0, len(m))
		for reuse, count := range m {
			buckets = append(buckets, ReuseBucket{Reuse: reuse, Count: count})
		}
		sort.Slice(buckets, func(i, j int) bool { return buckets[i].Reuse < buckets[j].Reuse })
		out[k] = buckets
	}
	return out
}

// ConnectivityStats bundles the graph-structure observations of §IV-§V:
// component structure, diameter estimate, and event proximity.
type ConnectivityStats struct {
	Components           int
	LargestComponent     int
	LargestComponentPct  float64
	Diameter             int // pseudo-diameter of the largest component
	EventsWithin2Hops    int // events with another event within 2 hops
	EventsWithin2HopsPct float64
	FirstOrderComponents int // component count of the first-order-only subgraph
	FirstOrderDiameter   int
}

// Connectivity computes the connectivity statistics. It is O(V+E) per
// BFS and runs one BFS per event for the proximity statistic, so cost is
// bounded by events * (V+E).
func (t *TKG) Connectivity() ConnectivityStats {
	adj := t.G.Adjacency()
	var cs ConnectivityStats

	_, sizes := graph.ConnectedComponents(adj)
	cs.Components = len(sizes)
	for _, s := range sizes {
		if s > cs.LargestComponent {
			cs.LargestComponent = s
		}
	}
	if n := t.G.NumNodes(); n > 0 {
		cs.LargestComponentPct = 100 * float64(cs.LargestComponent) / float64(n)
	}
	if members, _ := graph.LargestComponent(adj); len(members) > 0 {
		cs.Diameter = graph.PseudoDiameter(adj, members[0], 6)
	}

	events := t.EventNodes()
	cs.EventsWithin2Hops = graph.CountWithinHops(adj, events, 2)
	if len(events) > 0 {
		cs.EventsWithin2HopsPct = 100 * float64(cs.EventsWithin2Hops) / float64(len(events))
	}

	// First-order subgraph: events + first-order IOCs only.
	keep := make([]bool, t.G.NumNodes())
	t.G.ForEachNode(func(n graph.Node) {
		keep[n.ID] = n.Kind == graph.KindEvent || n.FirstOrder
	})
	sub := graph.InducedAdjacency(adj, func(id graph.NodeID) bool { return keep[id] })
	subLabels, subSizes := graph.ConnectedComponents(sub)
	// Discard singleton components formed by excluded nodes.
	excluded := 0
	for id := range keep {
		if !keep[id] {
			excluded++
		}
	}
	_ = subLabels
	cs.FirstOrderComponents = len(subSizes) - excluded
	if members, _ := graph.LargestComponent(sub); len(members) > 0 {
		cs.FirstOrderDiameter = graph.PseudoDiameter(sub, members[0], 6)
	}
	return cs
}
