package core

import (
	"context"

	"trail/internal/graph"
	"trail/internal/ioc"
	"trail/internal/osint"
)

// ApplyPulse merges one incident report and immediately re-finalises the
// derived labels of exactly the IOCs it touched — the streaming
// equivalent of AddPulse followed by FinalizeLabels, reaching the same
// TKG state without the per-event full-sweep cost (the sweep is O(all
// labelled IOCs); this is O(IOCs in the pulse)). The equivalence holds
// because finalisation is idempotent and an IOC's derived state only
// changes when a new event attaches to it, which always lands it in the
// touched set.
//
// ctx bounds enrichment for this one pulse: cancellation makes in-flight
// lookups fail fast (degrading the affected nodes) rather than blocking
// a drain.
func (t *TKG) ApplyPulse(ctx context.Context, p osint.Pulse) (graph.NodeID, error) {
	t.buildCtx = ctx
	t.trackTouched = true
	t.touched = t.touched[:0]
	defer func() {
		t.trackTouched = false
		t.buildCtx = context.Background()
	}()
	id, err := t.AddPulse(p)
	if err != nil {
		return id, err
	}
	for _, ioc := range t.touched {
		t.finalizeOne(ioc)
	}
	return id, nil
}

// RepairDegraded re-attempts feature enrichment for up to max Degraded
// IOC nodes (all of them when max <= 0): the catch-up loop behind
// streaming ingest's degradation ladder. A node whose extraction now
// succeeds without provider errors gets measured features, feeds the
// imputer's running mean, and drops its Degraded flag; nodes that still
// fail stay flagged for the next pass. Relation expansion is not redone
// — repairs restore feature quality, not missed edges — so the graph
// structure (and any incremental label-propagation state derived from
// it) is untouched.
//
// Repairs are in-memory state only: they become durable at the next
// checkpoint cut, and after a crash the affected nodes simply reload as
// Degraded and are repaired again — the operation is idempotent.
func (t *TKG) RepairDegraded(ctx context.Context, max int) (repaired, attempted int) {
	var cands []graph.Node
	t.G.ForEachNode(func(n graph.Node) {
		if n.Degraded && (max <= 0 || len(cands) < max) {
			cands = append(cands, n)
		}
	})
	if len(cands) == 0 {
		return 0, 0
	}
	t.buildCtx = ctx
	defer func() { t.buildCtx = context.Background() }()
	for _, n := range cands {
		if ctx.Err() != nil {
			return repaired, attempted
		}
		item, ok := iocOf(n)
		if !ok {
			continue
		}
		attempted++
		before := t.enrichErrs.Load()
		v, found := t.Extractor.Extract(item)
		if v == nil || t.enrichErrs.Load() > before {
			continue // still failing: keep the imputed vector and the flag
		}
		if found {
			t.imp.observe(item.Type, v)
		}
		t.Features[n.ID] = v
		t.G.UpdateNode(n.ID, func(nn *graph.Node) { nn.Degraded = false })
		if t.report.DegradedByKind[n.Kind] > 0 {
			t.report.DegradedByKind[n.Kind]--
		}
		repaired++
	}
	return repaired, attempted
}

// iocOf reconstructs the IOC behind a node record — the inverse of
// kindOf for the feature-bearing kinds.
func iocOf(n graph.Node) (ioc.IOC, bool) {
	switch n.Kind {
	case graph.KindIP:
		return ioc.IOC{Type: ioc.TypeIP, Value: n.Key}, true
	case graph.KindURL:
		return ioc.IOC{Type: ioc.TypeURL, Value: n.Key}, true
	case graph.KindDomain:
		return ioc.IOC{Type: ioc.TypeDomain, Value: n.Key}, true
	default:
		return ioc.IOC{}, false
	}
}

// EventSeeds returns the labelled event nodes as a label-propagation
// seed map — the seed set streaming ingest maintains incrementally and
// rebuilds from scratch on recovery.
func (t *TKG) EventSeeds() map[graph.NodeID]int {
	seeds := make(map[graph.NodeID]int)
	t.G.ForEachNode(func(n graph.Node) {
		if n.Kind == graph.KindEvent && n.Label >= 0 {
			seeds[n.ID] = n.Label
		}
	})
	return seeds
}
