package core

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"

	"trail/internal/graph"
	"trail/internal/osint"
)

func tkgBytes(t *testing.T, tkg *TKG) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tkg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestApplyPulseMatchesBatchBuild is the streaming-apply equivalence
// contract: merging pulses one at a time through ApplyPulse (incremental
// finalisation after every event) reaches a TKG byte-identical to the
// batch Build path (one FinalizeLabels sweep at the end).
func TestApplyPulseMatchesBatchBuild(t *testing.T) {
	w := osint.NewWorld(osint.TestConfig())
	pulses := w.Pulses()

	batch := NewTKG(w, w.Resolver(), DefaultBuildConfig())
	if _, err := batch.Build(pulses); err != nil {
		t.Fatal(err)
	}

	stream := NewTKG(w, w.Resolver(), DefaultBuildConfig())
	ctx := context.Background()
	for i := range pulses {
		if _, err := stream.ApplyPulse(ctx, pulses[i]); err != nil && err != ErrSkipped {
			t.Fatalf("pulse %d: %v", i, err)
		}
	}

	if !bytes.Equal(tkgBytes(t, stream), tkgBytes(t, batch)) {
		t.Fatal("streamed TKG differs from batch-built TKG")
	}
}

// TestApplyPulseDuplicate: a replayed pulse ID reports the error without
// mutating the graph — the property WAL replay overlap relies on.
func TestApplyPulseDuplicate(t *testing.T) {
	w := osint.NewWorld(osint.TestConfig())
	p := w.Pulses()[0]
	tkg := NewTKG(w, w.Resolver(), DefaultBuildConfig())
	ctx := context.Background()
	if _, err := tkg.ApplyPulse(ctx, p); err != nil {
		t.Fatal(err)
	}
	before := tkgBytes(t, tkg)
	if _, err := tkg.ApplyPulse(ctx, p); err == nil {
		t.Fatal("duplicate pulse not rejected")
	}
	if !bytes.Equal(before, tkgBytes(t, tkg)) {
		t.Fatal("duplicate pulse mutated the TKG")
	}
}

// switchableServices fails every lookup with a permanent error until
// healed, then delegates to the real world — the shape of a provider
// outage that ends.
type switchableServices struct {
	inner  osint.FallibleServices
	broken atomic.Bool
}

var errOutage = context.DeadlineExceeded

func (s *switchableServices) LookupIP(ctx context.Context, addr string) (osint.IPRecord, bool, error) {
	if s.broken.Load() {
		return osint.IPRecord{}, false, errOutage
	}
	return s.inner.LookupIP(ctx, addr)
}

func (s *switchableServices) PassiveDNSDomain(ctx context.Context, name string) (osint.DomainRecord, bool, error) {
	if s.broken.Load() {
		return osint.DomainRecord{}, false, errOutage
	}
	return s.inner.PassiveDNSDomain(ctx, name)
}

func (s *switchableServices) PassiveDNSIP(ctx context.Context, addr string) ([]string, bool, error) {
	if s.broken.Load() {
		return nil, false, errOutage
	}
	return s.inner.PassiveDNSIP(ctx, addr)
}

func (s *switchableServices) ProbeURL(ctx context.Context, url string) (osint.URLRecord, bool, error) {
	if s.broken.Load() {
		return osint.URLRecord{}, false, errOutage
	}
	return s.inner.ProbeURL(ctx, url)
}

// TestRepairDegraded: an outage during the build degrades nodes; once
// the provider heals, the catch-up loop restores measured features and
// clears the flags, and a second pass finds nothing left to do.
func TestRepairDegraded(t *testing.T) {
	w := osint.NewWorld(osint.TestConfig())
	svc := &switchableServices{inner: osint.Infallible(w)}
	svc.broken.Store(true)
	tkg := NewTKGFallible(svc, w.Resolver(), DefaultBuildConfig())
	if _, err := tkg.Build(w.Pulses()); err != nil {
		t.Fatal(err)
	}
	rep := tkg.Report()
	degraded := rep.Degraded()
	if degraded == 0 {
		t.Fatal("outage degraded nothing; test is vacuous")
	}

	ctx := context.Background()
	// Still broken: repair attempts run but fix nothing.
	if repaired, _ := tkg.RepairDegraded(ctx, 0); repaired != 0 {
		t.Fatalf("repaired %d nodes during the outage", repaired)
	}

	svc.broken.Store(false)
	repaired, attempted := tkg.RepairDegraded(ctx, 0)
	if attempted == 0 || repaired == 0 {
		t.Fatalf("healed repair pass: repaired %d attempted %d", repaired, attempted)
	}
	left := 0
	tkg.G.ForEachNode(func(n graph.Node) {
		if n.Degraded {
			left++
		}
	})
	if left != 0 {
		t.Fatalf("%d nodes still degraded after healed repair", left)
	}
	if got := tkg.Report().Degraded(); got != 0 {
		t.Fatalf("report still counts %d degraded", got)
	}
	if r2, a2 := tkg.RepairDegraded(ctx, 0); r2 != 0 || a2 != 0 {
		t.Fatalf("second pass found work: repaired %d attempted %d", r2, a2)
	}

	// A bounded pass respects max.
	svc.broken.Store(true)
	tkg2 := NewTKGFallible(svc, w.Resolver(), DefaultBuildConfig())
	if _, err := tkg2.Build(w.Pulses()); err != nil {
		t.Fatal(err)
	}
	svc.broken.Store(false)
	if _, attempted := tkg2.RepairDegraded(ctx, 2); attempted > 2 {
		t.Fatalf("max=2 attempted %d", attempted)
	}
}

// TestTKGRoundTripSmall is the regression guard for the gob read-ahead
// bug: serialising a small TKG and reading it back must succeed and
// re-serialise to identical bytes. (encoding/gob buffers ahead when its
// reader lacks ReadByte, eating the start of the snapshot stream that
// follows the graph stream — which only bit on small graphs.)
func TestTKGRoundTripSmall(t *testing.T) {
	w := osint.NewWorld(osint.TestConfig())
	for _, n := range []int{1, 2, 4, 8} {
		tkg := NewTKG(w, w.Resolver(), DefaultBuildConfig())
		if _, err := tkg.Build(w.Pulses()[:n]); err != nil {
			t.Fatal(err)
		}
		want := tkgBytes(t, tkg)
		back, err := ReadTKG(bytes.NewReader(want), w, w.Resolver())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(tkgBytes(t, back), want) {
			t.Fatalf("n=%d: round trip not byte-identical", n)
		}
	}
}
