// Package core implements the paper's primary contribution: the TRAIL
// system that turns a feed of attributed OSINT incident reports into the
// TRAIL Knowledge Graph (TKG).
//
// The pipeline follows §III-§IV of the paper:
//
//  1. Collect: parse pulses, resolve APT tags (discarding reports whose
//     tags map to more than one group), refang and classify indicators.
//  2. Enrich: query passive DNS, IP lookup and URL probing for every
//     reported IOC; the responses both yield feature vectors and reveal
//     secondary IOCs (IPs behind domains, domains historically on an IP,
//     ASN groups), which are themselves analysed, up to a configurable
//     hop limit (2 in the paper).
//  3. Merge: connect everything into the shared knowledge graph using the
//     Table I schema (InReport, ARecord, InGroup, ResolvesTo, HostedOn).
//
// The resulting TKG bundles the property graph, per-node feature vectors,
// and event labels; the analysis packages (labelprop, gnn, ml, tree)
// consume it directly.
package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"trail/internal/apt"
	"trail/internal/feature"
	"trail/internal/graph"
	"trail/internal/ioc"
	"trail/internal/osint"
)

// BuildConfig controls TKG construction.
type BuildConfig struct {
	// MaxHops bounds how far from the event node relation expansion
	// proceeds: IOCs at hop <= MaxHops-1 have their relations followed
	// (the paper uses 2: reported IOCs sit at hop 1 and are expanded, the
	// secondary IOCs they reveal sit at hop 2 and are not).
	MaxHops int
	// FeaturizeSecondaries requests feature analysis for secondary IOCs
	// too (the paper does). Disabling it is an ablation knob.
	FeaturizeSecondaries bool
}

// DefaultBuildConfig mirrors the paper's construction parameters.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{MaxHops: 2, FeaturizeSecondaries: true}
}

// TKG is the TRAIL knowledge graph: the property graph plus node feature
// vectors and build bookkeeping.
type TKG struct {
	G *graph.Graph
	// Features holds the engineered vector for IOC nodes that have one
	// (events and ASNs have none).
	Features map[graph.NodeID][]float64
	// Extractor is the featurizer used during the build; the analysis
	// code reuses it for fresh, not-yet-merged IOCs.
	Extractor *feature.Extractor
	Resolver  *apt.Resolver
	Config    BuildConfig

	// svc is the infallible view the Extractor and relation expansion
	// consume; it taps enrichment errors from fsvc into the build report
	// so failed lookups degrade nodes instead of masquerading as misses.
	svc  osint.Services
	fsvc osint.FallibleServices
	// metricsSrc, when non-nil, supplies resilience middleware counters
	// for the build report.
	metricsSrc osint.MetricsSource
	// buildCtx is the context of the in-progress build (Background
	// outside one).
	buildCtx context.Context
	// enrichErrs counts enrichment errors observed through the tap.
	enrichErrs atomic.Int64
	report     BuildReport
	imp        *imputer
	// SkippedPulses counts reports discarded for conflicting tags.
	SkippedPulses int
	// eventAPTs tracks, per IOC node, the set of distinct APTs of events
	// it appears in; used to derive single-label IOC labels (Table III).
	eventAPTs map[graph.NodeID]map[apt.ID]bool
	// touched accumulates, while trackTouched is set, the IOC nodes whose
	// event membership changed during the current ApplyPulse, so the
	// streaming path can re-finalise exactly those instead of sweeping
	// every labelled IOC per event.
	trackTouched bool
	touched      []graph.NodeID
}

// NewTKG returns an empty TKG that enriches through svc and resolves tags
// through resolver. The services are treated as infallible (every lookup
// either finds data or is a clean miss); deployments with real, flaky
// providers should use NewTKGFallible with the resilience middleware.
func NewTKG(svc osint.Services, resolver *apt.Resolver, cfg BuildConfig) *TKG {
	return NewTKGFallible(osint.Infallible(svc), resolver, cfg)
}

// NewTKGFallible returns an empty TKG enriching through an error-aware
// services stack. Enrichment errors do not abort the build: the affected
// IOC keeps its node, receives imputed (feature-mean/zero) features, is
// flagged Degraded, and the failure is tallied in the BuildReport.
func NewTKGFallible(fsvc osint.FallibleServices, resolver *apt.Resolver, cfg BuildConfig) *TKG {
	if cfg.MaxHops < 1 {
		cfg.MaxHops = 1
	}
	t := &TKG{
		G:         graph.New(),
		Features:  make(map[graph.NodeID][]float64),
		Resolver:  resolver,
		Config:    cfg,
		fsvc:      fsvc,
		buildCtx:  context.Background(),
		imp:       newImputer(),
		eventAPTs: make(map[graph.NodeID]map[apt.ID]bool),
	}
	t.report.DegradedByKind = make(map[graph.NodeKind]int)
	if ms, ok := fsvc.(osint.MetricsSource); ok {
		t.metricsSrc = ms
	}
	t.svc = &errTap{t: t}
	t.Extractor = feature.NewExtractor(t.svc)
	return t
}

// errTap adapts the TKG's FallibleServices to the infallible Services
// shape the Extractor consumes, recording every enrichment error so the
// builder can tell outages apart from genuine negative results.
type errTap struct{ t *TKG }

func (a *errTap) LookupIP(addr string) (osint.IPRecord, bool) {
	rec, ok, err := a.t.fsvc.LookupIP(a.t.buildCtx, addr)
	if err != nil {
		a.t.noteEnrichErr()
		return osint.IPRecord{}, false
	}
	return rec, ok
}

func (a *errTap) PassiveDNSDomain(name string) (osint.DomainRecord, bool) {
	rec, ok, err := a.t.fsvc.PassiveDNSDomain(a.t.buildCtx, name)
	if err != nil {
		a.t.noteEnrichErr()
		return osint.DomainRecord{}, false
	}
	return rec, ok
}

func (a *errTap) PassiveDNSIP(addr string) ([]string, bool) {
	doms, ok, err := a.t.fsvc.PassiveDNSIP(a.t.buildCtx, addr)
	if err != nil {
		a.t.noteEnrichErr()
		return nil, false
	}
	return doms, ok
}

func (a *errTap) ProbeURL(url string) (osint.URLRecord, bool) {
	rec, ok, err := a.t.fsvc.ProbeURL(a.t.buildCtx, url)
	if err != nil {
		a.t.noteEnrichErr()
		return osint.URLRecord{}, false
	}
	return rec, ok
}

func (t *TKG) noteEnrichErr() { t.enrichErrs.Add(1) }

// Build ingests a batch of pulses, finalises derived labels, and returns
// the build report. Pulses without a unique APT tag are skipped and
// counted, not treated as errors; enrichment failures degrade individual
// nodes without aborting the build.
func (t *TKG) Build(pulses []osint.Pulse) (*BuildReport, error) {
	return t.BuildContext(context.Background(), pulses)
}

// BuildContext is Build under a context: cancellation stops enrichment
// (in-flight lookups fail fast) and aborts between pulses.
func (t *TKG) BuildContext(ctx context.Context, pulses []osint.Pulse) (*BuildReport, error) {
	t.buildCtx = ctx
	defer func() { t.buildCtx = context.Background() }()
	for i := range pulses {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: build canceled at pulse %d: %w", i, err)
		}
		if _, err := t.AddPulse(pulses[i]); err != nil && err != ErrSkipped {
			return nil, fmt.Errorf("core: pulse %d (%s): %w", i, pulses[i].ID, err)
		}
	}
	t.FinalizeLabels()
	return t.Report(), nil
}

// Report snapshots the cumulative build bookkeeping, including the
// resilience middleware counters when the enrichment stack exposes them.
func (t *TKG) Report() *BuildReport {
	rep := t.report
	rep.EnrichErrors = int(t.enrichErrs.Load())
	rep.Skipped = t.SkippedPulses
	rep.DegradedByKind = make(map[graph.NodeKind]int, len(t.report.DegradedByKind))
	for k, v := range t.report.DegradedByKind {
		rep.DegradedByKind[k] = v
	}
	if t.metricsSrc != nil {
		m := t.metricsSrc.Metrics()
		rep.Resilience = &m
	}
	return &rep
}

// ErrSkipped is returned by AddPulse for reports discarded by the tag
// resolution rule; the TKG is unchanged in that case.
var ErrSkipped = fmt.Errorf("core: pulse skipped (no unique APT tag)")

// ErrDuplicate is returned (wrapped with the pulse ID) when a pulse's ID
// is already an event in the graph. The TKG is unchanged; streaming
// replay relies on this to make WAL overlap harmless.
var ErrDuplicate = fmt.Errorf("core: duplicate pulse ID")

// AddPulse merges one incident report into the TKG and returns the event
// node ID. Reports whose tags do not resolve to exactly one APT return
// ErrSkipped.
func (t *TKG) AddPulse(p osint.Pulse) (graph.NodeID, error) {
	t.report.Pulses++
	label, ok := t.Resolver.ResolveTags(p.Tags)
	if !ok {
		t.SkippedPulses++
		return 0, ErrSkipped
	}

	eventID, created := t.G.Upsert(graph.KindEvent, p.ID)
	if !created {
		return eventID, fmt.Errorf("%w %q", ErrDuplicate, p.ID)
	}
	t.report.Merged++
	month := p.Month
	t.G.UpdateNode(eventID, func(n *graph.Node) {
		n.Label = int(label)
		n.Month = month
	})

	// hop tracks the shortest distance (in IOC links) from the event at
	// which we first saw each IOC this pulse contributes.
	type pending struct {
		id  graph.NodeID
		ioc ioc.IOC
		hop int
	}
	var queue []pending

	touch := func(i ioc.IOC, hop int) (graph.NodeID, bool) {
		kind, ok := kindOf(i.Type)
		if !ok {
			return 0, false
		}
		id, created := t.G.Upsert(kind, i.Value)
		if created {
			t.G.UpdateNode(id, func(n *graph.Node) { n.Month = month })
			if t.Config.FeaturizeSecondaries || hop <= 1 {
				t.featurize(id, i)
			}
			queue = append(queue, pending{id: id, ioc: i, hop: hop})
		}
		return id, true
	}

	// First-order IOCs: refang, classify, connect to the event.
	for _, ind := range p.Indicators {
		item, ok := ioc.Classify(ind.Indicator)
		if !ok {
			continue // data-quality filter (§IX)
		}
		id, ok := touch(item, 1)
		if !ok {
			continue
		}
		t.G.UpdateNode(id, func(n *graph.Node) {
			if !n.FirstOrder {
				n.FirstOrder = true
			}
		})
		t.G.AddEdge(eventID, id, graph.EdgeInReport)
		t.noteEventAPT(id, label)
		// Late featurization: a node first seen as a secondary IOC in an
		// earlier pulse may have been skipped by the ablation flag.
		if _, has := t.Features[id]; !has {
			t.featurize(id, item)
		}
	}

	// Relation expansion, bounded by MaxHops.
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.hop >= t.Config.MaxHops {
			continue
		}
		t.expand(cur.id, cur.ioc, cur.hop, touch)
	}
	return eventID, nil
}

// expand follows the Table I relations of one IOC, creating secondary
// nodes via touch at hop+1. Enrichment failures leave the node in place
// with whatever relations did resolve, flagged Degraded.
func (t *TKG) expand(id graph.NodeID, item ioc.IOC, hop int, touch func(ioc.IOC, int) (graph.NodeID, bool)) {
	before := t.enrichErrs.Load()
	defer func() {
		if t.enrichErrs.Load() > before {
			t.markDegraded(id)
		}
	}()
	switch item.Type {
	case ioc.TypeIP:
		if rec, ok := t.svc.LookupIP(item.Value); ok && rec.ASN != 0 {
			asnID, _ := t.G.Upsert(graph.KindASN, fmt.Sprintf("AS%d", rec.ASN))
			t.G.AddEdge(id, asnID, graph.EdgeInGroup)
		}
		if domains, ok := t.svc.PassiveDNSIP(item.Value); ok {
			for _, d := range domains {
				if dID, ok := touch(ioc.IOC{Type: ioc.TypeDomain, Value: d}, hop+1); ok {
					t.G.AddEdge(id, dID, graph.EdgeARecord)
				}
			}
		}
	case ioc.TypeDomain:
		if rec, ok := t.svc.PassiveDNSDomain(item.Value); ok {
			for _, ip := range rec.ARecords {
				if ipID, ok := touch(ioc.IOC{Type: ioc.TypeIP, Value: ip}, hop+1); ok {
					t.G.AddEdge(id, ipID, graph.EdgeResolvesTo)
				}
			}
		}
	case ioc.TypeURL:
		// HostedOn comes from lexical analysis of the URL itself.
		if u, ok := ioc.ParseURL(item.Value); ok && !u.HostIsIP {
			if dID, ok := touch(ioc.IOC{Type: ioc.TypeDomain, Value: u.Host}, hop+1); ok {
				t.G.AddEdge(id, dID, graph.EdgeHostedOn)
			}
		}
		if rec, ok := t.svc.ProbeURL(item.Value); ok {
			for _, ip := range rec.ResolvesTo {
				if ipID, ok := touch(ioc.IOC{Type: ioc.TypeIP, Value: ip}, hop+1); ok {
					t.G.AddEdge(id, ipID, graph.EdgeResolvesTo)
				}
			}
		}
	}
}

func (t *TKG) featurize(id graph.NodeID, item ioc.IOC) {
	before := t.enrichErrs.Load()
	v, ok := t.Extractor.Extract(item)
	if v == nil {
		return
	}
	if t.enrichErrs.Load() > before {
		// Enrichment errored (not merely a miss): impute the provider-
		// derived dimensions from the running per-type feature mean and
		// flag the node, keeping any lexical dimensions the extractor
		// computed from the indicator string itself.
		t.imp.impute(item.Type, v)
		t.markDegraded(id)
	} else if ok {
		t.imp.observe(item.Type, v)
	}
	t.Features[id] = v
}

// markDegraded flags a node as enrichment-degraded exactly once and
// tallies it in the build report.
func (t *TKG) markDegraded(id graph.NodeID) {
	n := t.G.Node(id)
	if n.Degraded {
		return
	}
	t.G.UpdateNode(id, func(n *graph.Node) { n.Degraded = true })
	t.report.DegradedByKind[n.Kind]++
}

func (t *TKG) noteEventAPT(id graph.NodeID, label apt.ID) {
	set := t.eventAPTs[id]
	if set == nil {
		set = make(map[apt.ID]bool, 1)
		t.eventAPTs[id] = set
	}
	set[label] = true
	if t.trackTouched {
		t.touched = append(t.touched, id)
	}
}

// FinalizeLabels derives per-IOC metadata from event membership: the
// EventCount reuse statistic and, for first-order IOCs whose events all
// share one APT, the IOC label used by the Table III experiments.
// Safe to call repeatedly (e.g. after merging a new pulse).
func (t *TKG) FinalizeLabels() {
	for id := range t.eventAPTs {
		t.finalizeOne(id)
	}
}

// finalizeOne recomputes the derived label and EventCount for one IOC
// from its current event membership. Idempotent: the result is a pure
// function of eventAPTs[id] and the node's InReport adjacency, which is
// what makes per-pulse incremental finalisation converge to the same
// state as one batch FinalizeLabels sweep.
func (t *TKG) finalizeOne(id graph.NodeID) {
	set := t.eventAPTs[id]
	if set == nil {
		return
	}
	label := -1
	if len(set) == 1 {
		for a := range set {
			label = int(a)
		}
	}
	count := 0
	t.G.NeighborEdges(id, func(_ graph.NodeID, et graph.EdgeType, _ bool) bool {
		if et == graph.EdgeInReport {
			count++
		}
		return true
	})
	t.G.UpdateNode(id, func(n *graph.Node) {
		n.Label = label
		n.EventCount = count
	})
}

// EventNodes returns all event node IDs.
func (t *TKG) EventNodes() []graph.NodeID {
	return t.G.NodesOfKind(graph.KindEvent)
}

// LabeledIOCs returns, for the given kind, the first-order IOC nodes
// carrying a unique APT label: the training set of the per-IOC
// attribution experiments.
func (t *TKG) LabeledIOCs(kind graph.NodeKind) (ids []graph.NodeID, labels []int) {
	t.G.ForEachNode(func(n graph.Node) {
		if n.Kind == kind && n.FirstOrder && n.Label >= 0 {
			ids = append(ids, n.ID)
			labels = append(labels, n.Label)
		}
	})
	return ids, labels
}

func kindOf(t ioc.Type) (graph.NodeKind, bool) {
	switch t {
	case ioc.TypeIP:
		return graph.KindIP, true
	case ioc.TypeURL:
		return graph.KindURL, true
	case ioc.TypeDomain:
		return graph.KindDomain, true
	case ioc.TypeASN:
		return graph.KindASN, true
	default:
		return 0, false
	}
}
