// Package core implements the paper's primary contribution: the TRAIL
// system that turns a feed of attributed OSINT incident reports into the
// TRAIL Knowledge Graph (TKG).
//
// The pipeline follows §III-§IV of the paper:
//
//  1. Collect: parse pulses, resolve APT tags (discarding reports whose
//     tags map to more than one group), refang and classify indicators.
//  2. Enrich: query passive DNS, IP lookup and URL probing for every
//     reported IOC; the responses both yield feature vectors and reveal
//     secondary IOCs (IPs behind domains, domains historically on an IP,
//     ASN groups), which are themselves analysed, up to a configurable
//     hop limit (2 in the paper).
//  3. Merge: connect everything into the shared knowledge graph using the
//     Table I schema (InReport, ARecord, InGroup, ResolvesTo, HostedOn).
//
// The resulting TKG bundles the property graph, per-node feature vectors,
// and event labels; the analysis packages (labelprop, gnn, ml, tree)
// consume it directly.
package core

import (
	"fmt"

	"trail/internal/apt"
	"trail/internal/feature"
	"trail/internal/graph"
	"trail/internal/ioc"
	"trail/internal/osint"
)

// BuildConfig controls TKG construction.
type BuildConfig struct {
	// MaxHops bounds how far from the event node relation expansion
	// proceeds: IOCs at hop <= MaxHops-1 have their relations followed
	// (the paper uses 2: reported IOCs sit at hop 1 and are expanded, the
	// secondary IOCs they reveal sit at hop 2 and are not).
	MaxHops int
	// FeaturizeSecondaries requests feature analysis for secondary IOCs
	// too (the paper does). Disabling it is an ablation knob.
	FeaturizeSecondaries bool
}

// DefaultBuildConfig mirrors the paper's construction parameters.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{MaxHops: 2, FeaturizeSecondaries: true}
}

// TKG is the TRAIL knowledge graph: the property graph plus node feature
// vectors and build bookkeeping.
type TKG struct {
	G *graph.Graph
	// Features holds the engineered vector for IOC nodes that have one
	// (events and ASNs have none).
	Features map[graph.NodeID][]float64
	// Extractor is the featurizer used during the build; the analysis
	// code reuses it for fresh, not-yet-merged IOCs.
	Extractor *feature.Extractor
	Resolver  *apt.Resolver
	Config    BuildConfig

	svc osint.Services
	// SkippedPulses counts reports discarded for conflicting tags.
	SkippedPulses int
	// eventAPTs tracks, per IOC node, the set of distinct APTs of events
	// it appears in; used to derive single-label IOC labels (Table III).
	eventAPTs map[graph.NodeID]map[apt.ID]bool
}

// NewTKG returns an empty TKG that enriches through svc and resolves tags
// through resolver.
func NewTKG(svc osint.Services, resolver *apt.Resolver, cfg BuildConfig) *TKG {
	if cfg.MaxHops < 1 {
		cfg.MaxHops = 1
	}
	return &TKG{
		G:         graph.New(),
		Features:  make(map[graph.NodeID][]float64),
		Extractor: feature.NewExtractor(svc),
		Resolver:  resolver,
		Config:    cfg,
		svc:       svc,
		eventAPTs: make(map[graph.NodeID]map[apt.ID]bool),
	}
}

// Build ingests a batch of pulses and finalises derived labels.
func (t *TKG) Build(pulses []osint.Pulse) error {
	for i := range pulses {
		if _, err := t.AddPulse(pulses[i]); err != nil {
			return fmt.Errorf("core: pulse %d (%s): %w", i, pulses[i].ID, err)
		}
	}
	t.FinalizeLabels()
	return nil
}

// ErrSkipped is returned by AddPulse for reports discarded by the tag
// resolution rule; the TKG is unchanged in that case.
var ErrSkipped = fmt.Errorf("core: pulse skipped (no unique APT tag)")

// AddPulse merges one incident report into the TKG and returns the event
// node ID. Reports whose tags do not resolve to exactly one APT return
// ErrSkipped.
func (t *TKG) AddPulse(p osint.Pulse) (graph.NodeID, error) {
	label, ok := t.Resolver.ResolveTags(p.Tags)
	if !ok {
		t.SkippedPulses++
		return 0, ErrSkipped
	}

	eventID, created := t.G.Upsert(graph.KindEvent, p.ID)
	if !created {
		return eventID, fmt.Errorf("core: duplicate pulse ID %q", p.ID)
	}
	month := p.Month
	t.G.UpdateNode(eventID, func(n *graph.Node) {
		n.Label = int(label)
		n.Month = month
	})

	// hop tracks the shortest distance (in IOC links) from the event at
	// which we first saw each IOC this pulse contributes.
	type pending struct {
		id  graph.NodeID
		ioc ioc.IOC
		hop int
	}
	var queue []pending

	touch := func(i ioc.IOC, hop int) (graph.NodeID, bool) {
		kind, ok := kindOf(i.Type)
		if !ok {
			return 0, false
		}
		id, created := t.G.Upsert(kind, i.Value)
		if created {
			t.G.UpdateNode(id, func(n *graph.Node) { n.Month = month })
			if t.Config.FeaturizeSecondaries || hop <= 1 {
				t.featurize(id, i)
			}
			queue = append(queue, pending{id: id, ioc: i, hop: hop})
		}
		return id, true
	}

	// First-order IOCs: refang, classify, connect to the event.
	for _, ind := range p.Indicators {
		item, ok := ioc.Classify(ind.Indicator)
		if !ok {
			continue // data-quality filter (§IX)
		}
		id, ok := touch(item, 1)
		if !ok {
			continue
		}
		t.G.UpdateNode(id, func(n *graph.Node) {
			if !n.FirstOrder {
				n.FirstOrder = true
			}
		})
		t.G.AddEdge(eventID, id, graph.EdgeInReport)
		t.noteEventAPT(id, label)
		// Late featurization: a node first seen as a secondary IOC in an
		// earlier pulse may have been skipped by the ablation flag.
		if _, has := t.Features[id]; !has {
			t.featurize(id, item)
		}
	}

	// Relation expansion, bounded by MaxHops.
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.hop >= t.Config.MaxHops {
			continue
		}
		t.expand(cur.id, cur.ioc, cur.hop, touch)
	}
	return eventID, nil
}

// expand follows the Table I relations of one IOC, creating secondary
// nodes via touch at hop+1.
func (t *TKG) expand(id graph.NodeID, item ioc.IOC, hop int, touch func(ioc.IOC, int) (graph.NodeID, bool)) {
	switch item.Type {
	case ioc.TypeIP:
		if rec, ok := t.svc.LookupIP(item.Value); ok && rec.ASN != 0 {
			asnID, _ := t.G.Upsert(graph.KindASN, fmt.Sprintf("AS%d", rec.ASN))
			t.G.AddEdge(id, asnID, graph.EdgeInGroup)
		}
		if domains, ok := t.svc.PassiveDNSIP(item.Value); ok {
			for _, d := range domains {
				if dID, ok := touch(ioc.IOC{Type: ioc.TypeDomain, Value: d}, hop+1); ok {
					t.G.AddEdge(id, dID, graph.EdgeARecord)
				}
			}
		}
	case ioc.TypeDomain:
		if rec, ok := t.svc.PassiveDNSDomain(item.Value); ok {
			for _, ip := range rec.ARecords {
				if ipID, ok := touch(ioc.IOC{Type: ioc.TypeIP, Value: ip}, hop+1); ok {
					t.G.AddEdge(id, ipID, graph.EdgeResolvesTo)
				}
			}
		}
	case ioc.TypeURL:
		// HostedOn comes from lexical analysis of the URL itself.
		if u, ok := ioc.ParseURL(item.Value); ok && !u.HostIsIP {
			if dID, ok := touch(ioc.IOC{Type: ioc.TypeDomain, Value: u.Host}, hop+1); ok {
				t.G.AddEdge(id, dID, graph.EdgeHostedOn)
			}
		}
		if rec, ok := t.svc.ProbeURL(item.Value); ok {
			for _, ip := range rec.ResolvesTo {
				if ipID, ok := touch(ioc.IOC{Type: ioc.TypeIP, Value: ip}, hop+1); ok {
					t.G.AddEdge(id, ipID, graph.EdgeResolvesTo)
				}
			}
		}
	}
}

func (t *TKG) featurize(id graph.NodeID, item ioc.IOC) {
	if v, _ := t.Extractor.Extract(item); v != nil {
		t.Features[id] = v
	}
}

func (t *TKG) noteEventAPT(id graph.NodeID, label apt.ID) {
	set := t.eventAPTs[id]
	if set == nil {
		set = make(map[apt.ID]bool, 1)
		t.eventAPTs[id] = set
	}
	set[label] = true
}

// FinalizeLabels derives per-IOC metadata from event membership: the
// EventCount reuse statistic and, for first-order IOCs whose events all
// share one APT, the IOC label used by the Table III experiments.
// Safe to call repeatedly (e.g. after merging a new pulse).
func (t *TKG) FinalizeLabels() {
	for id, set := range t.eventAPTs {
		label := -1
		if len(set) == 1 {
			for a := range set {
				label = int(a)
			}
		}
		count := 0
		t.G.NeighborEdges(id, func(_ graph.NodeID, et graph.EdgeType, _ bool) bool {
			if et == graph.EdgeInReport {
				count++
			}
			return true
		})
		t.G.UpdateNode(id, func(n *graph.Node) {
			n.Label = label
			n.EventCount = count
		})
	}
}

// EventNodes returns all event node IDs.
func (t *TKG) EventNodes() []graph.NodeID {
	return t.G.NodesOfKind(graph.KindEvent)
}

// LabeledIOCs returns, for the given kind, the first-order IOC nodes
// carrying a unique APT label: the training set of the per-IOC
// attribution experiments.
func (t *TKG) LabeledIOCs(kind graph.NodeKind) (ids []graph.NodeID, labels []int) {
	t.G.ForEachNode(func(n graph.Node) {
		if n.Kind == kind && n.FirstOrder && n.Label >= 0 {
			ids = append(ids, n.ID)
			labels = append(labels, n.Label)
		}
	})
	return ids, labels
}

func kindOf(t ioc.Type) (graph.NodeKind, bool) {
	switch t {
	case ioc.TypeIP:
		return graph.KindIP, true
	case ioc.TypeURL:
		return graph.KindURL, true
	case ioc.TypeDomain:
		return graph.KindDomain, true
	case ioc.TypeASN:
		return graph.KindASN, true
	default:
		return 0, false
	}
}
