package core

import (
	"testing"

	"trail/internal/graph"
	"trail/internal/osint"
)

func buildTestTKG(t testing.TB) (*TKG, *osint.World) {
	t.Helper()
	w := osint.NewWorld(osint.TestConfig())
	tkg := NewTKG(w, w.Resolver(), DefaultBuildConfig())
	if _, err := tkg.Build(w.Pulses()); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return tkg, w
}

func TestBuildProducesEventsAndIOCs(t *testing.T) {
	tkg, w := buildTestTKG(t)
	events := tkg.EventNodes()
	if len(events)+tkg.SkippedPulses != len(w.Pulses()) {
		t.Fatalf("events %d + skipped %d != pulses %d",
			len(events), tkg.SkippedPulses, len(w.Pulses()))
	}
	if len(events) == 0 {
		t.Fatal("no events built")
	}
	for _, k := range []graph.NodeKind{graph.KindIP, graph.KindURL, graph.KindDomain, graph.KindASN} {
		if tkg.G.KindCount(k) == 0 {
			t.Errorf("no %s nodes", k)
		}
	}
	if tkg.G.NumEdges() == 0 {
		t.Fatal("no edges")
	}
}

func TestEventLabelsResolved(t *testing.T) {
	tkg, _ := buildTestTKG(t)
	for _, id := range tkg.EventNodes() {
		n := tkg.G.Node(id)
		if n.Label < 0 || n.Label >= 22 {
			t.Fatalf("event %s has label %d", n.Key, n.Label)
		}
	}
}

func TestSecondaryIOCsDiscovered(t *testing.T) {
	tkg, _ := buildTestTKG(t)
	first, second := 0, 0
	tkg.G.ForEachNode(func(n graph.Node) {
		switch n.Kind {
		case graph.KindIP, graph.KindURL, graph.KindDomain:
			if n.FirstOrder {
				first++
			} else {
				second++
			}
		}
	})
	if second == 0 {
		t.Fatal("enrichment discovered no secondary IOCs")
	}
	// The paper reports ~75% secondary; require a clear majority effect.
	if second < first/2 {
		t.Errorf("secondary %d suspiciously low vs first-order %d", second, first)
	}
}

func TestStatsConsistent(t *testing.T) {
	tkg, _ := buildTestTKG(t)
	rep := tkg.Stats()
	if rep.Total.Nodes != tkg.G.NumNodes() {
		t.Fatalf("stats nodes %d != graph %d", rep.Total.Nodes, tkg.G.NumNodes())
	}
	if rep.Total.Edges != 2*tkg.G.NumEdges() {
		t.Fatalf("stats degree-sum %d != 2*edges %d", rep.Total.Edges, 2*tkg.G.NumEdges())
	}
	if rep.Total.AvgReuse < 1 {
		t.Errorf("avg reuse %f < 1; every first-order IOC is in >= 1 event", rep.Total.AvgReuse)
	}
	if s := rep.String(); len(s) == 0 {
		t.Error("empty report rendering")
	}
}

func TestConnectivityGiantComponent(t *testing.T) {
	tkg, _ := buildTestTKG(t)
	cs := tkg.Connectivity()
	if cs.LargestComponentPct < 50 {
		t.Errorf("largest component only %.1f%% of graph; world should be well connected",
			cs.LargestComponentPct)
	}
	if cs.EventsWithin2HopsPct < 30 {
		t.Errorf("only %.1f%% of events within 2 hops of another event; reuse too low",
			cs.EventsWithin2HopsPct)
	}
	if cs.Diameter <= 0 {
		t.Errorf("diameter %d", cs.Diameter)
	}
}

func TestLabeledIOCsAreFirstOrderAndPure(t *testing.T) {
	tkg, _ := buildTestTKG(t)
	ids, labels := tkg.LabeledIOCs(graph.KindDomain)
	if len(ids) == 0 {
		t.Fatal("no labeled domains")
	}
	if len(ids) != len(labels) {
		t.Fatalf("ids/labels length mismatch")
	}
	for i, id := range ids {
		n := tkg.G.Node(id)
		if !n.FirstOrder {
			t.Fatalf("labeled IOC %s not first-order", n.Key)
		}
		if n.Label != labels[i] {
			t.Fatalf("label mismatch for %s", n.Key)
		}
	}
}

func TestFeaturesPresentForIOCs(t *testing.T) {
	tkg, _ := buildTestTKG(t)
	missing := 0
	total := 0
	tkg.G.ForEachNode(func(n graph.Node) {
		switch n.Kind {
		case graph.KindIP, graph.KindURL, graph.KindDomain:
			total++
			if _, ok := tkg.Features[n.ID]; !ok {
				missing++
			}
		}
	})
	if missing > 0 {
		t.Errorf("%d/%d IOC nodes missing features", missing, total)
	}
}

func TestAddPulseDuplicateRejected(t *testing.T) {
	tkg, w := buildTestTKG(t)
	p := w.Pulses()[0]
	if _, err := tkg.AddPulse(p); err == nil {
		t.Fatal("expected duplicate pulse error")
	}
}
