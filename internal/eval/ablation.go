package eval

import (
	"fmt"
	"strings"

	"trail/internal/core"
	"trail/internal/gnn"
	"trail/internal/graph"
	"trail/internal/labelprop"
	"trail/internal/ml"
)

// AblationRow is one design-choice comparison.
type AblationRow struct {
	Name     string
	VariantA string
	AccA     float64
	VariantB string
	AccB     float64
}

// AblationResult bundles the design-choice studies of DESIGN.md §5.
type AblationResult struct {
	Rows []AblationRow
}

// Render prints the comparison table.
func (r *AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablations (design choices called out in DESIGN.md):\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-24s %-22s %.4f vs %-22s %.4f\n",
			row.Name, row.VariantA, row.AccA, row.VariantB, row.AccB)
	}
	return b.String()
}

// RunAblationEnrichmentDepth rebuilds the TKG without relation expansion
// (MaxHops 1: secondary IOCs are never discovered) and compares LP 3L
// accuracy against the full 2-hop enrichment — the paper's claim that
// secondary IOCs power deep propagation.
func RunAblationEnrichmentDepth(ctx *Context) (*AblationRow, error) {
	shallow := core.NewTKG(ctx.World, ctx.World.Resolver(), core.BuildConfig{
		MaxHops: 1, FeaturizeSecondaries: true,
	})
	if _, err := shallow.Build(ctx.World.PulsesInMonths(0, ctx.TrainMonths)); err != nil {
		return nil, err
	}
	full := ctx.lpAccuracy(ctx.TKG, 3)
	none := ctx.lpAccuracy(shallow, 3)
	return &AblationRow{
		Name:     "enrichment depth",
		VariantA: "2-hop enrichment", AccA: full,
		VariantB: "no enrichment", AccB: none,
	}, nil
}

// lpAccuracy runs the LP fold protocol on one TKG at the given depth.
func (c *Context) lpAccuracy(tkg *core.TKG, layers int) float64 {
	events := tkg.EventNodes()
	labels := make([]int, len(events))
	for i, ev := range events {
		labels[i] = tkg.G.Node(ev).Label
	}
	folds := ml.StratifiedKFold(c.rng(600), labels, c.Opts.Folds)
	csr := tkg.G.CSR()
	var accs []float64
	for _, test := range folds {
		train := ml.Complement(len(events), test)
		seeds := make(map[graph.NodeID]int, len(train))
		for _, ti := range train {
			seeds[events[ti]] = labels[ti]
		}
		queries := make([]graph.NodeID, len(test))
		truth := make([]int, len(test))
		for i, te := range test {
			queries[i] = events[te]
			truth[i] = labels[te]
		}
		pred := labelprop.AttributeCSR(csr, seeds, queries, c.Classes, layers)
		accs = append(accs, ml.Accuracy(truth, pred))
	}
	return ml.Summarize(accs).Mean
}

// RunAblationEncoder compares trained autoencoders against random linear
// projections as the GNN's input encoders (§VI-C).
func RunAblationEncoder(ctx *Context) (*AblationRow, error) {
	aeCfg := aeConfigFor(ctx)
	trained, err := gnn.TrainEncoders(ctx.TKG.G, ctx.TKG.Features, aeCfg)
	if err != nil {
		return nil, err
	}
	random := gnn.RandomEncoders(ctx.TKG.G, ctx.TKG.Features, aeCfg)
	accT, err := ctx.gnnHoldoutAccuracy(trained, gnn.Config{})
	if err != nil {
		return nil, err
	}
	accR, err := ctx.gnnHoldoutAccuracy(random, gnn.Config{})
	if err != nil {
		return nil, err
	}
	return &AblationRow{
		Name:     "input encoder",
		VariantA: "trained autoencoder", AccA: accT,
		VariantB: "random projection", AccB: accR,
	}, nil
}

// RunAblationL2Norm compares the Eq. 4 L2 normalisation on and off.
func RunAblationL2Norm(ctx *Context) (*AblationRow, error) {
	set, err := gnn.TrainEncoders(ctx.TKG.G, ctx.TKG.Features, aeConfigFor(ctx))
	if err != nil {
		return nil, err
	}
	accOn, err := ctx.gnnHoldoutAccuracy(set, gnn.Config{})
	if err != nil {
		return nil, err
	}
	accOff, err := ctx.gnnHoldoutAccuracy(set, gnn.Config{NoL2: true})
	if err != nil {
		return nil, err
	}
	return &AblationRow{
		Name:     "L2 normalisation (Eq. 4)",
		VariantA: "enabled", AccA: accOn,
		VariantB: "disabled", AccB: accOff,
	}, nil
}

// gnnHoldoutAccuracy trains a 2-layer GNN on an 80/20 split and returns
// holdout accuracy; overrides taken from tmpl (zero values ignored).
func (c *Context) gnnHoldoutAccuracy(set *gnn.EncoderSet, tmpl gnn.Config) (float64, error) {
	in := gnn.BuildInput(c.TKG.G, c.TKG.Features, set, c.Classes)
	events, labels := c.eventLabels()
	idx := c.rng(700).Perm(len(events))
	cut := len(events) * 4 / 5
	var train, test []graph.NodeID
	var yte []int
	visible := make(map[graph.NodeID]int)
	for i, j := range idx {
		if i < cut {
			train = append(train, events[j])
			visible[events[j]] = labels[j]
		} else {
			test = append(test, events[j])
			yte = append(yte, labels[j])
		}
	}
	cfg := gnn.Config{
		Layers: 2, Hidden: 48, Encoding: set.Config.Encoding,
		LR: 1e-2, Epochs: 60, Seed: c.Opts.Seed,
		NoL2: tmpl.NoL2,
	}
	if c.Opts.Fast {
		cfg.Hidden = 16
		cfg.Epochs = 10
	}
	model, err := gnn.Train(in, train, cfg)
	if err != nil {
		return 0, err
	}
	return ml.Accuracy(yte, model.Predict(in, visible, test)), nil
}

// RunAblationSMOTE compares Table III URL attribution with and without
// SMOTE oversampling.
func RunAblationSMOTE(ctx *Context) (*AblationRow, error) {
	kinds := []graph.NodeKind{graph.KindURL}
	models := []ModelName{ModelXGB}
	withCfg := DefaultTableIIIConfig()
	withCfg.Kinds, withCfg.Models = kinds, models
	withoutCfg := withCfg
	withoutCfg.UseSMOTE = false
	with, err := RunTableIII(ctx, withCfg)
	if err != nil {
		return nil, err
	}
	without, err := RunTableIII(ctx, withoutCfg)
	if err != nil {
		return nil, err
	}
	cw := with.Cell(ModelXGB, graph.KindURL)
	cwo := without.Cell(ModelXGB, graph.KindURL)
	if cw == nil || cwo == nil {
		return nil, fmt.Errorf("eval: SMOTE ablation missing cells")
	}
	return &AblationRow{
		Name:     "SMOTE (URL, XGB, B-Acc)",
		VariantA: "with SMOTE", AccA: cw.BAcc.Mean,
		VariantB: "without SMOTE", AccB: cwo.BAcc.Mean,
	}, nil
}

// RunAblations runs the full ablation suite.
func RunAblations(ctx *Context) (*AblationResult, error) {
	res := &AblationResult{}
	for _, run := range []func(*Context) (*AblationRow, error){
		RunAblationEnrichmentDepth,
		RunAblationEncoder,
		RunAblationL2Norm,
		RunAblationSMOTE,
		RunAblationSAGEvsGCN,
	} {
		row, err := run(ctx)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
	}
	return res, nil
}
