package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"trail/internal/core"
	"trail/internal/graph"
)

// TableIIResult is the dataset report experiment (Table II).
type TableIIResult struct {
	Report core.Report
}

// RunTableII computes the TKG dataset report.
func RunTableII(ctx *Context) *TableIIResult {
	return &TableIIResult{Report: ctx.TKG.Stats()}
}

// Render prints the Table II rows.
func (r *TableIIResult) Render() string {
	return "Table II: Node and edge counts in the TKG\n" + r.Report.String()
}

// Figure4Result is the IOC reuse distribution (Fig. 4).
type Figure4Result struct {
	Histogram map[graph.NodeKind][]core.ReuseBucket
}

// RunFigure4 computes the reuse histogram per IOC kind.
func RunFigure4(ctx *Context) *Figure4Result {
	return &Figure4Result{Histogram: ctx.TKG.ReuseHistogram()}
}

// Render draws a log-log text plot of reuse count vs IOC count per kind,
// the shape Fig. 4 reports (heavy head at reuse=1, long thin tail).
func (r *Figure4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: IOC reuse by IOC type (log10 counts)\n")
	kinds := []graph.NodeKind{graph.KindIP, graph.KindURL, graph.KindDomain}
	for _, k := range kinds {
		buckets := r.Histogram[k]
		if len(buckets) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s:\n", k)
		for _, bk := range buckets {
			bar := strings.Repeat("#", int(math.Round(10*math.Log10(float64(bk.Count)+1))))
			fmt.Fprintf(&b, "  reuse=%-4d %8d %s\n", bk.Reuse, bk.Count, bar)
		}
	}
	return b.String()
}

// MaxReuse returns the largest observed reuse for a kind (0 if none).
func (r *Figure4Result) MaxReuse(k graph.NodeKind) int {
	buckets := r.Histogram[k]
	if len(buckets) == 0 {
		return 0
	}
	return buckets[len(buckets)-1].Reuse
}

// SingleUseFraction returns the fraction of first-order IOCs of kind k
// seen in exactly one event; the paper's Fig. 4 shows this dominates.
func (r *Figure4Result) SingleUseFraction(k graph.NodeKind) float64 {
	buckets := r.Histogram[k]
	total, ones := 0, 0
	for _, bk := range buckets {
		total += bk.Count
		if bk.Reuse == 1 {
			ones = bk.Count
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ones) / float64(total)
}

// GraphStatsResult is the connectivity analysis of §IV-§V.
type GraphStatsResult struct {
	Stats core.ConnectivityStats
}

// RunGraphStats computes component structure, diameter and event
// proximity.
func RunGraphStats(ctx *Context) *GraphStatsResult {
	return &GraphStatsResult{Stats: ctx.TKG.Connectivity()}
}

// Render prints the connectivity summary.
func (r *GraphStatsResult) Render() string {
	s := r.Stats
	var b strings.Builder
	b.WriteString("Graph structure (paper §IV-§V):\n")
	fmt.Fprintf(&b, "  connected components:          %d\n", s.Components)
	fmt.Fprintf(&b, "  largest component:             %d nodes (%.2f%%)\n", s.LargestComponent, s.LargestComponentPct)
	fmt.Fprintf(&b, "  pseudo-diameter:               %d\n", s.Diameter)
	fmt.Fprintf(&b, "  events within 2 hops of event: %d (%.1f%%)\n", s.EventsWithin2Hops, s.EventsWithin2HopsPct)
	fmt.Fprintf(&b, "  first-order-only components:   %d\n", s.FirstOrderComponents)
	fmt.Fprintf(&b, "  first-order-only diameter:     %d\n", s.FirstOrderDiameter)
	return b.String()
}

// MostReusedIOCs returns the top-n first-order IOCs by event count — the
// paper's observation that the most repeated IOCs are C2 infrastructure.
func MostReusedIOCs(ctx *Context, n int) []graph.Node {
	var nodes []graph.Node
	ctx.TKG.G.ForEachNode(func(nd graph.Node) {
		if nd.FirstOrder && nd.EventCount > 1 {
			nodes = append(nodes, nd)
		}
	})
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].EventCount > nodes[j].EventCount })
	if n > len(nodes) {
		n = len(nodes)
	}
	return nodes[:n]
}
