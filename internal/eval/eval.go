// Package eval is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Tables II-IV, Figures 4-10) plus the
// ablation studies listed in DESIGN.md, over the synthetic OSINT world.
//
// Each RunXxx function returns a typed result with a Render method that
// prints the same rows/series the paper reports, so `cmd/trail
// experiments` and the benchmarks share one implementation.
package eval

import (
	"fmt"
	"math/rand"
	"sync"

	"trail/internal/core"
	"trail/internal/gnn"
	"trail/internal/graph"
	"trail/internal/osint"
)

// Options bundles harness-wide knobs.
type Options struct {
	// World configures the synthetic OSINT universe.
	World osint.WorldConfig
	// StudyMonths is the trailing window reserved for the longitudinal
	// experiments (Figs. 7-8); the main TKG is built from the remaining
	// leading months.
	StudyMonths int
	// Folds for cross-validated experiments.
	Folds int
	// Seed for fold splits and model training.
	Seed int64
	// Fast trims model sizes for quick runs (unit tests).
	Fast bool
	// ResumeDir, when non-empty, makes the sweep-style experiments
	// (robustness, tuning) journal per-unit results under this directory
	// and skip already-completed units on a rerun — crash/interrupt
	// recovery for long experiment batches.
	ResumeDir string
}

// DefaultOptions mirrors the experiment scale used in EXPERIMENTS.md.
func DefaultOptions() Options {
	return Options{World: osint.DefaultConfig(), StudyMonths: 6, Folds: 5, Seed: 1}
}

// TestOptions is a small, fast configuration for unit tests.
func TestOptions() Options {
	return Options{World: osint.TestConfig(), StudyMonths: 2, Folds: 3, Seed: 1, Fast: true}
}

// Context carries the shared state every experiment consumes: the world,
// the TKG built from the training window, and label metadata.
type Context struct {
	Opts    Options
	World   *osint.World
	TKG     *core.TKG
	Classes int
	Names   []string
	// TrainMonths is the number of leading months merged into the TKG.
	TrainMonths int

	// baseGNN caches the production GNN per layer count: the case study,
	// Figs. 7-8 and Fig. 10 all start from the same trained model, and on
	// a single core training it once matters.
	baseGNNMu sync.Mutex
	baseGNN   map[int]*baseGNNBundle
}

type baseGNNBundle struct {
	set   *gnn.EncoderSet
	in    gnn.Input
	model *gnn.Model
}

// NewContext generates the world and builds the TKG over the training
// window.
func NewContext(opts Options) (*Context, error) {
	w := osint.NewWorld(opts.World)
	trainMonths := opts.World.Months - opts.StudyMonths
	if trainMonths < 1 {
		return nil, fmt.Errorf("eval: %d months with %d study months leaves no training window",
			opts.World.Months, opts.StudyMonths)
	}
	tkg := core.NewTKG(w, w.Resolver(), core.DefaultBuildConfig())
	if _, err := tkg.Build(w.PulsesInMonths(0, trainMonths)); err != nil {
		return nil, err
	}
	return &Context{
		Opts:        opts,
		World:       w,
		TKG:         tkg,
		Classes:     len(w.Roster()),
		Names:       w.Resolver().Names(),
		TrainMonths: trainMonths,
	}, nil
}

// rng returns a deterministic source offset from the context seed so
// independent experiments don't share streams.
func (c *Context) rng(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(c.Opts.Seed + offset))
}

// eventLabels returns the event node IDs and labels of the TKG.
func (c *Context) eventLabels() ([]graph.NodeID, []int) {
	events := c.TKG.EventNodes()
	labels := make([]int, len(events))
	for i, ev := range events {
		labels[i] = c.TKG.G.Node(ev).Label
	}
	return events, labels
}
