package eval

import (
	"strings"
	"testing"

	"trail/internal/graph"
)

// testContext is shared across the package's tests: building a context is
// the expensive part, and every experiment treats it as read-only (the
// longitudinal runs clone the TKG before merging).
var sharedCtx *Context

func getCtx(t testing.TB) *Context {
	t.Helper()
	if sharedCtx == nil {
		ctx, err := NewContext(TestOptions())
		if err != nil {
			t.Fatal(err)
		}
		sharedCtx = ctx
	}
	return sharedCtx
}

func TestTableII(t *testing.T) {
	ctx := getCtx(t)
	res := RunTableII(ctx)
	if res.Report.Total.Nodes == 0 {
		t.Fatal("empty report")
	}
	out := res.Render()
	for _, want := range []string{"Events", "IPs", "URLs", "Domains", "ASNs", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigure4ShapeMatchesPaper(t *testing.T) {
	ctx := getCtx(t)
	res := RunFigure4(ctx)
	for _, k := range []graph.NodeKind{graph.KindIP, graph.KindURL, graph.KindDomain} {
		if frac := res.SingleUseFraction(k); frac < 0.5 {
			t.Errorf("%s single-use fraction %.2f; Fig. 4 shows reuse=1 dominating", k, frac)
		}
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestGraphStats(t *testing.T) {
	ctx := getCtx(t)
	res := RunGraphStats(ctx)
	if res.Stats.LargestComponentPct < 50 {
		t.Errorf("largest component %.1f%%", res.Stats.LargestComponentPct)
	}
	if res.Stats.EventsWithin2HopsPct <= 0 {
		t.Error("no events within 2 hops of each other")
	}
	if !strings.Contains(res.Render(), "pseudo-diameter") {
		t.Error("render incomplete")
	}
}

func TestTableIIIFast(t *testing.T) {
	ctx := getCtx(t)
	cfg := DefaultTableIIIConfig()
	cfg.Models = []ModelName{ModelRF}
	cfg.Kinds = []graph.NodeKind{graph.KindURL}
	res, err := RunTableIII(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell := res.Cell(ModelRF, graph.KindURL)
	if cell == nil {
		t.Fatal("missing cell")
	}
	random := 1.0 / float64(ctx.Classes)
	if cell.Acc.Mean <= random*1.5 {
		t.Errorf("URL RF accuracy %.3f barely above random %.3f; features carry no signal",
			cell.Acc.Mean, random)
	}
	if !strings.Contains(res.Render(), "Table III") {
		t.Error("render incomplete")
	}
}

func TestTableIVLPOrdering(t *testing.T) {
	ctx := getCtx(t)
	res, err := RunTableIV(ctx, TableIVConfig{LPLayers: []int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	lp2, lp4 := res.Row("LP 2L"), res.Row("LP 4L")
	if lp2 == nil || lp4 == nil {
		t.Fatal("missing LP rows")
	}
	// Deeper propagation must not lose accuracy (paper: monotone gain).
	if lp4.Acc.Mean < lp2.Acc.Mean-0.02 {
		t.Errorf("LP 4L (%.3f) worse than LP 2L (%.3f)", lp4.Acc.Mean, lp2.Acc.Mean)
	}
	if lp2.Acc.Mean < 0.3 {
		t.Errorf("LP 2L %.3f suspiciously low", lp2.Acc.Mean)
	}
}

func TestTableIVGNNFast(t *testing.T) {
	ctx := getCtx(t)
	cfg := DefaultTableIVConfig()
	cfg.LPLayers = nil
	cfg.GNNLayers = []int{2}
	res, err := RunTableIV(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2 := res.Row("GNN 2L")
	if g2 == nil {
		t.Fatal("missing GNN row")
	}
	random := 1.0 / float64(ctx.Classes)
	if g2.Acc.Mean <= random*2 {
		t.Errorf("GNN 2L accuracy %.3f no better than random", g2.Acc.Mean)
	}
}

func TestTableIVModeVote(t *testing.T) {
	ctx := getCtx(t)
	res, err := RunTableIV(ctx, TableIVConfig{Models: []ModelName{ModelRF}, MaxTrainRows: 1500})
	if err != nil {
		t.Fatal(err)
	}
	rf := res.Row("RF")
	if rf == nil {
		t.Fatal("missing RF row")
	}
	random := 1.0 / float64(ctx.Classes)
	if rf.Acc.Mean <= random*2 {
		t.Errorf("RF mode-vote accuracy %.3f no better than random", rf.Acc.Mean)
	}
}

func TestCaseStudy(t *testing.T) {
	ctx := getCtx(t)
	res, err := RunCaseStudy(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrueAPT == "" || res.PulseID == "" {
		t.Fatal("case study incomplete")
	}
	if res.GNNConfBlind < 0 || res.GNNConfBlind > 1 || res.GNNConfVisible < 0 || res.GNNConfVisible > 1 {
		t.Fatalf("confidences out of range: %v %v", res.GNNConfBlind, res.GNNConfVisible)
	}
	if !strings.Contains(res.Render(), res.TrueAPT) {
		t.Error("render missing ground truth")
	}
}

func TestFigure7(t *testing.T) {
	ctx := getCtx(t)
	res, err := RunFigure7(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Truth) == 0 {
		t.Fatal("no evaluated events")
	}
	if len(res.Confidences) != len(res.Truth) {
		t.Fatal("confidence count mismatch")
	}
	if !strings.Contains(res.Render(), "confusion") {
		t.Error("render incomplete")
	}
}

func TestFigure8(t *testing.T) {
	ctx := getCtx(t)
	res, err := RunFigure8(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no drift points")
	}
	for _, p := range res.Points {
		if p.Events == 0 {
			t.Errorf("month %d has zero events", p.Month)
		}
		if p.FrozenAcc < 0 || p.FrozenAcc > 1 || p.RetrainedAcc < 0 || p.RetrainedAcc > 1 {
			t.Errorf("month %d accuracies out of range", p.Month)
		}
	}
	_ = res.MeanGapLastMonths(2)
}

func TestFigure9(t *testing.T) {
	ctx := getCtx(t)
	res, err := RunFigure9(ctx, DefaultFigure9Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Impacts) == 0 {
		t.Fatal("no impacts")
	}
	if res.Impacts[0].MeanAbs <= 0 {
		t.Error("top feature has zero impact")
	}
	for i := 1; i < len(res.Impacts); i++ {
		if res.Impacts[i].MeanAbs > res.Impacts[i-1].MeanAbs+1e-12 {
			t.Error("impacts not sorted")
		}
	}
}

func TestFigure10(t *testing.T) {
	ctx := getCtx(t)
	res, err := RunFigure10(ctx, "", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopNodes) == 0 {
		t.Fatal("no explained nodes")
	}
	for i := 1; i < len(res.TopNodes); i++ {
		if res.TopNodes[i].Weight > res.TopNodes[i-1].Weight+1e-9 {
			t.Error("explanation weights not sorted")
		}
	}
}

func TestAblationEnrichmentDepth(t *testing.T) {
	ctx := getCtx(t)
	row, err := RunAblationEnrichmentDepth(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Enrichment must help deep label propagation (the paper's core
	// argument for secondary IOCs).
	if row.AccA < row.AccB-0.05 {
		t.Errorf("enrichment hurt LP 3L: with %.3f vs without %.3f", row.AccA, row.AccB)
	}
}

func TestMostReusedIOCs(t *testing.T) {
	ctx := getCtx(t)
	top := MostReusedIOCs(ctx, 5)
	for i := 1; i < len(top); i++ {
		if top[i].EventCount > top[i-1].EventCount {
			t.Fatal("not sorted by reuse")
		}
	}
	for _, n := range top {
		if !n.FirstOrder || n.EventCount < 2 {
			t.Fatalf("bad entry %+v", n)
		}
	}
}

// graphKindURLForTest avoids an import cycle dance in test helpers.
func graphKindURLForTest() graph.NodeKind { return graph.KindURL }

func TestFigure3(t *testing.T) {
	ctx := getCtx(t)
	res, err := RunFigure3(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalIOCs == 0 || res.Edges == 0 {
		t.Fatalf("empty ego net: %+v", res)
	}
	sum := res.ByKind[graph.KindIP] + res.ByKind[graph.KindDomain] + res.ByKind[graph.KindURL]
	if sum != res.TotalIOCs {
		t.Fatalf("census mismatch: %d vs %d", sum, res.TotalIOCs)
	}
	if !strings.Contains(res.Render(), "ego-net") {
		t.Fatal("render incomplete")
	}
	if _, err := RunFigure3(ctx, "NOPE"); err == nil {
		t.Fatal("unknown APT accepted")
	}
}
