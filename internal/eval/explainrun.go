package eval

import (
	"errors"
	"fmt"
	"strings"

	"trail/internal/explain"
	"trail/internal/feature"
	"trail/internal/gnn"
	"trail/internal/graph"
	"trail/internal/ioc"
	"trail/internal/ml"
)

// Figure9Result is the SHAP feature-importance study: the top features of
// the XGB URL classifier for one APT class (the paper shows APT28).
type Figure9Result struct {
	APT     string
	Class   int
	Impacts []explain.FeatureImpact
	Samples int
}

// Render prints a text beeswarm summary: ranked features with their mean
// SHAP direction.
func (r *Figure9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: top-%d SHAP features of the XGB URL classifier for %s (%d samples)\n",
		len(r.Impacts), r.APT, r.Samples)
	for i, fi := range r.Impacts {
		dir := "+"
		if fi.MeanSHAP < 0 {
			dir = "-"
		}
		fmt.Fprintf(&b, "  %2d. %-28s mean|SHAP|=%.4f direction=%s\n", i+1, fi.Name, fi.MeanAbs, dir)
	}
	return b.String()
}

// Figure9Config tunes the SHAP run.
type Figure9Config struct {
	// APTName selects the explained class (default APT28, as in the
	// paper).
	APTName string
	// ExplainSamples is how many of the class's URLs to explain.
	ExplainSamples int
	// BackgroundSamples sizes the SHAP reference set.
	BackgroundSamples int
	// TopK features to report.
	TopK int
	// Permutations per explained sample.
	Permutations int
}

// DefaultFigure9Config mirrors the paper's Fig. 9 view.
func DefaultFigure9Config() Figure9Config {
	return Figure9Config{APTName: "APT28", ExplainSamples: 24, BackgroundSamples: 48, TopK: 10, Permutations: 4}
}

// RunFigure9 trains the XGB URL classifier and computes sampling-SHAP
// values for the chosen class's URL samples.
func RunFigure9(ctx *Context, cfg Figure9Config) (*Figure9Result, error) {
	if cfg.APTName == "" {
		cfg = DefaultFigure9Config()
	}
	class := -1
	for i, n := range ctx.Names {
		if n == cfg.APTName {
			class = i
		}
	}
	if class < 0 {
		return nil, fmt.Errorf("eval: unknown APT %q", cfg.APTName)
	}
	X, y, err := ctx.LabeledFeatureMatrix(graph.KindURL)
	if err != nil {
		return nil, err
	}
	scaler := ml.FitScaler(X)
	Xs := scaler.Transform(X)
	model := newModel(ModelXGB, ctx.Classes, ctx.Opts.Seed, ctx.Opts.Fast)
	if err := model.Fit(Xs, y); err != nil {
		return nil, err
	}

	// Explained set: the class's own URLs; background: a class-agnostic
	// sample.
	var classRows, bgRows []int
	for i, c := range y {
		if c == class && len(classRows) < cfg.ExplainSamples {
			classRows = append(classRows, i)
		}
	}
	if len(classRows) == 0 {
		return nil, fmt.Errorf("eval: no %s URL samples", cfg.APTName)
	}
	step := Xs.Rows / cfg.BackgroundSamples
	if step < 1 {
		step = 1
	}
	for i := 0; i < Xs.Rows && len(bgRows) < cfg.BackgroundSamples; i += step {
		bgRows = append(bgRows, i)
	}

	shap := explain.NewSHAP(model, Xs.SelectRows(bgRows))
	shap.Permutations = cfg.Permutations
	if ctx.Opts.Fast {
		shap.Permutations = 1
		if len(classRows) > 4 {
			classRows = classRows[:4]
		}
	}
	vals := shap.Matrix(Xs.SelectRows(classRows), class)
	impacts := explain.Summarize(vals, feature.Names(ioc.TypeURL), cfg.TopK)
	return &Figure9Result{
		APT:     cfg.APTName,
		Class:   class,
		Impacts: impacts,
		Samples: len(classRows),
	}, nil
}

// Figure10Result is the GNNExplainer study: the most important subgraph
// nodes behind one event's attribution.
type Figure10Result struct {
	Event     string
	APT       string
	Predicted string
	// TopNodes lists the highest-weighted nodes with kind and key.
	TopNodes []ExplainedNode
	// ImportantEventNeighbors counts how many of the top nodes are other
	// events (the paper finds mostly IOC feature nodes, with one reused
	// domain path to a second APT28 event).
	ImportantEventNeighbors int
}

// ExplainedNode is one ranked node of the explanation subgraph.
type ExplainedNode struct {
	Kind   graph.NodeKind
	Key    string
	Weight float64
}

// Render prints the Fig. 10 view.
func (r *Figure10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: GNNExplainer top nodes for event %s (true %s, predicted %s)\n",
		r.Event, r.APT, r.Predicted)
	for i, n := range r.TopNodes {
		fmt.Fprintf(&b, "  %2d. %-7s %-40s weight=%.3f\n", i+1, n.Kind, n.Key, n.Weight)
	}
	fmt.Fprintf(&b, "  other events among top nodes: %d\n", r.ImportantEventNeighbors)
	return b.String()
}

// RunFigure10 trains a 3-layer GNN and explains one event of the chosen
// class (APT28 by default, as in the paper).
func RunFigure10(ctx *Context, aptName string, topK int) (*Figure10Result, error) {
	if aptName == "" {
		aptName = "APT28"
	}
	if topK <= 0 {
		topK = 15
	}
	class := -1
	for i, n := range ctx.Names {
		if n == aptName {
			class = i
		}
	}
	if class < 0 {
		return nil, fmt.Errorf("eval: unknown APT %q", aptName)
	}
	set, in, model, err := ctx.trainBaseGNN(3)
	if err != nil {
		return nil, err
	}
	_ = set

	// Prefer a correctly classified event of the class; fall back to any
	// event of the class — the paper notes that explaining a wrong
	// prediction is still useful ("analysts may still use the IOCs
	// identified as important to continue their search").
	var target, fallback graph.NodeID = -1, -1
	visible := visibleLabels(ctx.TKG.G)
	for _, ev := range ctx.TKG.EventNodes() {
		if ctx.TKG.G.Node(ev).Label != class {
			continue
		}
		if fallback < 0 {
			fallback = ev
		}
		vis := cloneVisible(visible)
		delete(vis, ev)
		if model.Predict(in, vis, []graph.NodeID{ev})[0] == class {
			target = ev
			break
		}
	}
	if target < 0 {
		target = fallback
	}
	if target < 0 {
		return nil, errors.New("eval: no events of the requested class in the TKG")
	}
	vis := cloneVisible(visible)
	delete(vis, target)
	pred := model.Predict(in, vis, []graph.NodeID{target})[0]

	ecfg := gnn.DefaultExplainerConfig()
	if ctx.Opts.Fast {
		ecfg.Epochs = 10
	}
	exp := model.Explain(in, vis, target, pred, ecfg)

	res := &Figure10Result{
		Event:     ctx.TKG.G.Node(target).Key,
		APT:       aptName,
		Predicted: nameOf(ctx, pred),
	}
	for i, id := range exp.Nodes {
		if i >= topK {
			break
		}
		if id == target {
			continue
		}
		n := ctx.TKG.G.Node(id)
		res.TopNodes = append(res.TopNodes, ExplainedNode{
			Kind: n.Kind, Key: n.Key, Weight: exp.NodeWeights[i],
		})
		if n.Kind == graph.KindEvent {
			res.ImportantEventNeighbors++
		}
	}
	return res, nil
}

func cloneVisible(m map[graph.NodeID]int) map[graph.NodeID]int {
	out := make(map[graph.NodeID]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
