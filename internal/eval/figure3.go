package eval

import (
	"fmt"
	"strings"

	"trail/internal/graph"
)

// Figure3Result reproduces the paper's Fig. 3: the enriched ego network
// around one event, with the IOC census the paper quotes ("this subgraph
// has 239 related IOCs: 94 IPs, 95 domains, and 50 URLs").
type Figure3Result struct {
	Event      string
	APT        string
	ByKind     map[graph.NodeKind]int
	TotalIOCs  int
	Edges      int
	SampleIOCs []string // a few defanged examples, as the paper shows
}

// Render prints the ego-net census.
func (r *Figure3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: ego-net around a %s event (%s)\n", r.APT, r.Event)
	fmt.Fprintf(&b, "  related IOCs: %d (%d IPs, %d domains, %d URLs), %d ASNs, %d edges\n",
		r.TotalIOCs,
		r.ByKind[graph.KindIP], r.ByKind[graph.KindDomain], r.ByKind[graph.KindURL],
		r.ByKind[graph.KindASN], r.Edges)
	for _, s := range r.SampleIOCs {
		fmt.Fprintf(&b, "  e.g. %s\n", s)
	}
	return b.String()
}

// RunFigure3 builds the 2-hop ego network of the largest event of the
// given APT (APT28 by default, as in the paper's figure).
func RunFigure3(ctx *Context, aptName string) (*Figure3Result, error) {
	if aptName == "" {
		aptName = "APT28"
	}
	class := -1
	for i, n := range ctx.Names {
		if n == aptName {
			class = i
		}
	}
	if class < 0 {
		return nil, fmt.Errorf("eval: unknown APT %q", aptName)
	}
	// Largest event of the class by degree: the richest ego-net.
	var target graph.NodeID = -1
	bestDeg := -1
	for _, ev := range ctx.TKG.EventNodes() {
		if ctx.TKG.G.Node(ev).Label != class {
			continue
		}
		if d := ctx.TKG.G.Degree(ev); d > bestDeg {
			target, bestDeg = ev, d
		}
	}
	if target < 0 {
		return nil, fmt.Errorf("eval: no %s events in the TKG", aptName)
	}
	adj := ctx.TKG.G.Adjacency()
	net := ctx.TKG.G.Ego(adj, target, 2)

	res := &Figure3Result{
		Event:  ctx.TKG.G.Node(target).Key,
		APT:    aptName,
		ByKind: make(map[graph.NodeKind]int),
		Edges:  len(net.Edges),
	}
	for _, id := range net.Nodes {
		n := ctx.TKG.G.Node(id)
		if id == target {
			continue
		}
		res.ByKind[n.Kind]++
		switch n.Kind {
		case graph.KindIP, graph.KindURL, graph.KindDomain:
			res.TotalIOCs++
			if len(res.SampleIOCs) < 3 {
				res.SampleIOCs = append(res.SampleIOCs, defangForDisplay(n.Key))
			}
		}
	}
	return res, nil
}

// defangForDisplay renders IOCs report-safe, exactly as the paper prints
// them (hxxp://, [.]).
func defangForDisplay(s string) string {
	r := strings.NewReplacer("http://", "hxxp://", "https://", "hxxps://")
	s = r.Replace(s)
	// Bracket only the final dot to stay readable.
	if i := strings.LastIndexByte(s, '.'); i > 0 {
		s = s[:i] + "[.]" + s[i+1:]
	}
	return s
}
