package eval

import (
	"errors"
	"fmt"
	"strings"

	"trail/internal/gnn"
	"trail/internal/graph"
	"trail/internal/labelprop"
	"trail/internal/ml"
)

// This file implements the extensions the paper's Discussion section (§IX)
// leaves as future work:
//
//  1. Confidence thresholding: refuse to attribute when the model's
//     confidence is below a threshold, so events from unknown APTs (or
//     benign noise) are classified "out of distribution" instead of being
//     forced onto one of the 22 trained classes.
//  2. Zero-shot label propagation: because LP is non-parametric, labelled
//     events of a never-trained group can be merged into the TKG and used
//     to attribute future events of that group with no retraining.

// ThresholdPoint is one operating point of the thresholding study.
type ThresholdPoint struct {
	Threshold float64
	// KnownAccuracy is accuracy on known-APT events among those the model
	// chose to attribute.
	KnownAccuracy float64
	// KnownCoverage is the fraction of known-APT events attributed at all.
	KnownCoverage float64
	// UnknownRejected is the fraction of held-out-APT events correctly
	// refused ("unknown / out of distribution").
	UnknownRejected float64
}

// UnknownAPTResult is the confidence-thresholding study.
type UnknownAPTResult struct {
	HeldOutAPT string
	Points     []ThresholdPoint
}

// Render prints the threshold sweep.
func (r *UnknownAPTResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Unknown-APT thresholding (§IX future work), held-out group %s:\n", r.HeldOutAPT)
	fmt.Fprintf(&b, "%10s %14s %14s %16s\n", "threshold", "known-acc", "known-cover", "unknown-reject")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%10.2f %14.3f %14.3f %16.3f\n",
			p.Threshold, p.KnownAccuracy, p.KnownCoverage, p.UnknownRejected)
	}
	return b.String()
}

// RunUnknownAPTStudy rebuilds the TKG with one APT's events excluded from
// training, trains the GNN on the remaining 21 classes, then measures how
// a confidence threshold trades coverage on known groups against
// rejection of the held-out group's events.
func RunUnknownAPTStudy(ctx *Context, heldOut string) (*UnknownAPTResult, error) {
	if heldOut == "" {
		heldOut = "APT41"
	}
	heldClass := -1
	for i, n := range ctx.Names {
		if n == heldOut {
			heldClass = i
		}
	}
	if heldClass < 0 {
		return nil, fmt.Errorf("eval: unknown APT %q", heldOut)
	}

	// The TKG itself may contain the held-out group's events (they exist
	// in the wild); only training excludes them.
	set, err := gnn.TrainEncoders(ctx.TKG.G, ctx.TKG.Features, aeConfigFor(ctx))
	if err != nil {
		return nil, err
	}
	in := gnn.BuildInput(ctx.TKG.G, ctx.TKG.Features, set, ctx.Classes)
	events, labels := ctx.eventLabels()

	var train, knownTest, unknownTest []graph.NodeID
	var knownTruth []int
	visible := make(map[graph.NodeID]int)
	rng := ctx.rng(800)
	for i, ev := range events {
		switch {
		case labels[i] == heldClass:
			unknownTest = append(unknownTest, ev)
		case rng.Float64() < 0.2:
			knownTest = append(knownTest, ev)
			knownTruth = append(knownTruth, labels[i])
		default:
			train = append(train, ev)
			visible[ev] = labels[i]
		}
	}
	if len(unknownTest) == 0 {
		return nil, fmt.Errorf("eval: no %s events in the TKG", heldOut)
	}
	gcfg := gnn.Config{
		Layers: 2, Hidden: 64, Encoding: set.Config.Encoding,
		LR: 1e-2, Epochs: 60, Seed: ctx.Opts.Seed,
	}
	if ctx.Opts.Fast {
		gcfg.Hidden = 16
		gcfg.Epochs = 10
	}
	model, err := gnn.Train(in, train, gcfg)
	if err != nil {
		return nil, err
	}

	knownPred := model.Predict(in, visible, knownTest)
	knownConf := model.Confidence(in, visible, knownTest)
	unknownConf := model.Confidence(in, visible, unknownTest)

	res := &UnknownAPTResult{HeldOutAPT: heldOut}
	for _, thr := range []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9} {
		var attributed, correct int
		for i := range knownTest {
			if knownConf[i] >= thr {
				attributed++
				if knownPred[i] == knownTruth[i] {
					correct++
				}
			}
		}
		rejected := 0
		for _, c := range unknownConf {
			if c < thr {
				rejected++
			}
		}
		p := ThresholdPoint{
			Threshold:       thr,
			UnknownRejected: float64(rejected) / float64(len(unknownTest)),
		}
		if len(knownTest) > 0 {
			p.KnownCoverage = float64(attributed) / float64(len(knownTest))
		}
		if attributed > 0 {
			p.KnownAccuracy = float64(correct) / float64(attributed)
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// ZeroShotResult is the non-parametric LP study: attribute events of a
// group whose labelled data arrived after the parametric models were
// trained.
type ZeroShotResult struct {
	APT string
	// SeedEvents is how many of the new group's events were merged as
	// labelled seeds.
	SeedEvents int
	// TestEvents is how many held-back events of the group were queried.
	TestEvents int
	// LPAccuracy is label propagation's accuracy on the held-back events
	// with the new seeds present — no retraining anywhere.
	LPAccuracy float64
	// LPAccuracyWithoutSeeds is the control: accuracy when the group's
	// seeds are absent (LP can only answer with other groups, so this is
	// the forced-error baseline).
	LPAccuracyWithoutSeeds float64
}

// Render prints the zero-shot comparison.
func (r *ZeroShotResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Zero-shot LP for a new group (§IX): %s\n", r.APT)
	fmt.Fprintf(&b, "  %d seed events merged, %d events queried\n", r.SeedEvents, r.TestEvents)
	fmt.Fprintf(&b, "  LP accuracy with new seeds:    %.3f\n", r.LPAccuracy)
	fmt.Fprintf(&b, "  LP accuracy without the seeds: %.3f (forced errors)\n", r.LPAccuracyWithoutSeeds)
	return b.String()
}

// RunZeroShotLP demonstrates the paper's claim that label propagation
// needs no retraining for new APTs: the chosen group's events are split
// into seeds and queries inside the existing TKG.
func RunZeroShotLP(ctx *Context, aptName string) (*ZeroShotResult, error) {
	if aptName == "" {
		aptName = "GAMAREDON"
	}
	class := -1
	for i, n := range ctx.Names {
		if n == aptName {
			class = i
		}
	}
	if class < 0 {
		return nil, fmt.Errorf("eval: unknown APT %q", aptName)
	}
	events, labels := ctx.eventLabels()
	var group, others []int
	for i := range events {
		if labels[i] == class {
			group = append(group, i)
		} else {
			others = append(others, i)
		}
	}
	if len(group) < 4 {
		return nil, errors.New("eval: too few events of the chosen group")
	}
	half := len(group) / 2
	seedIdx, testIdx := group[:half], group[half:]

	csr := ctx.TKG.G.CSR()
	queries := make([]graph.NodeID, len(testIdx))
	truth := make([]int, len(testIdx))
	for i, gi := range testIdx {
		queries[i] = events[gi]
		truth[i] = labels[gi]
	}

	seedsWith := make(map[graph.NodeID]int)
	seedsWithout := make(map[graph.NodeID]int)
	for _, oi := range others {
		seedsWith[events[oi]] = labels[oi]
		seedsWithout[events[oi]] = labels[oi]
	}
	for _, si := range seedIdx {
		seedsWith[events[si]] = labels[si]
	}

	predWith := labelprop.AttributeCSR(csr, seedsWith, queries, ctx.Classes, 4)
	predWithout := labelprop.AttributeCSR(csr, seedsWithout, queries, ctx.Classes, 4)

	return &ZeroShotResult{
		APT:                    aptName,
		SeedEvents:             len(seedIdx),
		TestEvents:             len(testIdx),
		LPAccuracy:             ml.Accuracy(truth, predWith),
		LPAccuracyWithoutSeeds: ml.Accuracy(truth, predWithout),
	}, nil
}

// RunAblationSAGEvsGCN compares the paper's GraphSAGE choice against the
// Eq. 2 GCN baseline on the same holdout split.
func RunAblationSAGEvsGCN(ctx *Context) (*AblationRow, error) {
	set, err := gnn.TrainEncoders(ctx.TKG.G, ctx.TKG.Features, aeConfigFor(ctx))
	if err != nil {
		return nil, err
	}
	in := gnn.BuildInput(ctx.TKG.G, ctx.TKG.Features, set, ctx.Classes)
	events, labels := ctx.eventLabels()
	idx := ctx.rng(900).Perm(len(events))
	cut := len(events) * 4 / 5
	var train, test []graph.NodeID
	var yte []int
	visible := make(map[graph.NodeID]int)
	for i, j := range idx {
		if i < cut {
			train = append(train, events[j])
			visible[events[j]] = labels[j]
		} else {
			test = append(test, events[j])
			yte = append(yte, labels[j])
		}
	}
	cfg := gnn.Config{
		Layers: 2, Hidden: 64, Encoding: set.Config.Encoding,
		LR: 1e-2, Epochs: 60, Seed: ctx.Opts.Seed,
	}
	if ctx.Opts.Fast {
		cfg.Hidden = 16
		cfg.Epochs = 10
	}
	sage, err := gnn.Train(in, train, cfg)
	if err != nil {
		return nil, err
	}
	gc, err := gnn.TrainGCN(in, train, cfg)
	if err != nil {
		return nil, err
	}
	return &AblationRow{
		Name:     "SAGE vs GCN (Eq. 3 vs Eq. 2)",
		VariantA: "GraphSAGE", AccA: ml.Accuracy(yte, sage.Predict(in, visible, test)),
		VariantB: "GCN", AccB: ml.Accuracy(yte, gc.Predict(in, visible, test)),
	}, nil
}
