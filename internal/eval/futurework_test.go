package eval

import (
	"strings"
	"testing"
)

func TestUnknownAPTStudy(t *testing.T) {
	ctx := getCtx(t)
	res, err := RunUnknownAPTStudy(ctx, "APT38")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no threshold points")
	}
	// Monotonicity: raising the threshold can only reject more unknowns
	// and attribute fewer knowns.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].UnknownRejected < res.Points[i-1].UnknownRejected-1e-9 {
			t.Fatal("unknown rejection not monotone in the threshold")
		}
		if res.Points[i].KnownCoverage > res.Points[i-1].KnownCoverage+1e-9 {
			t.Fatal("known coverage not monotone in the threshold")
		}
	}
	// Threshold 0 attributes everything and rejects nothing.
	if res.Points[0].KnownCoverage != 1 || res.Points[0].UnknownRejected != 0 {
		t.Fatalf("threshold 0 point wrong: %+v", res.Points[0])
	}
	if !strings.Contains(res.Render(), "APT38") {
		t.Fatal("render incomplete")
	}
}

func TestUnknownAPTStudyUnknownName(t *testing.T) {
	ctx := getCtx(t)
	if _, err := RunUnknownAPTStudy(ctx, "NOT_A_GROUP"); err == nil {
		t.Fatal("unknown group accepted")
	}
}

func TestZeroShotLP(t *testing.T) {
	ctx := getCtx(t)
	res, err := RunZeroShotLP(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.SeedEvents == 0 || res.TestEvents == 0 {
		t.Fatal("empty split")
	}
	// Without the group's seeds, LP cannot ever name the group: the
	// control accuracy must be zero.
	if res.LPAccuracyWithoutSeeds != 0 {
		t.Fatalf("control accuracy %.3f != 0 — the group leaked into the seed set",
			res.LPAccuracyWithoutSeeds)
	}
	// With the seeds merged (no retraining), accuracy must improve.
	if res.LPAccuracy <= res.LPAccuracyWithoutSeeds {
		t.Fatalf("zero-shot seeds did not help: %.3f", res.LPAccuracy)
	}
}

func TestAblationSAGEvsGCN(t *testing.T) {
	ctx := getCtx(t)
	row, err := RunAblationSAGEvsGCN(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if row.AccA < 0 || row.AccA > 1 || row.AccB < 0 || row.AccB > 1 {
		t.Fatalf("accuracies out of range: %+v", row)
	}
}

func TestRunTuningRF(t *testing.T) {
	ctx := getCtx(t)
	res, err := RunTuning(ctx, ModelRF, graphKindURLForTest(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 6 {
		t.Fatalf("trials %d", res.Trials)
	}
	if res.BestScore < 0 || res.BestScore > 1 {
		t.Fatalf("best score %v", res.BestScore)
	}
	// The tuned optimum can never be worse than the trials' own best by
	// construction; sanity-check the render too.
	if !strings.Contains(res.Render(), "TPE tuning") {
		t.Fatal("render incomplete")
	}
}

func TestRunTuningRejectsNN(t *testing.T) {
	ctx := getCtx(t)
	if _, err := RunTuning(ctx, ModelNN, graphKindURLForTest(), 3); err == nil {
		t.Fatal("NN should not be tunable (paper tunes XGB and RF only)")
	}
}
