package eval

import (
	"errors"
	"fmt"
	"strings"

	"trail/internal/gnn"
	"trail/internal/graph"
	"trail/internal/ioc"
	"trail/internal/labelprop"
	"trail/internal/ml"
	"trail/internal/osint"
)

// trainBaseGNN trains (or returns the cached) production GNN on the base
// TKG: the case study, Figs. 7-8 and Fig. 10 all share it.
func (c *Context) trainBaseGNN(layers int) (*gnn.EncoderSet, gnn.Input, *gnn.Model, error) {
	c.baseGNNMu.Lock()
	defer c.baseGNNMu.Unlock()
	if b, ok := c.baseGNN[layers]; ok {
		return b.set, b.in, b.model, nil
	}

	aeCfg := aeConfigFor(c)
	gcfg := gnn.Config{
		Layers: layers, Hidden: 64, Encoding: aeCfg.Encoding,
		LR: 1e-2, Epochs: 60, Seed: c.Opts.Seed,
	}
	if c.Opts.Fast {
		gcfg.Hidden = 16
		gcfg.Epochs = 10
	}
	set, err := gnn.TrainEncoders(c.TKG.G, c.TKG.Features, aeCfg)
	if err != nil {
		return nil, gnn.Input{}, nil, err
	}
	in := gnn.BuildInput(c.TKG.G, c.TKG.Features, set, c.Classes)
	events := c.TKG.EventNodes()
	model, err := gnn.Train(in, events, gcfg)
	if err != nil {
		return nil, gnn.Input{}, nil, err
	}
	if c.baseGNN == nil {
		c.baseGNN = make(map[int]*baseGNNBundle)
	}
	c.baseGNN[layers] = &baseGNNBundle{set: set, in: in, model: model}
	return set, in, model, nil
}

// visibleLabels returns a visibility map for every labelled event in g.
func visibleLabels(g *graph.Graph) map[graph.NodeID]int {
	vis := make(map[graph.NodeID]int)
	g.ForEachNode(func(n graph.Node) {
		if n.Kind == graph.KindEvent && n.Label >= 0 {
			vis[n.ID] = n.Label
		}
	})
	return vis
}

// CaseStudyResult reproduces §VII-C (Figs. 5-6): a never-seen event is
// merged into the TKG, enriched, and attributed by LP and by the GNN with
// and without neighbour labels.
type CaseStudyResult struct {
	PulseID      string
	TrueAPT      string
	ReportedIOCs int
	// EnrichedIOCs counts the event's IOCs after enrichment (2-hop
	// neighbourhood of the new event node).
	EnrichedIOCs int
	// EventsAt2Hops / EventsAt3Hops list APT names of attributed events
	// near the new node, as in Figs. 5-6.
	EventsAt2Hops map[string]int
	EventsAt3Hops map[string]int
	// LPPrediction is the label-propagation attribution (4 layers).
	LPPrediction string
	// GNN confidences for the true class, without and with neighbour
	// labels visible (the paper reports 48% -> 88%).
	GNNConfBlind   float64
	GNNConfVisible float64
	GNNPredBlind   string
	GNNPredVisible string
}

// Render prints the case-study narrative.
func (r *CaseStudyResult) Render() string {
	var b strings.Builder
	b.WriteString("Case study (Figs. 5-6): attributing a new event\n")
	fmt.Fprintf(&b, "  pulse %s, ground truth %s\n", r.PulseID, r.TrueAPT)
	fmt.Fprintf(&b, "  reported IOCs: %d, after enrichment (2-hop): %d\n", r.ReportedIOCs, r.EnrichedIOCs)
	fmt.Fprintf(&b, "  attributed events 2 hops away: %v\n", r.EventsAt2Hops)
	fmt.Fprintf(&b, "  attributed events 3 hops away: %v\n", r.EventsAt3Hops)
	fmt.Fprintf(&b, "  label propagation (4L) prediction: %s\n", r.LPPrediction)
	fmt.Fprintf(&b, "  GNN without neighbour labels: %s (true-class confidence %.2f)\n", r.GNNPredBlind, r.GNNConfBlind)
	fmt.Fprintf(&b, "  GNN with neighbour labels:    %s (true-class confidence %.2f)\n", r.GNNPredVisible, r.GNNConfVisible)
	return b.String()
}

// RunCaseStudy merges the first suitable post-cutoff event into a clone
// of the TKG and attributes it.
func RunCaseStudy(ctx *Context) (*CaseStudyResult, error) {
	pulse, ok := ctx.pickCaseStudyPulse()
	if !ok {
		return nil, errors.New("eval: no post-cutoff pulse available for the case study")
	}
	tkg, err := ctx.TKG.Clone()
	if err != nil {
		return nil, err
	}
	// Train the model before the event exists, as in the paper.
	set, _, model, err := ctx.trainBaseGNN(3)
	if err != nil {
		return nil, err
	}

	evID, err := tkg.AddPulse(pulse)
	if err != nil {
		return nil, err
	}
	tkg.FinalizeLabels()
	truth := tkg.G.Node(evID).Label

	res := &CaseStudyResult{
		PulseID:       pulse.ID,
		TrueAPT:       ctx.Names[truth],
		ReportedIOCs:  len(pulse.Indicators),
		EventsAt2Hops: map[string]int{},
		EventsAt3Hops: map[string]int{},
	}

	adj := tkg.G.Adjacency()
	dist := graph.BFSDistances(adj, evID, 3)
	for id, d := range dist {
		if d <= 0 {
			continue
		}
		n := tkg.G.Node(graph.NodeID(id))
		if n.Kind == graph.KindEvent && n.Label >= 0 {
			name := ctx.Names[n.Label]
			if d <= 2 {
				res.EventsAt2Hops[name]++
			}
			res.EventsAt3Hops[name]++
		}
		if d <= 2 && n.Kind != graph.KindEvent && n.Kind != graph.KindASN {
			res.EnrichedIOCs++
		}
	}

	// Label propagation with every other event labelled.
	seeds := visibleLabels(tkg.G)
	delete(seeds, evID)
	lpPred := labelprop.AttributeCSR(tkg.G.CSR(), seeds, []graph.NodeID{evID}, ctx.Classes, 4)[0]
	res.LPPrediction = nameOf(ctx, lpPred)

	// GNN on the merged graph: encodings recomputed with the frozen
	// encoder set ("updating the TKG" without retraining, §VII-C).
	in := gnn.BuildInput(tkg.G, tkg.Features, set, ctx.Classes)
	blind := model.PredictProba(in, nil, []graph.NodeID{evID})
	res.GNNConfBlind = blind.At(0, truth)
	res.GNNPredBlind = nameOf(ctx, argmaxRow(blind, 0))
	vis := model.PredictProba(in, seeds, []graph.NodeID{evID})
	res.GNNConfVisible = vis.At(0, truth)
	res.GNNPredVisible = nameOf(ctx, argmaxRow(vis, 0))
	return res, nil
}

// pickCaseStudyPulse selects the post-cutoff pulse that best matches the
// paper's case study: a report from a well-represented group whose IOCs
// overlap infrastructure already in the TKG (the paper's APT38 report
// shared 40% of its domains and 20% of its IPs with earlier events).
func (ctx *Context) pickCaseStudyPulse() (osint.Pulse, bool) {
	counts := make(map[int]int)
	for _, ev := range ctx.TKG.EventNodes() {
		counts[ctx.TKG.G.Node(ev).Label]++
	}
	var best *osint.Pulse
	bestOverlap := -1
	for _, p := range ctx.World.PulsesInMonths(ctx.TrainMonths, ctx.TrainMonths+ctx.Opts.StudyMonths) {
		p := p
		if counts[p.TrueAPT] < 10 || len(p.Indicators) < 5 {
			continue
		}
		overlap := ctx.pulseOverlap(p)
		if overlap > bestOverlap {
			best, bestOverlap = &p, overlap
		}
	}
	if best != nil {
		return *best, true
	}
	// Degenerate worlds (tests): take anything post-cutoff.
	post := ctx.World.PulsesInMonths(ctx.TrainMonths, ctx.TrainMonths+ctx.Opts.StudyMonths)
	if len(post) > 0 {
		return post[0], true
	}
	return osint.Pulse{}, false
}

// pulseOverlap counts the pulse's indicators already present in the TKG.
func (ctx *Context) pulseOverlap(p osint.Pulse) int {
	overlap := 0
	for _, ind := range p.Indicators {
		item, ok := ioc.Classify(ind.Indicator)
		if !ok {
			continue
		}
		kind, ok := kindOfIOC(item.Type)
		if !ok {
			continue
		}
		if _, found := ctx.TKG.G.Lookup(kind, item.Value); found {
			overlap++
		}
	}
	return overlap
}

func kindOfIOC(t ioc.Type) (graph.NodeKind, bool) {
	switch t {
	case ioc.TypeIP:
		return graph.KindIP, true
	case ioc.TypeURL:
		return graph.KindURL, true
	case ioc.TypeDomain:
		return graph.KindDomain, true
	default:
		return 0, false
	}
}

func aeConfigFor(ctx *Context) gnn.AEConfig {
	cfg := gnn.DefaultAEConfig()
	if ctx.Opts.Fast {
		cfg.Epochs = 2
		cfg.Hidden = 32
	}
	return cfg
}

func nameOf(ctx *Context, class int) string {
	if class < 0 || class >= len(ctx.Names) {
		return "UNATTRIBUTED"
	}
	return ctx.Names[class]
}

func argmaxRow(m interface{ Row(int) []float64 }, i int) int {
	row := m.Row(i)
	best, bi := row[0], 0
	for j, v := range row[1:] {
		if v > best {
			best, bi = v, j+1
		}
	}
	return bi
}

// Figure7Result is the one-month unseen-event confusion matrix (§VII-C).
type Figure7Result struct {
	Truth, Pred []int
	Matrix      *ml.ConfusionMatrix
	Names       []string
	Accuracy    float64
	// Confidences per evaluated event (the paper notes true positives
	// carry higher confidence than false positives).
	Confidences []float64
}

// Render prints the confusion matrix restricted to present classes, plus
// the per-class precision/recall/F1 breakdown.
func (r *Figure7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: confusion matrix, first unseen month (%d events, acc %.2f)\n",
		len(r.Truth), r.Accuracy)
	b.WriteString(r.Matrix.Render(r.Names))
	b.WriteString(ml.RenderReport(ml.ClassificationReport(r.Truth, r.Pred, len(r.Names)), r.Names))
	return b.String()
}

// RunFigure7 merges the first study month's events into a clone of the
// TKG and evaluates the frozen GNN on them.
func RunFigure7(ctx *Context) (*Figure7Result, error) {
	set, _, model, err := ctx.trainBaseGNN(3)
	if err != nil {
		return nil, err
	}
	tkg, err := ctx.TKG.Clone()
	if err != nil {
		return nil, err
	}
	baseVisible := visibleLabels(tkg.G)

	var newEvents []graph.NodeID
	for _, p := range ctx.World.PulsesInMonths(ctx.TrainMonths, ctx.TrainMonths+1) {
		ev, err := tkg.AddPulse(p)
		if err != nil {
			continue // skipped pulse
		}
		newEvents = append(newEvents, ev)
	}
	if len(newEvents) == 0 {
		return nil, errors.New("eval: no events in the first study month")
	}
	tkg.FinalizeLabels()
	in := gnn.BuildInput(tkg.G, tkg.Features, set, ctx.Classes)

	truth := make([]int, len(newEvents))
	for i, ev := range newEvents {
		truth[i] = tkg.G.Node(ev).Label
	}
	pred := model.Predict(in, baseVisible, newEvents)
	conf := model.Confidence(in, baseVisible, newEvents)

	return &Figure7Result{
		Truth: truth, Pred: pred,
		Matrix:      ml.NewConfusionMatrix(truth, pred, ctx.Classes),
		Names:       ctx.Names,
		Accuracy:    ml.Accuracy(truth, pred),
		Confidences: conf,
	}, nil
}

// DriftPoint is one month of the Fig. 8 study.
type DriftPoint struct {
	Month         int
	Events        int
	FrozenAcc     float64
	FrozenBAcc    float64
	RetrainedAcc  float64
	RetrainedBAcc float64
}

// Figure8Result is the model-drift experiment.
type Figure8Result struct {
	Points []DriftPoint
}

// Render prints the drift series.
func (r *Figure8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8: accuracy drift, frozen vs monthly-retrained GNN\n")
	fmt.Fprintf(&b, "%-6s %7s %11s %12s %14s %15s\n",
		"month", "events", "frozen-acc", "frozen-bacc", "retrained-acc", "retrained-bacc")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-6d %7d %11.4f %12.4f %14.4f %15.4f\n",
			p.Month, p.Events, p.FrozenAcc, p.FrozenBAcc, p.RetrainedAcc, p.RetrainedBAcc)
	}
	return b.String()
}

// MeanGapLastMonths returns the mean (retrained - frozen) accuracy gap
// over the final n points — the degradation the paper quantifies at
// ~3.5% per month.
func (r *Figure8Result) MeanGapLastMonths(n int) float64 {
	if n > len(r.Points) {
		n = len(r.Points)
	}
	if n == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range r.Points[len(r.Points)-n:] {
		sum += p.RetrainedAcc - p.FrozenAcc
	}
	return sum / float64(n)
}

// RunFigure8 evaluates each study month twice: with the frozen base model
// on the frozen TKG, and with a model fine-tuned on (and a TKG updated
// with) every preceding study month.
func RunFigure8(ctx *Context) (*Figure8Result, error) {
	set, _, frozenModel, err := ctx.trainBaseGNN(3)
	if err != nil {
		return nil, err
	}
	// The retrained track gets its own growing TKG and its own model.
	liveTKG, err := ctx.TKG.Clone()
	if err != nil {
		return nil, err
	}
	liveModel := frozenModel.CloneModel()
	frozenVisible := visibleLabels(ctx.TKG.G)

	res := &Figure8Result{}
	fineTuneEpochs := 15
	if ctx.Opts.Fast {
		fineTuneEpochs = 4
	}
	for m := 0; m < ctx.Opts.StudyMonths; m++ {
		month := ctx.TrainMonths + m
		pulses := ctx.World.PulsesInMonths(month, month+1)
		if len(pulses) == 0 {
			continue
		}

		// Frozen track: events merged into a throwaway clone so the
		// frozen model sees them in the graph but with stale weights and
		// a stale label set.
		frozenClone, err := ctx.TKG.Clone()
		if err != nil {
			return nil, err
		}
		var fEvents []graph.NodeID
		for _, p := range pulses {
			if ev, err := frozenClone.AddPulse(p); err == nil {
				fEvents = append(fEvents, ev)
			}
		}
		frozenClone.FinalizeLabels()
		fIn := gnn.BuildInput(frozenClone.G, frozenClone.Features, set, ctx.Classes)
		fTruth := make([]int, len(fEvents))
		for i, ev := range fEvents {
			fTruth[i] = frozenClone.G.Node(ev).Label
		}
		fPred := frozenModel.Predict(fIn, frozenVisible, fEvents)

		// Live track: merge into the growing TKG; predict with the
		// up-to-date model, then fine-tune on this month for the next.
		var lEvents []graph.NodeID
		for _, p := range pulses {
			if ev, err := liveTKG.AddPulse(p); err == nil {
				lEvents = append(lEvents, ev)
			}
		}
		liveTKG.FinalizeLabels()
		lIn := gnn.BuildInput(liveTKG.G, liveTKG.Features, set, ctx.Classes)
		lVisible := visibleLabels(liveTKG.G)
		for _, ev := range lEvents {
			delete(lVisible, ev)
		}
		lTruth := make([]int, len(lEvents))
		for i, ev := range lEvents {
			lTruth[i] = liveTKG.G.Node(ev).Label
		}
		lPred := liveModel.Predict(lIn, lVisible, lEvents)
		if err := liveModel.FineTune(lIn, lEvents, fineTuneEpochs); err != nil {
			return nil, err
		}

		res.Points = append(res.Points, DriftPoint{
			Month:         m + 1,
			Events:        len(fEvents),
			FrozenAcc:     ml.Accuracy(fTruth, fPred),
			FrozenBAcc:    ml.BalancedAccuracy(fTruth, fPred, ctx.Classes),
			RetrainedAcc:  ml.Accuracy(lTruth, lPred),
			RetrainedBAcc: ml.BalancedAccuracy(lTruth, lPred, ctx.Classes),
		})
	}
	return res, nil
}
