package eval

import (
	"path/filepath"
	"testing"

	"trail/internal/ckpt"
)

// resumeCtx clones the shared test context with a ResumeDir set (Context
// holds a mutex, so fields are copied individually).
func resumeCtx(t *testing.T, dir string) *Context {
	t.Helper()
	base := getCtx(t)
	opts := base.Opts
	opts.ResumeDir = dir
	return &Context{
		Opts:        opts,
		World:       base.World,
		TKG:         base.TKG,
		Classes:     base.Classes,
		Names:       base.Names,
		TrainMonths: base.TrainMonths,
	}
}

// TestRobustnessResume: a journaled sweep point is replayed from disk on
// rerun instead of rebuilding the degraded world. The skip is proven by
// planting a sentinel value in the journal and observing it in the rerun
// output.
func TestRobustnessResume(t *testing.T) {
	dir := t.TempDir()
	ctx := resumeCtx(t, dir)
	cfg := RobustnessConfig{
		Rates:         []float64{0.15},
		TransientRate: 0.1,
		ChaosSeed:     42,
		LPLayers:      4,
		GNNLayers:     2,
	}
	first, err := RunRobustness(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Points) != 1 {
		t.Fatalf("points %d, want 1", len(first.Points))
	}

	// Overwrite the journaled unit with a sentinel event count; a rerun
	// that actually skips the rebuild must surface it verbatim.
	j, err := ckpt.OpenJournal(filepath.Join(dir, "robustness.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Fatalf("journal has %d records, want 1", j.Len())
	}
	sentinel := robustnessUnit{Point: first.Points[0], Events: 987654}
	if err := j.RecordGob(robustnessKey(ctx.Opts, cfg, 0.15), sentinel); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	second, err := RunRobustness(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if second.Events != 987654 {
		t.Fatalf("rerun rebuilt the point instead of replaying the journal (events %d)", second.Events)
	}
	if second.Points[0].LP != first.Points[0].LP || second.Points[0].GNN != first.Points[0].GNN {
		t.Fatal("replayed point differs from the recorded one")
	}

	// A different config key must NOT absorb the journaled unit.
	cfg2 := cfg
	cfg2.ChaosSeed = 43
	third, err := RunRobustness(ctx, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if third.Events == 987654 {
		t.Fatal("journal record leaked across a config change")
	}
}

// TestTuningResume: rerunning a journaled TPE search reproduces the
// result; the journal carries every trial.
func TestTuningResume(t *testing.T) {
	dir := t.TempDir()
	ctx := resumeCtx(t, dir)
	kind := graphKindURLForTest()
	first, err := RunTuning(ctx, ModelRF, kind, 4)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "tune-*.journal"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("tuning journal missing: %v %v", matches, err)
	}
	j, err := ckpt.OpenJournal(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 4 {
		t.Fatalf("journal has %d trials, want 4", j.Len())
	}
	j.Close()

	second, err := RunTuning(ctx, ModelRF, kind, 4)
	if err != nil {
		t.Fatal(err)
	}
	if second.BestScore != first.BestScore {
		t.Fatalf("resumed tuning best %v differs from original %v", second.BestScore, first.BestScore)
	}
	for k, v := range first.Best {
		if second.Best[k] != v {
			t.Fatalf("resumed tuning param %s differs", k)
		}
	}
}
