package eval

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"trail/internal/ckpt"
	"trail/internal/core"
	"trail/internal/ml"
	"trail/internal/osint"
)

// RobustnessConfig tunes the enrichment-failure robustness sweep: the TKG
// is rebuilt at each fault rate behind the chaos injector and resilience
// middleware, and event attribution is re-evaluated on the degraded
// graph.
type RobustnessConfig struct {
	// Rates are the permanent enrichment-failure rates to sweep. A rate
	// of 0 is the fault-free baseline.
	Rates []float64
	// TransientRate adds constant background flakiness on top of every
	// sweep point; the middleware is expected to absorb it entirely.
	TransientRate float64
	// ChaosSeed seeds the fault injector (independent of the eval seed so
	// the same worlds fail differently across studies if desired).
	ChaosSeed int64
	// LPLayers and GNNLayers select the attribution models evaluated at
	// each point (the paper's best label-propagation depth and a
	// mid-depth GNN).
	LPLayers  int
	GNNLayers int
}

// DefaultRobustnessConfig sweeps 0-40% permanent failures with 10%
// background transients, evaluating LP 4L and GNN 2L.
func DefaultRobustnessConfig() RobustnessConfig {
	return RobustnessConfig{
		Rates:         []float64{0, 0.1, 0.2, 0.4},
		TransientRate: 0.1,
		ChaosSeed:     42,
		LPLayers:      4,
		GNNLayers:     2,
	}
}

// RobustnessPoint is one row of the sweep.
type RobustnessPoint struct {
	Rate         float64
	Degraded     int
	EnrichErrors int
	Retries      int64
	Trips        int64
	LP           ml.MeanStd
	GNN          ml.MeanStd
}

// RobustnessResult is the enrichment-failure robustness experiment.
type RobustnessResult struct {
	Points    []RobustnessPoint
	LPLayers  int
	GNNLayers int
	Events    int
}

// Render prints the accuracy-vs-fault-rate table.
func (r *RobustnessResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robustness: event attribution vs enrichment failure rate (%d events)\n", r.Events)
	fmt.Fprintf(&b, "%-6s %9s %8s %8s %6s %18s %18s\n",
		"rate", "degraded", "errors", "retries", "trips",
		fmt.Sprintf("LP %dL acc", r.LPLayers), fmt.Sprintf("GNN %dL acc", r.GNNLayers))
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-6.2f %9d %8d %8d %6d %18s %18s\n",
			p.Rate, p.Degraded, p.EnrichErrors, p.Retries, p.Trips, p.LP, p.GNN)
	}
	return b.String()
}

// AccuracyDrop returns the mean-accuracy drop of the named depth family
// ("LP" or "GNN") between the lowest and highest swept rate.
func (r *RobustnessResult) AccuracyDrop(family string) float64 {
	if len(r.Points) < 2 {
		return 0
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if family == "GNN" {
		return first.GNN.Mean - last.GNN.Mean
	}
	return first.LP.Mean - last.LP.Mean
}

// RunRobustness rebuilds the TKG at each fault rate behind the full
// chaos -> retry/breaker stack and re-runs event attribution on the
// degraded graph. The base context supplies world configuration and
// evaluation options only; each point builds its own world so degraded
// feature vectors are genuinely imputed, not copied from the baseline.
// robustnessUnit is the journaled result of one sweep point (the point
// plus the table's event count, which Render needs).
type robustnessUnit struct {
	Point  RobustnessPoint
	Events int
}

// robustnessKey pins a journal record to everything that shapes the
// point's result, so a rerun with different settings re-computes instead
// of absorbing a stale record.
func robustnessKey(opts Options, cfg RobustnessConfig, rate float64) string {
	return fmt.Sprintf("rate-%.4f|lp%d|gnn%d|tr%.3f|cs%d|s%d",
		rate, cfg.LPLayers, cfg.GNNLayers, cfg.TransientRate, cfg.ChaosSeed, opts.Seed)
}

func RunRobustness(ctx *Context, cfg RobustnessConfig) (*RobustnessResult, error) {
	if len(cfg.Rates) == 0 {
		cfg = DefaultRobustnessConfig()
	}
	var journal *ckpt.Journal
	if dir := ctx.Opts.ResumeDir; dir != "" {
		var err error
		journal, err = ckpt.OpenJournal(filepath.Join(dir, "robustness.journal"))
		if err != nil {
			return nil, fmt.Errorf("eval: robustness journal: %w", err)
		}
		defer journal.Close()
	}
	res := &RobustnessResult{LPLayers: cfg.LPLayers, GNNLayers: cfg.GNNLayers}
	for _, rate := range cfg.Rates {
		if journal != nil {
			var unit robustnessUnit
			done, err := journal.DoneGob(robustnessKey(ctx.Opts, cfg, rate), &unit)
			if err != nil {
				return nil, fmt.Errorf("eval: robustness journal: %w", err)
			}
			if done {
				res.Points = append(res.Points, unit.Point)
				res.Events = unit.Events
				continue
			}
		}
		pctx, rep, err := buildDegradedContext(ctx.Opts, cfg, rate)
		if err != nil {
			return nil, fmt.Errorf("eval: robustness at rate %.2f: %w", rate, err)
		}
		tcfg := DefaultTableIVConfig()
		tcfg.Models = []ModelName{} // traditional models: out of scope here
		tcfg.LPLayers = []int{cfg.LPLayers}
		tcfg.GNNLayers = []int{cfg.GNNLayers}
		table, err := RunTableIV(pctx, tcfg)
		if err != nil {
			return nil, fmt.Errorf("eval: robustness at rate %.2f: %w", rate, err)
		}
		point := RobustnessPoint{
			Rate:         rate,
			Degraded:     rep.Degraded(),
			EnrichErrors: rep.EnrichErrors,
		}
		if rep.Resilience != nil {
			t := rep.Resilience.Totals()
			point.Retries, point.Trips = t.Retries, t.Trips
		}
		if row := table.Row(fmt.Sprintf("LP %dL", cfg.LPLayers)); row != nil {
			point.LP = row.Acc
		}
		if row := table.Row(fmt.Sprintf("GNN %dL", cfg.GNNLayers)); row != nil {
			point.GNN = row.Acc
		}
		res.Points = append(res.Points, point)
		res.Events = table.Events
		if journal != nil {
			unit := robustnessUnit{Point: point, Events: table.Events}
			if err := journal.RecordGob(robustnessKey(ctx.Opts, cfg, rate), unit); err != nil {
				return nil, fmt.Errorf("eval: robustness journal: %w", err)
			}
		}
	}
	return res, nil
}

// buildDegradedContext builds a fresh world and TKG behind the fault
// stack at the given permanent-failure rate, returning an eval context
// over the (possibly degraded) graph plus its build report. The manual
// clock makes retry backoff and latency spikes free.
func buildDegradedContext(opts Options, cfg RobustnessConfig, rate float64) (*Context, *core.BuildReport, error) {
	w := osint.NewWorld(opts.World)
	trainMonths := opts.World.Months - opts.StudyMonths
	if trainMonths < 1 {
		return nil, nil, fmt.Errorf("%d months with %d study months leaves no training window",
			opts.World.Months, opts.StudyMonths)
	}
	clock := osint.NewManualClock(time.Unix(0, 0)).AutoAdvance(time.Millisecond)
	chaos := osint.NewChaosServices(w, osint.ChaosConfig{
		Seed:                    cfg.ChaosSeed,
		PermanentRate:           rate,
		TransientRate:           cfg.TransientRate,
		MaxConsecutiveTransient: 3,
		Clock:                   clock,
	})
	rcfg := osint.DefaultResilienceConfig()
	rcfg.Clock = clock
	rcfg.MaxAttempts = 5
	tkg := core.NewTKGFallible(osint.NewResilientServices(chaos, rcfg), w.Resolver(), core.DefaultBuildConfig())
	rep, err := tkg.Build(w.PulsesInMonths(0, trainMonths))
	if err != nil {
		return nil, nil, err
	}
	return &Context{
		Opts:        opts,
		World:       w,
		TKG:         tkg,
		Classes:     len(w.Roster()),
		Names:       w.Resolver().Names(),
		TrainMonths: trainMonths,
	}, rep, nil
}
