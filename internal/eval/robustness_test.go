package eval

import (
	"strings"
	"testing"
)

func TestRunRobustness(t *testing.T) {
	ctx := getCtx(t)
	cfg := RobustnessConfig{
		Rates:         []float64{0, 0.3},
		TransientRate: 0.1,
		ChaosSeed:     42,
		LPLayers:      4,
		GNNLayers:     2,
	}
	res, err := RunRobustness(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points %d, want 2", len(res.Points))
	}
	base, worst := res.Points[0], res.Points[1]
	// Background transients only: the middleware must absorb them all.
	if base.Degraded != 0 || base.EnrichErrors != 0 {
		t.Fatalf("baseline point damaged: %+v", base)
	}
	if base.Retries == 0 {
		t.Fatal("baseline point shows no retries despite 10%% transients")
	}
	// 30% permanent failures must actually degrade nodes, yet attribution
	// still runs end-to-end.
	if worst.Degraded == 0 || worst.EnrichErrors == 0 {
		t.Fatalf("faulty point reports no damage: %+v", worst)
	}
	for _, p := range res.Points {
		if p.LP.Mean <= 0 || p.LP.Mean > 1 || p.GNN.Mean <= 0 || p.GNN.Mean > 1 {
			t.Fatalf("accuracy out of range at rate %.2f: LP %v GNN %v", p.Rate, p.LP, p.GNN)
		}
	}
	out := res.Render()
	for _, want := range []string{"rate", "degraded", "LP 4L", "GNN 2L"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
