package eval

import (
	"fmt"
	"strings"

	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/ml"
	"trail/internal/tree"
)

// ModelName enumerates the traditional classifiers of Tables III-IV.
type ModelName string

// The three traditional models the paper evaluates.
const (
	ModelXGB ModelName = "XGB"
	ModelNN  ModelName = "NN"
	ModelRF  ModelName = "RF"
)

// TraditionalModels lists the Table III/IV model roster in paper order.
func TraditionalModels() []ModelName { return []ModelName{ModelXGB, ModelNN, ModelRF} }

// newModel builds a fresh classifier. Fast mode trims capacity for unit
// tests; the default sizes balance fidelity and pure-Go runtime.
func newModel(name ModelName, classes int, seed int64, fast bool) ml.Classifier {
	// Sizes are tuned for single-core pure-Go runtime; they preserve the
	// paper's relative model behaviour at a fraction of the cost.
	switch name {
	case ModelXGB:
		cfg := tree.DefaultGBTConfig()
		cfg.Seed = seed
		cfg.Rounds = 8
		cfg.MaxDepth = 5
		cfg.ColSample = 32
		if fast {
			cfg.Rounds = 4
			cfg.ColSample = 16
			cfg.MaxDepth = 4
		}
		return tree.NewGBT(cfg)
	case ModelNN:
		cfg := ml.DefaultNNConfig()
		cfg.Seed = seed
		cfg.Classes = classes
		cfg.Hidden = []int{128, 64}
		cfg.Epochs = 6
		if fast {
			cfg.Hidden = []int{32}
			cfg.Epochs = 4
		}
		return ml.NewNN(cfg)
	case ModelRF:
		cfg := tree.DefaultForestConfig()
		cfg.Seed = seed
		cfg.Trees = 25
		cfg.MaxDepth = 12
		if fast {
			cfg.Trees = 10
			cfg.MaxDepth = 8
		}
		return tree.NewForest(cfg)
	default:
		panic(fmt.Sprintf("eval: unknown model %q", name))
	}
}

// IOCAttributionCell is one (model, IOC-kind) cell of Table III.
type IOCAttributionCell struct {
	Model ModelName
	Kind  graph.NodeKind
	Acc   ml.MeanStd
	BAcc  ml.MeanStd
}

// TableIIIResult is the individual-IOC attribution experiment.
type TableIIIResult struct {
	Cells   []IOCAttributionCell
	Samples map[graph.NodeKind]int
}

// cell returns the cell for (model, kind), or nil.
func (r *TableIIIResult) Cell(m ModelName, k graph.NodeKind) *IOCAttributionCell {
	for i := range r.Cells {
		if r.Cells[i].Model == m && r.Cells[i].Kind == k {
			return &r.Cells[i]
		}
	}
	return nil
}

// Render prints the Table III grid.
func (r *TableIIIResult) Render() string {
	var b strings.Builder
	b.WriteString("Table III: Individual IOC attribution (5-fold mean)\n")
	fmt.Fprintf(&b, "%-6s", "Model")
	for _, k := range iocKinds() {
		fmt.Fprintf(&b, " %8s-Acc %8s-BAcc", k, k)
	}
	b.WriteByte('\n')
	for _, m := range TraditionalModels() {
		fmt.Fprintf(&b, "%-6s", m)
		for _, k := range iocKinds() {
			c := r.Cell(m, k)
			if c == nil {
				fmt.Fprintf(&b, " %12s %13s", "-", "-")
				continue
			}
			fmt.Fprintf(&b, " %12.4f %13.4f", c.Acc.Mean, c.BAcc.Mean)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "samples: IP=%d URL=%d Domain=%d\n",
		r.Samples[graph.KindIP], r.Samples[graph.KindURL], r.Samples[graph.KindDomain])
	return b.String()
}

func iocKinds() []graph.NodeKind {
	return []graph.NodeKind{graph.KindIP, graph.KindURL, graph.KindDomain}
}

// TableIIIConfig tunes the experiment.
type TableIIIConfig struct {
	// UseSMOTE applies minority oversampling to the training folds (the
	// paper's preprocessing; disabling it is an ablation).
	UseSMOTE bool
	// MaxTrainRows caps the post-SMOTE training set per fold (0 = no
	// cap); keeps the pure-Go models tractable at larger world scales.
	MaxTrainRows int
	// Models restricts the roster (nil = all three).
	Models []ModelName
	// Kinds restricts the IOC kinds (nil = all three).
	Kinds []graph.NodeKind
}

// DefaultTableIIIConfig mirrors the paper's preprocessing.
func DefaultTableIIIConfig() TableIIIConfig {
	return TableIIIConfig{UseSMOTE: true, MaxTrainRows: 3000}
}

// RunTableIII trains XGB, NN and RF on each IOC kind's feature matrix
// with stratified k-fold cross-validation, SMOTE oversampling and
// standard scaling, reporting accuracy and balanced accuracy per cell.
func RunTableIII(ctx *Context, cfg TableIIIConfig) (*TableIIIResult, error) {
	models := cfg.Models
	if models == nil {
		models = TraditionalModels()
	}
	kinds := cfg.Kinds
	if kinds == nil {
		kinds = iocKinds()
	}
	res := &TableIIIResult{Samples: make(map[graph.NodeKind]int)}
	for _, kind := range kinds {
		X, y, err := ctx.LabeledFeatureMatrix(kind)
		if err != nil {
			return nil, err
		}
		res.Samples[kind] = X.Rows
		if X.Rows < ctx.Opts.Folds*2 {
			continue
		}
		folds := ml.StratifiedKFold(ctx.rng(100+int64(kind)), y, ctx.Opts.Folds)
		for _, m := range models {
			var accs, baccs []float64
			for fi, test := range folds {
				train := ml.Complement(X.Rows, test)
				Xtr, ytr := X.SelectRows(train), selectInts(y, train)
				if cfg.UseSMOTE {
					Xtr, ytr = ml.SMOTE(ctx.rng(200+int64(fi)), Xtr, ytr, ctx.Classes, 5)
				}
				if cfg.MaxTrainRows > 0 && Xtr.Rows > cfg.MaxTrainRows {
					keep := ctx.rng(300 + int64(fi)).Perm(Xtr.Rows)[:cfg.MaxTrainRows]
					Xtr, ytr = Xtr.SelectRows(keep), selectInts(ytr, keep)
				}
				scaler := ml.FitScaler(Xtr)
				Xtr = scaler.Transform(Xtr)
				Xte := scaler.Transform(X.SelectRows(test))
				yte := selectInts(y, test)

				model := newModel(m, ctx.Classes, ctx.Opts.Seed+int64(fi), ctx.Opts.Fast)
				if err := model.Fit(Xtr, ytr); err != nil {
					return nil, fmt.Errorf("eval: %s on %s fold %d: %w", m, kind, fi, err)
				}
				pred := ml.Predict(model, Xte)
				accs = append(accs, ml.Accuracy(yte, pred))
				baccs = append(baccs, ml.BalancedAccuracy(yte, pred, ctx.Classes))
			}
			res.Cells = append(res.Cells, IOCAttributionCell{
				Model: m, Kind: kind,
				Acc:  ml.Summarize(accs),
				BAcc: ml.Summarize(baccs),
			})
		}
	}
	return res, nil
}

// LabeledFeatureMatrix assembles the (features, labels) training data for
// one IOC kind: first-order IOCs attributed to exactly one APT, as in the
// paper's Table III setup.
func (c *Context) LabeledFeatureMatrix(kind graph.NodeKind) (*mat.Matrix, []int, error) {
	ids, labels := c.TKG.LabeledIOCs(kind)
	var rows [][]float64
	var y []int
	for i, id := range ids {
		if v, ok := c.TKG.Features[id]; ok {
			rows = append(rows, v)
			y = append(y, labels[i])
		}
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("eval: no labeled %s IOCs with features", kind)
	}
	return mat.FromRows(rows), y, nil
}

func selectInts(v []int, idx []int) []int {
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = v[j]
	}
	return out
}
