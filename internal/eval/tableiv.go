package eval

import (
	"fmt"
	"strings"
	"sync"

	"trail/internal/gnn"
	"trail/internal/graph"
	"trail/internal/labelprop"
	"trail/internal/mat"
	"trail/internal/ml"
)

// EventAttributionRow is one row of Table IV.
type EventAttributionRow struct {
	Name string
	Acc  ml.MeanStd
	BAcc ml.MeanStd
}

// TableIVResult is the event-attribution experiment.
type TableIVResult struct {
	Rows   []EventAttributionRow
	Events int
}

// Row returns the named row, or nil.
func (r *TableIVResult) Row(name string) *EventAttributionRow {
	for i := range r.Rows {
		if r.Rows[i].Name == name {
			return &r.Rows[i]
		}
	}
	return nil
}

// Render prints the Table IV rows.
func (r *TableIVResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV: Event attribution accuracy (%d events, k-fold mean ± std)\n", r.Events)
	fmt.Fprintf(&b, "%-8s %18s %18s\n", "Model", "Acc", "B-Acc")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %18s %18s\n", row.Name, row.Acc, row.BAcc)
	}
	return b.String()
}

// TableIVConfig tunes the experiment.
type TableIVConfig struct {
	// Models is the traditional-ML roster (nil = all; empty slice = skip).
	Models []ModelName
	// LPLayers and GNNLayers list the propagation depths to evaluate.
	LPLayers  []int
	GNNLayers []int
	// GNN capacity knobs.
	GNNEpochs int
	GNNHidden int
	AE        gnn.AEConfig
	// MaxTrainRows caps per-kind IOC training sets for the traditional
	// models.
	MaxTrainRows int
}

// DefaultTableIVConfig mirrors the paper's roster: XGB/NN/RF, LP 2-4L,
// GNN 2-4L.
func DefaultTableIVConfig() TableIVConfig {
	return TableIVConfig{
		LPLayers:     []int{2, 3, 4},
		GNNLayers:    []int{2, 3, 4},
		GNNEpochs:    80,
		GNNHidden:    64,
		AE:           gnn.DefaultAEConfig(),
		MaxTrainRows: 1500,
	}
}

// RunTableIV evaluates all event-attribution approaches with stratified
// k-fold cross-validation over the event nodes.
func RunTableIV(ctx *Context, cfg TableIVConfig) (*TableIVResult, error) {
	if cfg.LPLayers == nil && cfg.GNNLayers == nil && cfg.Models == nil {
		cfg = DefaultTableIVConfig()
		cfg.Models = TraditionalModels()
	}
	if ctx.Opts.Fast {
		if cfg.GNNEpochs > 15 {
			cfg.GNNEpochs = 15
		}
		cfg.GNNHidden = 24
		cfg.AE.Epochs = 2
		cfg.AE.Hidden = 32
	}

	events, labels := ctx.eventLabels()
	if len(events) < ctx.Opts.Folds*2 {
		return nil, fmt.Errorf("eval: only %d events; need at least %d", len(events), ctx.Opts.Folds*2)
	}
	folds := ml.StratifiedKFold(ctx.rng(400), labels, ctx.Opts.Folds)
	csr := ctx.TKG.G.CSR()

	res := &TableIVResult{Events: len(events)}

	// Traditional ML: per-IOC classification + mode vote per event.
	for _, m := range cfg.Models {
		var accs, baccs []float64
		for fi, test := range folds {
			train := ml.Complement(len(events), test)
			pred, truth, err := ctx.modeVoteAttribution(m, events, labels, train, test, cfg, int64(fi))
			if err != nil {
				return nil, err
			}
			accs = append(accs, ml.Accuracy(truth, pred))
			baccs = append(baccs, ml.BalancedAccuracy(truth, pred, ctx.Classes))
		}
		res.Rows = append(res.Rows, EventAttributionRow{
			Name: string(m), Acc: ml.Summarize(accs), BAcc: ml.Summarize(baccs),
		})
	}

	// Label propagation at each depth.
	for _, layers := range cfg.LPLayers {
		var accs, baccs []float64
		for _, test := range folds {
			train := ml.Complement(len(events), test)
			seeds := make(map[graph.NodeID]int, len(train))
			for _, ti := range train {
				seeds[events[ti]] = labels[ti]
			}
			queries := make([]graph.NodeID, len(test))
			truth := make([]int, len(test))
			for i, te := range test {
				queries[i] = events[te]
				truth[i] = labels[te]
			}
			pred := labelprop.AttributeCSR(csr, seeds, queries, ctx.Classes, layers)
			accs = append(accs, ml.Accuracy(truth, pred))
			baccs = append(baccs, ml.BalancedAccuracy(truth, pred, ctx.Classes))
		}
		res.Rows = append(res.Rows, EventAttributionRow{
			Name: fmt.Sprintf("LP %dL", layers),
			Acc:  ml.Summarize(accs), BAcc: ml.Summarize(baccs),
		})
	}

	// GraphSAGE at each depth. The autoencoders are shared across folds
	// and depths: they are unsupervised and see no labels, so there is no
	// leakage.
	if len(cfg.GNNLayers) > 0 {
		set, err := gnn.TrainEncoders(ctx.TKG.G, ctx.TKG.Features, cfg.AE)
		if err != nil {
			return nil, err
		}
		in := gnn.BuildInput(ctx.TKG.G, ctx.TKG.Features, set, ctx.Classes)
		for _, layers := range cfg.GNNLayers {
			accs := make([]float64, len(folds))
			baccs := make([]float64, len(folds))
			errs := make([]error, len(folds))
			var wg sync.WaitGroup
			for fi, test := range folds {
				wg.Add(1)
				go func(fi int, test []int) {
					defer wg.Done()
					train := ml.Complement(len(events), test)
					trainIDs := make([]graph.NodeID, len(train))
					visible := make(map[graph.NodeID]int, len(train))
					for i, ti := range train {
						trainIDs[i] = events[ti]
						visible[events[ti]] = labels[ti]
					}
					gcfg := gnn.Config{
						Layers:   layers,
						Hidden:   cfg.GNNHidden,
						Encoding: cfg.AE.Encoding,
						LR:       1e-2,
						Epochs:   cfg.GNNEpochs,
						Seed:     ctx.Opts.Seed + int64(fi),
					}
					model, err := gnn.Train(in, trainIDs, gcfg)
					if err != nil {
						errs[fi] = err
						return
					}
					queries := make([]graph.NodeID, len(test))
					truth := make([]int, len(test))
					for i, te := range test {
						queries[i] = events[te]
						truth[i] = labels[te]
					}
					pred := model.Predict(in, visible, queries)
					accs[fi] = ml.Accuracy(truth, pred)
					baccs[fi] = ml.BalancedAccuracy(truth, pred, ctx.Classes)
				}(fi, test)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
			res.Rows = append(res.Rows, EventAttributionRow{
				Name: fmt.Sprintf("GNN %dL", layers),
				Acc:  ml.Summarize(accs), BAcc: ml.Summarize(baccs),
			})
		}
	}
	return res, nil
}

// modeVoteAttribution implements the paper's traditional-ML event
// attribution: classify every first-order IOC of an event individually,
// then output the mode of the predictions.
func (c *Context) modeVoteAttribution(m ModelName, events []graph.NodeID, labels []int, train, test []int, cfg TableIVConfig, foldSeed int64) (pred, truth []int, err error) {
	inTrain := make(map[graph.NodeID]bool, len(train))
	for _, ti := range train {
		inTrain[events[ti]] = true
	}

	// Per-kind training data labelled only from training events.
	type kindData struct {
		rows [][]float64
		y    []int
	}
	data := map[graph.NodeKind]*kindData{
		graph.KindIP:     {},
		graph.KindURL:    {},
		graph.KindDomain: {},
	}
	c.TKG.G.ForEachNode(func(n graph.Node) {
		kd, ok := data[n.Kind]
		if !ok || !n.FirstOrder {
			return
		}
		feat, ok := c.TKG.Features[n.ID]
		if !ok {
			return
		}
		label := -1
		pure := true
		c.TKG.G.NeighborEdges(n.ID, func(to graph.NodeID, et graph.EdgeType, _ bool) bool {
			if et != graph.EdgeInReport || !inTrain[to] {
				return true
			}
			l := c.TKG.G.Node(to).Label
			if label == -1 {
				label = l
			} else if label != l {
				pure = false
				return false
			}
			return true
		})
		if pure && label >= 0 {
			kd.rows = append(kd.rows, feat)
			kd.y = append(kd.y, label)
		}
	})

	models := make(map[graph.NodeKind]ml.Classifier)
	scalers := make(map[graph.NodeKind]*ml.StandardScaler)
	for kind, kd := range data {
		if len(kd.rows) < 2 {
			continue
		}
		X, y := mat.FromRows(kd.rows), kd.y
		if cfg.MaxTrainRows > 0 && X.Rows > cfg.MaxTrainRows {
			keep := c.rng(500 + foldSeed).Perm(X.Rows)[:cfg.MaxTrainRows]
			X, y = X.SelectRows(keep), selectInts(y, keep)
		}
		scaler := ml.FitScaler(X)
		model := newModel(m, c.Classes, c.Opts.Seed+foldSeed, c.Opts.Fast)
		if err := model.Fit(scaler.Transform(X), y); err != nil {
			return nil, nil, fmt.Errorf("eval: mode-vote %s on %s: %w", m, kind, err)
		}
		models[kind] = model
		scalers[kind] = scaler
	}

	for _, te := range test {
		ev := events[te]
		var votes []int
		c.TKG.G.NeighborEdges(ev, func(to graph.NodeID, et graph.EdgeType, _ bool) bool {
			if et != graph.EdgeInReport {
				return true
			}
			n := c.TKG.G.Node(to)
			model, ok := models[n.Kind]
			if !ok {
				return true
			}
			feat, ok := c.TKG.Features[to]
			if !ok {
				return true
			}
			X := scalers[n.Kind].Transform(mat.FromRows([][]float64{feat}))
			votes = append(votes, ml.Predict(model, X)[0])
			return true
		})
		pred = append(pred, ml.Mode(votes))
		truth = append(truth, labels[te])
	}
	return pred, truth, nil
}
