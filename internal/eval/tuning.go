package eval

import (
	"fmt"
	"path/filepath"
	"strings"

	"trail/internal/graph"
	"trail/internal/hyperopt"
	"trail/internal/ml"
	"trail/internal/tree"
)

// Hyperparameter tuning: the paper optimises the XGBoost and Random
// Forest classifiers with Hyperopt's Tree-structured Parzen Estimator
// (§VI-A). This file wires internal/hyperopt into the Table III training
// path: a TPE search over the model's space, scored by balanced accuracy
// on an internal validation split.

// TuneResult records one tuning run.
type TuneResult struct {
	Model     ModelName
	Kind      graph.NodeKind
	Best      hyperopt.Params
	BestScore float64 // validation balanced accuracy at the optimum
	BaseScore float64 // validation balanced accuracy of the untuned default
	Trials    int
}

// Render prints the tuning summary.
func (r *TuneResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TPE tuning of %s on %s IOCs (%d trials):\n", r.Model, r.Kind, r.Trials)
	fmt.Fprintf(&b, "  default config validation B-Acc: %.4f\n", r.BaseScore)
	fmt.Fprintf(&b, "  tuned config validation B-Acc:   %.4f\n", r.BestScore)
	for name, v := range r.Best {
		fmt.Fprintf(&b, "  %-16s %.4g\n", name, v)
	}
	return b.String()
}

// tuneSpace returns the TPE search box for a model.
func tuneSpace(m ModelName) hyperopt.Space {
	switch m {
	case ModelXGB:
		return hyperopt.Space{
			{Name: "rounds", Min: 4, Max: 20, Int: true},
			{Name: "depth", Min: 3, Max: 8, Int: true},
			{Name: "eta", Min: 0.05, Max: 0.6, Log: true},
			{Name: "lambda", Min: 0.1, Max: 10, Log: true},
			{Name: "subsample", Min: 0.5, Max: 1.0},
		}
	case ModelRF:
		return hyperopt.Space{
			{Name: "trees", Min: 10, Max: 60, Int: true},
			{Name: "depth", Min: 6, Max: 18, Int: true},
			{Name: "minleaf", Min: 1, Max: 8, Int: true},
		}
	default:
		return nil
	}
}

// buildTuned constructs a classifier from TPE parameters.
func buildTuned(m ModelName, p hyperopt.Params, seed int64) ml.Classifier {
	switch m {
	case ModelXGB:
		cfg := tree.DefaultGBTConfig()
		cfg.Rounds = int(p["rounds"])
		cfg.MaxDepth = int(p["depth"])
		cfg.LearningRate = p["eta"]
		cfg.Lambda = p["lambda"]
		cfg.Subsample = p["subsample"]
		cfg.ColSample = 32
		cfg.Seed = seed
		return tree.NewGBT(cfg)
	case ModelRF:
		cfg := tree.DefaultForestConfig()
		cfg.Trees = int(p["trees"])
		cfg.MaxDepth = int(p["depth"])
		cfg.MinSamplesLeaf = int(p["minleaf"])
		cfg.Seed = seed
		return tree.NewForest(cfg)
	default:
		panic(fmt.Sprintf("eval: model %q is not tunable", m))
	}
}

// RunTuning searches hyperparameters for a tree model on one IOC kind,
// exactly as the paper tunes XGB and RF. trials <= 0 uses a default
// budget scaled to Fast mode.
func RunTuning(ctx *Context, m ModelName, kind graph.NodeKind, trials int) (*TuneResult, error) {
	space := tuneSpace(m)
	if space == nil {
		return nil, fmt.Errorf("eval: model %q is not tunable (the paper tunes XGB and RF)", m)
	}
	if trials <= 0 {
		trials = 25
		if ctx.Opts.Fast {
			trials = 8
		}
	}
	X, y, err := ctx.LabeledFeatureMatrix(kind)
	if err != nil {
		return nil, err
	}
	// Internal 75/25 train/validation split, stratified.
	folds := ml.StratifiedKFold(ctx.rng(1000), y, 4)
	val := folds[0]
	trainIdx := ml.Complement(X.Rows, val)
	scaler := ml.FitScaler(X.SelectRows(trainIdx))
	Xtr := scaler.Transform(X.SelectRows(trainIdx))
	ytr := selectInts(y, trainIdx)
	Xva := scaler.Transform(X.SelectRows(val))
	yva := selectInts(y, val)
	if cap := tuneRowCap(ctx); Xtr.Rows > cap {
		keep := ctx.rng(1001).Perm(Xtr.Rows)[:cap]
		Xtr, ytr = Xtr.SelectRows(keep), selectInts(ytr, keep)
	}

	score := func(c ml.Classifier) float64 {
		if err := c.Fit(Xtr, ytr); err != nil {
			return 0
		}
		return ml.BalancedAccuracy(yva, ml.Predict(c, Xva), ctx.Classes)
	}

	base := score(newModel(m, ctx.Classes, ctx.Opts.Seed, ctx.Opts.Fast))
	obj := func(p hyperopt.Params) float64 {
		return -score(buildTuned(m, p, ctx.Opts.Seed)) // TPE minimises
	}
	cfg := hyperopt.DefaultConfig()
	cfg.Trials = trials
	cfg.Seed = ctx.Opts.Seed
	var journal hyperopt.TrialJournal
	if dir := ctx.Opts.ResumeDir; dir != "" {
		// One journal per search unit: the file name pins model, kind,
		// budget and seed so a rerun with different settings cannot absorb
		// stale results.
		name := fmt.Sprintf("tune-%s-%s-t%d-s%d.journal", m, kind, trials, ctx.Opts.Seed)
		fj, err := hyperopt.OpenFileJournal(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		defer fj.Close()
		journal = fj
	}
	best, history, err := hyperopt.MinimizeResumable(obj, space, cfg, journal)
	if err != nil {
		return nil, err
	}

	return &TuneResult{
		Model:     m,
		Kind:      kind,
		Best:      best.Params,
		BestScore: -best.Loss,
		BaseScore: base,
		Trials:    len(history),
	}, nil
}

func tuneRowCap(ctx *Context) int {
	if ctx.Opts.Fast {
		return 600
	}
	return 2000
}
