// Package explain implements the model-explanation tooling of §VII-D:
// a sampling-based SHAP estimator (Lundberg & Lee 2017, estimated with
// the permutation scheme of Štrumbelj & Kononenko) used to surface the
// per-feature signatures of APT classes in the traditional classifiers
// (Fig. 9). The GNNExplainer counterpart lives in internal/gnn, next to
// the model weights it inspects.
package explain

import (
	"math"
	"math/rand"
	"sort"

	"trail/internal/mat"
	"trail/internal/ml"
)

// SHAP estimates Shapley values for a classifier's class probability by
// Monte Carlo permutation sampling against a background dataset.
type SHAP struct {
	Model ml.Classifier
	// Background supplies the "feature absent" reference distribution;
	// typically a sample of the training set.
	Background *mat.Matrix
	// Permutations is the number of Monte Carlo permutations per
	// explained sample (accuracy grows as 1/sqrt(P)).
	Permutations int
	Seed         int64
}

// NewSHAP builds an explainer with sane defaults.
func NewSHAP(model ml.Classifier, background *mat.Matrix) *SHAP {
	return &SHAP{Model: model, Background: background, Permutations: 8, Seed: 1}
}

// Values returns the estimated Shapley value of every feature of x for
// the given class's predicted probability. The values approximately sum
// to f(x) - E[f(background)].
func (s *SHAP) Values(x []float64, class int) []float64 {
	rng := rand.New(rand.NewSource(s.Seed))
	return s.values(rng, x, class)
}

func (s *SHAP) values(rng *rand.Rand, x []float64, class int) []float64 {
	d := len(x)
	phi := make([]float64, d)
	perms := s.Permutations
	if perms < 1 {
		perms = 4
	}
	// One permutation walk evaluates d+1 points: start from a background
	// row, switch features to x's values one at a time in permutation
	// order; the probability delta at each switch is that feature's
	// marginal contribution.
	batch := mat.New(d+1, d)
	for p := 0; p < perms; p++ {
		bg := s.Background.Row(rng.Intn(s.Background.Rows))
		perm := rng.Perm(d)
		z := append([]float64(nil), bg...)
		copy(batch.Row(0), z)
		for step, f := range perm {
			z[f] = x[f]
			copy(batch.Row(step+1), z)
		}
		probs := s.Model.PredictProba(batch)
		for step, f := range perm {
			phi[f] += probs.At(step+1, class) - probs.At(step, class)
		}
	}
	inv := 1 / float64(perms)
	for i := range phi {
		phi[i] *= inv
	}
	return phi
}

// Matrix computes Shapley values for every row of X (one row of output
// per sample) — the data behind a beeswarm plot.
func (s *SHAP) Matrix(X *mat.Matrix, class int) *mat.Matrix {
	rng := rand.New(rand.NewSource(s.Seed))
	out := mat.New(X.Rows, X.Cols)
	for i := 0; i < X.Rows; i++ {
		copy(out.Row(i), s.values(rng, X.Row(i), class))
	}
	return out
}

// TopFeatures ranks features by mean absolute Shapley value over the
// sample matrix and returns the top k indices, most impactful first.
func TopFeatures(shapVals *mat.Matrix, k int) []int {
	meanAbs := make([]float64, shapVals.Cols)
	for i := 0; i < shapVals.Rows; i++ {
		for j, v := range shapVals.Row(i) {
			meanAbs[j] += math.Abs(v)
		}
	}
	idx := make([]int, len(meanAbs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return meanAbs[idx[a]] > meanAbs[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// FeatureImpact summarises one feature's SHAP distribution for report
// rendering.
type FeatureImpact struct {
	Feature  int
	Name     string
	MeanAbs  float64
	MeanSHAP float64
}

// Summarize builds the ranked impact list with names attached.
func Summarize(shapVals *mat.Matrix, names []string, k int) []FeatureImpact {
	top := TopFeatures(shapVals, k)
	out := make([]FeatureImpact, 0, len(top))
	for _, f := range top {
		fi := FeatureImpact{Feature: f}
		if f < len(names) {
			fi.Name = names[f]
		}
		for i := 0; i < shapVals.Rows; i++ {
			v := shapVals.At(i, f)
			fi.MeanAbs += math.Abs(v)
			fi.MeanSHAP += v
		}
		if shapVals.Rows > 0 {
			fi.MeanAbs /= float64(shapVals.Rows)
			fi.MeanSHAP /= float64(shapVals.Rows)
		}
		out = append(out, fi)
	}
	return out
}
