package explain

import (
	"math"
	"math/rand"
	"testing"

	"trail/internal/mat"
	"trail/internal/ml"
	"trail/internal/tree"
)

// linearish builds a 2-class dataset where only feature 0 matters.
func linearish(rng *rand.Rand, n, d int) (*mat.Matrix, []int) {
	X := mat.New(n, d)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		row := X.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if row[0] > 0 {
			y[i] = 1
			row[0] += 2
		} else {
			row[0] -= 2
		}
	}
	return X, y
}

func TestSHAPFindsTheSignalFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := linearish(rng, 200, 6)
	model := tree.NewForest(tree.ForestConfig{Trees: 15, MaxDepth: 6, Seed: 1})
	if err := model.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	shap := NewSHAP(model, X.SelectRows(rangeInts(50)))
	shap.Permutations = 6

	vals := shap.Matrix(X.SelectRows([]int{0, 1, 2, 3, 4, 5, 6, 7}), 1)
	top := TopFeatures(vals, 3)
	if top[0] != 0 {
		t.Fatalf("most impactful feature is %d, want 0 (ranking %v)", top[0], top)
	}
}

func TestSHAPValuesSumToModelDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := linearish(rng, 150, 4)
	model := tree.NewForest(tree.ForestConfig{Trees: 10, MaxDepth: 5, Seed: 1})
	if err := model.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	bg := X.SelectRows(rangeInts(60))
	shap := NewSHAP(model, bg)
	shap.Permutations = 40 // tight estimate for the additivity check

	x := X.Row(3)
	phi := shap.Values(x, 1)
	sum := mat.Sum(phi)

	fx := model.PredictProba(mat.FromRows([][]float64{x})).At(0, 1)
	ef := mat.Mean(columnOf(model.PredictProba(bg), 1))
	if math.Abs(sum-(fx-ef)) > 0.15 {
		t.Fatalf("SHAP additivity violated: sum %.3f vs f(x)-E[f] %.3f", sum, fx-ef)
	}
}

func TestSummarizeNamesAndOrder(t *testing.T) {
	vals := mat.FromRows([][]float64{
		{0.1, -0.5, 0.0},
		{0.2, -0.4, 0.0},
	})
	impacts := Summarize(vals, []string{"a", "b", "c"}, 2)
	if len(impacts) != 2 {
		t.Fatalf("impacts %d", len(impacts))
	}
	if impacts[0].Name != "b" || impacts[1].Name != "a" {
		t.Fatalf("ranking wrong: %+v", impacts)
	}
	if impacts[0].MeanSHAP >= 0 {
		t.Fatal("feature b should have negative mean SHAP")
	}
	if impacts[0].MeanAbs <= impacts[1].MeanAbs {
		t.Fatal("MeanAbs ordering broken")
	}
}

func rangeInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

var _ ml.Classifier = (*tree.Forest)(nil)

func columnOf(m *mat.Matrix, j int) []float64 {
	out := make([]float64, m.Rows)
	for i := range out {
		out[i] = m.At(i, j)
	}
	return out
}
