// Package feature converts enriched IOC records into the fixed-width
// feature vectors described in §IV-B of the paper:
//
//   - IPs:     507 features (249 country one-hot, 250 issuer one-hot,
//     8 numeric/geo features).
//   - URLs:    1,517 features (106 file type, 21 file class, 68 HTTP
//     response code, 12 encoding, 944 server, 50 server OS, 183 services
//     multi-hot, 100 TLD, 10 lexical, 23 numeric/derived).
//   - Domains: 115 features (100 TLD one-hot, 9 passive-DNS record-type
//     counts, 1 NXDOMAIN flag, 4 lexical, 1 engineered active-period).
//
// The Extractor queries an osint.Services enrichment backend, so the same
// code path runs over the synthetic world in this repository or any
// future real data provider.
package feature

import (
	"math"

	"trail/internal/ioc"
	"trail/internal/osint"
)

// Feature vector dimensionalities, matching the paper.
const (
	IPDim     = osint.NumCountries + osint.NumIssuers + 8                                                                                                                            // 507
	URLDim    = osint.NumFileTypes + osint.NumFileClasses + osint.NumHTTPCodes + osint.NumEncodings + osint.NumServers + osint.NumOSes + osint.NumServices + osint.NumTLDs + 10 + 23 // 1517
	DomainDim = osint.NumTLDs + 9 + 1 + 4 + 1                                                                                                                                        // 115
)

// Dim returns the feature dimensionality for an IOC type (0 for types
// without features, i.e. ASNs and events).
func Dim(t ioc.Type) int {
	switch t {
	case ioc.TypeIP:
		return IPDim
	case ioc.TypeURL:
		return URLDim
	case ioc.TypeDomain:
		return DomainDim
	default:
		return 0
	}
}

// Extractor computes feature vectors by querying an enrichment backend.
// It is stateless apart from the immutable vocabulary indexes and safe
// for concurrent use.
type Extractor struct {
	svc osint.Services

	countryIdx, issuerIdx, ftypeIdx, fclassIdx, codeIdx map[string]int
	encIdx, serverIdx, osIdx, svcIdx, tldIdx            map[string]int
}

// NewExtractor builds an Extractor over the given enrichment services.
func NewExtractor(svc osint.Services) *Extractor {
	return &Extractor{
		svc:        svc,
		countryIdx: indexOf(osint.Countries()),
		issuerIdx:  indexOf(osint.Issuers()),
		ftypeIdx:   indexOf(osint.FileTypes()),
		fclassIdx:  indexOf(osint.FileClasses()),
		codeIdx:    indexOf(osint.HTTPCodes()),
		encIdx:     indexOf(osint.Encodings()),
		serverIdx:  indexOf(osint.Servers()),
		osIdx:      indexOf(osint.OSes()),
		svcIdx:     indexOf(osint.ServiceNames()),
		tldIdx:     indexOf(osint.TLDs()),
	}
}

func indexOf(vocab []string) map[string]int {
	m := make(map[string]int, len(vocab))
	for i, v := range vocab {
		m[v] = i
	}
	return m
}

func setOneHot(dst []float64, idx map[string]int, key string) {
	if i, ok := idx[key]; ok {
		dst[i] = 1
	}
}

// IP returns the 507-dimensional feature vector for an IP address. The
// second result reports whether enrichment data was available; when it is
// not, the vector is all-zero (an "unknown" IOC still participates in the
// graph, just featurelessly, as in the paper's pipeline).
func (e *Extractor) IP(addr string) ([]float64, bool) {
	v := make([]float64, IPDim)
	rec, ok := e.svc.LookupIP(addr)
	if !ok {
		return v, false
	}
	off := 0
	setOneHot(v[off:off+osint.NumCountries], e.countryIdx, rec.Country)
	off += osint.NumCountries
	setOneHot(v[off:off+osint.NumIssuers], e.issuerIdx, rec.Issuer)
	off += osint.NumIssuers

	pdns, _ := e.svc.PassiveDNSIP(addr)
	misc := v[off:]
	misc[0] = rec.Lat / 90
	misc[1] = rec.Lon / 180
	misc[2] = boolF(rec.ASN != 0)
	misc[3] = boolF(rec.Issuer != "")
	misc[4] = boolF(rec.Country != "")
	misc[5] = math.Log1p(float64(len(pdns)))
	misc[6] = boolF(len(pdns) > 0)
	misc[7] = 1 // bias/known flag
	return v, true
}

// Domain returns the 115-dimensional feature vector for a domain name.
func (e *Extractor) Domain(name string) ([]float64, bool) {
	v := make([]float64, DomainDim)
	rec, ok := e.svc.PassiveDNSDomain(name)
	if !ok {
		// Lexical features are still computable from the name itself.
		e.fillDomainLexical(v, name)
		return v, false
	}
	off := 0
	setOneHot(v[off:off+osint.NumTLDs], e.tldIdx, ioc.TLD(name))
	off += osint.NumTLDs
	copy(v[off:off+9], rec.Counts.Vector())
	off += 9
	v[off] = boolF(rec.NXDomain)
	off++
	e.fillDomainLexicalAt(v, off, name)
	off += 4
	// Engineered "active period" feature (§VI-A preprocessing): days
	// between first and last passive-DNS sighting, log-scaled.
	period := rec.LastSeen.Sub(rec.FirstSeen).Hours() / 24
	if period < 0 {
		period = 0
	}
	v[off] = math.Log1p(period)
	return v, true
}

func (e *Extractor) fillDomainLexical(v []float64, name string) {
	setOneHot(v[:osint.NumTLDs], e.tldIdx, ioc.TLD(name))
	e.fillDomainLexicalAt(v, osint.NumTLDs+9+1, name)
}

func (e *Extractor) fillDomainLexicalAt(v []float64, off int, name string) {
	lex := ioc.LexicalFeatures(name).DomainVector()
	copy(v[off:off+4], lex)
}

// URL returns the 1,517-dimensional feature vector for a URL.
func (e *Extractor) URL(raw string) ([]float64, bool) {
	v := make([]float64, URLDim)
	u, parsed := ioc.ParseURL(raw)
	rec, ok := e.svc.ProbeURL(raw)

	off := 0
	if ok {
		setOneHot(v[off:off+osint.NumFileTypes], e.ftypeIdx, rec.FileType)
	}
	off += osint.NumFileTypes
	if ok {
		setOneHot(v[off:off+osint.NumFileClasses], e.fclassIdx, rec.FileClass)
	}
	off += osint.NumFileClasses
	if ok {
		setOneHot(v[off:off+osint.NumHTTPCodes], e.codeIdx, itoa(rec.HTTPCode))
	}
	off += osint.NumHTTPCodes
	if ok {
		setOneHot(v[off:off+osint.NumEncodings], e.encIdx, rec.Encoding)
	}
	off += osint.NumEncodings
	if ok {
		setOneHot(v[off:off+osint.NumServers], e.serverIdx, rec.Server)
	}
	off += osint.NumServers
	if ok {
		setOneHot(v[off:off+osint.NumOSes], e.osIdx, rec.ServerOS)
	}
	off += osint.NumOSes
	if ok {
		for _, s := range rec.Services {
			setOneHot(v[off:off+osint.NumServices], e.svcIdx, s)
		}
	}
	off += osint.NumServices
	if parsed && !u.HostIsIP {
		setOneHot(v[off:off+osint.NumTLDs], e.tldIdx, ioc.TLD(u.Host))
	}
	off += osint.NumTLDs

	lex := ioc.LexicalFeatures(raw)
	copy(v[off:off+10], lex.Vector())
	off += 10

	misc := v[off:]
	if parsed {
		misc[0] = boolF(u.Scheme == "https")
		misc[2] = boolF(u.HostIsIP)
		misc[3] = boolF(u.Port != "")
		misc[5] = boolF(u.Query != "")
		misc[9] = float64(len(u.FileExt()))
		misc[10] = float64(len(u.Host)) / 253
		misc[11] = float64(len(u.Path)) / 200
		misc[12] = float64(countByte(u.Query, '&'))
		if !u.HostIsIP {
			hostLex := ioc.LexicalFeatures(u.Host)
			misc[13] = hostLex.Dots
			misc[14] = hostLex.Entropy
			misc[15] = hostLex.DigitRatio
			misc[16] = maxLabelLen(u.Host)
		}
	}
	if ok {
		misc[1] = boolF(rec.Alive)
		misc[4] = math.Log1p(float64(len(rec.ResolvesTo)))
		misc[6] = boolF(rec.HTTPCode == 200)
		misc[7] = boolF(rec.HTTPCode == 404 || rec.HTTPCode == 410)
		misc[8] = boolF(rec.HTTPCode >= 500)
		misc[17] = float64(len(rec.Services))
		misc[18] = boolF(rec.HostDomain != "")
		misc[19] = boolF(rec.Encoding != "")
		misc[20] = boolF(rec.Server != "")
		misc[21] = boolF(rec.ServerOS != "")
		misc[22] = 1 // probe-known flag
	}
	return v, ok
}

// Extract dispatches on IOC type. ASN and event nodes have no features.
func (e *Extractor) Extract(i ioc.IOC) ([]float64, bool) {
	switch i.Type {
	case ioc.TypeIP:
		return e.IP(i.Value)
	case ioc.TypeURL:
		return e.URL(i.Value)
	case ioc.TypeDomain:
		return e.Domain(i.Value)
	default:
		return nil, false
	}
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func countByte(s string, c byte) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			n++
		}
	}
	return n
}

func maxLabelLen(host string) float64 {
	max, cur := 0, 0
	for i := 0; i <= len(host); i++ {
		if i == len(host) || host[i] == '.' {
			if cur > max {
				max = cur
			}
			cur = 0
			continue
		}
		cur++
	}
	return float64(max)
}
