package feature

import (
	"testing"

	"trail/internal/ioc"
	"trail/internal/osint"
)

func testExtractor(t testing.TB) (*Extractor, *osint.World) {
	t.Helper()
	w := osint.NewWorld(osint.TestConfig())
	return NewExtractor(w), w
}

func TestDimensionsMatchPaper(t *testing.T) {
	if IPDim != 507 {
		t.Errorf("IPDim = %d, want 507", IPDim)
	}
	if URLDim != 1517 {
		t.Errorf("URLDim = %d, want 1517", URLDim)
	}
	if DomainDim != 115 {
		t.Errorf("DomainDim = %d, want 115", DomainDim)
	}
}

func TestNamesCoverEveryDimension(t *testing.T) {
	cases := []struct {
		typ ioc.Type
		dim int
	}{
		{ioc.TypeIP, IPDim},
		{ioc.TypeURL, URLDim},
		{ioc.TypeDomain, DomainDim},
	}
	for _, c := range cases {
		names := Names(c.typ)
		if len(names) != c.dim {
			t.Errorf("%v: %d names for %d dims", c.typ, len(names), c.dim)
			continue
		}
		seen := map[string]bool{}
		for _, n := range names {
			if n == "" {
				t.Errorf("%v: empty feature name", c.typ)
			}
			if seen[n] {
				t.Errorf("%v: duplicate feature name %q", c.typ, n)
			}
			seen[n] = true
		}
	}
	if Names(ioc.TypeASN) != nil {
		t.Error("ASNs have no features")
	}
}

func firstIndicator(t *testing.T, w *osint.World, typ ioc.Type) string {
	t.Helper()
	for _, p := range w.Pulses() {
		for _, ind := range p.Indicators {
			if item, ok := ioc.Classify(ind.Indicator); ok && item.Type == typ {
				return item.Value
			}
		}
	}
	t.Fatalf("no %v indicator in world", typ)
	return ""
}

func TestIPFeatures(t *testing.T) {
	e, w := testExtractor(t)
	addr := firstIndicator(t, w, ioc.TypeIP)
	v, ok := e.IP(addr)
	if !ok {
		t.Fatalf("IP %s not enriched", addr)
	}
	if len(v) != IPDim {
		t.Fatalf("dim %d", len(v))
	}
	// Exactly one country and one issuer bit set.
	if got := countOnes(v[:osint.NumCountries]); got != 1 {
		t.Fatalf("country one-hot has %d bits", got)
	}
	if got := countOnes(v[osint.NumCountries : osint.NumCountries+osint.NumIssuers]); got != 1 {
		t.Fatalf("issuer one-hot has %d bits", got)
	}
	if v[IPDim-1] != 1 {
		t.Fatal("known flag unset")
	}
}

func TestUnknownIPZeroVector(t *testing.T) {
	e, _ := testExtractor(t)
	v, ok := e.IP("203.0.113.199")
	if ok {
		t.Fatal("unknown IP reported as enriched")
	}
	for _, x := range v {
		if x != 0 {
			t.Fatal("unknown IP vector not zero")
		}
	}
}

func TestURLFeatures(t *testing.T) {
	e, w := testExtractor(t)
	raw := firstIndicator(t, w, ioc.TypeURL)
	v, ok := e.URL(raw)
	if !ok {
		t.Fatalf("URL %s not enriched", raw)
	}
	if len(v) != URLDim {
		t.Fatalf("dim %d", len(v))
	}
	names := Names(ioc.TypeURL)
	byName := map[string]float64{}
	for i, n := range names {
		byName[n] = v[i]
	}
	if byName["url_length"] != float64(len(raw)) {
		t.Fatalf("url_length %v for %q", byName["url_length"], raw)
	}
	if byName["probe_known"] != 1 {
		t.Fatal("probe_known unset")
	}
	if byName["url_entropy"] <= 0 {
		t.Fatal("entropy missing")
	}
}

func TestURLLexicalWithoutProbe(t *testing.T) {
	e, _ := testExtractor(t)
	raw := "http://never-generated.example/some/path.php"
	v, ok := e.URL(raw)
	if ok {
		t.Fatal("unknown URL reported as probed")
	}
	names := Names(ioc.TypeURL)
	nonzero := 0
	for i := range v {
		if v[i] != 0 {
			nonzero++
			_ = names[i]
		}
	}
	// Lexical and TLD features must still populate.
	if nonzero < 5 {
		t.Fatalf("only %d nonzero lexical features", nonzero)
	}
}

func TestDomainFeatures(t *testing.T) {
	e, w := testExtractor(t)
	name := firstIndicator(t, w, ioc.TypeDomain)
	v, ok := e.Domain(name)
	if !ok {
		t.Fatalf("domain %s not enriched", name)
	}
	if len(v) != DomainDim {
		t.Fatalf("dim %d", len(v))
	}
	// A-record count lives right after the TLD one-hot.
	if v[osint.NumTLDs] < 1 {
		t.Fatalf("A record count %v", v[osint.NumTLDs])
	}
	// Lexical length is the 2nd-to-last block.
	if v[osint.NumTLDs+9+1] != float64(len(name)) {
		t.Fatalf("domain length feature %v for %q", v[osint.NumTLDs+9+1], name)
	}
}

func TestExtractDispatch(t *testing.T) {
	e, w := testExtractor(t)
	addr := firstIndicator(t, w, ioc.TypeIP)
	if v, ok := e.Extract(ioc.IOC{Type: ioc.TypeIP, Value: addr}); !ok || len(v) != IPDim {
		t.Fatal("Extract IP failed")
	}
	if v, ok := e.Extract(ioc.IOC{Type: ioc.TypeASN, Value: "AS1"}); ok || v != nil {
		t.Fatal("ASNs must have no features")
	}
}

func countOnes(v []float64) int {
	n := 0
	for _, x := range v {
		if x == 1 {
			n++
		}
	}
	return n
}
