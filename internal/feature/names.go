package feature

import (
	"fmt"

	"trail/internal/ioc"
	"trail/internal/osint"
)

// Names returns human-readable names for every feature dimension of the
// given IOC type, in vector order. The explainability experiments (SHAP,
// Fig. 9) use these to label the most impactful features.
func Names(t ioc.Type) []string {
	switch t {
	case ioc.TypeIP:
		return ipNames()
	case ioc.TypeURL:
		return urlNames()
	case ioc.TypeDomain:
		return domainNames()
	default:
		return nil
	}
}

func prefixed(prefix string, vocab []string) []string {
	out := make([]string, len(vocab))
	for i, v := range vocab {
		out[i] = fmt.Sprintf("%s=%s", prefix, v)
	}
	return out
}

func ipNames() []string {
	names := make([]string, 0, IPDim)
	names = append(names, prefixed("country", osint.Countries())...)
	names = append(names, prefixed("issuer", osint.Issuers())...)
	names = append(names,
		"latitude", "longitude", "has_asn", "has_issuer", "has_country",
		"log_pdns_domains", "has_pdns", "known")
	return names
}

func urlNames() []string {
	names := make([]string, 0, URLDim)
	names = append(names, prefixed("filetype", osint.FileTypes())...)
	names = append(names, prefixed("fileclass", osint.FileClasses())...)
	names = append(names, prefixed("http_code", osint.HTTPCodes())...)
	names = append(names, prefixed("encoding", osint.Encodings())...)
	names = append(names, prefixed("server", osint.Servers())...)
	names = append(names, prefixed("server_os", osint.OSes())...)
	names = append(names, prefixed("service", osint.ServiceNames())...)
	names = append(names, prefixed("tld", osint.TLDs())...)
	names = append(names,
		"url_length", "url_digits", "url_letters", "url_specials",
		"url_dots", "url_slashes", "url_query_params", "url_path_depth",
		"url_entropy", "url_digit_ratio")
	names = append(names,
		"is_https", "alive", "host_is_ip", "has_port", "log_resolves",
		"has_query", "code_200", "code_gone", "code_5xx", "ext_len",
		"host_len", "path_len", "query_amps", "host_dots", "host_entropy",
		"host_digit_ratio", "host_max_label", "num_services",
		"has_host_domain", "has_encoding", "has_server", "has_server_os",
		"probe_known")
	return names
}

func domainNames() []string {
	names := make([]string, 0, DomainDim)
	names = append(names, prefixed("tld", osint.TLDs())...)
	names = append(names,
		"dns_a", "dns_aaaa", "dns_cname", "dns_mx", "dns_ns",
		"dns_txt", "dns_soa", "dns_ptr", "dns_srv")
	names = append(names, "nxdomain")
	names = append(names, "domain_length", "domain_digits", "domain_dots", "domain_entropy")
	names = append(names, "active_period")
	return names
}
