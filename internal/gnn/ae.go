// Package gnn implements the graph neural network track of the paper
// (§VI-C): per-IOC-type autoencoders that project heterogeneous feature
// vectors into a shared 64-dimensional space (Eq. 5), and a GraphSAGE
// classifier (Eq. 3) with post-aggregation L2 normalisation (Eq. 4)
// trained to attribute event nodes, with hand-derived gradients on the
// stdlib.
//
// Every model in the package is generic over the storage precision
// (float32 or float64, mat.Float). The exported float64 aliases —
// Model, GCN, Autoencoder, EncoderSet, Input — keep existing call sites
// unchanged and are the numerical reference; the float32 instantiations
// halve weight/activation bandwidth and are pinned to the reference
// within tolerance by the equivalence tests. Scalar reductions (losses,
// norms, Adam moments) accumulate in float64 at every precision, per
// internal/mat's package contract.
package gnn

import (
	"context"
	"errors"
	"math/rand"

	"trail/internal/mat"
	"trail/internal/ml"
)

// linear is a bias-equipped dense layer with explicit gradient
// accumulators, shared by the autoencoders, the label embedding, and the
// SAGE layers.
type linear[T mat.Float] struct {
	w, b *ml.ParamOf[T]
}

func newLinear[T mat.Float](rng *rand.Rand, in, out int) *linear[T] {
	return &linear[T]{
		w: &ml.ParamOf[T]{W: mat.GlorotUniformOf[T](rng, in, out), G: mat.NewOf[T](in, out)},
		b: &ml.ParamOf[T]{W: mat.NewOf[T](1, out), G: mat.NewOf[T](1, out)},
	}
}

func (l *linear[T]) forward(x *mat.Dense[T]) *mat.Dense[T] {
	out := mat.MatMul(x, l.w.W)
	out.AddRowVector(l.b.W.Row(0))
	return out
}

// backward accumulates gradients given the layer input and the output
// gradient, returning the input gradient.
func (l *linear[T]) backward(x, grad *mat.Dense[T]) *mat.Dense[T] {
	mat.AddInPlace(l.w.G, mat.MatMulTransA(x, grad))
	bg := l.b.G.Row(0)
	for i := 0; i < grad.Rows; i++ {
		mat.Axpy(1, grad.Row(i), bg)
	}
	return mat.MatMulTransB(grad, l.w.W)
}

func (l *linear[T]) params() []*ml.ParamOf[T] { return []*ml.ParamOf[T]{l.w, l.b} }

// forwardWS is forward with the output borrowed from ws instead of
// allocated — identical arithmetic (MatMulInto writes the same ikj
// product into a zeroed buffer, then the bias row is added).
func (l *linear[T]) forwardWS(ws *mat.WorkspaceOf[T], x *mat.Dense[T]) *mat.Dense[T] {
	out := ws.GetDirty(x.Rows, l.w.W.Cols)
	mat.MatMulInto(out, x, l.w.W)
	out.AddRowVector(l.b.W.Row(0))
	return out
}

// backwardWS is backward with both scratch products borrowed from ws.
// The weight-gradient product lands in a zeroed buffer and is added into
// l.w.G exactly like the fresh MatMulTransA the allocating path used.
func (l *linear[T]) backwardWS(ws *mat.WorkspaceOf[T], x, grad *mat.Dense[T]) *mat.Dense[T] {
	l.accumulateWS(ws, x, grad)
	out := ws.GetDirty(grad.Rows, l.w.W.Rows)
	mat.MatMulTransBInto(out, grad, l.w.W)
	return out
}

// accumulateWS accumulates the parameter gradients only, skipping the
// input-gradient product — for the first layer of a network, whose input
// gradient nobody consumes.
func (l *linear[T]) accumulateWS(ws *mat.WorkspaceOf[T], x, grad *mat.Dense[T]) {
	tmp := ws.GetDirty(l.w.G.Rows, l.w.G.Cols)
	mat.MatMulTransAInto(tmp, x, grad)
	mat.AddInPlace(l.w.G, tmp)
	bg := l.b.G.Row(0)
	for i := 0; i < grad.Rows; i++ {
		mat.Axpy(1, grad.Row(i), bg)
	}
}

// cloneLinear deep-copies a layer's weights with zeroed gradients — the
// shared helper behind CloneModel/CloneGCN and checkpoint revival.
func cloneLinear[T mat.Float](l *linear[T]) *linear[T] {
	return &linear[T]{
		w: &ml.ParamOf[T]{W: l.w.W.Clone(), G: mat.NewOf[T](l.w.G.Rows, l.w.G.Cols)},
		b: &ml.ParamOf[T]{W: l.b.W.Clone(), G: mat.NewOf[T](l.b.G.Rows, l.b.G.Cols)},
	}
}

// reluForward returns max(x,0) and the mask for backprop.
func reluForward[T mat.Float](x *mat.Dense[T]) (out, mask *mat.Dense[T]) {
	out = x.Clone()
	mask = mat.NewOf[T](x.Rows, x.Cols)
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
		} else {
			mask.Data[i] = 1
		}
	}
	return out, mask
}

// AEConfig configures one autoencoder. The paper uses two-layer encoder
// and decoder with 512 hidden units and a 64-dimensional code.
type AEConfig struct {
	Hidden   int
	Encoding int
	LR       float64
	Epochs   int
	Batch    int
	Seed     int64
	// MaxRows caps the training subsample (0 = all rows); feature
	// matrices can be large and the code only needs to be information
	// preserving, not perfect.
	MaxRows int
}

// DefaultAEConfig returns a laptop-scale configuration (paper values:
// Hidden 512).
func DefaultAEConfig() AEConfig {
	return AEConfig{Hidden: 128, Encoding: 64, LR: 1e-3, Epochs: 5, Batch: 64, Seed: 1, MaxRows: 4000}
}

// AutoencoderOf is the Eq. 5 module at element type T: encoder f and
// decoder g, each a two-layer feed-forward network, trained with
// reconstruction MSE. Weight initialisation draws the same RNG sequence
// at every precision, so a float32 autoencoder starts from the rounded
// float64 init.
type AutoencoderOf[T mat.Float] struct {
	Config                 AEConfig
	enc1, enc2, dec1, dec2 *linear[T]
	inDim                  int
}

// Autoencoder is the float64 reference instantiation of AutoencoderOf.
type Autoencoder = AutoencoderOf[float64]

// NewAutoencoder returns an untrained float64 autoencoder.
func NewAutoencoder(cfg AEConfig) *Autoencoder { return NewAutoencoderOf[float64](cfg) }

// NewAutoencoderOf returns an untrained autoencoder at element type T.
func NewAutoencoderOf[T mat.Float](cfg AEConfig) *AutoencoderOf[T] {
	if cfg.Hidden <= 0 {
		cfg.Hidden = 128
	}
	if cfg.Encoding <= 0 {
		cfg.Encoding = 64
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 5
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	return &AutoencoderOf[T]{Config: cfg}
}

// InitRandom builds the encoder/decoder weights without any training —
// the "plain random projection" baseline the paper's §VI-C argues
// against; used by the encoder-type ablation bench.
func (a *AutoencoderOf[T]) InitRandom(inDim int) {
	rng := rand.New(rand.NewSource(a.Config.Seed))
	a.inDim = inDim
	a.enc1 = newLinear[T](rng, inDim, a.Config.Hidden)
	a.enc2 = newLinear[T](rng, a.Config.Hidden, a.Config.Encoding)
	a.dec1 = newLinear[T](rng, a.Config.Encoding, a.Config.Hidden)
	a.dec2 = newLinear[T](rng, a.Config.Hidden, inDim)
}

// Fit minimises ||X - g(f(X))||^2 with Adam.
func (a *AutoencoderOf[T]) Fit(X *mat.Dense[T]) error {
	return a.FitCtx(context.Background(), X)
}

// FitCtx is Fit with cooperative cancellation at epoch boundaries and a
// divergence guard on the reconstruction loss.
func (a *AutoencoderOf[T]) FitCtx(ctx context.Context, X *mat.Dense[T]) error {
	if X.Rows == 0 {
		return errors.New("gnn: Autoencoder.Fit empty input")
	}
	cfg := a.Config
	rng := rand.New(rand.NewSource(cfg.Seed))
	a.inDim = X.Cols
	a.enc1 = newLinear[T](rng, X.Cols, cfg.Hidden)
	a.enc2 = newLinear[T](rng, cfg.Hidden, cfg.Encoding)
	a.dec1 = newLinear[T](rng, cfg.Encoding, cfg.Hidden)
	a.dec2 = newLinear[T](rng, cfg.Hidden, X.Cols)

	var params []*ml.ParamOf[T]
	for _, l := range []*linear[T]{a.enc1, a.enc2, a.dec1, a.dec2} {
		params = append(params, l.params()...)
	}
	opt := ml.NewAdamOf(cfg.LR, params)

	idx := make([]int, X.Rows)
	for i := range idx {
		idx[i] = i
	}
	if cfg.MaxRows > 0 && len(idx) > cfg.MaxRows {
		mat.Shuffle(rng, idx)
		idx = idx[:cfg.MaxRows]
	}
	// All per-batch scratch comes from one workspace, rewound per batch:
	// steady-state epochs allocate nothing. The smaller final batch
	// reshapes the same buffers in place (capacity is sized by the first,
	// full-size batch).
	ws := trainWorkspaceOf[T]()
	defer ws.Release()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		mat.Shuffle(rng, idx)
		epochLoss := 0.0
		for start := 0; start < len(idx); start += cfg.Batch {
			end := start + cfg.Batch
			if end > len(idx) {
				end = len(idx)
			}
			ws.Reset()
			xb := ws.GetDirty(end-start, X.Cols)
			mat.SelectRowsInto(xb, X, idx[start:end])
			// Forward. Pre-activations are never reused, so bias+ReLU fuse
			// in place; the masks are all backprop needs.
			h1 := ws.GetDirty(xb.Rows, a.enc1.w.W.Cols)
			mat.MatMulInto(h1, xb, a.enc1.w.W)
			m1 := ws.GetDirty(h1.Rows, h1.Cols)
			mat.AddBiasReLUInto(h1, a.enc1.b.W.Row(0), m1)
			code := a.enc2.forwardWS(ws, h1)
			d1 := ws.GetDirty(code.Rows, a.dec1.w.W.Cols)
			mat.MatMulInto(d1, code, a.dec1.w.W)
			m2 := ws.GetDirty(d1.Rows, d1.Cols)
			mat.AddBiasReLUInto(d1, a.dec1.b.W.Row(0), m2)
			recon := a.dec2.forwardWS(ws, d1)
			// MSE gradient: 2(recon - x)/n, in the recon buffer. The loss
			// itself accumulates in float64 at every precision.
			diff := mat.SubInPlace(recon, xb)
			for _, v := range diff.Data {
				f := float64(v)
				epochLoss += f * f
			}
			grad := diff.Scale(T(2 / float64(xb.Rows*xb.Cols)))
			// Backward.
			g := a.dec2.backwardWS(ws, d1, grad)
			mat.HadamardInPlace(g, m2)
			g = a.dec1.backwardWS(ws, code, g)
			g = a.enc2.backwardWS(ws, h1, g)
			mat.HadamardInPlace(g, m1)
			a.enc1.accumulateWS(ws, xb, g)
			opt.Step()
		}
		if err := ml.CheckLoss(epoch, epochLoss); err != nil {
			return err
		}
	}
	return nil
}

// Encode projects rows of X into the code space.
func (a *AutoencoderOf[T]) Encode(X *mat.Dense[T]) *mat.Dense[T] {
	if a.enc1 == nil {
		panic("gnn: Autoencoder.Encode before Fit")
	}
	h1, _ := reluForward(a.enc1.forward(X))
	return a.enc2.forward(h1)
}

// Reconstruct runs the full encode-decode round trip.
func (a *AutoencoderOf[T]) Reconstruct(X *mat.Dense[T]) *mat.Dense[T] {
	code := a.Encode(X)
	d1, _ := reluForward(a.dec1.forward(code))
	return a.dec2.forward(d1)
}

// ReconstructionError returns mean squared reconstruction error over X.
func (a *AutoencoderOf[T]) ReconstructionError(X *mat.Dense[T]) float64 {
	if X.Rows == 0 {
		return 0
	}
	rec := a.Reconstruct(X)
	sum := 0.0
	for i, v := range rec.Data {
		d := float64(v) - float64(X.Data[i])
		sum += d * d
	}
	return sum / float64(len(X.Data))
}
