package gnn

import (
	"testing"

	"trail/internal/graph"
	"trail/internal/mat"
)

// trainToyModel fits a small SAGE model on the toy attribution graph and
// returns it with the input and a visible-label map over the training
// events — the serving configuration: every labelled event is context.
func trainToyModel(t *testing.T) (*Model, Input, map[graph.NodeID]int, []graph.NodeID) {
	t.Helper()
	in, byClass := buildToyAttributionGraph(t, 3, 8, 5)
	var train, test []graph.NodeID
	for _, evs := range byClass {
		train = append(train, evs[:6]...)
		test = append(test, evs[6:]...)
	}
	cfg := Config{Layers: 2, Hidden: 8, Encoding: 16, LR: 1e-2, Epochs: 8, Seed: 1}
	m, err := Train(in, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	visible := make(map[graph.NodeID]int, len(train))
	for _, ev := range train {
		visible[ev] = in.Labels[ev]
	}
	return m, in, visible, test
}

// TestPredictProbaIntoMatchesPredictProba pins the batching contract the
// serving layer depends on: one batched forward pass answers every query
// bit-identically to separate single-query passes.
func TestPredictProbaIntoMatchesPredictProba(t *testing.T) {
	m, in, visible, queries := trainToyModel(t)

	ws := mat.NewWorkspace()
	defer ws.Release()
	batched := m.PredictProbaInto(mat.New(len(queries), m.Classes()), in, visible, queries, ws)

	for i, q := range queries {
		single := m.PredictProba(in, visible, []graph.NodeID{q})
		for j := 0; j < m.Classes(); j++ {
			if batched.At(i, j) != single.At(0, j) {
				t.Fatalf("query %d class %d: batched %v != single %v",
					i, j, batched.At(i, j), single.At(0, j))
			}
		}
	}
}

// TestPredictProbaIntoWorkspaceReuse pins the steady-state serving loop:
// Reset-and-reuse of one workspace across batches changes nothing.
func TestPredictProbaIntoWorkspaceReuse(t *testing.T) {
	m, in, visible, queries := trainToyModel(t)
	ws := mat.NewWorkspace()
	defer ws.Release()
	first := m.PredictProbaInto(mat.New(len(queries), m.Classes()), in, visible, queries, ws).Clone()
	for iter := 0; iter < 3; iter++ {
		ws.Reset()
		again := m.PredictProbaInto(mat.New(len(queries), m.Classes()), in, visible, queries, ws)
		for k, v := range again.Data {
			if v != first.Data[k] {
				t.Fatalf("iteration %d element %d: %v != %v", iter, k, v, first.Data[k])
			}
		}
	}
}

// TestCastModelFloat32Serving pins the deploy-time quantisation path:
// float64-trained weights cast to float32 agree on every argmax and stay
// within loose probability tolerance of the float64 reference.
func TestCastModelFloat32Serving(t *testing.T) {
	m, in, visible, queries := trainToyModel(t)
	m32 := CastModel[float32](m)
	if m32.Classes() != m.Classes() {
		t.Fatalf("classes %d != %d", m32.Classes(), m.Classes())
	}
	in32 := CastInput[float32](in)

	p64 := m.PredictProba(in, visible, queries)
	p32 := m32.PredictProba(in32, visible, queries)
	for i := range queries {
		if a, b := mat.Argmax(p64.Row(i)), mat.Argmax(p32.Row(i)); a != b {
			t.Errorf("query %d: argmax %d (f64) != %d (f32)", i, a, b)
		}
		for j := 0; j < m.Classes(); j++ {
			if d := float64(p64.At(i, j)) - float64(p32.At(i, j)); d > 0.02 || d < -0.02 {
				t.Errorf("query %d class %d: |%v - %v| > 0.02", i, j, p64.At(i, j), p32.At(i, j))
			}
		}
	}

	// Same-precision cast must be bit-identical.
	same := CastModel[float64](m)
	q64 := same.PredictProba(in, visible, queries)
	for k := range q64.Data {
		if q64.Data[k] != p64.Data[k] {
			t.Fatalf("identity cast changed element %d: %v != %v", k, q64.Data[k], p64.Data[k])
		}
	}
}

// TestCastModelCheckpointRoundTrip verifies a cast model persists under
// the .f32 kind and loads back bit-identically — the artefact `trail
// train -f32` ships to the server.
func TestCastModelCheckpointRoundTrip(t *testing.T) {
	m, in, visible, queries := trainToyModel(t)
	m32 := CastModel[float32](m)
	path := t.TempDir() + "/model.f32.ck"
	if err := SaveModel(path, m32); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelOf[float64](path); err == nil {
		t.Fatal("float64 loader accepted a float32 checkpoint")
	}
	back, err := LoadModelOf[float32](path)
	if err != nil {
		t.Fatal(err)
	}
	in32 := CastInput[float32](in)
	want := m32.PredictProba(in32, visible, queries)
	got := back.PredictProba(in32, visible, queries)
	for k := range want.Data {
		if want.Data[k] != got.Data[k] {
			t.Fatalf("element %d: %v != %v after round trip", k, got.Data[k], want.Data[k])
		}
	}
}
