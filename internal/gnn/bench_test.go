package gnn

import (
	"fmt"
	"math/rand"
	"testing"

	"trail/internal/graph"
	"trail/internal/mat"
)

// benchInput builds a mid-sized synthetic attribution graph (no testing.T
// so it can serve benches): `classes` APT classes, `eventsPerClass` event
// nodes each wired to 3 class-biased IOCs. Shapes are chosen so the
// epoch benches exercise the same kernel mix as the Table IV runs.
func benchInput(classes, eventsPerClass, iocsPerClass, encDim int) (Input, []graph.NodeID) {
	g := graph.New()
	rng := rand.New(rand.NewSource(7))
	var encRows [][]float64
	var events []graph.NodeID

	iocIDs := make([][]graph.NodeID, classes)
	for c := 0; c < classes; c++ {
		for k := 0; k < iocsPerClass; k++ {
			id, _ := g.Upsert(graph.KindIP, fmt.Sprintf("ip-%d-%d", c, k))
			iocIDs[c] = append(iocIDs[c], id)
			row := make([]float64, encDim)
			for j := range row {
				row[j] = rng.NormFloat64() * 0.3
			}
			row[c%encDim] += 2
			encRows = append(encRows, row)
		}
	}
	for c := 0; c < classes; c++ {
		for e := 0; e < eventsPerClass; e++ {
			id, _ := g.Upsert(graph.KindEvent, fmt.Sprintf("ev-%d-%d", c, e))
			g.UpdateNode(id, func(n *graph.Node) { n.Label = c })
			events = append(events, id)
			encRows = append(encRows, make([]float64, encDim))
			for k := 0; k < 3; k++ {
				tgt := iocIDs[c][rng.Intn(len(iocIDs[c]))]
				g.AddEdge(id, tgt, graph.EdgeInReport)
			}
		}
	}
	enc := mat.New(g.NumNodes(), encDim)
	for i, row := range encRows {
		copy(enc.Row(i), row)
	}
	in := Input{
		Adj:     g.Adjacency(),
		CSR:     g.CSR(),
		Enc:     enc,
		IsEvent: make([]bool, g.NumNodes()),
		Labels:  make([]int, g.NumNodes()),
		Classes: classes,
	}
	for i := range in.Labels {
		in.Labels[i] = -1
	}
	g.ForEachNode(func(n graph.Node) {
		if n.Kind == graph.KindEvent {
			in.IsEvent[n.ID] = true
			in.Labels[n.ID] = n.Label
		}
	})
	return in, events
}

func benchConfig(layers, epochs int) Config {
	return Config{Layers: layers, Hidden: 64, Encoding: 64, LR: 5e-3, Epochs: epochs, Seed: 1}
}

// BenchmarkSAGETrain measures full GraphSAGE training (12 epochs, 2
// layers) over the bench graph — the steady-state epoch loop whose
// allocations this package's workspace pooling is meant to eliminate.
func BenchmarkSAGETrain(b *testing.B) {
	in, events := benchInput(6, 60, 120, 64)
	cfg := benchConfig(2, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(in, events, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGCNTrain is BenchmarkSAGETrain for the GCN baseline.
func BenchmarkGCNTrain(b *testing.B) {
	in, events := benchInput(6, 60, 120, 64)
	cfg := benchConfig(2, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainGCN(in, events, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSAGEPredict measures the inference hot path: one full-graph
// forward pass plus per-query softmax, as the eval tables run it
// hundreds of times per sweep.
func BenchmarkSAGEPredict(b *testing.B) {
	in, events := benchInput(6, 60, 120, 64)
	cfg := benchConfig(2, 12)
	m, err := Train(in, events, cfg)
	if err != nil {
		b.Fatal(err)
	}
	visible := make(map[graph.NodeID]int, len(events)/2)
	for _, ev := range events[:len(events)/2] {
		visible[ev] = in.Labels[ev]
	}
	queries := events[len(events)/2:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preds := m.Predict(in, visible, queries)
		if len(preds) != len(queries) {
			b.Fatal("short prediction")
		}
	}
}

// BenchmarkAEFit measures autoencoder training (the per-IOC-kind encoder
// loop of Eq. 5) on a feature matrix shaped like the URL kind.
func BenchmarkAEFit(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	X := mat.RandNormal(rng, 2000, 48, 0, 1)
	cfg := DefaultAEConfig()
	cfg.Epochs = 3
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ae := NewAutoencoder(cfg)
		if err := ae.Fit(X); err != nil {
			b.Fatal(err)
		}
	}
}

// Float32 counterparts of the training/inference benches, for the
// precision bandwidth table: same graph, same epochs, half the bytes
// through every kernel.

func BenchmarkSAGETrain32(b *testing.B) {
	in, events := benchInput(6, 60, 120, 64)
	in32 := CastInput[float32](in)
	cfg := benchConfig(2, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(in32, events, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGCNTrain32(b *testing.B) {
	in, events := benchInput(6, 60, 120, 64)
	in32 := CastInput[float32](in)
	cfg := benchConfig(2, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainGCN(in32, events, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSAGEPredict32(b *testing.B) {
	in, events := benchInput(6, 60, 120, 64)
	in32 := CastInput[float32](in)
	cfg := benchConfig(2, 12)
	m, err := Train(in32, events, cfg)
	if err != nil {
		b.Fatal(err)
	}
	visible := make(map[graph.NodeID]int, len(events)/2)
	for _, ev := range events[:len(events)/2] {
		visible[ev] = in32.Labels[ev]
	}
	queries := events[len(events)/2:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preds := m.Predict(in32, visible, queries)
		if len(preds) != len(queries) {
			b.Fatal("short prediction")
		}
	}
}
