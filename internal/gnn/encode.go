package gnn

import (
	"context"
	"fmt"

	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/ml"
	"trail/internal/sparse"
)

// EncoderSetOf bundles the three per-IOC-type autoencoders of §VI-C at
// element type T, each paired with the standard scaler fitted on its
// kind's feature matrix (autoencoding unscaled features lets
// large-magnitude lexical dimensions dominate the reconstruction loss
// and wrecks the code space). Scalers always operate in float64 — the
// engineered features are float64 and scaling is a cheap one-shot pass;
// only the autoencoder weights and codes carry T.
type EncoderSetOf[T mat.Float] struct {
	Config  AEConfig
	AEs     map[graph.NodeKind]*AutoencoderOf[T]
	Scalers map[graph.NodeKind]*ml.StandardScaler
}

// EncoderSet is the float64 reference instantiation of EncoderSetOf.
type EncoderSet = EncoderSetOf[float64]

// TrainEncoders fits one float64 autoencoder per IOC kind present in
// feats and returns the set. feats maps node IDs to raw engineered
// vectors; kinds reports each node's kind.
func TrainEncoders(g *graph.Graph, feats map[graph.NodeID][]float64, cfg AEConfig) (*EncoderSet, error) {
	return TrainEncodersCtx(context.Background(), g, feats, cfg, EncoderTrainOptsOf[float64]{})
}

// TrainEncodersOf is TrainEncoders at element type T.
func TrainEncodersOf[T mat.Float](g *graph.Graph, feats map[graph.NodeID][]float64, cfg AEConfig) (*EncoderSetOf[T], error) {
	return TrainEncodersCtx(context.Background(), g, feats, cfg, EncoderTrainOptsOf[T]{})
}

// EncoderTrainOptsOf carries the crash-safety knobs for TrainEncodersCtx.
// Checkpointing is kind-granular: each IOC kind's autoencoder trains from
// its own seed (cfg.Seed + kind), so skipping already-trained kinds on
// resume reproduces the uninterrupted set bit for bit.
type EncoderTrainOptsOf[T mat.Float] struct {
	// Checkpoint, when non-nil, receives the partial set after each kind
	// finishes training.
	Checkpoint func(partial *EncoderSetOf[T]) error
	// Resume supplies a previously checkpointed (possibly partial) set;
	// kinds already present are not retrained.
	Resume *EncoderSetOf[T]
}

// EncoderTrainOpts is the float64 reference instantiation of
// EncoderTrainOptsOf.
type EncoderTrainOpts = EncoderTrainOptsOf[float64]

// TrainEncodersCtx is TrainEncoders with cooperative cancellation and
// kind-granular checkpoint/resume.
func TrainEncodersCtx[T mat.Float](ctx context.Context, g *graph.Graph, feats map[graph.NodeID][]float64, cfg AEConfig, opts EncoderTrainOptsOf[T]) (*EncoderSetOf[T], error) {
	set := &EncoderSetOf[T]{
		Config:  cfg,
		AEs:     make(map[graph.NodeKind]*AutoencoderOf[T]),
		Scalers: make(map[graph.NodeKind]*ml.StandardScaler),
	}
	if opts.Resume != nil {
		for kind, ae := range opts.Resume.AEs {
			set.AEs[kind] = ae
		}
		for kind, sc := range opts.Resume.Scalers {
			set.Scalers[kind] = sc
		}
	}
	for _, kind := range []graph.NodeKind{graph.KindIP, graph.KindURL, graph.KindDomain} {
		if _, done := set.AEs[kind]; done {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var rows [][]float64
		g.ForEachNode(func(n graph.Node) {
			if n.Kind == kind {
				if v, ok := feats[n.ID]; ok {
					rows = append(rows, v)
				}
			}
		})
		if len(rows) == 0 {
			continue
		}
		X := mat.FromRows(rows)
		scaler := ml.FitScaler(X)
		aeCfg := cfg
		aeCfg.Seed = cfg.Seed + int64(kind)
		ae := NewAutoencoderOf[T](aeCfg)
		if err := ae.FitCtx(ctx, mat.Cast[T](scaler.Transform(X))); err != nil {
			return nil, fmt.Errorf("gnn: train %s encoder: %w", kind, err)
		}
		set.AEs[kind] = ae
		set.Scalers[kind] = scaler
		if opts.Checkpoint != nil {
			if err := opts.Checkpoint(set); err != nil {
				return nil, err
			}
		}
	}
	return set, nil
}

// RandomEncoders builds a float64 EncoderSet whose autoencoders are
// randomly initialised but never trained: the linear-projection baseline
// for the encoder-type ablation. Scalers are still fitted so the
// comparison isolates the reconstruction training itself.
func RandomEncoders(g *graph.Graph, feats map[graph.NodeID][]float64, cfg AEConfig) *EncoderSet {
	return RandomEncodersOf[float64](g, feats, cfg)
}

// RandomEncodersOf is RandomEncoders at element type T.
func RandomEncodersOf[T mat.Float](g *graph.Graph, feats map[graph.NodeID][]float64, cfg AEConfig) *EncoderSetOf[T] {
	set := &EncoderSetOf[T]{
		Config:  cfg,
		AEs:     make(map[graph.NodeKind]*AutoencoderOf[T]),
		Scalers: make(map[graph.NodeKind]*ml.StandardScaler),
	}
	for _, kind := range []graph.NodeKind{graph.KindIP, graph.KindURL, graph.KindDomain} {
		var rows [][]float64
		g.ForEachNode(func(n graph.Node) {
			if n.Kind == kind {
				if v, ok := feats[n.ID]; ok {
					rows = append(rows, v)
				}
			}
		})
		if len(rows) == 0 {
			continue
		}
		X := mat.FromRows(rows)
		set.Scalers[kind] = ml.FitScaler(X)
		aeCfg := cfg
		aeCfg.Seed = cfg.Seed + int64(kind)
		ae := NewAutoencoderOf[T](aeCfg)
		ae.InitRandom(X.Cols)
		set.AEs[kind] = ae
	}
	return set
}

// EncodeGraph produces the SAGE input matrix: one encoded row per node
// (zero rows for events, ASNs and unfeaturised IOCs).
func (s *EncoderSetOf[T]) EncodeGraph(g *graph.Graph, feats map[graph.NodeID][]float64) *mat.Dense[T] {
	enc := mat.NewOf[T](g.NumNodes(), s.Config.Encoding)
	// Batch per kind for cache-friendly encoding.
	for kind, ae := range s.AEs {
		var ids []graph.NodeID
		var rows [][]float64
		g.ForEachNode(func(n graph.Node) {
			if n.Kind == kind {
				if v, ok := feats[n.ID]; ok {
					ids = append(ids, n.ID)
					rows = append(rows, v)
				}
			}
		})
		if len(ids) == 0 {
			continue
		}
		codes := ae.Encode(mat.Cast[T](s.Scalers[kind].Transform(mat.FromRows(rows))))
		for i, id := range ids {
			copy(enc.Row(int(id)), codes.Row(i))
		}
	}
	return enc
}

// BuildInput assembles the full Input for a graph: encoded features,
// event flags and labels. The element type follows the encoder set's; at
// float64 the CSR snapshot (and its cached operators) is shared with the
// graph, at float32 the values are converted once.
func BuildInput[T mat.Float](g *graph.Graph, feats map[graph.NodeID][]float64, set *EncoderSetOf[T], classes int) InputOf[T] {
	n := g.NumNodes()
	in := InputOf[T]{
		Adj:     g.Adjacency(),
		CSR:     sparse.Cast[T](g.CSR()),
		Enc:     set.EncodeGraph(g, feats),
		IsEvent: make([]bool, n),
		Labels:  make([]int, n),
		Classes: classes,
	}
	for i := range in.Labels {
		in.Labels[i] = -1
	}
	g.ForEachNode(func(nd graph.Node) {
		if nd.Kind == graph.KindEvent {
			in.IsEvent[nd.ID] = true
			in.Labels[nd.ID] = nd.Label
		}
	})
	return in
}
