package gnn

import (
	"math"
	"math/rand"
	"sort"

	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/sparse"
)

// ExplainerConfig tunes the GNNExplainer optimisation (Ying et al. 2019):
// a sigmoid edge mask over the target's L-hop subgraph is optimised to
// keep the model's prediction while penalising mask size and entropy.
type ExplainerConfig struct {
	Epochs int
	LR     float64
	// SizeWeight penalises the total mask mass (sparsity).
	SizeWeight float64
	// EntropyWeight pushes mask entries towards 0/1.
	EntropyWeight float64
	Seed          int64
}

// DefaultExplainerConfig returns the standard GNNExplainer settings.
func DefaultExplainerConfig() ExplainerConfig {
	return ExplainerConfig{Epochs: 80, LR: 0.05, SizeWeight: 0.02, EntropyWeight: 0.01, Seed: 1}
}

// Explanation is the result: the subgraph edges ranked by learned
// importance.
type Explanation struct {
	Target graph.NodeID
	Class  int
	// Edges and Weights are parallel, sorted by descending weight.
	Edges   [][2]graph.NodeID
	Weights []float64
	// Nodes ranks subgraph nodes by the sum of their incident edge
	// weights, descending (the "top-15 most important nodes" view of
	// Fig. 10).
	Nodes       []graph.NodeID
	NodeWeights []float64
}

// Explain learns an edge mask over the L-hop neighbourhood of target that
// preserves the model's prediction for the given class (pass the model's
// own prediction to explain its behaviour, or the true label to probe
// counterfactuals). The mask optimisation itself (theta, Adam moments,
// edge gradients) always runs in float64; only the model forward/backward
// runs at the model's element type.
func (m *ModelOf[T]) Explain(in InputOf[T], visible map[graph.NodeID]int, target graph.NodeID, class int, cfg ExplainerConfig) *Explanation {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 80
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.05
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// L-hop subgraph around the target.
	dist := graph.BFSDistances(in.Adj, target, m.Config.Layers)
	inSub := make([]bool, len(in.Adj))
	for id, d := range dist {
		if d >= 0 {
			inSub[id] = true
		}
	}
	// Collect unique undirected edges inside the subgraph and index them.
	type edgeKey struct{ a, b graph.NodeID }
	edgeIdx := make(map[edgeKey]int)
	var edges []edgeKey
	subAdj := make([][]graph.NodeID, len(in.Adj))
	adjEdge := make([][]int, len(in.Adj)) // parallel edge indexes
	for u := range in.Adj {
		if !inSub[u] {
			continue
		}
		for _, v := range in.Adj[u] {
			if !inSub[v] {
				continue
			}
			a, b := graph.NodeID(u), v
			if a > b {
				a, b = b, a
			}
			k := edgeKey{a, b}
			ei, ok := edgeIdx[k]
			if !ok {
				ei = len(edges)
				edgeIdx[k] = ei
				edges = append(edges, k)
			}
			subAdj[u] = append(subAdj[u], v)
			adjEdge[u] = append(adjEdge[u], ei)
		}
	}

	// Freeze the subgraph structure as a CSR once; each epoch only
	// re-weights its entries with the current mask. entryEdge maps CSR
	// entry positions back to edge indexes.
	sub := &maskedSub[T]{csr: sparse.Cast[T](sparse.FromAdj(subAdj)), adj: subAdj, adjEdge: adjEdge}
	sub.entryEdge = make([]int, sub.csr.NNZ())
	k := 0
	for u := range subAdj {
		for _, ei := range adjEdge[u] {
			sub.entryEdge[k] = ei
			k++
		}
	}

	theta := make([]float64, len(edges))
	for i := range theta {
		theta[i] = 1 + rng.NormFloat64()*0.1 // start near "keep everything"
	}
	mAdam := make([]float64, len(edges))
	vAdam := make([]float64, len(edges))

	for epoch := 1; epoch <= cfg.Epochs; epoch++ {
		w := make([]float64, len(edges))
		for i, t := range theta {
			w[i] = sigmoid(t)
		}
		probGrad, prob := m.maskedGrad(in, sub, w, visible, target, class)
		_ = prob
		// Total gradient: d(-log p)/dθ + regularisers.
		for i := range theta {
			s := sigmoid(theta[i])
			dwdTheta := s * (1 - s)
			g := probGrad[i]
			g += cfg.SizeWeight
			// Entropy -(s log s + (1-s) log(1-s)); d/ds = log((1-s)/s).
			if s > 1e-6 && s < 1-1e-6 {
				g += cfg.EntropyWeight * math.Log((1-s)/s) * -1
			}
			g *= dwdTheta
			// Adam update.
			mAdam[i] = 0.9*mAdam[i] + 0.1*g
			vAdam[i] = 0.999*vAdam[i] + 0.001*g*g
			mh := mAdam[i] / (1 - math.Pow(0.9, float64(epoch)))
			vh := vAdam[i] / (1 - math.Pow(0.999, float64(epoch)))
			theta[i] -= cfg.LR * mh / (math.Sqrt(vh) + 1e-8)
		}
	}

	// Rank edges and nodes.
	weights := make([]float64, len(edges))
	for i, t := range theta {
		weights[i] = sigmoid(t)
	}
	order := make([]int, len(edges))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return weights[order[a]] > weights[order[b]] })

	exp := &Explanation{Target: target, Class: class}
	nodeW := make(map[graph.NodeID]float64)
	for _, ei := range order {
		e := edges[ei]
		exp.Edges = append(exp.Edges, [2]graph.NodeID{e.a, e.b})
		exp.Weights = append(exp.Weights, weights[ei])
		nodeW[e.a] += weights[ei]
		nodeW[e.b] += weights[ei]
	}
	for id := range nodeW {
		exp.Nodes = append(exp.Nodes, id)
	}
	sort.Slice(exp.Nodes, func(a, b int) bool { return nodeW[exp.Nodes[a]] > nodeW[exp.Nodes[b]] })
	for _, id := range exp.Nodes {
		exp.NodeWeights = append(exp.NodeWeights, nodeW[id])
	}
	return exp
}

// maskedSub is the frozen L-hop subgraph the explainer optimises over:
// its CSR structure (re-weighted each epoch), the adjacency lists and
// per-position edge indexes for the edge-gradient reduction, and the map
// from CSR entry position to edge index.
type maskedSub[T mat.Float] struct {
	csr       *sparse.CSR[T]
	adj       [][]graph.NodeID
	adjEdge   [][]int
	entryEdge []int
}

// maskedGrad runs a forward pass with edge-weighted aggregation and
// returns d(-log p_class(target))/dw per edge, plus the probability.
func (m *ModelOf[T]) maskedGrad(in InputOf[T], sub *maskedSub[T], w []float64, visible map[graph.NodeID]int, target graph.NodeID, class int) ([]float64, float64) {
	subAdj, adjEdge := sub.adj, sub.adjEdge
	n := len(subAdj)

	// Forward with weighted means. sumw[v] caches the normaliser; the
	// aggregation itself is the shared CSR kernel with the mask as entry
	// values and 1/sumw as the row scale (rows below the epsilon stay
	// zero, as in the loop nest this replaced).
	h0 := in.Enc.Clone()
	for ev, c := range visible {
		if c >= 0 && c < m.classes {
			row := h0.Row(int(ev))
			mat.Axpy(1, m.labelEmb.w.W.Row(c), row)
			mat.Axpy(1, m.labelEmb.b.W.Row(0), row)
		}
	}
	sumw := make([]float64, n)
	for v := range subAdj {
		for _, ei := range adjEdge[v] {
			sumw[v] += w[ei]
		}
	}
	val := make([]T, len(sub.entryEdge))
	for k, ei := range sub.entryEdge {
		val[k] = T(w[ei])
	}
	scale := make([]T, n)
	for v, s := range sumw {
		if s > 1e-12 {
			scale[v] = T(1 / s)
		}
	}
	wOp := sub.csr.WithValues(val, scale)
	weightedMean := func(h *mat.Dense[T]) *mat.Dense[T] { return wOp.Mul(h) }

	type layerCache struct {
		hPrev, mean, out *mat.Dense[T]
		mask             *mat.Dense[T]
		norms            []float64
	}
	var caches []layerCache
	cur := h0
	for li, layer := range m.layers {
		mean := weightedMean(cur)
		z := layer.forward(mean)
		mat.AddInPlace(z, mat.MatMul(cur, m.selfW[li].W))
		lc := layerCache{hPrev: cur, mean: mean}
		if li == len(m.layers)-1 {
			lc.out = z
		} else {
			a, mask := reluForward(z)
			lc.mask = mask
			lc.norms = make([]float64, n)
			for i := 0; i < n; i++ {
				row := a.Row(i)
				nm := mat.Norm2(row)
				lc.norms[i] = nm
				if nm > 0 {
					invN := T(1 / nm)
					for j := range row {
						row[j] *= invN
					}
				}
			}
			lc.out = a
		}
		caches = append(caches, lc)
		cur = lc.out
	}
	logits := cur.Row(int(target))
	probs := make([]T, len(logits))
	mat.Softmax(probs, logits)
	p := float64(probs[class])

	// Backward: d(-log p)/dlogits = probs - onehot(class), only on the
	// target row.
	g := mat.NewOf[T](n, m.classes)
	gRow := g.Row(int(target))
	copy(gRow, probs)
	gRow[class] -= 1

	edgeGrad := make([]float64, len(w))
	for li := len(m.layers) - 1; li >= 0; li-- {
		lc := caches[li]
		if li < len(m.layers)-1 {
			y := lc.out
			out := mat.NewOf[T](g.Rows, g.Cols)
			for i := 0; i < g.Rows; i++ {
				if lc.norms[i] == 0 {
					continue
				}
				gr, yr, or := g.Row(i), y.Row(i), out.Row(i)
				dot := mat.Dot(gr, yr)
				invN := 1 / lc.norms[i]
				for j := range or {
					or[j] = T((float64(gr[j]) - dot*float64(yr[j])) * invN)
				}
			}
			g = mat.Hadamard(out, lc.mask)
		}
		// Through the linear layer (no parameter grads needed here).
		gMean := mat.MatMulTransB(g, m.layers[li].w.W)
		// Edge gradients through the weighted mean:
		// dL/dw_e += g_mean[v] . (h_prev[n] - mean[v]) / sumw[v]. The
		// reduction accumulates in float64 at every precision.
		for v := range subAdj {
			if sumw[v] <= 1e-12 {
				continue
			}
			gv := gMean.Row(v)
			mv := lc.mean.Row(v)
			inv := 1 / sumw[v]
			for k, nb := range subAdj[v] {
				hn := lc.hPrev.Row(int(nb))
				d := 0.0
				for j := range gv {
					d += float64(gv[j]) * (float64(hn[j]) - float64(mv[j]))
				}
				edgeGrad[adjEdge[v][k]] += d * inv
			}
		}
		// Node gradients to the previous layer: weighted-mean transpose
		// (the CSR adjoint kernel) plus the self path.
		if li > 0 {
			prev := mat.MatMulTransB(g, m.selfW[li].W)
			g = mat.AddInPlace(prev, wOp.MulTrans(gMean))
		}
	}
	return edgeGrad, p
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
