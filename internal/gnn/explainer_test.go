package gnn

import (
	"testing"

	"trail/internal/graph"
)

func TestExplainerWeightsAndRanking(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 3, 10, 5)
	var train []graph.NodeID
	for _, evs := range byClass {
		train = append(train, evs...)
	}
	m, err := Train(in, train, Config{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	target := byClass[1][0]
	visible := map[graph.NodeID]int{}
	for _, ev := range train {
		if ev != target {
			visible[ev] = in.Labels[ev]
		}
	}
	pred := m.Predict(in, visible, []graph.NodeID{target})[0]

	cfg := DefaultExplainerConfig()
	cfg.Epochs = 30
	exp := m.Explain(in, visible, target, pred, cfg)

	if len(exp.Edges) == 0 || len(exp.Nodes) == 0 {
		t.Fatal("empty explanation")
	}
	if len(exp.Edges) != len(exp.Weights) {
		t.Fatal("edges/weights length mismatch")
	}
	for i, w := range exp.Weights {
		if w < 0 || w > 1 {
			t.Fatalf("edge weight %v out of [0,1]", w)
		}
		if i > 0 && w > exp.Weights[i-1]+1e-9 {
			t.Fatal("edge weights not sorted descending")
		}
	}
	for i := 1; i < len(exp.NodeWeights); i++ {
		if exp.NodeWeights[i] > exp.NodeWeights[i-1]+1e-9 {
			t.Fatal("node weights not sorted descending")
		}
	}
	// Every explained edge must lie within the target's L-hop
	// neighbourhood.
	dist := graph.BFSDistances(in.Adj, target, m.Config.Layers)
	for _, e := range exp.Edges {
		if dist[e[0]] < 0 || dist[e[1]] < 0 {
			t.Fatalf("edge %v outside the %d-hop subgraph", e, m.Config.Layers)
		}
	}
}

func TestExplainerMaskActuallyDiscriminates(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 2, 10, 4)
	var train []graph.NodeID
	for _, evs := range byClass {
		train = append(train, evs...)
	}
	m, err := Train(in, train, Config{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	target := byClass[0][0]
	pred := m.Predict(in, nil, []graph.NodeID{target})[0]
	cfg := DefaultExplainerConfig()
	cfg.Epochs = 50
	cfg.SizeWeight = 0.05
	exp := m.Explain(in, nil, target, pred, cfg)
	// With a sparsity penalty, the optimiser must separate weights: the
	// spread between strongest and weakest retained edge should be real.
	if len(exp.Weights) >= 2 {
		spread := exp.Weights[0] - exp.Weights[len(exp.Weights)-1]
		if spread < 0.01 {
			t.Fatalf("mask did not discriminate: spread %.4f", spread)
		}
	}
}
