package gnn

import (
	"errors"
	"math"
	"math/rand"

	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/ml"
	"trail/internal/sparse"
)

// GCN implements the graph convolutional network of the paper's Eq. 2
// (Kipf & Welling):
//
//	H^l = σ( D^{-1/2} Ã D^{-1/2} H^{l-1} W^l + b^l ),  Ã = A + I.
//
// The paper notes GCNs "require the entire graph to be held in memory"
// and opts for GraphSAGE; this implementation exists as the comparison
// baseline for the SAGE-vs-GCN ablation bench. The propagation operator
// is symmetric, which keeps backpropagation simple: the adjoint of S is
// S itself.
type GCN struct {
	Config   Config
	classes  int
	labelEmb *linear
	layers   []*linear
}

// NewGCN initialises a GCN with the same configuration shape as the SAGE
// model (MaxNeighbors is ignored; GCN is always full-graph).
func NewGCN(cfg Config, classes int) *GCN {
	if cfg.Layers < 1 {
		cfg.Layers = 2
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 64
	}
	if cfg.Encoding <= 0 {
		cfg.Encoding = 64
	}
	if cfg.LR <= 0 {
		cfg.LR = 5e-3
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &GCN{Config: cfg, classes: classes}
	g.labelEmb = newLinear(rng, classes, cfg.Encoding)
	prev := cfg.Encoding
	for l := 0; l < cfg.Layers; l++ {
		out := cfg.Hidden
		if l == cfg.Layers-1 {
			out = classes
		}
		g.layers = append(g.layers, newLinear(rng, prev, out))
		prev = out
	}
	return g
}

func (g *GCN) params() []*ml.Param {
	ps := g.labelEmb.params()
	for _, l := range g.layers {
		ps = append(ps, l.params()...)
	}
	return ps
}

// gcnOperator builds the propagation operator S = D^{-1/2} Ã D^{-1/2}
// (Ã = A + I) as a CSR matrix from the input's shared adjacency
// snapshot; forward and backward are then plain SpMM calls (the adjoint
// of the symmetric S is S itself).
func gcnOperator(in Input) *sparse.Matrix {
	return inputCSR(in).SymNormalizedWithSelfLoops()
}

// CloneGCN deep-copies the model (weights and config), mirroring
// (*Model).CloneModel for the checkpoint layer.
func (g *GCN) CloneGCN() *GCN {
	cp := &GCN{Config: g.Config, classes: g.classes}
	cloneLinear := func(l *linear) *linear {
		return &linear{
			w: &ml.Param{W: l.w.W.Clone(), G: mat.New(l.w.G.Rows, l.w.G.Cols)},
			b: &ml.Param{W: l.b.W.Clone(), G: mat.New(l.b.G.Rows, l.b.G.Cols)},
		}
	}
	cp.labelEmb = cloneLinear(g.labelEmb)
	for _, l := range g.layers {
		cp.layers = append(cp.layers, cloneLinear(l))
	}
	return cp
}

// TrainGCN fits a GCN with the same label-visibility protocol as the SAGE
// trainer.
func TrainGCN(in Input, trainEvents []graph.NodeID, cfg Config) (*GCN, error) {
	return TrainGCNCtx(in, trainEvents, cfg, TrainOpts{})
}

// TrainGCNCtx is TrainGCN with the crash-safety knobs of TrainCtx:
// cancellable context, epoch-granular checkpoint hook, and bit-identical
// resume from a checkpointed TrainState.
func TrainGCNCtx(in Input, trainEvents []graph.NodeID, cfg Config, opts TrainOpts) (*GCN, error) {
	st, err := opts.resumeFor(archGCN)
	if err != nil {
		return nil, err
	}
	var g *GCN
	if st != nil {
		if st.GCN == nil {
			return nil, errors.New("gnn: resume state carries no GCN weights")
		}
		g = st.GCN.CloneGCN()
	} else {
		g = NewGCN(cfg, in.Classes)
	}
	if len(trainEvents) < 2 {
		return nil, errors.New("gnn: need at least 2 training events")
	}
	if in.Enc.Cols != g.Config.Encoding {
		return nil, errors.New("gnn: encoding width mismatch")
	}
	ctx := opts.ctx()
	src := ml.NewCountingSource(g.Config.Seed + 31)
	ps := g.params()
	opt := ml.NewAdam(g.Config.LR, ps)
	start := 0
	if st != nil {
		start = st.Epoch
		src = ml.RestoreRNG(st.RNG)
		if err := opt.Restore(st.Opt); err != nil {
			return nil, err
		}
	}
	rng := rand.New(src)
	s := gcnOperator(in)

	checkpoint := func(completed int) error {
		if opts.Checkpoint == nil {
			return nil
		}
		return opts.Checkpoint(&TrainState{
			Arch:  archGCN,
			Epoch: completed,
			RNG:   src.State(),
			Opt:   opt.State(),
			GCN:   g.CloneGCN(),
		})
	}

	scr := newGCNScratch(g, len(trainEvents))
	defer scr.ws.Release()
	order := scr.order
	bestLoss := math.Inf(1)
	var bestW []*mat.Matrix
	for epoch := start; epoch < g.Config.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			if cerr := checkpoint(epoch); cerr != nil {
				return nil, cerr
			}
			return nil, err
		}
		// Identity reset before the shuffle keeps the permutation a pure
		// function of RNG position (see the SAGE fit loop).
		for i := range order {
			order[i] = i
		}
		mat.Shuffle(rng, order)
		half := len(order) / 2
		epochLoss, passes := 0.0, 0
		for pass := 0; pass < 2; pass++ {
			clear(scr.visible)
			scr.targets = scr.targets[:0]
			for i, oi := range order {
				ev := trainEvents[oi]
				if (i < half) == (pass == 0) {
					scr.visible[ev] = in.Labels[ev]
				} else {
					scr.targets = append(scr.targets, ev)
				}
			}
			if len(scr.targets) == 0 {
				continue
			}
			loss, err := g.step(in, s, scr, ps, opt, epoch)
			if err != nil {
				if bestW != nil {
					ml.RestoreParams(ps, bestW)
				}
				return g, err
			}
			epochLoss += loss
			passes++
		}
		if passes > 0 {
			if err := ml.CheckLoss(epoch, epochLoss/float64(passes)); err != nil {
				if bestW != nil {
					ml.RestoreParams(ps, bestW)
				}
				return g, err
			}
			if l := epochLoss / float64(passes); l < bestLoss {
				bestLoss = l
				if bestW == nil {
					bestW = ml.CloneParams(ps)
				} else if err := ml.CopyParams(bestW, ps); err != nil {
					return nil, err
				}
			}
		}
		if (epoch+1)%opts.every() == 0 {
			if err := checkpoint(epoch + 1); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

type gcnActs struct {
	inputs []*mat.Matrix // S·h fed into each linear layer
	masks  []*mat.Matrix
	out    *mat.Matrix
}

// gcnScratch mirrors sageScratch: one workspace plus the small reusable
// slices, so steady-state epochs allocate nothing.
type gcnScratch struct {
	ws      *mat.Workspace
	acts    gcnActs
	probs   []float64
	order   []int
	targets []graph.NodeID
	visible map[graph.NodeID]int
	lg      labelGradScratch
}

func newGCNScratch(g *GCN, nTrain int) *gcnScratch {
	L := len(g.layers)
	return &gcnScratch{
		ws: newTrainWorkspace(),
		acts: gcnActs{
			inputs: make([]*mat.Matrix, L),
			masks:  make([]*mat.Matrix, L),
		},
		probs:   make([]float64, g.classes),
		order:   make([]int, nTrain),
		targets: make([]graph.NodeID, 0, nTrain),
		visible: make(map[graph.NodeID]int, nTrain/2+1),
		lg:      newLabelGradScratch(g.classes, nTrain),
	}
}

func (g *GCN) forward(in Input, s *sparse.Matrix, visible map[graph.NodeID]int, ws *mat.Workspace, acts *gcnActs) *gcnActs {
	h := ws.GetDirty(in.Enc.Rows, in.Enc.Cols)
	mat.CopyInto(h, in.Enc)
	for ev, c := range visible {
		if c >= 0 && c < g.classes {
			row := h.Row(int(ev))
			mat.Axpy(1, g.labelEmb.w.W.Row(c), row)
			mat.Axpy(1, g.labelEmb.b.W.Row(0), row)
		}
	}
	for li, layer := range g.layers {
		prop := ws.GetDirty(s.Rows, h.Cols)
		s.SpMMInto(prop, h)
		acts.inputs[li] = prop
		z := layer.forwardWS(ws, prop)
		if li == len(g.layers)-1 {
			acts.masks[li] = nil
			acts.out = z
			h = z
			continue
		}
		mask := ws.GetDirty(z.Rows, z.Cols)
		mat.ReLUMaskInto(z, mask)
		acts.masks[li] = mask
		h = z
	}
	return acts
}

func (g *GCN) step(in Input, s *sparse.Matrix, scr *gcnScratch, ps []*ml.Param, opt *ml.Adam, epoch int) (float64, error) {
	scr.ws.Reset()
	acts := g.forward(in, s, scr.visible, scr.ws, &scr.acts)
	logits := acts.out

	grad := scr.ws.Get(logits.Rows, logits.Cols)
	loss := mat.SoftmaxCrossEntropyInto(grad, logits, scr.targets, in.Labels, scr.probs)

	gr := grad
	for li := len(g.layers) - 1; li >= 0; li-- {
		if li < len(g.layers)-1 {
			mat.HadamardInPlace(gr, acts.masks[li])
		}
		gr = g.layers[li].backwardWS(scr.ws, acts.inputs[li], gr)
		// Adjoint of the symmetric propagation is the propagation itself.
		gp := scr.ws.GetDirty(s.Rows, gr.Cols)
		s.SpMMInto(gp, gr)
		gr = gp
	}
	// Shared-class rows accumulate in a fixed order so training stays
	// bit-reproducible (see labelGradScratch).
	scr.lg.accumulate(gr, scr.visible, g.labelEmb, g.classes)
	if norm := ml.ClipGrads(ps, g.Config.ClipNorm); math.IsNaN(norm) || math.IsInf(norm, 0) {
		return loss, &ml.DivergenceError{Quantity: "gradient", Epoch: epoch, Value: norm}
	}
	opt.Step()
	return loss, nil
}

// Predict returns the argmax attribution per query event. All forward
// scratch is pooled; only the returned slice is allocated.
func (g *GCN) Predict(in Input, visible map[graph.NodeID]int, queries []graph.NodeID) []int {
	ws := mat.NewWorkspace()
	defer ws.Release()
	acts := gcnActs{
		inputs: make([]*mat.Matrix, len(g.layers)),
		masks:  make([]*mat.Matrix, len(g.layers)),
	}
	g.forward(in, gcnOperator(in), visible, ws, &acts)
	out := make([]int, len(queries))
	for i, q := range queries {
		out[i] = mat.Argmax(acts.out.Row(int(q)))
	}
	return out
}
