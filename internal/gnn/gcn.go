package gnn

import (
	"errors"
	"math"
	"math/rand"

	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/ml"
	"trail/internal/sparse"
)

// GCNOf implements the graph convolutional network of the paper's Eq. 2
// (Kipf & Welling) at element type T:
//
//	H^l = σ( D^{-1/2} Ã D^{-1/2} H^{l-1} W^l + b^l ),  Ã = A + I.
//
// The paper notes GCNs "require the entire graph to be held in memory"
// and opts for GraphSAGE; this implementation exists as the comparison
// baseline for the SAGE-vs-GCN ablation bench. The propagation operator
// is symmetric, which keeps backpropagation simple: the adjoint of S is
// S itself.
type GCNOf[T mat.Float] struct {
	Config   Config
	classes  int
	labelEmb *linear[T]
	layers   []*linear[T]
}

// GCN is the float64 reference instantiation of GCNOf.
type GCN = GCNOf[float64]

// NewGCN initialises a float64 GCN with the same configuration shape as
// the SAGE model (MaxNeighbors is ignored; GCN is always full-graph).
func NewGCN(cfg Config, classes int) *GCN { return NewGCNOf[float64](cfg, classes) }

// NewGCNOf initialises a GCN at element type T.
func NewGCNOf[T mat.Float](cfg Config, classes int) *GCNOf[T] {
	if cfg.Layers < 1 {
		cfg.Layers = 2
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 64
	}
	if cfg.Encoding <= 0 {
		cfg.Encoding = 64
	}
	if cfg.LR <= 0 {
		cfg.LR = 5e-3
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &GCNOf[T]{Config: cfg, classes: classes}
	g.labelEmb = newLinear[T](rng, classes, cfg.Encoding)
	prev := cfg.Encoding
	for l := 0; l < cfg.Layers; l++ {
		out := cfg.Hidden
		if l == cfg.Layers-1 {
			out = classes
		}
		g.layers = append(g.layers, newLinear[T](rng, prev, out))
		prev = out
	}
	return g
}

func (g *GCNOf[T]) params() []*ml.ParamOf[T] {
	ps := g.labelEmb.params()
	for _, l := range g.layers {
		ps = append(ps, l.params()...)
	}
	return ps
}

// gcnOperator builds the propagation operator S = D^{-1/2} Ã D^{-1/2}
// (Ã = A + I) as a CSR matrix from the input's shared adjacency
// snapshot; forward and backward are then plain SpMM calls (the adjoint
// of the symmetric S is S itself).
func gcnOperator[T mat.Float](in InputOf[T]) *sparse.CSR[T] {
	return inputCSR(in).SymNormalizedWithSelfLoops()
}

// CloneGCN deep-copies the model (weights and config), mirroring
// (*ModelOf).CloneModel for the checkpoint layer.
func (g *GCNOf[T]) CloneGCN() *GCNOf[T] {
	cp := &GCNOf[T]{Config: g.Config, classes: g.classes}
	cp.labelEmb = cloneLinear(g.labelEmb)
	for _, l := range g.layers {
		cp.layers = append(cp.layers, cloneLinear(l))
	}
	return cp
}

// TrainGCN fits a GCN with the same label-visibility protocol as the SAGE
// trainer.
func TrainGCN[T mat.Float](in InputOf[T], trainEvents []graph.NodeID, cfg Config) (*GCNOf[T], error) {
	return TrainGCNCtx(in, trainEvents, cfg, TrainOptsOf[T]{})
}

// TrainGCNCtx is TrainGCN with the crash-safety knobs of TrainCtx:
// cancellable context, epoch-granular checkpoint hook, and bit-identical
// resume from a checkpointed TrainState.
func TrainGCNCtx[T mat.Float](in InputOf[T], trainEvents []graph.NodeID, cfg Config, opts TrainOptsOf[T]) (*GCNOf[T], error) {
	st, err := opts.resumeFor(archGCN)
	if err != nil {
		return nil, err
	}
	var g *GCNOf[T]
	if st != nil {
		if st.GCN == nil {
			return nil, errors.New("gnn: resume state carries no GCN weights")
		}
		g = st.GCN.CloneGCN()
	} else {
		g = NewGCNOf[T](cfg, in.Classes)
	}
	if len(trainEvents) < 2 {
		return nil, errors.New("gnn: need at least 2 training events")
	}
	if in.Enc.Cols != g.Config.Encoding {
		return nil, errors.New("gnn: encoding width mismatch")
	}
	ctx := opts.ctx()
	src := ml.NewCountingSource(g.Config.Seed + 31)
	ps := g.params()
	opt := ml.NewAdamOf(g.Config.LR, ps)
	start := 0
	if st != nil {
		start = st.Epoch
		src = ml.RestoreRNG(st.RNG)
		if err := opt.Restore(st.Opt); err != nil {
			return nil, err
		}
	}
	rng := rand.New(src)
	s := gcnOperator(in)

	checkpoint := func(completed int) error {
		if opts.Checkpoint == nil {
			return nil
		}
		return opts.Checkpoint(&TrainStateOf[T]{
			Arch:  archGCN,
			Epoch: completed,
			RNG:   src.State(),
			Opt:   opt.State(),
			GCN:   g.CloneGCN(),
		})
	}

	scr := newGCNScratch(g, len(trainEvents))
	defer scr.ws.Release()
	order := scr.order
	bestLoss := math.Inf(1)
	var bestW []*mat.Dense[T]
	for epoch := start; epoch < g.Config.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			if cerr := checkpoint(epoch); cerr != nil {
				return nil, cerr
			}
			return nil, err
		}
		// Identity reset before the shuffle keeps the permutation a pure
		// function of RNG position (see the SAGE fit loop).
		for i := range order {
			order[i] = i
		}
		mat.Shuffle(rng, order)
		half := len(order) / 2
		epochLoss, passes := 0.0, 0
		for pass := 0; pass < 2; pass++ {
			clear(scr.visible)
			scr.targets = scr.targets[:0]
			for i, oi := range order {
				ev := trainEvents[oi]
				if (i < half) == (pass == 0) {
					scr.visible[ev] = in.Labels[ev]
				} else {
					scr.targets = append(scr.targets, ev)
				}
			}
			if len(scr.targets) == 0 {
				continue
			}
			loss, err := g.step(in, s, scr, ps, opt, epoch)
			if err != nil {
				if bestW != nil {
					ml.RestoreParams(ps, bestW)
				}
				return g, err
			}
			epochLoss += loss
			passes++
		}
		if passes > 0 {
			if err := ml.CheckLoss(epoch, epochLoss/float64(passes)); err != nil {
				if bestW != nil {
					ml.RestoreParams(ps, bestW)
				}
				return g, err
			}
			if l := epochLoss / float64(passes); l < bestLoss {
				bestLoss = l
				if bestW == nil {
					bestW = ml.CloneParams(ps)
				} else if err := ml.CopyParams(bestW, ps); err != nil {
					return nil, err
				}
			}
		}
		if (epoch+1)%opts.every() == 0 {
			if err := checkpoint(epoch + 1); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

type gcnActs[T mat.Float] struct {
	inputs []*mat.Dense[T] // S·h fed into each linear layer
	masks  []*mat.Dense[T]
	out    *mat.Dense[T]
}

// gcnScratch mirrors sageScratch: one workspace plus the small reusable
// slices, so steady-state epochs allocate nothing.
type gcnScratch[T mat.Float] struct {
	ws      *mat.WorkspaceOf[T]
	acts    gcnActs[T]
	probs   []T
	order   []int
	targets []graph.NodeID
	visible map[graph.NodeID]int
	lg      labelGradScratch[T]
}

func newGCNScratch[T mat.Float](g *GCNOf[T], nTrain int) *gcnScratch[T] {
	L := len(g.layers)
	return &gcnScratch[T]{
		ws: trainWorkspaceOf[T](),
		acts: gcnActs[T]{
			inputs: make([]*mat.Dense[T], L),
			masks:  make([]*mat.Dense[T], L),
		},
		probs:   make([]T, g.classes),
		order:   make([]int, nTrain),
		targets: make([]graph.NodeID, 0, nTrain),
		visible: make(map[graph.NodeID]int, nTrain/2+1),
		lg:      newLabelGradScratch[T](g.classes, nTrain),
	}
}

// forward runs the propagation stack. When perm is non-nil the pass runs
// in the permuted vertex order (inputs gathered, visible labels
// remapped), mirroring the SAGE forwardInfer contract; training always
// passes nil.
func (g *GCNOf[T]) forward(in InputOf[T], s *sparse.CSR[T], perm *sparse.Permutation, visible map[graph.NodeID]int, ws *mat.WorkspaceOf[T], acts *gcnActs[T]) *gcnActs[T] {
	h := ws.GetDirty(in.Enc.Rows, in.Enc.Cols)
	if perm != nil {
		sparse.GatherRowsInto(perm, h, in.Enc)
	} else {
		mat.CopyInto(h, in.Enc)
	}
	for ev, c := range visible {
		if c >= 0 && c < g.classes {
			r := int(ev)
			if perm != nil {
				r = int(perm.Inv[ev])
			}
			row := h.Row(r)
			mat.Axpy(1, g.labelEmb.w.W.Row(c), row)
			mat.Axpy(1, g.labelEmb.b.W.Row(0), row)
		}
	}
	for li, layer := range g.layers {
		prop := ws.GetDirty(s.Rows, h.Cols)
		s.SpMMInto(prop, h)
		acts.inputs[li] = prop
		z := layer.forwardWS(ws, prop)
		if li == len(g.layers)-1 {
			acts.masks[li] = nil
			acts.out = z
			h = z
			continue
		}
		mask := ws.GetDirty(z.Rows, z.Cols)
		mat.ReLUMaskInto(z, mask)
		acts.masks[li] = mask
		h = z
	}
	return acts
}

func (g *GCNOf[T]) step(in InputOf[T], s *sparse.CSR[T], scr *gcnScratch[T], ps []*ml.ParamOf[T], opt *ml.AdamOf[T], epoch int) (float64, error) {
	scr.ws.Reset()
	acts := g.forward(in, s, nil, scr.visible, scr.ws, &scr.acts)
	logits := acts.out

	grad := scr.ws.Get(logits.Rows, logits.Cols)
	loss := mat.SoftmaxCrossEntropyInto(grad, logits, scr.targets, in.Labels, scr.probs)

	gr := grad
	for li := len(g.layers) - 1; li >= 0; li-- {
		if li < len(g.layers)-1 {
			mat.HadamardInPlace(gr, acts.masks[li])
		}
		gr = g.layers[li].backwardWS(scr.ws, acts.inputs[li], gr)
		// Adjoint of the symmetric propagation is the propagation itself.
		gp := scr.ws.GetDirty(s.Rows, gr.Cols)
		s.SpMMInto(gp, gr)
		gr = gp
	}
	// Shared-class rows accumulate in a fixed order so training stays
	// bit-reproducible (see labelGradScratch).
	scr.lg.accumulate(gr, scr.visible, g.labelEmb, g.classes)
	if norm := ml.ClipGrads(ps, g.Config.ClipNorm); math.IsNaN(norm) || math.IsInf(norm, 0) {
		return loss, &ml.DivergenceError{Quantity: "gradient", Epoch: epoch, Value: norm}
	}
	opt.Step()
	return loss, nil
}

// Predict returns the argmax attribution per query event. All forward
// scratch is pooled; only the returned slice is allocated. Large graphs
// run in the cache-reordered vertex order (bit-identical results; see
// inferOperator).
func (g *GCNOf[T]) Predict(in InputOf[T], visible map[graph.NodeID]int, queries []graph.NodeID) []int {
	ws := mat.NewWorkspaceOf[T]()
	defer ws.Release()
	acts := gcnActs[T]{
		inputs: make([]*mat.Dense[T], len(g.layers)),
		masks:  make([]*mat.Dense[T], len(g.layers)),
	}
	rs, perm := inputCSR(in).Reordered()
	g.forward(in, rs.SymNormalizedWithSelfLoops(), perm, visible, ws, &acts)
	out := make([]int, len(queries))
	for i, q := range queries {
		out[i] = mat.Argmax(acts.out.Row(queryRow(perm, q)))
	}
	return out
}
