package gnn

import (
	"errors"
	"math"
	"math/rand"

	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/ml"
	"trail/internal/sparse"
)

// GCN implements the graph convolutional network of the paper's Eq. 2
// (Kipf & Welling):
//
//	H^l = σ( D^{-1/2} Ã D^{-1/2} H^{l-1} W^l + b^l ),  Ã = A + I.
//
// The paper notes GCNs "require the entire graph to be held in memory"
// and opts for GraphSAGE; this implementation exists as the comparison
// baseline for the SAGE-vs-GCN ablation bench. The propagation operator
// is symmetric, which keeps backpropagation simple: the adjoint of S is
// S itself.
type GCN struct {
	Config   Config
	classes  int
	labelEmb *linear
	layers   []*linear
}

// NewGCN initialises a GCN with the same configuration shape as the SAGE
// model (MaxNeighbors is ignored; GCN is always full-graph).
func NewGCN(cfg Config, classes int) *GCN {
	if cfg.Layers < 1 {
		cfg.Layers = 2
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 64
	}
	if cfg.Encoding <= 0 {
		cfg.Encoding = 64
	}
	if cfg.LR <= 0 {
		cfg.LR = 5e-3
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &GCN{Config: cfg, classes: classes}
	g.labelEmb = newLinear(rng, classes, cfg.Encoding)
	prev := cfg.Encoding
	for l := 0; l < cfg.Layers; l++ {
		out := cfg.Hidden
		if l == cfg.Layers-1 {
			out = classes
		}
		g.layers = append(g.layers, newLinear(rng, prev, out))
		prev = out
	}
	return g
}

func (g *GCN) params() []*ml.Param {
	ps := g.labelEmb.params()
	for _, l := range g.layers {
		ps = append(ps, l.params()...)
	}
	return ps
}

// gcnOperator builds the propagation operator S = D^{-1/2} Ã D^{-1/2}
// (Ã = A + I) as a CSR matrix from the input's shared adjacency
// snapshot; forward and backward are then plain SpMM calls (the adjoint
// of the symmetric S is S itself).
func gcnOperator(in Input) *sparse.Matrix {
	return inputCSR(in).SymNormalizedWithSelfLoops()
}

// CloneGCN deep-copies the model (weights and config), mirroring
// (*Model).CloneModel for the checkpoint layer.
func (g *GCN) CloneGCN() *GCN {
	cp := &GCN{Config: g.Config, classes: g.classes}
	cloneLinear := func(l *linear) *linear {
		return &linear{
			w: &ml.Param{W: l.w.W.Clone(), G: mat.New(l.w.G.Rows, l.w.G.Cols)},
			b: &ml.Param{W: l.b.W.Clone(), G: mat.New(l.b.G.Rows, l.b.G.Cols)},
		}
	}
	cp.labelEmb = cloneLinear(g.labelEmb)
	for _, l := range g.layers {
		cp.layers = append(cp.layers, cloneLinear(l))
	}
	return cp
}

// TrainGCN fits a GCN with the same label-visibility protocol as the SAGE
// trainer.
func TrainGCN(in Input, trainEvents []graph.NodeID, cfg Config) (*GCN, error) {
	return TrainGCNCtx(in, trainEvents, cfg, TrainOpts{})
}

// TrainGCNCtx is TrainGCN with the crash-safety knobs of TrainCtx:
// cancellable context, epoch-granular checkpoint hook, and bit-identical
// resume from a checkpointed TrainState.
func TrainGCNCtx(in Input, trainEvents []graph.NodeID, cfg Config, opts TrainOpts) (*GCN, error) {
	st, err := opts.resumeFor(archGCN)
	if err != nil {
		return nil, err
	}
	var g *GCN
	if st != nil {
		if st.GCN == nil {
			return nil, errors.New("gnn: resume state carries no GCN weights")
		}
		g = st.GCN.CloneGCN()
	} else {
		g = NewGCN(cfg, in.Classes)
	}
	if len(trainEvents) < 2 {
		return nil, errors.New("gnn: need at least 2 training events")
	}
	if in.Enc.Cols != g.Config.Encoding {
		return nil, errors.New("gnn: encoding width mismatch")
	}
	ctx := opts.ctx()
	src := ml.NewCountingSource(g.Config.Seed + 31)
	ps := g.params()
	opt := ml.NewAdam(g.Config.LR, ps)
	start := 0
	if st != nil {
		start = st.Epoch
		src = ml.RestoreRNG(st.RNG)
		if err := opt.Restore(st.Opt); err != nil {
			return nil, err
		}
	}
	rng := rand.New(src)
	s := gcnOperator(in)

	checkpoint := func(completed int) error {
		if opts.Checkpoint == nil {
			return nil
		}
		return opts.Checkpoint(&TrainState{
			Arch:  archGCN,
			Epoch: completed,
			RNG:   src.State(),
			Opt:   opt.State(),
			GCN:   g.CloneGCN(),
		})
	}

	order := make([]int, len(trainEvents))
	bestLoss := math.Inf(1)
	var bestW []*mat.Matrix
	for epoch := start; epoch < g.Config.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			if cerr := checkpoint(epoch); cerr != nil {
				return nil, cerr
			}
			return nil, err
		}
		// Identity reset before the shuffle keeps the permutation a pure
		// function of RNG position (see the SAGE fit loop).
		for i := range order {
			order[i] = i
		}
		mat.Shuffle(rng, order)
		half := len(order) / 2
		epochLoss, passes := 0.0, 0
		for pass := 0; pass < 2; pass++ {
			visible := make(map[graph.NodeID]int, half)
			var targets []graph.NodeID
			for i, oi := range order {
				ev := trainEvents[oi]
				if (i < half) == (pass == 0) {
					visible[ev] = in.Labels[ev]
				} else {
					targets = append(targets, ev)
				}
			}
			if len(targets) == 0 {
				continue
			}
			loss, err := g.step(in, s, visible, targets, ps, opt, epoch)
			if err != nil {
				if bestW != nil {
					ml.RestoreParams(ps, bestW)
				}
				return g, err
			}
			epochLoss += loss
			passes++
		}
		if passes > 0 {
			if err := ml.CheckLoss(epoch, epochLoss/float64(passes)); err != nil {
				if bestW != nil {
					ml.RestoreParams(ps, bestW)
				}
				return g, err
			}
			if l := epochLoss / float64(passes); l < bestLoss {
				bestLoss = l
				bestW = ml.CloneParams(ps)
			}
		}
		if (epoch+1)%opts.every() == 0 {
			if err := checkpoint(epoch + 1); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

type gcnActs struct {
	inputs []*mat.Matrix // S·h fed into each linear layer
	masks  []*mat.Matrix
	out    *mat.Matrix
}

func (g *GCN) forward(in Input, s *sparse.Matrix, visible map[graph.NodeID]int) *gcnActs {
	h := in.Enc.Clone()
	for ev, c := range visible {
		if c >= 0 && c < g.classes {
			row := h.Row(int(ev))
			mat.Axpy(1, g.labelEmb.w.W.Row(c), row)
			mat.Axpy(1, g.labelEmb.b.W.Row(0), row)
		}
	}
	acts := &gcnActs{}
	for li, layer := range g.layers {
		prop := s.Mul(h)
		acts.inputs = append(acts.inputs, prop)
		z := layer.forward(prop)
		if li == len(g.layers)-1 {
			acts.masks = append(acts.masks, nil)
			acts.out = z
			h = z
			continue
		}
		a, mask := reluForward(z)
		acts.masks = append(acts.masks, mask)
		h = a
	}
	return acts
}

func (g *GCN) step(in Input, s *sparse.Matrix, visible map[graph.NodeID]int, targets []graph.NodeID, ps []*ml.Param, opt *ml.Adam, epoch int) (float64, error) {
	acts := g.forward(in, s, visible)
	logits := acts.out

	grad := mat.New(logits.Rows, logits.Cols)
	inv := 1 / float64(len(targets))
	probs := make([]float64, logits.Cols)
	loss := 0.0
	for _, ev := range targets {
		mat.Softmax(probs, logits.Row(int(ev)))
		loss -= math.Log(probs[in.Labels[ev]] + 1e-300)
		dst := grad.Row(int(ev))
		copy(dst, probs)
		dst[in.Labels[ev]] -= 1
		for j := range dst {
			dst[j] *= inv
		}
	}
	loss *= inv

	gr := grad
	for li := len(g.layers) - 1; li >= 0; li-- {
		if li < len(g.layers)-1 {
			gr = mat.Hadamard(gr, acts.masks[li])
		}
		gr = g.layers[li].backward(acts.inputs[li], gr)
		// Adjoint of the symmetric propagation is the propagation itself.
		gr = s.Mul(gr)
	}
	// Ordered iteration: shared-class rows accumulate in a fixed order so
	// training stays bit-reproducible (see sortedVisible).
	for _, ev := range sortedVisible(visible) {
		if c := visible[ev]; c >= 0 && c < g.classes {
			row := gr.Row(int(ev))
			mat.Axpy(1, row, g.labelEmb.w.G.Row(c))
			mat.Axpy(1, row, g.labelEmb.b.G.Row(0))
		}
	}
	if norm := ml.ClipGrads(ps, g.Config.ClipNorm); math.IsNaN(norm) || math.IsInf(norm, 0) {
		return loss, &ml.DivergenceError{Quantity: "gradient", Epoch: epoch, Value: norm}
	}
	opt.Step()
	return loss, nil
}

// Predict returns the argmax attribution per query event.
func (g *GCN) Predict(in Input, visible map[graph.NodeID]int, queries []graph.NodeID) []int {
	acts := g.forward(in, gcnOperator(in), visible)
	out := make([]int, len(queries))
	for i, q := range queries {
		out[i] = mat.Argmax(acts.out.Row(int(q)))
	}
	return out
}
