package gnn

import (
	"math"
	"math/rand"
	"testing"

	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/ml"
)

func TestGCNLearnsClusteredAttribution(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 3, 12, 6)
	var train, test []graph.NodeID
	for _, evs := range byClass {
		train = append(train, evs[:9]...)
		test = append(test, evs[9:]...)
	}
	m, err := TrainGCN(in, train, Config{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	visible := map[graph.NodeID]int{}
	for _, ev := range train {
		visible[ev] = in.Labels[ev]
	}
	truth := make([]int, len(test))
	for i, ev := range test {
		truth[i] = in.Labels[ev]
	}
	if acc := ml.Accuracy(truth, m.Predict(in, visible, test)); acc < 0.7 {
		t.Fatalf("GCN test accuracy %.3f on trivially clustered graph", acc)
	}
}

func TestGCNTrainErrors(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 2, 3, 2)
	if _, err := TrainGCN(in, nil, Config{Layers: 2, Encoding: 16}); err == nil {
		t.Fatal("expected error with no training events")
	}
	bad := in
	bad.Enc = mat.New(len(in.Adj), 5)
	if _, err := TrainGCN(bad, byClass[0], Config{Layers: 2, Encoding: 16}); err == nil {
		t.Fatal("expected error on encoding width mismatch")
	}
}

func TestGCNPropagationIsSymmetric(t *testing.T) {
	// <Sx, y> == <x, Sy> must hold exactly for the normalised operator.
	g := graph.New()
	for i := 0; i < 7; i++ {
		g.Upsert(graph.KindIP, string(rune('a'+i)))
	}
	g.AddEdge(0, 1, graph.EdgeARecord)
	g.AddEdge(1, 2, graph.EdgeARecord)
	g.AddEdge(2, 3, graph.EdgeARecord)
	g.AddEdge(0, 4, graph.EdgeARecord)
	g.AddEdge(4, 5, graph.EdgeARecord)
	s := gcnOperator(Input{Adj: g.Adjacency(), CSR: g.CSR()})

	x := mat.RandNormal(newRng(3), 7, 3, 0, 1)
	y := mat.RandNormal(newRng(4), 7, 3, 0, 1)
	sx := s.Mul(x)
	sy := s.Mul(y)
	lhs := mat.Dot(sx.Data, y.Data)
	rhs := mat.Dot(x.Data, sy.Data)
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("propagation not symmetric: %v vs %v", lhs, rhs)
	}
}

func TestGCNPropPreservesConstantVector(t *testing.T) {
	// For a d-regular graph the normalised operator has eigenvector 1
	// with eigenvalue 1: a ring is 2-regular.
	g := graph.New()
	const n = 6
	for i := 0; i < n; i++ {
		g.Upsert(graph.KindIP, string(rune('a'+i)))
	}
	for i := 0; i < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n), graph.EdgeARecord)
	}
	s := gcnOperator(Input{Adj: g.Adjacency(), CSR: g.CSR()})
	x := mat.New(n, 1)
	x.Fill(1)
	out := s.Mul(x)
	for i := 0; i < n; i++ {
		if math.Abs(out.At(i, 0)-1) > 1e-12 {
			t.Fatalf("constant vector not preserved on regular graph: %v", out.At(i, 0))
		}
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
