package gnn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/ml"
)

func TestAutoencoderReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Low-rank data: 200 samples on a 5-dim subspace of R^40.
	basis := mat.RandNormal(rng, 5, 40, 0, 1)
	X := mat.New(200, 40)
	for i := 0; i < X.Rows; i++ {
		for b := 0; b < 5; b++ {
			mat.Axpy(rng.NormFloat64(), basis.Row(b), X.Row(i))
		}
	}
	ae := NewAutoencoder(AEConfig{Hidden: 32, Encoding: 8, LR: 1e-2, Epochs: 30, Batch: 32, Seed: 1})
	if err := ae.Fit(X); err != nil {
		t.Fatal(err)
	}
	errAfter := ae.ReconstructionError(X)
	// Variance of raw data per element ~5; a working AE on rank-5 data
	// must do far better than predicting zeros.
	base := 0.0
	for _, v := range X.Data {
		base += v * v
	}
	base /= float64(len(X.Data))
	if errAfter > base/4 {
		t.Fatalf("reconstruction error %.4f vs baseline %.4f", errAfter, base)
	}
	enc := ae.Encode(X)
	if enc.Rows != 200 || enc.Cols != 8 {
		t.Fatalf("encode shape %dx%d", enc.Rows, enc.Cols)
	}
}

func TestAutoencoderEmptyInput(t *testing.T) {
	ae := NewAutoencoder(DefaultAEConfig())
	if err := ae.Fit(mat.New(0, 4)); err == nil {
		t.Fatal("expected error for empty input")
	}
}

// buildToyAttributionGraph creates a graph of `classes` clusters: each
// cluster has events connected to class-specific IOC nodes whose encoded
// features carry the class signal. Returns the input and the event IDs by
// class.
func buildToyAttributionGraph(t *testing.T, classes, eventsPerClass, iocsPerClass int) (Input, [][]graph.NodeID) {
	t.Helper()
	g := graph.New()
	rng := rand.New(rand.NewSource(7))
	encDim := 16
	var encRows [][]float64
	byClass := make([][]graph.NodeID, classes)

	// Create IOC nodes per class with class-biased features.
	iocIDs := make([][]graph.NodeID, classes)
	for c := 0; c < classes; c++ {
		for k := 0; k < iocsPerClass; k++ {
			id, _ := g.Upsert(graph.KindIP, fmt.Sprintf("ip-%d-%d", c, k))
			iocIDs[c] = append(iocIDs[c], id)
			row := make([]float64, encDim)
			for j := range row {
				row[j] = rng.NormFloat64() * 0.3
			}
			row[c%encDim] += 2 // class signal
			encRows = append(encRows, row)
		}
	}
	for c := 0; c < classes; c++ {
		for e := 0; e < eventsPerClass; e++ {
			id, _ := g.Upsert(graph.KindEvent, fmt.Sprintf("ev-%d-%d", c, e))
			g.UpdateNode(id, func(n *graph.Node) { n.Label = c })
			byClass[c] = append(byClass[c], id)
			encRows = append(encRows, make([]float64, encDim)) // events: zero features
			// Connect to 3 of the class's IOCs.
			for k := 0; k < 3; k++ {
				tgt := iocIDs[c][rng.Intn(len(iocIDs[c]))]
				g.AddEdge(id, tgt, graph.EdgeInReport)
			}
		}
	}
	// encRows order must match node IDs: IOCs were created before events
	// per class, so rebuild by ID.
	enc := mat.New(g.NumNodes(), encDim)
	// Recreate deterministically: iterate nodes and refill from encRows
	// using the same creation order (Upsert assigns sequential IDs).
	for i, row := range encRows {
		copy(enc.Row(i), row)
	}

	in := Input{
		Adj:     g.Adjacency(),
		Enc:     enc,
		IsEvent: make([]bool, g.NumNodes()),
		Labels:  make([]int, g.NumNodes()),
		Classes: classes,
	}
	for i := range in.Labels {
		in.Labels[i] = -1
	}
	g.ForEachNode(func(n graph.Node) {
		if n.Kind == graph.KindEvent {
			in.IsEvent[n.ID] = true
			in.Labels[n.ID] = n.Label
		}
	})
	return in, byClass
}

func TestSAGELearnsClusteredAttribution(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 3, 12, 6)
	var train, test []graph.NodeID
	for _, evs := range byClass {
		train = append(train, evs[:9]...)
		test = append(test, evs[9:]...)
	}
	cfg := Config{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 60, Seed: 1}
	m, err := Train(in, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	visible := make(map[graph.NodeID]int, len(train))
	for _, ev := range train {
		visible[ev] = in.Labels[ev]
	}
	preds := m.Predict(in, visible, test)
	truth := make([]int, len(test))
	for i, ev := range test {
		truth[i] = in.Labels[ev]
	}
	if acc := ml.Accuracy(truth, preds); acc < 0.8 {
		t.Fatalf("SAGE test accuracy %.3f on trivially clustered graph", acc)
	}
}

func TestSAGEConfidenceAndProba(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 2, 8, 4)
	var train []graph.NodeID
	for _, evs := range byClass {
		train = append(train, evs...)
	}
	m, err := Train(in, train, Config{Layers: 2, Hidden: 8, Encoding: 16, LR: 1e-2, Epochs: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	probs := m.PredictProba(in, nil, train[:4])
	for i := 0; i < probs.Rows; i++ {
		if s := mat.Sum(probs.Row(i)); math.Abs(s-1) > 1e-6 {
			t.Fatalf("probs row sums to %v", s)
		}
	}
	conf := m.Confidence(in, nil, train[:4])
	for _, c := range conf {
		if c < 0.5-1e-9 || c > 1 {
			t.Fatalf("confidence %v out of range for 2 classes", c)
		}
	}
}

func TestSAGETrainErrors(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 2, 3, 2)
	if _, err := Train(in, nil, Config{Layers: 2, Encoding: 16}); err == nil {
		t.Fatal("expected error with no training events")
	}
	bad := in
	bad.Enc = mat.New(len(in.Adj), 7) // wrong width
	if _, err := Train(bad, byClass[0], Config{Layers: 2, Encoding: 16}); err == nil {
		t.Fatal("expected error on encoding width mismatch")
	}
}

func TestFineTuneImproves(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 3, 10, 5)
	var train, test []graph.NodeID
	for _, evs := range byClass {
		train = append(train, evs[:7]...)
		test = append(test, evs[7:]...)
	}
	cfg := Config{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 2, Seed: 1}
	m, err := Train(in, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]int, len(test))
	for i, ev := range test {
		truth[i] = in.Labels[ev]
	}
	before := ml.Accuracy(truth, m.Predict(in, nil, test))
	if err := m.FineTune(in, train, 60); err != nil {
		t.Fatal(err)
	}
	after := ml.Accuracy(truth, m.Predict(in, nil, test))
	if after < before-0.1 {
		t.Fatalf("fine-tuning regressed accuracy: %.3f -> %.3f", before, after)
	}
	if after < 0.6 {
		t.Fatalf("fine-tuned accuracy too low: %.3f", after)
	}
}

func TestNeighborMeanTransposeIsAdjoint(t *testing.T) {
	// <Ax, y> must equal <x, Aᵀy> for the aggregation operator.
	g := graph.New()
	for i := 0; i < 6; i++ {
		g.Upsert(graph.KindIP, fmt.Sprintf("n%d", i))
	}
	rng := rand.New(rand.NewSource(3))
	for e := 0; e < 8; e++ {
		u, v := graph.NodeID(rng.Intn(6)), graph.NodeID(rng.Intn(6))
		g.AddEdge(u, v, graph.EdgeInReport)
	}
	mean := meanOperator(Input{Adj: g.Adjacency(), CSR: g.CSR()})
	x := mat.RandNormal(rng, 6, 4, 0, 1)
	y := mat.RandNormal(rng, 6, 4, 0, 1)
	ax := mean.Mul(x)
	aty := mean.MulTrans(y)
	lhs := mat.Dot(ax.Data, y.Data)
	rhs := mat.Dot(x.Data, aty.Data)
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("aggregation not self-adjoint: %v vs %v", lhs, rhs)
	}
}

func TestSampleAdjCaps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	adj := [][]graph.NodeID{{1, 2, 3, 4, 5}, {0}, {0}, {0}, {0}, {0}}
	s := sampleAdj(rng, adj, 2)
	if len(s[0]) != 2 {
		t.Fatalf("cap not applied: %d", len(s[0]))
	}
	seen := map[graph.NodeID]bool{}
	for _, v := range s[0] {
		if seen[v] {
			t.Fatal("sampled with replacement")
		}
		seen[v] = true
	}
	if len(s[1]) != 1 {
		t.Fatal("small lists must be untouched")
	}
}
