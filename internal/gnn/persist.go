package gnn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"sort"

	"trail/internal/ckpt"
	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/ml"
)

// Checkpoint kinds and payload versions for the gnn artefacts. Bump a
// version when its wire struct changes shape; ckpt.Load then rejects old
// files with a typed *ckpt.VersionError instead of misdecoding them.
const (
	KindSAGE     = "gnn.sage"
	KindGCN      = "gnn.gcn"
	KindEncoders = "gnn.encoders"
	KindTrain    = "gnn.train"

	VersionSAGE     uint32 = 1
	VersionGCN      uint32 = 1
	VersionEncoders uint32 = 1
	VersionTrain    uint32 = 1
)

// --- wire structs ------------------------------------------------------------
//
// The models keep weights in unexported fields (they are not part of the
// training API), so gob needs explicit encoders. Only weights travel;
// gradient accumulators are rebuilt zeroed on decode.

type linearWire struct {
	W, B *mat.Matrix
}

func wireLinear(l *linear) linearWire { return linearWire{W: l.w.W, B: l.b.W} }

func (w linearWire) revive() *linear {
	return &linear{
		w: &ml.Param{W: w.W, G: mat.New(w.W.Rows, w.W.Cols)},
		b: &ml.Param{W: w.B, G: mat.New(w.B.Rows, w.B.Cols)},
	}
}

type modelWire struct {
	Config   Config
	Classes  int
	LabelEmb linearWire
	Layers   []linearWire
	SelfW    []*mat.Matrix
}

// GobEncode implements gob.GobEncoder for the GraphSAGE model.
func (m *Model) GobEncode() ([]byte, error) {
	w := modelWire{Config: m.Config, Classes: m.classes, LabelEmb: wireLinear(m.labelEmb)}
	for i, l := range m.layers {
		w.Layers = append(w.Layers, wireLinear(l))
		w.SelfW = append(w.SelfW, m.selfW[i].W)
	}
	return gobBytes(w)
}

// GobDecode implements gob.GobDecoder for the GraphSAGE model.
func (m *Model) GobDecode(b []byte) error {
	var w modelWire
	if err := gobValue(b, &w); err != nil {
		return err
	}
	if w.LabelEmb.W == nil || len(w.Layers) != len(w.SelfW) {
		return errors.New("gnn: malformed SAGE checkpoint payload")
	}
	m.Config, m.classes = w.Config, w.Classes
	m.labelEmb = w.LabelEmb.revive()
	m.layers, m.selfW = nil, nil
	for i, lw := range w.Layers {
		m.layers = append(m.layers, lw.revive())
		sw := w.SelfW[i]
		m.selfW = append(m.selfW, &ml.Param{W: sw, G: mat.New(sw.Rows, sw.Cols)})
	}
	return nil
}

type gcnWire struct {
	Config   Config
	Classes  int
	LabelEmb linearWire
	Layers   []linearWire
}

// GobEncode implements gob.GobEncoder for the GCN baseline.
func (g *GCN) GobEncode() ([]byte, error) {
	w := gcnWire{Config: g.Config, Classes: g.classes, LabelEmb: wireLinear(g.labelEmb)}
	for _, l := range g.layers {
		w.Layers = append(w.Layers, wireLinear(l))
	}
	return gobBytes(w)
}

// GobDecode implements gob.GobDecoder for the GCN baseline.
func (g *GCN) GobDecode(b []byte) error {
	var w gcnWire
	if err := gobValue(b, &w); err != nil {
		return err
	}
	if w.LabelEmb.W == nil {
		return errors.New("gnn: malformed GCN checkpoint payload")
	}
	g.Config, g.classes = w.Config, w.Classes
	g.labelEmb = w.LabelEmb.revive()
	g.layers = nil
	for _, lw := range w.Layers {
		g.layers = append(g.layers, lw.revive())
	}
	return nil
}

type aeWire struct {
	Config                 AEConfig
	InDim                  int
	Trained                bool
	Enc1, Enc2, Dec1, Dec2 linearWire
}

// GobEncode implements gob.GobEncoder for an autoencoder (trained or
// merely initialised; a never-initialised one round-trips as such).
func (a *Autoencoder) GobEncode() ([]byte, error) {
	w := aeWire{Config: a.Config, InDim: a.inDim, Trained: a.enc1 != nil}
	if w.Trained {
		w.Enc1, w.Enc2 = wireLinear(a.enc1), wireLinear(a.enc2)
		w.Dec1, w.Dec2 = wireLinear(a.dec1), wireLinear(a.dec2)
	}
	return gobBytes(w)
}

// GobDecode implements gob.GobDecoder for an autoencoder.
func (a *Autoencoder) GobDecode(b []byte) error {
	var w aeWire
	if err := gobValue(b, &w); err != nil {
		return err
	}
	a.Config, a.inDim = w.Config, w.InDim
	a.enc1, a.enc2, a.dec1, a.dec2 = nil, nil, nil, nil
	if w.Trained {
		if w.Enc1.W == nil || w.Enc2.W == nil || w.Dec1.W == nil || w.Dec2.W == nil {
			return errors.New("gnn: malformed autoencoder checkpoint payload")
		}
		a.enc1, a.enc2 = w.Enc1.revive(), w.Enc2.revive()
		a.dec1, a.dec2 = w.Dec1.revive(), w.Dec2.revive()
	}
	return nil
}

type encoderSetWire struct {
	Config  AEConfig
	Kinds   []graph.NodeKind
	AEs     []*Autoencoder
	Scalers []*ml.StandardScaler
}

// GobEncode implements gob.GobEncoder for an encoder set. Kinds are
// serialised in sorted order so the payload bytes are deterministic
// (gob's native map encoding follows Go's randomised iteration order).
func (s *EncoderSet) GobEncode() ([]byte, error) {
	w := encoderSetWire{Config: s.Config}
	for kind := range s.AEs {
		w.Kinds = append(w.Kinds, kind)
	}
	sort.Slice(w.Kinds, func(i, j int) bool { return w.Kinds[i] < w.Kinds[j] })
	for _, kind := range w.Kinds {
		w.AEs = append(w.AEs, s.AEs[kind])
		w.Scalers = append(w.Scalers, s.Scalers[kind])
	}
	return gobBytes(w)
}

// GobDecode implements gob.GobDecoder for an encoder set.
func (s *EncoderSet) GobDecode(b []byte) error {
	var w encoderSetWire
	if err := gobValue(b, &w); err != nil {
		return err
	}
	if len(w.Kinds) != len(w.AEs) || len(w.Kinds) != len(w.Scalers) {
		return errors.New("gnn: malformed encoder-set checkpoint payload")
	}
	s.Config = w.Config
	s.AEs = make(map[graph.NodeKind]*Autoencoder, len(w.Kinds))
	s.Scalers = make(map[graph.NodeKind]*ml.StandardScaler, len(w.Kinds))
	for i, kind := range w.Kinds {
		s.AEs[kind] = w.AEs[i]
		s.Scalers[kind] = w.Scalers[i]
	}
	return nil
}

func gobBytes(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobValue(b []byte, out any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(out)
}

// --- file-level save/load over the checksummed envelope ----------------------

// SaveModel atomically writes a SAGE model checkpoint.
func SaveModel(path string, m *Model) error {
	return ckpt.SaveGob(path, KindSAGE, VersionSAGE, m)
}

// LoadModel reads a SAGE model checkpoint, verifying kind, version and
// payload integrity.
func LoadModel(path string) (*Model, error) {
	m := &Model{}
	if err := ckpt.LoadGob(path, KindSAGE, VersionSAGE, m); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveGCN atomically writes a GCN model checkpoint.
func SaveGCN(path string, g *GCN) error {
	return ckpt.SaveGob(path, KindGCN, VersionGCN, g)
}

// LoadGCN reads a GCN model checkpoint.
func LoadGCN(path string) (*GCN, error) {
	g := &GCN{}
	if err := ckpt.LoadGob(path, KindGCN, VersionGCN, g); err != nil {
		return nil, err
	}
	return g, nil
}

// SaveEncoders atomically writes an (optionally partial) encoder set.
func SaveEncoders(path string, s *EncoderSet) error {
	return ckpt.SaveGob(path, KindEncoders, VersionEncoders, s)
}

// LoadEncoders reads an encoder-set checkpoint.
func LoadEncoders(path string) (*EncoderSet, error) {
	s := &EncoderSet{}
	if err := ckpt.LoadGob(path, KindEncoders, VersionEncoders, s); err != nil {
		return nil, err
	}
	return s, nil
}

// SaveTrainState atomically writes a mid-training checkpoint (weights +
// optimiser moments + RNG position + epoch index).
func SaveTrainState(path string, st *TrainState) error {
	return ckpt.SaveGob(path, KindTrain, VersionTrain, st)
}

// LoadTrainState reads a mid-training checkpoint.
func LoadTrainState(path string) (*TrainState, error) {
	st := &TrainState{}
	if err := ckpt.LoadGob(path, KindTrain, VersionTrain, st); err != nil {
		return nil, err
	}
	return st, nil
}
