package gnn

import (
	"bytes"
	"encoding/gob"
	"errors"
	"sort"

	"trail/internal/ckpt"
	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/ml"
)

// Checkpoint kinds and payload versions for the gnn artefacts. Bump a
// version when its wire struct changes shape; ckpt.Load then rejects old
// files with a typed *ckpt.VersionError instead of misdecoding them.
//
// The element type is part of a checkpoint's identity: float64 models
// persist under the bare kinds below (wire-compatible with pre-generic
// checkpoints), while float32 models get a ".f32" dtype suffix on the
// kind (see kindFor). Loading a float32 checkpoint through a float64
// loader — or vice versa — therefore fails with a typed
// *ckpt.KindError instead of silently reinterpreting weights.
const (
	KindSAGE     = "gnn.sage"
	KindGCN      = "gnn.gcn"
	KindEncoders = "gnn.encoders"
	KindTrain    = "gnn.train"

	VersionSAGE     uint32 = 1
	VersionGCN      uint32 = 1
	VersionEncoders uint32 = 1
	VersionTrain    uint32 = 1
)

// kindFor returns the envelope kind string for a checkpoint of element
// type T: the bare kind at float64 (back-compatible), a ".f32"-suffixed
// kind at float32. Exotic named Float types are not persistable and keep
// an explicit marker so they can never collide with the canonical kinds.
func kindFor[T mat.Float](base string) string {
	switch any(T(0)).(type) {
	case float64:
		return base
	case float32:
		return base + ".f32"
	default:
		return base + ".custom"
	}
}

// --- wire structs ------------------------------------------------------------
//
// The models keep weights in unexported fields (they are not part of the
// training API), so gob needs explicit encoders. Only weights travel;
// gradient accumulators are rebuilt zeroed on decode. The wire structs
// are generic: gob matches fields by name, so the float64 instantiation
// stays decode-compatible with pre-generic payloads.

type linearWire[T mat.Float] struct {
	W, B *mat.Dense[T]
}

func wireLinear[T mat.Float](l *linear[T]) linearWire[T] {
	return linearWire[T]{W: l.w.W, B: l.b.W}
}

func (w linearWire[T]) revive() *linear[T] {
	return &linear[T]{
		w: &ml.ParamOf[T]{W: w.W, G: mat.NewOf[T](w.W.Rows, w.W.Cols)},
		b: &ml.ParamOf[T]{W: w.B, G: mat.NewOf[T](w.B.Rows, w.B.Cols)},
	}
}

type modelWire[T mat.Float] struct {
	Config   Config
	Classes  int
	LabelEmb linearWire[T]
	Layers   []linearWire[T]
	SelfW    []*mat.Dense[T]
}

// GobEncode implements gob.GobEncoder for the GraphSAGE model.
func (m *ModelOf[T]) GobEncode() ([]byte, error) {
	w := modelWire[T]{Config: m.Config, Classes: m.classes, LabelEmb: wireLinear(m.labelEmb)}
	for i, l := range m.layers {
		w.Layers = append(w.Layers, wireLinear(l))
		w.SelfW = append(w.SelfW, m.selfW[i].W)
	}
	return gobBytes(w)
}

// GobDecode implements gob.GobDecoder for the GraphSAGE model.
func (m *ModelOf[T]) GobDecode(b []byte) error {
	var w modelWire[T]
	if err := gobValue(b, &w); err != nil {
		return err
	}
	if w.LabelEmb.W == nil || len(w.Layers) != len(w.SelfW) {
		return errors.New("gnn: malformed SAGE checkpoint payload")
	}
	m.Config, m.classes = w.Config, w.Classes
	m.labelEmb = w.LabelEmb.revive()
	m.layers, m.selfW = nil, nil
	for i, lw := range w.Layers {
		m.layers = append(m.layers, lw.revive())
		sw := w.SelfW[i]
		m.selfW = append(m.selfW, &ml.ParamOf[T]{W: sw, G: mat.NewOf[T](sw.Rows, sw.Cols)})
	}
	return nil
}

type gcnWire[T mat.Float] struct {
	Config   Config
	Classes  int
	LabelEmb linearWire[T]
	Layers   []linearWire[T]
}

// GobEncode implements gob.GobEncoder for the GCN baseline.
func (g *GCNOf[T]) GobEncode() ([]byte, error) {
	w := gcnWire[T]{Config: g.Config, Classes: g.classes, LabelEmb: wireLinear(g.labelEmb)}
	for _, l := range g.layers {
		w.Layers = append(w.Layers, wireLinear(l))
	}
	return gobBytes(w)
}

// GobDecode implements gob.GobDecoder for the GCN baseline.
func (g *GCNOf[T]) GobDecode(b []byte) error {
	var w gcnWire[T]
	if err := gobValue(b, &w); err != nil {
		return err
	}
	if w.LabelEmb.W == nil {
		return errors.New("gnn: malformed GCN checkpoint payload")
	}
	g.Config, g.classes = w.Config, w.Classes
	g.labelEmb = w.LabelEmb.revive()
	g.layers = nil
	for _, lw := range w.Layers {
		g.layers = append(g.layers, lw.revive())
	}
	return nil
}

type aeWire[T mat.Float] struct {
	Config                 AEConfig
	InDim                  int
	Trained                bool
	Enc1, Enc2, Dec1, Dec2 linearWire[T]
}

// GobEncode implements gob.GobEncoder for an autoencoder (trained or
// merely initialised; a never-initialised one round-trips as such).
func (a *AutoencoderOf[T]) GobEncode() ([]byte, error) {
	w := aeWire[T]{Config: a.Config, InDim: a.inDim, Trained: a.enc1 != nil}
	if w.Trained {
		w.Enc1, w.Enc2 = wireLinear(a.enc1), wireLinear(a.enc2)
		w.Dec1, w.Dec2 = wireLinear(a.dec1), wireLinear(a.dec2)
	}
	return gobBytes(w)
}

// GobDecode implements gob.GobDecoder for an autoencoder.
func (a *AutoencoderOf[T]) GobDecode(b []byte) error {
	var w aeWire[T]
	if err := gobValue(b, &w); err != nil {
		return err
	}
	a.Config, a.inDim = w.Config, w.InDim
	a.enc1, a.enc2, a.dec1, a.dec2 = nil, nil, nil, nil
	if w.Trained {
		if w.Enc1.W == nil || w.Enc2.W == nil || w.Dec1.W == nil || w.Dec2.W == nil {
			return errors.New("gnn: malformed autoencoder checkpoint payload")
		}
		a.enc1, a.enc2 = w.Enc1.revive(), w.Enc2.revive()
		a.dec1, a.dec2 = w.Dec1.revive(), w.Dec2.revive()
	}
	return nil
}

type encoderSetWire[T mat.Float] struct {
	Config  AEConfig
	Kinds   []graph.NodeKind
	AEs     []*AutoencoderOf[T]
	Scalers []*ml.StandardScaler
}

// GobEncode implements gob.GobEncoder for an encoder set. Kinds are
// serialised in sorted order so the payload bytes are deterministic
// (gob's native map encoding follows Go's randomised iteration order).
func (s *EncoderSetOf[T]) GobEncode() ([]byte, error) {
	w := encoderSetWire[T]{Config: s.Config}
	for kind := range s.AEs {
		w.Kinds = append(w.Kinds, kind)
	}
	sort.Slice(w.Kinds, func(i, j int) bool { return w.Kinds[i] < w.Kinds[j] })
	for _, kind := range w.Kinds {
		w.AEs = append(w.AEs, s.AEs[kind])
		w.Scalers = append(w.Scalers, s.Scalers[kind])
	}
	return gobBytes(w)
}

// GobDecode implements gob.GobDecoder for an encoder set.
func (s *EncoderSetOf[T]) GobDecode(b []byte) error {
	var w encoderSetWire[T]
	if err := gobValue(b, &w); err != nil {
		return err
	}
	if len(w.Kinds) != len(w.AEs) || len(w.Kinds) != len(w.Scalers) {
		return errors.New("gnn: malformed encoder-set checkpoint payload")
	}
	s.Config = w.Config
	s.AEs = make(map[graph.NodeKind]*AutoencoderOf[T], len(w.Kinds))
	s.Scalers = make(map[graph.NodeKind]*ml.StandardScaler, len(w.Kinds))
	for i, kind := range w.Kinds {
		s.AEs[kind] = w.AEs[i]
		s.Scalers[kind] = w.Scalers[i]
	}
	return nil
}

func gobBytes(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobValue(b []byte, out any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(out)
}

// --- file-level save/load over the checksummed envelope ----------------------

// SaveModel atomically writes a SAGE model checkpoint. The envelope kind
// carries the model's element type, so a float32 model round-trips
// through its own kind and can never be confused with a float64 one.
func SaveModel[T mat.Float](path string, m *ModelOf[T]) error {
	return ckpt.SaveGob(path, kindFor[T](KindSAGE), VersionSAGE, m)
}

// LoadModel reads a float64 SAGE model checkpoint, verifying kind,
// version and payload integrity.
func LoadModel(path string) (*Model, error) { return LoadModelOf[float64](path) }

// LoadModelOf reads a SAGE model checkpoint at element type T.
func LoadModelOf[T mat.Float](path string) (*ModelOf[T], error) {
	m := &ModelOf[T]{}
	if err := ckpt.LoadGob(path, kindFor[T](KindSAGE), VersionSAGE, m); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveGCN atomically writes a GCN model checkpoint.
func SaveGCN[T mat.Float](path string, g *GCNOf[T]) error {
	return ckpt.SaveGob(path, kindFor[T](KindGCN), VersionGCN, g)
}

// LoadGCN reads a float64 GCN model checkpoint.
func LoadGCN(path string) (*GCN, error) { return LoadGCNOf[float64](path) }

// LoadGCNOf reads a GCN model checkpoint at element type T.
func LoadGCNOf[T mat.Float](path string) (*GCNOf[T], error) {
	g := &GCNOf[T]{}
	if err := ckpt.LoadGob(path, kindFor[T](KindGCN), VersionGCN, g); err != nil {
		return nil, err
	}
	return g, nil
}

// SaveEncoders atomically writes an (optionally partial) encoder set.
func SaveEncoders[T mat.Float](path string, s *EncoderSetOf[T]) error {
	return ckpt.SaveGob(path, kindFor[T](KindEncoders), VersionEncoders, s)
}

// LoadEncoders reads a float64 encoder-set checkpoint.
func LoadEncoders(path string) (*EncoderSet, error) { return LoadEncodersOf[float64](path) }

// LoadEncodersOf reads an encoder-set checkpoint at element type T.
func LoadEncodersOf[T mat.Float](path string) (*EncoderSetOf[T], error) {
	s := &EncoderSetOf[T]{}
	if err := ckpt.LoadGob(path, kindFor[T](KindEncoders), VersionEncoders, s); err != nil {
		return nil, err
	}
	return s, nil
}

// SaveTrainState atomically writes a mid-training checkpoint (weights +
// optimiser moments + RNG position + epoch index).
func SaveTrainState[T mat.Float](path string, st *TrainStateOf[T]) error {
	return ckpt.SaveGob(path, kindFor[T](KindTrain), VersionTrain, st)
}

// LoadTrainState reads a float64 mid-training checkpoint.
func LoadTrainState(path string) (*TrainState, error) { return LoadTrainStateOf[float64](path) }

// LoadTrainStateOf reads a mid-training checkpoint at element type T.
func LoadTrainStateOf[T mat.Float](path string) (*TrainStateOf[T], error) {
	st := &TrainStateOf[T]{}
	if err := ckpt.LoadGob(path, kindFor[T](KindTrain), VersionTrain, st); err != nil {
		return nil, err
	}
	return st, nil
}
