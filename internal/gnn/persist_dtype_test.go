package gnn

import (
	"errors"
	"path/filepath"
	"testing"

	"trail/internal/ckpt"
	"trail/internal/graph"
	"trail/internal/mat/mattest"
)

// The element type is part of a checkpoint's identity: float32
// artefacts persist under ".f32"-suffixed kinds, so cross-precision
// loads fail with a typed *ckpt.KindError instead of silently
// reinterpreting weights at the wrong width.

func TestFloat32ModelRoundTrip(t *testing.T) {
	_, in32, train := equivTrainSetup32(t)
	cfg := Config{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 4, Seed: 9}
	m, err := Train(in32, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model32.ck")
	if err := SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModelOf[float32](path)
	if err != nil {
		t.Fatal(err)
	}
	assertParamsBitIdentical(t, "f32 round-trip", got.params(), m.params())

	visible := map[graph.NodeID]int{}
	var queries []graph.NodeID
	for i, ev := range train {
		if i%2 == 0 {
			visible[ev] = in32.Labels[ev]
		} else {
			queries = append(queries, ev)
		}
	}
	mattest.BitEqual(t, "f32 round-trip proba",
		got.PredictProba(in32, visible, queries), m.PredictProba(in32, visible, queries))

	// The float64 loader must reject it with a kind mismatch, not decode
	// garbage.
	var kerr *ckpt.KindError
	if _, err := LoadModel(path); !errors.As(err, &kerr) {
		t.Fatalf("float64 load of a float32 checkpoint: got %v, want *ckpt.KindError", err)
	}
}

func TestFloat32TrainStateRoundTrip(t *testing.T) {
	_, in32, train := equivTrainSetup32(t)
	cfg := Config{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 4, Seed: 9}
	path := filepath.Join(t.TempDir(), "train32.ck")
	var saved *TrainStateOf[float32]
	_, err := TrainCtx(in32, train, cfg, TrainOptsOf[float32]{
		Checkpoint: func(st *TrainStateOf[float32]) error {
			saved = st
			return SaveTrainState(path, st)
		},
		CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if saved == nil {
		t.Fatal("no checkpoint emitted")
	}
	st, err := LoadTrainStateOf[float32](path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Arch != archSAGE || st.Epoch != saved.Epoch {
		t.Fatalf("round-trip state %q@%d, want %q@%d", st.Arch, st.Epoch, saved.Arch, saved.Epoch)
	}
	assertParamsBitIdentical(t, "f32 train-state weights", st.SAGE.params(), saved.SAGE.params())

	var kerr *ckpt.KindError
	if _, err := LoadTrainState(path); !errors.As(err, &kerr) {
		t.Fatalf("float64 load of a float32 train state: got %v, want *ckpt.KindError", err)
	}
}

func TestFloat32EncodersRoundTrip(t *testing.T) {
	g := graph.New()
	feats := map[graph.NodeID][]float64{}
	for i := 0; i < 40; i++ {
		id, _ := g.Upsert(graph.KindIP, string(rune('a'+i%26))+string(rune('0'+i/26)))
		feats[id] = []float64{float64(i), float64(i % 7), float64(i % 3)}
	}
	cfg := AEConfig{Hidden: 8, Encoding: 4, LR: 1e-3, Epochs: 3, Batch: 16, Seed: 2}
	set, err := TrainEncodersOf[float32](g, feats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "enc32.ck")
	if err := SaveEncoders(path, set); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEncodersOf[float32](path)
	if err != nil {
		t.Fatal(err)
	}
	mattest.BitEqual(t, "f32 encoders round-trip",
		got.EncodeGraph(g, feats), set.EncodeGraph(g, feats))

	var kerr *ckpt.KindError
	if _, err := LoadEncoders(path); !errors.As(err, &kerr) {
		t.Fatalf("float64 load of float32 encoders: got %v, want *ckpt.KindError", err)
	}
}
