package gnn

import (
	"math"
	"testing"

	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/mat/mattest"
	"trail/internal/ml"
)

// The pooled hot loops must be arithmetically invisible: training with
// workspace-pooled scratch produces weights bit-identical to training
// with freshly allocated scratch (the pre-pool behaviour, preserved by
// mat.NewAllocWorkspace). These tests swap the workspace constructor via
// the newTrainWorkspace hook and compare every parameter bit.

func withAllocWorkspace(t *testing.T, f func()) {
	t.Helper()
	orig := newTrainWorkspace
	newTrainWorkspace = mat.NewAllocWorkspace
	defer func() { newTrainWorkspace = orig }()
	f()
}

func assertParamsBitIdentical[T mat.Float](t *testing.T, name string, got, want []*ml.ParamOf[T]) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d params vs %d", name, len(got), len(want))
	}
	for pi := range want {
		mattest.BitEqual(t, name, got[pi].W, want[pi].W)
	}
}

func equivTrainSetup(t *testing.T) (Input, []graph.NodeID) {
	t.Helper()
	in, byClass := buildToyAttributionGraph(t, 3, 8, 5)
	var train []graph.NodeID
	for _, evs := range byClass {
		train = append(train, evs...)
	}
	return in, train
}

func TestSAGEPooledTrainingMatchesAllocating(t *testing.T) {
	in, train := equivTrainSetup(t)
	for _, cfg := range []Config{
		{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 5, Seed: 1},
		{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 5, Seed: 1, MaxNeighbors: 2},
		{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 5, Seed: 1, ClipNorm: 0.5},
		{Layers: 3, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 5, Seed: 1, NoL2: true},
	} {
		var ref *Model
		withAllocWorkspace(t, func() {
			var err error
			ref, err = Train(in, train, cfg)
			if err != nil {
				t.Fatal(err)
			}
		})
		pooled, err := Train(in, train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertParamsBitIdentical(t, "SAGE", pooled.params(), ref.params())
	}
}

func TestGCNPooledTrainingMatchesAllocating(t *testing.T) {
	in, train := equivTrainSetup(t)
	cfg := Config{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 5, Seed: 1}
	var ref *GCN
	withAllocWorkspace(t, func() {
		var err error
		ref, err = TrainGCN(in, train, cfg)
		if err != nil {
			t.Fatal(err)
		}
	})
	pooled, err := TrainGCN(in, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertParamsBitIdentical(t, "GCN", pooled.params(), ref.params())
}

func TestAEPooledTrainingMatchesAllocating(t *testing.T) {
	X := mat.New(150, 24)
	for i := range X.Data {
		X.Data[i] = math.Sin(float64(i) * 0.7331)
	}
	cfg := AEConfig{Hidden: 16, Encoding: 8, LR: 1e-3, Epochs: 4, Batch: 32, Seed: 5}
	var ref *Autoencoder
	withAllocWorkspace(t, func() {
		ref = NewAutoencoder(cfg)
		if err := ref.Fit(X); err != nil {
			t.Fatal(err)
		}
	})
	pooled := NewAutoencoder(cfg)
	if err := pooled.Fit(X); err != nil {
		t.Fatal(err)
	}
	var got, want []*ml.Param
	for _, l := range []*linear[float64]{pooled.enc1, pooled.enc2, pooled.dec1, pooled.dec2} {
		got = append(got, l.params()...)
	}
	for _, l := range []*linear[float64]{ref.enc1, ref.enc2, ref.dec1, ref.dec2} {
		want = append(want, l.params()...)
	}
	assertParamsBitIdentical(t, "AE", got, want)
}

// TestForwardInferMatchesTrainingForward pins the fused inference path
// (SAGELayerInto + in-place relu/L2) to the training forward's logits.
func TestForwardInferMatchesTrainingForward(t *testing.T) {
	in, train := equivTrainSetup(t)
	for _, cfg := range []Config{
		{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 4, Seed: 2},
		{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 4, Seed: 2, NoL2: true},
	} {
		m, err := Train(in, train, cfg)
		if err != nil {
			t.Fatal(err)
		}
		visible := make(map[graph.NodeID]int, len(train))
		for _, ev := range train {
			visible[ev] = in.Labels[ev]
		}
		agg := meanOperator(in)

		ws := mat.NewWorkspace()
		scr := newSageScratch(m, len(train))
		trainActs := m.forward(in, agg, visible, scr.ws, &scr.acts)
		wantLogits := trainActs.h[len(trainActs.h)-1]
		gotLogits := m.forwardInfer(in, agg, nil, visible, ws)
		assertBitEqual(t, "forwardInfer logits", gotLogits, wantLogits)
		ws.Release()
		scr.ws.Release()
	}
}
