package gnn

import (
	"math"
	"testing"

	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/mat/mattest"
	"trail/internal/ml"
	"trail/internal/par"
	"trail/internal/sparse"
)

// The float32 pipeline is checked against the float64 reference in two
// regimes. Cross-precision (float32 training vs float64 training from
// the same seed) is a tolerance check: rounding compounds through the
// epochs, so outputs agree within mattest tolerances, not bitwise.
// Within-precision contracts — pooled vs allocating, serial vs
// parallel, reordered vs original-order inference — remain exact
// bit-identity at float32, exactly as at float64.

// sageTolerance absorbs the per-epoch rounding drift of float32
// training: after ~30 epochs the softmax outputs sit within a percent
// of the float64 reference on the toy graph.
var sageTolerance = mattest.Tol{Atol: 1e-3, Rtol: 1e-2}

func equivTrainSetup32(t *testing.T) (Input, InputOf[float32], []graph.NodeID) {
	t.Helper()
	in, train := equivTrainSetup(t)
	return in, CastInput[float32](in), train
}

func TestSAGEFloat32MatchesFloat64(t *testing.T) {
	in, in32, train := equivTrainSetup32(t)
	cfg := Config{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 30, Seed: 1}
	m64, err := Train(in, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m32, err := Train(in32, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	visible := map[graph.NodeID]int{}
	var queries []graph.NodeID
	for i, ev := range train {
		if i%2 == 0 {
			visible[ev] = in.Labels[ev]
		} else {
			queries = append(queries, ev)
		}
	}
	p64 := m64.PredictProba(in, visible, queries)
	p32 := m32.PredictProba(in32, visible, queries)
	mattest.Close(t, "SAGE PredictProba f32 vs f64", p32, p64, sageTolerance)

	want := m64.Predict(in, visible, queries)
	got := m32.Predict(in32, visible, queries)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d: float32 predicts %d, float64 predicts %d", i, got[i], want[i])
		}
	}
}

func TestGCNFloat32MatchesFloat64(t *testing.T) {
	in, in32, train := equivTrainSetup32(t)
	cfg := Config{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 30, Seed: 1}
	g64, err := TrainGCN(in, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g32, err := TrainGCN(in32, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	visible := map[graph.NodeID]int{}
	var queries []graph.NodeID
	for i, ev := range train {
		if i%2 == 0 {
			visible[ev] = in.Labels[ev]
		} else {
			queries = append(queries, ev)
		}
	}
	want := g64.Predict(in, visible, queries)
	got := g32.Predict(in32, visible, queries)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d: float32 predicts %d, float64 predicts %d", i, got[i], want[i])
		}
	}
}

func TestAEFloat32MatchesFloat64(t *testing.T) {
	X := mat.New(150, 24)
	for i := range X.Data {
		X.Data[i] = math.Sin(float64(i) * 0.7331)
	}
	X32 := mat.Cast[float32](X)
	cfg := AEConfig{Hidden: 16, Encoding: 8, LR: 1e-3, Epochs: 6, Batch: 32, Seed: 5}
	ae64 := NewAutoencoder(cfg)
	if err := ae64.Fit(X); err != nil {
		t.Fatal(err)
	}
	ae32 := NewAutoencoderOf[float32](cfg)
	if err := ae32.Fit(X32); err != nil {
		t.Fatal(err)
	}
	e64, e32 := ae64.ReconstructionError(X), ae32.ReconstructionError(X32)
	if !sageTolerance.Within(e32, e64) {
		t.Fatalf("reconstruction error drifted: f32 %v vs f64 %v", e32, e64)
	}
	mattest.Close(t, "AE codes f32 vs f64", ae32.Encode(X32), ae64.Encode(X), sageTolerance)
}

// TestFloat32PooledTrainingMatchesAllocating is the pooled-equivalence
// contract at float32: swapping the float32 workspace hook for fresh
// allocations must not change one bit of the trained weights.
func TestFloat32PooledTrainingMatchesAllocating(t *testing.T) {
	_, in32, train := equivTrainSetup32(t)
	cfg := Config{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 5, Seed: 1}
	orig := newTrainWorkspace32
	newTrainWorkspace32 = mat.NewAllocWorkspaceOf[float32]
	ref, err := Train(in32, train, cfg)
	newTrainWorkspace32 = orig
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := Train(in32, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertParamsBitIdentical(t, "SAGE/f32", pooled.params(), ref.params())
}

// TestFloat32TrainingSerialParallelBitIdentical pins the parallel
// determinism contract at float32: the row-partitioned kernels must
// produce identical float32 bits at any worker count.
func TestFloat32TrainingSerialParallelBitIdentical(t *testing.T) {
	_, in32, train := equivTrainSetup32(t)
	cfg := Config{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 5, Seed: 1}
	prev := par.SetWorkers(1)
	serial, err := Train(in32, train, cfg)
	par.SetWorkers(8)
	parallel, err2 := Train(in32, train, cfg)
	par.SetWorkers(prev)
	if err != nil {
		t.Fatal(err)
	}
	if err2 != nil {
		t.Fatal(err2)
	}
	assertParamsBitIdentical(t, "SAGE/f32 serial vs parallel", parallel.params(), serial.params())
}

// TestSAGEInferenceReorderedBitIdentical forces the degree-descending
// inference reordering onto the toy graph and checks every public
// prediction surface is bit-identical to the original-order pass, at
// both precisions. The input's CSR is left nil so each call builds (and
// caches per-call) its own snapshot under the active gate.
func TestSAGEInferenceReorderedBitIdentical(t *testing.T) {
	in, in32, train := equivTrainSetup32(t)
	cfg := Config{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 5, Seed: 1}
	m64, err := Train(in, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m32, err := Train(in32, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	visible := map[graph.NodeID]int{}
	var queries []graph.NodeID
	for i, ev := range train {
		if i%2 == 0 {
			visible[ev] = in.Labels[ev]
		} else {
			queries = append(queries, ev)
		}
	}

	orig := sparse.ReorderMinRows
	defer func() { sparse.ReorderMinRows = orig }()

	sparse.ReorderMinRows = len(in.Adj) + 1
	if _, p := inferOperator(in); p != nil {
		t.Fatal("reordering unexpectedly active below the gate")
	}
	wantProba64 := m64.PredictProba(in, visible, queries)
	wantPred64 := m64.Predict(in, visible, queries)
	wantConf64 := m64.Confidence(in, visible, queries)
	wantProba32 := m32.PredictProba(in32, visible, queries)

	sparse.ReorderMinRows = 1
	if _, p := inferOperator(in); p == nil {
		t.Fatal("reordering not active above the gate")
	}
	mattest.BitEqual(t, "PredictProba reordered", m64.PredictProba(in, visible, queries), wantProba64)
	mattest.BitEqual(t, "PredictProba/f32 reordered", m32.PredictProba(in32, visible, queries), wantProba32)
	gotPred := m64.Predict(in, visible, queries)
	for i := range wantPred64 {
		if gotPred[i] != wantPred64[i] {
			t.Fatalf("Predict reordered differs at %d: %d vs %d", i, gotPred[i], wantPred64[i])
		}
	}
	mattest.BitEqualVec(t, "Confidence reordered", m64.Confidence(in, visible, queries), wantConf64)
}

// TestGCNPredictReorderedBitIdentical is the same contract for the GCN
// baseline's prediction path.
func TestGCNPredictReorderedBitIdentical(t *testing.T) {
	in, train := equivTrainSetup(t)
	cfg := Config{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 5, Seed: 1}
	g, err := TrainGCN(in, train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	visible := map[graph.NodeID]int{}
	var queries []graph.NodeID
	for i, ev := range train {
		if i%2 == 0 {
			visible[ev] = in.Labels[ev]
		} else {
			queries = append(queries, ev)
		}
	}
	orig := sparse.ReorderMinRows
	defer func() { sparse.ReorderMinRows = orig }()
	sparse.ReorderMinRows = len(in.Adj) + 1
	want := g.Predict(in, visible, queries)
	sparse.ReorderMinRows = 1
	got := g.Predict(in, visible, queries)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("GCN Predict reordered differs at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

// TestStepSteadyStateZeroAllocs asserts the zero-allocation contract
// for the training step at both precisions: after warm-up, a full
// forward/backward/update pass allocates nothing.
func TestStepSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	in, in32, train := equivTrainSetup32(t)
	t.Run("float64", func(t *testing.T) { testStepZeroAllocs(t, in, train) })
	t.Run("float32", func(t *testing.T) { testStepZeroAllocs(t, in32, train) })
}

func testStepZeroAllocs[T mat.Float](t *testing.T, in InputOf[T], train []graph.NodeID) {
	m := NewModelOf[T](Config{Layers: 2, Hidden: 16, Encoding: 16, LR: 1e-2, Epochs: 1, Seed: 3}, in.Classes)
	ps := m.params()
	opt := ml.NewAdamOf(m.Config.LR, ps)
	agg := meanOperator(in)
	scr := newSageScratch(m, len(train))
	defer scr.ws.Release()
	for i, ev := range train {
		if i%2 == 0 {
			scr.visible[ev] = in.Labels[ev]
		} else {
			scr.targets = append(scr.targets, ev)
		}
	}
	step := func() {
		if _, err := m.step(in, agg, scr, ps, opt, 0); err != nil {
			t.Fatal(err)
		}
	}
	step() // warm the workspace pool and the operator caches
	step()
	if allocs := testing.AllocsPerRun(20, step); allocs != 0 {
		t.Fatalf("steady-state step allocates %v times per call", allocs)
	}
}
