//go:build race

package gnn

// raceEnabled gates the AllocsPerRun tests: the race detector poisons
// sync.Pool (random drops) and instruments allocation, so "exactly 0
// allocs" is not a meaningful assertion under -race.
const raceEnabled = true
