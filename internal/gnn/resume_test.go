package gnn

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"trail/internal/ckpt"
	"trail/internal/graph"
	"trail/internal/ml"
)

func trainSplit(byClass [][]graph.NodeID) []graph.NodeID {
	var train []graph.NodeID
	for _, evs := range byClass {
		train = append(train, evs...)
	}
	return train
}

func resumeCfg(epochs int) Config {
	return Config{Layers: 2, Hidden: 8, Encoding: 16, LR: 5e-3, Epochs: epochs, Seed: 3}
}

func sageWeights(m *Model) [][]float64 {
	var out [][]float64
	for _, p := range m.params() {
		out = append(out, p.W.Data)
	}
	return out
}

func gcnWeights(g *GCN) [][]float64 {
	var out [][]float64
	for _, p := range g.params() {
		out = append(out, p.W.Data)
	}
	return out
}

func assertWeightsEqual(t *testing.T, tag string, want, got [][]float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d weight tensors", tag, len(want), len(got))
	}
	for ti := range want {
		if len(want[ti]) != len(got[ti]) {
			t.Fatalf("%s: tensor %d size mismatch", tag, ti)
		}
		for i := range want[ti] {
			if want[ti][i] != got[ti][i] {
				t.Fatalf("%s: tensor %d element %d differs: %v vs %v (weights not bit-identical)",
					tag, ti, i, want[ti][i], got[ti][i])
			}
		}
	}
}

// TestSAGEResumeBitIdentical is the tentpole assertion: for EVERY epoch
// boundary k, cancelling training after k epochs (the checkpoint is
// persisted through the checksummed envelope, as a real crash-recovery
// would) and resuming from the on-disk state yields final weights
// bit-identical to an uninterrupted run.
func TestSAGEResumeBitIdentical(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 3, 6, 5)
	train := trainSplit(byClass)
	const epochs = 5
	cfg := resumeCfg(epochs)

	ref, err := Train(in, train, cfg)
	if err != nil {
		t.Fatalf("uninterrupted train: %v", err)
	}
	want := sageWeights(ref)

	for k := 1; k < epochs; k++ {
		path := filepath.Join(t.TempDir(), "sage.ck")
		ctx, cancel := context.WithCancel(context.Background())
		_, err := TrainCtx(in, train, cfg, TrainOpts{
			Ctx: ctx,
			Checkpoint: func(st *TrainState) error {
				if err := SaveTrainState(path, st); err != nil {
					return err
				}
				if st.Epoch >= k {
					cancel() // simulate SIGINT after epoch k
				}
				return nil
			},
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("k=%d: want context.Canceled, got %v", k, err)
		}
		st, err := LoadTrainState(path)
		if err != nil {
			t.Fatalf("k=%d: load checkpoint: %v", k, err)
		}
		if st.Arch != archSAGE || st.Epoch != k {
			t.Fatalf("k=%d: checkpoint carries arch=%q epoch=%d", k, st.Arch, st.Epoch)
		}
		resumed, err := TrainCtx(in, train, cfg, TrainOpts{Resume: st})
		if err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		assertWeightsEqual(t, fmt.Sprintf("sage k=%d", k), want, sageWeights(resumed))
	}
}

// TestGCNResumeBitIdentical mirrors the SAGE harness for the GCN trainer.
func TestGCNResumeBitIdentical(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 3, 6, 5)
	train := trainSplit(byClass)
	const epochs = 4
	cfg := resumeCfg(epochs)

	ref, err := TrainGCN(in, train, cfg)
	if err != nil {
		t.Fatalf("uninterrupted train: %v", err)
	}
	want := gcnWeights(ref)

	for k := 1; k < epochs; k++ {
		path := filepath.Join(t.TempDir(), "gcn.ck")
		ctx, cancel := context.WithCancel(context.Background())
		_, err := TrainGCNCtx(in, train, cfg, TrainOpts{
			Ctx: ctx,
			Checkpoint: func(st *TrainState) error {
				if err := SaveTrainState(path, st); err != nil {
					return err
				}
				if st.Epoch >= k {
					cancel()
				}
				return nil
			},
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("k=%d: want context.Canceled, got %v", k, err)
		}
		st, err := LoadTrainState(path)
		if err != nil {
			t.Fatalf("k=%d: load checkpoint: %v", k, err)
		}
		if st.Arch != archGCN || st.Epoch != k {
			t.Fatalf("k=%d: checkpoint carries arch=%q epoch=%d", k, st.Arch, st.Epoch)
		}
		resumed, err := TrainGCNCtx(in, train, cfg, TrainOpts{Resume: st})
		if err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		assertWeightsEqual(t, fmt.Sprintf("gcn k=%d", k), want, gcnWeights(resumed))
	}
}

// TestResumeArchMismatch: a SAGE checkpoint fed to the GCN trainer (and
// vice versa) is rejected with a typed error, not misapplied.
func TestResumeArchMismatch(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 2, 4, 4)
	train := trainSplit(byClass)
	cfg := resumeCfg(2)
	var st *TrainState
	if _, err := TrainCtx(in, train, cfg, TrainOpts{
		Checkpoint: func(s *TrainState) error { st = s; return nil },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := TrainGCNCtx(in, train, cfg, TrainOpts{Resume: st}); err == nil {
		t.Fatal("GCN trainer accepted a SAGE checkpoint")
	}
}

// TestSAGEPersistRoundTrip: a trained model survives Save/Load with
// bit-identical weights and identical predictions.
func TestSAGEPersistRoundTrip(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 3, 5, 4)
	train := trainSplit(byClass)
	m, err := Train(in, train, resumeCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.ck")
	if err := SaveModel(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	assertWeightsEqual(t, "sage round trip", sageWeights(m), sageWeights(got))
	wantPred := m.Predict(in, nil, train)
	gotPred := got.Predict(in, nil, train)
	for i := range wantPred {
		if wantPred[i] != gotPred[i] {
			t.Fatalf("prediction %d differs after round trip", i)
		}
	}
}

// TestGCNPersistRoundTrip mirrors the SAGE round trip for the baseline.
func TestGCNPersistRoundTrip(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 2, 5, 4)
	train := trainSplit(byClass)
	g, err := TrainGCN(in, train, resumeCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "gcn.ck")
	if err := SaveGCN(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGCN(path)
	if err != nil {
		t.Fatal(err)
	}
	assertWeightsEqual(t, "gcn round trip", gcnWeights(g), gcnWeights(got))
}

// TestTrainStateCorruption: a flipped byte or truncated tail in a
// persisted checkpoint surfaces as a typed ckpt error, never as garbage
// weights.
func TestTrainStateCorruption(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 2, 4, 4)
	train := trainSplit(byClass)
	path := filepath.Join(t.TempDir(), "train.ck")
	if _, err := TrainCtx(in, train, resumeCfg(2), TrainOpts{
		Checkpoint: func(st *TrainState) error { return SaveTrainState(path, st) },
	}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrainState(path); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Fatalf("bit flip: want ErrCorrupt, got %v", err)
	}

	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrainState(path); !errors.Is(err, ckpt.ErrTruncated) {
		t.Fatalf("truncation: want ErrTruncated, got %v", err)
	}
}

// TestModelVersionSkew: a checkpoint written under a future payload
// version is rejected with *ckpt.VersionError.
func TestModelVersionSkew(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 2, 4, 4)
	m, err := Train(in, trainSplit(byClass), resumeCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.ck")
	if err := ckpt.SaveGob(path, KindSAGE, VersionSAGE+1, m); err != nil {
		t.Fatal(err)
	}
	var verr *ckpt.VersionError
	if _, err := LoadModel(path); !errors.As(err, &verr) {
		t.Fatalf("want *ckpt.VersionError, got %v", err)
	}
}

// TestFineTuneRestoresLR: the fine-tuning learning-rate override is
// rolled back even when fit fails early (the defer-restore satellite).
func TestFineTuneRestoresLR(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 2, 4, 4)
	train := trainSplit(byClass)
	m, err := Train(in, train, resumeCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	orig := m.Config.LR
	if err := m.FineTune(in, train[:1], 2); err == nil {
		t.Fatal("FineTune with one event should fail")
	}
	if m.Config.LR != orig {
		t.Fatalf("LR not restored after failed FineTune: %v vs %v", m.Config.LR, orig)
	}
	if err := m.FineTune(in, train, 1); err != nil {
		t.Fatal(err)
	}
	if m.Config.LR != orig {
		t.Fatalf("LR not restored after FineTune: %v vs %v", m.Config.LR, orig)
	}
}

// buildMultiKindGraph creates IOC nodes of all three encoder kinds with
// features, for the encoder-set resume test.
func buildMultiKindGraph(t *testing.T) (*graph.Graph, map[graph.NodeID][]float64) {
	t.Helper()
	g := graph.New()
	feats := make(map[graph.NodeID][]float64)
	dim := 6
	mk := func(kind graph.NodeKind, prefix string, n int) {
		for i := 0; i < n; i++ {
			id, _ := g.Upsert(kind, fmt.Sprintf("%s-%d", prefix, i))
			row := make([]float64, dim)
			for j := range row {
				row[j] = float64((i+j)%5) + float64(kind)
			}
			feats[id] = row
		}
	}
	mk(graph.KindIP, "ip", 12)
	mk(graph.KindURL, "url", 12)
	mk(graph.KindDomain, "dom", 12)
	return g, feats
}

// TestEncoderSetKindResume: interrupting encoder training between kinds
// and resuming from the persisted partial set reproduces the
// uninterrupted set bit for bit (asserted via the deterministic gob
// encoding).
func TestEncoderSetKindResume(t *testing.T) {
	g, feats := buildMultiKindGraph(t)
	cfg := AEConfig{Hidden: 8, Encoding: 4, LR: 1e-3, Epochs: 2, Batch: 4, Seed: 9}

	ref, err := TrainEncoders(g, feats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := ref.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.AEs) != 3 {
		t.Fatalf("fixture trained %d kinds, want 3", len(ref.AEs))
	}

	path := filepath.Join(t.TempDir(), "enc.ck")
	ctx, cancel := context.WithCancel(context.Background())
	_, err = TrainEncodersCtx(ctx, g, feats, cfg, EncoderTrainOpts{
		Checkpoint: func(partial *EncoderSet) error {
			if err := SaveEncoders(path, partial); err != nil {
				return err
			}
			cancel() // interrupt after the first kind completes
			return nil
		},
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}

	partial, err := LoadEncoders(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial.AEs) != 1 {
		t.Fatalf("partial checkpoint carries %d kinds, want 1", len(partial.AEs))
	}
	resumed, err := TrainEncodersCtx(context.Background(), g, feats, cfg, EncoderTrainOpts{Resume: partial})
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := resumed.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if string(wantBytes) != string(gotBytes) {
		t.Fatal("resumed encoder set differs from uninterrupted set")
	}
}

// TestEncoderSetPersistRoundTrip: Save/Load preserves encodings exactly.
func TestEncoderSetPersistRoundTrip(t *testing.T) {
	g, feats := buildMultiKindGraph(t)
	cfg := AEConfig{Hidden: 8, Encoding: 4, LR: 1e-3, Epochs: 2, Batch: 4, Seed: 9}
	set, err := TrainEncoders(g, feats, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "enc.ck")
	if err := SaveEncoders(path, set); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEncoders(path)
	if err != nil {
		t.Fatal(err)
	}
	want := set.EncodeGraph(g, feats)
	have := got.EncodeGraph(g, feats)
	for i := range want.Data {
		if want.Data[i] != have.Data[i] {
			t.Fatalf("encoding element %d differs after round trip", i)
		}
	}
	// Deterministic payload: encoding twice yields identical bytes.
	b1, err := set.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := set.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("EncoderSet gob encoding is not deterministic")
	}
}

// TestCheckpointEveryStride: CheckpointEvery > 1 only fires on the
// stride, but a cancellation still persists the current epoch.
func TestCheckpointEveryStride(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 2, 4, 4)
	train := trainSplit(byClass)
	cfg := resumeCfg(6)
	var epochs []int
	if _, err := TrainCtx(in, train, cfg, TrainOpts{
		CheckpointEvery: 3,
		Checkpoint:      func(st *TrainState) error { epochs = append(epochs, st.Epoch); return nil },
	}); err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 || epochs[0] != 3 || epochs[1] != 6 {
		t.Fatalf("stride-3 checkpoints at %v, want [3 6]", epochs)
	}

	// Cancel mid-stride: the final checkpoint carries the true epoch.
	ctx, cancel := context.WithCancel(context.Background())
	epochs = nil
	_, err := TrainCtx(in, train, cfg, TrainOpts{
		Ctx:             ctx,
		CheckpointEvery: 3,
		Checkpoint: func(st *TrainState) error {
			epochs = append(epochs, st.Epoch)
			if st.Epoch == 3 {
				cancel()
			}
			return nil
		},
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(epochs) != 2 || epochs[1] != 3 {
		t.Fatalf("cancellation checkpoints at %v, want final at epoch 3", epochs)
	}
}

// TestDivergenceRollback: a training run driven into divergence returns
// the typed error AND a model whose weights are finite (rolled back to
// the best epoch), plus ErrDivergence sentinel matching.
func TestDivergenceRollback(t *testing.T) {
	in, byClass := buildToyAttributionGraph(t, 2, 4, 4)
	train := trainSplit(byClass)
	cfg := resumeCfg(8)
	cfg.LR = math.MaxFloat64 // drives weights to Inf, then Inf·0 → NaN
	m, err := TrainCtx(in, train, cfg, TrainOpts{})
	var div *ml.DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("want *ml.DivergenceError, got %v", err)
	}
	if m == nil {
		t.Fatal("divergence must still return the rolled-back model")
	}
	for _, ws := range sageWeights(m) {
		for _, v := range ws {
			if v != v { // NaN check
				t.Fatal("rolled-back model carries NaN weights")
			}
		}
	}
}
