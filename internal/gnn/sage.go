package gnn

import (
	"errors"
	"math"
	"math/rand"
	"slices"

	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/ml"
	"trail/internal/par"
	"trail/internal/sparse"
)

// InputOf is the full-graph tensor view the GraphSAGE model consumes, at
// element type T. Labels, flags and the adjacency snapshot are
// precision-free; only the encoded features and the CSR values carry T.
type InputOf[T mat.Float] struct {
	// Adj is an adjacency snapshot (graph.Graph.Adjacency), still used
	// for neighbour sampling and the explainer's subgraph extraction.
	Adj [][]graph.NodeID
	// CSR is the same adjacency as a shared CSR snapshot
	// (graph.Graph.CSR); the message-passing kernels normalise and
	// multiply it. Optional: when nil it is rebuilt from Adj on demand.
	CSR *sparse.CSR[T]
	// Enc holds the autoencoded IOC features, one row per node
	// (zero rows for events and ASNs, which carry no engineered
	// features).
	Enc *mat.Dense[T]
	// IsEvent marks event nodes.
	IsEvent []bool
	// Labels carries the APT class per event node (-1 elsewhere). Which
	// labels the model may *see* is decided per call via visibility sets,
	// mirroring the paper's masking protocol.
	Labels []int
	// Classes is the number of APT classes.
	Classes int
}

// Input is the float64 reference instantiation of InputOf.
type Input = InputOf[float64]

// CastInput converts an input between precisions. Precision-free fields
// (adjacency, flags, labels) are shared, not copied; Enc and the CSR
// values are converted. Casting to the same precision returns views that
// share everything, including the CSR's cached operators.
func CastInput[T, U mat.Float](in InputOf[U]) InputOf[T] {
	out := InputOf[T]{
		Adj:     in.Adj,
		Enc:     mat.Cast[T](in.Enc),
		IsEvent: in.IsEvent,
		Labels:  in.Labels,
		Classes: in.Classes,
	}
	if in.CSR != nil {
		out.CSR = sparse.Cast[T](in.CSR)
	}
	return out
}

// Config configures the GraphSAGE classifier.
type Config struct {
	// Layers is the message-passing depth (2-4 in Table IV).
	Layers int
	// Hidden is the width of intermediate layers (paper: 512).
	Hidden int
	// Encoding is the node input width (output of the autoencoders).
	Encoding int
	LR       float64
	Epochs   int
	Seed     int64
	// MaxNeighbors caps the neighbours sampled per node per epoch, the
	// GraphSAGE sampling trick; 0 aggregates all neighbours.
	MaxNeighbors int
	// NoL2 disables the Eq. 4 post-aggregation L2 normalisation — an
	// ablation knob for the design-choice benches.
	NoL2 bool
	// ClipNorm caps the global gradient L2 norm per optimisation step; 0
	// disables clipping. Divergence (NaN/Inf loss or gradients) is always
	// detected and reported as *ml.DivergenceError either way.
	ClipNorm float64
}

// DefaultConfig returns laptop-scale defaults (paper values: Hidden 512,
// LR 1e-4). The class count is supplied separately to NewModel/Train.
func DefaultConfig(layers int) Config {
	return Config{
		Layers:       layers,
		Hidden:       64,
		Encoding:     64,
		LR:           5e-3,
		Epochs:       40,
		Seed:         1,
		MaxNeighbors: 0,
	}
}

// ModelOf is a trained GraphSAGE attribution model at element type T.
// Each layer combines a neighbour-mean path (Eq. 3) with a root/self
// path, as in the reference GraphSAGE implementation the paper builds on
// (PyG SAGEConv computes W1·x_v + W2·mean(x_n)); without the self path,
// features at odd hop distances could never reach an event on the
// bipartite event-IOC edges.
type ModelOf[T mat.Float] struct {
	Config   Config
	classes  int
	labelEmb *linear[T] // one-hot label -> Encoding, for visible event labels
	layers   []*linear[T]
	selfW    []*ml.ParamOf[T]
}

// Model is the float64 reference instantiation of ModelOf.
type Model = ModelOf[float64]

// NewModel initialises float64 weights for the given input width and
// class count.
func NewModel(cfg Config, classes int) *Model { return NewModelOf[float64](cfg, classes) }

// NewModelOf initialises weights at element type T. The initialisation
// draws the same RNG sequence at every precision, so a float32 model
// starts from the rounded float64 weights.
func NewModelOf[T mat.Float](cfg Config, classes int) *ModelOf[T] {
	if cfg.Layers < 1 {
		cfg.Layers = 2
	}
	if cfg.Hidden <= 0 {
		cfg.Hidden = 64
	}
	if cfg.Encoding <= 0 {
		cfg.Encoding = 64
	}
	if cfg.LR <= 0 {
		cfg.LR = 5e-3
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &ModelOf[T]{Config: cfg, classes: classes}
	m.labelEmb = newLinear[T](rng, classes, cfg.Encoding)
	prev := cfg.Encoding
	for l := 0; l < cfg.Layers; l++ {
		out := cfg.Hidden
		if l == cfg.Layers-1 {
			out = classes
		}
		m.layers = append(m.layers, newLinear[T](rng, prev, out))
		m.selfW = append(m.selfW, &ml.ParamOf[T]{
			W: mat.GlorotUniformOf[T](rng, prev, out),
			G: mat.NewOf[T](prev, out),
		})
		prev = out
	}
	return m
}

func (m *ModelOf[T]) params() []*ml.ParamOf[T] {
	ps := m.labelEmb.params()
	for i, l := range m.layers {
		ps = append(ps, l.params()...)
		ps = append(ps, m.selfW[i])
	}
	return ps
}

// Train fits the model: cross-entropy on the training events, with the
// paper's label-visibility protocol. Each epoch the training events are
// split in half: one half's labels are fed as input features (visible
// neighbours), the other half is predicted and optimised. This lets the
// model learn to exploit neighbour labels without learning to copy its
// own.
func Train[T mat.Float](in InputOf[T], trainEvents []graph.NodeID, cfg Config) (*ModelOf[T], error) {
	return TrainCtx(in, trainEvents, cfg, TrainOptsOf[T]{})
}

// TrainCtx is Train with crash-safety: a cancellable context, an
// epoch-granular checkpoint hook, and resume from a checkpointed
// TrainState. Kill-at-epoch-k followed by a resume produces final weights
// bit-identical to an uninterrupted run. On divergence
// (*ml.DivergenceError) the returned model carries the lowest-loss
// epoch's weights — rolled back, never NaN.
func TrainCtx[T mat.Float](in InputOf[T], trainEvents []graph.NodeID, cfg Config, opts TrainOptsOf[T]) (*ModelOf[T], error) {
	st, err := opts.resumeFor(archSAGE)
	if err != nil {
		return nil, err
	}
	var m *ModelOf[T]
	if st != nil {
		if st.SAGE == nil {
			return nil, errors.New("gnn: resume state carries no SAGE weights")
		}
		m = st.SAGE.CloneModel()
	} else {
		m = NewModelOf[T](cfg, in.Classes)
	}
	if err := m.fit(in, trainEvents, m.Config.Epochs, opts); err != nil {
		var div *ml.DivergenceError
		if errors.As(err, &div) {
			return m, err
		}
		return nil, err
	}
	return m, nil
}

// CloneModel deep-copies the model (weights and config) so one trained
// model can be frozen while a copy is fine-tuned — the Fig. 8 protocol.
func (m *ModelOf[T]) CloneModel() *ModelOf[T] {
	cp := &ModelOf[T]{Config: m.Config, classes: m.classes}
	cp.labelEmb = cloneLinear(m.labelEmb)
	for i, l := range m.layers {
		cp.layers = append(cp.layers, cloneLinear(l))
		cp.selfW = append(cp.selfW, &ml.ParamOf[T]{
			W: m.selfW[i].W.Clone(),
			G: mat.NewOf[T](m.selfW[i].G.Rows, m.selfW[i].G.Cols),
		})
	}
	return cp
}

// FineTune continues training an existing model on (typically new) events
// for a few epochs — the paper's monthly retraining loop (Fig. 8). It
// runs at a reduced learning rate so a small month of events refines the
// model instead of overwriting it.
func (m *ModelOf[T]) FineTune(in InputOf[T], trainEvents []graph.NodeID, epochs int) error {
	orig := m.Config.LR
	m.Config.LR = orig * 0.3
	defer func() { m.Config.LR = orig }()
	return m.fit(in, trainEvents, epochs, TrainOptsOf[T]{})
}

// newTrainWorkspace supplies the scratch arena for every float64 fit
// loop; newTrainWorkspace32 is its float32 counterpart. Tests swap in
// mat.NewAllocWorkspace to run the identical arithmetic with fresh
// allocations and assert bit-identical weights (the pooled-vs-allocating
// equivalence contract).
var (
	newTrainWorkspace   = mat.NewWorkspace
	newTrainWorkspace32 = mat.NewWorkspaceOf[float32]
)

// trainWorkspaceOf dispatches to the per-precision workspace hook.
// Exotic named Float types get a non-pooled workspace.
func trainWorkspaceOf[T mat.Float]() *mat.WorkspaceOf[T] {
	switch any(T(0)).(type) {
	case float64:
		return any(newTrainWorkspace()).(*mat.WorkspaceOf[T])
	case float32:
		return any(newTrainWorkspace32()).(*mat.WorkspaceOf[T])
	default:
		return mat.NewAllocWorkspaceOf[T]()
	}
}

// sageScratch carries every buffer the epoch loop reuses: the workspace
// for matrix scratch, the per-step activation slots, and the small
// slices (shuffle order, targets, softmax probs, label-gradient buckets)
// that used to be reallocated per pass.
type sageScratch[T mat.Float] struct {
	ws      *mat.WorkspaceOf[T]
	acts    activations[T]
	probs   []T
	order   []int
	targets []graph.NodeID
	visible map[graph.NodeID]int
	lg      labelGradScratch[T]
}

func newSageScratch[T mat.Float](m *ModelOf[T], nTrain int) *sageScratch[T] {
	L := len(m.layers)
	return &sageScratch[T]{
		ws: trainWorkspaceOf[T](),
		acts: activations[T]{
			means: make([]*mat.Dense[T], L),
			masks: make([]*mat.Dense[T], L),
			norms: make([][]T, L),
			h:     make([]*mat.Dense[T], L),
		},
		probs:   make([]T, m.classes),
		order:   make([]int, nTrain),
		targets: make([]graph.NodeID, 0, nTrain),
		visible: make(map[graph.NodeID]int, nTrain/2+1),
		lg:      newLabelGradScratch[T](m.classes, nTrain),
	}
}

func (m *ModelOf[T]) fit(in InputOf[T], trainEvents []graph.NodeID, epochs int, opts TrainOptsOf[T]) error {
	if len(trainEvents) < 2 {
		return errors.New("gnn: need at least 2 training events")
	}
	if in.Enc.Cols != m.Config.Encoding {
		return errors.New("gnn: encoding width mismatch")
	}
	ctx := opts.ctx()
	src := ml.NewCountingSource(m.Config.Seed + 17)
	ps := m.params()
	opt := ml.NewAdamOf(m.Config.LR, ps)
	start := 0
	if opts.Resume != nil {
		start = opts.Resume.Epoch
		src = ml.RestoreRNG(opts.Resume.RNG)
		if err := opt.Restore(opts.Resume.Opt); err != nil {
			return err
		}
	}
	rng := rand.New(src)
	// One mean-aggregation operator (and, lazily, its adjoint) is shared
	// across all epochs when no sampling is configured.
	mean := meanOperator(in)

	checkpoint := func(completed int) error {
		if opts.Checkpoint == nil {
			return nil
		}
		return opts.Checkpoint(&TrainStateOf[T]{
			Arch:  archSAGE,
			Epoch: completed,
			RNG:   src.State(),
			Opt:   opt.State(),
			SAGE:  m.CloneModel(),
		})
	}

	scr := newSageScratch(m, len(trainEvents))
	defer scr.ws.Release()
	order := scr.order
	// Best-checkpoint rollback: track the lowest-loss epoch's weights so a
	// divergent step surfaces a typed error over a usable model instead of
	// NaN weights. The snapshot storage is allocated once and refreshed in
	// place.
	bestLoss := math.Inf(1)
	var bestW []*mat.Dense[T]
	rollback := func() {
		if bestW != nil {
			ml.RestoreParams(ps, bestW)
		}
	}
	for epoch := start; epoch < epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			// A cancellation (SIGINT at the CLI) still leaves a resumable
			// checkpoint behind.
			if cerr := checkpoint(epoch); cerr != nil {
				return cerr
			}
			return err
		}
		// Reset to the identity before shuffling so the permutation at
		// epoch k is a pure function of the RNG position — required for
		// bit-identical resume (in-place shuffles would compose across
		// epochs and depend on where training started).
		for i := range order {
			order[i] = i
		}
		mat.Shuffle(rng, order)
		half := len(order) / 2
		epochLoss, passes := 0.0, 0
		// Alternate which half is context vs target across epochs.
		for pass := 0; pass < 2; pass++ {
			clear(scr.visible)
			scr.targets = scr.targets[:0]
			for i, oi := range order {
				ev := trainEvents[oi]
				if (i < half) == (pass == 0) {
					scr.visible[ev] = in.Labels[ev]
				} else {
					scr.targets = append(scr.targets, ev)
				}
			}
			if len(scr.targets) == 0 {
				continue
			}
			agg := mean
			if m.Config.MaxNeighbors > 0 {
				agg = sparse.Cast[T](sparse.FromAdj(sampleAdj(rng, in.Adj, m.Config.MaxNeighbors))).MeanNormalized()
			}
			loss, err := m.step(in, agg, scr, ps, opt, epoch)
			if err != nil {
				rollback()
				return err
			}
			epochLoss += loss
			passes++
		}
		if passes > 0 {
			if err := ml.CheckLoss(epoch, epochLoss/float64(passes)); err != nil {
				rollback()
				return err
			}
			if l := epochLoss / float64(passes); l < bestLoss {
				bestLoss = l
				if bestW == nil {
					bestW = ml.CloneParams(ps)
				} else if err := ml.CopyParams(bestW, ps); err != nil {
					return err
				}
			}
		}
		if (epoch+1)%opts.every() == 0 {
			if err := checkpoint(epoch + 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// step runs one full-graph forward/backward pass and an optimiser
// update, returning the mean cross-entropy loss over the targets. agg is
// the mean-aggregation operator for this pass (the shared full-graph
// operator, or a freshly sampled one). All matrix scratch comes from the
// scratch workspace, rewound here so every step reuses the same buffers.
func (m *ModelOf[T]) step(in InputOf[T], agg *sparse.CSR[T], scr *sageScratch[T], ps []*ml.ParamOf[T], opt *ml.AdamOf[T], epoch int) (float64, error) {
	scr.ws.Reset()
	acts := m.forward(in, agg, scr.visible, scr.ws, &scr.acts)
	logits := acts.h[len(acts.h)-1]

	// Cross-entropy loss and gradient on target rows only, fused.
	grad := scr.ws.Get(logits.Rows, logits.Cols)
	loss := mat.SoftmaxCrossEntropyInto(grad, logits, scr.targets, in.Labels, scr.probs)
	m.backward(in, agg, acts, scr.visible, grad, scr)
	if norm := ml.ClipGrads(ps, m.Config.ClipNorm); math.IsNaN(norm) || math.IsInf(norm, 0) {
		return loss, &ml.DivergenceError{Quantity: "gradient", Epoch: epoch, Value: norm}
	}
	opt.Step()
	return loss, nil
}

// activations caches the forward pass for backprop. The per-layer slices
// are sized once per fit; the matrices they point at live in the step
// workspace and are rewound between steps.
type activations[T mat.Float] struct {
	h0    *mat.Dense[T]   // input after label embedding
	means []*mat.Dense[T] // neighbour means per layer
	masks []*mat.Dense[T] // relu masks (nil for final layer)
	norms [][]T           // L2 norms before normalisation (nil for final)
	h     []*mat.Dense[T] // layer outputs; h[len-1] = logits
}

// forward computes all node representations; visible supplies event
// labels injected as input features. Scratch buffers are borrowed from
// ws; acts supplies the per-layer slots to fill.
func (m *ModelOf[T]) forward(in InputOf[T], agg *sparse.CSR[T], visible map[graph.NodeID]int, ws *mat.WorkspaceOf[T], acts *activations[T]) *activations[T] {
	n := agg.Rows
	h0 := ws.GetDirty(in.Enc.Rows, in.Enc.Cols)
	mat.CopyInto(h0, in.Enc)
	for ev, c := range visible {
		if c >= 0 && c < m.classes {
			// One-hot label through the embedding layer = row c of the
			// weight matrix plus bias.
			row := h0.Row(int(ev))
			mat.Axpy(1, m.labelEmb.w.W.Row(c), row)
			mat.Axpy(1, m.labelEmb.b.W.Row(0), row)
		}
	}
	acts.h0 = h0

	cur := h0
	for li, layer := range m.layers {
		mean := ws.GetDirty(n, cur.Cols)
		agg.SpMMInto(mean, cur)
		z := layer.forwardWS(ws, mean)
		tmp := ws.GetDirty(n, z.Cols)
		mat.MatMulInto(tmp, cur, m.selfW[li].W)
		mat.AddInPlace(z, tmp)
		acts.means[li] = mean
		if li == len(m.layers)-1 {
			acts.masks[li] = nil
			acts.norms[li] = nil
			acts.h[li] = z
			cur = z
			continue
		}
		mask := ws.GetDirty(z.Rows, z.Cols)
		mat.ReLUMaskInto(z, mask)
		var norms []T
		if !m.Config.NoL2 {
			norms = ws.VecDirty(n)
			for i := 0; i < n; i++ {
				row := z.Row(i)
				nm := mat.Norm2(row)
				norms[i] = T(nm)
				if nm > 0 {
					// Matches L2NormalizeRows exactly: the norm accumulates
					// in float64, the rescale runs in storage precision — so
					// forwardInfer's fused path stays bit-identical at every
					// precision.
					invN := T(1 / nm)
					for j := range row {
						row[j] *= invN
					}
				}
			}
		}
		acts.masks[li] = mask
		acts.norms[li] = norms
		acts.h[li] = z
		cur = z
	}
	return acts
}

// backward propagates grad (w.r.t. the logits) through the network,
// accumulating parameter gradients.
func (m *ModelOf[T]) backward(in InputOf[T], agg *sparse.CSR[T], acts *activations[T], visible map[graph.NodeID]int, grad *mat.Dense[T], scr *sageScratch[T]) {
	ws := scr.ws
	layerIn := func(li int) *mat.Dense[T] {
		if li == 0 {
			return acts.h0
		}
		return acts.h[li-1]
	}
	g := grad
	for li := len(m.layers) - 1; li >= 0; li-- {
		if li < len(m.layers)-1 {
			if norms := acts.norms[li]; norms != nil {
				// Through L2 row normalisation: y = x/||x||;
				// dx = (g - (g.y) y)/||x||, where y is the stored output.
				// Rows with zero norm stay zero — Get hands out zeroed
				// buffers, exactly like the fresh matrix this replaced.
				// The dot product and the per-element chain run in float64
				// (identical to the pre-generic float64 arithmetic).
				y := acts.h[li]
				out := ws.Get(g.Rows, g.Cols)
				for i := 0; i < g.Rows; i++ {
					if norms[i] == 0 {
						continue
					}
					gr, yr, or := g.Row(i), y.Row(i), out.Row(i)
					dot := mat.Dot(gr, yr)
					invN := 1 / float64(norms[i])
					for j := range or {
						or[j] = T((float64(gr[j]) - dot*float64(yr[j])) * invN)
					}
				}
				g = out
			}
			mat.HadamardInPlace(g, acts.masks[li])
		}
		// Self path: accumulate its weight gradient and input gradient.
		lin := layerIn(li)
		tmp := ws.GetDirty(m.selfW[li].G.Rows, m.selfW[li].G.Cols)
		mat.MatMulTransAInto(tmp, lin, g)
		mat.AddInPlace(m.selfW[li].G, tmp)
		gSelf := ws.GetDirty(g.Rows, m.selfW[li].W.Rows)
		mat.MatMulTransBInto(gSelf, g, m.selfW[li].W)
		// Aggregation path: backward through the mean is the transpose
		// kernel (cached inside the operator after the first call).
		gMean := m.layers[li].backwardWS(ws, acts.means[li], g)
		gNext := ws.GetDirty(agg.Cols, gMean.Cols)
		agg.SpMMTransInto(gNext, gMean)
		mat.AddInPlace(gNext, gSelf)
		g = gNext
	}
	// Gradient into the label embedding via visible event rows of h0,
	// sharded per class with a fixed accumulation order (see
	// labelGradScratch).
	scr.lg.accumulate(g, visible, m.labelEmb, m.classes)
}

// labelGradScratch accumulates the label-embedding gradient with
// per-class shards: visible events are bucketed by class in ascending
// event-ID order, then each class's chain runs in parallel (classes own
// disjoint gradient rows, so parallelism cannot change a single bit —
// the same contract as the row-partitioned kernels). The shared bias row
// is a single serial chain over all events in the same ascending order
// the unsharded loop used, because a sum that lands in one row has a
// defining order that must not depend on worker count.
type labelGradScratch[T mat.Float] struct {
	sorted  []graph.NodeID
	buckets [][]graph.NodeID
	// Prebound par.For body plus the operands it reads, so the sharded
	// accumulation allocates nothing per step (see mat's kargs for the
	// pattern).
	g    *mat.Dense[T]
	emb  *linear[T]
	body func(lo, hi int)
}

// newLabelGradScratch sizes the shard buckets for up to nTrain visible
// events so steady-state accumulation never grows a slice.
func newLabelGradScratch[T mat.Float](classes, nTrain int) labelGradScratch[T] {
	lg := labelGradScratch[T]{
		sorted:  make([]graph.NodeID, 0, nTrain),
		buckets: make([][]graph.NodeID, classes),
	}
	for c := range lg.buckets {
		lg.buckets[c] = make([]graph.NodeID, 0, nTrain/classes+8)
	}
	return lg
}

// shardBody accumulates the weight-row shards for classes [lo, hi).
func (lg *labelGradScratch[T]) shardBody(lo, hi int) {
	for c := lo; c < hi; c++ {
		wg := lg.emb.w.G.Row(c)
		for _, ev := range lg.buckets[c] {
			mat.Axpy(1, lg.g.Row(int(ev)), wg)
		}
	}
}

func (lg *labelGradScratch[T]) accumulate(g *mat.Dense[T], visible map[graph.NodeID]int, emb *linear[T], classes int) {
	lg.sorted = lg.sorted[:0]
	for ev := range visible {
		lg.sorted = append(lg.sorted, ev)
	}
	slices.Sort(lg.sorted)
	for c := range lg.buckets {
		lg.buckets[c] = lg.buckets[c][:0]
	}
	for _, ev := range lg.sorted {
		if c := visible[ev]; c >= 0 && c < classes {
			lg.buckets[c] = append(lg.buckets[c], ev)
		}
	}
	// Weight rows: one shard per class, ascending event order within the
	// shard — bit-identical to the serial interleaved loop this replaces.
	if lg.body == nil {
		lg.body = lg.shardBody
	}
	lg.g, lg.emb = g, emb
	par.For(classes, 1, lg.body)
	// Bias row: all classes share it, so the ascending-event serial chain
	// is the defining order.
	bg := emb.b.G.Row(0)
	for _, ev := range lg.sorted {
		if c := visible[ev]; c >= 0 && c < classes {
			mat.Axpy(1, g.Row(int(ev)), bg)
		}
	}
	lg.g, lg.emb = nil, nil
}

// inputCSR returns the input's shared adjacency CSR, rebuilding it from
// the adjacency lists when the caller did not supply one (tests, ad-hoc
// inputs). BuildInput always sets it from graph.Graph.CSR().
func inputCSR[T mat.Float](in InputOf[T]) *sparse.CSR[T] {
	if in.CSR != nil {
		return in.CSR
	}
	return sparse.Cast[T](sparse.FromAdj(in.Adj))
}

// meanOperator builds Eq. 3's neighbour-mean aggregator from the shared
// CSR snapshot: out[v] = mean of h[n] over neighbours n of v (zero for
// isolated nodes). Its adjoint — the backward scatter
// out[n] += g[v]/deg(v) — is the same operator's transpose kernel. The
// operator is cached on the CSR snapshot, so repeated training and
// prediction calls share one.
func meanOperator[T mat.Float](in InputOf[T]) *sparse.CSR[T] {
	return inputCSR(in).MeanNormalized()
}

// inferOperator is meanOperator over the cache-reordered adjacency
// snapshot: large graphs are relabelled degree-descending
// (sparse.Reordered) so the hub rows that dominate SpMM touch a compact
// prefix of the activation matrix. The returned permutation is nil when
// the graph is below the reorder threshold or already degree-sorted;
// otherwise callers gather inputs and map node IDs through it.
// Normalising after permuting equals permuting the normalised operator
// bit-for-bit (sparse's commute test), so results are unchanged.
func inferOperator[T mat.Float](in InputOf[T]) (*sparse.CSR[T], *sparse.Permutation) {
	rs, p := inputCSR(in).Reordered()
	return rs.MeanNormalized(), p
}

// sampleAdj caps each node's neighbour list at k by sampling without
// replacement.
func sampleAdj(rng *rand.Rand, adj [][]graph.NodeID, k int) [][]graph.NodeID {
	out := make([][]graph.NodeID, len(adj))
	for v, ns := range adj {
		if len(ns) <= k {
			out[v] = ns
			continue
		}
		picked := make([]graph.NodeID, k)
		// Partial Fisher-Yates over a copy.
		tmp := append([]graph.NodeID(nil), ns...)
		for i := 0; i < k; i++ {
			j := i + rng.Intn(len(tmp)-i)
			tmp[i], tmp[j] = tmp[j], tmp[i]
			picked[i] = tmp[i]
		}
		out[v] = picked
	}
	return out
}

// forwardInfer is the inference-only forward pass: it runs each layer
// through the fused normalise+aggregate+transform kernel
// (sparse.SAGELayerInto), so no neighbour-mean matrix, ReLU mask or norm
// vector is ever materialised. Logits are bit-identical to the training
// forward's (asserted by the equivalence tests); the returned matrix
// lives in ws. When perm is non-nil the pass runs in the permuted vertex
// order (inputs gathered, visible labels remapped); callers read row
// perm.Inv[q] for original node q. Every per-layer operation is
// row-local, so permuted row r equals unpermuted row perm.Perm[r] bit
// for bit.
func (m *ModelOf[T]) forwardInfer(in InputOf[T], agg *sparse.CSR[T], perm *sparse.Permutation, visible map[graph.NodeID]int, ws *mat.WorkspaceOf[T]) *mat.Dense[T] {
	n := agg.Rows
	cur := ws.GetDirty(in.Enc.Rows, in.Enc.Cols)
	if perm != nil {
		sparse.GatherRowsInto(perm, cur, in.Enc)
	} else {
		mat.CopyInto(cur, in.Enc)
	}
	for ev, c := range visible {
		if c >= 0 && c < m.classes {
			r := int(ev)
			if perm != nil {
				r = int(perm.Inv[ev])
			}
			row := cur.Row(r)
			mat.Axpy(1, m.labelEmb.w.W.Row(c), row)
			mat.Axpy(1, m.labelEmb.b.W.Row(0), row)
		}
	}
	for li, layer := range m.layers {
		next := ws.GetDirty(n, layer.w.W.Cols)
		agg.SAGELayerInto(next, cur, layer.w.W, m.selfW[li].W, layer.b.W.Row(0))
		if li < len(m.layers)-1 {
			for i, v := range next.Data {
				if v <= 0 {
					next.Data[i] = 0
				}
			}
			if !m.Config.NoL2 {
				next.L2NormalizeRows()
			}
		}
		cur = next
	}
	return cur
}

// queryRow maps an original node ID to its logits row under an optional
// permutation.
func queryRow(perm *sparse.Permutation, q graph.NodeID) int {
	if perm != nil {
		return int(perm.Inv[q])
	}
	return int(q)
}

// Classes returns the number of APT classes the model predicts over.
func (m *ModelOf[T]) Classes() int { return m.classes }

// PredictProba returns attribution distributions for the query events,
// with the given event labels visible as input features.
func (m *ModelOf[T]) PredictProba(in InputOf[T], visible map[graph.NodeID]int, queries []graph.NodeID) *mat.Dense[T] {
	ws := mat.NewWorkspaceOf[T]()
	defer ws.Release()
	return m.PredictProbaInto(mat.NewOf[T](len(queries), m.classes), in, visible, queries, ws)
}

// PredictProbaInto is the batched serving entry: one full-graph forward
// pass amortised across every query, with all matrix scratch borrowed
// from ws (Reset by the caller between batches, so a serving loop that
// issues same-shaped batches allocates nothing beyond the query-row
// index). The query logit rows are gathered with one SelectRowsInto and
// softmaxed in place into dst, which must be len(queries) x Classes().
// Results are bit-identical to len(queries) separate PredictProba calls
// with the same visible set — batching never changes an answer.
func (m *ModelOf[T]) PredictProbaInto(dst *mat.Dense[T], in InputOf[T], visible map[graph.NodeID]int, queries []graph.NodeID, ws *mat.WorkspaceOf[T]) *mat.Dense[T] {
	agg, perm := inferOperator(in)
	logits := m.forwardInfer(in, agg, perm, visible, ws)
	rows := make([]int, len(queries))
	for i, q := range queries {
		rows[i] = queryRow(perm, q)
	}
	mat.SelectRowsInto(dst, logits, rows)
	for i := 0; i < dst.Rows; i++ {
		mat.Softmax(dst.Row(i), dst.Row(i))
	}
	return dst
}

// CastModel converts a trained model between precisions: weights are
// rounded element-wise, gradient accumulators come back zeroed, and the
// config is shared. The serving path uses it to derive a float32
// inference model from float64-trained weights without retraining.
func CastModel[T, U mat.Float](m *ModelOf[U]) *ModelOf[T] {
	castLinear := func(l *linear[U]) *linear[T] {
		return &linear[T]{
			w: &ml.ParamOf[T]{W: mat.Cast[T](l.w.W), G: mat.NewOf[T](l.w.G.Rows, l.w.G.Cols)},
			b: &ml.ParamOf[T]{W: mat.Cast[T](l.b.W), G: mat.NewOf[T](l.b.G.Rows, l.b.G.Cols)},
		}
	}
	out := &ModelOf[T]{Config: m.Config, classes: m.classes, labelEmb: castLinear(m.labelEmb)}
	for i, l := range m.layers {
		out.layers = append(out.layers, castLinear(l))
		out.selfW = append(out.selfW, &ml.ParamOf[T]{
			W: mat.Cast[T](m.selfW[i].W),
			G: mat.NewOf[T](m.selfW[i].G.Rows, m.selfW[i].G.Cols),
		})
	}
	return out
}

// Predict returns the argmax attribution per query event. The softmax
// scratch is pooled: only the returned slice is allocated.
func (m *ModelOf[T]) Predict(in InputOf[T], visible map[graph.NodeID]int, queries []graph.NodeID) []int {
	ws := mat.NewWorkspaceOf[T]()
	defer ws.Release()
	agg, perm := inferOperator(in)
	logits := m.forwardInfer(in, agg, perm, visible, ws)
	probs := ws.VecDirty(m.classes)
	out := make([]int, len(queries))
	for i, q := range queries {
		mat.Softmax(probs, logits.Row(queryRow(perm, q)))
		out[i] = mat.Argmax(probs)
	}
	return out
}

// Confidence returns the max-probability score per query (used by the
// case study's thresholding discussion).
func (m *ModelOf[T]) Confidence(in InputOf[T], visible map[graph.NodeID]int, queries []graph.NodeID) []float64 {
	ws := mat.NewWorkspaceOf[T]()
	defer ws.Release()
	agg, perm := inferOperator(in)
	logits := m.forwardInfer(in, agg, perm, visible, ws)
	probs := ws.VecDirty(m.classes)
	out := make([]float64, len(queries))
	for i, q := range queries {
		mat.Softmax(probs, logits.Row(queryRow(perm, q)))
		best := math.Inf(-1)
		for _, v := range probs {
			if f := float64(v); f > best {
				best = f
			}
		}
		out[i] = best
	}
	return out
}
