package gnn

import (
	"math"
	"math/rand"
	"testing"

	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/mat/mattest"
	"trail/internal/par"
	"trail/internal/sparse"
)

// The reference implementations below are the pre-refactor aggregation
// loops, kept verbatim so the shared CSR kernels can be checked for
// bit-identical output (same floating-point operation order, not just
// approximate equality).

func referenceGCNNorm(adj [][]graph.NodeID) []float64 {
	norm := make([]float64, len(adj))
	for v := range adj {
		norm[v] = 1 / math.Sqrt(float64(len(adj[v])+1))
	}
	return norm
}

func referenceGCNProp(adj [][]graph.NodeID, norm []float64, h *mat.Matrix) *mat.Matrix {
	out := mat.New(h.Rows, h.Cols)
	for v := range adj {
		dst := out.Row(v)
		// Self loop.
		mat.Axpy(norm[v]*norm[v], h.Row(v), dst)
		for _, n := range adj[v] {
			mat.Axpy(norm[v]*norm[int(n)], h.Row(int(n)), dst)
		}
	}
	return out
}

func referenceNeighborMean(adj [][]graph.NodeID, h *mat.Matrix) *mat.Matrix {
	out := mat.New(h.Rows, h.Cols)
	for v := range adj {
		if len(adj[v]) == 0 {
			continue
		}
		dst := out.Row(v)
		for _, n := range adj[v] {
			mat.Axpy(1, h.Row(int(n)), dst)
		}
		inv := 1 / float64(len(adj[v]))
		for j := range dst {
			dst[j] *= inv
		}
	}
	return out
}

func referenceNeighborMeanTranspose(adj [][]graph.NodeID, g *mat.Matrix) *mat.Matrix {
	out := mat.New(g.Rows, g.Cols)
	for v := range adj {
		if len(adj[v]) == 0 {
			continue
		}
		inv := 1 / float64(len(adj[v]))
		src := g.Row(v)
		for _, n := range adj[v] {
			mat.Axpy(inv, src, out.Row(int(n)))
		}
	}
	return out
}

// randUndirectedAdj builds a random simple undirected graph (no
// self-loops, stored as both directed arcs) big enough to trip the
// parallel SpMM path at 16 feature columns.
func randUndirectedAdj(rng *rand.Rand, n, edges int) [][]graph.NodeID {
	adj := make([][]graph.NodeID, n)
	seen := map[[2]int]bool{}
	for e := 0; e < edges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		seen[[2]int{v, u}] = true
		adj[u] = append(adj[u], graph.NodeID(v))
		adj[v] = append(adj[v], graph.NodeID(u))
	}
	return adj
}

// assertBitEqual delegates to the shared comparator; kept as a local
// name because nearly every equivalence test in this package calls it.
func assertBitEqual(t *testing.T, name string, got, want *mat.Matrix) {
	t.Helper()
	mattest.BitEqual(t, name, got, want)
}

// TestAggregationKernelsMatchReferenceBitIdentical pins the CSR-based
// GCN and SAGE aggregations to the legacy loop nests they replaced, at
// both one worker (pure serial) and eight (parallel blocks), proving
// the refactor changed no bits and the parallel path is deterministic.
func TestAggregationKernelsMatchReferenceBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	adj := randUndirectedAdj(rng, 400, 3200)
	x := mat.RandNormal(rng, 400, 16, 0, 1)

	norm := referenceGCNNorm(adj)
	wantGCN := referenceGCNProp(adj, norm, x)
	wantMean := referenceNeighborMean(adj, x)
	wantMeanT := referenceNeighborMeanTranspose(adj, x)

	for _, workers := range []int{1, 8} {
		prev := par.SetWorkers(workers)
		a := sparse.FromAdj(adj)
		assertBitEqual(t, "gcnOperator", gcnOperator(Input{Adj: adj, CSR: a}).Mul(x), wantGCN)
		mean := a.MeanNormalized()
		assertBitEqual(t, "neighborMean", mean.Mul(x), wantMean)
		assertBitEqual(t, "neighborMeanTranspose", mean.MulTrans(x), wantMeanT)
		par.SetWorkers(prev)
	}
}
