package gnn

import (
	"context"
	"fmt"

	"trail/internal/mat"
	"trail/internal/ml"
)

// Architecture tags recorded inside TrainState so a checkpoint cannot be
// resumed into the wrong trainer.
const (
	archSAGE = "sage"
	archGCN  = "gcn"
)

// TrainStateOf is the epoch-boundary checkpoint of a (possibly
// interrupted) training run at element type T: the weights, the
// optimiser moments, and the RNG stream position. Restoring all three
// and re-running the remaining epochs produces final weights
// bit-identical to an uninterrupted run — the property the resume tests
// assert. The precision is part of the checkpoint's identity: float32
// states persist under a dtype-suffixed kind (see persist.go), so a
// float32 checkpoint can never silently resume a float64 run.
type TrainStateOf[T mat.Float] struct {
	// Arch is archSAGE or archGCN.
	Arch string
	// Epoch is the number of completed epochs.
	Epoch int
	// RNG is the position of the shuffle/sampling stream.
	RNG ml.RNGState
	// Opt is the Adam optimiser state (step count + both moments).
	Opt ml.AdamStateOf[T]
	// SAGE holds the model weights when Arch == archSAGE.
	SAGE *ModelOf[T]
	// GCN holds the model weights when Arch == archGCN.
	GCN *GCNOf[T]
}

// TrainState is the float64 reference instantiation of TrainStateOf.
type TrainState = TrainStateOf[float64]

// TrainOptsOf carries the crash-safety knobs threaded through Train,
// TrainGCN and their fit loops. The zero value trains exactly like the
// pre-checkpoint code path.
type TrainOptsOf[T mat.Float] struct {
	// Ctx, when non-nil, cancels training at the next epoch boundary.
	// Before returning ctx.Err() the loop emits one final checkpoint
	// through Checkpoint, so a SIGINT-driven cancellation always leaves a
	// resumable state behind.
	Ctx context.Context
	// Checkpoint, when non-nil, receives a deep-copied TrainState after
	// every CheckpointEvery-th epoch and at cancellation. Returning an
	// error aborts training with that error.
	Checkpoint func(*TrainStateOf[T]) error
	// CheckpointEvery is the epoch stride between Checkpoint calls
	// (values < 1 mean every epoch).
	CheckpointEvery int
	// Resume restarts training from a checkpointed state instead of a
	// fresh initialisation.
	Resume *TrainStateOf[T]
}

// TrainOpts is the float64 reference instantiation of TrainOptsOf.
type TrainOpts = TrainOptsOf[float64]

func (o TrainOptsOf[T]) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o TrainOptsOf[T]) every() int {
	if o.CheckpointEvery < 1 {
		return 1
	}
	return o.CheckpointEvery
}

// resumeFor validates that a resume state matches the trainer consuming
// it.
func (o TrainOptsOf[T]) resumeFor(arch string) (*TrainStateOf[T], error) {
	if o.Resume == nil {
		return nil, nil
	}
	if o.Resume.Arch != arch {
		return nil, fmt.Errorf("gnn: resume state is for %q, trainer is %q", o.Resume.Arch, arch)
	}
	return o.Resume, nil
}
