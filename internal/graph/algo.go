package graph

// This file holds the graph analytics used by the TKG dataset report
// (Section V of the paper) and by the attribution models: BFS distances,
// ego networks, connected components and pseudo-diameter estimation.

// BFSDistances returns the hop distance from src to every node reachable
// through adj (an adjacency snapshot from Graph.Adjacency), with -1 for
// unreachable nodes. maxDepth < 0 means unlimited.
func BFSDistances(adj [][]NodeID, src NodeID, maxDepth int) []int32 {
	dist := make([]int32, len(adj))
	for i := range dist {
		dist[i] = -1
	}
	if int(src) >= len(adj) {
		return dist
	}
	dist[src] = 0
	frontier := []NodeID{src}
	for depth := int32(1); len(frontier) > 0; depth++ {
		if maxDepth >= 0 && depth > int32(maxDepth) {
			break
		}
		var next []NodeID
		for _, u := range frontier {
			for _, v := range adj[u] {
				if dist[v] < 0 {
					dist[v] = depth
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// KHopNeighborhood returns all node IDs within k hops of src (including
// src itself), using an adjacency snapshot.
func KHopNeighborhood(adj [][]NodeID, src NodeID, k int) []NodeID {
	dist := BFSDistances(adj, src, k)
	var out []NodeID
	for id, d := range dist {
		if d >= 0 {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// EgoNet describes the subgraph induced by a node and its k-hop
// neighbourhood.
type EgoNet struct {
	Ego   NodeID
	Nodes []NodeID       // includes Ego; BFS order
	Dist  map[NodeID]int // hop distance from Ego
	Edges [][2]NodeID    // induced edges (u < v once each)
	Types map[[2]NodeID]EdgeType
}

// Ego returns the k-hop ego network around src. Edge types are taken from
// the live graph, so g must be the graph adj was snapshotted from.
func (g *Graph) Ego(adj [][]NodeID, src NodeID, k int) *EgoNet {
	dist := BFSDistances(adj, src, k)
	net := &EgoNet{
		Ego:   src,
		Dist:  make(map[NodeID]int),
		Types: make(map[[2]NodeID]EdgeType),
	}
	in := make(map[NodeID]bool)
	for id, d := range dist {
		if d >= 0 {
			net.Nodes = append(net.Nodes, NodeID(id))
			net.Dist[NodeID(id)] = int(d)
			in[NodeID(id)] = true
		}
	}
	seen := make(map[[2]NodeID]bool)
	for _, u := range net.Nodes {
		g.NeighborEdges(u, func(v NodeID, t EdgeType, fwd bool) bool {
			if !in[v] {
				return true
			}
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			key := [2]NodeID{a, b}
			if !seen[key] {
				seen[key] = true
				net.Edges = append(net.Edges, key)
				net.Types[key] = t
			}
			return true
		})
	}
	return net
}

// ConnectedComponents labels every node with a component index and returns
// the labels along with the component sizes, largest first in the sizes
// slice (label values are arbitrary but consistent with the returned
// sizes' original indices via the relabel map: sizes[i] is the size of the
// component whose label is order[i]).
func ConnectedComponents(adj [][]NodeID) (labels []int32, sizes []int) {
	n := len(adj)
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var comp int32
	var stack []NodeID
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		size := 0
		stack = append(stack[:0], NodeID(s))
		labels[s] = comp
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, v := range adj[u] {
				if labels[v] < 0 {
					labels[v] = comp
					stack = append(stack, v)
				}
			}
		}
		sizes = append(sizes, size)
		comp++
	}
	return labels, sizes
}

// LargestComponent returns the node IDs of the largest connected
// component and its size.
func LargestComponent(adj [][]NodeID) ([]NodeID, int) {
	labels, sizes := ConnectedComponents(adj)
	best, bestSize := -1, 0
	for i, s := range sizes {
		if s > bestSize {
			best, bestSize = i, s
		}
	}
	if best < 0 {
		return nil, 0
	}
	out := make([]NodeID, 0, bestSize)
	for id, l := range labels {
		if l == int32(best) {
			out = append(out, NodeID(id))
		}
	}
	return out, bestSize
}

// PseudoDiameter estimates the diameter of the component containing start
// with the standard double-sweep heuristic iterated `sweeps` times: BFS
// from the current node, jump to the farthest node found, repeat. The
// returned value is a lower bound that is exact on trees and typically
// tight on small-world graphs like the TKG.
func PseudoDiameter(adj [][]NodeID, start NodeID, sweeps int) int {
	if sweeps < 1 {
		sweeps = 1
	}
	cur := start
	best := 0
	for s := 0; s < sweeps; s++ {
		dist := BFSDistances(adj, cur, -1)
		far, fd := cur, int32(0)
		for id, d := range dist {
			if d > fd {
				far, fd = NodeID(id), d
			}
		}
		if int(fd) <= best {
			break
		}
		best = int(fd)
		cur = far
	}
	return best
}

// InducedAdjacency returns the adjacency of the subgraph induced by keep
// (a predicate over node IDs), re-using the original node IDs. Nodes not
// kept have empty adjacency rows.
func InducedAdjacency(adj [][]NodeID, keep func(NodeID) bool) [][]NodeID {
	out := make([][]NodeID, len(adj))
	for u := range adj {
		if !keep(NodeID(u)) {
			continue
		}
		var row []NodeID
		for _, v := range adj[u] {
			if keep(v) {
				row = append(row, v)
			}
		}
		out[u] = row
	}
	return out
}

// CountWithinHops returns how many of the candidate nodes have at least
// one *other* candidate within maxHops of them in adj. The paper reports
// that 85% of event nodes are within 2 hops of another event node.
func CountWithinHops(adj [][]NodeID, candidates []NodeID, maxHops int) int {
	isCand := make(map[NodeID]bool, len(candidates))
	for _, c := range candidates {
		isCand[c] = true
	}
	count := 0
	for _, c := range candidates {
		dist := BFSDistances(adj, c, maxHops)
		for id, d := range dist {
			if d > 0 && isCand[NodeID(id)] {
				count++
				break
			}
		}
	}
	return count
}
