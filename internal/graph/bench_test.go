package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"trail/internal/sparse"
)

// benchBase builds a synthetic scale-free-ish graph: n IOC nodes wired
// by preferential attachment (each new node links to endpoints of
// earlier edges), which reproduces the hub-heavy degree profile real
// TKGs show and keeps the degree-descending reorder path exercised
// (n must be >= sparse.ReorderMinRows for the reorder cache to engage).
func benchBase(n, edgesPer int, rng *rand.Rand) *Graph {
	g := New()
	ids := make([]NodeID, 0, n)
	var ends []NodeID
	for i := 0; i < n; i++ {
		id, _ := g.Upsert(KindIP, fmt.Sprintf("ip-%d", i))
		ids = append(ids, id)
		for j := 0; j < edgesPer && i > 0; j++ {
			var v NodeID
			if len(ends) > 0 && rng.Intn(2) == 0 {
				v = ends[rng.Intn(len(ends))] // preferential attachment
			} else {
				v = ids[rng.Intn(i)]
			}
			if v != id && g.AddEdge(id, v, EdgeARecord) {
				ends = append(ends, id, v)
			}
		}
	}
	return g
}

// applyEventDelta mutates g with one event-shaped delta: a fresh event
// node plus fanout edges to random existing nodes, the structural
// signature of a single ingested pulse.
func applyEventDelta(g *Graph, seq int, fanout int, rng *rand.Rand) {
	id, _ := g.Upsert(KindEvent, fmt.Sprintf("evt-%d", seq))
	n := g.NumNodes()
	for j := 0; j < fanout; j++ {
		g.AddEdge(id, NodeID(rng.Intn(n-1)), EdgeInReport)
	}
}

// perEventOp refreshes the streaming label-propagation operator the way
// ingest does after every applied event: LiveCSR plus its sym
// normalisation. Patched, that is a zero-copy slacked view with the
// maintained sym values installed; unpatched it falls back to a full
// from-scratch pack plus an O(nnz) renormalisation.
func perEventOp(b *testing.B, g *Graph) {
	if g.LiveCSR().SymNormalized() == nil {
		b.Fatal("nil sym")
	}
}

// cutChain emits the packed snapshot and drives the serving-side
// consumer chain off it: float32 cast, degree reorder, mean
// normalisation (the GNN input operators). On a patched emission the
// snapshot is spliced from the previous one and every step hits a
// pre-installed or carried cache; on a rebuild each is recomputed.
func cutChain(b *testing.B, g *Graph) {
	c := sparse.Cast[float32](g.CSR())
	rm, _ := c.Reordered()
	if rm.MeanNormalized() == nil {
		b.Fatal("nil mean")
	}
}

// BenchmarkCSRPatch measures the graph-engine refresh for one
// event-shaped delta followed by a snapshot emission on a ~20k-node
// scale-free base: patch splices the slack-slotted mirror (targeted
// renormalisation, sticky permutation), rebuild is the legacy
// from-scratch pack + renormalise + re-sort. Emitted snapshots are
// pinned bit-identical by TestCSRPatchFuzz; this benchmark quantifies
// the gap.
func BenchmarkCSRPatch(b *testing.B) {
	for _, patch := range []bool{true, false} {
		name := "rebuild"
		if patch {
			name = "patch"
		}
		b.Run(name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			g := benchBase(20_000, 6, rng)
			g.EnableCSRPatch(patch)
			g.CSR() // warm: first emission above the reorder gate full-sorts
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				applyEventDelta(g, i, 8, rng)
				b.StartTimer()
				perEventOp(b, g)
				cutChain(b, g)
			}
		})
	}
}
