package graph

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"trail/internal/ckpt"
)

func buildCkptTestGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	ev, _ := g.Upsert(KindEvent, "ev-1")
	ip, _ := g.Upsert(KindIP, "10.0.0.1")
	dom, _ := g.Upsert(KindDomain, "evil.example")
	g.AddEdge(ev, ip, EdgeInReport)
	g.AddEdge(ip, dom, EdgeResolvesTo)
	return g
}

// TestGraphVersionSkew: a snapshot saved under a future version is
// rejected with a typed *ckpt.VersionError, not a panic and not a
// misdecoded graph.
func TestGraphVersionSkew(t *testing.T) {
	g := buildCkptTestGraph(t)
	var err error
	path := filepath.Join(t.TempDir(), "g.ck")
	if err = g.Save(path); err != nil {
		t.Fatal(err)
	}
	payload, err := ckpt.Load(path, CheckpointKind, snapshotVersion)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Save(path, CheckpointKind, snapshotVersion+1, payload); err != nil {
		t.Fatal(err)
	}
	var verr *ckpt.VersionError
	if _, err := Load(path); !errors.As(err, &verr) {
		t.Fatalf("want *ckpt.VersionError, got %v", err)
	}
}

// TestGraphFileCorruption: corrupted and truncated graph files surface
// typed errors on load.
func TestGraphFileCorruption(t *testing.T) {
	g := buildCkptTestGraph(t)
	path := filepath.Join(t.TempDir(), "g.ck")
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-3] ^= 0x80
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ckpt.ErrCorrupt) {
		t.Fatalf("bit flip: want ErrCorrupt, got %v", err)
	}

	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ckpt.ErrTruncated) {
		t.Fatalf("truncation: want ErrTruncated, got %v", err)
	}

	if err := os.WriteFile(path, []byte("not a checkpoint at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ckpt.ErrNotCheckpoint) {
		t.Fatalf("garbage: want ErrNotCheckpoint, got %v", err)
	}
}
