// Package graph implements the embedded property-graph store that backs
// the TRAIL knowledge graph. It plays the role neo4j plays in the paper:
// typed nodes addressed by (kind, key), typed edges, adjacency indexes,
// and the traversal primitives (BFS, ego-nets, connected components,
// diameter estimation) that the analysis layers need.
//
// The store is an in-memory adjacency-list graph optimised for the TKG
// workload: build once (or incrementally merge event subgraphs), then
// traverse many times. All mutating and reading methods are safe for
// concurrent use; bulk analytics take a consistent snapshot of the
// adjacency under the read lock.
package graph

import (
	"fmt"
	"sort"
	"sync"

	"trail/internal/sparse"
)

// NodeID identifies a node within one Graph. IDs are dense: they index
// internal slices and are assigned in insertion order, which makes them
// directly usable as matrix row indices by the ML layers.
type NodeID int32

// NodeKind enumerates the node types of the TKG schema (Fig. 2 of the
// paper).
type NodeKind uint8

// Node kinds, in the order they appear in the paper's Table II.
const (
	KindEvent NodeKind = iota
	KindIP
	KindURL
	KindDomain
	KindASN
	numKinds
)

// String returns the human-readable kind name.
func (k NodeKind) String() string {
	switch k {
	case KindEvent:
		return "Event"
	case KindIP:
		return "IP"
	case KindURL:
		return "URL"
	case KindDomain:
		return "Domain"
	case KindASN:
		return "ASN"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// Kinds returns all node kinds in schema order.
func Kinds() []NodeKind {
	return []NodeKind{KindEvent, KindIP, KindURL, KindDomain, KindASN}
}

// EdgeType enumerates the relation types of Table I.
type EdgeType uint8

// Edge types from Table I of the paper.
const (
	EdgeInReport   EdgeType = iota // Event -> IP | Domain | URL
	EdgeARecord                    // IP -> Domain (passive DNS A record)
	EdgeInGroup                    // IP -> ASN
	EdgeResolvesTo                 // URL | Domain -> IP
	EdgeHostedOn                   // URL -> Domain
	numEdgeTypes
)

// String returns the schema name of the edge type.
func (t EdgeType) String() string {
	switch t {
	case EdgeInReport:
		return "InReport"
	case EdgeARecord:
		return "ARecord"
	case EdgeInGroup:
		return "InGroup"
	case EdgeResolvesTo:
		return "ResolvesTo"
	case EdgeHostedOn:
		return "HostedOn"
	default:
		return fmt.Sprintf("EdgeType(%d)", uint8(t))
	}
}

// EdgeTypes returns all edge types in schema order.
func EdgeTypes() []EdgeType {
	return []EdgeType{EdgeInReport, EdgeARecord, EdgeInGroup, EdgeResolvesTo, EdgeHostedOn}
}

// Node is the stored record for a graph node.
type Node struct {
	ID   NodeID
	Kind NodeKind
	// Key is the node's natural identifier: the IOC string (IP address,
	// URL, domain, "AS1234") or the event's report ID.
	Key string
	// Label is the APT class index for event nodes, or -1. IOC nodes that
	// appear in exactly one APT's events may also carry that label for the
	// per-IOC experiments (Table III); multi-labelled IOCs keep -1.
	Label int
	// FirstOrder records whether the node was listed directly in at least
	// one incident report (as opposed to being discovered only during
	// enrichment).
	FirstOrder bool
	// EventCount is the number of distinct events this IOC appeared in
	// (the "reuse" statistic of Table II); 0 for event and ASN nodes.
	EventCount int
	// Month is the (year*12+month) bucket the node first appeared in;
	// used by the longitudinal experiments. Zero means unknown.
	Month int
	// Degraded records that enrichment failed for this IOC during TKG
	// construction (provider outage, retries exhausted): its feature
	// vector is imputed rather than measured, and its relation expansion
	// may be incomplete. Snapshots written before this field decode it
	// as false.
	Degraded bool
}

// HalfEdge is one direction of a stored edge.
type HalfEdge struct {
	To   NodeID
	Type EdgeType
}

// Graph is the property-graph store. The zero value is not usable; call
// New.
type Graph struct {
	mu    sync.RWMutex
	nodes []Node
	// adj holds the undirected adjacency: every logical edge (u,v,t)
	// appears as a HalfEdge in adj[u] and in adj[v]. Traversal in the TKG
	// is always undirected (label propagation and GraphSAGE both treat the
	// graph symmetrically), so storing both directions keeps hot paths
	// simple.
	adj [][]HalfEdge
	// out marks, for each logical edge, its forward direction: the half
	// edge stored in adj[u] with out bit set means the schema direction is
	// u->v. Encoded in parallel with adj.
	out [][]bool
	// index maps (kind, key) to NodeID.
	index map[nodeRef]NodeID
	// edgeCount is the number of logical (undirected) edges.
	edgeCount int
	// kindCount caches node counts per kind.
	kindCount [numKinds]int
	// typeCount caches edge counts per type.
	typeCount [numEdgeTypes]int
	// csr caches the CSR snapshot returned by CSR(); invalidated by any
	// mutation (Upsert, AddEdge) so repeated analytics runs share one
	// frozen copy instead of re-copying adjacency lists per call.
	csr *sparse.Matrix
	// version counts structural and record mutations (node created, edge
	// inserted, node record updated). Reads that pair a Version() with a
	// CSR() can cheaply detect staleness without pointer identity games.
	version uint64
	// dirty accumulates structurally-touched node IDs (created nodes and
	// endpoints of inserted edges) when tracking is enabled; the streaming
	// ingest path drains it to seed incremental label propagation.
	dirty map[NodeID]struct{}
	// dirtyBuf is DrainDirty's recycled output buffer (see inccsr.go).
	dirtyBuf []NodeID
	// log records every inserted edge in insertion order. WriteTo
	// serialises edges in this order and ReadFrom replays it, which makes
	// the snapshot order-faithful: a deserialised graph reproduces the
	// writer's adjacency-entry order bit-for-bit, so a CSR emitted by the
	// writer is directly adoptable by the reader (AdoptCSR). ~12 bytes per
	// edge; edges are never removed, so the log is append-only.
	log []logEdge
	// inc is the incremental CSR builder, non-nil while EnableCSRPatch is
	// on: mutations mirror into its slack-slotted buffers and CSR() emits
	// patched snapshots instead of re-packing from the adjacency lists.
	inc *csrBuilder
	// patchApplied / patchFallback count CSR snapshot emissions by kind
	// (see CSRPatchStats).
	patchApplied  uint64
	patchFallback uint64
}

type nodeRef struct {
	kind NodeKind
	key  string
}

// logEdge is one entry of the insertion-order edge log.
type logEdge struct {
	u, v NodeID
	t    EdgeType
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{index: make(map[nodeRef]NodeID)}
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// NumEdges returns the number of logical (undirected) edges.
func (g *Graph) NumEdges() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.edgeCount
}

// KindCount returns the number of nodes of kind k.
func (g *Graph) KindCount(k NodeKind) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.kindCount[k]
}

// EdgeTypeCount returns the number of edges of type t.
func (g *Graph) EdgeTypeCount(t EdgeType) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.typeCount[t]
}

// Upsert returns the ID of the node with the given kind and key, creating
// it (with Label -1) if absent. The second result reports whether the node
// was created by this call.
func (g *Graph) Upsert(kind NodeKind, key string) (NodeID, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.upsertLocked(kind, key)
}

func (g *Graph) upsertLocked(kind NodeKind, key string) (NodeID, bool) {
	ref := nodeRef{kind, key}
	if id, ok := g.index[ref]; ok {
		return id, false
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Kind: kind, Key: key, Label: -1})
	g.adj = append(g.adj, nil)
	g.out = append(g.out, nil)
	g.index[ref] = id
	g.kindCount[kind]++
	g.csr = nil
	g.version++
	if g.dirty != nil {
		g.dirty[id] = struct{}{}
	}
	if g.inc != nil {
		g.inc.addNode()
	}
	return id, true
}

// Version returns a monotonic mutation counter: it increases on every
// node creation, edge insertion and UpdateNode call. Consumers holding a
// CSR() snapshot (or any derived artefact, e.g. a published serving
// snapshot) can compare versions to detect staleness cheaply.
func (g *Graph) Version() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.version
}

// TrackDirty enables (or disables) structural dirty tracking. While
// enabled, every created node and every endpoint of an inserted edge is
// accumulated into a set drained by TakeDirty. Disabling clears the set.
func (g *Graph) TrackDirty(on bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if on && g.dirty == nil {
		g.dirty = make(map[NodeID]struct{})
	}
	if !on {
		g.dirty = nil
	}
}

// TakeDirty returns the structurally-touched node IDs accumulated since
// the last call, sorted ascending, and resets the set. It returns nil
// when tracking is disabled or nothing was touched. The returned slice
// is freshly allocated and owned by the caller; hot loops that drain per
// event should use DrainDirty, which recycles one buffer instead.
func (g *Graph) TakeDirty() []NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	d := g.drainDirtyLocked()
	if d == nil {
		return nil
	}
	return append([]NodeID(nil), d...)
}

// Lookup returns the ID of the node with the given kind and key, if
// present.
func (g *Graph) Lookup(kind NodeKind, key string) (NodeID, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	id, ok := g.index[nodeRef{kind, key}]
	return id, ok
}

// Node returns a copy of the node record for id. It panics if id is out of
// range.
func (g *Graph) Node(id NodeID) Node {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nodes[id]
}

// UpdateNode applies f to the stored node record for id under the write
// lock. Kind and Key must not be changed by f; ID is restored afterwards.
func (g *Graph) UpdateNode(id NodeID, f func(*Node)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := &g.nodes[id]
	f(n)
	n.ID = id
	g.version++
}

// AddEdge inserts an undirected edge u-(t)->v if it does not already
// exist; the stored direction is u->v. Self-loops are rejected. It reports
// whether a new edge was inserted.
func (g *Graph) AddEdge(u, v NodeID, t EdgeType) bool {
	if u == v {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	// Duplicate check: scan the smaller adjacency list.
	a, b := u, v
	if len(g.adj[b]) < len(g.adj[a]) {
		a, b = b, a
	}
	for _, he := range g.adj[a] {
		other := he.To
		if he.Type == t && ((a == u && other == v) || (a == v && other == u)) {
			return false
		}
	}
	g.adj[u] = append(g.adj[u], HalfEdge{To: v, Type: t})
	g.out[u] = append(g.out[u], true)
	g.adj[v] = append(g.adj[v], HalfEdge{To: u, Type: t})
	g.out[v] = append(g.out[v], false)
	g.log = append(g.log, logEdge{u: u, v: v, t: t})
	g.edgeCount++
	g.typeCount[t]++
	g.csr = nil
	g.version++
	if g.dirty != nil {
		g.dirty[u] = struct{}{}
		g.dirty[v] = struct{}{}
	}
	if g.inc != nil {
		g.inc.addEdge(u, v)
	}
	return true
}

// Degree returns the undirected degree of id.
func (g *Graph) Degree(id NodeID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.adj[id])
}

// Neighbors returns the IDs adjacent to id (both directions), in storage
// order. The returned slice is freshly allocated.
func (g *Graph) Neighbors(id NodeID) []NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]NodeID, len(g.adj[id]))
	for i, he := range g.adj[id] {
		out[i] = he.To
	}
	return out
}

// NeighborEdges calls f for every half edge incident to id. fwd reports
// whether the schema direction is id->to. Iteration stops early if f
// returns false.
func (g *Graph) NeighborEdges(id NodeID, f func(to NodeID, t EdgeType, fwd bool) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for i, he := range g.adj[id] {
		if !f(he.To, he.Type, g.out[id][i]) {
			return
		}
	}
}

// ForEachEdge calls f once per logical edge in its forward (schema)
// direction, ordered by source node ID and then by insertion order within
// the node — a deterministic walk, which is what lets the shard merge
// replay one graph's edges into another and get identical adjacency on
// every run. Iteration stops early if f returns false.
func (g *Graph) ForEachEdge(f func(u, v NodeID, t EdgeType) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for u := range g.adj {
		for i, he := range g.adj[u] {
			if g.out[u][i] {
				if !f(NodeID(u), he.To, he.Type) {
					return
				}
			}
		}
	}
}

// NodesOfKind returns the IDs of all nodes of kind k, in ID order.
func (g *Graph) NodesOfKind(k NodeKind) []NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]NodeID, 0, g.kindCount[k])
	for i := range g.nodes {
		if g.nodes[i].Kind == k {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// ForEachNode calls f with a copy of every node record in ID order.
func (g *Graph) ForEachNode(f func(Node)) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for i := range g.nodes {
		f(g.nodes[i])
	}
}

// AvgDegreeByKind returns the mean undirected degree for each node kind.
func (g *Graph) AvgDegreeByKind() map[NodeKind]float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	sum := make(map[NodeKind]int)
	for i := range g.nodes {
		sum[g.nodes[i].Kind] += len(g.adj[i])
	}
	out := make(map[NodeKind]float64, len(sum))
	for k, s := range sum {
		if g.kindCount[k] > 0 {
			out[k] = float64(s) / float64(g.kindCount[k])
		}
	}
	return out
}

// Adjacency returns a frozen copy of the adjacency lists, suitable for
// the analytics code that wants lock-free repeated traversal. The outer
// slice is indexed by NodeID.
func (g *Graph) Adjacency() [][]NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([][]NodeID, len(g.adj))
	for i, hes := range g.adj {
		row := make([]NodeID, len(hes))
		for j, he := range hes {
			row[j] = he.To
		}
		out[i] = row
	}
	return out
}

// CSR returns the undirected adjacency as an unweighted CSR matrix, the
// shared handoff to the sparse message-passing engine (label
// propagation, GCN, GraphSAGE all normalise and multiply this one
// snapshot). Neighbour order matches the adjacency lists. The snapshot
// is cached and invalidated on mutation, so repeated calls between
// mutations return the same frozen matrix at zero cost; callers must
// treat it as read-only.
func (g *Graph) CSR() *sparse.Matrix {
	g.mu.RLock()
	c := g.csr
	g.mu.RUnlock()
	if c != nil {
		return c
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.csrLocked()
}

// csrLocked builds (or returns) the cached snapshot under g.mu. With the
// incremental builder enabled the snapshot is emitted as a patch —
// slack-buffer copy-out with repaired normalisation and permutation
// caches pre-installed, bit-identical to the from-scratch build below.
func (g *Graph) csrLocked() *sparse.Matrix {
	if g.csr != nil {
		return g.csr
	}
	if g.inc != nil {
		m, fullSort := g.inc.packed()
		if fullSort {
			g.patchFallback++
		} else {
			g.patchApplied++
		}
		g.csr = m
		return g.csr
	}
	g.patchFallback++
	n := len(g.adj)
	rowPtr := make([]int, n+1)
	for i, hes := range g.adj {
		rowPtr[i+1] = rowPtr[i] + len(hes)
	}
	colIdx := make([]int32, rowPtr[n])
	k := 0
	for _, hes := range g.adj {
		for _, he := range hes {
			colIdx[k] = int32(he.To)
			k++
		}
	}
	g.csr = sparse.New(n, n, rowPtr, colIdx, nil)
	return g.csr
}

// CSRReordered returns the snapshot's cache-aware degree-descending view
// together with the vertex permutation mapping it back to original IDs
// (nil when the snapshot is small enough to skip reordering — see
// sparse.ReorderMinRows). The permuted view and its normalisation caches
// are built once per snapshot and shared, exactly like CSR itself;
// consumers that run row-local kernels (label propagation, GNN
// inference) execute in permuted space and scatter results back, which
// is bit-identical to running unpermuted.
func (g *Graph) CSRReordered() (*sparse.Matrix, *sparse.Permutation) {
	return g.CSR().Reordered()
}

// SortedNeighborKeys returns the keys of id's neighbours sorted
// lexicographically; useful for deterministic test assertions and debug
// rendering.
func (g *Graph) SortedNeighborKeys(id NodeID) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	keys := make([]string, len(g.adj[id]))
	for i, he := range g.adj[id] {
		keys[i] = g.nodes[he.To].Key
	}
	sort.Strings(keys)
	return keys
}
