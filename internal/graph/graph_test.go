package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"trail/internal/sparse"
)

func buildSmall(t *testing.T) *Graph {
	t.Helper()
	g := New()
	// event - ip - domain chain plus an ASN.
	ev, _ := g.Upsert(KindEvent, "ev1")
	ip, _ := g.Upsert(KindIP, "1.2.3.4")
	dom, _ := g.Upsert(KindDomain, "evil.com")
	asn, _ := g.Upsert(KindASN, "AS1")
	g.AddEdge(ev, ip, EdgeInReport)
	g.AddEdge(ip, dom, EdgeARecord)
	g.AddEdge(ip, asn, EdgeInGroup)
	return g
}

func TestUpsertIdempotent(t *testing.T) {
	g := New()
	a, created := g.Upsert(KindIP, "1.1.1.1")
	if !created {
		t.Fatal("first upsert should create")
	}
	b, created := g.Upsert(KindIP, "1.1.1.1")
	if created || a != b {
		t.Fatal("second upsert should return existing node")
	}
	// Same key, different kind: distinct node.
	c, created := g.Upsert(KindDomain, "1.1.1.1")
	if !created || c == a {
		t.Fatal("kind should be part of the identity")
	}
	if g.NumNodes() != 2 {
		t.Fatalf("nodes %d", g.NumNodes())
	}
}

func TestAddEdgeDeduplicatesAndCounts(t *testing.T) {
	g := buildSmall(t)
	before := g.NumEdges()
	ev, _ := g.Lookup(KindEvent, "ev1")
	ip, _ := g.Lookup(KindIP, "1.2.3.4")
	if g.AddEdge(ev, ip, EdgeInReport) {
		t.Fatal("duplicate edge inserted")
	}
	if g.AddEdge(ip, ev, EdgeInReport) {
		t.Fatal("reversed duplicate inserted")
	}
	if g.AddEdge(ev, ev, EdgeInReport) {
		t.Fatal("self-loop inserted")
	}
	if g.NumEdges() != before {
		t.Fatalf("edge count changed: %d -> %d", before, g.NumEdges())
	}
	if g.EdgeTypeCount(EdgeInReport) != 1 {
		t.Fatalf("type count %d", g.EdgeTypeCount(EdgeInReport))
	}
}

func TestNeighborEdgesDirection(t *testing.T) {
	g := buildSmall(t)
	ip, _ := g.Lookup(KindIP, "1.2.3.4")
	fwd, back := 0, 0
	g.NeighborEdges(ip, func(_ NodeID, _ EdgeType, isFwd bool) bool {
		if isFwd {
			fwd++
		} else {
			back++
		}
		return true
	})
	// ip->domain and ip->asn stored forward; event->ip stored backward.
	if fwd != 2 || back != 1 {
		t.Fatalf("fwd=%d back=%d", fwd, back)
	}
}

func TestBFSAndComponents(t *testing.T) {
	g := buildSmall(t)
	g.Upsert(KindDomain, "island.org") // isolated
	adj := g.Adjacency()
	ev, _ := g.Lookup(KindEvent, "ev1")
	dist := BFSDistances(adj, ev, -1)
	dom, _ := g.Lookup(KindDomain, "evil.com")
	if dist[dom] != 2 {
		t.Fatalf("distance to domain %d", dist[dom])
	}
	iso, _ := g.Lookup(KindDomain, "island.org")
	if dist[iso] != -1 {
		t.Fatal("isolated node reachable")
	}
	_, sizes := ConnectedComponents(adj)
	if len(sizes) != 2 {
		t.Fatalf("components %v", sizes)
	}
	members, size := LargestComponent(adj)
	if size != 4 || len(members) != 4 {
		t.Fatalf("largest %d", size)
	}
}

func TestBFSDepthLimit(t *testing.T) {
	g := buildSmall(t)
	adj := g.Adjacency()
	ev, _ := g.Lookup(KindEvent, "ev1")
	hood := KHopNeighborhood(adj, ev, 1)
	if len(hood) != 2 { // ev + ip
		t.Fatalf("1-hop neighborhood %v", hood)
	}
}

func TestEgoNet(t *testing.T) {
	g := buildSmall(t)
	adj := g.Adjacency()
	ev, _ := g.Lookup(KindEvent, "ev1")
	net := g.Ego(adj, ev, 2)
	if len(net.Nodes) != 4 {
		t.Fatalf("ego nodes %d", len(net.Nodes))
	}
	if len(net.Edges) != 3 {
		t.Fatalf("ego edges %d", len(net.Edges))
	}
	if net.Dist[ev] != 0 {
		t.Fatal("ego distance")
	}
}

func TestPseudoDiameterOnPath(t *testing.T) {
	g := New()
	const n = 10
	var prev NodeID
	for i := 0; i < n; i++ {
		id, _ := g.Upsert(KindIP, fmt.Sprintf("10.0.0.%d", i))
		if i > 0 {
			g.AddEdge(prev, id, EdgeARecord)
		}
		prev = id
	}
	adj := g.Adjacency()
	if d := PseudoDiameter(adj, 3, 4); d != n-1 {
		t.Fatalf("path diameter %d, want %d", d, n-1)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := New()
	for i := 0; i < 50; i++ {
		g.Upsert(NodeKind(rng.Intn(5)), fmt.Sprintf("node-%d", i))
	}
	for i := 0; i < 120; i++ {
		u := NodeID(rng.Intn(50))
		v := NodeID(rng.Intn(50))
		g.AddEdge(u, v, EdgeType(rng.Intn(5)))
	}
	g.UpdateNode(7, func(n *Node) { n.Label = 3; n.FirstOrder = true; n.EventCount = 2 })

	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2 := New()
	if _, err := g2.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	n := g2.Node(7)
	if n.Label != 3 || !n.FirstOrder || n.EventCount != 2 {
		t.Fatalf("node metadata lost: %+v", n)
	}
	for id := 0; id < g.NumNodes(); id++ {
		a := g.SortedNeighborKeys(NodeID(id))
		b := g2.SortedNeighborKeys(NodeID(id))
		if len(a) != len(b) {
			t.Fatalf("node %d adjacency mismatch", id)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d neighbor %d: %s vs %s", id, i, a[i], b[i])
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := buildSmall(t)
	path := t.TempDir() + "/g.gob"
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	g2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() {
		t.Fatal("load mismatch")
	}
	if _, err := Load(t.TempDir() + "/missing.gob"); err == nil {
		t.Fatal("loading missing file should fail")
	}
}

func TestConcurrentUpsertAndRead(t *testing.T) {
	g := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id, _ := g.Upsert(KindIP, fmt.Sprintf("ip-%d", i%50))
				other, _ := g.Upsert(KindDomain, fmt.Sprintf("d%d.com", i%40))
				g.AddEdge(id, other, EdgeARecord)
				g.Degree(id)
				g.Neighbors(other)
			}
		}(w)
	}
	wg.Wait()
	if g.KindCount(KindIP) != 50 || g.KindCount(KindDomain) != 40 {
		t.Fatalf("counts %d/%d", g.KindCount(KindIP), g.KindCount(KindDomain))
	}
}

func TestInducedAdjacency(t *testing.T) {
	g := buildSmall(t)
	adj := g.Adjacency()
	ip, _ := g.Lookup(KindIP, "1.2.3.4")
	sub := InducedAdjacency(adj, func(id NodeID) bool { return id != ip })
	for _, row := range sub {
		for _, v := range row {
			if v == ip {
				t.Fatal("excluded node still referenced")
			}
		}
	}
	if len(sub[ip]) != 0 {
		t.Fatal("excluded node has adjacency")
	}
}

func TestCountWithinHops(t *testing.T) {
	g := buildSmall(t)
	ev2, _ := g.Upsert(KindEvent, "ev2")
	ip, _ := g.Lookup(KindIP, "1.2.3.4")
	g.AddEdge(ev2, ip, EdgeInReport)
	adj := g.Adjacency()
	ev1, _ := g.Lookup(KindEvent, "ev1")
	if got := CountWithinHops(adj, []NodeID{ev1, ev2}, 2); got != 2 {
		t.Fatalf("within 2 hops: %d", got)
	}
	if got := CountWithinHops(adj, []NodeID{ev1, ev2}, 1); got != 0 {
		t.Fatalf("within 1 hop: %d", got)
	}
}

func TestComponentSizesSumToNodes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			g.Upsert(KindIP, fmt.Sprintf("n%d", i))
		}
		for e := 0; e < rng.Intn(60); e++ {
			g.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)), EdgeARecord)
		}
		_, sizes := ConnectedComponents(g.Adjacency())
		total := 0
		for _, s := range sizes {
			total += s
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRMatchesAdjacencyAndCaches(t *testing.T) {
	g := buildSmall(t)
	adj := g.Adjacency()
	csr := g.CSR()
	if csr.Rows != len(adj) || csr.Cols != len(adj) {
		t.Fatalf("CSR shape %dx%d, want %d", csr.Rows, csr.Cols, len(adj))
	}
	for u := range adj {
		row := csr.ColIdx[csr.RowPtr[u]:csr.RowPtr[u+1]]
		if len(row) != len(adj[u]) {
			t.Fatalf("node %d: CSR row has %d entries, adjacency %d", u, len(row), len(adj[u]))
		}
		for i, v := range adj[u] {
			if NodeID(row[i]) != v {
				t.Fatalf("node %d entry %d: CSR %d vs adjacency %d (order must match)", u, i, row[i], v)
			}
		}
	}
	if g.CSR() != csr {
		t.Fatal("CSR not cached between mutations")
	}
	// Mutations must invalidate the snapshot.
	u, _ := g.Lookup(KindIP, "1.1.1.1")
	d, _ := g.Upsert(KindDomain, "csr-invalidate.test")
	g.AddEdge(u, d, EdgeARecord)
	csr2 := g.CSR()
	if csr2 == csr {
		t.Fatal("CSR cache not invalidated by mutation")
	}
	if csr2.Rows != g.NumNodes() || csr2.NNZ() != csr.NNZ()+2 {
		t.Fatalf("stale CSR after mutation: %d rows nnz %d", csr2.Rows, csr2.NNZ())
	}
}

// TestCSRReordered pins the snapshot-level reordering hook: below the
// gate it runs unpermuted, above it the permuted view round-trips every
// vertex through Perm/Inv and is cached alongside the CSR snapshot.
func TestCSRReordered(t *testing.T) {
	g := New()
	const n = 64
	for i := 0; i < n; i++ {
		g.Upsert(KindIP, fmt.Sprintf("10.0.0.%d", i))
	}
	// Star around vertex 0 plus a sprinkling of chain edges, so the
	// degree order is not the insertion order.
	for i := 1; i < n; i++ {
		g.AddEdge(0, NodeID(i), EdgeInReport)
	}
	for i := 5; i+1 < n; i++ {
		g.AddEdge(NodeID(i), NodeID(i+1), EdgeInReport)
	}

	orig := sparse.ReorderMinRows
	defer func() { sparse.ReorderMinRows = orig }()

	sparse.ReorderMinRows = n + 1
	if rs, p := g.CSRReordered(); p != nil || rs != g.CSR() {
		t.Fatal("small snapshot should skip reordering")
	}

	sparse.ReorderMinRows = 1
	g2 := New() // fresh graph: the reordered view is cached per snapshot
	for i := 0; i < n; i++ {
		g2.Upsert(KindIP, fmt.Sprintf("10.0.0.%d", i))
	}
	for i := 1; i < n; i++ {
		g2.AddEdge(0, NodeID(i), EdgeInReport)
	}
	for i := 5; i+1 < n; i++ {
		g2.AddEdge(NodeID(i), NodeID(i+1), EdgeInReport)
	}
	rs, p := g2.CSRReordered()
	if p == nil {
		t.Fatal("large snapshot should reorder")
	}
	csr := g2.CSR()
	if rs.NNZ() != csr.NNZ() {
		t.Fatalf("reordered NNZ %d, want %d", rs.NNZ(), csr.NNZ())
	}
	for old := 0; old < n; old++ {
		nw := p.Inv[old]
		if int(p.Perm[nw]) != old {
			t.Fatalf("Perm/Inv mismatch at vertex %d", old)
		}
		if rs.RowPtr[nw+1]-rs.RowPtr[int(nw)] != csr.RowPtr[old+1]-csr.RowPtr[old] {
			t.Fatalf("vertex %d degree changed under permutation", old)
		}
	}
	// Degree-descending: permuted row degrees are non-increasing.
	for r := 1; r < n; r++ {
		if rs.RowPtr[r+1]-rs.RowPtr[r] > rs.RowPtr[r]-rs.RowPtr[r-1] {
			t.Fatalf("row %d out of degree order", r)
		}
	}
	rs2, p2 := g2.CSRReordered()
	if rs2 != rs || p2 != p {
		t.Fatal("reordered view not cached on the snapshot")
	}
}

// TestVersionMonotonic: the mutation counter moves on every state
// change (node created, edge inserted, record updated) and stays put on
// no-op mutations, so snapshot consumers can use it for staleness.
func TestVersionMonotonic(t *testing.T) {
	g := New()
	v0 := g.Version()
	a, _ := g.Upsert(KindEvent, "e1")
	if g.Version() <= v0 {
		t.Fatal("Upsert(create) did not bump version")
	}
	v1 := g.Version()
	if _, created := g.Upsert(KindEvent, "e1"); created || g.Version() != v1 {
		t.Fatal("no-op Upsert bumped version")
	}
	b, _ := g.Upsert(KindIP, "1.2.3.4")
	v2 := g.Version()
	if !g.AddEdge(a, b, EdgeInReport) || g.Version() <= v2 {
		t.Fatal("AddEdge(insert) did not bump version")
	}
	v3 := g.Version()
	if g.AddEdge(a, b, EdgeInReport) || g.Version() != v3 {
		t.Fatal("duplicate AddEdge bumped version")
	}
	g.UpdateNode(b, func(n *Node) { n.Label = 7 })
	if g.Version() <= v3 {
		t.Fatal("UpdateNode did not bump version")
	}
}

// TestTakeDirty: with tracking on, created nodes and edge endpoints
// accumulate into a sorted, deduplicated set that drains on Take.
func TestTakeDirty(t *testing.T) {
	g := New()
	if got := g.TakeDirty(); got != nil {
		t.Fatalf("untracked TakeDirty = %v", got)
	}
	g.TrackDirty(true)
	a, _ := g.Upsert(KindEvent, "e1")
	b, _ := g.Upsert(KindIP, "1.2.3.4")
	c, _ := g.Upsert(KindIP, "5.6.7.8")
	g.AddEdge(a, b, EdgeInReport)
	g.AddEdge(a, b, EdgeInReport) // duplicate: no new dirt
	d := g.TakeDirty()
	want := []NodeID{a, b, c}
	if len(d) != len(want) {
		t.Fatalf("dirty %v, want %v", d, want)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dirty %v, want %v", d, want)
		}
	}
	if got := g.TakeDirty(); got != nil {
		t.Fatalf("second TakeDirty = %v, want nil", got)
	}
	// Edge between two existing nodes dirties both endpoints.
	g.AddEdge(b, c, EdgeARecord)
	d = g.TakeDirty()
	if len(d) != 2 || d[0] != b || d[1] != c {
		t.Fatalf("edge dirt %v, want [%d %d]", d, b, c)
	}
	g.TrackDirty(false)
	g.Upsert(KindDomain, "x.test")
	if got := g.TakeDirty(); got != nil {
		t.Fatalf("disabled TakeDirty = %v", got)
	}
}

func TestForEachEdgeForwardWalk(t *testing.T) {
	g := buildSmall(t)
	type edge struct {
		u, v NodeID
		et   EdgeType
	}
	var got []edge
	g.ForEachEdge(func(u, v NodeID, et EdgeType) bool {
		got = append(got, edge{u, v, et})
		return true
	})
	if len(got) != g.NumEdges() {
		t.Fatalf("walked %d edges, graph has %d", len(got), g.NumEdges())
	}
	ev, _ := g.Lookup(KindEvent, "ev1")
	ip, _ := g.Lookup(KindIP, "1.2.3.4")
	dom, _ := g.Lookup(KindDomain, "evil.com")
	asn, _ := g.Lookup(KindASN, "AS1")
	want := []edge{ // source-ID-major, insertion order within source
		{ev, ip, EdgeInReport},
		{ip, dom, EdgeARecord},
		{ip, asn, EdgeInGroup},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: got %v want %v (forward direction, deterministic order)", i, got[i], want[i])
		}
	}
	// Early stop.
	n := 0
	g.ForEachEdge(func(_, _ NodeID, _ EdgeType) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("early stop visited %d edges", n)
	}
}
