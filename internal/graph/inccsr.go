package graph

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"trail/internal/sparse"
)

// Incremental CSR maintenance (DESIGN.md §3j).
//
// The streaming ingest path mutates the graph a handful of edges at a
// time and then needs a CSR snapshot — historically a full O(V+E)
// re-pack plus full re-normalisation and a full degree re-sort per cut.
// csrBuilder keeps a slack-slotted mirror of the adjacency alongside the
// HalfEdge lists: every row owns a slot with spare capacity, appends go
// into the slack (amortised O(1), relocating a row to the tail when its
// slot fills), and the derived artefacts — sym-normalisation values,
// mean scales, the degree-descending permutation — are repaired only for
// the rows a delta actually touched.
//
// Bit-identity contract: every emitted snapshot is bit-for-bit the
// matrix the from-scratch path would have built.
//   - Adjacency values are exact ones, so row sums are exact integers:
//     invSqrt[i] = 1/Sqrt(float64(deg)) and meanScale[i] = 1/float64(deg)
//     equal the from-scratch accumulations bitwise.
//   - A sym entry is 1·(invSqrt[i]·invSqrt[j]); multiplying by 1 is
//     exact, so the repaired product matches SymNormalized bitwise.
//   - The adjacency is append-only, so a row whose entry set did not
//     change since the previous emission is byte-identical in the new
//     one: emission splices only the delta rows and block-copies
//     unchanged runs straight out of the previous snapshot.
//
// The reorder cache is the one deliberate exception to snapshot-level
// identity with the from-scratch path: the degree-descending order is a
// cache-locality heuristic, and every consumer uses the permuted view as
// a row-local gather/scatter (row r of the view is row Perm[r] of the
// base, with the within-row entry order preserved), so kernel results
// are bit-identical for ANY valid permutation. Emission therefore keeps
// the previous permutation sticky — new nodes append at the tail, and
// degree drift accumulates — and re-sorts to exact degree order only
// when the drifted-row count crosses sparse.ReorderMinRows. That is what
// lets the permuted view be spliced from the previous emission too,
// instead of re-gathered O(nnz) per cut: under a sticky permutation the
// relabelling (Inv) of pre-existing IDs never moves.
//
// The whole contract is pinned by the mutation-sequence fuzz harness in
// inccsr_test.go, which checks both matrix-level identity (adjacency,
// normalisations) and kernel-level identity (permuted SpMM scattered
// back vs the unpermuted run).
type csrBuilder struct {
	// Slot layout: row i's live entries are col[start[i]:end[i]] inside a
	// slot of rcap[i] entries; sym is the parallel sym-normalised value
	// buffer and ones a shared all-ones value buffer of the same length.
	// start has one extra element so the buffer can be wrapped as a CSR
	// RowPtr directly (the last element is scratch).
	start []int
	end   []int
	rcap  []int
	col   []int32
	sym   []float64
	ones  []float64

	// Per-node normalisation scalars, repaired for degree-changed nodes.
	invSqrt   []float64
	meanScale []float64

	used  int // high-water offset in col/sym
	waste int // slots abandoned by row relocations
	nnz   int // live entries

	// symStale holds nodes whose degree changed since the last sym
	// repair; permDirty holds nodes whose degree changed since lastPerm
	// was last brought to exact degree order (drift accumulates across
	// sticky emissions); colDirty holds rows whose entry set changed
	// since the last packed emission (the splice set).
	symStale  map[NodeID]struct{}
	permDirty map[NodeID]struct{}
	colDirty  map[NodeID]struct{}
	// lastPerm is the sticky permutation (nil before the first emission
	// above the reorder gate); lastP wraps it with its inverse. Both are
	// shared read-only with emitted snapshots.
	lastPerm []int32
	lastP    *sparse.Permutation
	// lastM / lastPM are the previous emission's packed base and permuted
	// view (immutable), the splice sources for the next emission.
	lastM  *sparse.Matrix
	lastPM *sparse.Matrix
	// dirtyMark is a reusable n-sized scratch marking colDirty rows
	// during a splice.
	dirtyMark []bool
}

// csrCompactMinSlots gates slot-buffer compaction: below this many used
// slots the waste from relocations is too small to matter. Tests lower
// it to force compaction onto small fixtures.
var csrCompactMinSlots = 1 << 16

// slackFor is the spare capacity given to a row of degree d at (re)pack
// time: proportional headroom for hubs, a couple of free slots for
// everyone else.
func slackFor(d int) int { return d + d/4 + 2 }

// newCSRBuilderLocked mirrors g's current adjacency into a fresh slotted
// buffer with all derived artefacts valid. Caller holds g.mu.
func newCSRBuilderLocked(g *Graph) *csrBuilder {
	n := len(g.adj)
	b := &csrBuilder{
		start:     make([]int, n+1),
		end:       make([]int, n),
		rcap:      make([]int, n),
		invSqrt:   make([]float64, n),
		meanScale: make([]float64, n),
		symStale:  make(map[NodeID]struct{}),
		permDirty: make(map[NodeID]struct{}),
		colDirty:  make(map[NodeID]struct{}),
	}
	total := 0
	for _, hes := range g.adj {
		total += slackFor(len(hes))
	}
	if total < 64 {
		total = 64
	}
	b.col = make([]int32, total)
	b.sym = make([]float64, total)
	b.ones = onesOf(total)
	off := 0
	for i, hes := range g.adj {
		d := len(hes)
		b.start[i] = off
		for k, he := range hes {
			b.col[off+k] = int32(he.To)
		}
		b.end[i] = off + d
		b.rcap[i] = slackFor(d)
		off += b.rcap[i]
		if d > 0 {
			b.invSqrt[i] = 1 / math.Sqrt(float64(d))
			b.meanScale[i] = 1 / float64(d)
		}
		b.nnz += d
	}
	b.used = off
	b.start[n] = off
	for i := range g.adj {
		inv := b.invSqrt[i]
		for k := b.start[i]; k < b.end[i]; k++ {
			b.sym[k] = inv * b.invSqrt[b.col[k]]
		}
	}
	return b
}

func onesOf(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// addNode extends the mirror with a fresh degree-0 row (empty slot at
// the tail; its first append will tail-extend in place).
func (b *csrBuilder) addNode() {
	id := NodeID(len(b.end))
	b.start[len(b.start)-1] = b.used
	b.start = append(b.start, 0)
	b.end = append(b.end, b.used)
	b.rcap = append(b.rcap, 0)
	b.invSqrt = append(b.invSqrt, 0)
	b.meanScale = append(b.meanScale, 0)
	b.permDirty[id] = struct{}{}
}

// addEdge appends the two half-edges of u-v and marks both endpoints for
// normalisation and permutation repair.
func (b *csrBuilder) addEdge(u, v NodeID) {
	b.appendEntry(u, int32(v))
	b.appendEntry(v, int32(u))
	b.symStale[u] = struct{}{}
	b.symStale[v] = struct{}{}
	b.permDirty[u] = struct{}{}
	b.permDirty[v] = struct{}{}
	b.colDirty[u] = struct{}{}
	b.colDirty[v] = struct{}{}
}

func (b *csrBuilder) appendEntry(i NodeID, j int32) {
	deg := b.end[i] - b.start[i]
	if deg == b.rcap[i] { // slot full
		if b.start[i]+b.rcap[i] == b.used { // tail row: extend in place
			b.ensure(1)
			b.rcap[i]++
			b.used++
		} else { // relocate to a doubled slot at the tail
			newCap := 2 * deg
			if newCap < 4 {
				newCap = 4
			}
			b.ensure(newCap)
			ns := b.used
			copy(b.col[ns:ns+deg], b.col[b.start[i]:b.end[i]])
			copy(b.sym[ns:ns+deg], b.sym[b.start[i]:b.end[i]])
			b.start[i] = ns
			b.end[i] = ns + deg
			b.rcap[i] = newCap
			b.used += newCap
			b.waste += deg // the abandoned slot's live span; its slack was never counted
		}
	}
	b.col[b.end[i]] = j
	// The sym slot stays stale; repairSym fills it (i is in symStale).
	b.end[i]++
	b.nnz++
}

// ensure grows the slot buffers so at least k more slots fit past used.
func (b *csrBuilder) ensure(k int) {
	need := b.used + k
	if need <= len(b.col) {
		return
	}
	sz := 2 * len(b.col)
	if sz < need {
		sz = need
	}
	if sz < 64 {
		sz = 64
	}
	col := make([]int32, sz)
	copy(col, b.col)
	b.col = col
	sym := make([]float64, sz)
	copy(sym, b.sym)
	b.sym = sym
	b.ones = onesOf(sz)
}

// repairSym re-derives the normalisation scalars for degree-changed
// nodes and rewrites the sym values of exactly the rows whose entries
// reference a changed scalar: the stale rows themselves plus their
// neighbours (an entry (i,j) is invSqrt[i]·invSqrt[j], and j∈stale means
// i is a neighbour of j). O(one-hop volume of the delta).
func (b *csrBuilder) repairSym() {
	if len(b.symStale) == 0 {
		return
	}
	for id := range b.symStale {
		d := b.end[id] - b.start[id]
		if d > 0 {
			b.invSqrt[id] = 1 / math.Sqrt(float64(d))
			b.meanScale[id] = 1 / float64(d)
		} else {
			b.invSqrt[id] = 0
			b.meanScale[id] = 0
		}
	}
	rows := make(map[NodeID]struct{}, 3*len(b.symStale))
	for id := range b.symStale {
		rows[id] = struct{}{}
		for k := b.start[id]; k < b.end[id]; k++ {
			rows[NodeID(b.col[k])] = struct{}{}
		}
	}
	for id := range rows {
		inv := b.invSqrt[id]
		for k := b.start[id]; k < b.end[id]; k++ {
			b.sym[k] = inv * b.invSqrt[b.col[k]]
		}
	}
	clear(b.symStale)
}

// maybeCompact repacks the slot buffer with fresh slack when relocation
// waste dominates. Called at flush points, after repairSym (so sym
// values are valid when copied).
func (b *csrBuilder) maybeCompact() {
	if b.used <= csrCompactMinSlots || 2*b.waste <= b.used {
		return
	}
	n := len(b.end)
	total := 0
	for i := 0; i < n; i++ {
		total += slackFor(b.end[i] - b.start[i])
	}
	if total < 64 {
		total = 64
	}
	col := make([]int32, total)
	sym := make([]float64, total)
	off := 0
	for i := 0; i < n; i++ {
		d := b.end[i] - b.start[i]
		copy(col[off:off+d], b.col[b.start[i]:b.end[i]])
		copy(sym[off:off+d], b.sym[b.start[i]:b.end[i]])
		b.start[i] = off
		b.end[i] = off + d
		b.rcap[i] = slackFor(d)
		off += b.rcap[i]
	}
	b.col, b.sym = col, sym
	b.ones = onesOf(total)
	b.used, b.waste = off, 0
	b.start[n] = off
}

// emitPerm returns the reorder permutation for the next emission.
//
// Steady state is the sticky path: the previous permutation is reused
// verbatim (new nodes appended at the tail in ID order), which keeps the
// inverse mapping of pre-existing IDs frozen so the permuted view can be
// spliced instead of re-gathered. Degree drift accumulates in permDirty;
// when it crosses sparse.ReorderMinRows the permutation is brought back
// to exact degree-descending order — by merging the re-sorted drifted
// IDs into the still-sorted remainder when possible, or by a full
// re-sort (repaired=false, the patch-fallback case) on the first
// emission. Either way the result is bit-identical to what
// sparse.DegreePermutation would build at that instant: the sort is a
// strict total order (degree descending, ID ascending on ties — what
// sort.SliceStable over identity produces), so merge and re-sort agree.
//
// sticky reports that the returned permutation equals the previous
// emission's for all pre-existing rows (the permuted-splice
// precondition).
func (b *csrBuilder) emitPerm() (p *sparse.Permutation, sticky, repaired bool) {
	n := len(b.end)
	if b.lastPerm != nil && len(b.permDirty) < sparse.ReorderMinRows {
		if len(b.lastPerm) < n {
			np := make([]int32, n)
			copy(np, b.lastPerm)
			for i := len(b.lastPerm); i < n; i++ {
				np[i] = int32(i)
			}
			b.lastPerm = np
			b.lastP = sparse.NewPermutation(np)
		}
		return b.lastP, true, true
	}

	degOf := func(i int32) int { return b.end[i] - b.start[i] }
	less := func(a, c int32) bool {
		da, dc := degOf(a), degOf(c)
		if da != dc {
			return da > dc
		}
		return a < c
	}
	var perm []int32
	if b.lastPerm != nil && len(b.permDirty) < n {
		stable := make([]int32, 0, n-len(b.permDirty))
		for _, id := range b.lastPerm {
			if _, dirty := b.permDirty[NodeID(id)]; !dirty {
				stable = append(stable, id)
			}
		}
		changed := make([]int32, 0, len(b.permDirty))
		for id := range b.permDirty {
			changed = append(changed, int32(id))
		}
		slices.SortFunc(changed, func(a, c int32) int {
			if less(a, c) {
				return -1
			}
			return 1
		})
		perm = make([]int32, 0, n)
		i, j := 0, 0
		for i < len(stable) && j < len(changed) {
			if less(stable[i], changed[j]) {
				perm = append(perm, stable[i])
				i++
			} else {
				perm = append(perm, changed[j])
				j++
			}
		}
		perm = append(perm, stable[i:]...)
		perm = append(perm, changed[j:]...)
		repaired = true
	} else {
		perm = make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		sort.SliceStable(perm, func(a, c int) bool { return degOf(perm[a]) > degOf(perm[c]) })
	}
	b.lastPerm = perm
	b.lastP = sparse.NewPermutation(perm)
	clear(b.permDirty)
	return b.lastP, false, repaired
}

// markColDirty refreshes the splice scratch: dirtyMark[i] reports that
// row i's entry set changed since the previous emission.
func (b *csrBuilder) markColDirty(n int) {
	if cap(b.dirtyMark) < n {
		b.dirtyMark = make([]bool, n)
	} else {
		b.dirtyMark = b.dirtyMark[:n]
		clear(b.dirtyMark)
	}
	for id := range b.colDirty {
		if int(id) < n {
			b.dirtyMark[id] = true
		}
	}
}

// spliceRows fills dst (a fresh packed colIdx) by copying delta rows out
// of the slot buffer — relabelled through inv when building a permuted
// view — and block-copying runs of unchanged rows straight from the
// previous emission old. rowOf maps a destination row to its source node
// (identity for the base layout, Perm for the permuted one); old may be
// nil (first emission), which degenerates to an all-rows gather. The
// append-only adjacency guarantees an unchanged row is byte-identical
// between consecutive emissions, and a sticky permutation guarantees
// inv is frozen for every ID an unchanged row can reference, so block
// copies are exact.
func (b *csrBuilder) spliceRows(dst []int32, rowPtr []int, old *sparse.Matrix, rowOf func(int) int32, inv []int32) {
	n := len(rowPtr) - 1
	oldN := 0
	if old != nil {
		oldN = old.Rows
	}
	for r := 0; r < n; {
		u := rowOf(r)
		if r < oldN && !b.dirtyMark[u] {
			j := r + 1
			for j < oldN && !b.dirtyMark[rowOf(j)] {
				j++
			}
			copy(dst[rowPtr[r]:rowPtr[j]], old.ColIdx[old.RowPtr[r]:old.RowPtr[j]])
			r = j
			continue
		}
		if inv == nil {
			copy(dst[rowPtr[r]:rowPtr[r+1]], b.col[b.start[u]:b.end[u]])
		} else {
			k := rowPtr[r]
			for q := b.start[u]; q < b.end[u]; q++ {
				dst[k] = inv[b.col[q]]
				k++
			}
		}
		r++
	}
}

// packed emits an immutable packed snapshot with the hot derived caches
// pre-installed: the adjacency CSR, its mean normalisation, and (above
// the reorder gate) the permuted view with its mean scales. The sym
// normalisation stays lazy — the streaming path reads it through the
// live slacked view, where it is maintained in place, and a lazy rebuild
// on the packed snapshot multiplies the same exact invSqrt pairs, so it
// is bit-identical whenever a consumer does ask. fullSort reports that
// the permutation had to be re-sorted from scratch (the patch-fallback
// case, also the first emission above the gate).
func (b *csrBuilder) packed() (m *sparse.Matrix, fullSort bool) {
	b.repairSym()
	b.maybeCompact()
	n := len(b.end)
	rowPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = rowPtr[i] + (b.end[i] - b.start[i])
	}
	nnz := rowPtr[n]
	colIdx := make([]int32, nnz)
	b.markColDirty(n)
	b.spliceRows(colIdx, rowPtr, b.lastM, func(r int) int32 { return int32(r) }, nil)
	meanScale := make([]float64, n)
	copy(meanScale, b.meanScale)

	m = sparse.New(n, n, rowPtr, colIdx, nil)
	m.InstallMeanNormalized(m.WithValues(nil, meanScale))

	if n >= sparse.ReorderMinRows {
		p, sticky, repaired := b.emitPerm()
		fullSort = !repaired
		identity := true
		for i, o := range p.Perm {
			if int(o) != i {
				identity = false
				break
			}
		}
		if identity {
			m.InstallReordered(m, nil)
			b.lastPM = nil
		} else {
			pmRowPtr := make([]int, n+1)
			for r := 0; r < n; r++ {
				u := p.Perm[r]
				pmRowPtr[r+1] = pmRowPtr[r] + (b.end[u] - b.start[u])
			}
			pmCol := make([]int32, nnz)
			var oldPM *sparse.Matrix
			if sticky {
				// Splice precondition: row r of the previous permuted view
				// is the same source node, and Inv of pre-existing IDs is
				// frozen. Both hold only on the sticky path.
				oldPM = b.lastPM
			}
			b.spliceRows(pmCol, pmRowPtr, oldPM, func(r int) int32 { return p.Perm[r] }, p.Inv)
			pm := sparse.New(n, n, pmRowPtr, pmCol, nil)
			// Gather the maintained mean scales through the permutation
			// instead of recomputing (a degree is a degree in any row
			// order, so the gathered scales are bit-identical).
			pmMean := make([]float64, n)
			for r, src := range p.Perm {
				pmMean[r] = meanScale[src]
			}
			pm.InstallMeanNormalized(pm.WithValues(nil, pmMean))
			m.InstallReordered(pm, p)
			b.lastPM = pm
		}
	}
	b.lastM = m
	clear(b.colDirty)
	return m, fullSort
}

// live returns a transient zero-copy slacked view over the builder's own
// buffers, with the sym normalisation pre-installed (sharing the same
// structure). Valid only until the next mutation; intended for the
// single-threaded ingest apply loop between cuts.
func (b *csrBuilder) live() *sparse.Matrix {
	b.repairSym()
	n := len(b.end)
	b.start[n] = b.used
	adj := sparse.NewSlackedOf[float64](n, n, b.start[:n+1], b.end, b.col, b.ones, b.nnz)
	adj.InstallSymNormalized(sparse.NewSlackedOf[float64](n, n, b.start[:n+1], b.end, b.col, b.sym, b.nnz))
	return adj
}

// EnableCSRPatch turns incremental CSR maintenance on (or off). While
// enabled, mutations keep a slack-slotted adjacency mirror up to date
// and CSR() emits patched snapshots — bit-identical to the from-scratch
// build — instead of re-packing and re-normalising the whole graph.
// Enabling on a populated graph mirrors the current adjacency once.
func (g *Graph) EnableCSRPatch(on bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !on {
		g.inc = nil
		return
	}
	if g.inc == nil {
		g.inc = newCSRBuilderLocked(g)
	}
}

// CSRPatchEnabled reports whether incremental CSR maintenance is on.
func (g *Graph) CSRPatchEnabled() bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.inc != nil
}

// LiveCSR returns a transient slack-slotted view of the current
// adjacency with its sym normalisation pre-installed, sharing the
// incremental builder's buffers: no packing, no copying, no
// re-normalisation. The view (and anything derived from it) is only
// valid until the graph's next mutation, and callers must not retain it
// across mutations — it is meant for the single-threaded streaming
// apply loop, which consumes it before applying the next event. When
// patching is disabled it falls back to the packed CSR() snapshot.
func (g *Graph) LiveCSR() *sparse.Matrix {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.inc == nil {
		return g.csrLocked()
	}
	return g.inc.live()
}

// AdoptCSR installs a prebuilt packed snapshot (typically the patched
// CSR of the graph this one was cloned from) as g's cached CSR, so the
// clone's consumers reuse the snapshot's pre-installed normalisation and
// reorder caches instead of rebuilding them. The snapshot must match g's
// current shape.
func (g *Graph) AdoptCSR(m *sparse.Matrix) error {
	if m == nil || m.Slacked() {
		return fmt.Errorf("graph: AdoptCSR: snapshot must be packed")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if m.Rows != len(g.nodes) || m.NNZ() != 2*g.edgeCount {
		return fmt.Errorf("graph: AdoptCSR: snapshot %dx%d/%d entries does not match graph %d nodes/%d edges",
			m.Rows, m.Cols, m.NNZ(), len(g.nodes), g.edgeCount)
	}
	g.csr = m
	return nil
}

// CSRPatchStats counts snapshot emissions: Applied are patched emissions
// (slack-buffer copy-out with repaired normalisation and a reused or
// merge-repaired permutation), Fallback are from-scratch builds — patch
// disabled, or the permutation needed a full re-sort (including the
// first emission above the reorder gate).
type CSRPatchStats struct {
	Applied  uint64
	Fallback uint64
}

// CSRPatchStats returns the emission counters.
func (g *Graph) CSRPatchStats() CSRPatchStats {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return CSRPatchStats{Applied: g.patchApplied, Fallback: g.patchFallback}
}

// DrainDirty is TakeDirty without the per-call allocations: the sorted
// IDs are written into a buffer owned by the graph and returned as a
// view, valid until the next DrainDirty call. The single-consumer
// streaming apply loop drains per event, so the buffer is recycled
// thousands of times per cut.
func (g *Graph) DrainDirty() []NodeID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.drainDirtyLocked()
}

func (g *Graph) drainDirtyLocked() []NodeID {
	if len(g.dirty) == 0 {
		return nil
	}
	buf := g.dirtyBuf[:0]
	for id := range g.dirty {
		buf = append(buf, id)
	}
	clear(g.dirty)
	slices.Sort(buf)
	g.dirtyBuf = buf
	return buf
}
