package graph

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"trail/internal/mat"
	"trail/internal/sparse"
)

// mutatePair applies one random mutation batch identically to the
// patched graph and its from-scratch mirror. Both see the same (kind,
// key) upserts and AddEdge calls in the same order, so node IDs and
// adjacency entry order — and therefore every derived matrix — must
// match exactly.
func mutatePair(rng *rand.Rand, g, mirror *Graph, batch int) {
	for op := 0; op < batch; op++ {
		if g.NumNodes() < 4 || rng.Intn(3) == 0 {
			kind := NodeKind(rng.Intn(int(numKinds)))
			key := fmt.Sprintf("n-%d", rng.Intn(200))
			g.Upsert(kind, key)
			mirror.Upsert(kind, key)
		} else {
			n := g.NumNodes()
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			t := EdgeType(rng.Intn(int(numEdgeTypes)))
			a := g.AddEdge(u, v, t)
			b := mirror.AddEdge(u, v, t)
			if a != b {
				panic("fuzz mirrors diverged on AddEdge result")
			}
		}
	}
}

func f64bitsEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func intsEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func i32Eq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkPatchedEqualsRebuilt asserts the patched graph's CSR snapshot —
// structure, values, normalisation caches, reordered view — is
// bit-identical to the mirror's from-scratch build.
func checkPatchedEqualsRebuilt(t *testing.T, g, mirror *Graph, tag string) {
	t.Helper()
	pc, rc := g.CSR(), mirror.CSR()
	if pc.Rows != rc.Rows || pc.NNZ() != rc.NNZ() {
		t.Fatalf("%s: shape %dx%d/%d vs %dx%d/%d", tag, pc.Rows, pc.Cols, pc.NNZ(), rc.Rows, rc.Cols, rc.NNZ())
	}
	if pc.Slacked() {
		t.Fatalf("%s: CSR() emitted a slacked matrix", tag)
	}
	if !intsEq(pc.RowPtr, rc.RowPtr) || !i32Eq(pc.ColIdx, rc.ColIdx) || !f64bitsEq(pc.Val, rc.Val) {
		t.Fatalf("%s: adjacency CSR differs", tag)
	}
	ps, rs := pc.SymNormalized(), rc.SymNormalized()
	if !f64bitsEq(ps.Val, rs.Val) {
		t.Fatalf("%s: sym-normalised values differ", tag)
	}
	pm, rm := pc.MeanNormalized(), rc.MeanNormalized()
	if !f64bitsEq(pm.RowScale, rm.RowScale) {
		t.Fatalf("%s: mean scales differ", tag)
	}
	// The permutation itself is a locality cache, not part of the
	// snapshot identity: the sticky scheme keeps the previous order under
	// bounded degree drift, so it may legitimately differ from the
	// mirror's fresh degree sort. What is pinned instead: the emitted
	// permuted view must be exactly the reference gather of the (already
	// bit-identical) base under its own permutation, its installed
	// normalisation caches must match lazy recomputation, and permuted
	// kernels must scatter back bit-identical answers.
	if prp := mustPerm(pc); prp != nil {
		seen := make([]bool, pc.Rows)
		for _, id := range prp.Perm {
			if seen[id] {
				t.Fatalf("%s: emitted perm repeats row %d", tag, id)
			}
			seen[id] = true
		}
		pv, _ := pc.Reordered()
		exp := rc.Permute(prp)
		if !intsEq(pv.RowPtr, exp.RowPtr) || !i32Eq(pv.ColIdx, exp.ColIdx) || !f64bitsEq(pv.Val, exp.Val) {
			t.Fatalf("%s: permuted view differs from reference gather", tag)
		}
		if !f64bitsEq(pv.SymNormalized().Val, exp.SymNormalized().Val) {
			t.Fatalf("%s: permuted sym values differ", tag)
		}
		if !f64bitsEq(pv.MeanNormalized().RowScale, exp.MeanNormalized().RowScale) {
			t.Fatalf("%s: permuted mean scales differ", tag)
		}
		checkPermutedKernel(t, pc, rc, tag)
	}
}

// checkPermutedKernel pins the property the sticky permutation relies
// on: a row-local SpMM run in permuted space and scattered back is
// bit-identical to the unpermuted run, for WHATEVER permutation the
// patched snapshot carries.
func checkPermutedKernel(t *testing.T, pc, rc *sparse.Matrix, tag string) {
	t.Helper()
	n := pc.Rows
	const cols = 3
	x := mat.New(n, cols)
	for i := 0; i < n; i++ {
		for c := 0; c < cols; c++ {
			x.Set(i, c, float64(1+(i*7+c*3)%11)/3)
		}
	}
	plain := mat.New(n, cols)
	rc.SymNormalized().SpMM(plain, x)

	pv, prp := pc.Reordered()
	xp := mat.New(n, cols)
	for r := 0; r < n; r++ {
		copy(xp.Row(r), x.Row(int(prp.Perm[r])))
	}
	yp := mat.New(n, cols)
	pv.SymNormalized().SpMM(yp, xp)
	got := mat.New(n, cols)
	sparse.ScatterRowsInto(prp, got, yp)
	if !f64bitsEq(got.Data, plain.Data) {
		t.Fatalf("%s: permuted SpMM scattered back differs from plain run", tag)
	}
}

func mustPerm(m *sparse.Matrix) *sparse.Permutation {
	_, p := m.Reordered()
	return p
}

// checkLiveMatches asserts the transient slacked view exposes exactly
// the mirror's packed rows (adjacency and sym values) without emitting.
func checkLiveMatches(t *testing.T, g, mirror *Graph, tag string) {
	t.Helper()
	lv := g.LiveCSR()
	rc := mirror.CSR()
	if !lv.Slacked() {
		t.Fatalf("%s: LiveCSR returned a packed matrix with patching on", tag)
	}
	if lv.Rows != rc.Rows || lv.NNZ() != rc.NNZ() {
		t.Fatalf("%s: live shape %d/%d vs %d/%d", tag, lv.Rows, lv.NNZ(), rc.Rows, rc.NNZ())
	}
	ls, rs := lv.SymNormalized(), rc.SymNormalized()
	for i := 0; i < lv.Rows; i++ {
		lrow := lv.ColIdx[lv.RowPtr[i]:lv.End(i)]
		rrow := rc.ColIdx[rc.RowPtr[i]:rc.End(i)]
		if !i32Eq(lrow, rrow) {
			t.Fatalf("%s: live row %d structure differs", tag, i)
		}
		if !f64bitsEq(ls.Val[ls.RowPtr[i]:ls.End(i)], rs.Val[rs.RowPtr[i]:rs.End(i)]) {
			t.Fatalf("%s: live sym row %d differs", tag, i)
		}
		for _, v := range lv.Val[lv.RowPtr[i]:lv.End(i)] {
			if v != 1 {
				t.Fatalf("%s: live adjacency value != 1 in row %d", tag, i)
			}
		}
	}
}

// TestCSRPatchFuzz replays randomized mutation sequences into a patched
// graph and a from-scratch mirror and pins bit-identity of every emitted
// artefact after every batch — the incremental-CSR correctness contract.
// It also exercises the ReadFrom re-mirror and forced slot compaction.
func TestCSRPatchFuzz(t *testing.T) {
	defer func(n, c int) { sparse.ReorderMinRows = n; csrCompactMinSlots = c }(sparse.ReorderMinRows, csrCompactMinSlots)
	sparse.ReorderMinRows = 8 // exercise perm repair (and its full-sort fallback) on small graphs
	csrCompactMinSlots = 1    // force compaction whenever waste accumulates

	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, mirror := New(), New()
		g.EnableCSRPatch(true)
		for batch := 0; batch < 25; batch++ {
			mutatePair(rng, g, mirror, 1+rng.Intn(12))
			tag := fmt.Sprintf("seed %d batch %d", seed, batch)
			checkLiveMatches(t, g, mirror, tag)
			checkPatchedEqualsRebuilt(t, g, mirror, tag)

			if batch%10 == 9 {
				// Persistence round-trip must re-mirror the builder. The
				// round-trip canonicalises adjacency entry order (edges
				// replay sorted by source), so the mirror round-trips too.
				for _, gr := range []*Graph{g, mirror} {
					var buf bytes.Buffer
					if _, err := gr.WriteTo(&buf); err != nil {
						t.Fatalf("%s: WriteTo: %v", tag, err)
					}
					if _, err := gr.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
						t.Fatalf("%s: ReadFrom: %v", tag, err)
					}
				}
				if !g.CSRPatchEnabled() {
					t.Fatalf("%s: ReadFrom dropped the patch builder", tag)
				}
				checkPatchedEqualsRebuilt(t, g, mirror, tag+" post-roundtrip")
			}
		}
		st := g.CSRPatchStats()
		if st.Applied == 0 {
			t.Fatalf("seed %d: no patched emissions recorded (applied=%d fallback=%d)", seed, st.Applied, st.Fallback)
		}
	}
}

// TestCSRPatchConcurrentReaders drives mutations and patched emissions
// while reader goroutines hammer previously-emitted snapshots; run under
// -race it proves emitted snapshots share nothing mutable with the
// builder.
func TestCSRPatchConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, mirror := New(), New()
	g.EnableCSRPatch(true)
	mutatePair(rng, g, mirror, 200)

	snaps := make(chan *sparse.Matrix, 64)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range snaps {
				x := mat.New(m.Rows, 2)
				for i := range x.Data {
					x.Data[i] = 1
				}
				dst := mat.New(m.Rows, 2)
				m.SymNormalized().SpMMInto(dst, x)
				m.MeanNormalized().SpMMInto(dst, x)
			}
		}()
	}
	for batch := 0; batch < 50; batch++ {
		mutatePair(rng, g, mirror, 5)
		m := g.CSR()
		for r := 0; r < 4; r++ {
			snaps <- m
		}
	}
	close(snaps)
	wg.Wait()
	checkPatchedEqualsRebuilt(t, g, mirror, "final")
}

// TestAdoptCSR pins the clone warm-up path: a serialisation clone adopts
// the source graph's patched snapshot, and shape mismatches are
// rejected.
func TestAdoptCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, mirror := New(), New()
	g.EnableCSRPatch(true)
	mutatePair(rng, g, mirror, 120)

	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	clone := New()
	if _, err := clone.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	m := g.CSR()
	if err := clone.AdoptCSR(m); err != nil {
		t.Fatalf("AdoptCSR on matching clone: %v", err)
	}
	if clone.CSR() != m {
		t.Fatal("adopted snapshot not returned by CSR()")
	}
	clone.Upsert(KindIP, "adopt-mismatch")
	if err := clone.AdoptCSR(m); err == nil {
		t.Fatal("AdoptCSR accepted a stale snapshot")
	}
	if err := clone.AdoptCSR(g.LiveCSR()); err == nil {
		t.Fatal("AdoptCSR accepted a slacked matrix")
	}
}

// TestDrainDirtyNoAlloc pins the satellite fix: draining the dirty set
// into the recycled buffer allocates nothing in steady state.
func TestDrainDirtyNoAlloc(t *testing.T) {
	g := New()
	for i := 0; i < 64; i++ {
		g.Upsert(KindIP, fmt.Sprintf("ip-%d", i))
	}
	g.TrackDirty(true)
	fill := func() {
		g.mu.Lock()
		for i := 0; i < 32; i++ {
			g.dirty[NodeID(i*2)] = struct{}{}
		}
		g.mu.Unlock()
	}
	fill()
	first := g.DrainDirty()
	if len(first) != 32 {
		t.Fatalf("drained %d ids, want 32", len(first))
	}
	allocs := testing.AllocsPerRun(100, func() {
		fill()
		d := g.DrainDirty()
		if len(d) != 32 {
			t.Fatalf("drained %d ids, want 32", len(d))
		}
	})
	if allocs != 0 {
		t.Fatalf("DrainDirty allocates %.1f objects per drain, want 0", allocs)
	}
	fill()
	second := g.DrainDirty()
	if &first[0] != &second[0] {
		t.Fatal("DrainDirty did not recycle its buffer")
	}
}

// TestTakeDirtyStillCopies guards the legacy contract: TakeDirty hands
// out a caller-owned slice, not the recycled view.
func TestTakeDirtyStillCopies(t *testing.T) {
	g := New()
	g.Upsert(KindIP, "a")
	g.TrackDirty(true)
	g.Upsert(KindIP, "b")
	took := g.TakeDirty()
	g.Upsert(KindIP, "c")
	drained := g.DrainDirty()
	if len(took) != 1 || len(drained) != 1 {
		t.Fatalf("took %d drained %d, want 1 and 1", len(took), len(drained))
	}
	if &took[0] == &drained[0] {
		t.Fatal("TakeDirty returned the recycled buffer")
	}
}
