package graph

// Meta-path traversal: BFS restricted to a set of edge types. The TKG
// schema gives edge types semantics (InReport = co-occurrence, ARecord /
// ResolvesTo = hosting, InGroup = ASN membership), so analyses often want
// to walk only part of the schema — e.g. "events related purely through
// direct IOC co-occurrence" is a BFS over InReport edges only, which is
// exactly what the paper's LP 2L measures.

// EdgeTypeSet is a bitmask over EdgeType values.
type EdgeTypeSet uint8

// NewEdgeTypeSet builds a set from the given types.
func NewEdgeTypeSet(types ...EdgeType) EdgeTypeSet {
	var s EdgeTypeSet
	for _, t := range types {
		s |= 1 << t
	}
	return s
}

// Has reports whether t is in the set.
func (s EdgeTypeSet) Has(t EdgeType) bool { return s&(1<<t) != 0 }

// AllEdgeTypes is the full schema.
func AllEdgeTypes() EdgeTypeSet {
	return NewEdgeTypeSet(EdgeInReport, EdgeARecord, EdgeInGroup, EdgeResolvesTo, EdgeHostedOn)
}

// FilteredAdjacency returns an adjacency snapshot containing only edges
// whose type is in the set. Shape matches Graph.Adjacency.
func (g *Graph) FilteredAdjacency(types EdgeTypeSet) [][]NodeID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([][]NodeID, len(g.adj))
	for u, hes := range g.adj {
		var row []NodeID
		for _, he := range hes {
			if types.Has(he.Type) {
				row = append(row, he.To)
			}
		}
		out[u] = row
	}
	return out
}

// MetaPathBFS returns hop distances from src walking only edges whose
// types appear in the pattern, in order: hop h may only use edge types in
// pattern[h-1]. A nil pattern entry set (zero value) blocks expansion at
// that depth. Distances are -1 for unreached nodes.
//
// Example: pattern {InReport}, {InReport} finds the events and IOCs of
// the classic 2-hop co-occurrence neighbourhood; pattern {InReport},
// {ResolvesTo|ARecord}, {InReport} finds events connected through one
// hosting hop.
func (g *Graph) MetaPathBFS(src NodeID, pattern []EdgeTypeSet) []int32 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	dist := make([]int32, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	if int(src) >= len(g.adj) {
		return dist
	}
	dist[src] = 0
	frontier := []NodeID{src}
	for depth := 0; depth < len(pattern) && len(frontier) > 0; depth++ {
		allowed := pattern[depth]
		var next []NodeID
		for _, u := range frontier {
			for _, he := range g.adj[u] {
				if !allowed.Has(he.Type) {
					continue
				}
				if dist[he.To] < 0 {
					dist[he.To] = int32(depth + 1)
					next = append(next, he.To)
				}
			}
		}
		frontier = next
	}
	return dist
}

// CoOccurringEvents returns the events sharing at least one directly
// reported IOC with the given event (the paper's "direct resource reuse"
// relation), with the number of shared IOCs per event.
func (g *Graph) CoOccurringEvents(event NodeID) map[NodeID]int {
	out := make(map[NodeID]int)
	g.NeighborEdges(event, func(iocNode NodeID, t EdgeType, _ bool) bool {
		if t != EdgeInReport {
			return true
		}
		g.NeighborEdges(iocNode, func(other NodeID, t2 EdgeType, _ bool) bool {
			if t2 == EdgeInReport && other != event {
				out[other]++
			}
			return true
		})
		return true
	})
	return out
}
