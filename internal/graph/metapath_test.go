package graph

import "testing"

// buildSchemaGraph: ev1 -InReport-> ip1 -ARecord-> dom1, ip1 -InGroup->
// asn1, ev2 -InReport-> dom1.
func buildSchemaGraph(t *testing.T) (*Graph, NodeID, NodeID, NodeID, NodeID, NodeID) {
	t.Helper()
	g := New()
	ev1, _ := g.Upsert(KindEvent, "ev1")
	ev2, _ := g.Upsert(KindEvent, "ev2")
	ip1, _ := g.Upsert(KindIP, "1.1.1.1")
	dom1, _ := g.Upsert(KindDomain, "a.com")
	asn1, _ := g.Upsert(KindASN, "AS9")
	g.AddEdge(ev1, ip1, EdgeInReport)
	g.AddEdge(ip1, dom1, EdgeARecord)
	g.AddEdge(ip1, asn1, EdgeInGroup)
	g.AddEdge(ev2, dom1, EdgeInReport)
	return g, ev1, ev2, ip1, dom1, asn1
}

func TestEdgeTypeSet(t *testing.T) {
	s := NewEdgeTypeSet(EdgeInReport, EdgeARecord)
	if !s.Has(EdgeInReport) || !s.Has(EdgeARecord) {
		t.Fatal("membership broken")
	}
	if s.Has(EdgeInGroup) || s.Has(EdgeHostedOn) {
		t.Fatal("false membership")
	}
	all := AllEdgeTypes()
	for _, et := range EdgeTypes() {
		if !all.Has(et) {
			t.Fatalf("AllEdgeTypes missing %s", et)
		}
	}
}

func TestFilteredAdjacency(t *testing.T) {
	g, ev1, _, ip1, dom1, asn1 := buildSchemaGraph(t)
	adj := g.FilteredAdjacency(NewEdgeTypeSet(EdgeInReport))
	if len(adj[ev1]) != 1 || adj[ev1][0] != ip1 {
		t.Fatalf("ev1 filtered adjacency %v", adj[ev1])
	}
	// ip1 keeps only the InReport edge back to ev1, not ARecord/InGroup.
	if len(adj[ip1]) != 1 || adj[ip1][0] != ev1 {
		t.Fatalf("ip1 filtered adjacency %v", adj[ip1])
	}
	if len(adj[asn1]) != 0 || len(adj[dom1]) != 1 {
		t.Fatal("filtered adjacency leaked edge types")
	}
}

func TestMetaPathBFS(t *testing.T) {
	g, ev1, ev2, ip1, dom1, asn1 := buildSchemaGraph(t)

	// InReport-only 2-hop: reaches ip1 but not dom1 (ip1-dom1 is ARecord).
	rep := NewEdgeTypeSet(EdgeInReport)
	dist := g.MetaPathBFS(ev1, []EdgeTypeSet{rep, rep})
	if dist[ip1] != 1 {
		t.Fatalf("ip1 at %d", dist[ip1])
	}
	if dist[dom1] != -1 || dist[ev2] != -1 {
		t.Fatal("InReport-only walk leaked through hosting edges")
	}

	// InReport, ARecord, InReport: the hosting path reaches ev2 at hop 3.
	host := NewEdgeTypeSet(EdgeARecord, EdgeResolvesTo)
	dist = g.MetaPathBFS(ev1, []EdgeTypeSet{rep, host, rep})
	if dist[dom1] != 2 || dist[ev2] != 3 {
		t.Fatalf("hosting meta-path: dom1=%d ev2=%d", dist[dom1], dist[ev2])
	}
	if dist[asn1] != -1 {
		t.Fatal("ASN edge followed despite pattern exclusion")
	}
}

func TestCoOccurringEvents(t *testing.T) {
	g, ev1, ev2, ip1, _, _ := buildSchemaGraph(t)
	// Currently ev1 and ev2 share no directly reported IOC.
	if got := g.CoOccurringEvents(ev1); len(got) != 0 {
		t.Fatalf("unexpected co-occurrence %v", got)
	}
	// Make ip1 shared.
	g.AddEdge(ev2, ip1, EdgeInReport)
	got := g.CoOccurringEvents(ev1)
	if got[ev2] != 1 {
		t.Fatalf("co-occurrence %v", got)
	}
}
