package graph

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"trail/internal/ckpt"
)

// snapshot is the gob-serialisable form of a Graph. Edges are stored once
// in their forward (schema) direction, in insertion order: ReadFrom
// replays them in sequence, so the deserialised adjacency lists match the
// writer's entry order bit-for-bit. That order-faithfulness is what lets
// the streaming ingest publish path hand a patched CSR snapshot straight
// to a deserialised clone (graph.AdoptCSR) instead of re-packing it.
type snapshot struct {
	Version int
	Nodes   []Node
	EdgeU   []NodeID
	EdgeV   []NodeID
	EdgeT   []EdgeType
}

const snapshotVersion = 1

// WriteTo serialises the graph to w in a compact gob snapshot. It
// implements the single-writer persistence model: the TKG is built (or
// updated) and then checkpointed atomically by the caller.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	g.mu.RLock()
	snap := snapshot{
		Version: snapshotVersion,
		Nodes:   append([]Node(nil), g.nodes...),
		EdgeU:   make([]NodeID, 0, g.edgeCount),
		EdgeV:   make([]NodeID, 0, g.edgeCount),
		EdgeT:   make([]EdgeType, 0, g.edgeCount),
	}
	for _, e := range g.log {
		snap.EdgeU = append(snap.EdgeU, e.u)
		snap.EdgeV = append(snap.EdgeV, e.v)
		snap.EdgeT = append(snap.EdgeT, e.t)
	}
	g.mu.RUnlock()

	cw := &countingWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(&snap); err != nil {
		return cw.n, fmt.Errorf("graph: encode snapshot: %w", err)
	}
	return cw.n, nil
}

// ReadFrom replaces the contents of g with a snapshot previously written
// by WriteTo.
func (g *Graph) ReadFrom(r io.Reader) (int64, error) {
	cr := &countingReader{r: r}
	var snap snapshot
	if err := gob.NewDecoder(cr).Decode(&snap); err != nil {
		return cr.n, fmt.Errorf("graph: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return cr.n, fmt.Errorf("graph: unsupported snapshot version %d", snap.Version)
	}
	if len(snap.EdgeU) != len(snap.EdgeV) || len(snap.EdgeU) != len(snap.EdgeT) {
		return cr.n, fmt.Errorf("graph: corrupt snapshot: ragged edge arrays")
	}

	fresh := New()
	fresh.nodes = snap.Nodes
	fresh.adj = make([][]HalfEdge, len(snap.Nodes))
	fresh.out = make([][]bool, len(snap.Nodes))
	for i := range fresh.nodes {
		n := &fresh.nodes[i]
		if n.ID != NodeID(i) {
			return cr.n, fmt.Errorf("graph: corrupt snapshot: node %d has ID %d", i, n.ID)
		}
		if n.Kind >= numKinds {
			return cr.n, fmt.Errorf("graph: corrupt snapshot: node %d has kind %d", i, n.Kind)
		}
		fresh.index[nodeRef{n.Kind, n.Key}] = n.ID
		fresh.kindCount[n.Kind]++
	}
	for i := range snap.EdgeU {
		u, v, t := snap.EdgeU[i], snap.EdgeV[i], snap.EdgeT[i]
		if int(u) >= len(fresh.nodes) || int(v) >= len(fresh.nodes) || t >= numEdgeTypes {
			return cr.n, fmt.Errorf("graph: corrupt snapshot: edge %d out of range", i)
		}
		fresh.adj[u] = append(fresh.adj[u], HalfEdge{To: v, Type: t})
		fresh.out[u] = append(fresh.out[u], true)
		fresh.adj[v] = append(fresh.adj[v], HalfEdge{To: u, Type: t})
		fresh.out[v] = append(fresh.out[v], false)
		fresh.log = append(fresh.log, logEdge{u: u, v: v, t: t})
		fresh.edgeCount++
		fresh.typeCount[t]++
	}

	g.mu.Lock()
	g.nodes = fresh.nodes
	g.adj = fresh.adj
	g.out = fresh.out
	g.log = fresh.log
	g.index = fresh.index
	g.edgeCount = fresh.edgeCount
	g.kindCount = fresh.kindCount
	g.typeCount = fresh.typeCount
	g.csr = nil
	g.version++
	if g.inc != nil {
		// The incremental mirror describes the replaced adjacency;
		// re-mirror the loaded one so patched snapshots stay exact.
		g.inc = newCSRBuilderLocked(g)
	}
	g.mu.Unlock()
	return cr.n, nil
}

// CheckpointKind tags graph snapshots inside the checkpoint envelope.
const CheckpointKind = "graph.graph"

// Save writes the graph snapshot to path atomically inside the
// checksummed checkpoint envelope (temp file + fsync + rename; corruption
// and version skew are detected on load as the ckpt package's typed
// errors).
func (g *Graph) Save(path string) error {
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		return err
	}
	return ckpt.Save(path, CheckpointKind, snapshotVersion, buf.Bytes())
}

// Load reads a snapshot from path into a fresh graph, verifying envelope
// integrity first.
func Load(path string) (*Graph, error) {
	payload, err := ckpt.Load(path, CheckpointKind, snapshotVersion)
	if err != nil {
		return nil, fmt.Errorf("graph: load: %w", err)
	}
	g := New()
	if _, err := g.ReadFrom(bytes.NewReader(payload)); err != nil {
		return nil, err
	}
	return g, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ReadByte makes countingReader an io.ByteReader. Without it,
// encoding/gob wraps the reader in its own bufio.Reader, which reads
// ahead past the end of the graph's gob stream and silently consumes the
// first bytes of whatever the caller concatenated after it (the TKG
// snapshot stream) — a corruption that only bites when stream sizes
// line up badly, i.e. on small graphs.
func (c *countingReader) ReadByte() (byte, error) {
	if br, ok := c.r.(io.ByteReader); ok {
		b, err := br.ReadByte()
		if err == nil {
			c.n++
		}
		return b, err
	}
	var buf [1]byte
	if _, err := io.ReadFull(c.r, buf[:]); err != nil {
		return 0, err
	}
	c.n++
	return buf[0], nil
}
