package hyperopt

import (
	"fmt"

	"trail/internal/ckpt"
)

// FileJournal adapts the append-only checkpoint journal to the
// TrialJournal interface: one checksummed record per completed trial,
// fsynced before the objective result is considered durable. A damaged
// tail (crash mid-write) is truncated on open, so the worst case is
// re-running the last trial.
type FileJournal struct {
	j *ckpt.Journal
}

// OpenFileJournal opens (or creates) a trial journal at path.
func OpenFileJournal(path string) (*FileJournal, error) {
	j, err := ckpt.OpenJournal(path)
	if err != nil {
		return nil, fmt.Errorf("hyperopt: open trial journal: %w", err)
	}
	return &FileJournal{j: j}, nil
}

func trialKey(t int) string { return fmt.Sprintf("trial-%05d", t) }

// Lookup implements TrialJournal.
func (f *FileJournal) Lookup(t int) (Trial, bool) {
	var tr Trial
	ok, err := f.j.DoneGob(trialKey(t), &tr)
	if err != nil || !ok {
		return Trial{}, false
	}
	return tr, true
}

// Record implements TrialJournal.
func (f *FileJournal) Record(t int, tr Trial) error {
	return f.j.RecordGob(trialKey(t), tr)
}

// Len reports the number of journaled trials.
func (f *FileJournal) Len() int { return f.j.Len() }

// Close releases the underlying file.
func (f *FileJournal) Close() error { return f.j.Close() }
