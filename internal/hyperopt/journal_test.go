package hyperopt

import (
	"math"
	"path/filepath"
	"testing"
)

func testSpace() Space {
	return Space{
		{Name: "x", Min: -2, Max: 2},
		{Name: "lr", Min: 1e-4, Max: 1, Log: true},
		{Name: "n", Min: 1, Max: 16, Int: true},
	}
}

func testObjective(calls *int) Objective {
	return func(p Params) float64 {
		*calls++
		return (p["x"]-0.5)*(p["x"]-0.5) + math.Abs(math.Log10(p["lr"])+2) + math.Abs(p["n"]-8)/8
	}
}

// TestMinimizeResumableCrashRecovery: interrupting a journaled search
// mid-way and re-running completes only the missing trials and ends with
// exactly the history an uninterrupted run produces.
func TestMinimizeResumableCrashRecovery(t *testing.T) {
	space := testSpace()
	cfg := Config{Trials: 20, Warmup: 6, Gamma: 0.25, Candidates: 12, Seed: 5}

	var refCalls int
	refBest, refHist, err := MinimizeResumable(testObjective(&refCalls), space, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if refCalls != cfg.Trials {
		t.Fatalf("reference ran %d objective calls, want %d", refCalls, cfg.Trials)
	}

	// Phase 1: "crash" after 7 trials (the panic stands in for a SIGKILL;
	// each completed trial was already fsynced to the journal).
	path := filepath.Join(t.TempDir(), "trials.journal")
	j1, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var phase1 int
	func() {
		defer func() { recover() }()
		crashing := func(p Params) float64 {
			if phase1 == 7 {
				panic("simulated crash")
			}
			phase1++
			return testObjective(new(int))(p)
		}
		_, _, _ = MinimizeResumable(crashing, space, cfg, j1)
	}()
	j1.Close()
	if phase1 != 7 {
		t.Fatalf("phase 1 completed %d trials, want 7", phase1)
	}

	// Phase 2: rerun against the same journal; only the remaining trials
	// may invoke the objective.
	j2, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 7 {
		t.Fatalf("journal replayed %d records, want 7", j2.Len())
	}
	var phase2 int
	best, hist, err := MinimizeResumable(testObjective(&phase2), space, cfg, j2)
	if err != nil {
		t.Fatal(err)
	}
	if phase2 != cfg.Trials-7 {
		t.Fatalf("resume ran %d objective calls, want %d", phase2, cfg.Trials-7)
	}
	if len(hist) != len(refHist) {
		t.Fatalf("history length %d vs %d", len(hist), len(refHist))
	}
	for i := range hist {
		if hist[i].Loss != refHist[i].Loss {
			t.Fatalf("trial %d loss %v differs from uninterrupted %v", i, hist[i].Loss, refHist[i].Loss)
		}
		for k, v := range refHist[i].Params {
			if hist[i].Params[k] != v {
				t.Fatalf("trial %d param %s differs", i, k)
			}
		}
	}
	if best.Loss != refBest.Loss {
		t.Fatalf("best loss %v differs from uninterrupted %v", best.Loss, refBest.Loss)
	}

	// The journal holds an exclusive writer lock, so it must be released
	// before the next resume opens the file.
	j2.Close()

	// Phase 3: a fully-journaled rerun touches the objective zero times.
	j3, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	var phase3 int
	best3, _, err := MinimizeResumable(testObjective(&phase3), space, cfg, j3)
	if err != nil {
		t.Fatal(err)
	}
	if phase3 != 0 {
		t.Fatalf("fully-journaled rerun ran %d objective calls, want 0", phase3)
	}
	if best3.Loss != refBest.Loss {
		t.Fatal("fully-journaled rerun changed the best trial")
	}
}
