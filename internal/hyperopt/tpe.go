// Package hyperopt implements the Tree-structured Parzen Estimator (TPE)
// hyperparameter search of Bergstra et al. (2013), which the paper uses
// (via Hyperopt) to tune the XGBoost and Random Forest classifiers.
//
// The search minimises a black-box objective over a box of numeric
// dimensions. After a random warm-up, each step splits the observation
// history at the gamma quantile into "good" and "bad" sets, fits a Parzen
// (Gaussian-kernel) density to each per dimension, and picks the
// candidate maximising the good/bad density ratio l(x)/g(x).
package hyperopt

import (
	"math"
	"math/rand"
	"sort"
)

// Dim describes one search dimension.
type Dim struct {
	Name string
	Min  float64
	Max  float64
	// Log searches in log space (Min and Max must be > 0).
	Log bool
	// Int rounds sampled values to integers.
	Int bool
}

// Space is an ordered list of dimensions.
type Space []Dim

// Params maps dimension names to chosen values.
type Params map[string]float64

// Objective evaluates a parameter assignment and returns a loss to
// minimise.
type Objective func(Params) float64

// Trial records one objective evaluation.
type Trial struct {
	Params Params
	Loss   float64
}

// Config tunes the optimiser.
type Config struct {
	// Trials is the total number of objective evaluations.
	Trials int
	// Warmup is the number of initial random trials before TPE kicks in.
	Warmup int
	// Gamma is the good/bad split quantile.
	Gamma float64
	// Candidates is the number of samples scored per TPE step.
	Candidates int
	Seed       int64
}

// DefaultConfig returns hyperopt-like defaults.
func DefaultConfig() Config {
	return Config{Trials: 30, Warmup: 10, Gamma: 0.25, Candidates: 24, Seed: 1}
}

// TrialJournal persists per-trial results so an interrupted search can be
// resumed without re-running completed objective evaluations. The
// suggestion sequence itself is deterministic (seeded RNG), so only the
// losses need to be durable.
type TrialJournal interface {
	// Lookup returns the recorded trial for index t, if present.
	Lookup(t int) (Trial, bool)
	// Record durably persists trial t before returning.
	Record(t int, tr Trial) error
}

// Minimize runs the TPE search and returns the best trial plus the full
// history.
func Minimize(obj Objective, space Space, cfg Config) (Trial, []Trial) {
	best, history, _ := MinimizeResumable(obj, space, cfg, nil)
	return best, history
}

// MinimizeResumable is Minimize with crash recovery: completed trials
// found in the journal skip the objective call (their recorded losses are
// substituted), while the suggestion computation is replayed so the RNG
// stream — and therefore every subsequent suggestion — matches the
// uninterrupted run exactly.
func MinimizeResumable(obj Objective, space Space, cfg Config, journal TrialJournal) (Trial, []Trial, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 30
	}
	if cfg.Warmup <= 0 || cfg.Warmup > cfg.Trials {
		cfg.Warmup = cfg.Trials/3 + 1
	}
	if cfg.Gamma <= 0 || cfg.Gamma >= 1 {
		cfg.Gamma = 0.25
	}
	if cfg.Candidates <= 0 {
		cfg.Candidates = 24
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	history := make([]Trial, 0, cfg.Trials)
	best := Trial{Loss: math.Inf(1)}
	for t := 0; t < cfg.Trials; t++ {
		// Always compute the suggestion, even for journaled trials: the
		// RNG draws it consumes are part of the resumable state.
		var p Params
		if t < cfg.Warmup {
			p = randomParams(rng, space)
		} else {
			p = tpeSuggest(rng, space, history, cfg)
		}
		var trial Trial
		if journal != nil {
			if tr, ok := journal.Lookup(t); ok {
				trial = tr
			}
		}
		if trial.Params == nil {
			trial = Trial{Params: p, Loss: obj(p)}
			if journal != nil {
				if err := journal.Record(t, trial); err != nil {
					return best, history, err
				}
			}
		}
		history = append(history, trial)
		if trial.Loss < best.Loss {
			best = trial
		}
	}
	return best, history, nil
}

func randomParams(rng *rand.Rand, space Space) Params {
	p := make(Params, len(space))
	for _, d := range space {
		p[d.Name] = d.denorm(rng.Float64())
	}
	return p
}

// denorm maps a unit sample into the dimension's range (handling log and
// integer dims).
func (d Dim) denorm(u float64) float64 {
	if d.Log {
		lo, hi := math.Log(d.Min), math.Log(d.Max)
		return d.fromNorm(lo + u*(hi-lo))
	}
	return d.fromNorm(d.Min + u*(d.Max-d.Min))
}

// norm maps a value to the dimension's unit/log coordinate used by the
// Parzen densities.
func (d Dim) norm(v float64) float64 {
	if d.Log {
		return math.Log(v)
	}
	return v
}

func tpeSuggest(rng *rand.Rand, space Space, history []Trial, cfg Config) Params {
	sorted := append([]Trial(nil), history...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Loss < sorted[j].Loss })
	nGood := int(math.Ceil(cfg.Gamma * float64(len(sorted))))
	if nGood < 1 {
		nGood = 1
	}
	good, bad := sorted[:nGood], sorted[nGood:]
	if len(bad) == 0 {
		return randomParams(rng, space)
	}

	p := make(Params, len(space))
	for _, d := range space {
		gVals := valuesOf(good, d)
		bVals := valuesOf(bad, d)
		bw := bandwidth(d, gVals)
		bestScore := math.Inf(-1)
		bestVal := d.denorm(rng.Float64())
		for c := 0; c < cfg.Candidates; c++ {
			// Sample from the good Parzen mixture.
			center := gVals[rng.Intn(len(gVals))]
			x := center + rng.NormFloat64()*bw
			val := d.clampNorm(x)
			score := logParzen(x, gVals, bw) - logParzen(x, bVals, bandwidth(d, bVals))
			if score > bestScore {
				bestScore = score
				bestVal = d.fromNorm(val)
			}
		}
		p[d.Name] = bestVal
	}
	return p
}

func valuesOf(trials []Trial, d Dim) []float64 {
	out := make([]float64, len(trials))
	for i, t := range trials {
		out[i] = d.norm(t.Params[d.Name])
	}
	return out
}

// bandwidth is a Scott-style heuristic over the dimension's normalised
// range.
func bandwidth(d Dim, vals []float64) float64 {
	span := d.norm(d.Max) - d.norm(d.Min)
	if span <= 0 {
		span = 1
	}
	bw := span / math.Sqrt(float64(len(vals))+1)
	if bw < span*0.01 {
		bw = span * 0.01
	}
	return bw
}

func (d Dim) clampNorm(x float64) float64 {
	lo, hi := d.norm(d.Min), d.norm(d.Max)
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func (d Dim) fromNorm(x float64) float64 {
	var v float64
	if d.Log {
		v = math.Exp(x)
	} else {
		v = x
	}
	if d.Int {
		v = math.Round(v)
		if v < d.Min {
			v = math.Ceil(d.Min)
		}
		if v > d.Max {
			v = math.Floor(d.Max)
		}
		return v
	}
	// exp(log(x)) round trips can land epsilon outside the box.
	if v < d.Min {
		v = d.Min
	}
	if v > d.Max {
		v = d.Max
	}
	return v
}

// logParzen evaluates the log density of a Gaussian mixture with equal
// weights centred at the given points.
func logParzen(x float64, centers []float64, bw float64) float64 {
	if len(centers) == 0 || bw <= 0 {
		return math.Inf(-1)
	}
	max := math.Inf(-1)
	terms := make([]float64, len(centers))
	for i, c := range centers {
		d := (x - c) / bw
		terms[i] = -0.5 * d * d
		if terms[i] > max {
			max = terms[i]
		}
	}
	sum := 0.0
	for _, t := range terms {
		sum += math.Exp(t - max)
	}
	return max + math.Log(sum) - math.Log(float64(len(centers))*bw*math.Sqrt(2*math.Pi))
}
