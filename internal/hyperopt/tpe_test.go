package hyperopt

import (
	"math"
	"testing"
)

func TestMinimizeQuadratic(t *testing.T) {
	space := Space{
		{Name: "x", Min: -10, Max: 10},
		{Name: "y", Min: -10, Max: 10},
	}
	obj := func(p Params) float64 {
		dx := p["x"] - 3
		dy := p["y"] + 2
		return dx*dx + dy*dy
	}
	cfg := DefaultConfig()
	cfg.Trials = 60
	best, history := Minimize(obj, space, cfg)
	if len(history) != 60 {
		t.Fatalf("history %d", len(history))
	}
	if best.Loss > 4 {
		t.Fatalf("best loss %.3f; TPE should get near the optimum", best.Loss)
	}
	if math.Abs(best.Params["x"]-3) > 3 || math.Abs(best.Params["y"]+2) > 3 {
		t.Fatalf("best params far from optimum: %+v", best.Params)
	}
}

func TestTPEBeatsShortRandomSearch(t *testing.T) {
	space := Space{{Name: "x", Min: 0, Max: 100}}
	obj := func(p Params) float64 {
		d := p["x"] - 61.8
		return d * d
	}
	tpe, _ := Minimize(obj, space, Config{Trials: 40, Warmup: 10, Gamma: 0.25, Candidates: 24, Seed: 5})
	// Pure random search = all-warmup run with the same budget and seed.
	random, _ := Minimize(obj, space, Config{Trials: 40, Warmup: 40, Gamma: 0.25, Candidates: 24, Seed: 5})
	if tpe.Loss > random.Loss*1.5 {
		t.Fatalf("TPE (%.3f) much worse than random search (%.3f)", tpe.Loss, random.Loss)
	}
}

func TestIntAndLogDims(t *testing.T) {
	space := Space{
		{Name: "depth", Min: 1, Max: 16, Int: true},
		{Name: "lr", Min: 1e-5, Max: 1e-1, Log: true},
	}
	obj := func(p Params) float64 {
		d := p["depth"]
		if d != math.Trunc(d) {
			t.Fatalf("integer dim sampled fraction %v", d)
		}
		if p["lr"] < 1e-5 || p["lr"] > 1e-1 {
			t.Fatalf("log dim out of range: %v", p["lr"])
		}
		// Optimum at depth 8, lr 1e-3.
		return math.Abs(d-8) + math.Abs(math.Log10(p["lr"])+3)
	}
	best, _ := Minimize(obj, space, Config{Trials: 50, Warmup: 12, Gamma: 0.25, Candidates: 24, Seed: 2})
	if best.Loss > 4 {
		t.Fatalf("best loss %.3f", best.Loss)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	space := Space{{Name: "x", Min: 0, Max: 1}}
	obj := func(p Params) float64 { return p["x"] }
	a, _ := Minimize(obj, space, Config{Trials: 20, Warmup: 5, Gamma: 0.25, Candidates: 8, Seed: 7})
	b, _ := Minimize(obj, space, Config{Trials: 20, Warmup: 5, Gamma: 0.25, Candidates: 8, Seed: 7})
	if a.Loss != b.Loss || a.Params["x"] != b.Params["x"] {
		t.Fatal("same seed produced different searches")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	space := Space{{Name: "x", Min: 0, Max: 1}}
	obj := func(p Params) float64 { return p["x"] }
	best, history := Minimize(obj, space, Config{})
	if len(history) != 30 {
		t.Fatalf("default trials not applied: %d", len(history))
	}
	if best.Loss < 0 || best.Loss > 1 {
		t.Fatalf("loss out of range: %v", best.Loss)
	}
}
