package ingest

import (
	"context"
	"fmt"
	"testing"

	"trail/internal/core"
	"trail/internal/osint"
)

// BenchmarkPipelineIngest measures streamed events/sec through the full
// pipeline (WAL append + fsync, incremental TKG merge, dirty-frontier
// label propagation) across WAL sync policies: SyncEvery=1 is the
// every-event-durable default, SyncEvery=32 batches fsyncs and shows
// what the bounded power-failure loss window buys.
func BenchmarkPipelineIngest(b *testing.B) {
	cfg := osint.TestConfig()
	w := osint.NewWorld(cfg)
	base := w.Pulses()
	for _, sync := range []int{1, 32} {
		b.Run(fmt.Sprintf("syncEvery=%d", sync), func(b *testing.B) {
			p, err := New(Config{
				Dir:           b.TempDir(),
				Resolver:      w.Resolver(),
				Services:      osint.Infallible(w),
				Build:         core.DefaultBuildConfig(),
				Classes:       len(w.Resolver().Names()),
				Layers:        2,
				EnqueueWait:   -1,
				SyncEvery:     sync,
				PublishEvery:  -1,
				FlushInterval: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			ctx := context.Background()

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Unique pulse IDs keep every iteration a fresh event while
				// reusing the world's IOC space, like a long-running feed.
				pulse := base[i%len(base)]
				pulse.ID = fmt.Sprintf("bench-%d-%s", i, pulse.ID)
				if err := p.Submit(ctx, pulse); err != nil {
					b.Fatal(err)
				}
			}
			if err := p.Barrier(ctx); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
