package ingest

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"trail/internal/core"
	"trail/internal/graph"
	"trail/internal/osint"
	"trail/internal/sparse"
)

// BenchmarkPipelineIngest measures streamed events/sec through the full
// pipeline (WAL append + fsync, incremental TKG merge, dirty-frontier
// label propagation) across WAL sync policies: SyncEvery=1 is the
// every-event-durable default, SyncEvery=32 batches fsyncs and shows
// what the bounded power-failure loss window buys.
func BenchmarkPipelineIngest(b *testing.B) {
	cfg := osint.TestConfig()
	w := osint.NewWorld(cfg)
	base := w.Pulses()
	for _, sync := range []int{1, 32} {
		b.Run(fmt.Sprintf("syncEvery=%d", sync), func(b *testing.B) {
			p, err := New(Config{
				Dir:           b.TempDir(),
				Resolver:      w.Resolver(),
				Services:      osint.Infallible(w),
				Build:         core.DefaultBuildConfig(),
				Classes:       len(w.Resolver().Names()),
				Layers:        2,
				EnqueueWait:   -1,
				SyncEvery:     sync,
				PublishEvery:  -1,
				FlushInterval: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close()
			ctx := context.Background()

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Unique pulse IDs keep every iteration a fresh event while
				// reusing the world's IOC space, like a long-running feed.
				pulse := base[i%len(base)]
				pulse.ID = fmt.Sprintf("bench-%d-%s", i, pulse.ID)
				if err := p.Submit(ctx, pulse); err != nil {
					b.Fatal(err)
				}
			}
			if err := p.Barrier(ctx); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// cutWorldBytes lazily builds the 24-month × 180-events/month world
// graph once (full TKG construction over every pulse) and returns its
// serialised form, so each sub-benchmark can restore a pristine copy.
var cutWorldBytes = sync.OnceValue(func() []byte {
	cfg := osint.DefaultConfig()
	cfg.EventsPerMonth = 180
	w := osint.NewWorld(cfg)
	t := core.NewTKG(w, w.Resolver(), core.DefaultBuildConfig())
	ctx := context.Background()
	for _, p := range w.Pulses() {
		if _, err := t.ApplyPulse(ctx, p); err != nil {
			panic(err)
		}
	}
	var buf bytes.Buffer
	if _, err := t.G.WriteTo(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
})

// BenchmarkIngestCut measures cut publication on the 24×180 world: the
// graph-engine work between "delta events arrive" and "a serving
// snapshot chain is ready" — per event, the streaming label-propagation
// operator refresh (LiveCSR + sym normalisation, exactly what the
// pipeline's apply loop runs), then the packed snapshot emission and its
// serving-side consumers (float32 cast, degree reorder, mean
// normalisation). patch maintains the slack-slotted mirror and splices
// snapshots from the previous emission; rebuild is the pre-incremental
// behaviour — every event re-packs and re-normalises the whole graph
// from scratch.
func BenchmarkIngestCut(b *testing.B) {
	base := cutWorldBytes()
	for _, delta := range []int{1, 10, 100, 1000} {
		for _, patch := range []bool{true, false} {
			name := "rebuild"
			if patch {
				name = "patch"
			}
			b.Run(fmt.Sprintf("delta=%d/%s", delta, name), func(b *testing.B) {
				g := graph.New()
				if _, err := g.ReadFrom(bytes.NewReader(base)); err != nil {
					b.Fatal(err)
				}
				g.EnableCSRPatch(patch)
				rng := rand.New(rand.NewSource(11))
				g.CSR() // warm: the first emission always full-sorts
				seq := 0
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for e := 0; e < delta; e++ {
						// One synthetic event-shaped delta: a fresh event node
						// plus report edges to existing IOCs, interleaved with
						// the operator refresh the apply loop runs per event.
						id, _ := g.Upsert(graph.KindEvent, fmt.Sprintf("cutbench-%d", seq))
						seq++
						n := g.NumNodes()
						for j := 0; j < 8; j++ {
							g.AddEdge(id, graph.NodeID(rng.Intn(n-1)), graph.EdgeInReport)
						}
						if g.LiveCSR().SymNormalized() == nil {
							b.Fatal("nil sym")
						}
					}
					c := sparse.Cast[float32](g.CSR())
					rm, _ := c.Reordered()
					if rm.MeanNormalized() == nil {
						b.Fatal("nil mean")
					}
				}
			})
		}
	}
}
