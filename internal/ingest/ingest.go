// Package ingest implements crash-safe streaming ingest: a journaled,
// backpressure-aware pipeline from OSINT event pulse to live serving
// snapshot (DESIGN.md §3h).
//
// The pipeline is four stages behind a bounded queue:
//
//	Submit -> [queue] -> WAL append -> apply (TKG merge + incremental
//	label propagation) -> periodic cut (checkpoint + publish)
//
// Durability rests on a write-ahead log (ckpt.Journal) plus an
// atomically-written state checkpoint. Every accepted event is appended
// to the WAL under a fixed-width sequence key before any state mutation;
// the checkpoint embeds the watermark — the sequence number of the last
// event fully applied to the checkpointed state — inside the same
// checksummed envelope as the state itself, so the pair is indivisible.
// Recovery is: load the newest intact checkpoint, replay WAL records
// with sequence numbers above its watermark in order, continue. Killing
// the process after any record leaves a prefix that replays to exactly
// the state an uninterrupted run reaches (proven record-by-record by the
// package tests).
//
// A single apply goroutine owns all mutable state (TKG, label
// propagation history, sequence counter), so the pipeline needs no state
// locks; Submit provides backpressure by blocking up to a deadline on
// the bounded queue and shedding with ErrOverloaded past it.
package ingest

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"trail/internal/apt"
	"trail/internal/ckpt"
	"trail/internal/core"
	"trail/internal/graph"
	"trail/internal/labelprop"
	"trail/internal/metrics"
	"trail/internal/osint"
)

// Files the pipeline keeps inside its state directory.
const (
	// JournalFile is the event write-ahead log.
	JournalFile = "events.jrn"
	// StateFile is the atomically-written state checkpoint
	// (watermark + TKG snapshot in one envelope).
	StateFile = "ingest.ck"
)

// StateKind tags the ingest state checkpoint envelope.
const StateKind = "ingest.state"

const stateVersion = 1

// watermarkKey is the advisory watermark record in the WAL. The
// authoritative watermark lives inside the state checkpoint (the two
// must be indivisible); this record only lets offline tooling estimate
// replay length without opening the checkpoint.
const watermarkKey = "wm"

// ErrOverloaded is returned by Submit when the queue stays full past the
// enqueue deadline: the event is shed and the caller decides whether to
// retry, buffer, or drop.
var ErrOverloaded = errors.New("ingest: queue full past deadline; event shed")

// ErrClosed is returned by Submit and control calls after Close/Abort.
var ErrClosed = errors.New("ingest: pipeline closed")

// persistedState is the gob payload of the state checkpoint.
type persistedState struct {
	// Watermark is the sequence number of the last WAL event applied to
	// the TKG bytes below (0 = none).
	Watermark uint64
	// TKG is the core.TKG snapshot (WriteTo format).
	TKG []byte
}

// Config parameterises a Pipeline. Dir, Resolver and Services are
// required; everything else has serviceable defaults.
type Config struct {
	// Dir is the pipeline state directory (WAL + checkpoint). Created if
	// absent. One live pipeline per directory — a second opener gets
	// ckpt.ErrJournalLocked.
	Dir string
	// Resolver maps pulse tags to APT identities.
	Resolver *apt.Resolver
	// Services is the enrichment stack. Wrap it in resilience middleware
	// (osint.NewResilientServices) so transient provider failures stall
	// only the affected event and permanent ones degrade rather than
	// wedge.
	Services osint.FallibleServices
	// Build configures a fresh TKG when neither a checkpoint nor BasePath
	// exists; a recovered TKG keeps its checkpointed config.
	Build core.BuildConfig
	// BasePath, when set, seeds a fresh pipeline from an existing TKG
	// checkpoint (e.g. a training run's tkg.ck). Ignored once the
	// pipeline has cut its own state checkpoint.
	BasePath string

	// Classes and Layers configure incremental label propagation over
	// the evolving graph. Either <= 0 disables it.
	Classes, Layers int

	// CSRRebuild disables incremental CSR maintenance (graph.EnableCSRPatch):
	// every propagation pass re-packs and re-normalises the whole graph
	// from scratch, the pre-patch behaviour. The A/B lever for the
	// cut-latency experiments; leave false in production.
	CSRRebuild bool

	// QueueDepth bounds the admission queue (default 256).
	QueueDepth int
	// EnqueueWait is how long Submit may block on a full queue before
	// shedding: > 0 is used as-is, 0 means a 50ms default, and < 0 blocks
	// indefinitely (for file/backfill sources that prefer backpressure
	// over loss).
	EnqueueWait time.Duration
	// SyncEvery batches WAL fsyncs (see ckpt.JournalOpts for the exact
	// durability window). <= 1 fsyncs every event.
	SyncEvery int
	// PublishEvery cuts a checkpoint + snapshot every N applied events
	// (default 32; < 0 disables count-based cuts).
	PublishEvery int
	// FlushInterval cuts on a timer even when traffic is slow
	// (default 2s; < 0 disables).
	FlushInterval time.Duration
	// RepairInterval, when > 0, runs the degraded-node catch-up loop
	// (core.TKG.RepairDegraded) on this period, re-enriching up to
	// RepairBatch nodes per tick (0 = all).
	RepairInterval time.Duration
	RepairBatch    int

	// Publish, when set, receives a deep, immutable copy of the TKG and
	// its watermark after every cut. Called from a dedicated goroutine;
	// a slow consumer only skips intermediate snapshots (latest wins),
	// never delays checkpoints.
	Publish func(tkg *core.TKG, watermark uint64)

	// Metrics, when set, receives the trail_ingest_* instruments;
	// otherwise a private registry is used.
	Metrics *metrics.Registry
	// Logf, when set, receives operational notices.
	Logf func(format string, args ...any)

	// applyDelay is a test hook invoked after the WAL append and before
	// the apply of each event (to stall the apply stage and force
	// backpressure).
	applyDelay func(osint.Pulse)
}

func (c *Config) fill() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.EnqueueWait == 0 {
		c.EnqueueWait = 50 * time.Millisecond
	}
	if c.PublishEvery == 0 {
		c.PublishEvery = 32
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 2 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Metrics == nil {
		c.Metrics = metrics.NewRegistry()
	}
}

// item is one queue entry: an event, or a control marker (barrier /
// forced cut / state copy request).
type item struct {
	pulse   osint.Pulse
	barrier chan struct{}
	cut     bool
	copyTo  chan stateCopy
}

type stateCopy struct {
	tkg       *core.TKG
	watermark uint64
	err       error
}

type published struct {
	tkg       *core.TKG
	watermark uint64
}

type pipelineMetrics struct {
	accepted, shed, applied, skipped, duplicates, failed *metrics.Counter
	replayed, repaired, repairAttempts                   *metrics.Counter
	checkpoints, publishes, publishSkipped, walErrors    *metrics.Counter
	patchApplied, patchFallback                          *metrics.Counter
	dirtyFrontier                                        *metrics.Gauge
	durableSeq, watermarkSeq                             *metrics.Gauge
	cutSeconds                                           *metrics.Histogram
}

// Pipeline is one live ingest instance over a state directory.
type Pipeline struct {
	cfg       Config
	statePath string
	jrn       *ckpt.Journal

	// Owned by the apply goroutine after New returns.
	tkg      *core.TKG
	lp       *labelprop.State
	seeds    map[graph.NodeID]int
	nextSeq  uint64
	sinceCut int

	watermark   atomic.Uint64
	durable     atomic.Uint64 // highest WAL-appended event sequence
	lastPublish atomic.Int64  // unix nanos of the last completed publish
	lastCut     atomic.Uint64 // float64 bits of the last cut's duration (s)

	// lastPatch is the previous CSRPatchStats sample, for counter deltas
	// (owned by the apply goroutine).
	lastPatch graph.CSRPatchStats

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool

	queue     chan item
	pubCh     chan published
	abortCh   chan struct{}
	applyDone chan struct{}
	pubDone   chan struct{}

	// Recovery report (fixed after New).
	Replayed    int  // WAL events re-applied on open
	DroppedTail bool // WAL lost a torn tail record on open

	met pipelineMetrics
}

func eventKey(seq uint64) string { return fmt.Sprintf("e%016d", seq) }

// parseEventKey inverts eventKey, rejecting control records.
func parseEventKey(k string) (uint64, bool) {
	if len(k) != 17 || k[0] != 'e' {
		return 0, false
	}
	var seq uint64
	for _, c := range k[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		seq = seq*10 + uint64(c-'0')
	}
	return seq, true
}

// New opens (or recovers) the pipeline in cfg.Dir and starts its worker
// goroutines. Recovery order: acquire the WAL's writer lock, load the
// state checkpoint (else BasePath, else a fresh TKG), replay WAL events
// above the checkpoint watermark, re-converge label propagation once,
// then begin accepting Submit calls.
func New(cfg Config) (*Pipeline, error) {
	cfg.fill()
	if cfg.Resolver == nil || cfg.Services == nil {
		return nil, errors.New("ingest: Config.Resolver and Config.Services are required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: state dir: %w", err)
	}
	jrn, err := ckpt.OpenJournalOpts(filepath.Join(cfg.Dir, JournalFile), ckpt.JournalOpts{SyncEvery: cfg.SyncEvery})
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		cfg:       cfg,
		statePath: filepath.Join(cfg.Dir, StateFile),
		jrn:       jrn,
		queue:     make(chan item, cfg.QueueDepth),
		pubCh:     make(chan published, 1),
		abortCh:   make(chan struct{}),
		applyDone: make(chan struct{}),
		pubDone:   make(chan struct{}),
	}
	p.ctx, p.cancel = context.WithCancel(context.Background())
	p.initMetrics()
	if err := p.recover(); err != nil {
		jrn.Close()
		return nil, err
	}
	go p.applyLoop()
	go p.publishLoop()
	return p, nil
}

func (p *Pipeline) initMetrics() {
	r := p.cfg.Metrics
	m := &p.met
	m.accepted = r.Counter("trail_ingest_accepted_total", "Events admitted to the ingest queue.")
	m.shed = r.Counter("trail_ingest_shed_total", "Events shed because the queue stayed full past the enqueue deadline.")
	m.applied = r.Counter("trail_ingest_applied_total", "Events merged into the TKG.")
	m.skipped = r.Counter("trail_ingest_skipped_total", "Events discarded by tag resolution (no unique APT tag).")
	m.duplicates = r.Counter("trail_ingest_duplicate_total", "Events rejected as duplicate pulse IDs (includes harmless replay overlap).")
	m.failed = r.Counter("trail_ingest_failed_total", "Events whose apply failed for any other reason.")
	m.replayed = r.Counter("trail_ingest_replayed_total", "WAL events re-applied during recovery.")
	m.repaired = r.Counter("trail_ingest_repaired_total", "Degraded nodes restored by the enrichment catch-up loop.")
	m.repairAttempts = r.Counter("trail_ingest_repair_attempted_total", "Degraded-node repair attempts.")
	m.checkpoints = r.Counter("trail_ingest_checkpoints_total", "State checkpoints cut.")
	m.publishes = r.Counter("trail_ingest_publishes_total", "Snapshots handed to the publish callback.")
	m.publishSkipped = r.Counter("trail_ingest_publish_skipped_total", "Snapshots superseded before the publish callback consumed them.")
	m.walErrors = r.Counter("trail_ingest_wal_errors_total", "WAL append/sync failures (the affected event is dropped).")
	m.patchApplied = r.Counter("trail_csr_patch_applied_total", "CSR snapshots emitted as incremental patches (delta repair, no full rebuild).")
	m.patchFallback = r.Counter("trail_csr_patch_fallback_total", "CSR snapshots built from scratch (patching disabled, or the delta forced a full permutation re-sort).")
	m.cutSeconds = r.Histogram("trail_ingest_cut_seconds", "Wall time of a cut: WAL sync, state checkpoint, snapshot hand-off.", metrics.DefBuckets())
	m.dirtyFrontier = r.Gauge("trail_ingest_dirty_frontier", "Rows recomputed by the last incremental label-propagation pass.")
	m.durableSeq = r.Gauge("trail_ingest_durable_seq", "Highest event sequence number appended to the WAL.")
	m.watermarkSeq = r.Gauge("trail_ingest_watermark_seq", "Sequence number of the last event covered by the state checkpoint.")
	r.GaugeFunc("trail_ingest_watermark_lag", "WAL events not yet covered by a state checkpoint (replay length after a crash).",
		func() float64 { return float64(p.durable.Load() - p.watermark.Load()) })
	r.GaugeFunc("trail_ingest_wal_bytes", "On-disk size of the event WAL.",
		func() float64 { return float64(p.jrn.Size()) })
	r.GaugeFunc("trail_ingest_queue_depth", "Events waiting in the admission queue.",
		func() float64 { return float64(len(p.queue)) })
	r.GaugeFunc("trail_ingest_snapshot_age_seconds", "Seconds since the last snapshot publish (0 until the first).",
		func() float64 {
			ns := p.lastPublish.Load()
			if ns == 0 {
				return 0
			}
			return time.Since(time.Unix(0, ns)).Seconds()
		})
}

// recover loads the checkpointed state and replays the WAL tail.
func (p *Pipeline) recover() error {
	cfg := &p.cfg
	var wm uint64
	switch payload, err := ckpt.Load(p.statePath, StateKind, stateVersion); {
	case err == nil:
		var st persistedState
		if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); derr != nil {
			return fmt.Errorf("ingest: decode state checkpoint: %w", derr)
		}
		tkg, terr := core.ReadTKGFallible(bytes.NewReader(st.TKG), cfg.Services, cfg.Resolver)
		if terr != nil {
			return fmt.Errorf("ingest: state checkpoint TKG: %w", terr)
		}
		p.tkg, wm = tkg, st.Watermark
		cfg.Logf("ingest: recovered checkpoint at watermark %d (%d nodes)", wm, tkg.G.NumNodes())
	case errors.Is(err, fs.ErrNotExist):
		if cfg.BasePath != "" {
			tkg, terr := core.LoadTKGFallible(cfg.BasePath, cfg.Services, cfg.Resolver)
			if terr != nil {
				return fmt.Errorf("ingest: base TKG: %w", terr)
			}
			p.tkg = tkg
			cfg.Logf("ingest: seeded from %s (%d nodes)", cfg.BasePath, tkg.G.NumNodes())
		} else {
			p.tkg = core.NewTKGFallible(cfg.Services, cfg.Resolver, cfg.Build)
		}
	default:
		return err
	}
	p.watermark.Store(wm)
	p.met.watermarkSeq.Set(float64(wm))
	p.DroppedTail = p.jrn.DroppedTail
	if p.DroppedTail {
		cfg.Logf("ingest: WAL dropped a torn tail record (crash mid-append); the event was never acknowledged durable")
	}

	// Replay the WAL tail in sequence order. Fixed-width keys make the
	// journal's lexicographic order the numeric order. The seed set is
	// rebuilt wholesale after replay; countApply only needs it non-nil.
	p.seeds = make(map[graph.NodeID]int)
	var maxSeq uint64
	for _, k := range p.jrn.Keys() {
		seq, ok := parseEventKey(k)
		if !ok {
			continue
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		if seq <= wm {
			continue
		}
		payload, _ := p.jrn.Done(k)
		var pulse osint.Pulse
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&pulse); err != nil {
			// The record passed its CRC, so this is schema drift, not
			// corruption — refuse to guess.
			return fmt.Errorf("ingest: WAL record %s undecodable: %w", k, err)
		}
		p.countApply(p.tkg.ApplyPulse(p.ctx, pulse))
		p.Replayed++
		p.met.replayed.Inc()
	}
	if maxSeq < wm {
		// A checkpoint ahead of the WAL (e.g. a manually truncated log):
		// never re-issue sequence numbers the watermark already covers.
		maxSeq = wm
	}
	p.nextSeq = maxSeq + 1
	p.durable.Store(maxSeq)
	p.met.durableSeq.Set(float64(maxSeq))
	if p.Replayed > 0 {
		cfg.Logf("ingest: replayed %d WAL events (watermark %d -> %d)", p.Replayed, wm, maxSeq)
	}

	// Incremental CSR maintenance: mirror the recovered adjacency once,
	// then every mutation keeps the mirror current and snapshot emissions
	// are patches instead of full rebuilds — bit-identical by the graph
	// package's fuzz contract.
	if !cfg.CSRRebuild {
		p.tkg.G.EnableCSRPatch(true)
	}

	// One full label-propagation convergence over the recovered state;
	// every later event re-converges incrementally. Incremental and full
	// runs are bit-identical (labelprop equivalence tests), so a restart
	// never perturbs answers.
	p.tkg.G.TrackDirty(true)
	p.tkg.G.DrainDirty() // load + replay dirt is covered by the full pass
	p.seeds = p.tkg.EventSeeds()
	if cfg.Classes > 0 && cfg.Layers > 0 && p.tkg.G.NumNodes() > 0 {
		p.lp = labelprop.PropagateFull(p.tkg.G.LiveCSR(), p.seeds, cfg.Classes, cfg.Layers)
		p.met.dirtyFrontier.Set(float64(p.lp.LastFrontier))
	}
	p.syncPatchMetrics()
	return nil
}

// syncPatchMetrics folds the graph's CSR emission counters into the
// registry as deltas. Called from the apply goroutine only.
func (p *Pipeline) syncPatchMetrics() {
	st := p.tkg.G.CSRPatchStats()
	if d := st.Applied - p.lastPatch.Applied; d > 0 {
		p.met.patchApplied.Add(d)
	}
	if d := st.Fallback - p.lastPatch.Fallback; d > 0 {
		p.met.patchFallback.Add(d)
	}
	p.lastPatch = st
}

// countApply buckets an ApplyPulse outcome into the stage counters and
// maintains the label-propagation seed set.
func (p *Pipeline) countApply(id graph.NodeID, err error) {
	switch {
	case err == nil:
		p.met.applied.Inc()
		if n := p.tkg.G.Node(id); n.Label >= 0 {
			p.seeds[id] = n.Label
		}
	case errors.Is(err, core.ErrSkipped):
		p.met.skipped.Inc()
	case errors.Is(err, core.ErrDuplicate):
		p.met.duplicates.Inc()
	default:
		p.met.failed.Inc()
		p.cfg.Logf("ingest: apply failed: %v", err)
	}
}

// Submit offers one event to the pipeline. It blocks while the queue is
// full, up to the configured enqueue deadline, then sheds the event with
// ErrOverloaded. ctx cancellation returns ctx.Err(); a closed pipeline
// returns ErrClosed. A nil return means the event was accepted — it
// becomes durable once the WAL stage appends it (see DurableSeq).
func (p *Pipeline) Submit(ctx context.Context, pulse osint.Pulse) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	it := item{pulse: pulse}
	if p.cfg.EnqueueWait < 0 {
		select {
		case p.queue <- it:
			p.met.accepted.Inc()
			return nil
		case <-ctx.Done():
			return ctx.Err()
		case <-p.abortCh:
			return ErrClosed
		}
	}
	// Fast path before arming a timer.
	select {
	case p.queue <- it:
		p.met.accepted.Inc()
		return nil
	default:
	}
	t := time.NewTimer(p.cfg.EnqueueWait)
	defer t.Stop()
	select {
	case p.queue <- it:
		p.met.accepted.Inc()
		return nil
	case <-t.C:
		p.met.shed.Inc()
		return ErrOverloaded
	case <-ctx.Done():
		return ctx.Err()
	case <-p.abortCh:
		return ErrClosed
	}
}

// control enqueues a control item and waits for the apply stage to
// process it.
func (p *Pipeline) control(ctx context.Context, it item) error {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return ErrClosed
	}
	select {
	case p.queue <- it:
		p.mu.RUnlock()
	case <-ctx.Done():
		p.mu.RUnlock()
		return ctx.Err()
	case <-p.abortCh:
		p.mu.RUnlock()
		return ErrClosed
	}
	select {
	case <-it.barrier:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-p.applyDone:
		// The pipeline aborted with the marker still queued.
		select {
		case <-it.barrier:
			return nil
		default:
			return ErrClosed
		}
	}
}

// Barrier returns once every event submitted before it has passed the
// apply stage.
func (p *Pipeline) Barrier(ctx context.Context) error {
	return p.control(ctx, item{barrier: make(chan struct{})})
}

// Cut forces a checkpoint + publish covering everything submitted before
// it, and waits for the checkpoint (not the publish) to land.
func (p *Pipeline) Cut(ctx context.Context) error {
	return p.control(ctx, item{barrier: make(chan struct{}), cut: true})
}

// State returns a deep, immutable copy of the current TKG and its
// applied sequence number — the hook embedding servers use to build
// their first snapshot before any publish has happened.
func (p *Pipeline) State(ctx context.Context) (*core.TKG, uint64, error) {
	ch := make(chan stateCopy, 1)
	if err := p.control(ctx, item{barrier: make(chan struct{}), copyTo: ch}); err != nil {
		return nil, 0, err
	}
	sc := <-ch
	return sc.tkg, sc.watermark, sc.err
}

// Watermark returns the sequence number covered by the newest state
// checkpoint.
func (p *Pipeline) Watermark() uint64 { return p.watermark.Load() }

// DurableSeq returns the highest event sequence number appended to the
// WAL. With a blocking (EnqueueWait < 0), in-order feeder, events
// 1..DurableSeq are exactly the first DurableSeq submissions — the
// resume offset after a crash.
func (p *Pipeline) DurableSeq() uint64 { return p.durable.Load() }

// Stats is a point-in-time copy of the pipeline counters.
type Stats struct {
	Accepted, Shed, Applied, Skipped, Duplicates, Failed uint64
	Replayed, Checkpoints, Publishes                     uint64
	DurableSeq, Watermark                                uint64
	WALBytes                                             int64
	// CSRPatchApplied / CSRPatchFallback count CSR snapshot emissions by
	// kind (incremental patch vs. from-scratch rebuild).
	CSRPatchApplied, CSRPatchFallback uint64
	// LastCutSeconds is the wall time of the most recent cut (0 until the
	// first).
	LastCutSeconds float64
}

// Stats samples the pipeline counters (also exported on /metrics as the
// trail_ingest_* and trail_csr_patch_* families).
func (p *Pipeline) Stats() Stats {
	return Stats{
		Accepted:         p.met.accepted.Value(),
		Shed:             p.met.shed.Value(),
		Applied:          p.met.applied.Value(),
		Skipped:          p.met.skipped.Value(),
		Duplicates:       p.met.duplicates.Value(),
		Failed:           p.met.failed.Value(),
		Replayed:         p.met.replayed.Value(),
		Checkpoints:      p.met.checkpoints.Value(),
		Publishes:        p.met.publishes.Value(),
		DurableSeq:       p.durable.Load(),
		Watermark:        p.watermark.Load(),
		WALBytes:         p.jrn.Size(),
		CSRPatchApplied:  p.met.patchApplied.Value(),
		CSRPatchFallback: p.met.patchFallback.Value(),
		LastCutSeconds:   math.Float64frombits(p.lastCut.Load()),
	}
}

// DirtyFrontier returns the number of rows the last label-propagation
// pass recomputed (0 when disabled).
func (p *Pipeline) DirtyFrontier() int {
	if p.lp == nil {
		return 0
	}
	return p.lp.LastFrontier
}

func (p *Pipeline) applyLoop() {
	defer close(p.applyDone)
	var flushC, repairC <-chan time.Time
	if p.cfg.FlushInterval > 0 {
		t := time.NewTicker(p.cfg.FlushInterval)
		defer t.Stop()
		flushC = t.C
	}
	if p.cfg.RepairInterval > 0 {
		t := time.NewTicker(p.cfg.RepairInterval)
		defer t.Stop()
		repairC = t.C
	}
	for {
		select {
		case it, ok := <-p.queue:
			if !ok {
				// Close: the queue is drained; cut a final checkpoint so
				// restart replays nothing.
				if p.sinceCut > 0 || p.watermark.Load() != p.nextSeq-1 {
					p.cut()
				}
				return
			}
			p.handle(it)
		case <-flushC:
			if p.sinceCut > 0 {
				p.cut()
			}
		case <-repairC:
			p.repair()
		case <-p.abortCh:
			return
		}
	}
}

func (p *Pipeline) handle(it item) {
	if it.barrier != nil {
		if it.cut {
			p.cut()
		}
		if it.copyTo != nil {
			tkg, err := p.cloneTKG()
			it.copyTo <- stateCopy{tkg: tkg, watermark: p.nextSeq - 1, err: err}
		}
		close(it.barrier)
		return
	}
	seq := p.nextSeq
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&it.pulse); err != nil {
		p.met.failed.Inc()
		p.cfg.Logf("ingest: encode pulse %s: %v", it.pulse.ID, err)
		return
	}
	if err := p.jrn.Record(eventKey(seq), buf.Bytes()); err != nil {
		// The event was never durable; drop it rather than apply state the
		// WAL cannot reproduce.
		p.met.walErrors.Inc()
		p.cfg.Logf("ingest: WAL append seq %d: %v", seq, err)
		return
	}
	p.nextSeq++
	p.durable.Store(seq)
	p.met.durableSeq.Set(float64(seq))
	if p.cfg.applyDelay != nil {
		p.cfg.applyDelay(it.pulse)
	}
	p.countApply(p.tkg.ApplyPulse(p.ctx, it.pulse))
	p.propagate()
	p.sinceCut++
	if p.cfg.PublishEvery > 0 && p.sinceCut >= p.cfg.PublishEvery {
		p.cut()
	}
}

// propagate re-converges label propagation over the rows the last apply
// dirtied. Bit-identical to a from-scratch run (labelprop equivalence
// tests), at dirty-frontier cost instead of whole-graph cost. The
// operator is the graph's live slacked view: with patching on, no CSR is
// packed and no normalisation recomputed per event — the builder repairs
// only the delta's one-hop neighbourhood. DrainDirty recycles one buffer
// across events, so the per-event overhead allocates almost nothing.
func (p *Pipeline) propagate() {
	if p.cfg.Classes <= 0 || p.cfg.Layers <= 0 {
		return
	}
	dirty := p.tkg.G.DrainDirty()
	if len(dirty) == 0 && p.lp != nil {
		return
	}
	p.lp = labelprop.PropagateDirty(p.tkg.G.LiveCSR(), p.seeds, p.cfg.Classes, p.cfg.Layers, p.lp, dirty)
	p.met.dirtyFrontier.Set(float64(p.lp.LastFrontier))
}

// cloneTKG deep-copies the current TKG through its own serialisation,
// reattaching the pipeline's enrichment stack.
func (p *Pipeline) cloneTKG() (*core.TKG, error) {
	var buf bytes.Buffer
	if _, err := p.tkg.WriteTo(&buf); err != nil {
		return nil, err
	}
	return core.ReadTKGFallible(&buf, p.cfg.Services, p.cfg.Resolver)
}

// cut makes everything applied so far durable and observable: WAL sync,
// atomic state checkpoint embedding the watermark, advisory watermark
// record, then a snapshot hand-off to the publisher (latest wins).
func (p *Pipeline) cut() {
	wm := p.nextSeq - 1
	if p.sinceCut == 0 && p.watermark.Load() == wm {
		return // nothing new since the last cut (repair passes bump sinceCut)
	}
	start := time.Now()
	defer func() {
		d := time.Since(start).Seconds()
		p.met.cutSeconds.Observe(d)
		p.lastCut.Store(math.Float64bits(d))
		p.syncPatchMetrics()
	}()
	if err := p.jrn.Sync(); err != nil {
		p.met.walErrors.Inc()
		p.cfg.Logf("ingest: WAL sync: %v", err)
		return
	}
	var tkgBuf bytes.Buffer
	if _, err := p.tkg.WriteTo(&tkgBuf); err != nil {
		p.cfg.Logf("ingest: serialise TKG: %v", err)
		return
	}
	var env bytes.Buffer
	if err := gob.NewEncoder(&env).Encode(&persistedState{Watermark: wm, TKG: tkgBuf.Bytes()}); err != nil {
		p.cfg.Logf("ingest: encode state: %v", err)
		return
	}
	if err := ckpt.Save(p.statePath, StateKind, stateVersion, env.Bytes()); err != nil {
		p.cfg.Logf("ingest: checkpoint: %v", err)
		return
	}
	if err := p.jrn.RecordGob(watermarkKey, wm); err != nil {
		p.cfg.Logf("ingest: advisory watermark: %v", err)
	}
	p.watermark.Store(wm)
	p.met.watermarkSeq.Set(float64(wm))
	p.met.checkpoints.Inc()
	p.sinceCut = 0

	if p.cfg.Publish == nil {
		return
	}
	// The graph snapshot format is order-faithful (edges serialise and
	// replay in insertion order), so the clone's adjacency is bit-for-bit
	// the live graph's — and insertion order itself is crash-schedule
	// independent, because recovery replays the WAL in sequence order over
	// a checkpoint that preserved it. That makes the live graph's patched
	// CSR emission directly adoptable: the published snapshot chain starts
	// from the spliced matrix instead of re-packing the whole graph. In
	// -csr-rebuild mode the clone keeps the legacy behaviour and builds
	// its CSR from scratch on first use (the A/B lever).
	clone, err := core.ReadTKGFallible(bytes.NewReader(tkgBuf.Bytes()), p.cfg.Services, p.cfg.Resolver)
	if err != nil {
		p.cfg.Logf("ingest: snapshot clone: %v", err)
		return
	}
	if !p.cfg.CSRRebuild {
		if err := clone.G.AdoptCSR(p.tkg.G.CSR()); err != nil {
			p.cfg.Logf("ingest: adopt CSR: %v", err)
		}
	}
	pb := published{tkg: clone, watermark: wm}
	for {
		select {
		case p.pubCh <- pb:
			return
		default:
		}
		// Mailbox full: discard the superseded snapshot and retry.
		select {
		case <-p.pubCh:
			p.met.publishSkipped.Inc()
		default:
		}
	}
}

func (p *Pipeline) repair() {
	repaired, attempted := p.tkg.RepairDegraded(p.ctx, p.cfg.RepairBatch)
	if attempted > 0 {
		p.met.repairAttempts.Add(uint64(attempted))
		p.cfg.Logf("ingest: repair pass: %d/%d degraded nodes restored", repaired, attempted)
	}
	if repaired > 0 {
		p.met.repaired.Add(uint64(repaired))
		// Repaired features change serving inputs; fold them into the next
		// cut promptly.
		if p.sinceCut == 0 {
			p.sinceCut++
		}
	}
}

func (p *Pipeline) publishLoop() {
	defer close(p.pubDone)
	for pb := range p.pubCh {
		p.cfg.Publish(pb.tkg, pb.watermark)
		p.met.publishes.Inc()
		p.lastPublish.Store(time.Now().UnixNano())
	}
}

// Close drains the pipeline: intake stops, every queued event is
// journaled and applied, a final checkpoint (with its watermark) is cut
// and fsynced, the last snapshot is published, and the WAL lock is
// released. After a clean Close a restart replays zero events.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.applyDone
		<-p.pubDone
		return nil
	}
	p.closed = true
	close(p.queue) // safe: Submit holds mu.RLock around every send
	p.mu.Unlock()
	<-p.applyDone
	close(p.pubCh)
	<-p.pubDone
	p.cancel()
	return p.jrn.Close()
}

// Abort is the crash-test hook: it stops the pipeline immediately —
// queued events are dropped, no final checkpoint is cut — leaving
// exactly the on-disk state a kill -9 would. The WAL lock is released so
// a successor pipeline can recover the directory.
func (p *Pipeline) Abort() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cancel()
	close(p.abortCh)
	p.mu.Unlock()
	<-p.applyDone
	close(p.pubCh)
	<-p.pubDone
	p.jrn.Close()
}
