package ingest

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"trail/internal/ckpt"
	"trail/internal/core"
	"trail/internal/graph"
	"trail/internal/labelprop"
	"trail/internal/mat/mattest"
	"trail/internal/osint"
)

// testWorld returns a small deterministic world and the pipeline config
// pieces every test shares.
func testWorld() (*osint.World, []osint.Pulse) {
	cfg := osint.TestConfig()
	cfg.Months = 4
	cfg.EventsPerMonth = 6
	w := osint.NewWorld(cfg)
	return w, w.Pulses()
}

// testConfig is a pipeline config over dir with blocking admission and
// no background timers, so tests control every cut explicitly.
func testConfig(t *testing.T, w *osint.World, dir string) Config {
	t.Helper()
	return Config{
		Dir:           dir,
		Resolver:      w.Resolver(),
		Services:      osint.Infallible(w),
		Build:         core.DefaultBuildConfig(),
		Classes:       len(w.Resolver().Names()),
		Layers:        2,
		EnqueueWait:   -1, // block: equivalence tests must not shed
		PublishEvery:  -1,
		FlushInterval: -1,
		Logf:          t.Logf,
	}
}

func tkgBytes(t *testing.T, tkg *core.TKG) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := tkg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func feed(t *testing.T, p *Pipeline, pulses []osint.Pulse) {
	t.Helper()
	ctx := context.Background()
	for i := range pulses {
		if err := p.Submit(ctx, pulses[i]); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
}

// referenceState builds the batch-path reference for a pulse set: a TKG
// via Build (one finalisation sweep) and a from-scratch label
// propagation over it.
func referenceState(t *testing.T, w *osint.World, pulses []osint.Pulse, layers int) ([]byte, *labelprop.State) {
	t.Helper()
	tkg := core.NewTKG(w, w.Resolver(), core.DefaultBuildConfig())
	if _, err := tkg.Build(pulses); err != nil {
		t.Fatal(err)
	}
	classes := len(w.Resolver().Names())
	lp := labelprop.PropagateFull(tkg.G.CSR(), tkg.EventSeeds(), classes, layers)
	return tkgBytes(t, tkg), lp
}

// TestPipelineMatchesBatchBuild: streaming every pulse through the
// pipeline (WAL, incremental finalisation, dirty-frontier label
// propagation) reaches state bit-identical to the offline batch path.
func TestPipelineMatchesBatchBuild(t *testing.T) {
	w, pulses := testWorld()
	wantTKG, wantLP := referenceState(t, w, pulses, 2)

	p, err := New(testConfig(t, w, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	feed(t, p, pulses)
	if err := p.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := p.DurableSeq(); got != uint64(len(pulses)) {
		t.Fatalf("durable seq %d, want %d", got, len(pulses))
	}
	if !bytes.Equal(tkgBytes(t, p.tkg), wantTKG) {
		t.Fatal("streamed TKG differs from batch build")
	}
	mattest.BitEqual(t, "streamed Z", p.lp.Z, wantLP.Z)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Drain-on-close contract: the final cut covers everything.
	if p.Watermark() != uint64(len(pulses)) {
		t.Fatalf("watermark %d after close, want %d", p.Watermark(), len(pulses))
	}
}

// TestKillAtEveryRecord is the crash-recovery harness: the pipeline is
// killed (Abort: no final checkpoint, queued work dropped) after every
// single event, restarted, and fed the rest from its durable offset.
// The state after the last restart must be bit-identical to an
// uninterrupted run — for every kill point, so the WAL + watermark
// protocol has no record-granularity hole.
func TestKillAtEveryRecord(t *testing.T) {
	w, pulses := testWorld()
	wantTKG, wantLP := referenceState(t, w, pulses, 2)

	dir := t.TempDir()
	ctx := context.Background()
	totalReplayed := 0
	for len(pulses) > 0 {
		cfg := testConfig(t, w, dir)
		// Cut a checkpoint every 3 events so kills land before, on, and
		// after checkpoint boundaries as the run progresses.
		cfg.PublishEvery = 3
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		totalReplayed += p.Replayed
		done := p.DurableSeq()
		if done > uint64(len(w.Pulses())) {
			t.Fatalf("durable seq %d beyond feed length", done)
		}
		pulses = w.Pulses()[done:] // resume exactly after the durable prefix
		if len(pulses) == 0 {
			// Everything was already WAL'd before the last kill: verify the
			// recovered state and stop.
			if !bytes.Equal(tkgBytes(t, p.tkg), wantTKG) {
				t.Fatal("recovered TKG differs from uninterrupted run")
			}
			mattest.BitEqual(t, "recovered Z", p.lp.Z, wantLP.Z)
			p.Abort()
			break
		}
		if err := p.Submit(ctx, pulses[0]); err != nil {
			t.Fatalf("submit after %d: %v", done, err)
		}
		if err := p.Barrier(ctx); err != nil {
			t.Fatal(err)
		}
		p.Abort() // kill -9 equivalent: WAL has the event, checkpoint may not
	}
	if totalReplayed == 0 {
		t.Fatal("no restart replayed anything; harness is vacuous")
	}

	// One more recovery over the final directory must also converge.
	p, err := New(testConfig(t, w, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !bytes.Equal(tkgBytes(t, p.tkg), wantTKG) {
		t.Fatal("final recovery differs from uninterrupted run")
	}
	mattest.BitEqual(t, "final recovery Z", p.lp.Z, wantLP.Z)
}

// TestRecoveryTornTail: garbage appended to the WAL (a crash mid-append)
// is truncated away on reopen, the un-acknowledged suffix is re-fed, and
// the final state still matches the uninterrupted run.
func TestRecoveryTornTail(t *testing.T) {
	w, pulses := testWorld()
	wantTKG, _ := referenceState(t, w, pulses, 2)
	dir := t.TempDir()
	ctx := context.Background()

	p, err := New(testConfig(t, w, dir))
	if err != nil {
		t.Fatal(err)
	}
	feed(t, p, pulses[:5])
	if err := p.Barrier(ctx); err != nil {
		t.Fatal(err)
	}
	p.Abort()

	// Simulate a torn append: half a record of garbage at the tail.
	wal := filepath.Join(dir, JournalFile)
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("JRN1\xff\xff torn")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p2, err := New(testConfig(t, w, dir))
	if err != nil {
		t.Fatal(err)
	}
	if !p2.DroppedTail {
		t.Fatal("torn tail not detected")
	}
	if got := p2.DurableSeq(); got != 5 {
		t.Fatalf("durable seq %d after torn tail, want 5", got)
	}
	feed(t, p2, pulses[5:])
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}

	p3, err := New(testConfig(t, w, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer p3.Close()
	if p3.Replayed != 0 {
		t.Fatalf("clean close still replayed %d events", p3.Replayed)
	}
	if !bytes.Equal(tkgBytes(t, p3.tkg), wantTKG) {
		t.Fatal("state after torn-tail recovery differs from uninterrupted run")
	}
}

// TestChaosNeverCorrupts: a flaky enrichment stack (transient + permanent
// provider failures behind the resilience middleware) must never corrupt
// the journal or wedge the pipeline: the run completes, every accepted
// event is accounted for, a kill recovers cleanly, and shed/degraded
// events show up in the metrics rather than vanishing.
func TestChaosNeverCorrupts(t *testing.T) {
	w, pulses := testWorld()
	dir := t.TempDir()

	clock := osint.NewManualClock(time.Unix(0, 0)).AutoAdvance(time.Millisecond)
	stack := func() osint.FallibleServices {
		cc := osint.ChaosConfig{
			Seed:                    7,
			PermanentRate:           0.15,
			TransientRate:           0.25,
			MaxConsecutiveTransient: 3,
			Clock:                   clock,
		}
		rcfg := osint.DefaultResilienceConfig()
		rcfg.Clock = clock
		rcfg.MaxAttempts = 5
		return osint.NewResilientServices(osint.NewChaosServices(w, cc), rcfg)
	}

	cfg := testConfig(t, w, dir)
	cfg.Services = stack()
	cfg.PublishEvery = 4
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, p, pulses[:len(pulses)/2])
	if err := p.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.Abort() // crash mid-stream under chaos

	cfg2 := testConfig(t, w, dir)
	cfg2.Services = stack()
	p2, err := New(cfg2)
	if err != nil {
		t.Fatalf("recovery under chaos: %v", err)
	}
	feed(t, p2, pulses[len(pulses)/2:])
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}

	// Accounting: every WAL'd event landed in exactly one outcome bucket.
	m := &p2.met
	outcomes := m.applied.Value() + m.skipped.Value() + m.duplicates.Value() + m.failed.Value()
	// p2 processed its recovery replays plus the live second half; every
	// one must land in exactly one outcome bucket.
	processed := uint64(p2.Replayed + len(pulses) - len(pulses)/2)
	if outcomes != processed {
		t.Fatalf("outcome accounting: %d outcomes for %d processed events", outcomes, processed)
	}
	if m.failed.Value() != 0 {
		t.Fatalf("%d applies failed outright; chaos should only skip, degrade or stall", m.failed.Value())
	}
	if p2.Watermark() != p2.DurableSeq() {
		t.Fatalf("close left watermark %d behind durable %d", p2.Watermark(), p2.DurableSeq())
	}

	// The journal must reopen with zero loss and zero damage.
	jrn, err := ckpt.OpenJournal(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	defer jrn.Close()
	if jrn.DroppedTail {
		t.Fatal("chaos run corrupted the journal tail")
	}
	events := 0
	for _, k := range jrn.Keys() {
		if _, ok := parseEventKey(k); ok {
			events++
		}
	}
	if events != len(pulses) {
		t.Fatalf("journal holds %d events, want %d", events, len(pulses))
	}

	// Degraded nodes (permanent chaos failures) are visible and
	// repairable once the provider heals.
	degraded := 0
	p2.tkg.G.ForEachNode(func(n graph.Node) {
		if n.Degraded {
			degraded++
		}
	})
	if degraded == 0 {
		t.Log("note: chaos run produced no degraded nodes at this seed")
	}
}

// TestBackpressureSheds: with the apply stage stalled and a full queue, a
// deadline-bound Submit sheds with ErrOverloaded and the shed counter
// moves; nothing deadlocks and the pipeline drains cleanly afterwards.
func TestBackpressureSheds(t *testing.T) {
	w, pulses := testWorld()
	gate := make(chan struct{})
	cfg := testConfig(t, w, t.TempDir())
	cfg.QueueDepth = 2
	cfg.EnqueueWait = 5 * time.Millisecond
	first := true
	cfg.applyDelay = func(osint.Pulse) {
		if first {
			first = false
			<-gate // stall the apply stage on the first event
		}
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	shed := 0
	for i := 0; i < 6 && i < len(pulses); i++ {
		switch err := p.Submit(ctx, pulses[i]); {
		case err == nil:
		case errors.Is(err, ErrOverloaded):
			shed++
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if shed == 0 {
		t.Fatal("stalled pipeline shed nothing")
	}
	if got := p.met.shed.Value(); got != uint64(shed) {
		t.Fatalf("shed counter %d, want %d", got, shed)
	}
	close(gate)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if acc := p.met.accepted.Value(); acc != uint64(6-shed) || p.DurableSeq() != acc {
		t.Fatalf("accepted %d, durable %d, shed %d: accepted events must all drain", acc, p.DurableSeq(), shed)
	}
}

// TestSecondPipelineLocked: two live pipelines over one directory would
// interleave WAL records; the second must fail fast with the journal's
// typed lock error.
func TestSecondPipelineLocked(t *testing.T) {
	w, _ := testWorld()
	dir := t.TempDir()
	p, err := New(testConfig(t, w, dir))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := New(testConfig(t, w, dir)); !errors.Is(err, ckpt.ErrJournalLocked) {
		t.Fatalf("second pipeline: %v, want ErrJournalLocked", err)
	}
}

// TestPublishAndState: cuts hand immutable snapshots to the publisher
// with their watermark; State serves a deep copy on demand; mutating a
// published copy cannot reach pipeline state.
func TestPublishAndState(t *testing.T) {
	w, pulses := testWorld()
	type pub struct {
		nodes int
		wm    uint64
	}
	pubs := make(chan pub, 64)
	cfg := testConfig(t, w, t.TempDir())
	cfg.PublishEvery = 4
	cfg.Publish = func(tkg *core.TKG, wm uint64) {
		// Mutate the copy to prove isolation.
		tkg.G.Upsert(graph.KindDomain, "publisher-scribble.example")
		pubs <- pub{nodes: tkg.G.NumNodes(), wm: wm}
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, p, pulses[:8])
	ctx := context.Background()
	if err := p.Cut(ctx); err != nil {
		t.Fatal(err)
	}
	snap, wm, err := p.State(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if wm != 8 {
		t.Fatalf("state watermark %d, want 8", wm)
	}
	if _, ok := snap.G.Lookup(graph.KindDomain, "publisher-scribble.example"); ok {
		t.Fatal("publisher mutation leaked into pipeline state")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	close(pubs)
	var got []pub
	for x := range pubs {
		got = append(got, x)
	}
	if len(got) == 0 {
		t.Fatal("no snapshots published")
	}
	last := got[len(got)-1]
	if last.wm != 8 {
		t.Fatalf("last published watermark %d, want 8", last.wm)
	}
	for i := 1; i < len(got); i++ {
		if got[i].wm <= got[i-1].wm {
			t.Fatalf("published watermarks not increasing: %v", got)
		}
	}
	if p.met.publishes.Value() != uint64(len(got)) {
		t.Fatalf("publish counter %d, want %d", p.met.publishes.Value(), len(got))
	}
}

// TestSubmitAfterClose: lifecycle errors are typed and prompt.
func TestSubmitAfterClose(t *testing.T) {
	w, pulses := testWorld()
	p, err := New(testConfig(t, w, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(context.Background(), pulses[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if err := p.Barrier(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("barrier after close: %v, want ErrClosed", err)
	}
	p.Abort() // must be a harmless no-op after Close
}

// TestRepairLoop: the catch-up ticker restores nodes degraded by a
// provider outage without disturbing the graph structure.
func TestRepairLoop(t *testing.T) {
	w, pulses := testWorld()
	svc := &switchable{inner: osint.Infallible(w)}
	svc.broken.Store(true)
	cfg := testConfig(t, w, t.TempDir())
	cfg.Services = svc
	cfg.RepairInterval = 5 * time.Millisecond
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	feed(t, p, pulses[:6])
	if err := p.Barrier(context.Background()); err != nil {
		t.Fatal(err)
	}
	countDegraded := func() int {
		n := 0
		snap, _, err := p.State(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		snap.G.ForEachNode(func(nd graph.Node) {
			if nd.Degraded {
				n++
			}
		})
		return n
	}
	if countDegraded() == 0 {
		t.Fatal("outage degraded nothing; test is vacuous")
	}
	svc.broken.Store(false) // provider heals
	deadline := time.Now().Add(5 * time.Second)
	for countDegraded() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("repair loop left %d degraded nodes after heal", countDegraded())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if p.met.repaired.Value() == 0 {
		t.Fatal("repair counter did not move")
	}
}
