package ingest

import (
	"context"
	"sync/atomic"

	"trail/internal/osint"
)

// switchable fails every lookup with a permanent error until healed,
// then delegates to the real services — a provider outage that ends.
type switchable struct {
	inner  osint.FallibleServices
	broken atomic.Bool
}

var errOutage = context.DeadlineExceeded

func (s *switchable) LookupIP(ctx context.Context, addr string) (osint.IPRecord, bool, error) {
	if s.broken.Load() {
		return osint.IPRecord{}, false, errOutage
	}
	return s.inner.LookupIP(ctx, addr)
}

func (s *switchable) PassiveDNSDomain(ctx context.Context, name string) (osint.DomainRecord, bool, error) {
	if s.broken.Load() {
		return osint.DomainRecord{}, false, errOutage
	}
	return s.inner.PassiveDNSDomain(ctx, name)
}

func (s *switchable) PassiveDNSIP(ctx context.Context, addr string) ([]string, bool, error) {
	if s.broken.Load() {
		return nil, false, errOutage
	}
	return s.inner.PassiveDNSIP(ctx, addr)
}

func (s *switchable) ProbeURL(ctx context.Context, url string) (osint.URLRecord, bool, error) {
	if s.broken.Load() {
		return osint.URLRecord{}, false, errOutage
	}
	return s.inner.ProbeURL(ctx, url)
}
