// Package ioc defines the value types for network-based indicators of
// compromise (IOCs) — IP addresses, URLs, domains and ASNs — together with
// the parsing utilities the TRAIL pipeline needs: defanging/refanging,
// indicator classification, URL decomposition (the HostedOn relation of
// Table I is derived lexically from URLs), and validation.
package ioc

import (
	"fmt"
	"net/netip"
	"strings"
)

// Type enumerates the IOC categories tracked by the TKG.
type Type uint8

// IOC types. Event is not an IOC but shares the identifier space in
// incident reports, so parsing code can classify it too.
const (
	TypeUnknown Type = iota
	TypeIP
	TypeURL
	TypeDomain
	TypeASN
)

// String returns the type name used in OTX-style pulse JSON.
func (t Type) String() string {
	switch t {
	case TypeIP:
		return "IPv4"
	case TypeURL:
		return "URL"
	case TypeDomain:
		return "domain"
	case TypeASN:
		return "ASN"
	default:
		return "unknown"
	}
}

// ParseType parses OTX-style indicator type names (case-insensitive).
func ParseType(s string) Type {
	switch strings.ToLower(s) {
	case "ipv4", "ipv6", "ip":
		return TypeIP
	case "url", "uri":
		return TypeURL
	case "domain", "hostname":
		return TypeDomain
	case "asn":
		return TypeASN
	default:
		return TypeUnknown
	}
}

// IOC is one indicator: a type plus its canonical (refanged, lowercase
// where applicable) string value.
type IOC struct {
	Type  Type
	Value string
}

// String implements fmt.Stringer.
func (i IOC) String() string { return fmt.Sprintf("%s(%s)", i.Type, i.Value) }

// Refang reverses the common "defanging" conventions threat reports use
// to stop indicators being clickable: hxxp:// -> http://, [.] -> ., (.)
// -> ., [:]// -> ://. It is idempotent on already-clean input.
func Refang(s string) string {
	r := strings.NewReplacer(
		"hxxps://", "https://",
		"hxxp://", "http://",
		"hXXps://", "https://",
		"hXXp://", "http://",
		"[.]", ".",
		"(.)", ".",
		"[:]", ":",
		"[at]", "@",
		"[@]", "@",
	)
	return r.Replace(s)
}

// Defang applies the standard defanging conventions so indicator strings
// can be rendered safely in reports: http -> hxxp and the last-label dot
// of any hostname -> [.]. Only the scheme and dots are rewritten.
func Defang(s string) string {
	s = strings.Replace(s, "https://", "hxxps://", 1)
	s = strings.Replace(s, "http://", "hxxp://", 1)
	// Bracket every dot in the host portion. For bare domains/IPs that is
	// the whole string up to the first '/' or ':'.
	hostEnd := len(s)
	start := 0
	if i := strings.Index(s, "://"); i >= 0 {
		start = i + 3
	}
	for j := start; j < len(s); j++ {
		if s[j] == '/' || s[j] == '?' {
			hostEnd = j
			break
		}
	}
	host := strings.ReplaceAll(s[start:hostEnd], ".", "[.]")
	return s[:start] + host + s[hostEnd:]
}

// Classify determines the IOC type of a raw (possibly defanged) indicator
// string and returns its canonical IOC. Unknown or malformed indicators
// return ok=false; this is the filter that discards the "javascript
// snippets matching a URL regex" data-quality problem the paper reports.
func Classify(raw string) (IOC, bool) {
	s := strings.TrimSpace(Refang(raw))
	if s == "" || strings.ContainsAny(s, " \t\n<>{}\"'`") {
		return IOC{}, false
	}
	if strings.HasPrefix(strings.ToUpper(s), "AS") && isDigits(s[2:]) && len(s) > 2 {
		return IOC{Type: TypeASN, Value: "AS" + s[2:]}, true
	}
	if addr, err := netip.ParseAddr(s); err == nil {
		return IOC{Type: TypeIP, Value: addr.String()}, true
	}
	if strings.Contains(s, "://") {
		u, ok := ParseURL(s)
		if !ok {
			return IOC{}, false
		}
		return IOC{Type: TypeURL, Value: u.Canonical}, true
	}
	if d, ok := CanonicalDomain(s); ok {
		return IOC{Type: TypeDomain, Value: d}, true
	}
	return IOC{}, false
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// CanonicalDomain validates and lower-cases a domain name. It enforces
// RFC-1035-style label rules (letters, digits, hyphens; labels 1-63
// chars; at least two labels; TLD not all digits).
func CanonicalDomain(s string) (string, bool) {
	s = strings.ToLower(strings.TrimSuffix(strings.TrimSpace(s), "."))
	if len(s) == 0 || len(s) > 253 {
		return "", false
	}
	labels := strings.Split(s, ".")
	if len(labels) < 2 {
		return "", false
	}
	for _, l := range labels {
		if len(l) == 0 || len(l) > 63 {
			return "", false
		}
		if l[0] == '-' || l[len(l)-1] == '-' {
			return "", false
		}
		for i := 0; i < len(l); i++ {
			c := l[i]
			if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' || c == '_') {
				return "", false
			}
		}
	}
	if isDigits(labels[len(labels)-1]) {
		return "", false // would be an IP-like string, not a domain
	}
	return s, true
}

// TLD returns the final label of a domain ("com" for "evil.example.com").
func TLD(domain string) string {
	i := strings.LastIndexByte(domain, '.')
	if i < 0 {
		return domain
	}
	return domain[i+1:]
}
