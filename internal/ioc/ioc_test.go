package ioc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRefang(t *testing.T) {
	cases := map[string]string{
		"hxxp://evil[.]com/a.php":   "http://evil.com/a.php",
		"hxxps://bad[.]org":         "https://bad.org",
		"1.2.3[.]4":                 "1.2.3.4",
		"plain.example.com":         "plain.example.com",
		"http://already.clean/x":    "http://already.clean/x",
		"user[at]mail(.)domain.com": "user@mail.domain.com",
	}
	for in, want := range cases {
		if got := Refang(in); got != want {
			t.Errorf("Refang(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDefangRefangRoundTrip(t *testing.T) {
	inputs := []string{
		"http://evil.com/a.php",
		"https://sub.bad.org:8080/p?q=1",
		"1.2.3.4",
		"some.domain.net",
	}
	for _, in := range inputs {
		d := Defang(in)
		if d == in {
			t.Errorf("Defang(%q) did not change the string", in)
		}
		if strings.Contains(d, "http://") || strings.Contains(d, "https://") {
			t.Errorf("Defang(%q) left a live scheme: %q", in, d)
		}
		if got := Refang(d); got != in {
			t.Errorf("Refang(Defang(%q)) = %q", in, got)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		in  string
		typ Type
		val string
		ok  bool
	}{
		{"1.2.3.4", TypeIP, "1.2.3.4", true},
		{"1.2.3[.]4", TypeIP, "1.2.3.4", true},
		{"evil.com", TypeDomain, "evil.com", true},
		{"EVIL.COM", TypeDomain, "evil.com", true},
		{"hxxp://evil[.]com/x.php", TypeURL, "http://evil.com/x.php", true},
		{"AS12345", TypeASN, "AS12345", true},
		{"as99", TypeASN, "AS99", true},
		{"javascript:alert(1)", TypeUnknown, "", false},
		{"function(){return 1}", TypeUnknown, "", false},
		{"", TypeUnknown, "", false},
		{"no-dots", TypeUnknown, "", false},
		{"999.999.999.999", TypeUnknown, "", false},
	}
	for _, c := range cases {
		got, ok := Classify(c.in)
		if ok != c.ok {
			t.Errorf("Classify(%q) ok=%v, want %v", c.in, ok, c.ok)
			continue
		}
		if ok && (got.Type != c.typ || got.Value != c.val) {
			t.Errorf("Classify(%q) = %v, want %s(%s)", c.in, got, c.typ, c.val)
		}
	}
}

func TestCanonicalDomain(t *testing.T) {
	good := []string{"a.b", "sub.domain.example.com", "xn--test.org", "Evil.COM."}
	for _, d := range good {
		if _, ok := CanonicalDomain(d); !ok {
			t.Errorf("CanonicalDomain(%q) rejected", d)
		}
	}
	bad := []string{"", "nodots", ".leading.dot", "trailing..dots", "-bad.com",
		"bad-.com", "a.123", strings.Repeat("x", 64) + ".com", "sp ace.com"}
	for _, d := range bad {
		if got, ok := CanonicalDomain(d); ok {
			t.Errorf("CanonicalDomain(%q) accepted as %q", d, got)
		}
	}
}

func TestParseURL(t *testing.T) {
	u, ok := ParseURL("https://sub.evil.com:8443/a/b/drop.exe?x=1&y=2")
	if !ok {
		t.Fatal("parse failed")
	}
	if u.Scheme != "https" || u.Host != "sub.evil.com" || u.Port != "8443" {
		t.Fatalf("parsed %+v", u)
	}
	if u.Path != "/a/b/drop.exe" || u.Query != "x=1&y=2" {
		t.Fatalf("path/query %+v", u)
	}
	if u.FileExt() != "exe" {
		t.Fatalf("ext %q", u.FileExt())
	}
	if u.HostIsIP {
		t.Fatal("domain flagged as IP")
	}

	u2, ok := ParseURL("http://10.0.0.1/x")
	if !ok || !u2.HostIsIP || u2.Host != "10.0.0.1" {
		t.Fatalf("IP host parse: %+v ok=%v", u2, ok)
	}

	for _, bad := range []string{"ftp://x.com/a", "http://", "not a url", "http:///path"} {
		if _, ok := ParseURL(bad); ok {
			t.Errorf("ParseURL(%q) accepted", bad)
		}
	}
}

func TestParseURLCanonicalIdempotent(t *testing.T) {
	f := func(host, path string) bool {
		u, ok := ParseURL("http://evil.example/" + sanitize(path))
		if !ok {
			return true
		}
		u2, ok2 := ParseURL(u.Canonical)
		return ok2 && u2.Canonical == u.Canonical
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r > 32 && r < 127 && r != '<' && r != '>' && r != '"' && r != '\'' && r != '`' && r != '{' && r != '}' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func TestLexicalFeatures(t *testing.T) {
	l := LexicalFeatures("http://ab1.com/x?a=1&b=2")
	if l.Length != 24 {
		t.Fatalf("length %v", l.Length)
	}
	if l.Digits != 3 {
		t.Fatalf("digits %v", l.Digits)
	}
	if l.QueryParams != 2 {
		t.Fatalf("query params %v", l.QueryParams)
	}
	if l.PathDepth != 1 {
		t.Fatalf("path depth %v", l.PathDepth)
	}
	if l.Entropy <= 0 {
		t.Fatalf("entropy %v", l.Entropy)
	}
	if len(l.Vector()) != 10 {
		t.Fatalf("vector size %d", len(l.Vector()))
	}
	if len(l.DomainVector()) != 4 {
		t.Fatalf("domain vector size %d", len(l.DomainVector()))
	}
}

func TestEntropyOrdering(t *testing.T) {
	low := LexicalFeatures("aaaaaaaaaaaa").Entropy
	high := LexicalFeatures("k9x2qv7jw3zp").Entropy
	if low >= high {
		t.Fatalf("entropy ordering broken: uniform %v >= random %v", low, high)
	}
}

func TestTLD(t *testing.T) {
	if TLD("a.b.co.uk") != "uk" {
		t.Fatal("TLD of a.b.co.uk")
	}
	if TLD("nodot") != "nodot" {
		t.Fatal("TLD of bare label")
	}
}

func TestClassifyIsTotalFunction(t *testing.T) {
	// Classify must never panic, whatever bytes arrive in a feed.
	f := func(s string) bool {
		_, _ = Classify(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
