package ioc

import (
	"math"
	"strings"
)

// URL is a decomposed URL indicator. TRAIL derives the HostedOn relation
// (URL -> Domain) and the URL's lexical features from this decomposition,
// so the parser is hand-rolled rather than delegating to net/url: threat-
// report URLs are frequently not RFC-compliant and must still parse.
type URL struct {
	Canonical string // scheme://host[:port]/path[?query]
	Scheme    string
	Host      string // domain or IP literal, lowercase
	HostIsIP  bool
	Port      string // empty if none
	Path      string // begins with '/' (or empty)
	Query     string // without '?'
}

// ParseURL decomposes a (refanged) URL string. It accepts http and https
// schemes only — the only schemes present in network IOC feeds — and
// requires a syntactically valid host.
func ParseURL(s string) (URL, bool) {
	var u URL
	rest := s
	switch {
	case strings.HasPrefix(rest, "http://"):
		u.Scheme = "http"
		rest = rest[len("http://"):]
	case strings.HasPrefix(rest, "https://"):
		u.Scheme = "https"
		rest = rest[len("https://"):]
	default:
		return URL{}, false
	}
	// Split host[:port] from path?query.
	hostport := rest
	if i := strings.IndexAny(rest, "/?"); i >= 0 {
		hostport = rest[:i]
		if rest[i] == '/' {
			u.Path = rest[i:]
		} else {
			u.Path = ""
			u.Query = rest[i+1:]
		}
		if j := strings.IndexByte(u.Path, '?'); j >= 0 {
			u.Query = u.Path[j+1:]
			u.Path = u.Path[:j]
		}
	}
	if i := strings.LastIndexByte(hostport, ':'); i >= 0 {
		port := hostport[i+1:]
		if isDigits(port) {
			u.Port = port
			hostport = hostport[:i]
		}
	}
	host := strings.ToLower(hostport)
	if host == "" {
		return URL{}, false
	}
	if d, ok := CanonicalDomain(host); ok {
		u.Host = d
	} else if ip, ok := parseIPHost(host); ok {
		u.Host = ip
		u.HostIsIP = true
	} else {
		return URL{}, false
	}
	var b strings.Builder
	b.WriteString(u.Scheme)
	b.WriteString("://")
	b.WriteString(u.Host)
	if u.Port != "" {
		b.WriteByte(':')
		b.WriteString(u.Port)
	}
	b.WriteString(u.Path)
	if u.Query != "" {
		b.WriteByte('?')
		b.WriteString(u.Query)
	}
	u.Canonical = b.String()
	return u, true
}

func parseIPHost(s string) (string, bool) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return "", false
	}
	for _, p := range parts {
		if !isDigits(p) || len(p) > 3 {
			return "", false
		}
		v := 0
		for i := 0; i < len(p); i++ {
			v = v*10 + int(p[i]-'0')
		}
		if v > 255 {
			return "", false
		}
	}
	return s, true
}

// FileExt returns the extension of the path's final segment, without the
// dot ("php" for "/a/b/drop.php"), or "" if none.
func (u URL) FileExt() string {
	base := u.Path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.LastIndexByte(base, '.'); i >= 0 && i < len(base)-1 {
		return strings.ToLower(base[i+1:])
	}
	return ""
}

// Lexical holds the 10 lexical URL features the paper tracks (§IV-B):
// length statistics, character-class counts and Shannon entropy. The same
// struct backs the 4 lexical domain features.
type Lexical struct {
	Length      float64
	Digits      float64
	Letters     float64
	Specials    float64 // neither alphanumeric nor '.' nor '/'
	Dots        float64
	Slashes     float64
	QueryParams float64
	PathDepth   float64
	Entropy     float64
	DigitRatio  float64
}

// LexicalFeatures computes the lexical statistics of s. Query parameter
// and path-depth counts only make sense for URLs, but the function is
// total for any string.
func LexicalFeatures(s string) Lexical {
	var l Lexical
	l.Length = float64(len(s))
	// Fixed-order byte counts: entropy must sum in a deterministic order,
	// or identical inputs produce last-ulp-different features from one
	// call to the next (float addition is not associative).
	var counts [256]int
	for i := 0; i < len(s); i++ {
		c := s[i]
		counts[c]++
		switch {
		case c >= '0' && c <= '9':
			l.Digits++
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			l.Letters++
		case c == '.':
			l.Dots++
		case c == '/':
			l.Slashes++
		default:
			l.Specials++
		}
	}
	if len(s) > 0 {
		l.DigitRatio = l.Digits / l.Length
		n := float64(len(s))
		for _, c := range counts {
			if c == 0 {
				continue
			}
			p := float64(c) / n
			l.Entropy -= p * math.Log2(p)
		}
	}
	l.QueryParams = float64(strings.Count(s, "&"))
	if strings.ContainsRune(s, '?') {
		l.QueryParams++
	}
	if i := strings.Index(s, "://"); i >= 0 {
		l.PathDepth = float64(strings.Count(s[i+3:], "/"))
	} else {
		l.PathDepth = l.Slashes
	}
	return l
}

// Vector returns the lexical features as a fixed-order 10-element slice.
func (l Lexical) Vector() []float64 {
	return []float64{
		l.Length, l.Digits, l.Letters, l.Specials, l.Dots,
		l.Slashes, l.QueryParams, l.PathDepth, l.Entropy, l.DigitRatio,
	}
}

// DomainVector returns the 4 lexical features the paper tracks for
// domains: length, digit count, dot (subdomain) count and entropy.
func (l Lexical) DomainVector() []float64 {
	return []float64{l.Length, l.Digits, l.Dots, l.Entropy}
}
