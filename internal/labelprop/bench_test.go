package labelprop

import (
	"math/rand"
	"testing"

	"trail/internal/graph"
	"trail/internal/sparse"
)

// benchGraph builds a random sparse graph of n nodes / ~2*edges directed
// entries, seeded so every bench run sees the same structure.
func benchGraph(n, edges int) *sparse.Matrix {
	rng := rand.New(rand.NewSource(11))
	adj := make([][]graph.NodeID, n)
	for e := 0; e < edges; e++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		adj[u] = append(adj[u], graph.NodeID(v))
		adj[v] = append(adj[v], graph.NodeID(u))
	}
	return sparse.FromAdj(adj)
}

// BenchmarkPropagateCSR measures the LP 4L hot path: the repeated
// SpMM-and-accumulate iteration the eval loop runs per fold and layer
// count.
func BenchmarkPropagateCSR(b *testing.B) {
	const n = 20000
	csr := benchGraph(n, 60000)
	seeds := make(map[graph.NodeID]int, 500)
	rng := rand.New(rand.NewSource(12))
	for len(seeds) < 500 {
		seeds[graph.NodeID(rng.Intn(n))] = rng.Intn(22)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := PropagateCSR(csr, seeds, 22, 4)
		if f.Rows != n {
			b.Fatal("bad shape")
		}
	}
}

// BenchmarkAttributeCSR measures the end-to-end attribution call used by
// Table IV (propagate + argmax over queries).
func BenchmarkAttributeCSR(b *testing.B) {
	const n = 20000
	csr := benchGraph(n, 60000)
	seeds := make(map[graph.NodeID]int, 500)
	rng := rand.New(rand.NewSource(12))
	for len(seeds) < 500 {
		seeds[graph.NodeID(rng.Intn(n))] = rng.Intn(22)
	}
	queries := make([]graph.NodeID, 0, 500)
	for len(queries) < 500 {
		queries = append(queries, graph.NodeID(rng.Intn(n)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preds := AttributeCSR(csr, seeds, queries, 22, 4)
		if len(preds) != len(queries) {
			b.Fatal("short prediction")
		}
	}
}
