package labelprop

import (
	"sort"

	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/sparse"
)

// State carries the per-iteration propagation history that incremental
// re-convergence needs. Updating row v at iteration n reads the
// iteration-(n-1) rows of v's neighbours, so rows outside the dirty
// frontier must be available bit-for-bit from the previous run — a final
// Z alone is not enough.
//
// A State is owned by a single goroutine (the ingest apply stage);
// PropagateDirty mutates and returns it in place.
type State struct {
	Classes, Layers int
	// F[n] is the propagated mass after n+1 operator applications
	// (F_1 … F_Layers of Eq. 1), in original vertex order.
	F []*mat.Matrix
	// Z is the accumulated mass sum_n F_n — bit-identical to what
	// PropagateCSR returns for the same snapshot and seeds.
	Z *mat.Matrix
	// LastFrontier is the number of rows the most recent call recomputed
	// (== Rows for a full run): the dirty-frontier size metric.
	LastFrontier int
	// seeds is the normalised seed assignment the state was converged
	// under; PropagateDirty diffs against it to catch label changes.
	seeds map[graph.NodeID]int
}

// normalizeSeeds copies seeds keeping only in-range class assignments,
// mirroring PropagateCSRInto's seeding filter.
func normalizeSeeds(seeds map[graph.NodeID]int, classes int) map[graph.NodeID]int {
	out := make(map[graph.NodeID]int, len(seeds))
	for id, c := range seeds {
		if c >= 0 && c < classes {
			out[id] = c
		}
	}
	return out
}

// PropagateFull converges label propagation from scratch over a,
// retaining the full iteration history so later calls can re-converge
// incrementally. Z is bit-identical to PropagateCSR(a, seeds, classes,
// layers): the iteration below is the unpermuted accumulation loop, and
// the reordered fast path is bit-identical to it by construction.
func PropagateFull(a *sparse.Matrix, seeds map[graph.NodeID]int, classes, layers int) *State {
	n := a.Rows
	st := &State{
		Classes:      classes,
		Layers:       layers,
		F:            make([]*mat.Matrix, layers),
		Z:            mat.New(n, classes),
		seeds:        normalizeSeeds(seeds, classes),
		LastFrontier: n,
	}
	s := a.SymNormalized()
	f := mat.GetBuf(n, classes)
	for id, c := range st.seeds {
		f.Set(int(id), c, 1)
	}
	for l := 0; l < layers; l++ {
		next := mat.New(n, classes)
		s.SpMM(next, f)
		st.F[l] = next
		mat.AddInPlace(st.Z, next)
		if l == 0 {
			mat.PutBuf(f)
		}
		f = next
	}
	if layers == 0 {
		mat.PutBuf(f)
	}
	return st
}

// PropagateDirty re-converges label propagation after a batch of graph
// mutations, recomputing only the rows the mutations can reach. dirty
// must contain every structurally-touched vertex of the batch: created
// nodes and both endpoints of every inserted edge (graph.TakeDirty
// provides exactly this). Seed (label) changes are detected internally
// by diffing against the state's recorded assignment.
//
// The frontier grows one hop per iteration — changed_n = changed_{n-1} ∪
// N(changed_{n-1}) — which covers both mass flow and operator drift: an
// inserted edge changes its endpoints' degrees, which perturbs the
// symmetric normalisation in every neighbouring row, and those rows are
// N(dirty) ⊆ changed_1. Row updates replicate the SpMM kernel's
// accumulation order exactly (zero the row, then axpy CSR entries in
// order), so the state after PropagateDirty is bit-identical to
// PropagateFull over the mutated snapshot — proven by the equivalence
// tests, and cheap to spot-check in production via Z row comparisons.
//
// The graph is append-only (no node or edge removal), which is what
// makes the monotone frontier sound. prev is mutated and returned; a nil
// prev (or a classes/layers mismatch, or a shrunken snapshot) falls back
// to PropagateFull.
func PropagateDirty(a *sparse.Matrix, seeds map[graph.NodeID]int, classes, layers int, prev *State, dirty []graph.NodeID) *State {
	n := a.Rows
	if prev == nil || prev.Classes != classes || prev.Layers != layers || prev.Z.Rows > n {
		return PropagateFull(a, seeds, classes, layers)
	}
	st := prev
	oldN := st.Z.Rows
	if n > oldN {
		st.Z = growRows(st.Z, n)
		for l := range st.F {
			st.F[l] = growRows(st.F[l], n)
		}
	}
	newSeeds := normalizeSeeds(seeds, classes)

	changed := make(map[int32]struct{}, len(dirty)*2)
	for _, id := range dirty {
		if int(id) < n {
			changed[int32(id)] = struct{}{}
		}
	}
	for id, c := range newSeeds {
		if pc, ok := st.seeds[id]; !ok || pc != c {
			changed[int32(id)] = struct{}{}
		}
	}
	for id := range st.seeds {
		if _, ok := newSeeds[id]; !ok {
			changed[int32(id)] = struct{}{}
		}
	}
	st.seeds = newSeeds
	if len(changed) == 0 {
		st.LastFrontier = 0
		return st
	}

	s := a.SymNormalized()
	frontier := sortedSet(changed)
	for l := 0; l < layers; l++ {
		// Expand one hop, then recompute F_l over the whole frontier.
		for _, v := range frontier {
			for k, e := a.RowPtr[v], a.End(v); k < e; k++ {
				changed[a.ColIdx[k]] = struct{}{}
			}
		}
		frontier = sortedSet(changed)
		for _, v := range frontier {
			row := st.F[l].Row(v)
			for c := range row {
				row[c] = 0
			}
			if l == 0 {
				// F_0 is the implicit one-hot seed matrix: axpy against a
				// one-hot row touches exactly the seed column, and adding
				// val*0 elsewhere is exact (all mass is non-negative), so
				// skipping the zero columns is bitwise-neutral.
				for k, e := s.RowPtr[v], s.End(v); k < e; k++ {
					if c, ok := st.seeds[graph.NodeID(s.ColIdx[k])]; ok {
						row[c] += s.Val[k]
					}
				}
			} else {
				x := st.F[l-1]
				for k, e := s.RowPtr[v], s.End(v); k < e; k++ {
					mat.Axpy(s.Val[k], x.Row(int(s.ColIdx[k])), row)
				}
			}
		}
	}
	for _, v := range frontier {
		zrow := st.Z.Row(v)
		for c := range zrow {
			zrow[c] = 0
		}
		for l := 0; l < layers; l++ {
			mat.Axpy(1, st.F[l].Row(v), zrow)
		}
	}
	st.LastFrontier = len(frontier)
	return st
}

// growRows returns an m-row copy of src (m >= src.Rows) with the new
// rows zeroed — matching how a full run treats never-seeded, just-added
// vertices.
func growRows(src *mat.Matrix, m int) *mat.Matrix {
	out := mat.New(m, src.Cols)
	copy(out.Data, src.Data)
	return out
}

func sortedSet(set map[int32]struct{}) []int {
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, int(v))
	}
	sort.Ints(out)
	return out
}
