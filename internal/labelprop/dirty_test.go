package labelprop

import (
	"fmt"
	"math/rand"
	"testing"

	"trail/internal/graph"
	"trail/internal/mat/mattest"
)

// randomGrow mutates g with nNodes new nodes and nEdges new edges drawn
// from rng, returning the label assignment changes it made to seeds.
func randomGrow(rng *rand.Rand, g *graph.Graph, seeds map[graph.NodeID]int, nNodes, nEdges, nLabels, classes int) {
	base := g.NumNodes()
	for i := 0; i < nNodes; i++ {
		kind := graph.Kinds()[rng.Intn(5)]
		g.Upsert(kind, fmt.Sprintf("%s-%d-%d", kind, base, i))
	}
	total := g.NumNodes()
	for i := 0; i < nEdges && total > 1; i++ {
		u := graph.NodeID(rng.Intn(total))
		v := graph.NodeID(rng.Intn(total))
		g.AddEdge(u, v, graph.EdgeTypes()[rng.Intn(5)])
	}
	for i := 0; i < nLabels; i++ {
		seeds[graph.NodeID(rng.Intn(total))] = rng.Intn(classes)
	}
}

// TestPropagateDirtyMatchesFull grows a graph in random batches and
// checks after every batch that incremental re-convergence is
// bit-identical to a from-scratch run: same Z, same iteration history.
func TestPropagateDirtyMatchesFull(t *testing.T) {
	for _, layers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("layers=%d", layers), func(t *testing.T) {
			const classes = 5
			rng := rand.New(rand.NewSource(int64(42 + layers)))
			g := graph.New()
			g.TrackDirty(true)
			seeds := make(map[graph.NodeID]int)
			// Initial population, then a full-history run.
			randomGrow(rng, g, seeds, 40, 80, 6, classes)
			g.TakeDirty()
			st := PropagateFull(g.CSR(), seeds, classes, layers)
			mattest.BitEqual(t, "initial Z", st.Z, PropagateCSR(g.CSR(), seeds, classes, layers))

			for step := 0; step < 12; step++ {
				// Mix of growth shapes: node-only, edge-only (including
				// edges between long-existing nodes), label-only, and a
				// single-event-like batch.
				switch step % 4 {
				case 0:
					randomGrow(rng, g, seeds, 3, 6, 0, classes)
				case 1:
					randomGrow(rng, g, seeds, 0, 5, 0, classes)
				case 2:
					randomGrow(rng, g, seeds, 0, 0, 2, classes)
				default:
					randomGrow(rng, g, seeds, 1, 3, 1, classes)
				}
				dirty := g.TakeDirty()
				st = PropagateDirty(g.CSR(), seeds, classes, layers, st, dirty)
				want := PropagateFull(g.CSR(), seeds, classes, layers)
				name := fmt.Sprintf("step %d Z", step)
				mattest.BitEqual(t, name, st.Z, want.Z)
				for l := range want.F {
					mattest.BitEqual(t, fmt.Sprintf("step %d F_%d", step, l+1), st.F[l], want.F[l])
				}
				if st.LastFrontier > g.NumNodes() {
					t.Fatalf("step %d: frontier %d exceeds graph", step, st.LastFrontier)
				}
			}
		})
	}
}

// TestPropagateDirtySeedRemoval: removing a seed (label retraction) is
// re-converged incrementally too.
func TestPropagateDirtySeedRemoval(t *testing.T) {
	const classes, layers = 4, 3
	rng := rand.New(rand.NewSource(7))
	g := graph.New()
	g.TrackDirty(true)
	seeds := make(map[graph.NodeID]int)
	randomGrow(rng, g, seeds, 30, 60, 8, classes)
	g.TakeDirty()
	st := PropagateFull(g.CSR(), seeds, classes, layers)
	for id := range seeds {
		delete(seeds, id)
		break
	}
	st = PropagateDirty(g.CSR(), seeds, classes, layers, st, nil)
	mattest.BitEqual(t, "after removal", st.Z, PropagateCSR(g.CSR(), seeds, classes, layers))
}

// TestPropagateDirtyNoChange: an empty batch recomputes nothing.
func TestPropagateDirtyNoChange(t *testing.T) {
	const classes, layers = 3, 2
	rng := rand.New(rand.NewSource(9))
	g := graph.New()
	g.TrackDirty(true)
	seeds := make(map[graph.NodeID]int)
	randomGrow(rng, g, seeds, 20, 40, 4, classes)
	g.TakeDirty()
	st := PropagateFull(g.CSR(), seeds, classes, layers)
	st = PropagateDirty(g.CSR(), seeds, classes, layers, st, nil)
	if st.LastFrontier != 0 {
		t.Fatalf("no-op batch recomputed %d rows", st.LastFrontier)
	}
	mattest.BitEqual(t, "unchanged Z", st.Z, PropagateCSR(g.CSR(), seeds, classes, layers))
}

// TestPropagateDirtyNilPrev falls back to a full run.
func TestPropagateDirtyNilPrev(t *testing.T) {
	const classes, layers = 3, 2
	rng := rand.New(rand.NewSource(11))
	g := graph.New()
	seeds := make(map[graph.NodeID]int)
	randomGrow(rng, g, seeds, 15, 30, 3, classes)
	st := PropagateDirty(g.CSR(), seeds, classes, layers, nil, nil)
	if st.LastFrontier != g.NumNodes() {
		t.Fatalf("nil prev frontier %d, want full %d", st.LastFrontier, g.NumNodes())
	}
	mattest.BitEqual(t, "full fallback", st.Z, PropagateCSR(g.CSR(), seeds, classes, layers))
}

// TestPropagateDirtyMatchesReorderedCSR pushes the graph past the
// cache-reordering gate so the PropagateCSR comparison point runs the
// permuted fast path: the incremental state must stay bit-identical to
// it, not just to the unpermuted loop.
func TestPropagateDirtyMatchesReorderedCSR(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const classes, layers = 6, 4
	rng := rand.New(rand.NewSource(23))
	g := graph.New()
	g.TrackDirty(true)
	seeds := make(map[graph.NodeID]int)
	randomGrow(rng, g, seeds, 1400, 4000, 60, classes)
	g.TakeDirty()
	st := PropagateFull(g.CSR(), seeds, classes, layers)
	for step := 0; step < 3; step++ {
		randomGrow(rng, g, seeds, 5, 20, 2, classes)
		st = PropagateDirty(g.CSR(), seeds, classes, layers, st, g.TakeDirty())
		mattest.BitEqual(t, fmt.Sprintf("step %d vs reordered", step),
			st.Z, PropagateCSR(g.CSR(), seeds, classes, layers))
	}
}
