// Package labelprop implements the graph-traversal attribution method of
// §VI-B: label propagation over the symmetrically normalised adjacency
// (Zhou et al. 2003),
//
//	F_n = D^{-1/2} A D^{-1/2} F_{n-1},
//
// seeded with one-hot APT labels on the labelled event nodes. After N
// iterations, each node's row is softmax-normalised into an attribution
// probability distribution. Nodes with no path to any seed remain
// unattributed (all-zero rows) — the paper's stated limitation for events
// built from never-before-seen IOCs.
package labelprop

import (
	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/sparse"
)

// Propagate runs `layers` iterations of Equation 1 over an adjacency
// snapshot and returns the accumulated mass Z = sum_n F_n (|V| x classes,
// before softmax). Accumulating over iterations keeps the method's
// "distance from each seed" semantics on bipartite regions of the TKG
// (event-IOC edges alternate sides, so a single F_N is zero at every
// other hop count); a node reached at hop h first contributes at
// iteration h, so LP-kL still only sees k-hop resource reuse. seeds maps
// labelled nodes to class indices in [0, classes).
//
// Propagate converts the adjacency to CSR on every call; callers that
// already hold a graph should use PropagateCSR with graph.Graph.CSR() to
// share one snapshot across runs.
func Propagate(adj [][]graph.NodeID, seeds map[graph.NodeID]int, classes, layers int) *mat.Matrix {
	return PropagateCSR(sparse.FromAdj(adj), seeds, classes, layers)
}

// PropagateCSR is Propagate over an unweighted adjacency CSR (as
// returned by graph.Graph.CSR()): each layer is one SpMM against the
// symmetrically normalised operator D^{-1/2} A D^{-1/2} (computed once
// per snapshot — the operator is cached on the CSR).
func PropagateCSR(a *sparse.Matrix, seeds map[graph.NodeID]int, classes, layers int) *mat.Matrix {
	acc := mat.New(a.Rows, classes)
	PropagateCSRInto(acc, a, seeds, classes, layers)
	return acc
}

// PropagateCSRInto is PropagateCSR accumulating into a caller-owned
// dst (a.Rows × classes, overwritten), for sweeps that rerun propagation
// over one snapshot: the two iteration buffers are borrowed from the
// shared pool, so repeated calls allocate nothing.
//
// On large snapshots the iteration runs in the cache-aware
// degree-descending vertex order (sparse.CSR.Reordered): seeds are
// placed at their permuted rows, every SpMM gathers hub rows from a
// cache-resident prefix, and the accumulated mass is scattered back so
// dst is always in original vertex order. Permuting commutes bitwise
// with the symmetric normalisation and SpMM is row-local, so the result
// is bit-identical to the unpermuted iteration.
func PropagateCSRInto(dst *mat.Matrix, a *sparse.Matrix, seeds map[graph.NodeID]int, classes, layers int) {
	n := a.Rows
	if dst.Rows != n || dst.Cols != classes {
		panic("labelprop: PropagateCSRInto dst shape mismatch")
	}
	ra, perm := a.Reordered()
	s := ra.SymNormalized()
	// f must start zeroed (seeding writes only the seed entries); next is
	// fully overwritten by the first SpMM, so it can skip the memset.
	f := mat.GetBuf(n, classes)
	next := mat.GetBufDirty(n, classes)
	seedRow := func(id graph.NodeID) int {
		if perm != nil {
			return int(perm.Inv[id])
		}
		return int(id)
	}
	for id, c := range seeds {
		if c >= 0 && c < classes {
			f.Set(seedRow(id), c, 1)
		}
	}
	acc := dst
	if perm != nil {
		// Accumulate in permuted space, scatter once at the end.
		acc = mat.GetBufDirty(n, classes)
	}
	acc.Zero()
	for l := 0; l < layers; l++ {
		s.SpMM(next, f)
		f, next = next, f
		mat.AddInPlace(acc, f)
	}
	if perm != nil {
		sparse.ScatterRowsInto(perm, dst, acc)
		mat.PutBuf(acc)
	}
	mat.PutBuf(f)
	mat.PutBuf(next)
}

// Distribution converts a propagation row into a probability
// distribution: softmax over non-zero rows, nil (unattributed) for
// all-zero rows.
func Distribution(row []float64) []float64 {
	nonzero := false
	for _, v := range row {
		if v != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		return nil
	}
	out := make([]float64, len(row))
	mat.Softmax(out, row)
	return out
}

// Predict returns the argmax class for each query node, or -1 for nodes
// label propagation could not reach.
func Predict(f *mat.Matrix, queries []graph.NodeID) []int {
	out := make([]int, len(queries))
	for i, q := range queries {
		row := f.Row(int(q))
		pred := -1
		best := 0.0
		for c, v := range row {
			if v > best {
				best, pred = v, c
			}
		}
		out[i] = pred
	}
	return out
}

// Attribute is the end-to-end convenience used by the experiments: seed
// with the labelled events, propagate `layers` steps, and predict the
// masked events.
func Attribute(adj [][]graph.NodeID, seeds map[graph.NodeID]int, queries []graph.NodeID, classes, layers int) []int {
	f := Propagate(adj, seeds, classes, layers)
	return Predict(f, queries)
}

// AttributeCSR is Attribute over a shared CSR snapshot. The propagation
// accumulator is borrowed from the shared pool: only the returned slice
// is allocated.
func AttributeCSR(a *sparse.Matrix, seeds map[graph.NodeID]int, queries []graph.NodeID, classes, layers int) []int {
	f := mat.GetBuf(a.Rows, classes)
	PropagateCSRInto(f, a, seeds, classes, layers)
	out := Predict(f, queries)
	mat.PutBuf(f)
	return out
}
