package labelprop

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"trail/internal/graph"
	"trail/internal/mat"
	"trail/internal/par"
	"trail/internal/sparse"
)

// chain builds a path graph 0-1-2-...-n-1 and returns its adjacency.
func chain(n int) [][]graph.NodeID {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.Upsert(graph.KindEvent, string(rune('a'+i)))
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(graph.NodeID(i), graph.NodeID(i+1), graph.EdgeInReport)
	}
	return g.Adjacency()
}

func TestPropagateReachesWithinLayers(t *testing.T) {
	adj := chain(5)
	seeds := map[graph.NodeID]int{0: 0}
	f2 := Propagate(adj, seeds, 2, 2)
	// Node 2 is exactly 2 hops away: reachable at 2 layers.
	if f2.At(2, 0) <= 0 {
		t.Fatal("2-hop node not reached in 2 layers")
	}
	// Node 3 is 3 hops away: must NOT be reached in 2 layers.
	if f2.At(3, 0) != 0 {
		t.Fatalf("3-hop node reached in 2 layers: %v", f2.At(3, 0))
	}
	f3 := Propagate(adj, seeds, 2, 3)
	if f3.At(3, 0) <= 0 {
		t.Fatal("3-hop node not reached in 3 layers")
	}
}

func TestPredictUnreachableIsMinusOne(t *testing.T) {
	adj := chain(3)
	// Add an isolated node.
	adj = append(adj, nil)
	seeds := map[graph.NodeID]int{0: 1}
	preds := Predict(Propagate(adj, seeds, 2, 4), []graph.NodeID{2, 3})
	if preds[0] != 1 {
		t.Fatalf("reachable node predicted %d", preds[0])
	}
	if preds[1] != -1 {
		t.Fatalf("isolated node predicted %d, want -1", preds[1])
	}
}

func TestCloserSeedWins(t *testing.T) {
	// 0(seed A) - 1 - 2(query) - 3 - 4 - 5(seed B): query is closer to A.
	adj := chain(6)
	seeds := map[graph.NodeID]int{0: 0, 5: 1}
	f := Propagate(adj, seeds, 2, 4)
	row := f.Row(2)
	if row[0] <= row[1] {
		t.Fatalf("closer seed should dominate: %v", row)
	}
	preds := Predict(f, []graph.NodeID{2})
	if preds[0] != 0 {
		t.Fatalf("predicted %d", preds[0])
	}
}

func TestHighDegreeHubDilutesSignal(t *testing.T) {
	// A seed connected through a hub with many unrelated neighbours
	// should transmit less mass than one through a private path (the
	// paper's "common public IP" argument).
	g := graph.New()
	for i := 0; i < 12; i++ {
		g.Upsert(graph.KindIP, string(rune('a'+i)))
	}
	// Private path: 0(seed) - 1 - 2(query).
	g.AddEdge(0, 1, graph.EdgeInReport)
	g.AddEdge(1, 2, graph.EdgeInReport)
	// Hub path: 3(seed) - 4(hub) - 5(query); hub also touches 6..11.
	g.AddEdge(3, 4, graph.EdgeInReport)
	g.AddEdge(4, 5, graph.EdgeInReport)
	for i := 6; i < 12; i++ {
		g.AddEdge(4, graph.NodeID(i), graph.EdgeInReport)
	}
	adj := g.Adjacency()
	f := Propagate(adj, map[graph.NodeID]int{0: 0, 3: 1}, 2, 2)
	if f.At(2, 0) <= f.At(5, 1) {
		t.Fatalf("hub path %v should carry less mass than private path %v",
			f.At(5, 1), f.At(2, 0))
	}
}

func TestDistribution(t *testing.T) {
	if Distribution([]float64{0, 0}) != nil {
		t.Fatal("zero row should be unattributed")
	}
	d := Distribution([]float64{1, 3})
	if d == nil {
		t.Fatal("nonzero row should get a distribution")
	}
	if math.Abs(mat.Sum(d)-1) > 1e-9 {
		t.Fatalf("distribution sums to %v", mat.Sum(d))
	}
	if d[1] <= d[0] {
		t.Fatalf("softmax ordering broken: %v", d)
	}
}

func TestAttributeEndToEnd(t *testing.T) {
	adj := chain(4)
	preds := Attribute(adj, map[graph.NodeID]int{0: 1}, []graph.NodeID{1, 2, 3}, 2, 4)
	for i, p := range preds {
		if p != 1 {
			t.Fatalf("query %d predicted %d", i, p)
		}
	}
}

// referencePropagate is the pre-refactor adjacency-list implementation
// of Eq. 1, kept verbatim as the equivalence oracle for the CSR path.
func referencePropagate(adj [][]graph.NodeID, seeds map[graph.NodeID]int, classes, layers int) *mat.Matrix {
	n := len(adj)
	f := mat.New(n, classes)
	for id, c := range seeds {
		if c >= 0 && c < classes {
			f.Set(int(id), c, 1)
		}
	}
	acc := mat.New(n, classes)
	invSqrtDeg := make([]float64, n)
	for u := range adj {
		if d := len(adj[u]); d > 0 {
			invSqrtDeg[u] = 1 / math.Sqrt(float64(d))
		}
	}
	next := mat.New(n, classes)
	for l := 0; l < layers; l++ {
		next.Zero()
		for u := range adj {
			if len(adj[u]) == 0 {
				continue
			}
			dst := next.Row(u)
			wu := invSqrtDeg[u]
			for _, v := range adj[u] {
				src := f.Row(int(v))
				w := wu * invSqrtDeg[v]
				for c := 0; c < classes; c++ {
					dst[c] += w * src[c]
				}
			}
		}
		f, next = next, f
		mat.AddInPlace(acc, f)
	}
	return acc
}

// TestPropagateMatchesReferenceBitIdentical checks the CSR kernel path
// against the pre-refactor loops, bit for bit, serial and parallel.
func TestPropagateMatchesReferenceBitIdentical(t *testing.T) {
	g := graph.New()
	const n = 300
	for i := 0; i < n; i++ {
		g.Upsert(graph.KindEvent, fmt.Sprintf("ev%d", i))
	}
	rng := rand.New(rand.NewSource(11))
	for e := 0; e < 900; e++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		g.AddEdge(u, v, graph.EdgeInReport)
	}
	adj := g.Adjacency()
	seeds := map[graph.NodeID]int{}
	for i := 0; i < 40; i++ {
		seeds[graph.NodeID(rng.Intn(n))] = rng.Intn(5)
	}
	want := referencePropagate(adj, seeds, 5, 4)
	for _, workers := range []int{1, 8} {
		prev := par.SetWorkers(workers)
		got := Propagate(adj, seeds, 5, 4)
		fromCSR := PropagateCSR(g.CSR(), seeds, 5, 4)
		par.SetWorkers(prev)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("workers=%d: Propagate differs from reference at %d: %v vs %v",
					workers, i, got.Data[i], want.Data[i])
			}
			if fromCSR.Data[i] != want.Data[i] {
				t.Fatalf("workers=%d: PropagateCSR differs from reference at %d: %v vs %v",
					workers, i, fromCSR.Data[i], want.Data[i])
			}
		}
	}
}

// TestPropagateCSRIntoMatchesPropagateCSR pins the pooled propagation
// path: accumulating into a caller-owned (even dirty) dst must equal the
// allocating PropagateCSR bit for bit, and repeated calls over the same
// snapshot must be stable.
func TestPropagateCSRIntoMatchesPropagateCSR(t *testing.T) {
	adj := chain(12)
	seeds := map[graph.NodeID]int{0: 0, 11: 1}
	a := sparse.FromAdj(adj)
	want := PropagateCSR(a, seeds, 2, 4)
	dst := mat.New(a.Rows, 2)
	for rep := 0; rep < 3; rep++ {
		dst.Fill(math.Inf(-1)) // dst is overwritten, not accumulated into
		PropagateCSRInto(dst, a, seeds, 2, 4)
		for i := range want.Data {
			if math.Float64bits(dst.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("rep %d: Data[%d] = %v, want %v", rep, i, dst.Data[i], want.Data[i])
			}
		}
	}
	// Shape mismatch fails loudly instead of writing out of bounds.
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on dst shape mismatch")
		}
	}()
	PropagateCSRInto(mat.New(a.Rows-1, 2), a, seeds, 2, 4)
}

// TestPropagateReorderedBitIdentical forces the cache-aware
// degree-descending reordering onto a small fixture (by lowering
// sparse.ReorderMinRows) and checks the permuted-space iteration against
// the unpermuted one bit for bit, serial and parallel. Two fresh CSRs
// are built because the reordered view is cached per snapshot.
func TestPropagateReorderedBitIdentical(t *testing.T) {
	g := graph.New()
	const n = 400
	for i := 0; i < n; i++ {
		g.Upsert(graph.KindIP, fmt.Sprintf("ip%d", i))
	}
	rng := rand.New(rand.NewSource(7))
	// Hub-heavy wiring: a few vertices collect most edges, as on the TKG.
	for e := 0; e < 1500; e++ {
		hub := graph.NodeID(rng.Intn(20))
		g.AddEdge(hub, graph.NodeID(rng.Intn(n)), graph.EdgeInReport)
	}
	adj := g.Adjacency()
	seeds := map[graph.NodeID]int{}
	for i := 0; i < 30; i++ {
		seeds[graph.NodeID(rng.Intn(n))] = rng.Intn(6)
	}
	queries := make([]graph.NodeID, 0, 50)
	for len(queries) < 50 {
		queries = append(queries, graph.NodeID(rng.Intn(n)))
	}

	orig := sparse.ReorderMinRows
	defer func() { sparse.ReorderMinRows = orig }()

	sparse.ReorderMinRows = n + 1 // reordering off
	plain := sparse.FromAdj(adj)
	if _, p := plain.Reordered(); p != nil {
		t.Fatal("reordering unexpectedly active on the reference CSR")
	}
	want := PropagateCSR(plain, seeds, 6, 4)
	wantPreds := AttributeCSR(plain, seeds, queries, 6, 4)

	sparse.ReorderMinRows = 1 // reordering forced
	reord := sparse.FromAdj(adj)
	if _, p := reord.Reordered(); p == nil {
		t.Fatal("reordering not active on the permuted CSR")
	}
	for _, workers := range []int{1, 8} {
		prev := par.SetWorkers(workers)
		got := PropagateCSR(reord, seeds, 6, 4)
		gotPreds := AttributeCSR(reord, seeds, queries, 6, 4)
		par.SetWorkers(prev)
		for i := range want.Data {
			if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
				t.Fatalf("workers=%d: reordered propagation differs at %d: %v vs %v",
					workers, i, got.Data[i], want.Data[i])
			}
		}
		for i := range wantPreds {
			if gotPreds[i] != wantPreds[i] {
				t.Fatalf("workers=%d: reordered prediction %d: %d vs %d",
					workers, i, gotPreds[i], wantPreds[i])
			}
		}
	}
}

// TestAttributeCSRMatchesAttribute pins the pooled end-to-end path to
// the allocating one.
func TestAttributeCSRMatchesAttribute(t *testing.T) {
	adj := chain(10)
	seeds := map[graph.NodeID]int{0: 0, 9: 1}
	queries := []graph.NodeID{2, 5, 7}
	want := Attribute(adj, seeds, queries, 2, 3)
	got := AttributeCSR(sparse.FromAdj(adj), seeds, queries, 2, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d: %d vs %d", i, got[i], want[i])
		}
	}
}
