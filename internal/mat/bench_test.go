package mat

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the dense kernels and the pool layer. allocs/op
// is the headline number here: every Into kernel and the steady-state
// workspace cycle must report 0.

func benchPair(rng *rand.Rand, n int) (*Matrix, *Matrix) {
	return randMat(rng, n, n), randMat(rng, n, n)
}

func BenchmarkMatMulInto(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	a, x := benchPair(rng, 128)
	dst := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, x)
	}
}

func BenchmarkMatMulAlloc(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	a, x := benchPair(rng, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MatMul(a, x)
	}
}

func BenchmarkMatMulTransAInto(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(2))
	a, x := benchPair(rng, 128)
	dst := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransAInto(dst, a, x)
	}
}

func BenchmarkMatMulTransBInto(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(3))
	a, x := benchPair(rng, 128)
	dst := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransBInto(dst, a, x)
	}
}

func BenchmarkAddBiasReLUInto(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(4))
	x := randMat(rng, 256, 64)
	bias := make([]float64, 64)
	mask := New(256, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddBiasReLUInto(x, bias, mask)
	}
}

func BenchmarkSoftmaxCrossEntropyInto(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(5))
	logits := randMat(rng, 512, 22)
	labels := make([]int, 512)
	rows := make([]int, 0, 256)
	for i := range labels {
		labels[i] = rng.Intn(22)
		if i%2 == 0 {
			rows = append(rows, i)
		}
	}
	grad := New(512, 22)
	probs := make([]float64, 22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grad.Zero() // the kernel's contract: caller supplies a zeroed grad
		_ = SoftmaxCrossEntropyInto(grad, logits, rows, labels, probs)
	}
}

// BenchmarkWorkspaceCycle measures one steady-state scratch iteration:
// Reset, two matrix borrows (one zeroed, one dirty), one vector.
func BenchmarkWorkspaceCycle(b *testing.B) {
	b.ReportAllocs()
	ws := NewWorkspace()
	defer ws.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Reset()
		g := ws.Get(64, 64)
		d := ws.GetDirty(64, 64)
		v := ws.Vec(64)
		g.Data[0], d.Data[0], v[0] = 1, 2, 3
	}
}

// BenchmarkPoolGetPut measures the shape-keyed pool round trip alone.
func BenchmarkPoolGetPut(b *testing.B) {
	b.ReportAllocs()
	p := NewPool()
	p.Put(p.Get(64, 64)) // seed the free list
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Put(p.GetDirty(64, 64))
	}
}

// Float32 counterparts of the headline kernels, for the precision
// bandwidth table in EXPERIMENTS.md: same shapes, half the bytes per
// element.

func BenchmarkMatMulInto32(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(1))
	a, x := benchPair(rng, 128)
	a32, x32 := Cast[float32](a), Cast[float32](x)
	dst := NewOf[float32](128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a32, x32)
	}
}

func BenchmarkMatMulTransBInto32(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(3))
	a, x := benchPair(rng, 128)
	a32, x32 := Cast[float32](a), Cast[float32](x)
	dst := NewOf[float32](128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransBInto(dst, a32, x32)
	}
}
