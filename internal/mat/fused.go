package mat

import (
	"fmt"
	"math"
)

// Fused in-place kernels for the training hot loops. Each kernel is the
// exact composition of the allocating primitives it replaces — same
// element order, same accumulation grouping — so switching a loop to the
// fused form changes zero bits of the result (asserted by the
// equivalence tests in fused_test.go and internal/gnn).

// AddBiasReLUInto applies x = relu(x + bias) in place, adding bias to
// every row. When mask is non-nil it must have x's shape and receives
// the ReLU mask (1 where the biased value was positive, 0 elsewhere)
// for backprop. It fuses AddRowVector + reluForward without the clone.
func AddBiasReLUInto[T Float](x *Dense[T], bias []T, mask *Dense[T]) {
	if len(bias) != x.Cols {
		panic(fmt.Sprintf("mat: AddBiasReLUInto bias length %d != %d", len(bias), x.Cols))
	}
	if mask != nil {
		checkSameShape("AddBiasReLUInto", x, mask)
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		var mrow []T
		if mask != nil {
			mrow = mask.Row(i)
		}
		for j, b := range bias {
			v := row[j] + b
			if v <= 0 {
				row[j] = 0
				if mrow != nil {
					mrow[j] = 0
				}
			} else {
				row[j] = v
				if mrow != nil {
					mrow[j] = 1
				}
			}
		}
	}
}

// ReLUMaskInto applies x = relu(x) in place and writes the backprop mask
// (which must have x's shape) — reluForward without the clone.
func ReLUMaskInto[T Float](x, mask *Dense[T]) {
	checkSameShape("ReLUMaskInto", x, mask)
	for i, v := range x.Data {
		if v <= 0 {
			x.Data[i] = 0
			mask.Data[i] = 0
		} else {
			mask.Data[i] = 1
		}
	}
}

// HadamardInPlace multiplies a by b element-wise in place and returns a.
func HadamardInPlace[T Float](a, b *Dense[T]) *Dense[T] {
	checkSameShape("HadamardInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] *= v
	}
	return a
}

// SubInPlace subtracts b from a element-wise in place and returns a.
func SubInPlace[T Float](a, b *Dense[T]) *Dense[T] {
	checkSameShape("SubInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] -= v
	}
	return a
}

// CopyInto copies src into dst (shapes must match) and returns dst.
func CopyInto[T Float](dst, src *Dense[T]) *Dense[T] {
	checkSameShape("CopyInto", dst, src)
	copy(dst.Data, src.Data)
	return dst
}

// SelectRowsInto writes the given rows of m into dst, in order. dst must
// be len(idx) x m.Cols; indices may repeat.
func SelectRowsInto[T Float](dst, m *Dense[T], idx []int) *Dense[T] {
	if dst.Rows != len(idx) || dst.Cols != m.Cols {
		panic(fmt.Sprintf("mat: SelectRowsInto %dx%d for %d rows of width %d",
			dst.Rows, dst.Cols, len(idx), m.Cols))
	}
	for i, r := range idx {
		copy(dst.Row(i), m.Row(r))
	}
	return dst
}

// SoftmaxCrossEntropyInto computes the masked softmax cross-entropy loss
// and gradient of the attribution trainers in one pass: for each listed
// row r (typically target event node IDs) with true class labels[r], it
// writes (softmax(logits[r]) - onehot(labels[r])) / len(rows) into
// grad[r] and accumulates -log p[labels[r]]. Rows not listed are left
// untouched (the caller supplies a zeroed grad). probs is a
// len == logits.Cols scratch slice. Returns the mean loss over rows; the
// loss accumulates in float64 at either storage precision.
//
// The arithmetic — softmax, the 1e-300 log floor, the copy-subtract-
// scale gradient order — is exactly the loop it replaces in the SAGE and
// GCN step functions, preserving bit-identical training.
func SoftmaxCrossEntropyInto[F Float, T ~int | ~int32](grad, logits *Dense[F], rows []T, labels []int, probs []F) float64 {
	checkSameShape("SoftmaxCrossEntropyInto", grad, logits)
	if len(probs) != logits.Cols {
		panic(fmt.Sprintf("mat: SoftmaxCrossEntropyInto probs length %d != %d", len(probs), logits.Cols))
	}
	if len(rows) == 0 {
		return 0
	}
	inv := 1 / float64(len(rows))
	invF := F(inv)
	loss := 0.0
	for _, r := range rows {
		Softmax(probs, logits.Row(int(r)))
		label := labels[int(r)]
		loss -= math.Log(float64(probs[label]) + 1e-300)
		dst := grad.Row(int(r))
		copy(dst, probs)
		dst[label] -= 1
		for j := range dst {
			dst[j] *= invF
		}
	}
	return loss * inv
}
