package mat

import (
	"math"
	"math/rand"
	"testing"
)

// The fused/Into kernels must be the bit-exact composition of the
// allocating primitives they replaced: the training loops switched over
// wholesale, so any reordering of the arithmetic would silently change
// model weights. Every comparison here is ==, not approximate.

func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// dirty returns a shape-matched matrix pre-filled with garbage, to prove
// an Into kernel fully overwrites its destination (the GetDirty
// contract).
func dirty(rows, cols int) *Matrix {
	m := New(rows, cols)
	m.Fill(math.Pi * 1e9)
	return m
}

func assertSameBits(t *testing.T, name string, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: Data[%d] = %v, want %v", name, i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulIntoMatchesMatMulOnDirtyDst(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randMat(rng, 17, 9), randMat(rng, 9, 13)
	want := MatMul(a, b)
	got := dirty(17, 13)
	MatMulInto(got, a, b)
	assertSameBits(t, "MatMulInto", got, want)
}

func TestMatMulTransAIntoMatchesAllocatingOnDirtyDst(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randMat(rng, 11, 7), randMat(rng, 11, 5)
	want := MatMulTransA(a, b)
	got := dirty(7, 5)
	MatMulTransAInto(got, a, b)
	assertSameBits(t, "MatMulTransAInto", got, want)
}

func TestMatMulTransBIntoMatchesAllocatingOnDirtyDst(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randMat(rng, 8, 10), randMat(rng, 6, 10)
	want := MatMulTransB(a, b)
	got := dirty(8, 6)
	MatMulTransBInto(got, a, b)
	assertSameBits(t, "MatMulTransBInto", got, want)
}

func TestAddBiasReLUIntoMatchesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randMat(rng, 6, 5)
	bias := make([]float64, 5)
	for j := range bias {
		bias[j] = rng.NormFloat64()
	}
	// Reference: AddRowVector then relu with mask, on copies.
	ref := x.Clone()
	ref.AddRowVector(bias)
	wantMask := New(6, 5)
	for i, v := range ref.Data {
		if v <= 0 {
			ref.Data[i] = 0
		} else {
			wantMask.Data[i] = 1
		}
	}
	got := x.Clone()
	gotMask := dirty(6, 5)
	AddBiasReLUInto(got, bias, gotMask)
	assertSameBits(t, "AddBiasReLUInto x", got, ref)
	assertSameBits(t, "AddBiasReLUInto mask", gotMask, wantMask)

	// nil mask variant applies the same activation.
	got2 := x.Clone()
	AddBiasReLUInto(got2, bias, nil)
	assertSameBits(t, "AddBiasReLUInto nil mask", got2, ref)
}

func TestReLUMaskIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randMat(rng, 7, 4)
	ref := x.Clone()
	wantMask := New(7, 4)
	for i, v := range ref.Data {
		if v <= 0 {
			ref.Data[i] = 0
		} else {
			wantMask.Data[i] = 1
		}
	}
	got := x.Clone()
	gotMask := dirty(7, 4)
	ReLUMaskInto(got, gotMask)
	assertSameBits(t, "ReLUMaskInto x", got, ref)
	assertSameBits(t, "ReLUMaskInto mask", gotMask, wantMask)
}

func TestInPlaceOpsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a, b := randMat(rng, 5, 6), randMat(rng, 5, 6)
	assertSameBits(t, "HadamardInPlace", HadamardInPlace(a.Clone(), b), Hadamard(a, b))
	assertSameBits(t, "SubInPlace", SubInPlace(a.Clone(), b), Sub(a, b))
}

func TestSelectRowsIntoMatchesSelectRows(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randMat(rng, 9, 4)
	idx := []int{3, 3, 0, 8, 5}
	got := dirty(len(idx), 4)
	SelectRowsInto(got, m, idx)
	assertSameBits(t, "SelectRowsInto", got, m.SelectRows(idx))
}

func TestCopyIntoOverwritesDirtyDst(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := randMat(rng, 4, 4)
	got := dirty(4, 4)
	CopyInto(got, src)
	assertSameBits(t, "CopyInto", got, src)
}

// referenceSoftmaxCE is the loop SoftmaxCrossEntropyInto replaced in the
// SAGE/GCN step functions: per-target softmax, log floor, copy-subtract-
// scale gradient.
func referenceSoftmaxCE(logits *Matrix, rows []int, labels []int) (*Matrix, float64) {
	grad := New(logits.Rows, logits.Cols)
	probs := make([]float64, logits.Cols)
	inv := 1 / float64(len(rows))
	loss := 0.0
	for _, r := range rows {
		Softmax(probs, logits.Row(r))
		label := labels[r]
		loss -= math.Log(probs[label] + 1e-300)
		dst := grad.Row(r)
		copy(dst, probs)
		dst[label] -= 1
		for j := range dst {
			dst[j] *= inv
		}
	}
	return grad, loss * inv
}

func TestSoftmaxCrossEntropyIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	logits := randMat(rng, 12, 5)
	labels := make([]int, 12)
	for i := range labels {
		labels[i] = rng.Intn(5)
	}
	rows := []int{1, 4, 7, 10}
	wantGrad, wantLoss := referenceSoftmaxCE(logits, rows, labels)
	// The kernel's contract requires a zeroed grad: untargeted rows are
	// left untouched.
	grad := New(12, 5)
	probs := make([]float64, 5)
	loss := SoftmaxCrossEntropyInto(grad, logits, rows, labels, probs)
	if math.Float64bits(loss) != math.Float64bits(wantLoss) {
		t.Fatalf("loss %v, want %v", loss, wantLoss)
	}
	assertSameBits(t, "SoftmaxCrossEntropyInto grad", grad, wantGrad)
}

func TestSoftmaxCrossEntropyIntoEmptyRows(t *testing.T) {
	logits := New(3, 2)
	grad := New(3, 2)
	if loss := SoftmaxCrossEntropyInto(grad, logits, []int{}, []int{0, 0, 0}, make([]float64, 2)); loss != 0 {
		t.Fatalf("empty target rows should yield zero loss, got %v", loss)
	}
}

func TestMatMulIntoSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	rng := rand.New(rand.NewSource(10))
	a, b := randMat(rng, 32, 32), randMat(rng, 32, 32)
	dst := New(32, 32)
	if allocs := testing.AllocsPerRun(50, func() { MatMulInto(dst, a, b) }); allocs != 0 {
		t.Fatalf("MatMulInto allocates %v times per call", allocs)
	}
	ta := New(32, 32)
	if allocs := testing.AllocsPerRun(50, func() { MatMulTransAInto(ta, a, b) }); allocs != 0 {
		t.Fatalf("MatMulTransAInto allocates %v times per call", allocs)
	}
	tb := New(32, 32)
	if allocs := testing.AllocsPerRun(50, func() { MatMulTransBInto(tb, a, b) }); allocs != 0 {
		t.Fatalf("MatMulTransBInto allocates %v times per call", allocs)
	}
}
