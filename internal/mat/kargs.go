package mat

import "sync"

// kargs is the pooled argument carrier for the parallel matmul kernels.
// A closure passed to par.For escapes to the worker pool and so costs one
// heap allocation per kernel invocation; in a training step that is tens
// of allocations, and it is the last steady-state allocation once all
// matrices come from the workspace pool. kargs replaces the closures with
// method values bound once at pool construction: a kernel call borrows a
// carrier, points it at its operands, runs the prebound body, and returns
// it — zero allocations at any call rate.
//
// The bodies are byte-for-byte the loops the closures used to hold, so
// the determinism contract (blocks own output rows, fixed accumulation
// order per row) is unchanged.
type kargs struct {
	dst, a, b  *Matrix
	mm, ta, tb func(lo, hi int)
}

var kargsPool = sync.Pool{New: func() any {
	k := &kargs{}
	k.mm = k.runMatMul
	k.ta = k.runTransA
	k.tb = k.runTransB
	return k
}}

func getKargs(dst, a, b *Matrix) *kargs {
	k := kargsPool.Get().(*kargs)
	k.dst, k.a, k.b = dst, a, b
	return k
}

// put clears the operand pointers (so the pool pins no matrices) and
// recycles the carrier.
func (k *kargs) put() {
	k.dst, k.a, k.b = nil, nil, nil
	kargsPool.Put(k)
}

// The bodies hoist the carrier fields into locals first: a closure's
// captured variables live in registers, while repeated k.a/k.dst loads
// inside the hot loops defeat that and cost ~10% on the matmul-bound
// benches.

// runMatMul is the MatMulInto block body: dst = a*b over output rows
// [lo, hi), ikj order with zero-skip.
func (k *kargs) runMatMul(lo, hi int) {
	a, b, dst := k.a, k.b, k.dst
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(kk)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// runTransB is the MatMulTransBInto block body: dst = a*bᵀ over output
// rows [lo, hi).
func (k *kargs) runTransB(lo, hi int) {
	a, b, dst := k.a, k.b, k.dst
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			orow[j] = Dot(arow, b.Row(j))
		}
	}
}

// runTransA is the MatMulTransAInto block body: dst = aᵀ*b over output
// rows (columns of a) [lo, hi); the k-accumulation order per output
// element matches the serial loop exactly.
func (k *kargs) runTransA(lo, hi int) {
	a, b, dst := k.a, k.b, k.dst
	for i := lo; i < hi; i++ {
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
	}
	for kk := 0; kk < a.Rows; kk++ {
		arow := a.Row(kk)
		brow := b.Row(kk)
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := dst.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}
