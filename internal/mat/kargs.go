package mat

import "sync"

// kargs is the pooled argument carrier for the parallel matmul kernels.
// A closure passed to par.For escapes to the worker pool and so costs one
// heap allocation per kernel invocation; in a training step that is tens
// of allocations, and it is the last steady-state allocation once all
// matrices come from the workspace pool. kargs replaces the closures with
// method values bound once at pool construction: a kernel call borrows a
// carrier, points it at its operands, runs the prebound body, and returns
// it — zero allocations at any call rate.
//
// The bodies are byte-for-byte the loops the closures used to hold, so
// the determinism contract (blocks own output rows, fixed accumulation
// order per row) is unchanged.
//
// The carrier is generic; one pool per concrete element type (float32,
// float64) keeps Get/Put monomorphic. Exotic named Float types fall back
// to a fresh carrier per call — only the two canonical precisions are on
// the zero-allocation hot path.
type kargs[T Float] struct {
	dst, a, b  *Dense[T]
	mm, ta, tb func(lo, hi int)
}

func newKargs[T Float]() *kargs[T] {
	k := &kargs[T]{}
	k.mm = k.runMatMul
	k.ta = k.runTransA
	k.tb = k.runTransB
	return k
}

var (
	kargsPool64 = sync.Pool{New: func() any { return newKargs[float64]() }}
	kargsPool32 = sync.Pool{New: func() any { return newKargs[float32]() }}
)

// kargsPoolFor returns the pool holding *kargs[T] carriers, or nil when T
// is not one of the two canonical element types.
func kargsPoolFor[T Float]() *sync.Pool {
	switch any(T(0)).(type) {
	case float64:
		return &kargsPool64
	case float32:
		return &kargsPool32
	}
	return nil
}

func getKargs[T Float](dst, a, b *Dense[T]) *kargs[T] {
	var k *kargs[T]
	if p := kargsPoolFor[T](); p != nil {
		k = p.Get().(*kargs[T])
	} else {
		k = newKargs[T]()
	}
	k.dst, k.a, k.b = dst, a, b
	return k
}

// put clears the operand pointers (so the pool pins no matrices) and
// recycles the carrier.
func (k *kargs[T]) put() {
	k.dst, k.a, k.b = nil, nil, nil
	if p := kargsPoolFor[T](); p != nil {
		p.Put(k)
	}
}

// Cache-blocked k-tiling for runMatMul. The ikj loop streams all of b
// once per output row; when b outgrows the cache that is a full memory
// sweep per row. Above matmulTileMinElems the k loop is split into tiles
// of ~matmulTileElems elements of b (≈32 KiB at float64, 16 KiB at
// float32, comfortably L1-resident), and each tile is applied to every
// output row of the block before moving on — b traffic drops from
// rows×|b| to |b| per block. Tiles are visited in ascending k order and
// every output element still accumulates in ascending k order from a
// zeroed row, so the tiled result is bit-identical to the untiled loop
// (pinned by TestMatMulTiledMatchesUntiled).
const (
	matmulTileElems    = 4096
	matmulTileMinElems = 32768
	// matmulTileMinRows is the minimum rows-per-block MatMulInto hands a
	// parallel block on the tiled path, so each L1-sized b tile is reused
	// across several output rows.
	matmulTileMinRows = 8
)

// The bodies hoist the carrier fields into locals first: a closure's
// captured variables live in registers, while repeated k.a/k.dst loads
// inside the hot loops defeat that and cost ~10% on the matmul-bound
// benches.

// runMatMul is the MatMulInto block body: dst = a*b over output rows
// [lo, hi), ikj order with zero-skip.
func (k *kargs[T]) runMatMul(lo, hi int) {
	a, b, dst := k.a, k.b, k.dst
	if kdim := a.Cols; len(b.Data) >= matmulTileMinElems && hi-lo > 1 {
		kTile := matmulTileElems / b.Cols
		if kTile < 8 {
			kTile = 8
		}
		if kTile < kdim {
			for i := lo; i < hi; i++ {
				drow := dst.Row(i)
				for j := range drow {
					drow[j] = 0
				}
			}
			for k0 := 0; k0 < kdim; k0 += kTile {
				k1 := k0 + kTile
				if k1 > kdim {
					k1 = kdim
				}
				for i := lo; i < hi; i++ {
					arow := a.Row(i)
					drow := dst.Row(i)
					for kk := k0; kk < k1; kk++ {
						av := arow[kk]
						if av == 0 {
							continue
						}
						brow := b.Row(kk)
						for j, bv := range brow {
							drow[j] += av * bv
						}
					}
				}
			}
			return
		}
	}
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		for kk, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(kk)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// runTransB is the MatMulTransBInto block body: dst = a*bᵀ over output
// rows [lo, hi).
func (k *kargs[T]) runTransB(lo, hi int) {
	a, b, dst := k.a, k.b, k.dst
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			orow[j] = T(Dot(arow, b.Row(j)))
		}
	}
}

// runTransA is the MatMulTransAInto block body: dst = aᵀ*b over output
// rows (columns of a) [lo, hi); the k-accumulation order per output
// element matches the serial loop exactly.
func (k *kargs[T]) runTransA(lo, hi int) {
	a, b, dst := k.a, k.b, k.dst
	for i := lo; i < hi; i++ {
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
	}
	for kk := 0; kk < a.Rows; kk++ {
		arow := a.Row(kk)
		brow := b.Row(kk)
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := dst.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}
