package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if !almostEq(c.At(i, j), want[i][j]) {
				t.Fatalf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatMulTransVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := RandNormal(rng, 5, 7, 0, 1)
	b := RandNormal(rng, 7, 3, 0, 1)
	direct := MatMul(a, b)
	viaTB := MatMulTransB(a, b.T())
	viaTA := MatMulTransA(a.T(), b)
	for i := range direct.Data {
		if !almostEq(direct.Data[i], viaTB.Data[i]) {
			t.Fatalf("MatMulTransB disagrees at %d: %v vs %v", i, direct.Data[i], viaTB.Data[i])
		}
		if !almostEq(direct.Data[i], viaTA.Data[i]) {
			t.Fatalf("MatMulTransA disagrees at %d: %v vs %v", i, direct.Data[i], viaTA.Data[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(8)
		m := RandNormal(rng, rows, cols, 0, 1)
		tt := m.T().T()
		if tt.Rows != m.Rows || tt.Cols != m.Cols {
			return false
		}
		for i := range m.Data {
			if m.Data[i] != tt.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		// Clamp extreme quick-generated values; softmax must stay stable.
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vals[i] = 0
			}
			vals[i] = Clamp(vals[i], -1e6, 1e6)
		}
		out := make([]float64, len(vals))
		Softmax(out, vals)
		sum := 0.0
		for _, p := range out {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariant(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1001, 1002, 1003}
	oa := make([]float64, 3)
	ob := make([]float64, 3)
	Softmax(oa, a)
	Softmax(ob, b)
	for i := range oa {
		if !almostEq(oa[i], ob[i]) {
			t.Fatalf("softmax not shift invariant: %v vs %v", oa, ob)
		}
	}
}

func TestL2NormalizeRows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := RandNormal(rng, 10, 4, 0, 3)
	m.SetRow(3, []float64{0, 0, 0, 0}) // zero row must survive untouched
	m.L2NormalizeRows()
	for i := 0; i < m.Rows; i++ {
		n := Norm2(m.Row(i))
		if i == 3 {
			if n != 0 {
				t.Fatalf("zero row got normalised to norm %v", n)
			}
			continue
		}
		if !almostEq(n, 1) {
			t.Fatalf("row %d norm %v", i, n)
		}
	}
}

func TestArgmaxAndOneHot(t *testing.T) {
	if Argmax[float64](nil) != -1 {
		t.Fatal("Argmax(nil) != -1")
	}
	if Argmax([]float64{1, 3, 3, 2}) != 1 {
		t.Fatal("Argmax tie should resolve to first max")
	}
	v := OneHot(4, 2)
	if v[2] != 1 || Sum(v) != 1 {
		t.Fatalf("OneHot wrong: %v", v)
	}
	if Sum(OneHot(4, 9)) != 0 {
		t.Fatal("out-of-range OneHot should be zero")
	}
}

func TestStackAndSelect(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}})
	v := VStack(a, b)
	if v.Rows != 3 || v.At(2, 1) != 6 {
		t.Fatalf("VStack wrong: %+v", v)
	}
	h := HStack(a, a)
	if h.Cols != 4 || h.At(1, 3) != 4 {
		t.Fatalf("HStack wrong: %+v", h)
	}
	s := v.SelectRows([]int{2, 0, 0})
	if s.Rows != 3 || s.At(0, 0) != 5 || s.At(2, 1) != 2 {
		t.Fatalf("SelectRows wrong: %+v", s)
	}
}

func TestStatsHelpers(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(Mean(v), 5) {
		t.Fatalf("mean %v", Mean(v))
	}
	if !almostEq(Std(v), 2) {
		t.Fatalf("std %v", Std(v))
	}
	if !almostEq(Dot([]float64{1, 2, 3}, []float64{4, 5, 6}), 32) {
		t.Fatal("dot")
	}
}

func TestGlorotScale(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := GlorotUniform(rng, 100, 100)
	limit := math.Sqrt(6.0 / 200.0)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("glorot value %v outside ±%v", v, limit)
		}
	}
	if m.MaxAbs() < limit/2 {
		t.Fatal("glorot suspiciously concentrated near zero")
	}
}
