// Package mat provides the dense linear algebra primitives used by the
// machine-learning substrates in this repository: row-major matrices,
// element-wise kernels, matrix products, and the handful of reductions
// (softmax, argmax, norms) that the neural network, GNN and
// label-propagation code need.
//
// # Precision as a type parameter
//
// Every kernel is generic over the element type (Float = float32 |
// float64): Dense[T] is the storage type, Matrix and Matrix32 are the
// concrete aliases the rest of the repository reads. float64 remains the
// reference precision — the float64 instantiation of every generic
// kernel is arithmetically identical, bit for bit, to the pre-generic
// float64 code it replaced. The float32 instantiation halves the working
// set of the bandwidth-bound hot paths (SpMM, matmul) and is pinned
// within tolerance of the float64 reference by the equivalence suites in
// internal/gnn.
//
// Scalar reduction chains (Dot, Norm2, Sum, softmax denominators) always
// accumulate in float64 regardless of the storage type: a float64
// accumulator costs no memory bandwidth, and it keeps the float32 path
// close enough to the reference for tolerance-based equivalence. Vector
// accumulators (matmul and SpMM output rows) stay in storage precision —
// they are exactly the buffers whose bandwidth the float32 path exists
// to halve.
//
// The package is deliberately small and allocation-conscious rather than
// a general BLAS: every routine the higher layers need is here, and
// nothing else. All matrices are dense and row-major; a Dense value is
// cheap to copy (it shares the backing slice) in the same way a Go slice
// is.
package mat

import (
	"fmt"
	"math"

	"trail/internal/par"
)

// Float is the element-type constraint of the numeric core: matrices,
// CSR values and model weights are generic over it.
type Float interface {
	~float32 | ~float64
}

// The hot kernels (MatMulInto, MatMulTransA, MatMulTransB,
// L2NormalizeRows, Apply) run their row loops through par.For above a
// work threshold and serially below it, so small eval-sized matrices
// never pay goroutine handoff. Blocks partition output rows, each row is
// accumulated in the same order as the serial loop, and no floats are
// shared across blocks — results are bit-identical at any parallelism
// (see internal/par's determinism contract and the tests in
// par_equiv_test.go).
const (
	// minParFlops is the total-work floor below which kernels stay serial.
	minParFlops = 1 << 16
	// grainFlops is the approximate per-block work handed to the pool.
	grainFlops = 1 << 14
)

// parRows runs fn over [0, n) output rows, parallelising only when the
// total work n*perRow crosses minParFlops.
func parRows(n, perRow int, fn func(lo, hi int)) {
	if perRow < 1 {
		perRow = 1
	}
	if n*perRow < minParFlops {
		fn(0, n)
		return
	}
	grain := grainFlops / perRow
	if grain < 1 {
		grain = 1
	}
	par.For(n, grain, fn)
}

// Dense is a dense, row-major matrix of T values. The zero value is an
// empty 0x0 matrix. Dense values share backing storage when copied; use
// Clone for a deep copy.
type Dense[T Float] struct {
	Rows, Cols int
	Data       []T // len == Rows*Cols, row-major
}

// Matrix is the float64 reference instantiation — the storage type of
// every path that predates the precision-parametric core, and the
// arithmetic reference the float32 path is pinned against.
type Matrix = Dense[float64]

// Matrix32 is the float32 storage instantiation for bandwidth-bound hot
// paths.
type Matrix32 = Dense[float32]

// New returns a zeroed rows x cols float64 matrix.
func New(rows, cols int) *Matrix { return NewOf[float64](rows, cols) }

// NewOf returns a zeroed rows x cols matrix of the given element type.
func NewOf[T Float](rows, cols int) *Dense[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Dense[T]{Rows: rows, Cols: cols, Data: make([]T, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("mat: ragged row %d: got %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// FromSlice wraps an existing row-major slice without copying. The slice
// length must equal rows*cols.
func FromSlice[T Float](rows, cols int, data []T) *Dense[T] {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: FromSlice length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense[T]{Rows: rows, Cols: cols, Data: data}
}

// Cast returns src converted to element type T. When src is already a
// *Dense[T] it is returned unchanged (no copy), so the float64 reference
// path pays nothing; a cross-precision cast allocates a fresh matrix and
// rounds element-wise.
func Cast[T, U Float](src *Dense[U]) *Dense[T] {
	if m, ok := any(src).(*Dense[T]); ok {
		return m
	}
	out := NewOf[T](src.Rows, src.Cols)
	for i, v := range src.Data {
		out.Data[i] = T(v)
	}
	return out
}

// CastInto writes src converted to T into dst (shapes must match).
func CastInto[T, U Float](dst *Dense[T], src *Dense[U]) *Dense[T] {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("mat: CastInto shape mismatch %dx%d vs %dx%d", dst.Rows, dst.Cols, src.Rows, src.Cols))
	}
	for i, v := range src.Data {
		dst.Data[i] = T(v)
	}
	return dst
}

// At returns the element at row i, column j.
func (m *Dense[T]) At(i, j int) T { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense[T]) Set(i, j int, v T) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense[T]) Row(i int) []T { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// SetRow copies v into row i. len(v) must equal Cols.
func (m *Dense[T]) SetRow(i int, v []T) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: SetRow length %d != %d", len(v), m.Cols))
	}
	copy(m.Row(i), v)
}

// Clone returns a deep copy of m.
func (m *Dense[T]) Clone() *Dense[T] {
	out := NewOf[T](m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets every element to 0 in place.
func (m *Dense[T]) Zero() {
	clear(m.Data)
}

// Fill sets every element to v in place.
func (m *Dense[T]) Fill(v T) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// T returns the transpose of m as a new matrix.
func (m *Dense[T]) T() *Dense[T] {
	out := NewOf[T](m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// MatMul returns a*b. Panics if the inner dimensions disagree.
func MatMul[T Float](a, b *Dense[T]) *Dense[T] {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMul %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewOf[T](a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a*b, reusing dst's storage. dst must be
// a.Rows x b.Cols and must not alias a or b.
func MatMulInto[T Float](dst, a, b *Dense[T]) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MatMulInto %dx%d = %dx%d * %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	// ikj loop order: streams through b and dst rows sequentially, which is
	// substantially faster than the naive ijk order for row-major data.
	// The block body lives on a pooled carrier (see kargs) so repeated
	// calls allocate nothing.
	k := getKargs(dst, a, b)
	perRow := a.Cols * b.Cols
	if len(b.Data) >= matmulTileMinElems && a.Rows > 1 && a.Rows*perRow >= minParFlops {
		// Cache-blocked dispatch: the flop-based grain would hand each
		// block a single row here, which leaves the k-tiled body (see
		// runMatMul) nothing to reuse its b tile across. Give every block
		// at least matmulTileMinRows rows instead — per-row results are
		// independent, so the coarser partition changes no bits.
		grain := grainFlops / perRow
		if grain < matmulTileMinRows {
			grain = matmulTileMinRows
		}
		par.For(a.Rows, grain, k.mm)
	} else {
		parRows(a.Rows, perRow, k.mm)
	}
	k.put()
}

// MatMulTransB returns a * bᵀ without materialising the transpose.
func MatMulTransB[T Float](a, b *Dense[T]) *Dense[T] {
	out := NewOf[T](a.Rows, b.Rows)
	MatMulTransBInto(out, a, b)
	return out
}

// MatMulTransBInto computes dst = a * bᵀ without materialising the
// transpose, reusing dst's storage. dst must be a.Rows x b.Rows and must
// not alias a or b.
func MatMulTransBInto[T Float](dst, a, b *Dense[T]) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMulTransBInto %dx%d = %dx%d * (%dx%d)T",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	k := getKargs(dst, a, b)
	parRows(a.Rows, b.Rows*b.Cols, k.tb)
	k.put()
}

// MatMulTransA returns aᵀ * b without materialising the transpose.
func MatMulTransA[T Float](a, b *Dense[T]) *Dense[T] {
	out := NewOf[T](a.Cols, b.Cols)
	MatMulTransAInto(out, a, b)
	return out
}

// MatMulTransAInto computes dst = aᵀ * b without materialising the
// transpose, reusing dst's storage (any prior contents are overwritten).
// dst must be a.Cols x b.Cols and must not alias a or b.
func MatMulTransAInto[T Float](dst, a, b *Dense[T]) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MatMulTransAInto %dx%d = (%dx%d)T * %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	// Blocks own output rows i (columns of a); the k-accumulation order
	// per output element matches the serial loop exactly.
	k := getKargs(dst, a, b)
	parRows(a.Cols, a.Rows*b.Cols, k.ta)
	k.put()
}

// Add returns a+b element-wise.
func Add[T Float](a, b *Dense[T]) *Dense[T] {
	checkSameShape("Add", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// AddInPlace adds b into a element-wise and returns a.
func AddInPlace[T Float](a, b *Dense[T]) *Dense[T] {
	checkSameShape("AddInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
	return a
}

// Sub returns a-b element-wise.
func Sub[T Float](a, b *Dense[T]) *Dense[T] {
	checkSameShape("Sub", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Hadamard returns the element-wise product a⊙b.
func Hadamard[T Float](a, b *Dense[T]) *Dense[T] {
	checkSameShape("Hadamard", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] *= v
	}
	return out
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Dense[T]) Scale(s T) *Dense[T] {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddRowVector adds vector v to every row of m in place and returns m.
// len(v) must equal m.Cols.
func (m *Dense[T]) AddRowVector(v []T) *Dense[T] {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("mat: AddRowVector length %d != %d", len(v), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, x := range v {
			row[j] += x
		}
	}
	return m
}

// Apply replaces every element x with f(x) in place and returns m.
func (m *Dense[T]) Apply(f func(T) T) *Dense[T] {
	parRows(len(m.Data), 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m.Data[i] = f(m.Data[i])
		}
	})
	return m
}

// ColSums returns the per-column sums of m.
func (m *Dense[T]) ColSums() []T {
	out := make([]T, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			out[j] += v
		}
	}
	return out
}

// ColMeans returns the per-column means of m. A 0-row matrix yields zeros.
func (m *Dense[T]) ColMeans() []T {
	out := m.ColSums()
	if m.Rows == 0 {
		return out
	}
	inv := 1.0 / float64(m.Rows)
	for j := range out {
		out[j] = T(float64(out[j]) * inv)
	}
	return out
}

// L2NormalizeRows rescales each row to unit L2 norm in place and returns m.
// Zero rows are left untouched. The norm accumulates in float64 (see the
// package comment); the per-element rescale happens in storage precision.
func (m *Dense[T]) L2NormalizeRows() *Dense[T] {
	parRows(m.Rows, 2*m.Cols, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			n := Norm2(row)
			if n > 0 {
				inv := T(1 / n)
				for j := range row {
					row[j] *= inv
				}
			}
		}
	})
	return m
}

// SelectRows returns a new matrix consisting of the given rows of m, in
// order. Indices may repeat.
func (m *Dense[T]) SelectRows(idx []int) *Dense[T] {
	out := NewOf[T](len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// HStack concatenates matrices horizontally (they must agree on Rows).
func HStack[T Float](ms ...*Dense[T]) *Dense[T] {
	if len(ms) == 0 {
		return NewOf[T](0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("mat: HStack row mismatch %d vs %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	out := NewOf[T](rows, cols)
	for i := 0; i < rows; i++ {
		dst := out.Row(i)
		off := 0
		for _, m := range ms {
			copy(dst[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
	return out
}

// VStack concatenates matrices vertically (they must agree on Cols).
func VStack[T Float](ms ...*Dense[T]) *Dense[T] {
	if len(ms) == 0 {
		return NewOf[T](0, 0)
	}
	cols := ms[0].Cols
	rows := 0
	for _, m := range ms {
		if m.Cols != cols {
			panic(fmt.Sprintf("mat: VStack col mismatch %d vs %d", m.Cols, cols))
		}
		rows += m.Rows
	}
	out := NewOf[T](rows, cols)
	off := 0
	for _, m := range ms {
		copy(out.Data[off:off+len(m.Data)], m.Data)
		off += len(m.Data)
	}
	return out
}

// MaxAbs returns the largest absolute element value in m (0 for empty).
func (m *Dense[T]) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(float64(v)); a > max {
			max = a
		}
	}
	return max
}

func checkSameShape[T Float](op string, a, b *Dense[T]) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
