// Package mattest holds the comparison helpers shared by the numeric
// equivalence suites. Two regimes exist and must not be confused:
//
//   - BitEqual/BitEqualVec assert exact bit-identity within one element
//     type — the contract for refactors that must not change a single
//     operation (pooled vs allocating scratch, serial vs parallel
//     kernels, permuted vs unpermuted execution).
//
//   - Close/CloseVec assert elementwise tolerance across element types —
//     the contract for the float32 pipeline, which is checked against
//     the float64 reference as |got-want| <= Atol + Rtol*|want|.
//
// The helpers take testing.TB so tests and benchmarks share them.
package mattest

import (
	"math"
	"testing"

	"trail/internal/mat"
)

// Tol is an elementwise absolute+relative tolerance.
type Tol struct {
	Atol, Rtol float64
}

// Float32Tol is the default tolerance for float32-vs-float64
// comparisons of model outputs: float32 carries ~7 decimal digits, and
// a few dozen training epochs compound rounding into the 1e-3 relative
// range on logits and probabilities.
var Float32Tol = Tol{Atol: 1e-4, Rtol: 5e-3}

// Within reports whether got is within the tolerance of want. NaNs
// match only NaNs; infinities must match exactly.
func (tol Tol) Within(got, want float64) bool {
	if math.IsNaN(got) || math.IsNaN(want) {
		return math.IsNaN(got) && math.IsNaN(want)
	}
	if math.IsInf(got, 0) || math.IsInf(want, 0) {
		return got == want
	}
	return math.Abs(got-want) <= tol.Atol+tol.Rtol*math.Abs(want)
}

// bitsOf widens v to float64 and returns its bit pattern. The widening
// is exact for every float32, so same-type comparisons through bitsOf
// are true bit-identity checks (and NaNs compare equal to NaNs).
func bitsOf[T mat.Float](v T) uint64 { return math.Float64bits(float64(v)) }

// BitEqual fails the test unless got and want have the same shape and
// identical bits at every element.
func BitEqual[T mat.Float](t testing.TB, name string, got, want *mat.Dense[T]) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape (%d,%d) vs (%d,%d)", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if bitsOf(got.Data[i]) != bitsOf(want.Data[i]) {
			t.Fatalf("%s: element (%d,%d) differs bitwise: %v vs %v",
				name, i/want.Cols, i%want.Cols, got.Data[i], want.Data[i])
		}
	}
}

// BitEqualVec is BitEqual for plain vectors.
func BitEqualVec[T mat.Float](t testing.TB, name string, got, want []T) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range want {
		if bitsOf(got[i]) != bitsOf(want[i]) {
			t.Fatalf("%s: element %d differs bitwise: %v vs %v", name, i, got[i], want[i])
		}
	}
}

// Close fails the test unless got and want have the same shape and every
// element of got is within tol of the reference want. The failure
// message reports the worst element so tolerances can be tuned from one
// run.
func Close[T, U mat.Float](t testing.TB, name string, got *mat.Dense[T], want *mat.Dense[U], tol Tol) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape (%d,%d) vs (%d,%d)", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	worst, worstIdx := 0.0, -1
	for i := range want.Data {
		g, w := float64(got.Data[i]), float64(want.Data[i])
		if !tol.Within(g, w) {
			if d := math.Abs(g - w); worstIdx < 0 || d > worst {
				worst, worstIdx = d, i
			}
		}
	}
	if worstIdx >= 0 {
		t.Fatalf("%s: element (%d,%d) outside tol{atol %g, rtol %g}: got %v, want %v (|diff| %g)",
			name, worstIdx/want.Cols, worstIdx%want.Cols, tol.Atol, tol.Rtol,
			got.Data[worstIdx], want.Data[worstIdx], worst)
	}
}

// CloseVec is Close for plain vectors.
func CloseVec[T, U mat.Float](t testing.TB, name string, got []T, want []U, tol Tol) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range want {
		g, w := float64(got[i]), float64(want[i])
		if !tol.Within(g, w) {
			t.Fatalf("%s: element %d outside tol{atol %g, rtol %g}: got %v, want %v",
				name, i, tol.Atol, tol.Rtol, got[i], want[i])
		}
	}
}
