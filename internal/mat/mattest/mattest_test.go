package mattest

import (
	"math"
	"testing"
)

func TestTolWithin(t *testing.T) {
	tol := Tol{Atol: 1e-4, Rtol: 1e-2}
	cases := []struct {
		got, want float64
		ok        bool
	}{
		{1.0, 1.0, true},
		{1.0, 1.009, true},       // inside rtol
		{1.0, 1.02, false},       // outside rtol
		{1e-5, 0, true},          // inside atol near zero
		{2e-4, 0, false},         // outside atol near zero
		{math.NaN(), math.NaN(), true},
		{math.NaN(), 1, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.Inf(1), 1e300, false},
	}
	for _, c := range cases {
		if got := tol.Within(c.got, c.want); got != c.ok {
			t.Errorf("Within(%v, %v) = %v, want %v", c.got, c.want, got, c.ok)
		}
	}
}

func TestBitEqualAcceptsNaN(t *testing.T) {
	// NaN == NaN is false under float compare; the helpers must treat
	// identical NaNs as equal so divergence fixtures can round-trip.
	a, b := []float64{1, math.NaN()}, []float64{1, math.NaN()}
	BitEqualVec(t, "nan", a, b)
	f32 := []float32{float32(math.NaN())}
	BitEqualVec(t, "nan32", f32, []float32{float32(math.NaN())})
}
