package mat_test

import (
	"math"
	"math/rand"
	"testing"

	"trail/internal/mat"
	"trail/internal/mat/mattest"
	"trail/internal/par"
)

// This file lives in the external test package so it can exercise the
// kernels through the same lens every other package sees — and share the
// mattest comparison helpers without an import cycle.

// runBoth evaluates f once fully serial and once with 8 workers and
// returns both results, for bit-identity checks on the parallel kernels.
func runBoth(f func() *mat.Matrix) (serial, parallel *mat.Matrix) {
	prev := par.SetWorkers(1)
	serial = f()
	par.SetWorkers(8)
	parallel = f()
	par.SetWorkers(prev)
	return serial, parallel
}

// TestDenseKernelsSerialParallelBitIdentical pins the determinism
// contract for every parallelised dense kernel: identical bits at any
// worker count, on shapes large enough to cross the parallel threshold.
func TestDenseKernelsSerialParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := mat.RandNormal(rng, 120, 90, 0, 1)
	b := mat.RandNormal(rng, 90, 110, 0, 1)
	c := mat.RandNormal(rng, 120, 110, 0, 1)

	s, p := runBoth(func() *mat.Matrix { return mat.MatMul(a, b) })
	mattest.BitEqual(t, "MatMulInto", s, p)

	s, p = runBoth(func() *mat.Matrix { return mat.MatMulTransA(a, c) })
	mattest.BitEqual(t, "MatMulTransA", s, p)

	s, p = runBoth(func() *mat.Matrix { return mat.MatMulTransB(a, a) })
	mattest.BitEqual(t, "MatMulTransB", s, p)

	s, p = runBoth(func() *mat.Matrix { return c.Clone().L2NormalizeRows() })
	mattest.BitEqual(t, "L2NormalizeRows", s, p)

	s, p = runBoth(func() *mat.Matrix {
		return c.Clone().Apply(func(x float64) float64 { return math.Tanh(x) })
	})
	mattest.BitEqual(t, "Apply", s, p)
}

// TestDenseKernelsFloat32SerialParallelBitIdentical is the same
// determinism contract at float32: the parallel row partition must not
// change a single bit at the storage precision either.
func TestDenseKernelsFloat32SerialParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := mat.RandNormalOf[float32](rng, 120, 90, 0, 1)
	b := mat.RandNormalOf[float32](rng, 90, 110, 0, 1)

	run := func(f func() *mat.Matrix32) (serial, parallel *mat.Matrix32) {
		prev := par.SetWorkers(1)
		serial = f()
		par.SetWorkers(8)
		parallel = f()
		par.SetWorkers(prev)
		return serial, parallel
	}
	s, p := run(func() *mat.Matrix32 { return mat.MatMul(a, b) })
	mattest.BitEqual(t, "MatMulInto/f32", s, p)
	s, p = run(func() *mat.Matrix32 { return mat.MatMulTransB(a, a) })
	mattest.BitEqual(t, "MatMulTransB/f32", s, p)
	s, p = run(func() *mat.Matrix32 { return a.Clone().L2NormalizeRows() })
	mattest.BitEqual(t, "L2NormalizeRows/f32", s, p)
}

// TestParallelKernelsMatchReferenceLoops keeps the pre-refactor serial
// loop nests as references and checks the parallel kernels reproduce
// them bit for bit.
func TestParallelKernelsMatchReferenceLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := mat.RandNormal(rng, 70, 130, 0, 1)
	b := mat.RandNormal(rng, 130, 80, 0, 1)

	refMatMul := func(a, b *mat.Matrix) *mat.Matrix {
		out := mat.New(a.Rows, b.Cols)
		for i := 0; i < a.Rows; i++ {
			arow := a.Row(i)
			drow := out.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
		return out
	}
	refTransA := func(a, b *mat.Matrix) *mat.Matrix {
		out := mat.New(a.Cols, b.Cols)
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i, av := range arow {
				if av == 0 {
					continue
				}
				orow := out.Row(i)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
		return out
	}

	prev := par.SetWorkers(8)
	defer par.SetWorkers(prev)
	mattest.BitEqual(t, "MatMul vs reference", refMatMul(a, b), mat.MatMul(a, b))
	mattest.BitEqual(t, "MatMulTransA vs reference",
		refTransA(a, refMatMul(a, b)), mat.MatMulTransA(a, refMatMul(a, b)))
}

// TestFloat32MatMulCloseToFloat64 sanity-checks the cross-precision
// comparator on a real kernel: the float32 MatMul lands within
// Float32Tol of the float64 product on unit-scale operands.
func TestFloat32MatMulCloseToFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := mat.RandNormal(rng, 50, 60, 0, 1)
	b := mat.RandNormal(rng, 60, 40, 0, 1)
	a32, b32 := mat.Cast[float32](a), mat.Cast[float32](b)
	mattest.Close(t, "MatMul f32 vs f64", mat.MatMul(a32, b32), mat.MatMul(a, b), mattest.Float32Tol)
}
