package mat

import (
	"math"
	"math/rand"
	"testing"

	"trail/internal/par"
)

// runBoth evaluates f once fully serial and once with 8 workers and
// returns both results, for bit-identity checks on the parallel kernels.
func runBoth(f func() *Matrix) (serial, parallel *Matrix) {
	prev := par.SetWorkers(1)
	serial = f()
	par.SetWorkers(8)
	parallel = f()
	par.SetWorkers(prev)
	return serial, parallel
}

func assertBitIdentical(t *testing.T, name string, serial, parallel *Matrix) {
	t.Helper()
	if serial.Rows != parallel.Rows || serial.Cols != parallel.Cols {
		t.Fatalf("%s: shape mismatch", name)
	}
	for i := range serial.Data {
		if serial.Data[i] != parallel.Data[i] {
			t.Fatalf("%s: serial and parallel differ at %d: %v vs %v",
				name, i, serial.Data[i], parallel.Data[i])
		}
	}
}

// TestDenseKernelsSerialParallelBitIdentical pins the determinism
// contract for every parallelised dense kernel: identical bits at any
// worker count, on shapes large enough to cross the parallel threshold.
func TestDenseKernelsSerialParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := RandNormal(rng, 120, 90, 0, 1)
	b := RandNormal(rng, 90, 110, 0, 1)
	c := RandNormal(rng, 120, 110, 0, 1)

	s, p := runBoth(func() *Matrix { return MatMul(a, b) })
	assertBitIdentical(t, "MatMulInto", s, p)

	s, p = runBoth(func() *Matrix { return MatMulTransA(a, c) })
	assertBitIdentical(t, "MatMulTransA", s, p)

	s, p = runBoth(func() *Matrix { return MatMulTransB(a, a) })
	assertBitIdentical(t, "MatMulTransB", s, p)

	s, p = runBoth(func() *Matrix { return c.Clone().L2NormalizeRows() })
	assertBitIdentical(t, "L2NormalizeRows", s, p)

	s, p = runBoth(func() *Matrix {
		return c.Clone().Apply(func(x float64) float64 { return math.Tanh(x) })
	})
	assertBitIdentical(t, "Apply", s, p)
}

// TestParallelKernelsMatchReferenceLoops keeps the pre-refactor serial
// loop nests as references and checks the parallel kernels reproduce
// them bit for bit.
func TestParallelKernelsMatchReferenceLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := RandNormal(rng, 70, 130, 0, 1)
	b := RandNormal(rng, 130, 80, 0, 1)

	refMatMul := func(a, b *Matrix) *Matrix {
		out := New(a.Rows, b.Cols)
		for i := 0; i < a.Rows; i++ {
			arow := a.Row(i)
			drow := out.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
		return out
	}
	refTransA := func(a, b *Matrix) *Matrix {
		out := New(a.Cols, b.Cols)
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i, av := range arow {
				if av == 0 {
					continue
				}
				orow := out.Row(i)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
		return out
	}

	prev := par.SetWorkers(8)
	defer par.SetWorkers(prev)
	assertBitIdentical(t, "MatMul vs reference", refMatMul(a, b), MatMul(a, b))
	assertBitIdentical(t, "MatMulTransA vs reference", refTransA(a, refMatMul(a, b)), MatMulTransA(a, refMatMul(a, b)))
}
