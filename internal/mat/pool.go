package mat

import (
	"fmt"
	"sync"
)

// This file implements the memory-discipline layer of DESIGN.md §3e: a
// shape-keyed pool of Matrix buffers plus a scoped Workspace arena, so the
// training and inference hot loops run allocation-free in steady state.
//
// Ownership rules:
//
//   - A matrix obtained from Get/GetBuf is owned by the caller until it is
//     returned with Put/PutBuf. Returning it transfers ownership back to
//     the pool; using (or re-Putting) it afterwards is a bug, and Put
//     panics on a detectable double-Put.
//   - Matrices handed out by Get are always fully zeroed, exactly like
//     New, so a pooled kernel and an allocating kernel see identical
//     inputs. GetDirty skips the zeroing and may return arbitrary stale
//     contents; it is only for buffers whose first consumer fully
//     overwrites every element (CopyInto, SelectRowsInto, MatMul*Into,
//     SpMM*Into, SAGELayerInto, AddBiasReLUInto/ReLUMaskInto masks).
//     Accumulating consumers (SoftmaxCrossEntropyInto, the L2-backward
//     loop) must keep using Get.
//   - A Workspace is single-goroutine. Distinct goroutines must use
//     distinct Workspaces (the backing Pool is safe for concurrent use).

// Pool is a shape-keyed free list of Matrix buffers. The zero value is
// not usable; use NewPool. All methods are safe for concurrent use.
type Pool struct {
	mu   sync.Mutex
	free map[int64][]*Matrix
	// pooled tracks matrices currently sitting in the free lists so a
	// double-Put fails loudly instead of handing one buffer to two owners.
	pooled map[*Matrix]struct{}
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{free: make(map[int64][]*Matrix), pooled: make(map[*Matrix]struct{})}
}

func shapeKey(rows, cols int) int64 { return int64(rows)<<32 | int64(uint32(cols)) }

// Get returns a zeroed rows x cols matrix, reusing a previously Put
// buffer of the same shape when one is available.
func (p *Pool) Get(rows, cols int) *Matrix { return p.get(rows, cols, true) }

// GetDirty is Get without the zeroing: the returned matrix may hold
// arbitrary stale values. Use only when the first consumer overwrites
// every element (see the ownership rules above).
func (p *Pool) GetDirty(rows, cols int) *Matrix { return p.get(rows, cols, false) }

func (p *Pool) get(rows, cols int, zero bool) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: Pool.Get negative dimension %dx%d", rows, cols))
	}
	key := shapeKey(rows, cols)
	p.mu.Lock()
	if list := p.free[key]; len(list) > 0 {
		m := list[len(list)-1]
		p.free[key] = list[:len(list)-1]
		delete(p.pooled, m)
		p.mu.Unlock()
		if zero {
			m.Zero()
		}
		return m
	}
	p.mu.Unlock()
	return New(rows, cols)
}

// Put returns m to the pool. It panics on a shape-inconsistent matrix
// (len(Data) != Rows*Cols — e.g. a reshaped view of someone else's
// storage) and on a double-Put of the same buffer. Put(nil) and empty
// matrices are no-ops.
func (p *Pool) Put(m *Matrix) {
	if m == nil || m.Rows*m.Cols == 0 {
		return
	}
	if len(m.Data) != m.Rows*m.Cols {
		panic(fmt.Sprintf("mat: Pool.Put shape mismatch: %dx%d with %d elements",
			m.Rows, m.Cols, len(m.Data)))
	}
	key := shapeKey(m.Rows, m.Cols)
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.pooled[m]; ok {
		panic(fmt.Sprintf("mat: Pool.Put double-Put of %dx%d buffer", m.Rows, m.Cols))
	}
	p.pooled[m] = struct{}{}
	p.free[key] = append(p.free[key], m)
}

// sharedPool backs the package-level GetBuf/PutBuf and every Workspace
// created with NewWorkspace.
var sharedPool = NewPool()

// GetBuf borrows a zeroed rows x cols matrix from the shared pool.
func GetBuf(rows, cols int) *Matrix { return sharedPool.Get(rows, cols) }

// GetBufDirty borrows an unzeroed matrix from the shared pool; the first
// consumer must overwrite every element.
func GetBufDirty(rows, cols int) *Matrix { return sharedPool.GetDirty(rows, cols) }

// PutBuf returns a GetBuf matrix to the shared pool.
func PutBuf(m *Matrix) { sharedPool.Put(m) }

// Workspace is a scoped scratch arena for hot loops that request the
// same sequence of buffer shapes on every iteration (an epoch, a batch,
// a propagation step). Get hands out zeroed buffers; Reset rewinds the
// cursor so the next iteration re-borrows the same buffers in order;
// Release returns everything to the backing pool.
//
// A Workspace is NOT safe for concurrent use — it is the per-goroutine
// half of the design, with the concurrent Pool underneath.
type Workspace struct {
	pool        *Pool // nil in allocating (reference) mode
	mats        []*Matrix
	vecs        [][]float64
	next, vnext int
}

// NewWorkspace returns a Workspace backed by the shared pool.
func NewWorkspace() *Workspace { return &Workspace{pool: sharedPool} }

// NewWorkspaceOn returns a Workspace backed by a specific pool.
func NewWorkspaceOn(p *Pool) *Workspace { return &Workspace{pool: p} }

// NewAllocWorkspace returns a Workspace whose Get always allocates a
// fresh matrix — the allocation behaviour of the pre-pool code paths. It
// exists so equivalence tests can run one training loop pooled and one
// allocating and assert bit-identical results; Release and Reset drop
// all references for the GC.
func NewAllocWorkspace() *Workspace { return &Workspace{} }

// Get returns a zeroed rows x cols matrix valid until the next Reset or
// Release. Buffers are matched to call sites by cursor position, so a
// loop that issues the same Get sequence every iteration reuses the same
// storage with zero allocation.
func (w *Workspace) Get(rows, cols int) *Matrix { return w.get(rows, cols, true) }

// GetDirty is Get without the zeroing — the memset is the dominant cost
// of re-borrowing a large buffer, and most kernels overwrite their
// destination entirely. The returned matrix may hold stale contents from
// an earlier borrow; use only when the first consumer writes every
// element. In allocating reference mode it returns a fresh (zeroed)
// matrix, which is indistinguishable to a full-overwrite consumer, so
// pooled-vs-allocating equivalence is preserved.
func (w *Workspace) GetDirty(rows, cols int) *Matrix { return w.get(rows, cols, false) }

func (w *Workspace) get(rows, cols int, zero bool) *Matrix {
	if w.pool == nil { // allocating reference mode
		m := New(rows, cols)
		w.mats = append(w.mats, m)
		w.next = len(w.mats)
		return m
	}
	n := rows * cols
	if w.next < len(w.mats) {
		m := w.mats[w.next]
		if cap(m.Data) >= n {
			w.next++
			m.Rows, m.Cols = rows, cols
			m.Data = m.Data[:n]
			if zero {
				m.Zero()
			}
			return m
		}
		// Shape grew past this slot's capacity: retire the old buffer and
		// take a fitting one.
		w.pool.Put(m)
		m = w.pool.get(rows, cols, zero)
		w.mats[w.next] = m
		w.next++
		return m
	}
	m := w.pool.get(rows, cols, zero)
	w.mats = append(w.mats, m)
	w.next = len(w.mats)
	return m
}

// Vec returns a zeroed length-n scratch slice under the same cursor
// discipline as Get.
func (w *Workspace) Vec(n int) []float64 { return w.vec(n, true) }

// VecDirty is Vec without the zeroing, for slices whose first consumer
// writes every element.
func (w *Workspace) VecDirty(n int) []float64 { return w.vec(n, false) }

func (w *Workspace) vec(n int, zero bool) []float64 {
	if w.vnext < len(w.vecs) && cap(w.vecs[w.vnext]) >= n && w.pool != nil {
		v := w.vecs[w.vnext][:n]
		w.vnext++
		if zero {
			clear(v)
		}
		return v
	}
	v := make([]float64, n)
	if w.vnext < len(w.vecs) {
		w.vecs[w.vnext] = v
	} else {
		w.vecs = append(w.vecs, v)
	}
	w.vnext++
	return v
}

// Reset rewinds the cursors: buffers handed out so far may be re-borrowed
// by subsequent Gets (in the same order) and must no longer be used under
// their old references. In allocating mode it instead drops all
// references so every Get stays fresh.
func (w *Workspace) Reset() {
	if w.pool == nil {
		w.mats, w.vecs = nil, nil
	}
	w.next, w.vnext = 0, 0
}

// Release returns every buffer to the backing pool and empties the
// workspace, which remains usable afterwards.
func (w *Workspace) Release() {
	if w.pool != nil {
		for _, m := range w.mats {
			w.pool.Put(m)
		}
	}
	w.mats, w.vecs = nil, nil
	w.next, w.vnext = 0, 0
}
