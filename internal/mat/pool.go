package mat

import (
	"fmt"
	"sync"
)

// This file implements the memory-discipline layer of DESIGN.md §3e: a
// shape-keyed pool of matrix buffers plus a scoped Workspace arena, so the
// training and inference hot loops run allocation-free in steady state.
// Pool and Workspace are generic over the element type; the float64
// aliases (Pool, Workspace) keep the pre-generic call sites unchanged,
// and each concrete precision has its own shared pool so float32 and
// float64 buffers never mix.
//
// Ownership rules:
//
//   - A matrix obtained from Get/GetBuf is owned by the caller until it is
//     returned with Put/PutBuf. Returning it transfers ownership back to
//     the pool; using (or re-Putting) it afterwards is a bug, and Put
//     panics on a detectable double-Put.
//   - Matrices handed out by Get are always fully zeroed, exactly like
//     New, so a pooled kernel and an allocating kernel see identical
//     inputs. GetDirty skips the zeroing and may return arbitrary stale
//     contents; it is only for buffers whose first consumer fully
//     overwrites every element (CopyInto, SelectRowsInto, MatMul*Into,
//     SpMM*Into, SAGELayerInto, AddBiasReLUInto/ReLUMaskInto masks).
//     Accumulating consumers (SoftmaxCrossEntropyInto, the L2-backward
//     loop) must keep using Get.
//   - A Workspace is single-goroutine. Distinct goroutines must use
//     distinct Workspaces (the backing Pool is safe for concurrent use).

// PoolOf is a shape-keyed free list of Dense[T] buffers. The zero value
// is not usable; use NewPoolOf. All methods are safe for concurrent use.
type PoolOf[T Float] struct {
	mu   sync.Mutex
	free map[int64][]*Dense[T]
	// pooled tracks matrices currently sitting in the free lists so a
	// double-Put fails loudly instead of handing one buffer to two owners.
	pooled map[*Dense[T]]struct{}
}

// Pool is the float64 instantiation of PoolOf.
type Pool = PoolOf[float64]

// NewPool returns an empty float64 pool.
func NewPool() *Pool { return NewPoolOf[float64]() }

// NewPoolOf returns an empty pool for element type T.
func NewPoolOf[T Float]() *PoolOf[T] {
	return &PoolOf[T]{free: make(map[int64][]*Dense[T]), pooled: make(map[*Dense[T]]struct{})}
}

func shapeKey(rows, cols int) int64 { return int64(rows)<<32 | int64(uint32(cols)) }

// Get returns a zeroed rows x cols matrix, reusing a previously Put
// buffer of the same shape when one is available.
func (p *PoolOf[T]) Get(rows, cols int) *Dense[T] { return p.get(rows, cols, true) }

// GetDirty is Get without the zeroing: the returned matrix may hold
// arbitrary stale values. Use only when the first consumer overwrites
// every element (see the ownership rules above).
func (p *PoolOf[T]) GetDirty(rows, cols int) *Dense[T] { return p.get(rows, cols, false) }

func (p *PoolOf[T]) get(rows, cols int, zero bool) *Dense[T] {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: Pool.Get negative dimension %dx%d", rows, cols))
	}
	key := shapeKey(rows, cols)
	p.mu.Lock()
	if list := p.free[key]; len(list) > 0 {
		m := list[len(list)-1]
		p.free[key] = list[:len(list)-1]
		delete(p.pooled, m)
		p.mu.Unlock()
		if zero {
			m.Zero()
		}
		return m
	}
	p.mu.Unlock()
	return NewOf[T](rows, cols)
}

// Put returns m to the pool. It panics on a shape-inconsistent matrix
// (len(Data) != Rows*Cols — e.g. a reshaped view of someone else's
// storage) and on a double-Put of the same buffer. Put(nil) and empty
// matrices are no-ops.
func (p *PoolOf[T]) Put(m *Dense[T]) {
	if m == nil || m.Rows*m.Cols == 0 {
		return
	}
	if len(m.Data) != m.Rows*m.Cols {
		panic(fmt.Sprintf("mat: Pool.Put shape mismatch: %dx%d with %d elements",
			m.Rows, m.Cols, len(m.Data)))
	}
	key := shapeKey(m.Rows, m.Cols)
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.pooled[m]; ok {
		panic(fmt.Sprintf("mat: Pool.Put double-Put of %dx%d buffer", m.Rows, m.Cols))
	}
	p.pooled[m] = struct{}{}
	p.free[key] = append(p.free[key], m)
}

// sharedPool and sharedPool32 back the package-level GetBuf/PutBuf
// helpers and every Workspace created with NewWorkspace/NewWorkspaceOf.
// One pool per concrete precision: a float32 buffer can never satisfy a
// float64 borrow.
var (
	sharedPool   = NewPool()
	sharedPool32 = NewPoolOf[float32]()
)

// SharedPoolOf returns the process-wide pool for element type T. Exotic
// named Float types get a fresh (unshared) pool; only float32 and
// float64 are on the zero-allocation hot path.
func SharedPoolOf[T Float]() *PoolOf[T] {
	if p, ok := any(sharedPool).(*PoolOf[T]); ok {
		return p
	}
	if p, ok := any(sharedPool32).(*PoolOf[T]); ok {
		return p
	}
	return NewPoolOf[T]()
}

// GetBuf borrows a zeroed rows x cols float64 matrix from the shared pool.
func GetBuf(rows, cols int) *Matrix { return sharedPool.Get(rows, cols) }

// GetBufDirty borrows an unzeroed float64 matrix from the shared pool;
// the first consumer must overwrite every element.
func GetBufDirty(rows, cols int) *Matrix { return sharedPool.GetDirty(rows, cols) }

// PutBuf returns a GetBuf matrix to the shared pool.
func PutBuf(m *Matrix) { sharedPool.Put(m) }

// GetBufOf borrows a zeroed rows x cols matrix of element type T from
// that precision's shared pool.
func GetBufOf[T Float](rows, cols int) *Dense[T] { return SharedPoolOf[T]().Get(rows, cols) }

// GetBufDirtyOf is GetBufOf without the zeroing.
func GetBufDirtyOf[T Float](rows, cols int) *Dense[T] { return SharedPoolOf[T]().GetDirty(rows, cols) }

// PutBufOf returns a GetBufOf matrix to its precision's shared pool.
func PutBufOf[T Float](m *Dense[T]) { SharedPoolOf[T]().Put(m) }

// WorkspaceOf is a scoped scratch arena for hot loops that request the
// same sequence of buffer shapes on every iteration (an epoch, a batch,
// a propagation step). Get hands out zeroed buffers; Reset rewinds the
// cursor so the next iteration re-borrows the same buffers in order;
// Release returns everything to the backing pool.
//
// A Workspace is NOT safe for concurrent use — it is the per-goroutine
// half of the design, with the concurrent Pool underneath.
type WorkspaceOf[T Float] struct {
	pool        *PoolOf[T] // nil in allocating (reference) mode
	mats        []*Dense[T]
	vecs        [][]T
	next, vnext int
}

// Workspace is the float64 instantiation of WorkspaceOf.
type Workspace = WorkspaceOf[float64]

// NewWorkspace returns a float64 Workspace backed by the shared pool.
func NewWorkspace() *Workspace { return NewWorkspaceOf[float64]() }

// NewWorkspaceOf returns a Workspace backed by T's shared pool.
func NewWorkspaceOf[T Float]() *WorkspaceOf[T] {
	return &WorkspaceOf[T]{pool: SharedPoolOf[T]()}
}

// NewWorkspaceOn returns a Workspace backed by a specific pool.
func NewWorkspaceOn[T Float](p *PoolOf[T]) *WorkspaceOf[T] { return &WorkspaceOf[T]{pool: p} }

// NewAllocWorkspace returns a float64 Workspace whose Get always
// allocates a fresh matrix — the allocation behaviour of the pre-pool
// code paths. It exists so equivalence tests can run one training loop
// pooled and one allocating and assert bit-identical results; Release
// and Reset drop all references for the GC.
func NewAllocWorkspace() *Workspace { return &Workspace{} }

// NewAllocWorkspaceOf is NewAllocWorkspace at any element type.
func NewAllocWorkspaceOf[T Float]() *WorkspaceOf[T] { return &WorkspaceOf[T]{} }

// Get returns a zeroed rows x cols matrix valid until the next Reset or
// Release. Buffers are matched to call sites by cursor position, so a
// loop that issues the same Get sequence every iteration reuses the same
// storage with zero allocation.
func (w *WorkspaceOf[T]) Get(rows, cols int) *Dense[T] { return w.get(rows, cols, true) }

// GetDirty is Get without the zeroing — the memset is the dominant cost
// of re-borrowing a large buffer, and most kernels overwrite their
// destination entirely. The returned matrix may hold stale contents from
// an earlier borrow; use only when the first consumer writes every
// element. In allocating reference mode it returns a fresh (zeroed)
// matrix, which is indistinguishable to a full-overwrite consumer, so
// pooled-vs-allocating equivalence is preserved.
func (w *WorkspaceOf[T]) GetDirty(rows, cols int) *Dense[T] { return w.get(rows, cols, false) }

func (w *WorkspaceOf[T]) get(rows, cols int, zero bool) *Dense[T] {
	if w.pool == nil { // allocating reference mode
		m := NewOf[T](rows, cols)
		w.mats = append(w.mats, m)
		w.next = len(w.mats)
		return m
	}
	n := rows * cols
	if w.next < len(w.mats) {
		m := w.mats[w.next]
		if cap(m.Data) >= n {
			w.next++
			m.Rows, m.Cols = rows, cols
			m.Data = m.Data[:n]
			if zero {
				m.Zero()
			}
			return m
		}
		// Shape grew past this slot's capacity: retire the old buffer and
		// take a fitting one.
		w.pool.Put(m)
		m = w.pool.get(rows, cols, zero)
		w.mats[w.next] = m
		w.next++
		return m
	}
	m := w.pool.get(rows, cols, zero)
	w.mats = append(w.mats, m)
	w.next = len(w.mats)
	return m
}

// Vec returns a zeroed length-n scratch slice under the same cursor
// discipline as Get.
func (w *WorkspaceOf[T]) Vec(n int) []T { return w.vec(n, true) }

// VecDirty is Vec without the zeroing, for slices whose first consumer
// writes every element.
func (w *WorkspaceOf[T]) VecDirty(n int) []T { return w.vec(n, false) }

func (w *WorkspaceOf[T]) vec(n int, zero bool) []T {
	if w.vnext < len(w.vecs) && cap(w.vecs[w.vnext]) >= n && w.pool != nil {
		v := w.vecs[w.vnext][:n]
		w.vnext++
		if zero {
			clear(v)
		}
		return v
	}
	v := make([]T, n)
	if w.vnext < len(w.vecs) {
		w.vecs[w.vnext] = v
	} else {
		w.vecs = append(w.vecs, v)
	}
	w.vnext++
	return v
}

// Reset rewinds the cursors: buffers handed out so far may be re-borrowed
// by subsequent Gets (in the same order) and must no longer be used under
// their old references. In allocating mode it instead drops all
// references so every Get stays fresh.
func (w *WorkspaceOf[T]) Reset() {
	if w.pool == nil {
		w.mats, w.vecs = nil, nil
	}
	w.next, w.vnext = 0, 0
}

// Release returns every buffer to the backing pool and empties the
// workspace, which remains usable afterwards.
func (w *WorkspaceOf[T]) Release() {
	if w.pool != nil {
		for _, m := range w.mats {
			w.pool.Put(m)
		}
	}
	w.mats, w.vecs = nil, nil
	w.next, w.vnext = 0, 0
}
