package mat

import (
	"math/rand"
	"sync"
	"testing"
)

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestPoolReusesZeroedBuffers(t *testing.T) {
	p := NewPool()
	m := p.Get(3, 4)
	m.Fill(7)
	p.Put(m)
	got := p.Get(3, 4)
	if got != m {
		t.Fatalf("expected the pooled buffer back")
	}
	for i, v := range got.Data {
		if v != 0 {
			t.Fatalf("Get returned unzeroed buffer: Data[%d] = %v", i, v)
		}
	}
}

func TestPoolGetDirtySkipsZeroing(t *testing.T) {
	p := NewPool()
	m := p.Get(3, 4)
	m.Fill(7)
	p.Put(m)
	got := p.GetDirty(3, 4)
	if got != m {
		t.Fatalf("expected the pooled buffer back")
	}
	if got.Data[0] != 7 {
		t.Fatalf("GetDirty zeroed the buffer; want stale contents")
	}
	// A miss falls through to New, which is zeroed.
	fresh := p.GetDirty(5, 5)
	for _, v := range fresh.Data {
		if v != 0 {
			t.Fatalf("GetDirty miss should New a zeroed matrix")
		}
	}
}

func TestPoolShapeKeying(t *testing.T) {
	p := NewPool()
	m := p.Get(2, 6)
	p.Put(m)
	// Same element count, different shape: must not satisfy the request.
	other := p.Get(3, 4)
	if other == m {
		t.Fatalf("2x6 buffer returned for a 3x4 request")
	}
}

func TestPoolPutShapeMismatchPanics(t *testing.T) {
	p := NewPool()
	bad := &Matrix{Rows: 2, Cols: 2, Data: make([]float64, 6)}
	mustPanic(t, "shape-mismatch Put", func() { p.Put(bad) })
}

func TestPoolDoublePutPanics(t *testing.T) {
	p := NewPool()
	m := p.Get(2, 2)
	p.Put(m)
	mustPanic(t, "double Put", func() { p.Put(m) })
}

func TestPoolNilAndEmptyPutNoOp(t *testing.T) {
	p := NewPool()
	p.Put(nil)
	p.Put(&Matrix{Rows: 0, Cols: 5})
}

func TestPoolNegativeGetPanics(t *testing.T) {
	p := NewPool()
	mustPanic(t, "negative Get", func() { p.Get(-1, 3) })
}

// TestPoolConcurrentGetPut is primarily a race-detector test (`make
// race`): many goroutines churning Get/GetDirty/Put on one pool must not
// race, and no buffer may be handed to two owners at once.
func TestPoolConcurrentGetPut(t *testing.T) {
	p := NewPool()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				rows, cols := 1+rng.Intn(4), 1+rng.Intn(4)
				var m *Matrix
				if rng.Intn(2) == 0 {
					m = p.Get(rows, cols)
				} else {
					m = p.GetDirty(rows, cols)
				}
				m.Fill(float64(i))
				p.Put(m)
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestWorkspaceCursorReuse(t *testing.T) {
	w := NewWorkspaceOn(NewPool())
	defer w.Release()
	a := w.Get(2, 3)
	b := w.Get(4, 4)
	a.Fill(1)
	b.Fill(2)
	w.Reset()
	a2 := w.Get(2, 3)
	b2 := w.Get(4, 4)
	if a2 != a || b2 != b {
		t.Fatalf("Reset + same Get sequence should re-borrow the same buffers")
	}
	for _, v := range a2.Data {
		if v != 0 {
			t.Fatalf("re-borrowed Get buffer not zeroed")
		}
	}
}

func TestWorkspaceGetDirtyKeepsStaleContents(t *testing.T) {
	w := NewWorkspaceOn(NewPool())
	defer w.Release()
	a := w.GetDirty(2, 3)
	a.Fill(9)
	w.Reset()
	a2 := w.GetDirty(2, 3)
	if a2 != a {
		t.Fatalf("expected the same slot back")
	}
	if a2.Data[0] != 9 {
		t.Fatalf("GetDirty zeroed a re-borrowed buffer")
	}
	w.Reset()
	a3 := w.Get(2, 3)
	if a3 != a || a3.Data[0] != 0 {
		t.Fatalf("Get after GetDirty should zero the same slot")
	}
}

func TestWorkspaceReshapeWithinCapacity(t *testing.T) {
	w := NewWorkspaceOn(NewPool())
	defer w.Release()
	big := w.Get(4, 4)
	w.Reset()
	small := w.Get(2, 3)
	if &small.Data[0] != &big.Data[:1][0] {
		t.Fatalf("smaller request should reshape the slot's storage in place")
	}
	if small.Rows != 2 || small.Cols != 3 || len(small.Data) != 6 {
		t.Fatalf("reshape got %dx%d len %d", small.Rows, small.Cols, len(small.Data))
	}
	w.Reset()
	grown := w.Get(8, 8)
	if grown.Rows != 8 || grown.Cols != 8 {
		t.Fatalf("grown request got %dx%d", grown.Rows, grown.Cols)
	}
}

func TestWorkspaceVecDirty(t *testing.T) {
	w := NewWorkspaceOn(NewPool())
	defer w.Release()
	v := w.VecDirty(4)
	for i := range v {
		v[i] = 5
	}
	w.Reset()
	v2 := w.VecDirty(4)
	if &v2[0] != &v[0] || v2[0] != 5 {
		t.Fatalf("VecDirty should re-borrow the same storage unzeroed")
	}
	w.Reset()
	v3 := w.Vec(4)
	if &v3[0] != &v[0] || v3[0] != 0 {
		t.Fatalf("Vec should re-borrow the same storage zeroed")
	}
}

func TestWorkspaceReleaseReturnsToPool(t *testing.T) {
	p := NewPool()
	w := NewWorkspaceOn(p)
	m := w.Get(3, 3)
	w.Release()
	if got := p.Get(3, 3); got != m {
		t.Fatalf("Release should return buffers to the backing pool")
	}
	// The workspace stays usable after Release.
	again := w.Get(2, 2)
	if again == nil || again.Rows != 2 {
		t.Fatalf("workspace unusable after Release")
	}
	w.Release()
}

func TestAllocWorkspaceAlwaysFresh(t *testing.T) {
	w := NewAllocWorkspace()
	a := w.Get(2, 2)
	a.Fill(3)
	w.Reset()
	b := w.Get(2, 2)
	if b == a {
		t.Fatalf("alloc workspace must hand out fresh matrices")
	}
	for _, v := range b.Data {
		if v != 0 {
			t.Fatalf("alloc workspace Get not zeroed")
		}
	}
	// GetDirty in alloc mode is still fresh (and therefore zeroed): a
	// full-overwrite consumer cannot tell the difference, which is what
	// keeps pooled-vs-allocating training runs bit-identical.
	c := w.GetDirty(2, 2)
	for _, v := range c.Data {
		if v != 0 {
			t.Fatalf("alloc workspace GetDirty should be a fresh zeroed matrix")
		}
	}
	w.Release()
}

func TestWorkspaceSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are not meaningful under the race detector")
	}
	w := NewWorkspaceOn(NewPool())
	defer w.Release()
	iter := func() {
		w.Reset()
		a := w.Get(8, 8)
		b := w.GetDirty(8, 4)
		v := w.Vec(16)
		a.Data[0], b.Data[0], v[0] = 1, 2, 3
	}
	iter() // warm the slots
	allocs := testing.AllocsPerRun(100, iter)
	if allocs != 0 {
		t.Fatalf("steady-state workspace iteration allocates %v times", allocs)
	}
}
