package mat

import (
	"math"
	"math/rand"
)

// RandUniform fills a new rows x cols matrix with uniform values in
// [-scale, scale) drawn from rng.
func RandUniform(rng *rand.Rand, rows, cols int, scale float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

// GlorotUniform returns a rows x cols matrix initialised with the Glorot
// (Xavier) uniform scheme: U(-s, s) with s = sqrt(6/(fanIn+fanOut)). This
// is the initialisation used by every dense layer in the NN, autoencoder
// and GraphSAGE modules.
func GlorotUniform(rng *rand.Rand, rows, cols int) *Matrix {
	s := math.Sqrt(6.0 / float64(rows+cols))
	return RandUniform(rng, rows, cols, s)
}

// RandNormal fills a new rows x cols matrix with N(mean, std) samples.
func RandNormal(rng *rand.Rand, rows, cols int, mean, std float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()*std + mean
	}
	return m
}

// Perm returns a random permutation of [0, n) using rng. It is a thin
// wrapper so callers do not need math/rand directly.
func Perm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

// Shuffle permutes idx in place using rng.
func Shuffle(rng *rand.Rand, idx []int) {
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
}
