package mat

import (
	"math"
	"math/rand"
)

// The generic initialisers draw exactly the same rng.Float64 /
// NormFloat64 sequence at every element type and only round the result
// into storage precision. A float32 model seeded like a float64 model
// therefore starts from the rounded image of the same weights, which is
// what keeps the two training trajectories comparable in the
// equivalence suites.

// RandUniform fills a new rows x cols float64 matrix with uniform values
// in [-scale, scale) drawn from rng.
func RandUniform(rng *rand.Rand, rows, cols int, scale float64) *Matrix {
	return RandUniformOf[float64](rng, rows, cols, scale)
}

// RandUniformOf is RandUniform at any element type.
func RandUniformOf[T Float](rng *rand.Rand, rows, cols int, scale float64) *Dense[T] {
	m := NewOf[T](rows, cols)
	for i := range m.Data {
		m.Data[i] = T((rng.Float64()*2 - 1) * scale)
	}
	return m
}

// GlorotUniform returns a rows x cols float64 matrix initialised with the
// Glorot (Xavier) uniform scheme: U(-s, s) with s = sqrt(6/(fanIn+fanOut)).
// This is the initialisation used by every dense layer in the NN,
// autoencoder and GraphSAGE modules.
func GlorotUniform(rng *rand.Rand, rows, cols int) *Matrix {
	return GlorotUniformOf[float64](rng, rows, cols)
}

// GlorotUniformOf is GlorotUniform at any element type.
func GlorotUniformOf[T Float](rng *rand.Rand, rows, cols int) *Dense[T] {
	s := math.Sqrt(6.0 / float64(rows+cols))
	return RandUniformOf[T](rng, rows, cols, s)
}

// RandNormal fills a new rows x cols float64 matrix with N(mean, std)
// samples.
func RandNormal(rng *rand.Rand, rows, cols int, mean, std float64) *Matrix {
	return RandNormalOf[float64](rng, rows, cols, mean, std)
}

// RandNormalOf is RandNormal at any element type.
func RandNormalOf[T Float](rng *rand.Rand, rows, cols int, mean, std float64) *Dense[T] {
	m := NewOf[T](rows, cols)
	for i := range m.Data {
		m.Data[i] = T(rng.NormFloat64()*std + mean)
	}
	return m
}

// Perm returns a random permutation of [0, n) using rng. It is a thin
// wrapper so callers do not need math/rand directly.
func Perm(rng *rand.Rand, n int) []int { return rng.Perm(n) }

// Shuffle permutes idx in place using rng.
func Shuffle(rng *rand.Rand, idx []int) {
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
}
