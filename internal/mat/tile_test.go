package mat

import (
	"math"
	"math/rand"
	"testing"
)

// naiveMatMul is the textbook ijk reference: per output element, ascending-k
// accumulation from zero — the exact per-element order the ikj kernel (tiled
// or not) must reproduce.
func naiveMatMul[T Float](a, b *Dense[T]) *Dense[T] {
	out := NewOf[T](a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Cols; j++ {
			var s T
			for k := 0; k < a.Cols; k++ {
				s += arow[k] * b.At(k, j)
			}
			orow[j] = s
		}
	}
	return out
}

func matMulTileCase[T Float](t *testing.T, rows, inner, cols int) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	a := RandUniformOf[T](rng, rows, inner, 1)
	b := RandUniformOf[T](rng, inner, cols, 1)
	if len(b.Data) < matmulTileMinElems {
		t.Fatalf("case %dx%dx%d does not reach the tiled path (|b|=%d < %d)",
			rows, inner, cols, len(b.Data), matmulTileMinElems)
	}
	got := NewOf[T](rows, cols)
	MatMulInto(got, a, b)
	want := naiveMatMul(a, b)
	for i, v := range want.Data {
		if math.Float64bits(float64(got.Data[i])) != math.Float64bits(float64(v)) {
			t.Fatalf("tiled MatMulInto diverges at flat index %d: got %v want %v", i, got.Data[i], v)
		}
	}
}

// TestMatMulTiledMatchesUntiled pins the bit-identity contract of the
// cache-blocked k-tiling: tiles are visited in ascending k order, so every
// output element accumulates in exactly the untiled order.
func TestMatMulTiledMatchesUntiled(t *testing.T) {
	// 512*128 = 65536 b elements: tiled, parallel (work ≫ minParFlops).
	matMulTileCase[float64](t, 96, 512, 128)
	matMulTileCase[float32](t, 96, 512, 128)
	// Ragged k so the final partial tile is exercised.
	matMulTileCase[float64](t, 17, 517, 128)
}
