package mat

import "math"

// The reductions in this file accumulate in float64 regardless of the
// element type (see the package comment): a scalar accumulator costs no
// bandwidth, and float64 accumulation keeps the float32 path's losses,
// norms and softmax denominators close to the reference. For the float64
// instantiation every conversion below is the identity, so the generic
// code is bit-identical to the float64-only code it replaced.

// Dot returns the inner product of a and b, accumulated in float64. The
// slices must have equal length; the shorter length is used if they
// differ (callers in this repo always pass equal lengths, but slicing
// bugs should not read out of bounds).
func Dot[T Float](a, b []T) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// Axpy computes y += alpha*x in place. This is a vector accumulation, so
// it runs in storage precision (it is exactly the buffer traffic the
// float32 path halves).
func Axpy[T Float](alpha T, x, y []T) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Norm2 returns the Euclidean norm of v, accumulated in float64.
func Norm2[T Float](v []T) float64 {
	s := 0.0
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the elements of v, accumulated in float64.
func Sum[T Float](v []T) float64 {
	s := 0.0
	for _, x := range v {
		s += float64(x)
	}
	return s
}

// Mean returns the arithmetic mean of v (0 for an empty slice).
func Mean[T Float](v []T) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// Std returns the population standard deviation of v (0 for len < 2).
func Std[T Float](v []T) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		d := float64(x) - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// Argmax returns the index of the largest element of v (-1 for empty).
// Ties resolve to the first maximal index.
func Argmax[T Float](v []T) int {
	if len(v) == 0 {
		return -1
	}
	best, bi := v[0], 0
	for i := 1; i < len(v); i++ {
		if v[i] > best {
			best, bi = v[i], i
		}
	}
	return bi
}

// Softmax writes the softmax of src into dst (they may alias) using the
// numerically stable max-shift formulation. Both slices must have the
// same length. Exponentials and the denominator accumulate in float64.
func Softmax[T Float](dst, src []T) {
	if len(src) == 0 {
		return
	}
	max := src[0]
	for _, v := range src[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range src {
		e := math.Exp(float64(v - max))
		dst[i] = T(e)
		sum += e
	}
	if sum == 0 {
		uniform := T(1 / float64(len(dst)))
		for i := range dst {
			dst[i] = uniform
		}
		return
	}
	inv := T(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}

// SoftmaxRows applies Softmax to every row of m in place and returns m.
func SoftmaxRows[T Float](m *Dense[T]) *Dense[T] {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		Softmax(row, row)
	}
	return m
}

// OneHot returns a length-n vector with a 1 at index k (all zeros if k is
// out of range).
func OneHot(n, k int) []float64 {
	v := make([]float64, n)
	if k >= 0 && k < n {
		v[k] = 1
	}
	return v
}

// Clamp limits x to the interval [lo, hi].
func Clamp[T Float](x, lo, hi T) T {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
