package mat

import "math"

// Dot returns the inner product of a and b. The slices must have equal
// length; the shorter length is used if they differ (callers in this repo
// always pass equal lengths, but slicing bugs should not read out of
// bounds).
func Dot(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Sum returns the sum of the elements of v.
func Sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v (0 for an empty slice).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return Sum(v) / float64(len(v))
}

// Std returns the population standard deviation of v (0 for len < 2).
func Std(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	s := 0.0
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// Argmax returns the index of the largest element of v (-1 for empty).
// Ties resolve to the first maximal index.
func Argmax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best, bi := v[0], 0
	for i := 1; i < len(v); i++ {
		if v[i] > best {
			best, bi = v[i], i
		}
	}
	return bi
}

// Softmax writes the softmax of src into dst (they may alias) using the
// numerically stable max-shift formulation. Both slices must have the same
// length.
func Softmax(dst, src []float64) {
	if len(src) == 0 {
		return
	}
	max := src[0]
	for _, v := range src[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range src {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	if sum == 0 {
		uniform := 1 / float64(len(dst))
		for i := range dst {
			dst[i] = uniform
		}
		return
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// SoftmaxRows applies Softmax to every row of m in place and returns m.
func SoftmaxRows(m *Matrix) *Matrix {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		Softmax(row, row)
	}
	return m
}

// OneHot returns a length-n vector with a 1 at index k (all zeros if k is
// out of range).
func OneHot(n, k int) []float64 {
	v := make([]float64, n)
	if k >= 0 && k < n {
		v[k] = 1
	}
	return v
}

// Clamp limits x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
