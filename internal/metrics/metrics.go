// Package metrics implements the zero-dependency instrumentation layer
// of the serving daemon: counters, gauges and histograms rendered in the
// Prometheus text exposition format (version 0.0.4), the lingua franca
// every scrape pipeline understands.
//
// The package deliberately reimplements a small slice of the official
// client library instead of importing it — the repository's no-new-deps
// rule, and the serving hot path only needs lock-free Inc/Observe:
//
//   - Counter and Gauge are single atomic words.
//   - Histogram is a fixed bucket ladder of atomic words plus a CAS-added
//     float sum, so Observe never takes a lock.
//   - CounterVec adds one RWMutex-guarded map lookup for labelled
//     counters; callers on hot paths should hold the resolved *Counter.
//
// Metrics are registered on a Registry and rendered in registration
// order, with deterministic label ordering, so scrapes (and tests) see
// stable output.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is one registered family: it knows how to render its samples.
type metric interface {
	name() string
	render(w io.Writer)
}

// Registry holds a set of metric families. The zero value is not usable;
// use NewRegistry. Registration is not safe for concurrent use (wire
// metrics at startup); rendering and metric updates are.
type Registry struct {
	mu       sync.Mutex
	families []metric
	byName   map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name()]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", m.name()))
	}
	r.byName[m.name()] = m
	r.families = append(r.families, m)
}

// WriteTo renders every registered family in the Prometheus text format,
// in registration order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := append([]metric(nil), r.families...)
	r.mu.Unlock()
	cw := &countingWriter{w: w}
	for _, m := range fams {
		m.render(cw)
		if cw.err != nil {
			return cw.n, cw.err
		}
	}
	return cw.n, nil
}

// Handler returns an http.Handler serving the registry in the text
// exposition format — the /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// --- Counter -----------------------------------------------------------------

// Counter is a monotonically increasing integer metric.
type Counter struct {
	n         atomic.Uint64
	nm, help  string
	labelLine string // pre-rendered {k="v",...} for vec members, "" otherwise
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{nm: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n (which must be non-negative; counters only go up).
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

func (c *Counter) name() string { return c.nm }

func (c *Counter) render(w io.Writer) {
	header(w, c.nm, c.help, "counter")
	fmt.Fprintf(w, "%s%s %d\n", c.nm, c.labelLine, c.n.Load())
}

// --- CounterVec --------------------------------------------------------------

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct {
	nm, help string
	keys     []string
	mu       sync.RWMutex
	children map[string]*Counter
	order    []string
}

// CounterVec registers and returns a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("metrics: CounterVec needs at least one label")
	}
	v := &CounterVec{nm: name, help: help, keys: labels, children: make(map[string]*Counter)}
	r.register(v)
	return v
}

// With returns the child counter for the given label values (one per
// registered label, in order), creating it on first use. The returned
// counter may be retained; hot paths should resolve once and hold it.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", v.nm, len(v.keys), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[key]; c != nil {
		return c
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range v.keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	c = &Counter{nm: v.nm, help: v.help, labelLine: sb.String()}
	v.children[key] = c
	v.order = append(v.order, key)
	return c
}

func (v *CounterVec) name() string { return v.nm }

func (v *CounterVec) render(w io.Writer) {
	header(w, v.nm, v.help, "counter")
	v.mu.RLock()
	// Children render in sorted label order so output is independent of
	// first-use order.
	keys := append([]string(nil), v.order...)
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		v.mu.RLock()
		c := v.children[k]
		v.mu.RUnlock()
		fmt.Fprintf(w, "%s%s %d\n", c.nm, c.labelLine, c.n.Load())
	}
}

// --- Gauge -------------------------------------------------------------------

// Gauge is a metric that can go up and down, stored as float64 bits in
// one atomic word.
type Gauge struct {
	bits     atomic.Uint64
	nm, help string
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{nm: name, help: help}
	r.register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta via CAS (safe for concurrent adders).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one. Dec subtracts one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) name() string { return g.nm }

func (g *Gauge) render(w io.Writer) {
	header(w, g.nm, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.nm, formatFloat(g.Value()))
}

// GaugeFunc is a gauge whose value is computed at scrape time — the
// right shape for continuously-moving quantities (snapshot age, queue
// depth) where a stored value would be stale the instant it was set.
// fn must be safe for concurrent use and must not block.
type GaugeFunc struct {
	nm, help string
	fn       func() float64
}

// GaugeFunc registers a callback-backed gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{nm: name, help: help, fn: fn}
	r.register(g)
	return g
}

// Value invokes the callback.
func (g *GaugeFunc) Value() float64 { return g.fn() }

func (g *GaugeFunc) name() string { return g.nm }

func (g *GaugeFunc) render(w io.Writer) {
	header(w, g.nm, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.nm, formatFloat(g.fn()))
}

// --- Histogram ---------------------------------------------------------------

// Histogram counts observations into a fixed ladder of upper-bound
// buckets, rendered cumulatively with the conventional _bucket/_sum/_count
// series. Observe is lock-free.
type Histogram struct {
	nm, help string
	bounds   []float64       // strictly increasing upper bounds, +Inf implicit
	counts   []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	sumBits  atomic.Uint64
	total    atomic.Uint64
}

// DefBuckets is the default latency ladder, in seconds: 0.5ms to 5s.
func DefBuckets() []float64 {
	return []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5}
}

// LinearBuckets returns count buckets starting at start, stepping by width.
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count buckets starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram registers and returns a histogram with the given upper
// bounds, which must be strictly increasing. A +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: Histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s bucket bounds not increasing at %d", name, i))
		}
	}
	h := &Histogram{
		nm:     name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns an estimate of the q-quantile (0 < q <= 1) by linear
// interpolation within the owning bucket — the same estimate a PromQL
// histogram_quantile would compute. Returns NaN with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	cum := uint64(0)
	lower := 0.0
	for i, bound := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum+c) >= rank {
			if c == 0 {
				return bound
			}
			frac := (rank - float64(cum)) / float64(c)
			return lower + frac*(bound-lower)
		}
		cum += c
		lower = bound
	}
	// Overflow bucket: no finite upper bound, report the last finite one.
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) name() string { return h.nm }

func (h *Histogram) render(w io.Writer) {
	header(w, h.nm, h.help, "histogram")
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.nm, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, cum)
	fmt.Fprintf(w, "%s_sum %s\n", h.nm, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count %d\n", h.nm, h.total.Load())
}
