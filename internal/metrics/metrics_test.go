package metrics

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("trail_test_total", "a test counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# HELP trail_test_total a test counter\n" +
		"# TYPE trail_test_total counter\n" +
		"trail_test_total 5\n"
	if sb.String() != want {
		t.Fatalf("render:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestCounterVecRender(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("trail_http_requests_total", "requests", "path", "code")
	v.With("/v1/attribute", "200").Add(3)
	v.With("/healthz", "200").Inc()
	v.With("/v1/attribute", "404").Inc()
	var sb strings.Builder
	r.WriteTo(&sb)
	out := sb.String()
	for _, line := range []string{
		`trail_http_requests_total{path="/v1/attribute",code="200"} 3`,
		`trail_http_requests_total{path="/healthz",code="200"} 1`,
		`trail_http_requests_total{path="/v1/attribute",code="404"} 1`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing line %q in:\n%s", line, out)
		}
	}
	if strings.Count(out, "# TYPE") != 1 {
		t.Errorf("want one TYPE header, got:\n%s", out)
	}
	// Same label values resolve to the same child.
	if v.With("/healthz", "200").Value() != 1 {
		t.Error("child lookup not stable")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("trail_inflight", "in-flight requests")
	g.Set(2.5)
	g.Inc()
	g.Dec()
	g.Add(0.5)
	if got := g.Value(); got != 3.0 {
		t.Fatalf("Value = %v, want 3", got)
	}
	var sb strings.Builder
	r.WriteTo(&sb)
	if !strings.Contains(sb.String(), "trail_inflight 3\n") {
		t.Fatalf("render:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "# TYPE trail_inflight gauge\n") {
		t.Fatalf("missing gauge TYPE header:\n%s", sb.String())
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("trail_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.56) > 1e-9 {
		t.Fatalf("Sum = %v, want 5.56", h.Sum())
	}
	var sb strings.Builder
	r.WriteTo(&sb)
	out := sb.String()
	for _, line := range []string{
		`trail_latency_seconds_bucket{le="0.01"} 2`,
		`trail_latency_seconds_bucket{le="0.1"} 3`,
		`trail_latency_seconds_bucket{le="1"} 4`,
		`trail_latency_seconds_bucket{le="+Inf"} 5`,
		`trail_latency_seconds_count 5`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
	// Median falls in the (0.01, 0.1] bucket; interpolation stays within it.
	q := h.Quantile(0.5)
	if q <= 0.01 || q > 0.1 {
		t.Errorf("Quantile(0.5) = %v, want within (0.01, 0.1]", q)
	}
	if !math.IsNaN(NewRegistry().Histogram("empty", "", []float64{1}).Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
}

func TestHistogramBoundaryLE(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	var sb strings.Builder
	r.WriteTo(&sb)
	if !strings.Contains(sb.String(), `h_bucket{le="1"} 1`+"\n") {
		t.Fatalf("boundary observation not in le=1 bucket:\n%s", sb.String())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", DefBuckets())
	v := r.CounterVec("v", "", "k")
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
				v.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*each {
		t.Errorf("counter = %d, want %d", c.Value(), workers*each)
	}
	if g.Value() != workers*each {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*each)
	}
	if h.Count() != workers*each {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*each)
	}
	if v.With("a").Value() != workers*each {
		t.Errorf("vec = %d, want %d", v.With("a").Value(), workers*each)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "x_total 1") {
		t.Errorf("body: %s", buf[:n])
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	r := NewRegistry()
	r.Counter("dup", "")
	r.Gauge("dup", "")
}

func TestEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("e", `multi
line help`, "k").With(`va"l\ue`).Inc()
	var sb strings.Builder
	r.WriteTo(&sb)
	out := sb.String()
	if !strings.Contains(out, `# HELP e multi\nline help`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `e{k="va\"l\\ue"} 1`) {
		t.Errorf("label not escaped:\n%s", out)
	}
}

// TestGaugeFunc: the value is computed at render time, not registration
// time.
func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.GaugeFunc("trail_test_age_seconds", "computed at scrape", func() float64 { return v })
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trail_test_age_seconds 1.5") {
		t.Fatalf("render missing computed value:\n%s", buf.String())
	}
	v = 4
	buf.Reset()
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "trail_test_age_seconds 4") {
		t.Fatalf("render did not recompute:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "# TYPE trail_test_age_seconds gauge") {
		t.Fatalf("missing TYPE header:\n%s", buf.String())
	}
}
