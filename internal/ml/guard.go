package ml

import (
	"fmt"
	"math"

	"trail/internal/mat"
)

// Numeric guardrails for the training loops. Divergence — a NaN or Inf
// loss, or non-finite gradients — is detected at the step where it
// happens and surfaced as a typed error so the caller can roll back to
// its best checkpoint instead of persisting (or keeping in memory) a
// poisoned model.
//
// The helpers are generic over the parameter element type. Norms and the
// clip scale accumulate in float64 at every precision (see internal/mat's
// package comment); GradNorm's serial parameter-then-element chain is
// the defining grouping and must not depend on worker count.

// DivergenceError reports non-finite numerics during training.
type DivergenceError struct {
	// Quantity names what diverged ("loss", "gradient", ...).
	Quantity string
	// Epoch is the zero-based epoch in which divergence was detected.
	Epoch int
	// Value is the offending number (NaN or ±Inf) when a single value is
	// at fault.
	Value float64
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("ml: training diverged at epoch %d: non-finite %s (%v)", e.Epoch, e.Quantity, e.Value)
}

// CheckLoss returns a DivergenceError when the loss is NaN or Inf.
func CheckLoss(epoch int, loss float64) error {
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		return &DivergenceError{Quantity: "loss", Epoch: epoch, Value: loss}
	}
	return nil
}

// CheckGrads scans every accumulated gradient for NaN or Inf.
func CheckGrads[T mat.Float](epoch int, params []*ParamOf[T]) error {
	for _, p := range params {
		for _, g := range p.G.Data {
			gf := float64(g)
			if math.IsNaN(gf) || math.IsInf(gf, 0) {
				return &DivergenceError{Quantity: "gradient", Epoch: epoch, Value: gf}
			}
		}
	}
	return nil
}

// GradNorm returns the global L2 norm over every accumulated gradient.
// The sum of squares is one serial chain in parameter-then-element order:
// that chain is the defining grouping ClipGrads scales by, so it must not
// depend on worker count, and at a few tens of thousands of elements per
// step it is noise next to the matmuls it guards. It allocates nothing.
func GradNorm[T mat.Float](params []*ParamOf[T]) float64 {
	sum := 0.0
	for _, p := range params {
		for _, g := range p.G.Data {
			sum += float64(g) * float64(g)
		}
	}
	return math.Sqrt(sum)
}

// ClipGrads rescales all gradients so their global L2 norm does not
// exceed maxNorm (no-op when maxNorm <= 0 or the norm is already within
// bounds). It returns the pre-clip norm.
func ClipGrads[T mat.Float](params []*ParamOf[T], maxNorm float64) float64 {
	norm := GradNorm(params)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := maxNorm / norm
	for _, p := range params {
		for i := range p.G.Data {
			p.G.Data[i] = T(float64(p.G.Data[i]) * scale)
		}
	}
	return norm
}

// CloneParams deep-copies parameter weights (not gradients) — the
// lightweight best-checkpoint snapshot the rollback path restores from.
func CloneParams[T mat.Float](params []*ParamOf[T]) []*mat.Dense[T] {
	out := make([]*mat.Dense[T], len(params))
	for i, p := range params {
		out[i] = p.W.Clone()
	}
	return out
}

// CopyParams copies parameter weights into an existing snapshot taken
// with CloneParams, reusing its storage — the allocation-free refresh of
// the best-checkpoint snapshot in the training loops. Shapes must match.
func CopyParams[T mat.Float](snap []*mat.Dense[T], params []*ParamOf[T]) error {
	if len(snap) != len(params) {
		return fmt.Errorf("ml: CopyParams: %d snapshots for %d params", len(snap), len(params))
	}
	for i, p := range params {
		if snap[i].Rows != p.W.Rows || snap[i].Cols != p.W.Cols {
			return fmt.Errorf("ml: CopyParams: param %d is %dx%d, snapshot is %dx%d",
				i, p.W.Rows, p.W.Cols, snap[i].Rows, snap[i].Cols)
		}
	}
	for i, p := range params {
		copy(snap[i].Data, p.W.Data)
	}
	return nil
}

// RestoreParams copies snapshot weights back into params and zeroes the
// gradients. Shapes must match (they always do for a snapshot taken from
// the same model).
func RestoreParams[T mat.Float](params []*ParamOf[T], snap []*mat.Dense[T]) error {
	if len(snap) != len(params) {
		return fmt.Errorf("ml: RestoreParams: %d snapshots for %d params", len(snap), len(params))
	}
	for i, p := range params {
		if snap[i].Rows != p.W.Rows || snap[i].Cols != p.W.Cols {
			return fmt.Errorf("ml: RestoreParams: param %d is %dx%d, snapshot is %dx%d",
				i, p.W.Rows, p.W.Cols, snap[i].Rows, snap[i].Cols)
		}
	}
	for i, p := range params {
		copy(p.W.Data, snap[i].Data)
		p.G.Zero()
	}
	return nil
}
