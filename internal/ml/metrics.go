// Package ml provides the classical machine-learning substrate of the
// reproduction: evaluation metrics, preprocessing (standard scaling,
// SMOTE oversampling), stratified k-fold splitting, and the feed-forward
// neural network classifier of §VI-A, all implemented on the stdlib.
package ml

import (
	"fmt"
	"strings"

	"trail/internal/mat"
)

// Classifier is the contract shared by every attribution model in this
// repository (NN here, Random Forest and gradient-boosted trees in
// internal/tree). Fit trains on rows of X with class labels y in
// [0, classes); PredictProba returns one probability row per input row.
type Classifier interface {
	Fit(X *mat.Matrix, y []int) error
	PredictProba(X *mat.Matrix) *mat.Matrix
}

// Predict returns the argmax class per row of a Classifier's
// probabilities.
func Predict(c Classifier, X *mat.Matrix) []int {
	probs := c.PredictProba(X)
	out := make([]int, probs.Rows)
	for i := range out {
		out[i] = mat.Argmax(probs.Row(i))
	}
	return out
}

// Accuracy returns the fraction of positions where pred equals truth.
func Accuracy(truth, pred []int) float64 {
	if len(truth) == 0 || len(truth) != len(pred) {
		return 0
	}
	ok := 0
	for i, t := range truth {
		if pred[i] == t {
			ok++
		}
	}
	return float64(ok) / float64(len(truth))
}

// BalancedAccuracy returns the unweighted mean of per-class recalls over
// classes present in truth — the paper's B-Acc metric for the imbalanced
// APT distribution.
func BalancedAccuracy(truth, pred []int, classes int) float64 {
	if len(truth) == 0 || len(truth) != len(pred) {
		return 0
	}
	correct := make([]int, classes)
	total := make([]int, classes)
	for i, t := range truth {
		if t < 0 || t >= classes {
			continue
		}
		total[t]++
		if pred[i] == t {
			correct[t]++
		}
	}
	sum, n := 0.0, 0
	for c := 0; c < classes; c++ {
		if total[c] > 0 {
			sum += float64(correct[c]) / float64(total[c])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ConfusionMatrix counts truth (rows) vs prediction (columns).
type ConfusionMatrix struct {
	Classes int
	Counts  [][]int
}

// NewConfusionMatrix tallies a confusion matrix. Out-of-range labels are
// ignored.
func NewConfusionMatrix(truth, pred []int, classes int) *ConfusionMatrix {
	cm := &ConfusionMatrix{Classes: classes, Counts: make([][]int, classes)}
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, classes)
	}
	for i, t := range truth {
		p := pred[i]
		if t >= 0 && t < classes && p >= 0 && p < classes {
			cm.Counts[t][p]++
		}
	}
	return cm
}

// Render pretties the confusion matrix restricted to classes that appear,
// using the provided class names.
func (cm *ConfusionMatrix) Render(names []string) string {
	var present []int
	for c := 0; c < cm.Classes; c++ {
		rowAny, colAny := false, false
		for j := 0; j < cm.Classes; j++ {
			rowAny = rowAny || cm.Counts[c][j] > 0
			colAny = colAny || cm.Counts[j][c] > 0
		}
		if rowAny || colAny {
			present = append(present, c)
		}
	}
	name := func(c int) string {
		if c < len(names) {
			return names[c]
		}
		return fmt.Sprintf("class%d", c)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "truth\\pred")
	for _, c := range present {
		fmt.Fprintf(&b, "%10s", trunc(name(c), 9))
	}
	b.WriteByte('\n')
	for _, r := range present {
		fmt.Fprintf(&b, "%-12s", trunc(name(r), 11))
		for _, c := range present {
			fmt.Fprintf(&b, "%10d", cm.Counts[r][c])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func trunc(s string, n int) string {
	if len(s) > n {
		return s[:n]
	}
	return s
}

// MeanStd summarises a slice of fold scores as mean ± population std.
type MeanStd struct {
	Mean, Std float64
}

// Summarize computes MeanStd over scores.
func Summarize(scores []float64) MeanStd {
	return MeanStd{Mean: mat.Mean(scores), Std: mat.Std(scores)}
}

// String renders as "0.8236 ± 0.0061".
func (m MeanStd) String() string { return fmt.Sprintf("%.4f ± %.4f", m.Mean, m.Std) }
