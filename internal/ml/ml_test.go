package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trail/internal/mat"
)

// blobs generates a k-class Gaussian-blob dataset that a working
// classifier must separate easily.
func blobs(rng *rand.Rand, n, d, k int, spread float64) (*mat.Matrix, []int) {
	X := mat.New(n, d)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		y[i] = c
		row := X.Row(i)
		for j := range row {
			center := 0.0
			if j%k == c {
				center = 3
			}
			row[j] = center + rng.NormFloat64()*spread
		}
	}
	return X, y
}

func TestNNLearnsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := blobs(rng, 300, 10, 3, 0.5)
	cfg := DefaultNNConfig()
	cfg.Hidden = []int{32, 16}
	cfg.Epochs = 30
	nn := NewNN(cfg)
	if err := nn.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	acc := Accuracy(y, Predict(nn, X))
	if acc < 0.95 {
		t.Fatalf("NN training accuracy %.3f < 0.95 on separable blobs", acc)
	}
}

func TestNNProbabilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, y := blobs(rng, 90, 6, 3, 0.5)
	nn := NewNN(NNConfig{Hidden: []int{16}, Epochs: 5, LR: 1e-3, BatchSize: 16, Seed: 1})
	if err := nn.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	probs := nn.PredictProba(X)
	for i := 0; i < probs.Rows; i++ {
		if s := mat.Sum(probs.Row(i)); math.Abs(s-1) > 1e-6 {
			t.Fatalf("row %d probs sum %v", i, s)
		}
	}
}

func TestNNFitErrors(t *testing.T) {
	nn := NewNN(DefaultNNConfig())
	if err := nn.Fit(mat.New(0, 3), nil); err == nil {
		t.Fatal("expected error on empty training set")
	}
	if err := nn.Fit(mat.New(2, 3), []int{0}); err == nil {
		t.Fatal("expected error on rows/labels mismatch")
	}
}

func TestAccuracyMetrics(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2}
	pred := []int{0, 1, 1, 1, 0, 0}
	if got := Accuracy(truth, pred); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("accuracy %v", got)
	}
	// Per-class recalls: 1/2, 2/2, 0/2 -> balanced = 0.5.
	if got := BalancedAccuracy(truth, pred, 3); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("balanced accuracy %v", got)
	}
}

func TestBalancedAccuracyIgnoresAbsentClasses(t *testing.T) {
	truth := []int{0, 0, 1}
	pred := []int{0, 0, 1}
	if got := BalancedAccuracy(truth, pred, 22); got != 1 {
		t.Fatalf("balanced accuracy with absent classes = %v, want 1", got)
	}
}

func TestConfusionMatrix(t *testing.T) {
	cm := NewConfusionMatrix([]int{0, 0, 1}, []int{0, 1, 1}, 2)
	if cm.Counts[0][0] != 1 || cm.Counts[0][1] != 1 || cm.Counts[1][1] != 1 {
		t.Fatalf("confusion counts wrong: %+v", cm.Counts)
	}
	if s := cm.Render([]string{"a", "b"}); len(s) == 0 {
		t.Fatal("empty render")
	}
}

func TestScalerZeroMeanUnitVar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X := mat.RandNormal(rng, 200, 4, 7, 3)
	s := FitScaler(X)
	Z := s.Transform(X)
	for j := 0; j < 4; j++ {
		col := make([]float64, Z.Rows)
		for i := range col {
			col[i] = Z.At(i, j)
		}
		if m := mat.Mean(col); math.Abs(m) > 1e-9 {
			t.Fatalf("col %d mean %v", j, m)
		}
		if sd := mat.Std(col); math.Abs(sd-1) > 1e-9 {
			t.Fatalf("col %d std %v", j, sd)
		}
	}
}

func TestScalerConstantColumn(t *testing.T) {
	X := mat.FromRows([][]float64{{5, 1}, {5, 2}, {5, 3}})
	s := FitScaler(X)
	Z := s.Transform(X)
	for i := 0; i < 3; i++ {
		if Z.At(i, 0) != 0 {
			t.Fatalf("constant column should map to 0, got %v", Z.At(i, 0))
		}
	}
}

func TestSMOTEBalances(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// 40 of class 0, 8 of class 1.
	rows := [][]float64{}
	y := []int{}
	for i := 0; i < 40; i++ {
		rows = append(rows, []float64{rng.NormFloat64(), rng.NormFloat64()})
		y = append(y, 0)
	}
	for i := 0; i < 8; i++ {
		rows = append(rows, []float64{5 + rng.NormFloat64(), 5 + rng.NormFloat64()})
		y = append(y, 1)
	}
	X := mat.FromRows(rows)
	Xb, yb := SMOTE(rng, X, y, 2, 5)
	counts := map[int]int{}
	for _, c := range yb {
		counts[c]++
	}
	if counts[0] != counts[1] {
		t.Fatalf("SMOTE did not balance: %v", counts)
	}
	// Synthetic minority points must lie in the minority region, not the
	// majority one (interpolation property).
	for i := X.Rows; i < Xb.Rows; i++ {
		if yb[i] != 1 {
			t.Fatalf("synthetic sample %d has majority label", i)
		}
		if Xb.At(i, 0) < 2 {
			t.Fatalf("synthetic minority point out of region: %v", Xb.Row(i))
		}
	}
}

func TestStratifiedKFoldProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(100)
		y := make([]int, n)
		for i := range y {
			y[i] = rng.Intn(4)
		}
		k := 5
		folds := StratifiedKFold(rng, y, k)
		seen := make(map[int]int)
		for _, fold := range folds {
			for _, i := range fold {
				seen[i]++
			}
		}
		if len(seen) != n {
			return false // partition must cover all samples
		}
		for _, c := range seen {
			if c != 1 {
				return false // exactly once
			}
		}
		// Stratification: class counts per fold within 1 of each other.
		for c := 0; c < 4; c++ {
			min, max := n, 0
			for _, fold := range folds {
				cnt := 0
				for _, i := range fold {
					if y[i] == c {
						cnt++
					}
				}
				if cnt < min {
					min = cnt
				}
				if cnt > max {
					max = cnt
				}
			}
			if max-min > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestComplement(t *testing.T) {
	got := Complement(5, []int{1, 3})
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("complement %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("complement %v", got)
		}
	}
}

func TestMode(t *testing.T) {
	if Mode(nil) != -1 {
		t.Fatal("Mode(nil)")
	}
	if Mode([]int{2, 1, 2, 3}) != 2 {
		t.Fatal("Mode basic")
	}
	if Mode([]int{1, 2}) != 1 {
		t.Fatal("Mode tie should pick smallest")
	}
}

func TestAdamReducesLoss(t *testing.T) {
	// Minimise ||w - target||^2 directly through the optimiser.
	p := &Param{W: mat.New(1, 4), G: mat.New(1, 4)}
	target := []float64{1, -2, 3, 0.5}
	opt := NewAdam(0.1, []*Param{p})
	loss := func() float64 {
		s := 0.0
		for j, tv := range target {
			d := p.W.Data[j] - tv
			s += d * d
		}
		return s
	}
	start := loss()
	for i := 0; i < 200; i++ {
		for j, tv := range target {
			p.G.Data[j] = 2 * (p.W.Data[j] - tv)
		}
		opt.Step()
	}
	if end := loss(); end > start/100 {
		t.Fatalf("Adam failed to optimise: %v -> %v", start, end)
	}
}
