package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"trail/internal/mat"
)

// layer is one differentiable stage of the feed-forward network.
type layer interface {
	forward(x *mat.Matrix, train bool) *mat.Matrix
	backward(grad *mat.Matrix) *mat.Matrix
	params() []*Param
}

// ParamOf couples a trainable tensor with its gradient accumulator, at
// the model's element type.
type ParamOf[T mat.Float] struct {
	W *mat.Dense[T]
	G *mat.Dense[T]
}

// Param is the float64 instantiation of ParamOf.
type Param = ParamOf[float64]

// --- Dense -------------------------------------------------------------------

type dense struct {
	w, b    *Param
	inCache *mat.Matrix
}

func newDense(rng *rand.Rand, in, out int) *dense {
	return &dense{
		w: &Param{W: mat.GlorotUniform(rng, in, out), G: mat.New(in, out)},
		b: &Param{W: mat.New(1, out), G: mat.New(1, out)},
	}
}

func (d *dense) forward(x *mat.Matrix, train bool) *mat.Matrix {
	if train {
		d.inCache = x
	}
	out := mat.MatMul(x, d.w.W)
	out.AddRowVector(d.b.W.Row(0))
	return out
}

func (d *dense) backward(grad *mat.Matrix) *mat.Matrix {
	dw := mat.MatMulTransA(d.inCache, grad)
	mat.AddInPlace(d.w.G, dw)
	bg := d.b.G.Row(0)
	for i := 0; i < grad.Rows; i++ {
		mat.Axpy(1, grad.Row(i), bg)
	}
	return mat.MatMulTransB(grad, d.w.W)
}

func (d *dense) params() []*Param { return []*Param{d.w, d.b} }

// --- ReLU --------------------------------------------------------------------

type relu struct {
	mask *mat.Matrix
}

func (r *relu) forward(x *mat.Matrix, train bool) *mat.Matrix {
	out := x.Clone()
	if train {
		r.mask = mat.New(x.Rows, x.Cols)
	}
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
		} else if train {
			r.mask.Data[i] = 1
		}
	}
	return out
}

func (r *relu) backward(grad *mat.Matrix) *mat.Matrix {
	return mat.Hadamard(grad, r.mask)
}

func (r *relu) params() []*Param { return nil }

// --- BatchNorm ----------------------------------------------------------------

type batchNorm struct {
	gamma, beta     *Param
	runMean, runVar []float64
	momentum, eps   float64
	xhat            *mat.Matrix
	invStd          []float64
}

func newBatchNorm(dim int) *batchNorm {
	bn := &batchNorm{
		gamma:    &Param{W: mat.New(1, dim), G: mat.New(1, dim)},
		beta:     &Param{W: mat.New(1, dim), G: mat.New(1, dim)},
		runMean:  make([]float64, dim),
		runVar:   make([]float64, dim),
		momentum: 0.9,
		eps:      1e-5,
	}
	bn.gamma.W.Fill(1)
	for j := range bn.runVar {
		bn.runVar[j] = 1
	}
	return bn
}

func (bn *batchNorm) forward(x *mat.Matrix, train bool) *mat.Matrix {
	dim := x.Cols
	out := mat.New(x.Rows, dim)
	gamma, beta := bn.gamma.W.Row(0), bn.beta.W.Row(0)
	if !train || x.Rows < 2 {
		for i := 0; i < x.Rows; i++ {
			src, dst := x.Row(i), out.Row(i)
			for j := 0; j < dim; j++ {
				xh := (src[j] - bn.runMean[j]) / math.Sqrt(bn.runVar[j]+bn.eps)
				dst[j] = gamma[j]*xh + beta[j]
			}
		}
		return out
	}
	mean := x.ColMeans()
	variance := make([]float64, dim)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j := 0; j < dim; j++ {
			d := row[j] - mean[j]
			variance[j] += d * d
		}
	}
	n := float64(x.Rows)
	bn.invStd = make([]float64, dim)
	for j := 0; j < dim; j++ {
		variance[j] /= n
		bn.invStd[j] = 1 / math.Sqrt(variance[j]+bn.eps)
		bn.runMean[j] = bn.momentum*bn.runMean[j] + (1-bn.momentum)*mean[j]
		bn.runVar[j] = bn.momentum*bn.runVar[j] + (1-bn.momentum)*variance[j]
	}
	bn.xhat = mat.New(x.Rows, dim)
	for i := 0; i < x.Rows; i++ {
		src, dst, xh := x.Row(i), out.Row(i), bn.xhat.Row(i)
		for j := 0; j < dim; j++ {
			xh[j] = (src[j] - mean[j]) * bn.invStd[j]
			dst[j] = gamma[j]*xh[j] + beta[j]
		}
	}
	return out
}

func (bn *batchNorm) backward(grad *mat.Matrix) *mat.Matrix {
	n := float64(grad.Rows)
	dim := grad.Cols
	gamma := bn.gamma.W.Row(0)
	gG, bG := bn.gamma.G.Row(0), bn.beta.G.Row(0)

	sumDy := make([]float64, dim)
	sumDyXhat := make([]float64, dim)
	for i := 0; i < grad.Rows; i++ {
		g, xh := grad.Row(i), bn.xhat.Row(i)
		for j := 0; j < dim; j++ {
			sumDy[j] += g[j]
			sumDyXhat[j] += g[j] * xh[j]
		}
	}
	for j := 0; j < dim; j++ {
		gG[j] += sumDyXhat[j]
		bG[j] += sumDy[j]
	}
	out := mat.New(grad.Rows, dim)
	for i := 0; i < grad.Rows; i++ {
		g, xh, dst := grad.Row(i), bn.xhat.Row(i), out.Row(i)
		for j := 0; j < dim; j++ {
			dst[j] = gamma[j] * bn.invStd[j] / n *
				(n*g[j] - sumDy[j] - xh[j]*sumDyXhat[j])
		}
	}
	return out
}

func (bn *batchNorm) params() []*Param { return []*Param{bn.gamma, bn.beta} }

// --- Dropout -----------------------------------------------------------------

type dropout struct {
	rate float64
	rng  *rand.Rand
	mask *mat.Matrix
}

func (d *dropout) forward(x *mat.Matrix, train bool) *mat.Matrix {
	if !train || d.rate <= 0 {
		return x
	}
	keep := 1 - d.rate
	d.mask = mat.New(x.Rows, x.Cols)
	out := mat.New(x.Rows, x.Cols)
	scale := 1 / keep
	for i, v := range x.Data {
		if d.rng.Float64() < keep {
			d.mask.Data[i] = scale
			out.Data[i] = v * scale
		}
	}
	return out
}

func (d *dropout) backward(grad *mat.Matrix) *mat.Matrix {
	if d.mask == nil {
		return grad
	}
	return mat.Hadamard(grad, d.mask)
}

func (d *dropout) params() []*Param { return nil }

// --- Adam --------------------------------------------------------------------

// AdamOf is the Adam optimiser (Kingma & Ba) over a fixed parameter set
// at element type T. Hyperparameters, bias corrections and every per-
// element update compute in float64; only the stored weights and moments
// round to T (the identity at float64, so the reference path is
// bit-identical to the pre-generic optimiser).
type AdamOf[T mat.Float] struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  []*mat.Dense[T]
	params                []*ParamOf[T]
}

// Adam is the float64 instantiation of AdamOf.
type Adam = AdamOf[float64]

// NewAdam prepares float64 optimiser state for params.
func NewAdam(lr float64, params []*Param) *Adam { return NewAdamOf(lr, params) }

// NewAdamOf prepares optimiser state for params at any element type.
func NewAdamOf[T mat.Float](lr float64, params []*ParamOf[T]) *AdamOf[T] {
	a := &AdamOf[T]{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	for _, p := range params {
		a.m = append(a.m, mat.NewOf[T](p.W.Rows, p.W.Cols))
		a.v = append(a.v, mat.NewOf[T](p.W.Rows, p.W.Cols))
	}
	return a
}

// Step applies one Adam update from the accumulated gradients and zeroes
// them.
func (a *AdamOf[T]) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.G.Data {
			gf := float64(g)
			mf := a.Beta1*float64(m.Data[j]) + (1-a.Beta1)*gf
			vf := a.Beta2*float64(v.Data[j]) + (1-a.Beta2)*gf*gf
			m.Data[j] = T(mf)
			v.Data[j] = T(vf)
			mhat := mf / bc1
			vhat := vf / bc2
			p.W.Data[j] = T(float64(p.W.Data[j]) - a.LR*mhat/(math.Sqrt(vhat)+a.Eps))
		}
		p.G.Zero()
	}
}

// --- Network -----------------------------------------------------------------

// NNConfig configures the feed-forward classifier. The zero value is not
// usable; start from DefaultNNConfig or PaperNNConfig.
type NNConfig struct {
	// Hidden lists the hidden layer widths.
	Hidden []int
	// DropoutRate is applied after the first DropoutLayers hidden layers.
	DropoutRate   float64
	DropoutLayers int
	LR            float64
	Epochs        int
	BatchSize     int
	Seed          int64
	// Classes is the output dimension; if 0, inferred as max(y)+1 at Fit.
	Classes int
	// ClipNorm caps the global gradient L2 norm per step (0 disables
	// clipping). See guard.go.
	ClipNorm float64
	// Quiet suppresses any future logging hooks (reserved).
	Quiet bool
}

// PaperNNConfig is the architecture of §VI-A: 2048-1024-512-128-64 hidden
// units, ReLU + batch-norm between layers, 50% dropout in the first three
// hidden layers. It is expensive in pure Go; the experiment harness uses
// DefaultNNConfig unless told otherwise.
func PaperNNConfig() NNConfig {
	return NNConfig{
		Hidden:        []int{2048, 1024, 512, 128, 64},
		DropoutRate:   0.5,
		DropoutLayers: 3,
		LR:            1e-3,
		Epochs:        30,
		BatchSize:     64,
		Seed:          1,
	}
}

// DefaultNNConfig is a scaled-down architecture with the same shape
// (wide→narrow, batch-norm, front-loaded dropout) that trains quickly on
// the synthetic datasets.
func DefaultNNConfig() NNConfig {
	return NNConfig{
		Hidden:        []int{256, 128, 64},
		DropoutRate:   0.5,
		DropoutLayers: 2,
		LR:            1e-3,
		Epochs:        25,
		BatchSize:     64,
		Seed:          1,
	}
}

// NN is the feed-forward softmax classifier.
type NN struct {
	Config  NNConfig
	layers  []layer
	classes int
	rng     *rand.Rand
}

// NewNN returns an untrained network.
func NewNN(cfg NNConfig) *NN {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.LR <= 0 {
		cfg.LR = 1e-3
	}
	return &NN{Config: cfg}
}

// Fit trains the network with Adam on softmax cross-entropy.
func (n *NN) Fit(X *mat.Matrix, y []int) error {
	if X.Rows != len(y) {
		return fmt.Errorf("ml: NN.Fit rows %d != labels %d", X.Rows, len(y))
	}
	if X.Rows == 0 {
		return errors.New("ml: NN.Fit empty training set")
	}
	n.classes = n.Config.Classes
	if n.classes == 0 {
		for _, c := range y {
			if c+1 > n.classes {
				n.classes = c + 1
			}
		}
	}
	n.rng = rand.New(rand.NewSource(n.Config.Seed))
	n.buildLayers(X.Cols)

	var params []*Param
	for _, l := range n.layers {
		params = append(params, l.params()...)
	}
	opt := NewAdam(n.Config.LR, params)

	idx := make([]int, X.Rows)
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < n.Config.Epochs; epoch++ {
		mat.Shuffle(n.rng, idx)
		for start := 0; start < len(idx); start += n.Config.BatchSize {
			end := start + n.Config.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			xb := X.SelectRows(batch)
			out := xb
			for _, l := range n.layers {
				out = l.forward(out, true)
			}
			grad, loss := softmaxCEGrad(out, y, batch)
			if err := CheckLoss(epoch, loss); err != nil {
				return err
			}
			for i := len(n.layers) - 1; i >= 0; i-- {
				grad = n.layers[i].backward(grad)
			}
			if norm := ClipGrads(params, n.Config.ClipNorm); math.IsNaN(norm) || math.IsInf(norm, 0) {
				return &DivergenceError{Quantity: "gradient", Epoch: epoch, Value: norm}
			}
			opt.Step()
		}
	}
	return nil
}

func (n *NN) buildLayers(inputDim int) {
	n.layers = n.layers[:0]
	prev := inputDim
	for i, h := range n.Config.Hidden {
		n.layers = append(n.layers, newDense(n.rng, prev, h), &relu{}, newBatchNorm(h))
		if i < n.Config.DropoutLayers && n.Config.DropoutRate > 0 {
			n.layers = append(n.layers, &dropout{rate: n.Config.DropoutRate, rng: n.rng})
		}
		prev = h
	}
	n.layers = append(n.layers, newDense(n.rng, prev, n.classes))
}

// softmaxCEGrad converts logits to probabilities and returns the mean
// cross-entropy gradient (probs - onehot)/batch plus the mean NLL loss,
// which the trainer's divergence guard inspects.
func softmaxCEGrad(logits *mat.Matrix, y []int, batch []int) (*mat.Matrix, float64) {
	grad := logits.Clone()
	mat.SoftmaxRows(grad)
	inv := 1 / float64(len(batch))
	loss := 0.0
	for i, sample := range batch {
		row := grad.Row(i)
		loss -= math.Log(row[y[sample]] + lossEps)
		row[y[sample]] -= 1
		for j := range row {
			row[j] *= inv
		}
	}
	return grad, loss * inv
}

// lossEps keeps log(p) finite when a softmax output underflows to zero;
// the guard is after sustained divergence, not one hard sample.
const lossEps = 1e-300

// PredictProba returns softmax probabilities per row.
func (n *NN) PredictProba(X *mat.Matrix) *mat.Matrix {
	if n.layers == nil {
		panic("ml: NN.PredictProba before Fit")
	}
	out := X
	for _, l := range n.layers {
		out = l.forward(out, false)
	}
	if out == X {
		out = out.Clone()
	}
	return mat.SoftmaxRows(out)
}

var _ Classifier = (*NN)(nil)
