package ml

import (
	"math"
	"math/rand"
	"testing"

	"trail/internal/mat"
)

func TestBatchNormTrainVsInference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bn := newBatchNorm(4)
	// Feed many training batches so running stats converge.
	for i := 0; i < 300; i++ {
		x := mat.RandNormal(rng, 32, 4, 5, 2)
		bn.forward(x, true)
	}
	// At inference a batch drawn from the same distribution should come
	// out roughly standardised (gamma=1, beta=0 initially).
	x := mat.RandNormal(rng, 512, 4, 5, 2)
	out := bn.forward(x, false)
	for j := 0; j < 4; j++ {
		col := make([]float64, out.Rows)
		for i := range col {
			col[i] = out.At(i, j)
		}
		if m := mat.Mean(col); math.Abs(m) > 0.2 {
			t.Fatalf("col %d inference mean %v", j, m)
		}
		if s := mat.Std(col); math.Abs(s-1) > 0.2 {
			t.Fatalf("col %d inference std %v", j, s)
		}
	}
}

func TestBatchNormGradientCheck(t *testing.T) {
	// Numerical gradient check of the batch-norm backward pass.
	rng := rand.New(rand.NewSource(12))
	bn := newBatchNorm(3)
	x := mat.RandNormal(rng, 8, 3, 1, 2)

	loss := func(in *mat.Matrix) float64 {
		out := bn.forward(in, true)
		s := 0.0
		for _, v := range out.Data {
			s += v * v
		}
		return s / 2
	}

	out := bn.forward(x, true)
	grad := out.Clone() // dL/dout for L = sum(out^2)/2
	dx := bn.backward(grad)

	const eps = 1e-5
	for probe := 0; probe < 10; probe++ {
		i := rng.Intn(len(x.Data))
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := loss(x)
		x.Data[i] = orig - eps
		lm := loss(x)
		x.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dx.Data[i]) > 1e-3*(1+math.Abs(numeric)) {
			t.Fatalf("batchnorm gradient mismatch at %d: analytic %v numeric %v",
				i, dx.Data[i], numeric)
		}
	}
}

func TestDropoutInferenceIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := &dropout{rate: 0.5, rng: rng}
	x := mat.RandNormal(rng, 4, 6, 0, 1)
	out := d.forward(x, false)
	for i := range x.Data {
		if out.Data[i] != x.Data[i] {
			t.Fatal("dropout altered inference output")
		}
	}
}

func TestDropoutTrainKeepsExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d := &dropout{rate: 0.5, rng: rng}
	x := mat.New(1, 10000)
	x.Fill(1)
	out := d.forward(x, true)
	// Inverted dropout rescales so E[out] == E[in].
	if m := mat.Mean(out.Data); math.Abs(m-1) > 0.05 {
		t.Fatalf("dropout expectation drifted: %v", m)
	}
}

func TestDenseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	layer := newDense(rng, 5, 3)
	x := mat.RandNormal(rng, 4, 5, 0, 1)

	forwardLoss := func() float64 {
		out := layer.forward(x, true)
		s := 0.0
		for _, v := range out.Data {
			s += v * v
		}
		return s / 2
	}

	out := layer.forward(x, true)
	layer.w.G.Zero()
	layer.b.G.Zero()
	dx := layer.backward(out.Clone())

	const eps = 1e-6
	// Check input gradient.
	for probe := 0; probe < 5; probe++ {
		i := rng.Intn(len(x.Data))
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := forwardLoss()
		x.Data[i] = orig - eps
		lm := forwardLoss()
		x.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dx.Data[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("dense dx mismatch: analytic %v numeric %v", dx.Data[i], numeric)
		}
	}
	// Check weight gradient.
	for probe := 0; probe < 5; probe++ {
		i := rng.Intn(len(layer.w.W.Data))
		orig := layer.w.W.Data[i]
		layer.w.W.Data[i] = orig + eps
		lp := forwardLoss()
		layer.w.W.Data[i] = orig - eps
		lm := forwardLoss()
		layer.w.W.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-layer.w.G.Data[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("dense dW mismatch: analytic %v numeric %v", layer.w.G.Data[i], numeric)
		}
	}
}
