package ml

import (
	"fmt"

	"trail/internal/mat"
)

// AdamStateOf is the serialisable optimiser state: hyperparameters, step
// count and both moment accumulators. Together with the model weights and
// the RNG position it is everything a training loop needs to resume
// bit-identically after a crash. Moments are stored at the model's
// element type; the hyperparameters stay float64 at every precision.
type AdamStateOf[T mat.Float] struct {
	LR, Beta1, Beta2, Eps float64
	T                     int
	M, V                  []*mat.Dense[T]
}

// AdamState is the float64 instantiation of AdamStateOf.
type AdamState = AdamStateOf[float64]

// State deep-copies the optimiser state for checkpointing (safe to hand
// to an asynchronous writer while training continues).
func (a *AdamOf[T]) State() AdamStateOf[T] {
	st := AdamStateOf[T]{LR: a.LR, Beta1: a.Beta1, Beta2: a.Beta2, Eps: a.Eps, T: a.t}
	for i := range a.m {
		st.M = append(st.M, a.m[i].Clone())
		st.V = append(st.V, a.v[i].Clone())
	}
	return st
}

// Restore overwrites the optimiser with a checkpointed state. The state
// must have been captured from an optimiser over the same parameter
// shapes; a mismatch is reported rather than silently corrupting moments.
func (a *AdamOf[T]) Restore(st AdamStateOf[T]) error {
	if len(st.M) != len(a.params) || len(st.V) != len(a.params) {
		return fmt.Errorf("ml: Adam.Restore: state has %d/%d moment tensors, optimiser has %d params",
			len(st.M), len(st.V), len(a.params))
	}
	for i, p := range a.params {
		if st.M[i].Rows != p.W.Rows || st.M[i].Cols != p.W.Cols ||
			st.V[i].Rows != p.W.Rows || st.V[i].Cols != p.W.Cols {
			return fmt.Errorf("ml: Adam.Restore: param %d is %dx%d, state moment is %dx%d",
				i, p.W.Rows, p.W.Cols, st.M[i].Rows, st.M[i].Cols)
		}
	}
	a.LR, a.Beta1, a.Beta2, a.Eps, a.t = st.LR, st.Beta1, st.Beta2, st.Eps, st.T
	a.m = a.m[:0]
	a.v = a.v[:0]
	for i := range st.M {
		a.m = append(a.m, st.M[i].Clone())
		a.v = append(a.v, st.V[i].Clone())
	}
	return nil
}
