package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"trail/internal/mat"
)

// StandardScaler rescales features to zero mean and unit variance using
// statistics estimated on the training set only (§VI-A preprocessing).
type StandardScaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler estimates per-column mean and standard deviation from X.
// Columns with zero variance get Std 1 so transformation is a no-op shift.
func FitScaler(X *mat.Matrix) *StandardScaler {
	s := &StandardScaler{Mean: X.ColMeans(), Std: make([]float64, X.Cols)}
	for j := range s.Std {
		sum := 0.0
		for i := 0; i < X.Rows; i++ {
			d := X.At(i, j) - s.Mean[j]
			sum += d * d
		}
		sd := 0.0
		if X.Rows > 0 {
			sd = math.Sqrt(sum / float64(X.Rows))
		}
		if sd == 0 {
			sd = 1
		}
		s.Std[j] = sd
	}
	return s
}

// Transform returns a scaled copy of X.
func (s *StandardScaler) Transform(X *mat.Matrix) *mat.Matrix {
	if X.Cols != len(s.Mean) {
		panic(fmt.Sprintf("ml: scaler fitted on %d cols, got %d", len(s.Mean), X.Cols))
	}
	out := X.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = (row[j] - s.Mean[j]) / s.Std[j]
		}
	}
	return out
}

// SMOTE oversamples minority classes by interpolating between same-class
// nearest neighbours (Chawla et al. 2002), used by the paper to balance
// per-IOC training sets. Classes are brought up to the majority class
// count. k is the neighbour pool size (k=5 in the original paper).
func SMOTE(rng *rand.Rand, X *mat.Matrix, y []int, classes, k int) (*mat.Matrix, []int) {
	if X.Rows != len(y) {
		panic("ml: SMOTE rows/labels mismatch")
	}
	if k < 1 {
		k = 5
	}
	byClass := make([][]int, classes)
	for i, c := range y {
		if c >= 0 && c < classes {
			byClass[c] = append(byClass[c], i)
		}
	}
	maxCount := 0
	for _, idx := range byClass {
		if len(idx) > maxCount {
			maxCount = len(idx)
		}
	}

	outRows := [][]float64{}
	outY := []int{}
	for i := 0; i < X.Rows; i++ {
		outRows = append(outRows, X.Row(i))
		outY = append(outY, y[i])
	}
	for c, idx := range byClass {
		need := maxCount - len(idx)
		if need <= 0 || len(idx) < 2 {
			continue
		}
		kk := k
		if kk >= len(idx) {
			kk = len(idx) - 1
		}
		for s := 0; s < need; s++ {
			a := idx[rng.Intn(len(idx))]
			b := nearestOfSample(rng, X, idx, a, kk)
			t := rng.Float64()
			ra, rb := X.Row(a), X.Row(b)
			synth := make([]float64, X.Cols)
			for j := range synth {
				synth[j] = ra[j] + t*(rb[j]-ra[j])
			}
			outRows = append(outRows, synth)
			outY = append(outY, c)
		}
	}
	return mat.FromRows(outRows), outY
}

// nearestOfSample returns one of the kk nearest same-class neighbours of
// row a, estimated over a bounded random sample of the class so SMOTE
// stays sub-quadratic on large classes.
func nearestOfSample(rng *rand.Rand, X *mat.Matrix, idx []int, a, kk int) int {
	const sample = 64
	cand := idx
	if len(idx) > sample {
		cand = make([]int, sample)
		for i := range cand {
			cand[i] = idx[rng.Intn(len(idx))]
		}
	}
	type distIdx struct {
		d float64
		i int
	}
	ds := make([]distIdx, 0, len(cand))
	ra := X.Row(a)
	for _, i := range cand {
		if i == a {
			continue
		}
		ri := X.Row(i)
		d := 0.0
		for j := range ra {
			diff := ra[j] - ri[j]
			d += diff * diff
		}
		ds = append(ds, distIdx{d, i})
	}
	if len(ds) == 0 {
		return a
	}
	sort.Slice(ds, func(x, y int) bool { return ds[x].d < ds[y].d })
	if kk > len(ds) {
		kk = len(ds)
	}
	return ds[rng.Intn(kk)].i
}

// StratifiedKFold partitions sample indices into k folds preserving the
// class distribution. It returns, for each fold, the held-out test
// indices; the training set is the complement.
func StratifiedKFold(rng *rand.Rand, y []int, k int) [][]int {
	if k < 2 {
		k = 2
	}
	byClass := make(map[int][]int)
	for i, c := range y {
		byClass[c] = append(byClass[c], i)
	}
	folds := make([][]int, k)
	// Iterate classes in sorted order for determinism.
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		idx := byClass[c]
		mat.Shuffle(rng, idx)
		for i, sampleIdx := range idx {
			f := i % k
			folds[f] = append(folds[f], sampleIdx)
		}
	}
	for _, f := range folds {
		sort.Ints(f)
	}
	return folds
}

// Complement returns all indices in [0, n) not present in the sorted
// slice test.
func Complement(n int, test []int) []int {
	inTest := make(map[int]bool, len(test))
	for _, i := range test {
		inTest[i] = true
	}
	out := make([]int, 0, n-len(test))
	for i := 0; i < n; i++ {
		if !inTest[i] {
			out = append(out, i)
		}
	}
	return out
}

// Mode returns the most frequent value in votes (ties resolve to the
// smallest value; -1 for empty input). The traditional-ML event
// attribution baseline predicts an event's APT as the mode of its IOCs'
// predictions.
func Mode(votes []int) int {
	if len(votes) == 0 {
		return -1
	}
	counts := make(map[int]int)
	for _, v := range votes {
		counts[v]++
	}
	best, bestCount := -1, -1
	for v, c := range counts {
		if c > bestCount || (c == bestCount && v < best) {
			best, bestCount = v, c
		}
	}
	return best
}
