package ml

import (
	"fmt"
	"sort"
	"strings"

	"trail/internal/mat"
)

// ClassReport holds per-class precision, recall and F1.
type ClassReport struct {
	Class     int
	Support   int
	Precision float64
	Recall    float64
	F1        float64
}

// ClassificationReport computes per-class precision/recall/F1 for classes
// that appear in truth or pred, ordered by class index. The companion of
// the confusion matrix for the Fig. 7 analysis.
func ClassificationReport(truth, pred []int, classes int) []ClassReport {
	tp := make([]int, classes)
	fp := make([]int, classes)
	fn := make([]int, classes)
	support := make([]int, classes)
	for i, tr := range truth {
		p := pred[i]
		if tr >= 0 && tr < classes {
			support[tr]++
			if p == tr {
				tp[tr]++
			} else {
				fn[tr]++
			}
		}
		if p >= 0 && p < classes && p != tr {
			fp[p]++
		}
	}
	var out []ClassReport
	for c := 0; c < classes; c++ {
		if support[c] == 0 && fp[c] == 0 {
			continue
		}
		r := ClassReport{Class: c, Support: support[c]}
		if tp[c]+fp[c] > 0 {
			r.Precision = float64(tp[c]) / float64(tp[c]+fp[c])
		}
		if tp[c]+fn[c] > 0 {
			r.Recall = float64(tp[c]) / float64(tp[c]+fn[c])
		}
		if r.Precision+r.Recall > 0 {
			r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// MacroF1 averages F1 over classes with support.
func MacroF1(truth, pred []int, classes int) float64 {
	reports := ClassificationReport(truth, pred, classes)
	sum, n := 0.0, 0
	for _, r := range reports {
		if r.Support > 0 {
			sum += r.F1
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RenderReport formats a classification report with class names.
func RenderReport(reports []ClassReport, names []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %9s %9s %9s %9s\n", "class", "precision", "recall", "f1", "support")
	for _, r := range reports {
		name := fmt.Sprintf("class%d", r.Class)
		if r.Class < len(names) {
			name = names[r.Class]
		}
		fmt.Fprintf(&b, "%-12s %9.3f %9.3f %9.3f %9d\n",
			trunc(name, 11), r.Precision, r.Recall, r.F1, r.Support)
	}
	return b.String()
}

// TopKAccuracy returns the fraction of rows whose true class is among the
// k highest-probability predictions. Useful for the analyst-facing view:
// "the right group is in the model's top 3" is actionable even when the
// argmax is wrong.
func TopKAccuracy(probs *mat.Matrix, truth []int, k int) float64 {
	if probs.Rows == 0 || probs.Rows != len(truth) {
		return 0
	}
	if k < 1 {
		k = 1
	}
	hit := 0
	idx := make([]int, probs.Cols)
	for i := 0; i < probs.Rows; i++ {
		row := probs.Row(i)
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })
		limit := k
		if limit > len(idx) {
			limit = len(idx)
		}
		for _, c := range idx[:limit] {
			if c == truth[i] {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(probs.Rows)
}
