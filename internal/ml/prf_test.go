package ml

import (
	"math"
	"strings"
	"testing"

	"trail/internal/mat"
)

func TestClassificationReport(t *testing.T) {
	truth := []int{0, 0, 0, 1, 1, 2}
	pred := []int{0, 0, 1, 1, 0, 2}
	reports := ClassificationReport(truth, pred, 3)
	if len(reports) != 3 {
		t.Fatalf("reports %d", len(reports))
	}
	// Class 0: tp=2, fp=1, fn=1 -> precision 2/3, recall 2/3.
	r0 := reports[0]
	if math.Abs(r0.Precision-2.0/3) > 1e-12 || math.Abs(r0.Recall-2.0/3) > 1e-12 {
		t.Fatalf("class 0: %+v", r0)
	}
	if r0.Support != 3 {
		t.Fatalf("class 0 support %d", r0.Support)
	}
	// Class 2: perfect.
	r2 := reports[2]
	if r2.F1 != 1 {
		t.Fatalf("class 2 F1 %v", r2.F1)
	}
	if s := RenderReport(reports, []string{"a", "b", "c"}); !strings.Contains(s, "precision") {
		t.Fatal("render incomplete")
	}
}

func TestClassificationReportSkipsEmptyClasses(t *testing.T) {
	reports := ClassificationReport([]int{5}, []int{5}, 22)
	if len(reports) != 1 || reports[0].Class != 5 {
		t.Fatalf("reports %+v", reports)
	}
}

func TestMacroF1(t *testing.T) {
	truth := []int{0, 1}
	pred := []int{0, 0}
	// Class 0: p=0.5, r=1, f1=2/3; class 1: f1=0 -> macro 1/3.
	if got := MacroF1(truth, pred, 2); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("macro F1 %v", got)
	}
}

func TestTopKAccuracy(t *testing.T) {
	probs := mat.FromRows([][]float64{
		{0.5, 0.3, 0.2}, // truth 1: top-1 miss, top-2 hit
		{0.1, 0.2, 0.7}, // truth 2: top-1 hit
		{0.4, 0.4, 0.2}, // truth 2: top-2 miss
	})
	truth := []int{1, 2, 2}
	if got := TopKAccuracy(probs, truth, 1); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("top-1 %v", got)
	}
	if got := TopKAccuracy(probs, truth, 2); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("top-2 %v", got)
	}
	if got := TopKAccuracy(probs, truth, 99); got != 1 {
		t.Fatalf("top-all %v", got)
	}
	if got := TopKAccuracy(mat.New(0, 3), nil, 1); got != 0 {
		t.Fatal("empty input")
	}
}
