package ml

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"math/rand"
	"testing"

	"trail/internal/mat"
)

// TestCountingSourceMatchesPlainSource: the wrapper must not perturb the
// stream — existing trainers seeded the same way must see identical
// draws.
func TestCountingSourceMatchesPlainSource(t *testing.T) {
	a := rand.New(rand.NewSource(99))
	b := rand.New(NewCountingSource(99))
	for i := 0; i < 500; i++ {
		switch i % 4 {
		case 0:
			if a.Float64() != b.Float64() {
				t.Fatalf("Float64 diverged at %d", i)
			}
		case 1:
			if a.Intn(1000) != b.Intn(1000) {
				t.Fatalf("Intn diverged at %d", i)
			}
		case 2:
			if a.NormFloat64() != b.NormFloat64() {
				t.Fatalf("NormFloat64 diverged at %d", i)
			}
		case 3:
			pa, pb := a.Perm(7), b.Perm(7)
			for j := range pa {
				if pa[j] != pb[j] {
					t.Fatalf("Perm diverged at %d", i)
				}
			}
		}
	}
}

// TestRestoreRNGContinuesStream: draw k values, checkpoint, keep drawing;
// a restored source must produce the identical continuation.
func TestRestoreRNGContinuesStream(t *testing.T) {
	src := NewCountingSource(7)
	rng := rand.New(src)
	for i := 0; i < 137; i++ {
		rng.NormFloat64() // variable draws per call exercises the counter
	}
	st := src.State()

	want := make([]float64, 64)
	for i := range want {
		want[i] = rng.Float64()
	}

	// Round-trip the state through gob like a real checkpoint would.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
	var st2 RNGState
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	rng2 := rand.New(RestoreRNG(st2))
	for i, w := range want {
		if got := rng2.Float64(); got != w {
			t.Fatalf("restored stream diverged at draw %d: %v vs %v", i, got, w)
		}
	}
}

// TestAdamStateResumeEquivalence: snapshot Adam mid-run, keep stepping,
// then restore into a fresh optimiser and replay the remaining gradients;
// the weights must match bit for bit.
func TestAdamStateResumeEquivalence(t *testing.T) {
	newParams := func() []*Param {
		rng := rand.New(rand.NewSource(3))
		return []*Param{
			{W: mat.RandNormal(rng, 4, 5, 0, 1), G: mat.New(4, 5)},
			{W: mat.RandNormal(rng, 1, 5, 0, 1), G: mat.New(1, 5)},
		}
	}
	grads := func(step int, params []*Param) {
		rng := rand.New(rand.NewSource(int64(1000 + step)))
		for _, p := range params {
			for i := range p.G.Data {
				p.G.Data[i] = rng.NormFloat64()
			}
		}
	}

	// Uninterrupted run: 20 steps.
	pa := newParams()
	oa := NewAdam(1e-2, pa)
	var snap AdamState
	var wSnap []*mat.Matrix
	for s := 0; s < 20; s++ {
		if s == 11 {
			snap = oa.State()
			wSnap = CloneParams(pa)
		}
		grads(s, pa)
		oa.Step()
	}

	// Resumed run: restore weights + optimiser at step 11, replay 11..19.
	pb := newParams()
	if err := RestoreParams(pb, wSnap); err != nil {
		t.Fatal(err)
	}
	ob := NewAdam(1e-2, pb)
	if err := ob.Restore(snap); err != nil {
		t.Fatal(err)
	}
	for s := 11; s < 20; s++ {
		grads(s, pb)
		ob.Step()
	}
	for i := range pa {
		for j, w := range pa[i].W.Data {
			if pb[i].W.Data[j] != w {
				t.Fatalf("param %d[%d]: resumed %v vs %v", i, j, pb[i].W.Data[j], w)
			}
		}
	}
}

func TestAdamRestoreShapeMismatch(t *testing.T) {
	p := []*Param{{W: mat.New(2, 2), G: mat.New(2, 2)}}
	a := NewAdam(1e-3, p)
	st := a.State()
	st.M[0] = mat.New(3, 3)
	if err := a.Restore(st); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	b := NewAdam(1e-3, []*Param{{W: mat.New(2, 2), G: mat.New(2, 2)}, {W: mat.New(1, 1), G: mat.New(1, 1)}})
	if err := b.Restore(a.State()); err == nil {
		t.Fatal("param count mismatch accepted")
	}
}

func TestClipGrads(t *testing.T) {
	p := []*Param{{W: mat.New(1, 2), G: mat.New(1, 2)}}
	p[0].G.Data[0], p[0].G.Data[1] = 3, 4 // norm 5
	if norm := ClipGrads(p, 10); norm != 5 || p[0].G.Data[0] != 3 {
		t.Fatalf("under-threshold clip changed grads: norm %v data %v", norm, p[0].G.Data)
	}
	if norm := ClipGrads(p, 1); norm != 5 {
		t.Fatalf("pre-clip norm %v", norm)
	}
	if got := GradNorm(p); math.Abs(got-1) > 1e-12 {
		t.Fatalf("post-clip norm %v", got)
	}
	if norm := ClipGrads(p, 0); norm == 0 {
		t.Fatal("disabled clip should still report the norm")
	}
}

func TestDivergenceDetection(t *testing.T) {
	if err := CheckLoss(3, math.NaN()); err == nil {
		t.Fatal("NaN loss accepted")
	} else {
		var d *DivergenceError
		if !errors.As(err, &d) || d.Epoch != 3 || d.Quantity != "loss" {
			t.Fatalf("wrong divergence error: %v", err)
		}
	}
	if err := CheckLoss(0, math.Inf(1)); err == nil {
		t.Fatal("Inf loss accepted")
	}
	if err := CheckLoss(0, 0.5); err != nil {
		t.Fatalf("finite loss rejected: %v", err)
	}
	p := []*Param{{W: mat.New(1, 2), G: mat.New(1, 2)}}
	p[0].G.Data[1] = math.Inf(-1)
	if err := CheckGrads(7, p); err == nil {
		t.Fatal("Inf gradient accepted")
	}
	p[0].G.Data[1] = 1
	if err := CheckGrads(7, p); err != nil {
		t.Fatalf("finite gradient rejected: %v", err)
	}
}

// TestNNFitDivergenceTyped: an absurd learning rate must surface as a
// DivergenceError, not as silent NaN weights.
func TestNNFitDivergenceTyped(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X := mat.RandNormal(rng, 64, 8, 0, 100)
	y := make([]int, 64)
	for i := range y {
		y[i] = i % 2
	}
	cfg := DefaultNNConfig()
	cfg.Hidden = []int{16}
	cfg.Epochs = 60
	cfg.LR = 1e18
	nn := NewNN(cfg)
	err := nn.Fit(X, y)
	if err == nil {
		t.Skip("this configuration happened to stay finite")
	}
	var d *DivergenceError
	if !errors.As(err, &d) {
		t.Fatalf("divergence surfaced as untyped error: %v", err)
	}
}
