package ml

import "math/rand"

// RNGState is the serialisable position of a CountingSource: the seed
// plus how many values have been drawn. Restoring it replays the stream
// to the same point, which is what makes interrupted training resume
// bit-identically — the shuffles and samples after a resume are exactly
// the ones the uninterrupted run would have drawn.
type RNGState struct {
	Seed  int64
	Draws uint64
}

// CountingSource wraps math/rand's seeded source and counts every draw,
// so the stream position can be checkpointed and restored. It implements
// rand.Source64; wrap it with rand.New. Both Int63 and Uint64 advance the
// underlying generator by exactly one step, so the draw count alone pins
// the position regardless of which methods consumed the stream.
type CountingSource struct {
	seed  int64
	draws uint64
	src   rand.Source64
}

// NewCountingSource returns a counting source seeded like
// rand.NewSource(seed) — the stream is identical to the one every
// existing trainer draws from.
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

// RestoreRNG rebuilds a counting source at a checkpointed position by
// re-seeding and fast-forwarding. Cost is O(draws); epoch-boundary
// checkpoints on the training loops in this repository sit well under a
// few million draws.
func RestoreRNG(st RNGState) *CountingSource {
	s := NewCountingSource(st.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		s.src.Uint64()
	}
	s.draws = st.Draws
	return s
}

// Int63 implements rand.Source.
func (s *CountingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *CountingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the draw count.
func (s *CountingSource) Seed(seed int64) {
	s.seed, s.draws = seed, 0
	s.src.Seed(seed)
}

// State returns the current serialisable position.
func (s *CountingSource) State() RNGState {
	return RNGState{Seed: s.seed, Draws: s.draws}
}
