package osint

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// ChaosServices is a deterministic fault injector around a Services: the
// test substrate for the resilience middleware and the TKG's graceful
// degradation. Every decision is a pure function of (Seed, operation,
// key, per-key attempt number), so a chaotic run is exactly reproducible
// — and, when every injected fault is transient and absorbed by retries,
// the downstream graph is bit-identical to a fault-free build.
//
// Four fault classes, mirroring how real OSINT providers misbehave:
//
//   - transient errors (rate TransientRate, per attempt): 503s, throttles,
//     connection resets — retrying heals them;
//   - permanent failures (rate PermanentRate, per key): the provider
//     simply cannot serve this indicator — retrying never helps;
//   - latency spikes (rate LatencyRate, per attempt): the response
//     arrives, but only after Latency on the configured clock — tripping
//     per-attempt timeout budgets;
//   - malformed records (rate MalformedRate, per key): the provider
//     answers with a partial record (missing geo data, truncated DNS
//     history) — no error, just degraded content.

// ChaosConfig tunes the injector. Zero rates disable the corresponding
// fault class.
type ChaosConfig struct {
	// Seed drives every injection decision.
	Seed int64
	// TransientRate is the per-attempt probability of a retryable error.
	TransientRate float64
	// MaxConsecutiveTransient caps how many times in a row one key can
	// fail transiently (0 = unlimited). Setting it below the middleware's
	// MaxAttempts guarantees retries always absorb transient faults.
	MaxConsecutiveTransient int
	// PermanentRate is the per-key probability the provider can never
	// serve that indicator.
	PermanentRate float64
	// LatencyRate is the per-attempt probability of a latency spike.
	LatencyRate float64
	// Latency is the spike duration, charged to Clock.
	Latency time.Duration
	// MalformedRate is the per-key probability of partial records.
	MalformedRate float64
	// Clock is charged for latency spikes; nil means WallClock.
	Clock Clock
}

// ChaosCounters reports how many faults of each class were injected.
type ChaosCounters struct {
	Calls, Transient, Permanent, Latency, Malformed int64
}

// ChaosServices implements FallibleServices over an inner Services with
// seeded fault injection. Safe for concurrent use.
type ChaosServices struct {
	inner Services
	cfg   ChaosConfig

	mu       sync.Mutex
	attempts map[string]int // per (op,key): how many attempts so far
	streak   map[string]int // per (op,key): current consecutive transient failures
	counters ChaosCounters
}

// NewChaosServices wraps inner with the given fault profile.
func NewChaosServices(inner Services, cfg ChaosConfig) *ChaosServices {
	if cfg.Clock == nil {
		cfg.Clock = WallClock
	}
	return &ChaosServices{
		inner:    inner,
		cfg:      cfg,
		attempts: make(map[string]int),
		streak:   make(map[string]int),
	}
}

// Counters returns a snapshot of the injection counters.
func (c *ChaosServices) Counters() ChaosCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters
}

// chaosHash maps (seed, class, op, key, n) to a pseudo-uniform [0,1).
func chaosHash(seed int64, class, op, key string, n int) float64 {
	h := fnv.New64a()
	var b [8]byte
	for i, v := 0, uint64(seed); i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(class))
	h.Write([]byte{0})
	h.Write([]byte(op))
	h.Write([]byte{0})
	h.Write([]byte(key))
	b[0] = byte(n)
	b[1] = byte(n >> 8)
	b[2] = byte(n >> 16)
	h.Write(b[:3])
	return float64(h.Sum64()%(1<<52)) / float64(uint64(1)<<52)
}

// inject decides the fate of one attempt at op(key). It returns a non-nil
// error for injected failures, and reports whether the (successful)
// response must be served malformed.
func (c *ChaosServices) inject(ctx context.Context, kind ProviderKind, op, key string) (malformed bool, err error) {
	ck := op + "\x00" + key
	c.mu.Lock()
	n := c.attempts[ck]
	c.attempts[ck] = n + 1
	streak := c.streak[ck]
	c.counters.Calls++
	c.mu.Unlock()

	seed := c.cfg.Seed
	if c.cfg.PermanentRate > 0 && chaosHash(seed, "perm", op, key, 0) < c.cfg.PermanentRate {
		c.mu.Lock()
		c.counters.Permanent++
		c.mu.Unlock()
		return false, &ProviderError{Kind: kind, Op: op, Key: key,
			Err: fmt.Errorf("injected outage: %w", ErrPermanent)}
	}
	if c.cfg.LatencyRate > 0 && chaosHash(seed, "lat", op, key, n) < c.cfg.LatencyRate {
		c.mu.Lock()
		c.counters.Latency++
		c.mu.Unlock()
		if serr := c.cfg.Clock.Sleep(ctx, c.cfg.Latency); serr != nil {
			return false, serr
		}
	}
	if c.cfg.TransientRate > 0 &&
		(c.cfg.MaxConsecutiveTransient <= 0 || streak < c.cfg.MaxConsecutiveTransient) &&
		chaosHash(seed, "trans", op, key, n) < c.cfg.TransientRate {
		c.mu.Lock()
		c.counters.Transient++
		c.streak[ck] = streak + 1
		c.mu.Unlock()
		return false, &ProviderError{Kind: kind, Op: op, Key: key,
			Err: fmt.Errorf("injected flake (attempt %d): %w", n, ErrTransient)}
	}
	c.mu.Lock()
	c.streak[ck] = 0
	c.mu.Unlock()
	if c.cfg.MalformedRate > 0 && chaosHash(seed, "mal", op, key, 0) < c.cfg.MalformedRate {
		c.mu.Lock()
		c.counters.Malformed++
		c.mu.Unlock()
		return true, nil
	}
	return false, nil
}

// LookupIP implements FallibleServices.
func (c *ChaosServices) LookupIP(ctx context.Context, addr string) (IPRecord, bool, error) {
	malformed, err := c.inject(ctx, ProviderIPLookup, "LookupIP", addr)
	if err != nil {
		return IPRecord{}, false, err
	}
	rec, ok := c.inner.LookupIP(addr)
	if ok && malformed {
		// Partial record: the address resolves but the registry metadata
		// is missing — the shape of an incomplete whois answer.
		rec.Country, rec.Issuer = "", ""
		rec.Lat, rec.Lon = 0, 0
	}
	return rec, ok, nil
}

// PassiveDNSDomain implements FallibleServices.
func (c *ChaosServices) PassiveDNSDomain(ctx context.Context, name string) (DomainRecord, bool, error) {
	malformed, err := c.inject(ctx, ProviderPassiveDNS, "PassiveDNSDomain", name)
	if err != nil {
		return DomainRecord{}, false, err
	}
	rec, ok := c.inner.PassiveDNSDomain(name)
	if ok && malformed {
		// Truncated history: record counts lost, resolution list halved.
		rec.Counts = DNSRecordCounts{}
		rec.ARecords = rec.ARecords[:len(rec.ARecords)/2]
		rec.Registrar = ""
	}
	return rec, ok, nil
}

// PassiveDNSIP implements FallibleServices.
func (c *ChaosServices) PassiveDNSIP(ctx context.Context, addr string) ([]string, bool, error) {
	malformed, err := c.inject(ctx, ProviderPassiveDNS, "PassiveDNSIP", addr)
	if err != nil {
		return nil, false, err
	}
	doms, ok := c.inner.PassiveDNSIP(addr)
	if ok && malformed {
		doms = doms[:len(doms)/2]
	}
	return doms, ok, nil
}

// ProbeURL implements FallibleServices.
func (c *ChaosServices) ProbeURL(ctx context.Context, url string) (URLRecord, bool, error) {
	malformed, err := c.inject(ctx, ProviderURLProbe, "ProbeURL", url)
	if err != nil {
		return URLRecord{}, false, err
	}
	rec, ok := c.inner.ProbeURL(url)
	if ok && malformed {
		// Headers lost, body metadata kept — a truncated probe archive.
		rec.Server, rec.ServerOS, rec.Encoding = "", "", ""
		rec.Services = nil
	}
	return rec, ok, nil
}
