package osint

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestChaosDeterminism(t *testing.T) {
	w := testWorld(t)
	cfg := ChaosConfig{
		Seed:          7,
		TransientRate: 0.4,
		PermanentRate: 0.1,
		MalformedRate: 0.2,
		Clock:         NewManualClock(time.Unix(0, 0)),
	}
	run := func() []string {
		c := NewChaosServices(w, cfg)
		var log []string
		ctx := context.Background()
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("198.51.100.%d", i%50) // repeat keys: attempt counters advance
			rec, ok, err := c.LookupIP(ctx, key)
			log = append(log, fmt.Sprintf("%v|%v|%v", rec, ok, err))
		}
		return log
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged:\n%s\n%s", i, a[i], b[i])
		}
	}
}

func TestChaosPermanentIsSticky(t *testing.T) {
	w := testWorld(t)
	c := NewChaosServices(w, ChaosConfig{Seed: 3, PermanentRate: 0.5, Clock: NewManualClock(time.Unix(0, 0))})
	ctx := context.Background()
	sawPermanent := false
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("198.51.100.%d", i)
		_, _, err := c.LookupIP(ctx, key)
		if err == nil {
			continue
		}
		sawPermanent = true
		if !errors.Is(err, ErrPermanent) {
			t.Fatalf("unexpected class: %v", err)
		}
		// Permanent means permanent: every later attempt at this key
		// fails identically.
		for j := 0; j < 3; j++ {
			if _, _, err2 := c.LookupIP(ctx, key); !errors.Is(err2, ErrPermanent) {
				t.Fatalf("permanent fault healed on attempt %d: %v", j, err2)
			}
		}
	}
	if !sawPermanent {
		t.Fatal("no permanent faults at rate 0.5 over 40 keys")
	}
}

func TestChaosTransientHealsAndRateIsHonored(t *testing.T) {
	w := testWorld(t)
	c := NewChaosServices(w, ChaosConfig{
		Seed: 5, TransientRate: 0.25, MaxConsecutiveTransient: 3,
		Clock: NewManualClock(time.Unix(0, 0)),
	})
	ctx := context.Background()
	healed := 0
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("198.51.100.%d", i)
		var err error
		for attempt := 0; attempt < 4; attempt++ {
			if _, _, err = c.LookupIP(ctx, key); err == nil {
				if attempt > 0 {
					healed++
				}
				break
			}
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("unexpected class: %v", err)
			}
		}
		if err != nil {
			t.Fatalf("key %s still failing after 4 attempts despite MaxConsecutiveTransient=3", key)
		}
	}
	if healed == 0 {
		t.Fatal("no transient faults injected at rate 0.25 over 100 keys")
	}
	counters := c.Counters()
	// ~25% of first attempts should flake: accept a generous band.
	if counters.Transient < 10 || counters.Transient > 60 {
		t.Fatalf("transient injections %d outside plausible band for rate 0.25", counters.Transient)
	}
}

func TestChaosLatencyChargesClock(t *testing.T) {
	w := testWorld(t)
	clock := NewManualClock(time.Unix(0, 0))
	c := NewChaosServices(w, ChaosConfig{
		Seed: 11, LatencyRate: 1.0, Latency: 3 * time.Second, Clock: clock,
	})
	if _, _, err := c.LookupIP(context.Background(), "198.51.100.1"); err != nil {
		t.Fatal(err)
	}
	if clock.Slept() != 3*time.Second {
		t.Fatalf("latency spike charged %v, want 3s", clock.Slept())
	}
}

func TestChaosMalformedRecordsArePartial(t *testing.T) {
	w := testWorld(t)
	var addr string
	for a := range collectIPs(w) {
		addr = a
		break
	}
	full, ok := w.LookupIP(addr)
	if !ok {
		t.Fatal("test IP unknown to world")
	}
	c := NewChaosServices(w, ChaosConfig{Seed: 2, MalformedRate: 1.0, Clock: NewManualClock(time.Unix(0, 0))})
	rec, ok, err := c.LookupIP(context.Background(), addr)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if rec.Country != "" || rec.Issuer != "" || rec.Lat != 0 || rec.Lon != 0 {
		t.Fatalf("malformed record kept registry fields: %+v", rec)
	}
	if rec.Addr != full.Addr || rec.ASN != full.ASN {
		t.Fatalf("malformed record lost identity fields: %+v vs %+v", rec, full)
	}
}

// TestChaosUnderResilience is the integration contract: with transient
// faults only, the middleware heals every call, so downstream consumers
// cannot tell chaos ran at all.
func TestChaosUnderResilience(t *testing.T) {
	w := testWorld(t)
	clock := NewManualClock(time.Unix(0, 0))
	chaos := NewChaosServices(w, ChaosConfig{
		Seed: 9, TransientRate: 0.3, MaxConsecutiveTransient: 3, Clock: clock,
	})
	cfg := testResilience(clock)
	cfg.MaxAttempts = 5
	r := NewResilientServices(chaos, cfg)
	ctx := context.Background()

	for addr := range collectIPs(w) {
		want, wantOK := w.LookupIP(addr)
		got, ok, err := r.LookupIP(ctx, addr)
		if err != nil {
			t.Fatalf("%s: %v", addr, err)
		}
		if ok != wantOK || got != want {
			t.Fatalf("%s: chaos visible through middleware: %+v vs %+v", addr, got, want)
		}
	}
	if c := chaos.Counters(); c.Transient == 0 {
		t.Fatal("chaos injected nothing; test is vacuous")
	}
	if m := r.Metrics().PerKind[ProviderIPLookup]; m.Failures != 0 || m.Retries == 0 {
		t.Fatalf("middleware metrics %+v", m)
	}
}
