package osint

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time for the resilience layer so retry backoff, breaker
// cool-downs and chaos latency spikes run instantly and deterministically
// under test. Production code uses WallClock; tests inject a ManualClock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// WallClock is the real time.Now/time.Sleep clock.
var WallClock Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

func (wallClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ManualClock is a deterministic clock for tests and simulations: Sleep
// advances simulated time immediately instead of blocking, so a test that
// exercises seconds of backoff completes in microseconds. Safe for
// concurrent use.
type ManualClock struct {
	mu sync.Mutex
	t  time.Time
	// autoAdvance is added to the clock on every Now call, modelling the
	// passage of time between operations (e.g. so an open circuit breaker
	// eventually reaches its half-open deadline even when no attempt in
	// between sleeps).
	autoAdvance time.Duration
	// slept accumulates the total Sleep durations, for assertions.
	slept time.Duration
}

// NewManualClock returns a ManualClock starting at start.
func NewManualClock(start time.Time) *ManualClock {
	return &ManualClock{t: start}
}

// AutoAdvance makes every Now call advance the clock by step. Returns the
// clock for chaining.
func (c *ManualClock) AutoAdvance(step time.Duration) *ManualClock {
	c.mu.Lock()
	c.autoAdvance = step
	c.mu.Unlock()
	return c
}

// Now implements Clock.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.autoAdvance)
	return c.t
}

// Sleep implements Clock: it advances the clock by d without blocking.
func (c *ManualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.slept += d
	c.mu.Unlock()
	return nil
}

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Slept reports the total duration passed to Sleep so far.
func (c *ManualClock) Slept() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slept
}
