package osint

import (
	"context"
	"errors"
	"fmt"
)

// This file defines the error-aware enrichment contract. The original
// Services interface is infallible — a lookup either finds data or it
// doesn't — which matches the synthetic World but not real OSINT
// providers, which time out, throttle, and go down. FallibleServices is
// the context-aware, error-returning variant the resilience middleware
// (resilience.go) and the fault injector (chaos.go) speak; adapters
// convert in both directions so the rest of the system can consume
// whichever shape it prefers.

// ProviderKind identifies the upstream enrichment provider class. The
// circuit breaker and the metrics are tracked per kind: the paper's
// collector talks to three independent services (IP lookup, passive DNS,
// URL probing), and an outage of one must not blacklist the others.
type ProviderKind int

const (
	// ProviderIPLookup backs LookupIP (dig/whois/geo).
	ProviderIPLookup ProviderKind = iota
	// ProviderPassiveDNS backs PassiveDNSDomain and PassiveDNSIP.
	ProviderPassiveDNS
	// ProviderURLProbe backs ProbeURL.
	ProviderURLProbe

	// NumProviderKinds is the number of distinct provider kinds.
	NumProviderKinds = 3
)

// String names the provider kind.
func (k ProviderKind) String() string {
	switch k {
	case ProviderIPLookup:
		return "ip-lookup"
	case ProviderPassiveDNS:
		return "passive-dns"
	case ProviderURLProbe:
		return "url-probe"
	default:
		return fmt.Sprintf("provider(%d)", int(k))
	}
}

// Sentinel error classes. ProviderError wraps exactly one of the first
// two so errors.Is can classify any enrichment failure.
var (
	// ErrTransient marks failures worth retrying: timeouts, throttling,
	// flaky connections.
	ErrTransient = errors.New("transient provider failure")
	// ErrPermanent marks failures that will not heal with retries: auth
	// revoked, endpoint gone, key blacklisted.
	ErrPermanent = errors.New("permanent provider failure")
	// ErrCircuitOpen is returned by the resilience middleware when the
	// breaker for a provider kind is open and the call was not attempted.
	ErrCircuitOpen = errors.New("circuit breaker open")
	// ErrAttemptTimeout marks an attempt that exceeded the per-attempt
	// budget; it is transient.
	ErrAttemptTimeout = errors.New("attempt timed out")
)

// ProviderError is the error type produced by enrichment providers and
// middleware. It records which provider failed, on what operation and
// key, and whether the failure is worth retrying.
type ProviderError struct {
	Kind ProviderKind
	Op   string // "LookupIP", "PassiveDNSDomain", ...
	Key  string // the queried indicator
	Err  error  // wraps ErrTransient or ErrPermanent (possibly deeper causes)
}

// Error implements error.
func (e *ProviderError) Error() string {
	return fmt.Sprintf("osint: %s %s(%q): %v", e.Kind, e.Op, e.Key, e.Err)
}

// Unwrap exposes the cause chain.
func (e *ProviderError) Unwrap() error { return e.Err }

// IsTransient reports whether err is a retryable enrichment failure.
// Unclassified errors are treated as transient (retrying an unknown
// failure is the safe default; the attempt cap bounds the cost).
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrPermanent) || errors.Is(err, ErrCircuitOpen) {
		return false
	}
	return true
}

// FallibleServices is the error-aware twin of Services. Implementations
// must honour ctx cancellation. The bool result keeps the Services
// semantics ("was there data for this key") and is only meaningful when
// the error is nil.
type FallibleServices interface {
	LookupIP(ctx context.Context, addr string) (IPRecord, bool, error)
	PassiveDNSDomain(ctx context.Context, name string) (DomainRecord, bool, error)
	PassiveDNSIP(ctx context.Context, addr string) ([]string, bool, error)
	ProbeURL(ctx context.Context, url string) (URLRecord, bool, error)
}

// Infallible adapts a plain Services into a FallibleServices that never
// fails (beyond ctx cancellation). The synthetic World and the cache
// layers enter the resilience stack through this adapter.
func Infallible(s Services) FallibleServices { return infallible{s} }

type infallible struct{ s Services }

func (a infallible) LookupIP(ctx context.Context, addr string) (IPRecord, bool, error) {
	if err := ctx.Err(); err != nil {
		return IPRecord{}, false, err
	}
	rec, ok := a.s.LookupIP(addr)
	return rec, ok, nil
}

func (a infallible) PassiveDNSDomain(ctx context.Context, name string) (DomainRecord, bool, error) {
	if err := ctx.Err(); err != nil {
		return DomainRecord{}, false, err
	}
	rec, ok := a.s.PassiveDNSDomain(name)
	return rec, ok, nil
}

func (a infallible) PassiveDNSIP(ctx context.Context, addr string) ([]string, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	doms, ok := a.s.PassiveDNSIP(addr)
	return doms, ok, nil
}

func (a infallible) ProbeURL(ctx context.Context, url string) (URLRecord, bool, error) {
	if err := ctx.Err(); err != nil {
		return URLRecord{}, false, err
	}
	rec, ok := a.s.ProbeURL(url)
	return rec, ok, nil
}

// DropErrors adapts a FallibleServices back into a plain Services by
// mapping every error to "no data" under the given context. Consumers
// that need to distinguish outages from genuine misses (the TKG builder's
// degradation accounting does) should wrap the FallibleServices
// themselves rather than use this adapter.
func DropErrors(ctx context.Context, f FallibleServices) Services {
	return dropErrors{ctx: ctx, f: f}
}

type dropErrors struct {
	ctx context.Context
	f   FallibleServices
}

func (a dropErrors) LookupIP(addr string) (IPRecord, bool) {
	rec, ok, err := a.f.LookupIP(a.ctx, addr)
	return rec, ok && err == nil
}

func (a dropErrors) PassiveDNSDomain(name string) (DomainRecord, bool) {
	rec, ok, err := a.f.PassiveDNSDomain(a.ctx, name)
	return rec, ok && err == nil
}

func (a dropErrors) PassiveDNSIP(addr string) ([]string, bool) {
	doms, ok, err := a.f.PassiveDNSIP(a.ctx, addr)
	if err != nil {
		return nil, false
	}
	return doms, ok
}

func (a dropErrors) ProbeURL(url string) (URLRecord, bool) {
	rec, ok, err := a.f.ProbeURL(a.ctx, url)
	return rec, ok && err == nil
}
