package osint

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// MISP feed support. The paper collects from AlienVault OTX, which itself
// aggregates MISP feeds, and notes that "TRAIL could easily be extended
// to parse the responses from other data providers" (§IV-A). This file is
// that extension: it converts MISP-format events into Pulses, so a
// deployment can ingest a MISP instance directly.

// MISPAttribute is one indicator entry of a MISP event.
type MISPAttribute struct {
	Type  string `json:"type"`  // e.g. "ip-dst", "domain", "url"
	Value string `json:"value"` // possibly defanged
}

// MISPTag is a free-form event tag.
type MISPTag struct {
	Name string `json:"name"`
}

// MISPEvent is the inner event object of MISP export JSON.
type MISPEvent struct {
	UUID       string          `json:"uuid"`
	Info       string          `json:"info"`
	Date       string          `json:"date"` // "2006-01-02"
	Tags       []MISPTag       `json:"Tag"`
	Attributes []MISPAttribute `json:"Attribute"`
}

// mispEnvelope is the outer {"Event": {...}} wrapper MISP exports use.
type mispEnvelope struct {
	Event MISPEvent `json:"Event"`
}

// mispTypeMap translates MISP attribute types to OTX-style indicator
// types. Unmapped attribute types (hashes, email addresses, ...) are
// skipped: TRAIL tracks network IOCs only.
var mispTypeMap = map[string]string{
	"ip-dst":    "IPv4",
	"ip-src":    "IPv4",
	"ip":        "IPv4",
	"domain":    "domain",
	"hostname":  "domain",
	"domain|ip": "", // composite; handled specially
	"url":       "URL",
	"uri":       "URL",
	"link":      "URL",
}

// PulseFromMISP converts one MISP event to a Pulse. Composite
// "domain|ip" attributes are split into both indicators. The returned
// pulse carries TrueAPT = -1 (real feeds have no oracle); attribution
// comes from resolving Tags, exactly as with OTX pulses.
func PulseFromMISP(ev MISPEvent) (Pulse, error) {
	if ev.UUID == "" {
		return Pulse{}, fmt.Errorf("osint: MISP event missing uuid")
	}
	created, err := time.Parse("2006-01-02", ev.Date)
	if err != nil {
		return Pulse{}, fmt.Errorf("osint: MISP event %s: bad date %q: %w", ev.UUID, ev.Date, err)
	}
	p := Pulse{
		ID:      "misp-" + ev.UUID,
		Name:    ev.Info,
		Created: created,
		TrueAPT: -1,
	}
	for _, t := range ev.Tags {
		p.Tags = append(p.Tags, t.Name)
	}
	for _, a := range ev.Attributes {
		if a.Type == "domain|ip" {
			var dom, ip string
			if n, _ := fmt.Sscanf(a.Value, "%s", &dom); n == 1 {
				// MISP separates the pair with '|'.
				for i := 0; i < len(a.Value); i++ {
					if a.Value[i] == '|' {
						dom, ip = a.Value[:i], a.Value[i+1:]
						break
					}
				}
			}
			if dom != "" {
				p.Indicators = append(p.Indicators, Indicator{Indicator: dom, Type: "domain"})
			}
			if ip != "" {
				p.Indicators = append(p.Indicators, Indicator{Indicator: ip, Type: "IPv4"})
			}
			continue
		}
		otxType, ok := mispTypeMap[a.Type]
		if !ok || otxType == "" {
			continue
		}
		p.Indicators = append(p.Indicators, Indicator{Indicator: a.Value, Type: otxType})
	}
	return p, nil
}

// DecodeMISP reads a stream of MISP event envelopes (either a JSON array
// or newline-delimited objects) and converts them to pulses. Events that
// fail conversion are skipped and counted.
func DecodeMISP(r io.Reader) (pulses []Pulse, skipped int, err error) {
	dec := json.NewDecoder(r)
	// Peek: array export vs NDJSON.
	tok, err := dec.Token()
	if err == io.EOF {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("osint: decode MISP: %w", err)
	}
	if d, ok := tok.(json.Delim); ok && d == '[' {
		for dec.More() {
			var env mispEnvelope
			if err := dec.Decode(&env); err != nil {
				return pulses, skipped, fmt.Errorf("osint: decode MISP array: %w", err)
			}
			if p, err := PulseFromMISP(env.Event); err != nil {
				skipped++
			} else {
				pulses = append(pulses, p)
			}
		}
		return pulses, skipped, nil
	}
	// NDJSON: the first token consumed part of the first object, so
	// rewind by decoding with a fresh pass is impossible on a stream;
	// instead require array format when a non-array start is seen but the
	// first token is a '{': reconstruct by decoding the remainder of the
	// first object manually.
	if d, ok := tok.(json.Delim); ok && d == '{' {
		var first mispEnvelope
		if err := decodeOpenObject(dec, &first); err != nil {
			return nil, 0, fmt.Errorf("osint: decode MISP: %w", err)
		}
		if p, err := PulseFromMISP(first.Event); err != nil {
			skipped++
		} else {
			pulses = append(pulses, p)
		}
		for {
			var env mispEnvelope
			if err := dec.Decode(&env); err == io.EOF {
				return pulses, skipped, nil
			} else if err != nil {
				return pulses, skipped, fmt.Errorf("osint: decode MISP stream: %w", err)
			}
			if p, err := PulseFromMISP(env.Event); err != nil {
				skipped++
			} else {
				pulses = append(pulses, p)
			}
		}
	}
	return nil, 0, fmt.Errorf("osint: decode MISP: unexpected leading token %v", tok)
}

// decodeOpenObject finishes decoding an object whose opening '{' has
// already been consumed from dec.
func decodeOpenObject(dec *json.Decoder, dst *mispEnvelope) error {
	// Rebuild the object token by token into a generic map, then
	// round-trip through JSON into the typed struct. Streams are small
	// relative to the enrichment cost, so clarity wins over cleverness.
	obj := map[string]json.RawMessage{}
	for {
		keyTok, err := dec.Token()
		if err != nil {
			return err
		}
		if d, ok := keyTok.(json.Delim); ok && d == '}' {
			break
		}
		key, ok := keyTok.(string)
		if !ok {
			return fmt.Errorf("unexpected key token %v", keyTok)
		}
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return err
		}
		obj[key] = raw
	}
	blob, err := json.Marshal(obj)
	if err != nil {
		return err
	}
	return json.Unmarshal(blob, dst)
}
