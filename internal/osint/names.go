package osint

import (
	"math/rand"
	"strings"
)

// dictionary words used for low-entropy (human-looking) domain labels.
var dictWords = []string{
	"cloud", "secure", "update", "mail", "portal", "login", "account",
	"service", "support", "center", "data", "sync", "drive", "docs",
	"news", "media", "global", "tech", "soft", "micro", "net", "web",
	"host", "store", "shop", "pay", "bank", "trade", "invest", "crypto",
	"game", "play", "stream", "video", "photo", "social", "chat", "meet",
	"work", "team", "office", "file", "share", "link", "fast", "safe",
	"true", "blue", "red", "star", "sun", "moon", "sky", "sea", "hill",
	"stone", "river", "forest", "eagle", "tiger", "wolf", "bear", "fox",
}

const dgaAlphabet = "abcdefghijklmnopqrstuvwxyz"
const dgaDigitsSet = "0123456789"

// genLabel produces one domain label with the given DGA style: entropy in
// [0,1] mixes dictionary words with random characters, digits is the
// per-character probability of a digit, and n is the approximate length.
func genLabel(rng *rand.Rand, entropy, digits float64, n int) string {
	if n < 3 {
		n = 3
	}
	var b strings.Builder
	for b.Len() < n {
		if rng.Float64() >= entropy {
			// Dictionary segment.
			b.WriteString(dictWords[rng.Intn(len(dictWords))])
			continue
		}
		// Random characters segment.
		seg := 2 + rng.Intn(4)
		for i := 0; i < seg && b.Len() < n+3; i++ {
			if rng.Float64() < digits {
				b.WriteByte(dgaDigitsSet[rng.Intn(len(dgaDigitsSet))])
			} else {
				b.WriteByte(dgaAlphabet[rng.Intn(len(dgaAlphabet))])
			}
		}
	}
	s := b.String()
	if len(s) > n+4 {
		s = s[:n+4]
	}
	// Labels must not start with a digit-only look; ensure first char is a
	// letter so CanonicalDomain never rejects the name.
	if s[0] >= '0' && s[0] <= '9' {
		s = string(dgaAlphabet[rng.Intn(26)]) + s[1:]
	}
	return s
}

// genPathSegment produces one URL path segment in the group's style.
func genPathSegment(rng *rand.Rand, entropy, digits float64) string {
	return genLabel(rng, entropy, digits, 4+rng.Intn(6))
}
