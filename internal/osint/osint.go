// Package osint simulates the open-source threat-intelligence ecosystem
// the paper's TRAIL system consumes: an AlienVault-OTX-style pulse feed of
// attributed incident reports, plus the enrichment services (passive DNS,
// IP lookup, URL probing) used to generate IOC features and discover
// secondary IOCs.
//
// The paper's data sources cannot be redistributed, so this package
// implements the substitution described in DESIGN.md: a deterministic
// synthetic world in which 22 APT groups (internal/apt) run campaigns over
// a configurable number of months. Two mechanisms carry attribution
// signal, exactly as in the real data:
//
//  1. Infrastructure reuse — groups reuse IOCs within campaigns (direct
//     reuse) and host new IOCs on previously used IPs/ASNs (indirect
//     reuse). These create the 2-hop and 3/4-hop paths between events
//     that label propagation exploits.
//  2. Behavioural feature biases — each group's domains, URLs and IPs are
//     drawn from its apt.Profile distributions (TLDs, hosting countries,
//     server stacks, DGA style, ...), with configurable noise. These are
//     the signals the per-IOC classifiers and the GNN learn.
//
// Cross-group noise (shared public infrastructure, benign co-hosted
// domains in passive DNS, alias-tagged and multi-tagged pulses) is
// injected so the task is realistically hard rather than separable.
package osint

import "time"

// WorldConfig controls the size and difficulty of the synthetic world.
type WorldConfig struct {
	// Seed makes the world fully deterministic.
	Seed int64
	// Months of activity to simulate. Events are time-stamped by month so
	// longitudinal experiments (Figs. 7-8) can split train/study windows.
	Months int
	// EventsPerMonth is the base number of pulses per month across all
	// groups; each group's share is proportional to its ActivityWeight.
	EventsPerMonth int
	// MeanIOCsPerEvent is the mean number of first-order IOCs listed in a
	// pulse. The paper's events average 190 IOCs; the default config uses
	// a smaller value so experiments run on a laptop.
	MeanIOCsPerEvent int
	// BenignFanout is the mean number of unrelated benign domains that
	// passive DNS reports per IP address. This is the main source of
	// secondary IOCs (75% of TKG nodes in the paper).
	BenignFanout int
	// SharedIPs is the size of the global pool of public/compromised IP
	// addresses that any group may touch; these create cross-APT paths.
	SharedIPs int
	// CrossNoise is the probability an event includes one shared public
	// IOC.
	CrossNoise float64
	// ReuseScale globally scales the per-group direct IOC reuse rates;
	// it is the main difficulty knob for the resource-reuse signal that
	// label propagation consumes.
	ReuseScale float64
	// InfraScale globally scales the per-group indirect infrastructure
	// reuse rates (hosting new IOCs on previously used IPs/ASNs) — the
	// knob for the 3/4-hop signal.
	InfraScale float64
	// CrossHostRate is the probability a group's new domain lands on
	// infrastructure controlled by a different group or the shared pool
	// (compromised/rented shared hosting) — the noise that keeps indirect
	// reuse from being a perfect signal.
	CrossHostRate float64
	// LoneEventRate is the probability an event is staged on entirely
	// fresh infrastructure (own ASN, new IPs, new domains) with no reuse
	// at all. Such events are unreachable for label propagation — the
	// paper's single-event connected components — but their feature
	// biases remain, which is precisely where the GNN's advantage over
	// LP comes from.
	LoneEventRate float64
	// FeatureNoise is the probability any single categorical feature of a
	// new IOC is drawn from the global distribution instead of the
	// group's profile.
	FeatureNoise float64
	// AliasTagProb is the probability a pulse is tagged with a group
	// alias instead of its canonical name.
	AliasTagProb float64
	// StartTime anchors month 0; pulse Created timestamps are derived
	// from it.
	StartTime time.Time
}

// DefaultConfig returns a laptop-scale configuration: a few hundred
// events, tens of thousands of IOCs after enrichment. Suitable for the
// experiment harness and benches.
func DefaultConfig() WorldConfig {
	return WorldConfig{
		Seed:             1,
		Months:           24,
		EventsPerMonth:   20,
		MeanIOCsPerEvent: 14,
		BenignFanout:     3,
		SharedIPs:        40,
		CrossNoise:       0.30,
		ReuseScale:       0.55,
		InfraScale:       0.35,
		CrossHostRate:    0.50,
		LoneEventRate:    0.10,
		FeatureNoise:     0.25,
		AliasTagProb:     0.35,
		StartTime:        time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC),
	}
}

// TestConfig returns a small configuration for unit tests.
func TestConfig() WorldConfig {
	c := DefaultConfig()
	c.Months = 8
	c.EventsPerMonth = 10
	c.MeanIOCsPerEvent = 8
	return c
}

// IPRecord is the result of an IP lookup (dig/whois/geo services in the
// paper).
type IPRecord struct {
	Addr    string
	ASN     int
	Country string
	Issuer  string
	Lat     float64
	Lon     float64
}

// DNSRecordCounts mirrors the paper's per-domain passive-DNS feature: the
// count of unique records of each of 9 types.
type DNSRecordCounts struct {
	A, AAAA, CNAME, MX, NS, TXT, SOA, PTR, SRV int
}

// Vector returns the counts in fixed order.
func (c DNSRecordCounts) Vector() []float64 {
	return []float64{
		float64(c.A), float64(c.AAAA), float64(c.CNAME), float64(c.MX), float64(c.NS),
		float64(c.TXT), float64(c.SOA), float64(c.PTR), float64(c.SRV),
	}
}

// DomainRecord is the passive-DNS view of a domain.
type DomainRecord struct {
	Name      string
	ARecords  []string // IPs the domain resolved to
	CNAME     string   // redirect target domain, if any
	Counts    DNSRecordCounts
	FirstSeen time.Time
	LastSeen  time.Time
	NXDomain  bool // deactivated since being reported
	Registrar string
}

// URLRecord is the archived probe of a URL (server response headers plus
// hosting information).
type URLRecord struct {
	URL        string
	Alive      bool
	HTTPCode   int
	FileType   string // hosted file type, e.g. "php", "exe"
	FileClass  string // coarse class, e.g. "script", "binary"
	Encoding   string // content encoding, e.g. "gzip"
	Server     string // server software
	ServerOS   string
	Services   []string // additional services observed on the host
	ResolvesTo []string // IPs
	HostDomain string   // empty when the URL host is an IP literal
}

// Services bundles the enrichment interfaces the TRAIL builder consumes.
// The synthetic World implements all of them; a production deployment
// would back them with real passive-DNS and probing providers.
type Services interface {
	// LookupIP returns geolocation/ASN/issuer data for an IP.
	LookupIP(addr string) (IPRecord, bool)
	// PassiveDNSDomain returns historic DNS data for a domain.
	PassiveDNSDomain(name string) (DomainRecord, bool)
	// PassiveDNSIP returns domains that historically resolved to an IP.
	PassiveDNSIP(addr string) ([]string, bool)
	// ProbeURL returns the archived server response for a URL.
	ProbeURL(url string) (URLRecord, bool)
}
