package osint

import (
	"bytes"
	"testing"

	"trail/internal/ioc"
)

func testWorld(t testing.TB) *World {
	t.Helper()
	return NewWorld(TestConfig())
}

func TestWorldDeterministic(t *testing.T) {
	a := NewWorld(TestConfig())
	b := NewWorld(TestConfig())
	pa, pb := a.Pulses(), b.Pulses()
	if len(pa) != len(pb) {
		t.Fatalf("pulse counts differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].ID != pb[i].ID || len(pa[i].Indicators) != len(pb[i].Indicators) {
			t.Fatalf("pulse %d differs", i)
		}
		for j := range pa[i].Indicators {
			if pa[i].Indicators[j] != pb[i].Indicators[j] {
				t.Fatalf("pulse %d indicator %d differs", i, j)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := TestConfig()
	cfg.Seed = 99
	a := NewWorld(TestConfig())
	b := NewWorld(cfg)
	if len(a.Pulses()) == len(b.Pulses()) {
		same := true
		for i := range a.Pulses() {
			if a.Pulses()[i].ID != b.Pulses()[i].ID {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical worlds")
		}
	}
}

func TestPulsesResolveAndParse(t *testing.T) {
	w := testWorld(t)
	resolver := w.Resolver()
	resolved := 0
	for _, p := range w.Pulses() {
		if p.Month < 0 || p.Month >= TestConfig().Months {
			t.Fatalf("pulse %s month %d out of range", p.ID, p.Month)
		}
		id, ok := resolver.ResolveTags(p.Tags)
		if ok {
			resolved++
			if int(id) != p.TrueAPT {
				t.Fatalf("pulse %s tags resolve to %d, truth %d", p.ID, id, p.TrueAPT)
			}
		}
		for _, ind := range p.Indicators {
			if _, ok := ioc.Classify(ind.Indicator); !ok {
				t.Fatalf("pulse %s indicator %q unparseable", p.ID, ind.Indicator)
			}
		}
	}
	if resolved < len(w.Pulses())*9/10 {
		t.Fatalf("only %d/%d pulses resolve", resolved, len(w.Pulses()))
	}
}

func TestEnrichmentConsistency(t *testing.T) {
	w := testWorld(t)
	checked := 0
	for _, p := range w.Pulses() {
		for _, ind := range p.Indicators {
			item, _ := ioc.Classify(ind.Indicator)
			switch item.Type {
			case ioc.TypeIP:
				rec, ok := w.LookupIP(item.Value)
				if !ok {
					t.Fatalf("reported IP %s unknown to lookup service", item.Value)
				}
				if rec.ASN == 0 || rec.Country == "" {
					t.Fatalf("IP %s lookup incomplete: %+v", item.Value, rec)
				}
				// Passive DNS of the IP and of its domains must agree.
				domains, _ := w.PassiveDNSIP(item.Value)
				for _, d := range domains {
					drec, ok := w.PassiveDNSDomain(d)
					if !ok {
						t.Fatalf("pDNS domain %s of %s unknown", d, item.Value)
					}
					found := false
					for _, a := range drec.ARecords {
						if a == item.Value {
							found = true
						}
					}
					if !found {
						t.Fatalf("domain %s pDNS does not resolve back to %s", d, item.Value)
					}
				}
			case ioc.TypeDomain:
				rec, ok := w.PassiveDNSDomain(item.Value)
				if !ok {
					t.Fatalf("reported domain %s unknown", item.Value)
				}
				if len(rec.ARecords) == 0 {
					t.Fatalf("domain %s has no A records", item.Value)
				}
				if rec.LastSeen.Before(rec.FirstSeen) {
					t.Fatalf("domain %s seen interval inverted", item.Value)
				}
			case ioc.TypeURL:
				rec, ok := w.ProbeURL(item.Value)
				if !ok {
					t.Fatalf("reported URL %s unknown to probe", item.Value)
				}
				if rec.Server == "" || rec.FileType == "" {
					t.Fatalf("URL %s probe incomplete: %+v", item.Value, rec)
				}
				u, _ := ioc.ParseURL(item.Value)
				if !u.HostIsIP && rec.HostDomain != u.Host {
					t.Fatalf("URL %s host %s != probe domain %s", item.Value, u.Host, rec.HostDomain)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no indicators checked")
	}
}

func TestUnknownLookupsReturnFalse(t *testing.T) {
	w := testWorld(t)
	if _, ok := w.LookupIP("203.0.113.250"); ok {
		t.Error("unknown IP resolved")
	}
	if _, ok := w.PassiveDNSDomain("definitely-not-generated.example"); ok {
		t.Error("unknown domain resolved")
	}
	if _, ok := w.ProbeURL("http://nope.example/x"); ok {
		t.Error("unknown URL probed")
	}
}

func TestPulseEncodeDecodeRoundTrip(t *testing.T) {
	w := testWorld(t)
	pulses := w.Pulses()[:10]
	var buf bytes.Buffer
	if err := EncodePulses(&buf, pulses); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePulses(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pulses) {
		t.Fatalf("decoded %d pulses", len(got))
	}
	for i := range got {
		if got[i].ID != pulses[i].ID || len(got[i].Indicators) != len(pulses[i].Indicators) {
			t.Fatalf("pulse %d mismatch", i)
		}
		if !got[i].Created.Equal(pulses[i].Created) {
			t.Fatalf("pulse %d timestamp mismatch", i)
		}
	}
}

func TestVocabularySizes(t *testing.T) {
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"countries", len(Countries()), NumCountries},
		{"issuers", len(Issuers()), NumIssuers},
		{"file types", len(FileTypes()), NumFileTypes},
		{"file classes", len(FileClasses()), NumFileClasses},
		{"http codes", len(HTTPCodes()), NumHTTPCodes},
		{"encodings", len(Encodings()), NumEncodings},
		{"servers", len(Servers()), NumServers},
		{"oses", len(OSes()), NumOSes},
		{"services", len(ServiceNames()), NumServices},
		{"tlds", len(TLDs()), NumTLDs},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s vocabulary has %d entries, want %d", c.name, c.got, c.want)
		}
	}
	seen := map[string]bool{}
	for _, v := range Servers() {
		if seen[v] {
			t.Fatalf("duplicate vocab entry %q", v)
		}
		seen[v] = true
	}
}

func TestMonthsWindowing(t *testing.T) {
	w := testWorld(t)
	all := len(w.Pulses())
	sum := 0
	for m := 0; m < TestConfig().Months; m++ {
		sum += len(w.PulsesInMonths(m, m+1))
	}
	if sum != all {
		t.Fatalf("month windows sum to %d, total %d", sum, all)
	}
	if len(w.PulsesInMonths(0, TestConfig().Months)) != all {
		t.Fatal("full window mismatch")
	}
}

func TestLoneEventsExist(t *testing.T) {
	cfg := TestConfig()
	cfg.LoneEventRate = 1.0
	w := NewWorld(cfg)
	// With every event lone, no IOC should repeat across events.
	seen := map[string]string{}
	for _, p := range w.Pulses() {
		for _, ind := range p.Indicators {
			item, _ := ioc.Classify(ind.Indicator)
			if prev, ok := seen[item.Value]; ok && prev != p.ID {
				t.Fatalf("lone world reused IOC %s across %s and %s", item.Value, prev, p.ID)
			}
			seen[item.Value] = p.ID
		}
	}
}
