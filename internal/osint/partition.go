package osint

// World partitioning for the sharded TKG build (internal/shard): the
// timeline is cut into contiguous month windows, one per shard, balanced
// by pulse count rather than month count so a burst month does not turn
// one shard into the straggler that dominates wall-clock. Campaigns are
// month-local in the generator (CampaignSize events inside one group's
// stream), so month windows approximate campaign boundaries — the
// cross-window edges that remain (long-lived infrastructure reuse) are
// exactly what the merge phase stitches.

// Window is a half-open month range [Lo, Hi).
type Window struct {
	Lo, Hi int
}

// Months returns the number of months the window spans.
func (w Window) Months() int { return w.Hi - w.Lo }

// PartitionWindows cuts months [0, len(counts)) into at most n contiguous
// windows whose per-window totals (sum of counts) are as balanced as a
// greedy left-to-right cut allows. Every returned window is non-empty in
// months; windows with zero pulses are possible when counts has zero
// months. The partition is a pure function of (counts, n), so every
// process run plans identical shards.
func PartitionWindows(counts []int, n int) []Window {
	months := len(counts)
	if months == 0 || n <= 0 {
		return nil
	}
	if n > months {
		n = months
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	wins := make([]Window, 0, n)
	lo, acc := 0, 0
	for m := 0; m < months; m++ {
		acc += counts[m]
		// Remaining windows must each get at least one month.
		remWindows := n - len(wins)
		remMonths := months - m - 1
		// Close the current window once its share of the total is met, or
		// when the leftover months would otherwise starve later windows
		// (not closing now needs remMonths >= remWindows: one more month
		// for the current window plus one per window still to open).
		target := (total*(len(wins)+1) + n - 1) / n
		if (acc >= target && remWindows > 1) || remMonths < remWindows {
			wins = append(wins, Window{Lo: lo, Hi: m + 1})
			lo = m + 1
		}
	}
	if lo < months {
		wins = append(wins, Window{Lo: lo, Hi: months})
	}
	return wins
}

// MonthPulseCounts returns the number of generated pulses per month,
// indexed 0..Months-1. It is the balance input for PartitionWindows.
func (w *World) MonthPulseCounts() []int {
	counts := make([]int, w.cfg.Months)
	for _, p := range w.pulses {
		if p.Month >= 0 && p.Month < len(counts) {
			counts[p.Month]++
		}
	}
	return counts
}

// PartitionPulses plans n balanced month windows over this world and
// returns, per window, the pulses falling inside it (sub-slices of the
// world's creation-order feed when contiguous; freshly filtered
// otherwise). Windows with zero pulses are kept so shard indexes line up
// with the plan.
func (w *World) PartitionPulses(n int) ([]Window, [][]Pulse) {
	wins := PartitionWindows(w.MonthPulseCounts(), n)
	out := make([][]Pulse, len(wins))
	for i, win := range wins {
		out[i] = w.PulsesInMonths(win.Lo, win.Hi)
	}
	return wins, out
}
