package osint

import (
	"reflect"
	"testing"
)

func TestPartitionWindowsCoverAndClamp(t *testing.T) {
	cases := []struct {
		counts []int
		n      int
	}{
		{[]int{5, 5, 5, 5}, 2},
		{[]int{10, 0, 0, 1, 9}, 3},
		{[]int{1, 1, 1}, 7}, // n > months clamps to one month per window
		{[]int{0, 0, 0, 0}, 2},
		{[]int{42}, 1},
		{[]int{3, 9, 1, 1, 1, 1, 1, 1}, 4},
	}
	for _, c := range cases {
		wins := PartitionWindows(c.counts, c.n)
		want := c.n
		if want > len(c.counts) {
			want = len(c.counts)
		}
		if len(wins) == 0 || len(wins) > want {
			t.Fatalf("counts=%v n=%d: got %d windows, want 1..%d", c.counts, c.n, len(wins), want)
		}
		// Windows must tile [0, months) contiguously.
		lo := 0
		for _, w := range wins {
			if w.Lo != lo || w.Hi <= w.Lo {
				t.Fatalf("counts=%v n=%d: windows %v do not tile contiguously", c.counts, c.n, wins)
			}
			lo = w.Hi
		}
		if lo != len(c.counts) {
			t.Fatalf("counts=%v n=%d: windows %v end at %d, want %d", c.counts, c.n, wins, lo, len(c.counts))
		}
	}
}

func TestPartitionWindowsDegenerate(t *testing.T) {
	if got := PartitionWindows(nil, 3); got != nil {
		t.Fatalf("nil counts: got %v", got)
	}
	if got := PartitionWindows([]int{1, 2}, 0); got != nil {
		t.Fatalf("n=0: got %v", got)
	}
}

func TestPartitionWindowsBalance(t *testing.T) {
	// Uniform months must split into near-equal pulse shares: no window
	// should carry more than twice the ideal share.
	counts := make([]int, 24)
	for i := range counts {
		counts[i] = 20
	}
	total := 24 * 20
	for _, n := range []int{2, 3, 4, 6, 8} {
		wins := PartitionWindows(counts, n)
		if len(wins) != n {
			t.Fatalf("n=%d: got %d windows", n, len(wins))
		}
		for _, w := range wins {
			sum := 0
			for m := w.Lo; m < w.Hi; m++ {
				sum += counts[m]
			}
			if sum > 2*total/n {
				t.Errorf("n=%d window %v carries %d of %d pulses", n, w, sum, total)
			}
		}
	}
}

func TestPartitionPulsesExactCover(t *testing.T) {
	w := NewWorld(TestConfig())
	wins, parts := w.PartitionPulses(3)
	if len(wins) != len(parts) {
		t.Fatalf("windows %d != parts %d", len(wins), len(parts))
	}
	seen := make(map[string]int)
	totalParts := 0
	for i, pulses := range parts {
		totalParts += len(pulses)
		for _, p := range pulses {
			seen[p.ID]++
			if p.Month < wins[i].Lo || p.Month >= wins[i].Hi {
				t.Fatalf("pulse %s (month %d) outside window %v", p.ID, p.Month, wins[i])
			}
		}
	}
	if totalParts != len(w.Pulses()) {
		t.Fatalf("windows hold %d pulses, world has %d", totalParts, len(w.Pulses()))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("pulse %s appears in %d windows", id, n)
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	a := NewWorld(TestConfig())
	b := NewWorld(TestConfig())
	winsA, _ := a.PartitionPulses(4)
	winsB, _ := b.PartitionPulses(4)
	if !reflect.DeepEqual(winsA, winsB) {
		t.Fatalf("same world config planned different windows: %v vs %v", winsA, winsB)
	}
}
