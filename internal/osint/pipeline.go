package osint

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"trail/internal/ioc"
)

// This file provides the production plumbing the paper's collector needs
// around real enrichment providers: response caching (the paper notes OTX
// archives tool outputs, so repeated lookups are the common case), rate
// limiting (public OSINT APIs are quota-bound), and a concurrent
// prefetcher that warms the cache for a batch of indicators before graph
// construction. The synthetic World needs none of this, but the wrappers
// are part of the public substrate so a real deployment only swaps the
// innermost Services.

// CachedServices memoises every lookup of an underlying Services,
// including negative results. It is safe for concurrent use.
type CachedServices struct {
	inner osint // alias to avoid self-reference confusion
	mu    sync.RWMutex
	ips   map[string]cached[IPRecord]
	doms  map[string]cached[DomainRecord]
	pdns  map[string]cached[[]string]
	urls  map[string]cached[URLRecord]
	// flight dedups concurrent misses per (kind,key): the first caller
	// fetches, later callers wait and read the cached result, so exactly
	// one upstream call is issued per key.
	flight map[string]*inflight

	hits, misses int64
}

type inflight struct{ done chan struct{} }

// osint is an internal alias so struct fields read cleanly.
type osint = Services

type cached[T any] struct {
	val T
	ok  bool
}

// NewCachedServices wraps inner with an unbounded memoisation layer.
func NewCachedServices(inner Services) *CachedServices {
	return &CachedServices{
		inner:  inner,
		ips:    make(map[string]cached[IPRecord]),
		doms:   make(map[string]cached[DomainRecord]),
		pdns:   make(map[string]cached[[]string]),
		urls:   make(map[string]cached[URLRecord]),
		flight: make(map[string]*inflight),
	}
}

func cacheGet[T any](c *CachedServices, m map[string]cached[T], kind, key string, fetch func(string) (T, bool)) (T, bool) {
	fk := kind + "\x00" + key
	for {
		c.mu.RLock()
		e, ok := m[key]
		c.mu.RUnlock()
		if ok {
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			return e.val, e.ok
		}
		c.mu.Lock()
		if e, ok := m[key]; ok { // filled while we upgraded the lock
			c.hits++
			c.mu.Unlock()
			return e.val, e.ok
		}
		if fl, ok := c.flight[fk]; ok {
			// Another goroutine is fetching this key: wait for it, then
			// re-read the cache.
			c.mu.Unlock()
			<-fl.done
			continue
		}
		fl := &inflight{done: make(chan struct{})}
		c.flight[fk] = fl
		c.mu.Unlock()

		val, found := fetch(key)

		c.mu.Lock()
		c.misses++
		m[key] = cached[T]{val: val, ok: found}
		delete(c.flight, fk)
		c.mu.Unlock()
		close(fl.done)
		return val, found
	}
}

// LookupIP implements Services.
func (c *CachedServices) LookupIP(addr string) (IPRecord, bool) {
	return cacheGet(c, c.ips, "ip", addr, c.inner.LookupIP)
}

// PassiveDNSDomain implements Services.
func (c *CachedServices) PassiveDNSDomain(name string) (DomainRecord, bool) {
	return cacheGet(c, c.doms, "dom", name, c.inner.PassiveDNSDomain)
}

// PassiveDNSIP implements Services.
func (c *CachedServices) PassiveDNSIP(addr string) ([]string, bool) {
	return cacheGet(c, c.pdns, "pdns", addr, c.inner.PassiveDNSIP)
}

// ProbeURL implements Services.
func (c *CachedServices) ProbeURL(url string) (URLRecord, bool) {
	return cacheGet(c, c.urls, "url", url, c.inner.ProbeURL)
}

// Stats reports cache hits and misses since creation.
func (c *CachedServices) Stats() (hits, misses int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.hits, c.misses
}

// RateLimitedServices throttles calls to an underlying Services with a
// token bucket: at most Burst immediate calls, refilled at Rate per
// second. All four lookup kinds share one bucket, matching how OSINT
// providers meter API keys.
type RateLimitedServices struct {
	inner Services
	mu    sync.Mutex
	// tokens counts fractional available calls.
	tokens float64
	burst  float64
	rate   float64
	last   time.Time
	now    func() time.Time
	sleep  func(time.Duration)
}

// NewRateLimitedServices wraps inner with a token bucket of the given
// rate (calls/second) and burst size.
func NewRateLimitedServices(inner Services, rate float64, burst int) *RateLimitedServices {
	if rate <= 0 {
		rate = 1
	}
	if burst < 1 {
		burst = 1
	}
	return &RateLimitedServices{
		inner:  inner,
		tokens: float64(burst),
		burst:  float64(burst),
		rate:   rate,
		last:   time.Now(),
		now:    time.Now,
		sleep:  time.Sleep,
	}
}

// take blocks until a token is available.
func (r *RateLimitedServices) take() {
	for {
		r.mu.Lock()
		now := r.now()
		r.tokens += now.Sub(r.last).Seconds() * r.rate
		r.last = now
		if r.tokens > r.burst {
			r.tokens = r.burst
		}
		if r.tokens >= 1 {
			r.tokens--
			r.mu.Unlock()
			return
		}
		wait := time.Duration((1 - r.tokens) / r.rate * float64(time.Second))
		r.mu.Unlock()
		r.sleep(wait)
	}
}

// LookupIP implements Services.
func (r *RateLimitedServices) LookupIP(addr string) (IPRecord, bool) {
	r.take()
	return r.inner.LookupIP(addr)
}

// PassiveDNSDomain implements Services.
func (r *RateLimitedServices) PassiveDNSDomain(name string) (DomainRecord, bool) {
	r.take()
	return r.inner.PassiveDNSDomain(name)
}

// PassiveDNSIP implements Services.
func (r *RateLimitedServices) PassiveDNSIP(addr string) ([]string, bool) {
	r.take()
	return r.inner.PassiveDNSIP(addr)
}

// ProbeURL implements Services.
func (r *RateLimitedServices) ProbeURL(url string) (URLRecord, bool) {
	r.take()
	return r.inner.ProbeURL(url)
}

// Prefetcher warms a CachedServices for a batch of pulses with a worker
// pool, so the serial TKG build that follows never waits on the network.
type Prefetcher struct {
	Services Services
	Workers  int
}

// ErrCanceled is returned when the prefetch context ends early.
var ErrCanceled = errors.New("osint: prefetch canceled")

// Prefetch resolves every indicator of every pulse (IP lookups, passive
// DNS, URL probes) through the services layer. With a CachedServices on
// top, this fills the cache; results themselves are discarded. It returns
// the number of indicator queries issued.
func (p *Prefetcher) Prefetch(ctx context.Context, pulses []Pulse) (int, error) {
	workers := p.Workers
	if workers < 1 {
		workers = 8
	}
	type job struct{ typ, value string }
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				switch j.typ {
				case "ip":
					p.Services.LookupIP(j.value)
					p.Services.PassiveDNSIP(j.value)
				case "domain":
					p.Services.PassiveDNSDomain(j.value)
				case "url":
					p.Services.ProbeURL(j.value)
				}
			}
		}()
	}

	count := 0
	var err error
feed:
	for _, pulse := range pulses {
		for _, ind := range pulse.Indicators {
			// Feeds deliver defanged values; canonicalise exactly as the
			// TKG builder will so the cache keys match.
			item, ok := ioc.Classify(ind.Indicator)
			if !ok {
				continue
			}
			var typ string
			switch item.Type {
			case ioc.TypeIP:
				typ = "ip"
			case ioc.TypeDomain:
				typ = "domain"
			case ioc.TypeURL:
				typ = "url"
			default:
				continue
			}
			select {
			case jobs <- job{typ: typ, value: item.Value}:
				count++
			case <-ctx.Done():
				// Wrap the context cause so callers can distinguish
				// deadline expiry from explicit cancellation with
				// errors.Is while still matching ErrCanceled.
				err = fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
				break feed
			}
		}
	}
	close(jobs)
	wg.Wait()
	return count, err
}
