package osint

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
	"trail/internal/ioc"
)

// countingServices wraps a Services and counts calls per method.
type countingServices struct {
	inner Services
	mu    sync.Mutex
	calls map[string]int
}

func newCounting(inner Services) *countingServices {
	return &countingServices{inner: inner, calls: map[string]int{}}
}

func (c *countingServices) bump(k string) {
	c.mu.Lock()
	c.calls[k]++
	c.mu.Unlock()
}

func (c *countingServices) LookupIP(a string) (IPRecord, bool) {
	c.bump("ip")
	return c.inner.LookupIP(a)
}
func (c *countingServices) PassiveDNSDomain(n string) (DomainRecord, bool) {
	c.bump("dom")
	return c.inner.PassiveDNSDomain(n)
}
func (c *countingServices) PassiveDNSIP(a string) ([]string, bool) {
	c.bump("pdns")
	return c.inner.PassiveDNSIP(a)
}
func (c *countingServices) ProbeURL(u string) (URLRecord, bool) {
	c.bump("url")
	return c.inner.ProbeURL(u)
}

func (c *countingServices) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.calls {
		n += v
	}
	return n
}

func TestCachedServicesMemoises(t *testing.T) {
	w := testWorld(t)
	counting := newCounting(w)
	cached := NewCachedServices(counting)

	var someIP string
	for addr := range collectIPs(w) {
		someIP = addr
		break
	}
	for i := 0; i < 5; i++ {
		if _, ok := cached.LookupIP(someIP); !ok {
			t.Fatal("known IP not found")
		}
		cached.LookupIP("203.0.113.7") // negative result must also cache
	}
	if got := counting.calls["ip"]; got != 2 {
		t.Fatalf("inner called %d times, want 2 (one per distinct key)", got)
	}
	hits, misses := cached.Stats()
	if hits != 8 || misses != 2 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func collectIPs(w *World) map[string]bool {
	out := map[string]bool{}
	for _, p := range w.Pulses() {
		for _, ind := range p.Indicators {
			// Indicators may be defanged on the wire; canonicalise.
			if item, ok := ioc.Classify(ind.Indicator); ok && item.Type == ioc.TypeIP {
				out[item.Value] = true
			}
		}
	}
	return out
}

func TestRateLimiterThrottles(t *testing.T) {
	w := testWorld(t)
	rl := NewRateLimitedServices(w, 100, 2)
	// Replace the clock so the test is deterministic and instant.
	var fake time.Duration
	rl.now = func() time.Time { return time.Unix(0, int64(fake)) }
	var slept time.Duration
	rl.sleep = func(d time.Duration) {
		slept += d
		fake += d
	}
	rl.last = rl.now()

	for i := 0; i < 10; i++ {
		rl.LookupIP("203.0.113.1")
	}
	// 10 calls at 100/s with burst 2: 8 calls must wait ~10ms each.
	if slept < 60*time.Millisecond {
		t.Fatalf("limiter slept only %v for 10 calls at 100/s", slept)
	}
}

func TestPrefetchWarmsCache(t *testing.T) {
	w := testWorld(t)
	counting := newCounting(w)
	cached := NewCachedServices(counting)
	pf := &Prefetcher{Services: cached, Workers: 4}

	pulses := w.Pulses()[:10]
	n, err := pf.Prefetch(context.Background(), pulses)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing prefetched")
	}
	innerBefore := counting.total()
	// Re-prefetching must be free: everything is cached.
	if _, err := pf.Prefetch(context.Background(), pulses); err != nil {
		t.Fatal(err)
	}
	if counting.total() != innerBefore {
		t.Fatalf("second prefetch hit the backend: %d -> %d", innerBefore, counting.total())
	}
}

func TestPrefetchCancel(t *testing.T) {
	w := testWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pf := &Prefetcher{Services: w, Workers: 2}
	_, err := pf.Prefetch(ctx, w.Pulses())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("expected ErrCanceled, got %v", err)
	}
	// The context cause must be preserved through the wrap.
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause lost: %v", err)
	}
}

func TestPrefetchDeadlineCause(t *testing.T) {
	w := testWorld(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	pf := &Prefetcher{Services: w, Workers: 2}
	_, err := pf.Prefetch(ctx, w.Pulses())
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected ErrCanceled wrapping DeadlineExceeded, got %v", err)
	}
}

func TestMISPConversion(t *testing.T) {
	blob := `[
	  {"Event": {"uuid": "u-1", "info": "campaign A", "date": "2023-05-01",
	    "Tag": [{"name": "APT28"}, {"name": "phishing"}],
	    "Attribute": [
	      {"type": "ip-dst", "value": "1.2.3.4"},
	      {"type": "domain", "value": "evil.com"},
	      {"type": "url", "value": "hxxp://evil[.]com/x.php"},
	      {"type": "domain|ip", "value": "pair.net|5.6.7.8"},
	      {"type": "sha256", "value": "ab34"},
	      {"type": "email-src", "value": "a@b.c"}
	    ]}},
	  {"Event": {"uuid": "u-2", "info": "bad date", "date": "yesterday", "Attribute": []}}
	]`
	pulses, skipped, err := DecodeMISP(strings.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped %d, want 1 (the bad-date event)", skipped)
	}
	if len(pulses) != 1 {
		t.Fatalf("pulses %d", len(pulses))
	}
	p := pulses[0]
	if p.ID != "misp-u-1" || len(p.Tags) != 2 {
		t.Fatalf("pulse meta wrong: %+v", p)
	}
	// 5 network indicators survive: ip, domain, url, pair-domain, pair-ip.
	if len(p.Indicators) != 5 {
		t.Fatalf("indicators %d: %+v", len(p.Indicators), p.Indicators)
	}
	if !p.Created.Equal(time.Date(2023, 5, 1, 0, 0, 0, 0, time.UTC)) {
		t.Fatalf("created %v", p.Created)
	}
}

func TestMISPNDJSON(t *testing.T) {
	blob := `{"Event": {"uuid": "n-1", "info": "x", "date": "2023-01-02",
	  "Attribute": [{"type": "ip", "value": "9.9.9.9"}]}}
	{"Event": {"uuid": "n-2", "info": "y", "date": "2023-01-03",
	  "Attribute": [{"type": "url", "value": "http://a.b/c"}]}}`
	pulses, skipped, err := DecodeMISP(strings.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(pulses) != 2 {
		t.Fatalf("pulses=%d skipped=%d", len(pulses), skipped)
	}
	if pulses[0].ID != "misp-n-1" || pulses[1].ID != "misp-n-2" {
		t.Fatalf("IDs %s %s", pulses[0].ID, pulses[1].ID)
	}
}

func TestMISPEmptyAndGarbage(t *testing.T) {
	if p, s, err := DecodeMISP(strings.NewReader("")); err != nil || len(p) != 0 || s != 0 {
		t.Fatalf("empty input: %v %v %v", p, s, err)
	}
	if _, _, err := DecodeMISP(strings.NewReader(`"just a string"`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// blockingServices gates LookupIP on a channel so tests can hold a fetch
// open while other goroutines pile up on the same key.
type blockingServices struct {
	inner   Services
	release chan struct{}
	entered chan struct{} // closed once on first LookupIP entry
	once    sync.Once
	calls   int64
	mu      sync.Mutex
}

func (b *blockingServices) LookupIP(a string) (IPRecord, bool) {
	b.once.Do(func() { close(b.entered) })
	<-b.release
	b.mu.Lock()
	b.calls++
	b.mu.Unlock()
	return b.inner.LookupIP(a)
}
func (b *blockingServices) PassiveDNSDomain(n string) (DomainRecord, bool) {
	return b.inner.PassiveDNSDomain(n)
}
func (b *blockingServices) PassiveDNSIP(a string) ([]string, bool) { return b.inner.PassiveDNSIP(a) }
func (b *blockingServices) ProbeURL(u string) (URLRecord, bool)    { return b.inner.ProbeURL(u) }

// TestCacheSingleflight drives concurrent misses on one key: the first
// caller must fetch, every other caller must wait for that fetch and read
// the cached result, so the backend sees exactly one call.
func TestCacheSingleflight(t *testing.T) {
	w := testWorld(t)
	blocking := &blockingServices{
		inner:   w,
		release: make(chan struct{}),
		entered: make(chan struct{}),
	}
	cached := NewCachedServices(blocking)

	const workers = 8
	var wg sync.WaitGroup
	results := make([]bool, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, ok := cached.LookupIP("203.0.113.9")
			results[i] = ok
		}(i)
	}
	// Hold the fetch open until it has definitely started, so at least
	// one other goroutine can reach the in-flight wait path; then let it
	// finish.
	<-blocking.entered
	close(blocking.release)
	wg.Wait()

	blocking.mu.Lock()
	calls := blocking.calls
	blocking.mu.Unlock()
	if calls != 1 {
		t.Fatalf("backend saw %d calls for one key, want 1", calls)
	}
	_, misses := cached.Stats()
	if misses != 1 {
		t.Fatalf("misses=%d, want 1", misses)
	}
	for i, ok := range results {
		if ok != results[0] {
			t.Fatalf("caller %d got ok=%v, others %v", i, ok, results[0])
		}
	}
}

// fakeLimiterClock rewires a RateLimitedServices onto simulated time.
func fakeLimiterClock(rl *RateLimitedServices) (slept func() time.Duration) {
	var mu sync.Mutex
	var now time.Duration
	var total time.Duration
	rl.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return time.Unix(0, int64(now))
	}
	rl.sleep = func(d time.Duration) {
		mu.Lock()
		now += d
		total += d
		mu.Unlock()
	}
	rl.last = rl.now()
	rl.tokens = rl.burst
	return func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		return total
	}
}

func TestRateLimiterBurstExhaustion(t *testing.T) {
	w := testWorld(t)
	rl := NewRateLimitedServices(w, 10, 3)
	slept := fakeLimiterClock(rl)

	// The first burst-many calls must pass without any sleep.
	for i := 0; i < 3; i++ {
		rl.LookupIP("203.0.113.1")
	}
	if s := slept(); s != 0 {
		t.Fatalf("burst calls slept %v, want 0", s)
	}
	// The next call must wait one token period: 1/10s = 100ms.
	rl.LookupIP("203.0.113.1")
	if s := slept(); s != 100*time.Millisecond {
		t.Fatalf("post-burst call slept %v, want 100ms", s)
	}
}

func TestRateLimiterRefill(t *testing.T) {
	w := testWorld(t)
	rl := NewRateLimitedServices(w, 10, 2)
	slept := fakeLimiterClock(rl)

	// Drain the burst, then let 250ms of simulated idle time pass:
	// 2.5 tokens refill (capped at burst 2).
	rl.LookupIP("a")
	rl.LookupIP("a")
	rl.mu.Lock()
	rl.last = rl.last.Add(-250 * time.Millisecond) // backdate = idle time
	rl.mu.Unlock()

	base := slept()
	rl.LookupIP("a") // token available: no sleep
	rl.LookupIP("a") // second token: no sleep
	if s := slept(); s != base {
		t.Fatalf("refilled calls slept %v extra", s-base)
	}
	// Refill was capped at burst (2), not 2.5: the next call must wait a
	// full token period again.
	rl.LookupIP("a")
	if s := slept(); s-base != 100*time.Millisecond {
		t.Fatalf("post-refill call slept %v, want 100ms", s-base)
	}
}

func TestRateLimiterConcurrentTake(t *testing.T) {
	w := testWorld(t)
	rl := NewRateLimitedServices(w, 100, 4)
	slept := fakeLimiterClock(rl)

	const workers, perWorker = 8, 5
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				rl.LookupIP("203.0.113.1")
			}
		}()
	}
	wg.Wait()
	// 40 calls at 100/s with burst 4: at least 36 token periods of
	// simulated waiting must have accumulated across workers.
	min := time.Duration(workers*perWorker-4) * 10 * time.Millisecond
	if s := slept(); s < min {
		t.Fatalf("concurrent takes slept %v, want >= %v", s, min)
	}
}
