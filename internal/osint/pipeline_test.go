package osint

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
	"trail/internal/ioc"
)

// countingServices wraps a Services and counts calls per method.
type countingServices struct {
	inner Services
	mu    sync.Mutex
	calls map[string]int
}

func newCounting(inner Services) *countingServices {
	return &countingServices{inner: inner, calls: map[string]int{}}
}

func (c *countingServices) bump(k string) {
	c.mu.Lock()
	c.calls[k]++
	c.mu.Unlock()
}

func (c *countingServices) LookupIP(a string) (IPRecord, bool) {
	c.bump("ip")
	return c.inner.LookupIP(a)
}
func (c *countingServices) PassiveDNSDomain(n string) (DomainRecord, bool) {
	c.bump("dom")
	return c.inner.PassiveDNSDomain(n)
}
func (c *countingServices) PassiveDNSIP(a string) ([]string, bool) {
	c.bump("pdns")
	return c.inner.PassiveDNSIP(a)
}
func (c *countingServices) ProbeURL(u string) (URLRecord, bool) {
	c.bump("url")
	return c.inner.ProbeURL(u)
}

func (c *countingServices) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.calls {
		n += v
	}
	return n
}

func TestCachedServicesMemoises(t *testing.T) {
	w := testWorld(t)
	counting := newCounting(w)
	cached := NewCachedServices(counting)

	var someIP string
	for addr := range collectIPs(w) {
		someIP = addr
		break
	}
	for i := 0; i < 5; i++ {
		if _, ok := cached.LookupIP(someIP); !ok {
			t.Fatal("known IP not found")
		}
		cached.LookupIP("203.0.113.7") // negative result must also cache
	}
	if got := counting.calls["ip"]; got != 2 {
		t.Fatalf("inner called %d times, want 2 (one per distinct key)", got)
	}
	hits, misses := cached.Stats()
	if hits != 8 || misses != 2 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func collectIPs(w *World) map[string]bool {
	out := map[string]bool{}
	for _, p := range w.Pulses() {
		for _, ind := range p.Indicators {
			// Indicators may be defanged on the wire; canonicalise.
			if item, ok := ioc.Classify(ind.Indicator); ok && item.Type == ioc.TypeIP {
				out[item.Value] = true
			}
		}
	}
	return out
}

func TestRateLimiterThrottles(t *testing.T) {
	w := testWorld(t)
	rl := NewRateLimitedServices(w, 100, 2)
	// Replace the clock so the test is deterministic and instant.
	var fake time.Duration
	rl.now = func() time.Time { return time.Unix(0, int64(fake)) }
	var slept time.Duration
	rl.sleep = func(d time.Duration) {
		slept += d
		fake += d
	}
	rl.last = rl.now()

	for i := 0; i < 10; i++ {
		rl.LookupIP("203.0.113.1")
	}
	// 10 calls at 100/s with burst 2: 8 calls must wait ~10ms each.
	if slept < 60*time.Millisecond {
		t.Fatalf("limiter slept only %v for 10 calls at 100/s", slept)
	}
}

func TestPrefetchWarmsCache(t *testing.T) {
	w := testWorld(t)
	counting := newCounting(w)
	cached := NewCachedServices(counting)
	pf := &Prefetcher{Services: cached, Workers: 4}

	pulses := w.Pulses()[:10]
	n, err := pf.Prefetch(context.Background(), pulses)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing prefetched")
	}
	innerBefore := counting.total()
	// Re-prefetching must be free: everything is cached.
	if _, err := pf.Prefetch(context.Background(), pulses); err != nil {
		t.Fatal(err)
	}
	if counting.total() != innerBefore {
		t.Fatalf("second prefetch hit the backend: %d -> %d", innerBefore, counting.total())
	}
}

func TestPrefetchCancel(t *testing.T) {
	w := testWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pf := &Prefetcher{Services: w, Workers: 2}
	if _, err := pf.Prefetch(ctx, w.Pulses()); err != ErrCanceled {
		t.Fatalf("expected ErrCanceled, got %v", err)
	}
}

func TestMISPConversion(t *testing.T) {
	blob := `[
	  {"Event": {"uuid": "u-1", "info": "campaign A", "date": "2023-05-01",
	    "Tag": [{"name": "APT28"}, {"name": "phishing"}],
	    "Attribute": [
	      {"type": "ip-dst", "value": "1.2.3.4"},
	      {"type": "domain", "value": "evil.com"},
	      {"type": "url", "value": "hxxp://evil[.]com/x.php"},
	      {"type": "domain|ip", "value": "pair.net|5.6.7.8"},
	      {"type": "sha256", "value": "ab34"},
	      {"type": "email-src", "value": "a@b.c"}
	    ]}},
	  {"Event": {"uuid": "u-2", "info": "bad date", "date": "yesterday", "Attribute": []}}
	]`
	pulses, skipped, err := DecodeMISP(strings.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped %d, want 1 (the bad-date event)", skipped)
	}
	if len(pulses) != 1 {
		t.Fatalf("pulses %d", len(pulses))
	}
	p := pulses[0]
	if p.ID != "misp-u-1" || len(p.Tags) != 2 {
		t.Fatalf("pulse meta wrong: %+v", p)
	}
	// 5 network indicators survive: ip, domain, url, pair-domain, pair-ip.
	if len(p.Indicators) != 5 {
		t.Fatalf("indicators %d: %+v", len(p.Indicators), p.Indicators)
	}
	if !p.Created.Equal(time.Date(2023, 5, 1, 0, 0, 0, 0, time.UTC)) {
		t.Fatalf("created %v", p.Created)
	}
}

func TestMISPNDJSON(t *testing.T) {
	blob := `{"Event": {"uuid": "n-1", "info": "x", "date": "2023-01-02",
	  "Attribute": [{"type": "ip", "value": "9.9.9.9"}]}}
	{"Event": {"uuid": "n-2", "info": "y", "date": "2023-01-03",
	  "Attribute": [{"type": "url", "value": "http://a.b/c"}]}}`
	pulses, skipped, err := DecodeMISP(strings.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(pulses) != 2 {
		t.Fatalf("pulses=%d skipped=%d", len(pulses), skipped)
	}
	if pulses[0].ID != "misp-n-1" || pulses[1].ID != "misp-n-2" {
		t.Fatalf("IDs %s %s", pulses[0].ID, pulses[1].ID)
	}
}

func TestMISPEmptyAndGarbage(t *testing.T) {
	if p, s, err := DecodeMISP(strings.NewReader("")); err != nil || len(p) != 0 || s != 0 {
		t.Fatalf("empty input: %v %v %v", p, s, err)
	}
	if _, _, err := DecodeMISP(strings.NewReader(`"just a string"`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
