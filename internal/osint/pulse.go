package osint

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Indicator is one IOC entry in a pulse, in AlienVault OTX wire format.
// Values may be defanged (hxxp://, [.]) exactly as real feeds deliver
// them; the TRAIL collector refangs during parsing.
type Indicator struct {
	Indicator string `json:"indicator"`
	Type      string `json:"type"`
}

// Pulse is an attributed incident report in OTX wire format: a set of
// IOCs, free-form tags (which may be APT aliases), and a creation time.
type Pulse struct {
	ID         string      `json:"id"`
	Name       string      `json:"name"`
	Created    time.Time   `json:"created"`
	Tags       []string    `json:"tags"`
	Indicators []Indicator `json:"indicators"`

	// TrueAPT is the generating group's roster index. It is ground truth
	// available only because the world is synthetic; the TRAIL collector
	// never reads it (it resolves Tags like the real system), but the
	// evaluation harness uses it to score attribution.
	TrueAPT int `json:"-"`
	// Month is the simulation month index of the event.
	Month int `json:"-"`
}

// EncodePulses writes pulses as newline-delimited JSON, the storage
// format used by the cmd/trail tooling.
func EncodePulses(w io.Writer, pulses []Pulse) error {
	enc := json.NewEncoder(w)
	for i := range pulses {
		if err := enc.Encode(&pulses[i]); err != nil {
			return fmt.Errorf("osint: encode pulse %d: %w", i, err)
		}
	}
	return nil
}

// DecodePulses reads newline-delimited pulse JSON until EOF.
func DecodePulses(r io.Reader) ([]Pulse, error) {
	dec := json.NewDecoder(r)
	var out []Pulse
	for {
		var p Pulse
		if err := dec.Decode(&p); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("osint: decode pulse %d: %w", len(out), err)
		}
		out = append(out, p)
	}
}
