package osint

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// This file implements the resilience middleware around a
// FallibleServices: per-attempt timeout accounting, retry with capped
// exponential backoff and deterministic full jitter, and a per-provider-
// kind circuit breaker. All timing flows through an injectable Clock, so
// the full state machine is testable in microseconds with zero
// wall-clock sleeps, and two runs with the same seed make identical
// decisions regardless of scheduling.

// ResilienceConfig tunes the middleware. The zero value of any field is
// replaced by the DefaultResilienceConfig value, except BreakerThreshold
// where <= 0 disables the breaker entirely.
type ResilienceConfig struct {
	// MaxAttempts bounds the number of tries per call (1 = no retries).
	MaxAttempts int
	// BaseBackoff is the cap of the first retry's backoff; subsequent
	// caps double up to MaxBackoff. The actual sleep is drawn uniformly
	// from [0, cap) — "full jitter" — using a hash of (JitterSeed, op,
	// key, attempt), so it is deterministic per call site but
	// decorrelated across keys.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// AttemptTimeout is the per-attempt latency budget. Attempts that
	// come back slower than this (measured on Clock) are counted as
	// transient timeout failures and retried, even if the provider
	// eventually produced data — matching how a deadline-bound collector
	// would behave.
	AttemptTimeout time.Duration
	// JitterSeed makes backoff jitter reproducible.
	JitterSeed int64
	// BreakerThreshold is the number of consecutive exhausted calls
	// (not attempts) after which a provider kind's breaker opens.
	// <= 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects calls before
	// allowing a half-open probe.
	BreakerCooldown time.Duration
	// Clock drives all timing; nil means WallClock.
	Clock Clock
}

// DefaultResilienceConfig returns production-shaped defaults: 4 attempts,
// 100ms..5s backoff, 2s attempt budget, breaker at 5 consecutive
// failures with a 30s cooldown.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		MaxAttempts:      4,
		BaseBackoff:      100 * time.Millisecond,
		MaxBackoff:       5 * time.Second,
		AttemptTimeout:   2 * time.Second,
		JitterSeed:       1,
		BreakerThreshold: 5,
		BreakerCooldown:  30 * time.Second,
		Clock:            WallClock,
	}
}

// ProviderMetrics counts one provider kind's activity through the
// middleware.
type ProviderMetrics struct {
	// Attempts is the total number of upstream calls issued.
	Attempts int64
	// Successes is the number of logical calls that returned data or a
	// clean miss.
	Successes int64
	// Retries is the number of attempts beyond the first.
	Retries int64
	// Timeouts is the number of attempts discarded for exceeding the
	// per-attempt budget.
	Timeouts int64
	// Failures is the number of logical calls that exhausted retries or
	// hit a permanent error.
	Failures int64
	// Rejected is the number of calls short-circuited by an open breaker.
	Rejected int64
	// Trips is the number of closed->open breaker transitions.
	Trips int64
}

// ResilienceMetrics is a snapshot of the middleware counters, indexed by
// provider kind.
type ResilienceMetrics struct {
	PerKind [NumProviderKinds]ProviderMetrics
}

// Totals sums the per-kind counters.
func (m *ResilienceMetrics) Totals() ProviderMetrics {
	var t ProviderMetrics
	for _, pm := range m.PerKind {
		t.Attempts += pm.Attempts
		t.Successes += pm.Successes
		t.Retries += pm.Retries
		t.Timeouts += pm.Timeouts
		t.Failures += pm.Failures
		t.Rejected += pm.Rejected
		t.Trips += pm.Trips
	}
	return t
}

// MetricsSource is implemented by services that expose resilience
// counters; core.TKG snapshots them into its BuildReport.
type MetricsSource interface {
	Metrics() ResilienceMetrics
}

// breaker is a classic three-state circuit breaker for one provider
// kind. All methods are called under the owner's per-kind mutex.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

type breaker struct {
	state       breakerState
	consecutive int       // consecutive exhausted calls while closed
	openedAt    time.Time // when the breaker last opened
	probing     bool      // a half-open probe is in flight
}

// ResilientServices wraps a FallibleServices with the retry/backoff/
// breaker middleware. Safe for concurrent use.
type ResilientServices struct {
	inner FallibleServices
	cfg   ResilienceConfig

	mu       [NumProviderKinds]sync.Mutex
	breakers [NumProviderKinds]breaker
	metrics  [NumProviderKinds]ProviderMetrics
}

// NewResilientServices wraps inner with the given config (zero fields
// take defaults; see ResilienceConfig).
func NewResilientServices(inner FallibleServices, cfg ResilienceConfig) *ResilientServices {
	def := DefaultResilienceConfig()
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = def.MaxAttempts
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = def.BaseBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = def.MaxBackoff
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = def.BreakerCooldown
	}
	if cfg.Clock == nil {
		cfg.Clock = WallClock
	}
	return &ResilientServices{inner: inner, cfg: cfg}
}

// Metrics returns a snapshot of the middleware counters.
func (r *ResilientServices) Metrics() ResilienceMetrics {
	var m ResilienceMetrics
	for k := 0; k < NumProviderKinds; k++ {
		r.mu[k].Lock()
		m.PerKind[k] = r.metrics[k]
		r.mu[k].Unlock()
	}
	return m
}

// allow consults the breaker for kind k. It returns an error when the
// call must be rejected, and whether the permitted call is a half-open
// probe.
func (r *ResilientServices) allow(k ProviderKind) (probe bool, err error) {
	if r.cfg.BreakerThreshold <= 0 {
		return false, nil
	}
	r.mu[k].Lock()
	defer r.mu[k].Unlock()
	b := &r.breakers[k]
	switch b.state {
	case breakerClosed:
		return false, nil
	case breakerOpen:
		if r.cfg.Clock.Now().Sub(b.openedAt) < r.cfg.BreakerCooldown {
			r.metrics[k].Rejected++
			return false, fmt.Errorf("osint: %s: %w", k, ErrCircuitOpen)
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, nil
	default: // half-open
		if b.probing {
			r.metrics[k].Rejected++
			return false, fmt.Errorf("osint: %s: %w", k, ErrCircuitOpen)
		}
		b.probing = true
		return true, nil
	}
}

// settle records the outcome of a permitted call on kind k's breaker.
func (r *ResilientServices) settle(k ProviderKind, probe, success bool) {
	if r.cfg.BreakerThreshold <= 0 {
		return
	}
	r.mu[k].Lock()
	defer r.mu[k].Unlock()
	b := &r.breakers[k]
	if probe {
		b.probing = false
	}
	if success {
		b.state = breakerClosed
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.state == breakerHalfOpen || b.consecutive >= r.cfg.BreakerThreshold {
		if b.state != breakerOpen {
			r.metrics[k].Trips++
		}
		b.state = breakerOpen
		b.openedAt = r.cfg.Clock.Now()
		b.consecutive = 0
	}
}

// jitterFrac returns a deterministic pseudo-uniform value in [0,1) from
// the jitter seed and the call coordinates.
func (r *ResilientServices) jitterFrac(op, key string, attempt int) float64 {
	h := fnv.New64a()
	var b [8]byte
	for i, v := 0, uint64(r.cfg.JitterSeed); i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(op))
	h.Write([]byte{0})
	h.Write([]byte(key))
	b[0] = byte(attempt)
	b[1] = byte(attempt >> 8)
	h.Write(b[:2])
	return float64(h.Sum64()%(1<<52)) / float64(uint64(1)<<52)
}

// backoff returns the jittered sleep before retry number attempt (1-based
// count of retries already implied).
func (r *ResilientServices) backoff(op, key string, attempt int) time.Duration {
	cap := r.cfg.BaseBackoff << uint(attempt)
	if cap > r.cfg.MaxBackoff || cap <= 0 {
		cap = r.cfg.MaxBackoff
	}
	return time.Duration(r.jitterFrac(op, key, attempt) * float64(cap))
}

// do runs one logical call with the full middleware stack. The breaker is
// consulted once per logical call, and only calls that exhaust their
// retries (or hit a permanent error) count against it — a call that
// recovers on retry is evidence of a healthy-if-flaky provider, not of an
// outage.
func (r *ResilientServices) do(ctx context.Context, k ProviderKind, op, key string, call func(context.Context) error) error {
	probe, err := r.allow(k)
	if err != nil {
		return err
	}
	clock := r.cfg.Clock
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		r.mu[k].Lock()
		r.metrics[k].Attempts++
		if attempt > 0 {
			r.metrics[k].Retries++
		}
		r.mu[k].Unlock()

		start := clock.Now()
		err = call(ctx)
		elapsed := clock.Now().Sub(start)
		if err == nil && r.cfg.AttemptTimeout > 0 && elapsed >= r.cfg.AttemptTimeout {
			r.mu[k].Lock()
			r.metrics[k].Timeouts++
			r.mu[k].Unlock()
			err = &ProviderError{Kind: k, Op: op, Key: key,
				Err: fmt.Errorf("%w after %v (budget %v): %w", ErrAttemptTimeout, elapsed, r.cfg.AttemptTimeout, ErrTransient)}
		}
		if err == nil {
			r.settle(k, probe, true)
			r.mu[k].Lock()
			r.metrics[k].Successes++
			r.mu[k].Unlock()
			return nil
		}
		lastErr = err
		if cerr := ctx.Err(); cerr != nil {
			lastErr = cerr
			break
		}
		if !IsTransient(err) {
			break
		}
		if attempt+1 < r.cfg.MaxAttempts {
			if serr := clock.Sleep(ctx, r.backoff(op, key, attempt)); serr != nil {
				lastErr = serr
				break
			}
		}
	}
	r.settle(k, probe, false)
	r.mu[k].Lock()
	r.metrics[k].Failures++
	r.mu[k].Unlock()
	return lastErr
}

// LookupIP implements FallibleServices.
func (r *ResilientServices) LookupIP(ctx context.Context, addr string) (IPRecord, bool, error) {
	var rec IPRecord
	var ok bool
	err := r.do(ctx, ProviderIPLookup, "LookupIP", addr, func(ctx context.Context) error {
		var cerr error
		rec, ok, cerr = r.inner.LookupIP(ctx, addr)
		return cerr
	})
	if err != nil {
		return IPRecord{}, false, err
	}
	return rec, ok, nil
}

// PassiveDNSDomain implements FallibleServices.
func (r *ResilientServices) PassiveDNSDomain(ctx context.Context, name string) (DomainRecord, bool, error) {
	var rec DomainRecord
	var ok bool
	err := r.do(ctx, ProviderPassiveDNS, "PassiveDNSDomain", name, func(ctx context.Context) error {
		var cerr error
		rec, ok, cerr = r.inner.PassiveDNSDomain(ctx, name)
		return cerr
	})
	if err != nil {
		return DomainRecord{}, false, err
	}
	return rec, ok, nil
}

// PassiveDNSIP implements FallibleServices.
func (r *ResilientServices) PassiveDNSIP(ctx context.Context, addr string) ([]string, bool, error) {
	var doms []string
	var ok bool
	err := r.do(ctx, ProviderPassiveDNS, "PassiveDNSIP", addr, func(ctx context.Context) error {
		var cerr error
		doms, ok, cerr = r.inner.PassiveDNSIP(ctx, addr)
		return cerr
	})
	if err != nil {
		return nil, false, err
	}
	return doms, ok, nil
}

// ProbeURL implements FallibleServices.
func (r *ResilientServices) ProbeURL(ctx context.Context, url string) (URLRecord, bool, error) {
	var rec URLRecord
	var ok bool
	err := r.do(ctx, ProviderURLProbe, "ProbeURL", url, func(ctx context.Context) error {
		var cerr error
		rec, ok, cerr = r.inner.ProbeURL(ctx, url)
		return cerr
	})
	if err != nil {
		return URLRecord{}, false, err
	}
	return rec, ok, nil
}
