package osint

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// scriptedServices is a FallibleServices whose LookupIP follows a
// per-key script of outcomes; other methods always succeed.
type scriptedServices struct {
	mu     sync.Mutex
	script map[string][]error // consumed front-to-back; empty => success
	calls  int
	clock  Clock
	delay  time.Duration // charged to clock on every LookupIP
}

func (s *scriptedServices) next(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	q := s.script[key]
	if len(q) == 0 {
		return nil
	}
	err := q[0]
	s.script[key] = q[1:]
	return err
}

func (s *scriptedServices) LookupIP(ctx context.Context, addr string) (IPRecord, bool, error) {
	if s.delay > 0 && s.clock != nil {
		s.clock.Sleep(ctx, s.delay)
	}
	if err := s.next(addr); err != nil {
		return IPRecord{}, false, err
	}
	return IPRecord{Addr: addr, ASN: 64500}, true, nil
}

func (s *scriptedServices) PassiveDNSDomain(ctx context.Context, name string) (DomainRecord, bool, error) {
	return DomainRecord{Name: name}, true, nil
}
func (s *scriptedServices) PassiveDNSIP(ctx context.Context, addr string) ([]string, bool, error) {
	return nil, false, nil
}
func (s *scriptedServices) ProbeURL(ctx context.Context, url string) (URLRecord, bool, error) {
	return URLRecord{URL: url}, true, nil
}

func transientErr(k ProviderKind) error {
	return &ProviderError{Kind: k, Op: "LookupIP", Key: "x", Err: fmt.Errorf("boom: %w", ErrTransient)}
}

func permanentErr(k ProviderKind) error {
	return &ProviderError{Kind: k, Op: "LookupIP", Key: "x", Err: fmt.Errorf("gone: %w", ErrPermanent)}
}

func testResilience(clock Clock) ResilienceConfig {
	cfg := DefaultResilienceConfig()
	cfg.Clock = clock
	return cfg
}

func TestRetryAbsorbsTransientFaults(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	inner := &scriptedServices{script: map[string][]error{
		"1.2.3.4": {transientErr(ProviderIPLookup), transientErr(ProviderIPLookup)},
	}}
	r := NewResilientServices(inner, testResilience(clock))

	rec, ok, err := r.LookupIP(context.Background(), "1.2.3.4")
	if err != nil || !ok || rec.ASN != 64500 {
		t.Fatalf("rec=%+v ok=%v err=%v", rec, ok, err)
	}
	m := r.Metrics().PerKind[ProviderIPLookup]
	if m.Attempts != 3 || m.Retries != 2 || m.Successes != 1 || m.Failures != 0 {
		t.Fatalf("metrics %+v", m)
	}
	// Two backoffs must have elapsed on the fake clock, bounded by the
	// full-jitter caps (100ms and 200ms): nonzero, under 300ms total.
	if s := clock.Slept(); s <= 0 || s >= 300*time.Millisecond {
		t.Fatalf("slept %v, want in (0, 300ms)", s)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	faults := make([]error, 10)
	for i := range faults {
		faults[i] = transientErr(ProviderIPLookup)
	}
	inner := &scriptedServices{script: map[string][]error{"1.2.3.4": faults}}
	cfg := testResilience(clock)
	cfg.MaxAttempts = 3
	r := NewResilientServices(inner, cfg)

	_, _, err := r.LookupIP(context.Background(), "1.2.3.4")
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err=%v", err)
	}
	m := r.Metrics().PerKind[ProviderIPLookup]
	if m.Attempts != 3 || m.Failures != 1 || m.Successes != 0 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestPermanentErrorSkipsRetry(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	inner := &scriptedServices{script: map[string][]error{
		"1.2.3.4": {permanentErr(ProviderIPLookup)},
	}}
	r := NewResilientServices(inner, testResilience(clock))

	_, _, err := r.LookupIP(context.Background(), "1.2.3.4")
	if !errors.Is(err, ErrPermanent) {
		t.Fatalf("err=%v", err)
	}
	m := r.Metrics().PerKind[ProviderIPLookup]
	if m.Attempts != 1 || m.Retries != 0 {
		t.Fatalf("permanent failure was retried: %+v", m)
	}
	if clock.Slept() != 0 {
		t.Fatalf("slept %v on a permanent failure", clock.Slept())
	}
}

func TestBackoffCapAndDeterminism(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	cfg := testResilience(clock)
	cfg.MaxAttempts = 8
	cfg.BaseBackoff = 100 * time.Millisecond
	cfg.MaxBackoff = 400 * time.Millisecond
	r := NewResilientServices(&scriptedServices{}, cfg)

	var prev time.Duration = -1
	total := time.Duration(0)
	for attempt := 0; attempt < 8; attempt++ {
		d := r.backoff("LookupIP", "k", attempt)
		cap := cfg.BaseBackoff << uint(attempt)
		if cap > cfg.MaxBackoff || cap <= 0 {
			cap = cfg.MaxBackoff
		}
		if d < 0 || d >= cap {
			t.Fatalf("attempt %d: backoff %v outside [0, %v)", attempt, d, cap)
		}
		if d == prev {
			t.Fatalf("attempt %d: jitter repeated exactly (%v)", attempt, d)
		}
		prev = d
		total += d
	}
	// Same seed, same coordinates: identical sequence.
	r2 := NewResilientServices(&scriptedServices{}, cfg)
	for attempt := 0; attempt < 8; attempt++ {
		if r.backoff("LookupIP", "k", attempt) != r2.backoff("LookupIP", "k", attempt) {
			t.Fatal("jitter is not deterministic across instances")
		}
	}
	// Different key decorrelates.
	if r.backoff("LookupIP", "k", 0) == r.backoff("LookupIP", "other", 0) {
		t.Fatal("jitter identical across keys (suspicious)")
	}
}

func TestAttemptTimeoutIsTransient(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	cfg := testResilience(clock)
	cfg.AttemptTimeout = 50 * time.Millisecond
	cfg.MaxAttempts = 2
	// Every attempt takes 80ms on the shared clock: over budget.
	inner := &scriptedServices{clock: clock, delay: 80 * time.Millisecond}
	r := NewResilientServices(inner, cfg)

	_, _, err := r.LookupIP(context.Background(), "1.2.3.4")
	if !errors.Is(err, ErrAttemptTimeout) || !errors.Is(err, ErrTransient) {
		t.Fatalf("err=%v", err)
	}
	m := r.Metrics().PerKind[ProviderIPLookup]
	if m.Timeouts != 2 || m.Attempts != 2 || m.Failures != 1 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestBreakerOpensHalfOpensCloses(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	cfg := testResilience(clock)
	cfg.MaxAttempts = 1
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = 10 * time.Second
	perm := func() []error { return []error{permanentErr(ProviderIPLookup)} }
	inner := &scriptedServices{script: map[string][]error{}}
	r := NewResilientServices(inner, cfg)
	ctx := context.Background()

	// Three exhausted calls trip the breaker.
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("10.0.0.%d", i)
		inner.mu.Lock()
		inner.script[key] = perm()
		inner.mu.Unlock()
		if _, _, err := r.LookupIP(ctx, key); !errors.Is(err, ErrPermanent) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if m := r.Metrics().PerKind[ProviderIPLookup]; m.Trips != 1 {
		t.Fatalf("trips=%d, want 1", m.Trips)
	}
	// While open, calls are rejected without touching the backend.
	before := func() int { inner.mu.Lock(); defer inner.mu.Unlock(); return inner.calls }()
	if _, _, err := r.LookupIP(ctx, "10.0.0.9"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("expected ErrCircuitOpen, got %v", err)
	}
	if after := func() int { inner.mu.Lock(); defer inner.mu.Unlock(); return inner.calls }(); after != before {
		t.Fatal("open breaker still called the backend")
	}
	// Other provider kinds are unaffected.
	if _, _, err := r.ProbeURL(ctx, "http://ok.example/x"); err != nil {
		t.Fatalf("url-probe breaker tripped by ip-lookup failures: %v", err)
	}
	// After the cooldown, a half-open probe that succeeds closes it.
	clock.Advance(cfg.BreakerCooldown)
	if _, ok, err := r.LookupIP(ctx, "10.0.0.10"); err != nil || !ok {
		t.Fatalf("half-open probe failed: ok=%v err=%v", ok, err)
	}
	if _, _, err := r.LookupIP(ctx, "10.0.0.11"); err != nil {
		t.Fatalf("breaker did not close after successful probe: %v", err)
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	cfg := testResilience(clock)
	cfg.MaxAttempts = 1
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 10 * time.Second
	inner := &scriptedServices{script: map[string][]error{
		"a": {permanentErr(ProviderIPLookup)},
		"b": {permanentErr(ProviderIPLookup)},
		"c": {permanentErr(ProviderIPLookup)},
	}}
	r := NewResilientServices(inner, cfg)
	ctx := context.Background()

	r.LookupIP(ctx, "a")
	r.LookupIP(ctx, "b") // trips
	clock.Advance(cfg.BreakerCooldown)
	if _, _, err := r.LookupIP(ctx, "c"); !errors.Is(err, ErrPermanent) {
		t.Fatalf("probe err=%v", err)
	}
	// Failed probe: open again, immediately rejecting.
	if _, _, err := r.LookupIP(ctx, "d"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("expected reopen, got %v", err)
	}
	if m := r.Metrics().PerKind[ProviderIPLookup]; m.Trips != 2 {
		t.Fatalf("trips=%d, want 2", m.Trips)
	}
}

func TestResilientConcurrentCalls(t *testing.T) {
	clock := NewManualClock(time.Unix(0, 0))
	cfg := testResilience(clock)
	cfg.BreakerThreshold = 0 // exercise raw retry path under -race
	inner := &scriptedServices{script: map[string][]error{}}
	for i := 0; i < 16; i++ {
		inner.script[fmt.Sprintf("k%d", i)] = []error{transientErr(ProviderIPLookup)}
	}
	r := NewResilientServices(inner, cfg)

	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = r.LookupIP(context.Background(), fmt.Sprintf("k%d", i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	m := r.Metrics().PerKind[ProviderIPLookup]
	if m.Successes != 16 || m.Retries != 16 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestInfallibleAdapterRoundTrip(t *testing.T) {
	w := testWorld(t)
	f := Infallible(w)
	ctx := context.Background()
	var addr string
	for a := range collectIPs(w) {
		addr = a
		break
	}
	rec, ok, err := f.LookupIP(ctx, addr)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	back := DropErrors(ctx, f)
	rec2, ok2 := back.LookupIP(addr)
	if !ok2 || rec2 != rec {
		t.Fatalf("round trip mismatch: %+v vs %+v", rec, rec2)
	}
	// Canceled context surfaces as an error through Infallible and as a
	// miss through DropErrors.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := f.LookupIP(cctx, addr); err == nil {
		t.Fatal("canceled context ignored")
	}
	if _, ok := DropErrors(cctx, f).LookupIP(addr); ok {
		t.Fatal("DropErrors returned data under a canceled context")
	}
}
