package osint

import "fmt"

// Vocabulary sizes, matching the one-hot dimensions reported in §IV-B of
// the paper. The head of each list holds realistic values (which the APT
// profiles prefer); the tail is synthetic filler so the one-hot spaces
// have the paper's dimensionality and real-world sparsity.
const (
	NumCountries   = 249
	NumIssuers     = 250
	NumFileTypes   = 106
	NumFileClasses = 21
	NumHTTPCodes   = 68
	NumEncodings   = 12
	NumServers     = 944
	NumOSes        = 50
	NumServices    = 183
	NumTLDs        = 100
)

func padList(head []string, n int, prefix string) []string {
	out := make([]string, 0, n)
	out = append(out, head...)
	for i := len(out); i < n; i++ {
		out = append(out, fmt.Sprintf("%s-%03d", prefix, i))
	}
	return out[:n]
}

// Countries returns the country-code vocabulary (ISO-style head).
func Countries() []string {
	return padList([]string{
		"US", "CN", "RU", "DE", "NL", "GB", "FR", "KR", "JP", "HK",
		"SG", "IN", "BR", "CA", "UA", "IR", "TR", "VN", "TH", "MY",
		"AE", "CZ", "RO", "BG", "LV", "LT", "EE", "PL", "IT", "ES",
		"SE", "NO", "FI", "DK", "CH", "AT", "BE", "PT", "GR", "HU",
		"KP", "TW", "ID", "PH", "AU", "NZ", "MX", "AR", "CL", "CO",
		"ZA", "EG", "SA", "IL", "PK", "BD", "KZ", "BY", "MD", "GE",
	}, NumCountries, "cc")
}

// Issuers returns the IP issuer (hosting provider) vocabulary.
func Issuers() []string {
	return padList([]string{
		"hostkey", "ovh", "digitalocean", "choopa", "leaseweb", "alibaba",
		"selectel", "hetzner", "linode", "vultr", "aws", "gcp", "azure",
		"contabo", "m247", "datacamp", "kingservers", "timeweb", "regru",
		"godaddy", "namecheap", "cloudflare", "akamai", "fastly",
	}, NumIssuers, "issuer")
}

// FileTypes returns the hosted-file-type vocabulary.
func FileTypes() []string {
	return padList([]string{
		"php", "html", "exe", "zip", "js", "doc", "docx", "pdf", "jsp",
		"asp", "aspx", "rar", "7z", "dll", "hta", "lnk", "vbs", "ps1",
		"sh", "py", "jar", "apk", "xls", "xlsx", "ppt", "rtf", "iso",
		"img", "cab", "msi", "scr", "bat", "chm", "swf", "txt", "xml",
		"json", "bin", "dat", "tmp", "gif", "png", "jpg", "css",
	}, NumFileTypes, "ftype")
}

// FileClasses returns the coarse file-class vocabulary.
func FileClasses() []string {
	return padList([]string{
		"script", "binary", "document", "archive", "webpage", "image",
		"config", "shortcut", "installer", "media", "data", "certificate",
	}, NumFileClasses, "fclass")
}

// HTTPCodes returns the HTTP response code vocabulary (as strings).
func HTTPCodes() []string {
	return padList([]string{
		"200", "301", "302", "304", "400", "401", "403", "404", "405",
		"410", "429", "500", "502", "503", "504", "520", "521", "522",
	}, NumHTTPCodes, "code")
}

// Encodings returns the content-encoding vocabulary.
func Encodings() []string {
	return padList([]string{
		"gzip", "identity", "deflate", "br", "compress", "zstd",
	}, NumEncodings, "enc")
}

// Servers returns the web-server software vocabulary. The paper tracks
// 944 distinct server strings because real Server headers carry version
// suffixes; the filler entries model that long tail.
func Servers() []string {
	return padList([]string{
		"nginx", "apache", "iis", "litespeed", "caddy", "lighttpd",
		"tomcat", "jetty", "openresty", "cherokee", "gunicorn", "kestrel",
		"cowboy", "envoy", "haproxy", "varnish", "traefik",
	}, NumServers, "server")
}

// OSes returns the server operating-system vocabulary.
func OSes() []string {
	return padList([]string{
		"linux", "ubuntu", "debian", "centos", "windows", "freebsd",
		"rhel", "fedora", "alpine", "openbsd", "win2012", "win2016",
		"win2019",
	}, NumOSes, "os")
}

// ServiceNames returns the co-hosted network-service vocabulary.
func ServiceNames() []string {
	return padList([]string{
		"ssh", "ftp", "rdp", "smtp", "dns", "telnet", "pop3", "imap",
		"mysql", "postgres", "redis", "mongodb", "vnc", "smb", "snmp",
		"ntp", "ldap", "sip",
	}, NumServices, "svc")
}

// TLDs returns the top-level-domain vocabulary.
func TLDs() []string {
	return padList([]string{
		"com", "net", "org", "info", "biz", "ru", "cn", "su", "kr", "jp",
		"vn", "ir", "me", "cc", "top", "xyz", "club", "online", "site",
		"space", "live", "shop", "asia", "io", "co", "us", "uk", "de",
		"fr", "nl", "eu", "in", "br",
	}, NumTLDs, "tld")
}
