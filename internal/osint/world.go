package osint

import (
	"fmt"
	"math/rand"
	"time"

	"trail/internal/apt"
	"trail/internal/ioc"
)

// World is the deterministic synthetic threat-intelligence universe. It
// generates an attributed pulse feed and implements the Services
// enrichment interfaces over the same hidden state, so enrichment
// discovers genuine second-order structure (shared hosting, shared ASNs,
// historic DNS) rather than random noise.
type World struct {
	cfg      WorldConfig
	roster   []apt.Profile
	resolver *apt.Resolver
	rng      *rand.Rand

	asns    map[int]*asnState
	ips     map[string]*ipState
	domains map[string]*domainState
	urls    map[string]*urlState
	pulses  []Pulse

	groups    []*groupState
	sharedIPs []string

	// Global vocabularies (head-biased sampling for noise draws).
	countries, issuers, fileTypes, fileClasses, httpCodes []string
	encodings, servers, oses, services, tlds              []string

	nextIPOctet int
	nextASN     int
}

type asnState struct {
	Number  int
	Country string
	Issuer  string
	// prefix is the first two IPv4 octets owned by this ASN.
	prefix string
}

type ipState struct {
	rec     IPRecord
	domains []string // passive-DNS: domains that resolved here
	owner   apt.ID   // -1 for shared/benign
	month   int
}

type domainState struct {
	rec   DomainRecord
	owner apt.ID // -1 for benign secondary domains
	month int
}

type urlState struct {
	rec   URLRecord
	owner apt.ID
	month int
}

type groupState struct {
	profile apt.Profile
	asns    []int
	// lone marks a scratch state used to stage an isolated event: no
	// foreign hosting, no shared-IP contamination, nothing added to the
	// real group pools.
	lone bool
	// Cumulative infrastructure pools.
	ips, domains, urls []string
	// Current campaign pools (rotated every CampaignSize events).
	campIPs, campDomains, campURLs []string
	campEvents                     int
	eventSeq                       int
}

// NewWorld generates the complete world for cfg using the default APT
// roster. Generation is deterministic in cfg.Seed.
func NewWorld(cfg WorldConfig) *World {
	if cfg.Months <= 0 || cfg.EventsPerMonth <= 0 {
		panic("osint: WorldConfig must set Months and EventsPerMonth")
	}
	if cfg.StartTime.IsZero() {
		cfg.StartTime = time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	}
	w := &World{
		cfg:         cfg,
		roster:      apt.DefaultRoster(),
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		asns:        make(map[int]*asnState),
		ips:         make(map[string]*ipState),
		domains:     make(map[string]*domainState),
		urls:        make(map[string]*urlState),
		countries:   Countries(),
		issuers:     Issuers(),
		fileTypes:   FileTypes(),
		fileClasses: FileClasses(),
		httpCodes:   HTTPCodes(),
		encodings:   Encodings(),
		servers:     Servers(),
		oses:        OSes(),
		services:    ServiceNames(),
		tlds:        TLDs(),
	}
	w.resolver = apt.NewResolver(w.roster)
	w.buildInfrastructure()
	w.generateActivity()
	return w
}

// Roster returns the APT profiles driving the world.
func (w *World) Roster() []apt.Profile { return w.roster }

// Resolver returns the alias resolver for the roster.
func (w *World) Resolver() *apt.Resolver { return w.resolver }

// Pulses returns every generated pulse in creation order.
func (w *World) Pulses() []Pulse { return w.pulses }

// PulsesInMonths returns pulses with lo <= Month < hi.
func (w *World) PulsesInMonths(lo, hi int) []Pulse {
	var out []Pulse
	for _, p := range w.pulses {
		if p.Month >= lo && p.Month < hi {
			out = append(out, p)
		}
	}
	return out
}

// --- generation -----------------------------------------------------------

func (w *World) newASN(country string) *asnState {
	if w.nextASN == 0 {
		w.nextASN = 1000
	}
	a := &asnState{
		Number:  w.nextASN,
		Country: country,
		Issuer:  w.issuers[w.rng.Intn(24)], // realistic head of the vocab
		prefix:  fmt.Sprintf("%d.%d", 11+w.rng.Intn(180), w.rng.Intn(256)),
	}
	w.asns[a.Number] = a
	w.nextASN++
	return a
}

func (w *World) buildInfrastructure() {
	// Global ASN pool: ~6 per group plus shared public ASNs.
	newASN := w.newASN

	w.groups = make([]*groupState, len(w.roster))
	var allASNs []int
	for i, p := range w.roster {
		gs := &groupState{profile: p}
		// Sorted iteration: the loop body draws from the rng, so random
		// map order would scramble the ASN assignment per process run.
		for _, c := range sortedKeys(p.HostCountryWeights) {
			// Hosting providers serve many tenants: with some probability
			// a group rents space in an ASN another group already uses,
			// which is what keeps 4-hop ASN paths from being a pure
			// signal (the paper's LP 4L plateaus at 0.82).
			if len(allASNs) > 4 && w.rng.Float64() < 0.55 {
				gs.asns = append(gs.asns, allASNs[w.rng.Intn(len(allASNs))])
				continue
			}
			a := newASN(c)
			gs.asns = append(gs.asns, a.Number)
			allASNs = append(allASNs, a.Number)
			if w.rng.Float64() < 0.5 {
				b := newASN(c)
				gs.asns = append(gs.asns, b.Number)
				allASNs = append(allASNs, b.Number)
			}
		}
		w.groups[i] = gs
	}

	// Shared public ASNs and IPs: cloud providers and compromised hosts
	// that any group (and plenty of benign traffic) may touch.
	var sharedASNs []int
	for i := 0; i < 6; i++ {
		a := newASN(w.countries[w.rng.Intn(10)])
		sharedASNs = append(sharedASNs, a.Number)
	}
	for i := 0; i < w.cfg.SharedIPs; i++ {
		asn := sharedASNs[w.rng.Intn(len(sharedASNs))]
		addr := w.newIPAddr(asn)
		st := w.registerIP(addr, asn, apt.Unknown, 0)
		// Shared IPs accumulate lots of unrelated benign domains.
		w.attachBenignDomains(st, 2+w.rng.Intn(2*w.cfg.BenignFanout+1), 0)
		w.sharedIPs = append(w.sharedIPs, addr)
	}
}

func (w *World) generateActivity() {
	totalWeight := 0.0
	for _, p := range w.roster {
		totalWeight += p.ActivityWeight
	}
	for m := 0; m < w.cfg.Months; m++ {
		for gi := range w.groups {
			gs := w.groups[gi]
			expected := float64(w.cfg.EventsPerMonth) * gs.profile.ActivityWeight / totalWeight
			n := int(expected)
			if w.rng.Float64() < expected-float64(n) {
				n++
			}
			for e := 0; e < n; e++ {
				w.genEvent(gs, m)
			}
		}
	}
}

func (w *World) genEvent(gs *groupState, month int) {
	p := gs.profile
	gs.campEvents++
	gs.eventSeq++
	if gs.campEvents > p.CampaignSize {
		gs.campEvents = 1
		gs.campIPs = gs.campIPs[:0]
		gs.campDomains = gs.campDomains[:0]
		gs.campURLs = gs.campURLs[:0]
	}

	// Lone events are staged from a scratch state with fresh
	// infrastructure and no links to anything the group used before.
	src := gs
	if w.rng.Float64() < w.cfg.LoneEventRate {
		country := w.weighted(p.HostCountryWeights)
		src = &groupState{
			profile: p,
			asns:    []int{w.newASN(country).Number},
			lone:    true,
		}
	}

	nIOC := w.poissonish(w.cfg.MeanIOCsPerEvent)
	if nIOC < 3 {
		nIOC = 3
	}
	var inds []Indicator
	addIndicator := func(t ioc.Type, value string) {
		wire := value
		if w.rng.Float64() < 0.5 {
			wire = ioc.Defang(value)
		}
		inds = append(inds, Indicator{Indicator: wire, Type: t.String()})
	}

	seen := make(map[string]bool)
	for i := 0; i < nIOC; i++ {
		roll := w.rng.Float64()
		var t ioc.Type
		switch {
		case roll < 0.45:
			t = ioc.TypeURL
		case roll < 0.80:
			t = ioc.TypeDomain
		default:
			t = ioc.TypeIP
		}
		val := w.pickIOC(src, t, month)
		if val == "" || seen[val] {
			continue
		}
		seen[val] = true
		addIndicator(t, val)
	}

	// Cross-group noise: a shared public IP shows up in the report.
	if !src.lone && w.rng.Float64() < w.cfg.CrossNoise && len(w.sharedIPs) > 0 {
		addr := w.sharedIPs[w.rng.Intn(len(w.sharedIPs))]
		if !seen[addr] {
			seen[addr] = true
			addIndicator(ioc.TypeIP, addr)
		}
	}

	// Tags: canonical name or alias, occasionally multiple aliases of the
	// same group (which must still resolve), plus free-form noise tags.
	var tags []string
	if w.rng.Float64() < w.cfg.AliasTagProb && len(p.Aliases) > 0 {
		tags = append(tags, p.Aliases[w.rng.Intn(len(p.Aliases))])
		if w.rng.Float64() < 0.3 {
			tags = append(tags, p.Name)
		}
	} else {
		tags = append(tags, p.Name)
	}
	for _, noise := range []string{"phishing", "c2", "malware", "spearphish"} {
		if w.rng.Float64() < 0.2 {
			tags = append(tags, noise)
		}
	}

	created := w.cfg.StartTime.AddDate(0, month, w.rng.Intn(28))
	w.pulses = append(w.pulses, Pulse{
		ID:         fmt.Sprintf("pulse-%s-%04d", p.Name, gs.eventSeq),
		Name:       fmt.Sprintf("%s activity report #%d", p.Name, gs.eventSeq),
		Created:    created,
		Tags:       tags,
		Indicators: inds,
		TrueAPT:    int(p.ID),
		Month:      month,
	})
}

// pickIOC returns an IOC value of type t for an event: a reused one from
// the campaign/group pools or a freshly created one.
func (w *World) pickIOC(gs *groupState, t ioc.Type, month int) string {
	p := gs.profile
	reuse := p.ReuseRate
	if w.cfg.ReuseScale > 0 {
		reuse *= w.cfg.ReuseScale
	}
	if w.rng.Float64() < reuse {
		if v := w.reuseFromPools(gs, t); v != "" {
			return v
		}
	}
	switch t {
	case ioc.TypeIP:
		return w.newGroupIP(gs, month)
	case ioc.TypeDomain:
		return w.newGroupDomain(gs, month)
	case ioc.TypeURL:
		return w.newGroupURL(gs, month)
	}
	return ""
}

func (w *World) reuseFromPools(gs *groupState, t ioc.Type) string {
	camp, all := gs.campIPs, gs.ips
	switch t {
	case ioc.TypeDomain:
		camp, all = gs.campDomains, gs.domains
	case ioc.TypeURL:
		camp, all = gs.campURLs, gs.urls
	}
	// Prefer the live campaign pool; fall back to the group's history.
	if len(camp) > 0 && (w.rng.Float64() < 0.8 || len(all) == 0) {
		return camp[w.rng.Intn(len(camp))]
	}
	if len(all) > 0 {
		return all[w.rng.Intn(len(all))]
	}
	return ""
}

// --- IOC factories ---------------------------------------------------------

func (w *World) newIPAddr(asn int) string {
	a := w.asns[asn]
	for {
		addr := fmt.Sprintf("%s.%d.%d", a.prefix, w.rng.Intn(256), 1+w.rng.Intn(254))
		if _, exists := w.ips[addr]; !exists {
			return addr
		}
	}
}

func (w *World) registerIP(addr string, asn int, owner apt.ID, month int) *ipState {
	a := w.asns[asn]
	st := &ipState{
		rec: IPRecord{
			Addr:    addr,
			ASN:     asn,
			Country: a.Country,
			Issuer:  a.Issuer,
			Lat:     -60 + w.rng.Float64()*120,
			Lon:     -180 + w.rng.Float64()*360,
		},
		owner: owner,
		month: month,
	}
	// Feature noise: lookup services sometimes disagree with the ASN's
	// registration country or issuer.
	if w.rng.Float64() < w.cfg.FeatureNoise {
		st.rec.Country = w.headBiased(w.countries, 40)
	}
	if w.rng.Float64() < w.cfg.FeatureNoise {
		st.rec.Issuer = w.headBiased(w.issuers, 24)
	}
	w.ips[addr] = st
	return st
}

func (w *World) newGroupIP(gs *groupState, month int) string {
	asn := gs.asns[w.rng.Intn(len(gs.asns))]
	addr := w.newIPAddr(asn)
	st := w.registerIP(addr, asn, gs.profile.ID, month)
	w.attachBenignDomains(st, w.poissonish(w.cfg.BenignFanout), month)
	gs.ips = append(gs.ips, addr)
	gs.campIPs = append(gs.campIPs, addr)
	return addr
}

// hostingIP returns an IP to host a new resource on: with CrossHostRate a
// foreign or shared IP (compromised/rented shared hosting, which plants
// misleading indirect-reuse paths), with InfraReuseRate an IP the group
// already controls (true indirect reuse), otherwise a new one.
func (w *World) hostingIP(gs *groupState, month int) string {
	if !gs.lone && w.rng.Float64() < w.cfg.CrossHostRate {
		if addr := w.foreignIP(gs); addr != "" {
			return addr
		}
	}
	infra := gs.profile.InfraReuseRate
	if w.cfg.InfraScale > 0 {
		infra *= w.cfg.InfraScale
	}
	if len(gs.ips) > 0 && w.rng.Float64() < infra {
		if len(gs.campIPs) > 0 && w.rng.Float64() < 0.7 {
			return gs.campIPs[w.rng.Intn(len(gs.campIPs))]
		}
		return gs.ips[w.rng.Intn(len(gs.ips))]
	}
	return w.newGroupIP(gs, month)
}

// foreignIP picks an IP the group does not control: the shared public
// pool or another group's infrastructure.
func (w *World) foreignIP(gs *groupState) string {
	if len(w.sharedIPs) > 0 && w.rng.Float64() < 0.5 {
		return w.sharedIPs[w.rng.Intn(len(w.sharedIPs))]
	}
	for attempt := 0; attempt < 4; attempt++ {
		other := w.groups[w.rng.Intn(len(w.groups))]
		if other == gs || len(other.ips) == 0 {
			continue
		}
		return other.ips[w.rng.Intn(len(other.ips))]
	}
	if len(w.sharedIPs) > 0 {
		return w.sharedIPs[w.rng.Intn(len(w.sharedIPs))]
	}
	return ""
}

// foreignDomain picks a domain the group does not own: another group's
// domain or a benign one (a compromised legitimate site). Returns "" if
// the world has none yet.
func (w *World) foreignDomain(gs *groupState) string {
	for attempt := 0; attempt < 4; attempt++ {
		other := w.groups[w.rng.Intn(len(w.groups))]
		if other == gs || len(other.domains) == 0 {
			continue
		}
		return other.domains[w.rng.Intn(len(other.domains))]
	}
	// Fall back to a benign domain hanging off a shared IP.
	for _, addr := range w.sharedIPs {
		if ds := w.ips[addr].domains; len(ds) > 0 {
			return ds[w.rng.Intn(len(ds))]
		}
	}
	return ""
}

func (w *World) newGroupDomain(gs *groupState, month int) string {
	p := gs.profile
	name := w.uniqueDomain(func() string {
		label := genLabel(w.rng, p.DGAEntropy, p.DGADigits, p.DomainLen)
		tld := w.weighted(p.TLDWeights)
		if w.rng.Float64() < w.cfg.FeatureNoise {
			tld = w.headBiased(w.tlds, 33)
		}
		if w.rng.Float64() < 0.25 {
			sub := genLabel(w.rng, p.DGAEntropy, p.DGADigits, 5)
			return sub + "." + label + "." + tld
		}
		return label + "." + tld
	})

	nA := 1
	if w.rng.Float64() < 0.3 {
		nA = 2
	}
	var arecords []string
	for i := 0; i < nA; i++ {
		arecords = append(arecords, w.hostingIP(gs, month))
	}
	st := &domainState{
		rec: DomainRecord{
			Name:      name,
			ARecords:  arecords,
			FirstSeen: w.cfg.StartTime.AddDate(0, month, 0),
			LastSeen:  w.cfg.StartTime.AddDate(0, month+w.rng.Intn(4), w.rng.Intn(28)),
			NXDomain:  w.rng.Float64() < 0.35,
			Registrar: w.headBiased(w.issuers, 24),
		},
		owner: p.ID,
		month: month,
	}
	st.rec.Counts = DNSRecordCounts{
		A:     nA,
		AAAA:  w.rng.Intn(2),
		CNAME: 0,
		MX:    w.rng.Intn(3),
		NS:    1 + w.rng.Intn(3),
		TXT:   w.rng.Intn(4),
		SOA:   1,
	}
	if len(gs.domains) > 0 && w.rng.Float64() < 0.15 {
		st.rec.CNAME = gs.domains[w.rng.Intn(len(gs.domains))]
		st.rec.Counts.CNAME = 1
	}
	w.domains[name] = st
	for _, ip := range arecords {
		w.ips[ip].domains = append(w.ips[ip].domains, name)
	}
	gs.domains = append(gs.domains, name)
	gs.campDomains = append(gs.campDomains, name)
	return name
}

func (w *World) newGroupURL(gs *groupState, month int) string {
	p := gs.profile

	var host string
	var hostDomain string
	var resolves []string
	if w.rng.Float64() < 0.85 {
		// Host on a domain: usually the group's own (preferring live
		// campaign domains), but sometimes a compromised legitimate site
		// or another group's domain — the "typical, yet weak-confidence"
		// behaviour the paper's case study describes. Those hostings
		// plant misleading 3-hop paths between unrelated events.
		switch {
		case !gs.lone && w.rng.Float64() < w.cfg.CrossHostRate*0.8:
			hostDomain = w.foreignDomain(gs)
		case len(gs.campDomains) > 0 && w.rng.Float64() < 0.6:
			hostDomain = gs.campDomains[w.rng.Intn(len(gs.campDomains))]
		}
		if hostDomain == "" {
			hostDomain = w.newGroupDomain(gs, month)
		}
		host = hostDomain
		resolves = append([]string(nil), w.domains[hostDomain].rec.ARecords...)
	} else {
		ip := w.hostingIP(gs, month)
		host = ip
		resolves = []string{ip}
	}

	scheme := "http"
	if w.rng.Float64() < 0.4 {
		scheme = "https"
	}
	path := ""
	depth := 1 + w.rng.Intn(p.URLDepth+1)
	for i := 0; i < depth; i++ {
		path += "/" + genPathSegment(w.rng, p.DGAEntropy, p.DGADigits)
	}
	ftype := w.sampleCat(p.FileTypeWeights, w.fileTypes, 44)
	path += "." + ftype
	if w.rng.Float64() < 0.3 {
		path += fmt.Sprintf("?%s=%d", genPathSegment(w.rng, 1, 0.5), w.rng.Intn(1000))
	}
	url := scheme + "://" + host + path
	if _, exists := w.urls[url]; exists {
		return url
	}

	code := 200
	alive := w.rng.Float64() < 0.7
	if !alive {
		codes := []int{404, 410, 503, 403}
		code = codes[w.rng.Intn(len(codes))]
	}
	// Sorted iteration: ranging the map directly would pair each rng draw
	// with a different service on every run of the process.
	var svcs []string
	for _, s := range sortedKeys(p.ServiceWeights) {
		if w.rng.Float64() < 0.6 {
			svcs = append(svcs, s)
		}
	}
	if w.rng.Float64() < w.cfg.FeatureNoise {
		svcs = append(svcs, w.headBiased(w.services, 18))
	}
	st := &urlState{
		rec: URLRecord{
			URL:        url,
			Alive:      alive,
			HTTPCode:   code,
			FileType:   ftype,
			FileClass:  fileClassOf(ftype),
			Encoding:   w.sampleCat(p.EncodingWeights, w.encodings, 6),
			Server:     w.sampleCat(p.ServerWeights, w.servers, 17),
			ServerOS:   w.sampleCat(p.OSWeights, w.oses, 13),
			Services:   svcs,
			ResolvesTo: resolves,
			HostDomain: hostDomain,
		},
		owner: p.ID,
		month: month,
	}
	w.urls[url] = st
	gs.urls = append(gs.urls, url)
	gs.campURLs = append(gs.campURLs, url)
	return url
}

// attachBenignDomains registers n benign domains whose passive DNS points
// at ip. With small probability a benign domain is shared with another
// random IP already in the world, modelling shared hosting (a source of
// cross-group noise paths).
func (w *World) attachBenignDomains(ip *ipState, n int, month int) {
	for i := 0; i < n; i++ {
		name := w.uniqueDomain(func() string {
			return genLabel(w.rng, 0.2, 0.05, 8+w.rng.Intn(5)) + "." + w.headBiased(w.tlds, 33)
		})
		st := &domainState{
			rec: DomainRecord{
				Name:      name,
				ARecords:  []string{ip.rec.Addr},
				FirstSeen: w.cfg.StartTime.AddDate(0, month, 0),
				LastSeen:  w.cfg.StartTime.AddDate(0, month+w.rng.Intn(6), 0),
				NXDomain:  w.rng.Float64() < 0.1,
				Registrar: w.headBiased(w.issuers, 24),
				Counts: DNSRecordCounts{
					A: 1, NS: 2, SOA: 1, MX: w.rng.Intn(2), TXT: w.rng.Intn(2),
				},
			},
			owner: apt.Unknown,
			month: month,
		}
		w.domains[name] = st
		ip.domains = append(ip.domains, name)
		if w.rng.Float64() < 0.12 && len(w.sharedIPs) > 0 {
			other := w.sharedIPs[w.rng.Intn(len(w.sharedIPs))]
			if other != ip.rec.Addr {
				st.rec.ARecords = append(st.rec.ARecords, other)
				st.rec.Counts.A++
				w.ips[other].domains = append(w.ips[other].domains, name)
			}
		}
	}
}

// --- sampling helpers -------------------------------------------------------

func (w *World) uniqueDomain(gen func() string) string {
	for i := 0; ; i++ {
		name := gen()
		if i > 20 {
			name = fmt.Sprintf("x%d%s", len(w.domains), name)
		}
		if _, ok := w.domains[name]; !ok {
			if _, valid := ioc.CanonicalDomain(name); valid {
				return name
			}
		}
	}
}

// weighted samples a key from a weight map.
func (w *World) weighted(weights map[string]float64) string {
	// Map iteration order is random per run of the process; to keep the
	// world deterministic in the seed, both the total (float addition is
	// not associative, and an ulp shift in total can flip a boundary
	// draw) and the selection scan iterate keys in sorted order.
	keys := sortedKeys(weights)
	total := 0.0
	for _, k := range keys {
		total += weights[k]
	}
	r := w.rng.Float64() * total
	for _, k := range keys {
		r -= weights[k]
		if r <= 0 {
			return k
		}
	}
	// Rounding can leave r marginally positive after the scan; fall back
	// to the last key deterministically rather than a map-order pick.
	if len(keys) > 0 {
		return keys[len(keys)-1]
	}
	return ""
}

// sampleCat draws from profile weights, or (with FeatureNoise) uniformly
// from the head of the global vocabulary.
func (w *World) sampleCat(weights map[string]float64, vocab []string, head int) string {
	if w.rng.Float64() < w.cfg.FeatureNoise {
		return w.headBiased(vocab, head)
	}
	return w.weighted(weights)
}

// headBiased samples mostly from the first `head` entries of vocab but
// with a 10% chance anywhere, producing the realistic long tail.
func (w *World) headBiased(vocab []string, head int) string {
	if head > len(vocab) {
		head = len(vocab)
	}
	if w.rng.Float64() < 0.1 {
		return vocab[w.rng.Intn(len(vocab))]
	}
	return vocab[w.rng.Intn(head)]
}

// poissonish returns a cheap Poisson-like sample with the given mean.
func (w *World) poissonish(mean int) int {
	if mean <= 0 {
		return 0
	}
	n := 0
	for i := 0; i < 2*mean; i++ {
		if w.rng.Float64() < 0.5 {
			n++
		}
	}
	return n
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion sort: maps here have <= 8 keys
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func fileClassOf(ftype string) string {
	switch ftype {
	case "php", "js", "jsp", "asp", "aspx", "vbs", "ps1", "sh", "py", "bat":
		return "script"
	case "exe", "dll", "bin", "scr", "msi", "apk", "jar":
		return "binary"
	case "doc", "docx", "pdf", "xls", "xlsx", "ppt", "rtf", "txt", "chm":
		return "document"
	case "zip", "rar", "7z", "iso", "img", "cab":
		return "archive"
	case "html", "css", "xml", "json":
		return "webpage"
	case "gif", "png", "jpg", "swf":
		return "image"
	default:
		return "data"
	}
}

// --- Services implementation -------------------------------------------------

var _ Services = (*World)(nil)

// LookupIP implements Services.
func (w *World) LookupIP(addr string) (IPRecord, bool) {
	st, ok := w.ips[addr]
	if !ok {
		return IPRecord{}, false
	}
	return st.rec, true
}

// PassiveDNSDomain implements Services.
func (w *World) PassiveDNSDomain(name string) (DomainRecord, bool) {
	st, ok := w.domains[name]
	if !ok {
		return DomainRecord{}, false
	}
	rec := st.rec
	rec.ARecords = append([]string(nil), st.rec.ARecords...)
	return rec, true
}

// PassiveDNSIP implements Services.
func (w *World) PassiveDNSIP(addr string) ([]string, bool) {
	st, ok := w.ips[addr]
	if !ok {
		return nil, false
	}
	return append([]string(nil), st.domains...), true
}

// ProbeURL implements Services.
func (w *World) ProbeURL(url string) (URLRecord, bool) {
	st, ok := w.urls[url]
	if !ok {
		return URLRecord{}, false
	}
	rec := st.rec
	rec.Services = append([]string(nil), st.rec.Services...)
	rec.ResolvesTo = append([]string(nil), st.rec.ResolvesTo...)
	return rec, true
}

// TrueOwnerDomain reports the generating APT of a domain (ground truth
// for diagnostics; the TRAIL pipeline itself never calls this).
func (w *World) TrueOwnerDomain(name string) apt.ID {
	if st, ok := w.domains[name]; ok {
		return st.owner
	}
	return apt.Unknown
}
