// Package par provides the bounded worker pool behind every parallel
// kernel in this repository (dense mat kernels, sparse CSR kernels).
//
// The central primitive is For(n, grain, fn): a row-partitioned parallel
// for-loop with a determinism contract. The partition of [0, n) into
// contiguous blocks depends only on n and grain — never on the worker
// count, pool load, or scheduling — so a kernel that writes disjoint row
// ranges and accumulates within a row in a fixed order produces
// bit-identical results whether it runs on one goroutine or sixteen.
// Kernels must therefore never accumulate across blocks with atomics or
// locks; each block owns its output rows outright.
//
// The pool is lazily started, sized to GOMAXPROCS, and shared by all
// callers. Helpers are recruited with a non-blocking handoff: if every
// worker is busy (including when For is called from inside another For
// block), the calling goroutine simply executes the remaining blocks
// itself. The caller always participates, so nested or concurrent use
// cannot deadlock and parallelism stays bounded at the pool size.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	confMu  sync.Mutex
	workers int32 // configured parallelism; see SetWorkers

	poolOnce sync.Once
	jobs     chan *job
)

func init() {
	atomic.StoreInt32(&workers, int32(runtime.GOMAXPROCS(0)))
}

// Workers returns the configured parallelism level: the maximum number
// of goroutines (including the caller) that execute one For call.
func Workers() int {
	return int(atomic.LoadInt32(&workers))
}

// SetWorkers sets the parallelism level and returns the previous value.
// Values below 1 are clamped to 1 (fully serial). It exists for tests
// and benchmarks that compare serial and parallel execution; results are
// bit-identical either way, by the package's determinism contract.
func SetWorkers(n int) (prev int) {
	if n < 1 {
		n = 1
	}
	confMu.Lock()
	defer confMu.Unlock()
	prev = int(atomic.LoadInt32(&workers))
	atomic.StoreInt32(&workers, int32(n))
	return prev
}

// job is one For invocation: a fixed block partition drained through an
// atomic cursor by the caller and any recruited helpers. Jobs are pooled
// (see jobPool): a training step issues tens of For calls, and without
// reuse each would allocate a fresh job — the last steady-state
// allocation in the hot loops.
type job struct {
	fn     func(lo, hi int)
	n      int
	grain  int
	blocks int
	next   atomic.Int64
	wg     sync.WaitGroup // one count per block
	// refs counts goroutines that may still touch this job: the caller
	// plus every recruited helper. The goroutine that drops refs to zero
	// returns the job to the pool; until then reuse would race on fn.
	refs atomic.Int32
}

var jobPool = sync.Pool{New: func() any { return new(job) }}

// release drops n references; the final holder clears and recycles the
// job. fn is cleared so the pool does not pin the caller's closure.
func (j *job) release(n int32) {
	if j.refs.Add(-n) == 0 {
		j.fn = nil
		jobPool.Put(j)
	}
}

// run drains blocks until the cursor passes the end. Each block is
// executed exactly once, by whichever goroutine claimed it.
func (j *job) run() {
	for {
		b := int(j.next.Add(1)) - 1
		if b >= j.blocks {
			return
		}
		lo := b * j.grain
		hi := lo + j.grain
		if hi > j.n {
			hi = j.n
		}
		j.fn(lo, hi)
		j.wg.Done()
	}
}

// runHelper is the worker-side entry: drain, then drop the helper's
// reference.
func (j *job) runHelper() {
	j.run()
	j.release(1)
}

// ensurePool starts the persistent workers on first use. The pool holds
// GOMAXPROCS-1 goroutines; the caller of For is always the final worker.
func ensurePool() {
	poolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0) - 1
		if n < 1 {
			n = 1
		}
		jobs = make(chan *job)
		for i := 0; i < n; i++ {
			go func() {
				for j := range jobs {
					j.runHelper()
				}
			}()
		}
	})
}

// For splits [0, n) into ceil(n/grain) contiguous blocks of `grain` rows
// (the last block may be short) and calls fn(lo, hi) exactly once per
// block, using up to Workers() goroutines. The partition depends only on
// n and grain, so any computation whose blocks write disjoint outputs is
// bit-identical between serial and parallel runs. fn must not panic: a
// panic on a helper goroutine cannot be recovered by the caller.
//
// For returns after every block has completed. It is safe to call For
// from inside an fn block (the inner call runs serially or recruits idle
// workers; the calling goroutine always makes progress itself).
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	blocks := (n + grain - 1) / grain
	w := Workers()
	if w <= 1 || blocks <= 1 {
		// Serial path: walk the identical block partition in order, so
		// fn observes the same (lo, hi) ranges it would in parallel.
		for lo := 0; lo < n; lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}
	j := jobPool.Get().(*job)
	j.fn, j.n, j.grain, j.blocks = fn, n, grain, blocks
	j.next.Store(0)
	j.wg.Add(blocks)
	helpers := w - 1
	if blocks-1 < helpers {
		helpers = blocks - 1
	}
	// Reserve a reference per potential helper (plus the caller's own)
	// BEFORE publishing the job: a recruited worker may finish and release
	// its reference before this goroutine reaches the next statement.
	j.refs.Store(int32(helpers) + 1)
	ensurePool()
	recruited := 0
recruit:
	for h := 0; h < helpers; h++ {
		select {
		case jobs <- j:
			recruited++
		default:
			// All workers are busy; stop recruiting — the caller
			// executes whatever is left.
			break recruit
		}
	}
	j.run()
	j.wg.Wait()
	// Drop the caller's reference plus one per helper that was never
	// recruited. The job must not be touched past this point.
	j.release(1 + int32(helpers-recruited))
}
