package par

import (
	"sync/atomic"
	"testing"
)

// TestForCoversEveryIndexOnce checks the core contract at several worker
// counts: every index in [0, n) is visited exactly once, regardless of
// parallelism.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 4, 9} {
		prev := SetWorkers(w)
		for _, n := range []int{0, 1, 7, 64, 1000} {
			for _, grain := range []int{0, 1, 3, 64, 2000} {
				counts := make([]int32, n)
				For(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("workers=%d n=%d grain=%d: bad block [%d,%d)", w, n, grain, lo, hi)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&counts[i], 1)
					}
				})
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", w, n, grain, i, c)
					}
				}
			}
		}
		SetWorkers(prev)
	}
}

// TestForPartitionIsFixed checks the determinism contract: the block
// boundaries observed by fn depend only on n and grain, not on the
// worker count.
func TestForPartitionIsFixed(t *testing.T) {
	const n, grain = 103, 10
	blockset := func(w int) map[[2]int]bool {
		prev := SetWorkers(w)
		defer SetWorkers(prev)
		blocks := make(chan [2]int, n)
		For(n, grain, func(lo, hi int) { blocks <- [2]int{lo, hi} })
		close(blocks)
		set := make(map[[2]int]bool)
		for b := range blocks {
			set[b] = true
		}
		return set
	}
	serial := blockset(1)
	parallel := blockset(8)
	if len(serial) != len(parallel) {
		t.Fatalf("block count differs: serial %d vs parallel %d", len(serial), len(parallel))
	}
	for b := range serial {
		if !parallel[b] {
			t.Fatalf("block %v present serially but not in parallel", b)
		}
	}
}

// TestForNested checks that For can be called from inside an fn block
// without deadlocking and still covers all inner indexes.
func TestForNested(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	const outer, inner = 8, 50
	var total atomic.Int64
	For(outer, 1, func(lo, hi int) {
		for o := lo; o < hi; o++ {
			For(inner, 7, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		}
	})
	if got := total.Load(); got != outer*inner {
		t.Fatalf("nested For covered %d indexes, want %d", got, outer*inner)
	}
}

func TestSetWorkersClamps(t *testing.T) {
	prev := SetWorkers(-3)
	if Workers() != 1 {
		t.Fatalf("SetWorkers(-3) should clamp to 1, got %d", Workers())
	}
	SetWorkers(prev)
}
