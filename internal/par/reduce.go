package par

// ReduceBlocks is the deterministic parallel reduction companion to For:
// it splits [0, n) into the same fixed blocks as For(n, grain, ...),
// computes one partial value per block with leaf (in parallel, each leaf
// scanning its block serially), and folds the partials with merge in a
// fixed pairwise tree over ascending block order:
//
//	((p0 ⊕ p1) ⊕ (p2 ⊕ p3)) ⊕ ((p4 ⊕ p5) ⊕ ...)
//
// The tree shape depends only on (n, grain) — never on worker count or
// scheduling — so for non-associative float accumulation the grouping,
// and therefore every output bit, is identical between serial and
// parallel runs. This is the contract gradient-accumulation kernels need
// when they move from one long serial chain to per-worker shards: the
// tree IS the definition of the sum, not an approximation of the chain
// (see DESIGN.md §3e for when a kernel may adopt it).
//
// leaf must not panic; merge runs on the calling goroutine only. For
// n <= 0, ReduceBlocks returns the zero value of S.
func ReduceBlocks[S any](n, grain int, leaf func(lo, hi int) S, merge func(a, b S) S) S {
	var zero S
	if n <= 0 {
		return zero
	}
	if grain < 1 {
		grain = 1
	}
	blocks := (n + grain - 1) / grain
	partials := make([]S, blocks)
	For(blocks, 1, func(blo, bhi int) {
		for b := blo; b < bhi; b++ {
			lo := b * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			partials[b] = leaf(lo, hi)
		}
	})
	return treeFold(partials, merge)
}

// TreeFold folds partials with merge in the same fixed pairwise tree
// ReduceBlocks uses — adjacent pairs first, then pairs of pairs, always
// in ascending index order. It overwrites partials as scratch. Exposed
// for callers that manage their own partials buffer (e.g. a pooled one)
// but must reduce with a grouping bit-identical to ReduceBlocks's.
// An empty partials yields the zero value of S.
func TreeFold[S any](partials []S, merge func(a, b S) S) S {
	if len(partials) == 0 {
		var zero S
		return zero
	}
	return treeFold(partials, merge)
}

// treeFold folds partials pairwise: adjacent pairs first, then pairs of
// pairs, always in ascending index order. len(partials) must be > 0.
func treeFold[S any](partials []S, merge func(a, b S) S) S {
	for len(partials) > 1 {
		half := (len(partials) + 1) / 2
		for i := 0; i < half; i++ {
			if 2*i+1 < len(partials) {
				partials[i] = merge(partials[2*i], partials[2*i+1])
			} else {
				partials[i] = partials[2*i]
			}
		}
		partials = partials[:half]
	}
	return partials[0]
}
