package par

import (
	"math"
	"math/rand"
	"testing"
)

// TreeFold's grouping is part of the numeric contract: ClipGrads-style
// consumers scale by the folded value, so the grouping must be a pure
// function of len(partials) — never of worker count or timing.

func TestTreeFoldSmallCases(t *testing.T) {
	add := func(a, b int) int { return a + b }
	if got := TreeFold([]int{}, add); got != 0 {
		t.Fatalf("empty fold = %d, want zero value", got)
	}
	if got := TreeFold([]int{7}, add); got != 7 {
		t.Fatalf("single fold = %d", got)
	}
	if got := TreeFold([]int{1, 2, 3, 4, 5}, add); got != 15 {
		t.Fatalf("odd-length fold = %d", got)
	}
}

func TestTreeFoldMatchesExplicitPairwiseTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 3, 7, 8, 13} {
		parts := make([]float64, n)
		for i := range parts {
			parts[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)-3))
		}
		// Explicit fixed pairwise tree: halve by adjacent pairs until one
		// value remains.
		ref := append([]float64(nil), parts...)
		for len(ref) > 1 {
			var next []float64
			for i := 0; i+1 < len(ref); i += 2 {
				next = append(next, ref[i]+ref[i+1])
			}
			if len(ref)%2 == 1 {
				next = append(next, ref[len(ref)-1])
			}
			ref = next
		}
		got := TreeFold(parts, func(a, b float64) float64 { return a + b })
		if math.Float64bits(got) != math.Float64bits(ref[0]) {
			t.Fatalf("n=%d: TreeFold = %v, explicit tree = %v", n, got, ref[0])
		}
	}
}

func TestReduceBlocksEqualsTreeFoldOfLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 997)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	leaf := func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += vals[i] * vals[i]
		}
		return s
	}
	merge := func(a, b float64) float64 { return a + b }
	grain := 64
	// Partition exactly as For/ReduceBlocks do: fixed blocks of `grain`.
	var parts []float64
	for lo := 0; lo < len(vals); lo += grain {
		hi := lo + grain
		if hi > len(vals) {
			hi = len(vals)
		}
		parts = append(parts, leaf(lo, hi))
	}
	want := TreeFold(parts, merge)
	for _, workers := range []int{1, 3, 8} {
		prev := SetWorkers(workers)
		got := ReduceBlocks(len(vals), grain, leaf, merge)
		SetWorkers(prev)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("workers=%d: ReduceBlocks = %v, want %v", workers, got, want)
		}
	}
}
