package serve

import (
	"context"
	"sync"
	"time"

	"trail/internal/graph"
)

// pending is one attribute request waiting for a batch slot. The done
// channel is buffered so the batch worker never blocks on a caller that
// timed out between flush and demux.
type pending struct {
	kind graph.NodeKind
	key  string
	ctx  context.Context
	done chan result
}

// result is one demuxed answer: the snapshot the inference ran on (for
// epoch/precision reporting), the resolved node, and its probability
// row. err is set instead when the key did not resolve.
type result struct {
	snap  *Snapshot
	node  graph.NodeID
	probs []float64
	err   error
}

// batcher coalesces concurrent requests into shared inference batches.
// The worker goroutine blocks for the first request, then keeps
// collecting until the batch is full or maxWait has elapsed since that
// first arrival — the classic max-batch/max-wait coalescing queue. With
// maxBatch<=1 or maxWait<=0 it degrades to a non-waiting fast path that
// still drains whatever is already queued (so a burst under load forms a
// batch even with no deliberate delay).
type batcher struct {
	ch       chan *pending
	stop     chan struct{}
	maxBatch int
	maxWait  time.Duration
	flush    func([]*pending)
	wg       sync.WaitGroup
}

func newBatcher(maxBatch int, maxWait time.Duration, queueCap int, flush func([]*pending)) *batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	if queueCap < maxBatch {
		queueCap = maxBatch
	}
	b := &batcher{
		ch:       make(chan *pending, queueCap),
		stop:     make(chan struct{}),
		maxBatch: maxBatch,
		maxWait:  maxWait,
		flush:    flush,
	}
	b.wg.Add(1)
	go b.run()
	return b
}

// enqueue hands a request to the worker. It reports false when the
// server is shutting down or the request's context expired while the
// queue was full — the caller maps those to 503/504. The leading stop
// check makes post-close enqueues fail deterministically; the buffered
// send would otherwise still be ready and could win the select.
func (b *batcher) enqueue(p *pending) bool {
	select {
	case <-b.stop:
		return false
	default:
	}
	select {
	case b.ch <- p:
		return true
	case <-b.stop:
		return false
	case <-p.ctx.Done():
		return false
	}
}

// close stops accepting new requests, lets the worker drain everything
// already queued, and waits for it to exit. Requests admitted before
// close are always answered — the graceful-drain half of shutdown. The
// server calls this only after http.Server.Shutdown has returned, so no
// handler can race an enqueue past the final drain sweep.
func (b *batcher) close() {
	close(b.stop)
	b.wg.Wait()
}

func (b *batcher) run() {
	defer b.wg.Done()
	for {
		var first *pending
		select {
		case first = <-b.ch:
		case <-b.stop:
			b.drain()
			return
		}
		b.flush(b.collect(first))
	}
}

// collect gathers one batch starting from its first member. The wait
// timer starts at the first arrival, so a lone request under light load
// pays at most maxWait of added latency and zero when maxWait is 0.
func (b *batcher) collect(first *pending) []*pending {
	batch := append(make([]*pending, 0, b.maxBatch), first)
	if b.maxWait <= 0 {
		// Fast path: no deliberate delay, but sweep the queue so
		// concurrent arrivals still share a pass.
		for len(batch) < b.maxBatch {
			select {
			case p := <-b.ch:
				batch = append(batch, p)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(b.maxWait)
	defer timer.Stop()
	for len(batch) < b.maxBatch {
		select {
		case p := <-b.ch:
			batch = append(batch, p)
		case <-timer.C:
			return batch
		case <-b.stop:
			return batch
		}
	}
	return batch
}

// drain flushes whatever is still queued at shutdown, in maxBatch-sized
// groups, without waiting for stragglers.
func (b *batcher) drain() {
	for {
		batch := make([]*pending, 0, b.maxBatch)
		for len(batch) < b.maxBatch {
			select {
			case p := <-b.ch:
				batch = append(batch, p)
				continue
			default:
			}
			break
		}
		if len(batch) == 0 {
			return
		}
		b.flush(batch)
	}
}
